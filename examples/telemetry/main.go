// Telemetry walkthrough: attach a collector to a run, sample counters
// on an interval grid, and export both observability artifacts — a
// Perfetto-compatible Chrome trace and a JSON run manifest.
//
// The kernel alternates compute phases with scans of a shared table,
// separated by barriers, so the exported trace shows the phase
// structure directly: compute slices, load-stall slices where the scan
// misses, merge-stall slices where cluster-mates overlap fetches, and
// sync-wait slices at each barrier.
//
// Run with:
//
//	go run ./examples/telemetry
//
// then open the printed trace file at https://ui.perfetto.dev.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"clustersim/internal/core"
	"clustersim/internal/telemetry"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Procs = 8
	cfg.ClusterSize = 4
	cfg.CacheKBPerProc = 4

	// 1. Attach a collector and a 2000-cycle sampling grid.
	col := telemetry.New()
	cfg.Telemetry = col
	cfg.SampleEvery = 2000

	m, err := core.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	table := m.Alloc(32*1024, "table")
	bar := m.NewBarrier()

	res, err := m.Run(func(p *core.Proc) {
		for phase := 0; phase < 3; phase++ {
			p.Compute(core.Clock(200 * (1 + p.ID()%3))) // uneven work -> sync waits
			for a := table; a < table+32*1024; a += 64 {
				p.Read(a)
			}
			bar.Wait(p)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. The collector now holds the run's full observability record.
	fmt.Printf("run: exec %d cycles over %d PEs, %d clusters\n",
		res.ExecTime, col.NumPEs(), col.NumClusters())
	sched := col.Sched()
	fmt.Printf("scheduler: %d token handoffs, ready-heap depth max %d / mean %.1f\n",
		sched.Handoffs, sched.MaxReadyDepth, sched.MeanReadyDepth())
	totals := col.SliceTotals(0)
	fmt.Printf("PE 0 timeline: compute %d  load-stall %d  merge-stall %d  sync-wait %d (sum = final clock %d)\n",
		totals[telemetry.SliceCompute], totals[telemetry.SliceLoadStall],
		totals[telemetry.SliceMergeStall], totals[telemetry.SliceSyncWait],
		totals[0]+totals[1]+totals[2]+totals[3])
	fmt.Printf("sampled intervals: %d; sync episodes: %d\n",
		len(col.Samples()), len(col.Episodes()))

	dir, err := os.MkdirTemp("", "clustersim-telemetry-")
	if err != nil {
		log.Fatal(err)
	}

	// 3. Export the Chrome trace (one track per PE, counter tracks per
	// cluster cache, one track per sync object).
	hash, err := telemetry.HashConfig(cfg)
	if err != nil {
		log.Fatal(err)
	}
	tracePath := filepath.Join(dir, "run.trace.json")
	tf, err := os.Create(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	if err := telemetry.WriteChromeTrace(tf, col, map[string]string{
		"app": "telemetry-example", "configHash": hash,
	}); err != nil {
		log.Fatal(err)
	}
	tf.Close()
	fmt.Printf("\nwrote %s — open it at https://ui.perfetto.dev\n", tracePath)

	// 4. Export the JSON run manifest: Config + Result + a
	// deterministic config hash + simulator self-metrics. Two runs of
	// the same config always hash identically, so manifests diff
	// cleanly across code changes.
	var manifest bytes.Buffer
	if err := telemetry.WriteManifest(&manifest, telemetry.Manifest{
		App:       "telemetry-example",
		Config:    cfg,
		Result:    res,
		Telemetry: col.SelfReport(),
	}); err != nil {
		log.Fatal(err)
	}
	manifestPath := filepath.Join(dir, "run.manifest.json")
	if err := os.WriteFile(manifestPath, manifest.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes); configHash %s\n", manifestPath, manifest.Len(), hash)

	// 5. Round-trip: the manifest reads back losslessly.
	doc, err := telemetry.ReadManifest(bytes.NewReader(manifest.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("manifest round-trip: schema %s, hash matches: %v\n",
		doc.Schema, doc.ConfigHash == hash)
}
