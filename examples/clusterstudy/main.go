// Clusterstudy: contrast the two communication topologies at the heart
// of the paper's Section 4 conclusion.
//
//   - Ocean communicates with nearest neighbours: clustering internalises
//     the borders between adjacent subgrids and cuts communication
//     roughly in half per doubling of the cluster.
//   - FFT communicates all-to-all: clustering can remove at most a
//     (C-1)/(P-1) share of it, so execution time barely moves.
//
// Run with:
//
//	go run ./examples/clusterstudy
package main

import (
	"fmt"
	"log"

	"clustersim/internal/apps"
	"clustersim/internal/apps/fft"
	"clustersim/internal/apps/ocean"
	"clustersim/internal/core"
)

func main() {
	const procs = 16

	fmt.Println("near-neighbour vs all-to-all under clustering")
	fmt.Printf("(%d processors, infinite caches)\n\n", procs)
	fmt.Printf("%-12s %8s %12s %14s %12s\n", "app", "cluster", "exec cycles", "vs unclustered", "load stall")

	var oceanBase, fftBase int64
	for _, cs := range []int{1, 2, 4, 8} {
		cfg := core.DefaultConfig()
		cfg.Procs = procs
		cfg.ClusterSize = cs

		or, err := ocean.Run(cfg, ocean.ParamsFor(apps.SizeDefault))
		if err != nil {
			log.Fatal(err)
		}
		if cs == 1 {
			oceanBase = or.ExecTime
		}
		fmt.Printf("%-12s %7dp %12d %13.1f%% %12d\n", "ocean", cs, or.ExecTime,
			100*float64(or.ExecTime)/float64(oceanBase), or.Aggregate().LoadStall)
	}
	fmt.Println()
	for _, cs := range []int{1, 2, 4, 8} {
		cfg := core.DefaultConfig()
		cfg.Procs = procs
		cfg.ClusterSize = cs

		fr, err := fft.Run(cfg, fft.Params{M: 12})
		if err != nil {
			log.Fatal(err)
		}
		if cs == 1 {
			fftBase = fr.ExecTime
		}
		fmt.Printf("%-12s %7dp %12d %13.1f%% %12d\n", "fft", cs, fr.ExecTime,
			100*float64(fr.ExecTime)/float64(fftBase), fr.Aggregate().LoadStall)
	}

	fmt.Println("\nOcean's border exchanges stay inside the cluster; FFT's")
	fmt.Println("all-to-all transpose mostly cannot. This is the paper's")
	fmt.Println("Section 4 conclusion in two tables.")
}
