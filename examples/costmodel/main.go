// Costmodel: walk through the paper's Section 6 analysis — the part that
// turns raw clustering benefits into a realistic verdict on shared
// first-level caches.
//
// The pipeline:
//
//  1. Bank conflicts (Table 4): a shared cache with 4 banks per
//     processor still collides with probability C = 1-((m-1)/m)^(n-1).
//  2. Load-latency factors (Table 5): how much an application slows
//     down when its load hit time grows from 1 to 2-4 cycles, derived
//     from its measured load density (our stand-in for Pixie).
//  3. Weighted combination: F = (1-C)·factor(h) + C·factor(h+1), where
//     h is the Table 1 shared-cache hit time for the cluster size.
//  4. Costed comparison (Tables 6/7): simulated time × F, relative to
//     the unclustered machine.
//
// Run with:
//
//	go run ./examples/costmodel
package main

import (
	"fmt"
	"log"

	"clustersim/internal/apps"
	"clustersim/internal/apps/registry"
	"clustersim/internal/coherence"
	"clustersim/internal/contention"
	"clustersim/internal/core"
)

func main() {
	const procs = 16
	const app = "volrend"

	fmt.Println("step 1: bank-conflict probabilities (Table 4)")
	for _, n := range []int{1, 2, 4, 8} {
		fmt.Printf("  %d processors, %2d banks: C = %.3f\n",
			n, contention.Banks(n), contention.ClusterConflictProbability(n))
	}

	w, err := registry.Lookup(app)
	if err != nil {
		log.Fatal(err)
	}
	run := func(clusterSize, cacheKB int) *core.Result {
		cfg := core.DefaultConfig()
		cfg.Procs = procs
		cfg.ClusterSize = clusterSize
		cfg.CacheKBPerProc = cacheKB
		res, err := w.Run(cfg, apps.SizeTest)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("\nstep 2: %s's load-latency factors (Table 5)\n", app)
	profile := run(1, 0)
	lf := contention.LoadLatencyFactors(profile, contention.DefaultLoadExposure)
	for l := int64(1); l <= 4; l++ {
		fmt.Printf("  %d-cycle loads: execution time × %.3f\n", l, lf.Factor(l))
	}

	fmt.Println("\nstep 3: shared-cache cost factor per cluster size")
	for _, cs := range []int{1, 2, 4, 8} {
		fmt.Printf("  %d-way: hit time %d cycles, F = %.3f\n",
			cs, coherence.SharedCacheHitCycles(cs), contention.SharedCacheFactor(cs, lf))
	}

	fmt.Printf("\nstep 4: %s with 4 KB caches, benefits vs costs (Table 6 row)\n", app)
	base := run(1, 4)
	fmt.Printf("  %-8s %-14s %-12s %s\n", "cluster", "raw time", "cost factor", "costed relative")
	for _, cs := range []int{1, 2, 4, 8} {
		res := run(cs, 4)
		rel := contention.CostedRelativeTime(res, base, lf)
		fmt.Printf("  %-8s %-14d %-12.3f %.2f\n",
			fmt.Sprintf("%d-way", cs), res.ExecTime, contention.SharedCacheFactor(cs, lf), rel)
	}
	fmt.Println("\nWorking-set overlap outweighs the shared-cache costs at small")
	fmt.Println("caches — the paper's Table 6 conclusion.")
}
