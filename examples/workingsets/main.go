// Workingsets: measure an application's working set the way the paper's
// Section 5 does — sweep the per-processor cache size and watch the read
// miss rate fall off a cliff when the working set fits.
//
// It then shows the paper's key finite-capacity effect: at a cache size
// just below the per-processor working set, clustering overlaps the
// processors' working sets so the shared cache suddenly fits them.
//
// Run with:
//
//	go run ./examples/workingsets [app]
//
// (default app: barnes)
package main

import (
	"fmt"
	"log"
	"os"

	"clustersim/internal/apps"
	"clustersim/internal/apps/registry"
	"clustersim/internal/core"
)

func main() {
	app := "barnes"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	w, err := registry.Lookup(app)
	if err != nil {
		log.Fatal(err)
	}

	run := func(clusterSize, cacheKB int) *core.Result {
		cfg := core.DefaultConfig()
		cfg.Procs = 16
		cfg.ClusterSize = clusterSize
		cfg.CacheKBPerProc = cacheKB
		res, err := w.Run(cfg, apps.SizeTest)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("working-set sweep for %s (16 processors, unclustered)\n\n", app)
	fmt.Printf("%10s %14s %14s\n", "cache/proc", "read miss rate", "exec cycles")
	sweep := []int{1, 2, 4, 8, 16, 32, 0}
	for _, kb := range sweep {
		res := run(1, kb)
		label := fmt.Sprintf("%d KB", kb)
		if kb == 0 {
			label = "inf"
		}
		fmt.Printf("%10s %13.3f%% %14d\n",
			label, 100*res.Aggregate().ReadMissRate(), res.ExecTime)
	}

	fmt.Printf("\nworking-set overlap from clustering (4 KB per processor):\n\n")
	fmt.Printf("%10s %14s %14s\n", "cluster", "read miss rate", "exec cycles")
	for _, cs := range []int{1, 2, 4, 8} {
		res := run(cs, 4)
		fmt.Printf("%9dp %13.3f%% %14d\n",
			cs, 100*res.Aggregate().ReadMissRate(), res.ExecTime)
	}
	fmt.Println("\nWhen processors share read-mostly data, the clustered cache")
	fmt.Println("holds one copy instead of one per processor — the paper's")
	fmt.Println("Section 5 working-set overlap effect.")
}
