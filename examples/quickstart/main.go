// Quickstart: build a clustered machine, run a hand-written kernel on
// it, and read the paper-style execution breakdown.
//
// The kernel is a miniature of the paper's central mechanism: all
// processors repeatedly read a shared, read-mostly table. Processors
// that share a cluster cache fetch it once per cluster instead of once
// per processor, so the 4-way-clustered machine finishes faster.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"clustersim/internal/core"
)

func main() {
	for _, clusterSize := range []int{1, 4} {
		cfg := core.DefaultConfig()
		cfg.Procs = 16
		cfg.ClusterSize = clusterSize

		m, err := core.NewMachine(cfg)
		if err != nil {
			log.Fatal(err)
		}

		// A shared 16 KB read-mostly table and a private output slot per
		// processor.
		table := m.Alloc(16*1024, "table")
		out := m.Alloc(uint64(cfg.Procs)*64, "out")
		bar := m.NewBarrier()

		res, err := m.Run(func(p *core.Proc) {
			// Everybody scans the shared table three times...
			for pass := 0; pass < 3; pass++ {
				for off := uint64(0); off < 16*1024; off += 64 {
					p.Read(table + off)
					p.Compute(2)
				}
				bar.Wait(p)
			}
			// ...then writes a private result.
			p.Write(out + uint64(p.ID())*64)
		})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("=== %d processor(s) per cluster ===\n", clusterSize)
		res.WriteSummary(os.Stdout)
		fmt.Println()
	}
	fmt.Println("The clustered machine satisfies most table reads inside the")
	fmt.Println("cluster: same program, fewer misses, shorter execution time.")
}
