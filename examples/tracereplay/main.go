// Tracereplay: the trace-driven workflow as a library — record one
// application run, then sweep machine configurations by replaying the
// same reference stream, the way trace-driven studies amortised slow
// instrumentation runs in the Tango era.
//
// Run with:
//
//	go run ./examples/tracereplay
package main

import (
	"bytes"
	"fmt"
	"log"

	"clustersim/internal/apps"
	"clustersim/internal/apps/radix"
	"clustersim/internal/core"
	"clustersim/internal/trace"
)

func main() {
	const procs = 16

	// 1. Record: one execution-driven run with a collector attached.
	col := trace.NewCollector(procs)
	cfg := core.DefaultConfig()
	cfg.Procs = procs
	cfg.Tracer = col
	if _, err := radix.Run(cfg, radix.ParamsFor(apps.SizeTest)); err != nil {
		log.Fatal(err)
	}
	tr := col.Finish()
	fmt.Printf("recorded radix: %d events, %d regions, %d sync objects\n",
		len(tr.Events), len(tr.Regions), len(tr.Syncs))

	// 2. Serialise and read back, as a file on disk would be.
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialised to %d bytes (%.1f per event)\n",
		buf.Len(), float64(buf.Len())/float64(len(tr.Events)))
	tr2, err := trace.Read(&buf)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Replay across a configuration sweep — no re-execution of the
	// application, just the memory system.
	fmt.Printf("\n%-10s %-10s %14s %14s\n", "cluster", "cache", "exec cycles", "read misses")
	for _, cs := range []int{1, 2, 4, 8} {
		for _, kb := range []int{4, 0} {
			rcfg := core.DefaultConfig()
			rcfg.Procs = procs
			rcfg.ClusterSize = cs
			rcfg.CacheKBPerProc = kb
			res, err := trace.Replay(rcfg, tr2)
			if err != nil {
				log.Fatal(err)
			}
			cache := fmt.Sprintf("%dKB", kb)
			if kb == 0 {
				cache = "inf"
			}
			fmt.Printf("%-10s %-10s %14d %14d\n",
				fmt.Sprintf("%d-way", cs), cache, res.ExecTime, res.Aggregate().ReadMisses)
		}
	}
	fmt.Println("\nCaveat: replay fixes the recorded interleaving, so it is a fast")
	fmt.Println("approximation for capacity questions — the execution-driven mode")
	fmt.Println("(the paper's choice) remains the reference.")
}
