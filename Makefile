# clustersim build and reproduction targets.

GO ?= go

.PHONY: all build vet lint simlint sanitize-suite test test-short race bench experiments paper examples clean

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet plus simlint, the project's determinism
# linter (wall-clock reads, unseeded rand, order-dependent map ranges,
# stray goroutines, float accumulation into virtual time).
lint: vet simlint

simlint:
	$(GO) run ./cmd/simlint ./...
	$(GO) run ./cmd/simlint -tests ./...

# Short reproduction sweep with the runtime sanitizer attached: every
# coherence transaction is cross-validated against the directory, so a
# protocol regression fails loudly rather than skewing the tables.
sanitize-suite: build
	$(GO) run ./cmd/experiments -procs 16 -size test -sanitize fig2 table3

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The engine's token-passing design must be race-clean; CI runs this on
# every PR (.github/workflows/ci.yml).
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# Regenerate every table and figure at the scaled default sizes (~15 min).
experiments: build
	$(GO) run ./cmd/experiments -procs 64 -size default all

# Full Table 2 problem sizes (slow).
paper: build
	$(GO) run ./cmd/experiments -procs 64 -size paper all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/clusterstudy
	$(GO) run ./examples/workingsets
	$(GO) run ./examples/costmodel
	$(GO) run ./examples/tracereplay
	$(GO) run ./examples/telemetry

clean:
	$(GO) clean ./...
