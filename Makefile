# clustersim build and reproduction targets.

GO ?= go

.PHONY: all build vet lint simlint sarif sanitize-suite profile-suite profile-golden critpath-suite critpath-golden fault-suite resume-suite obs-suite fabric-suite fleet-suite test test-short race bench bench-go bench-gate bench-baseline experiments paper examples clean

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet plus simlint, the project's determinism and
# contract linter — wall-clock reads, unseeded rand, order-dependent
# map ranges, stray goroutines, float accumulation into virtual time,
# config-hash exclusion drift, observer packages mutating simulation
# state, empty/duplicate sync names, and stale //simlint:allow
# directives. Findings are gated against the checked-in baseline
# (empty: the tree is clean). `make sarif` renders the same run as
# SARIF 2.1.0 for CI annotation.
lint: vet simlint

simlint:
	$(GO) run ./cmd/simlint -baseline .simlint-baseline.json ./...
	$(GO) run ./cmd/simlint -tests -baseline .simlint-baseline.json ./...

SARIF_OUT ?= /tmp/clustersim-sarif
sarif:
	@mkdir -p $(SARIF_OUT)
	$(GO) run ./cmd/simlint -tests -baseline .simlint-baseline.json \
		-sarif $(SARIF_OUT)/simlint.sarif ./... || true
	@echo "sarif: wrote $(SARIF_OUT)/simlint.sarif"

# Short reproduction sweep with the runtime sanitizer attached: every
# coherence transaction is cross-validated against the directory, so a
# protocol regression fails loudly rather than skewing the tables.
sanitize-suite: build
	$(GO) run ./cmd/experiments -procs 16 -size test -sanitize fig2 table3

# Sharing-profiler smoke test: run MP3D with -profile, render the flat
# report with tracetool, and diff it against the checked-in golden. The
# simulator is bit-reproducible, so any drift is a real behaviour change
# (update the golden deliberately with `make profile-golden`).
PROFILE_OUT ?= /tmp/clustersim-profile
PROFILE_RUN = $(GO) run ./cmd/clustersim -app mp3d -size test -procs 16 -cluster 4 -cache 1 \
		-top 5 -profile $(PROFILE_OUT)/mp3d.profile.json
profile-suite: build
	@mkdir -p $(PROFILE_OUT)
	$(PROFILE_RUN) > /dev/null
	$(GO) run ./cmd/tracetool profile $(PROFILE_OUT)/mp3d.profile.json > $(PROFILE_OUT)/mp3d.flat
	diff -u internal/profile/testdata/mp3d-c4-1k.flat.golden $(PROFILE_OUT)/mp3d.flat
	@echo "profile-suite: flat report matches golden"

# Fault sweep with the sanitizer attached: MP3D and Ocean absorb
# deterministic NACKs, delayed acks and latency jitter while every
# coherence transaction is cross-validated — faults must stretch
# virtual time without ever corrupting protocol state.
fault-suite: build
	$(GO) run ./cmd/experiments -procs 16 -size test -sanitize ext-faults

# Interrupt/resume smoke test: a journalled run stopped after 3 points
# (exit code 3) must, when resumed from the same -state dir, emit
# tables byte-identical to an uninterrupted run. The binary is built
# and invoked directly because `go run` folds any non-zero program
# exit into its own exit code 1, hiding the distinct interrupt code.
RESUME_OUT ?= /tmp/clustersim-resume
resume-suite: build
	@rm -rf $(RESUME_OUT) && mkdir -p $(RESUME_OUT)
	$(GO) build -o $(RESUME_OUT)/experiments ./cmd/experiments
	$(RESUME_OUT)/experiments -procs 16 -size test fig2 > $(RESUME_OUT)/clean.txt
	@$(RESUME_OUT)/experiments -procs 16 -size test -state $(RESUME_OUT)/state -stop-after 3 fig2 \
		> /dev/null 2>$(RESUME_OUT)/interrupt.log; \
	code=$$?; if [ $$code -ne 3 ]; then \
		echo "resume-suite: expected interrupted exit code 3, got $$code"; \
		cat $(RESUME_OUT)/interrupt.log; exit 1; fi
	$(RESUME_OUT)/experiments -procs 16 -size test -state $(RESUME_OUT)/state fig2 > $(RESUME_OUT)/resumed.txt
	diff -u $(RESUME_OUT)/clean.txt $(RESUME_OUT)/resumed.txt
	@echo "resume-suite: resumed tables byte-identical to uninterrupted run"

# Live-observability smoke test: run a journal-free fig2 sweep with the
# metrics/status endpoints served (-serve) and the structured run-event
# log written (-events), poll /status until the sweep reports done,
# then validate the Prometheus exposition and the events JSONL with the
# repo's own tooling (tracetool metrics / tracetool events). The -linger
# window keeps the endpoints up after the last point so the scrapes
# race nothing.
OBS_OUT ?= /tmp/clustersim-obs
OBS_ADDR ?= 127.0.0.1:19095
obs-suite: build
	@rm -rf $(OBS_OUT) && mkdir -p $(OBS_OUT)
	$(GO) build -o $(OBS_OUT)/experiments ./cmd/experiments
	$(GO) build -o $(OBS_OUT)/tracetool ./cmd/tracetool
	@$(OBS_OUT)/experiments -procs 16 -size test -serve $(OBS_ADDR) \
		-events $(OBS_OUT)/sweep.events.jsonl -linger 30s fig2 \
		> $(OBS_OUT)/tables.txt 2> $(OBS_OUT)/run.log & pid=$$!; \
	trap "kill $$pid 2>/dev/null" EXIT; \
	state=; for i in $$(seq 1 150); do \
		state=$$(curl -sf http://$(OBS_ADDR)/status \
			| sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' | head -n 1); \
		if [ "$$state" = "done" ] || [ "$$state" = "failed" ]; then break; fi; \
		sleep 0.2; \
	done; \
	if [ "$$state" != "done" ]; then \
		echo "obs-suite: sweep never reached done (state=$$state)"; \
		cat $(OBS_OUT)/run.log; exit 1; fi; \
	curl -sf http://$(OBS_ADDR)/metrics > $(OBS_OUT)/metrics.txt; \
	curl -sf http://$(OBS_ADDR)/status > $(OBS_OUT)/status.json; \
	curl -sf "http://$(OBS_ADDR)/events?point=ocean-c4-inf" > $(OBS_OUT)/events.tail.jsonl; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; true
	$(OBS_OUT)/tracetool metrics $(OBS_OUT)/metrics.txt
	grep -q 'clustersim_sweep_points_total{state="done"}' $(OBS_OUT)/metrics.txt
	grep -q '"schema": "clustersim/status/v1"' $(OBS_OUT)/status.json
	grep -q '"state": "done"' $(OBS_OUT)/status.json
	test -s $(OBS_OUT)/events.tail.jsonl
	$(OBS_OUT)/tracetool events $(OBS_OUT)/sweep.events.jsonl > $(OBS_OUT)/events.txt
	grep -q 'sweep-done' $(OBS_OUT)/events.txt
	@echo "obs-suite: /metrics valid, /status done, run-event log renders"

# Distributed-sweep fabric suite, two halves. First the hermetic chaos
# matrix under the race detector: every fabric test runs on the
# simulated network with seed-deterministic message drop, duplication,
# delay, partitions and scripted worker crashes — including the
# keystone proof that a distributed sweep under chaos renders tables
# byte-identical to a local run. Then a real end-to-end smoke over
# localhost TCP: a coordinator and two worker processes sweep table7,
# the distributed tables are diffed against a plain local run, and the
# coordinator's run-event log must carry the fabric lifecycle
# (join/result/drain). The event log is left in $(FABRIC_OUT) for CI
# to archive.
FABRIC_OUT ?= /tmp/clustersim-fabric
FABRIC_PORT ?= 17600
fabric-suite: build
	$(GO) test -race -run 'TestFabric|TestChaos|TestSimnet|TestWire|TestConn|TestCoordinator|TestDistributedSweepByteIdentical' \
		./internal/fabric/ ./internal/experiments/
	@rm -rf $(FABRIC_OUT) && mkdir -p $(FABRIC_OUT)
	$(GO) build -o $(FABRIC_OUT)/experiments ./cmd/experiments
	$(FABRIC_OUT)/experiments -procs 16 -size test table7 > $(FABRIC_OUT)/local.txt
	@$(FABRIC_OUT)/experiments -procs 16 -size test -state $(FABRIC_OUT)/coord \
		-coordinator 127.0.0.1:$(FABRIC_PORT) \
		-events $(FABRIC_OUT)/fabric.events.jsonl table7 \
		> $(FABRIC_OUT)/dist.txt 2> $(FABRIC_OUT)/coord.log & cpid=$$!; \
	sleep 1; \
	$(FABRIC_OUT)/experiments -procs 16 -size test -worker w1 \
		-connect 127.0.0.1:$(FABRIC_PORT) -state $(FABRIC_OUT)/w1 \
		> /dev/null 2> $(FABRIC_OUT)/w1.log & w1=$$!; \
	$(FABRIC_OUT)/experiments -procs 16 -size test -worker w2 \
		-connect 127.0.0.1:$(FABRIC_PORT) -state $(FABRIC_OUT)/w2 \
		> /dev/null 2> $(FABRIC_OUT)/w2.log & w2=$$!; \
	wait $$cpid; code=$$?; \
	wait $$w1 $$w2 2>/dev/null; \
	if [ $$code -ne 0 ]; then \
		echo "fabric-suite: coordinator exited $$code"; \
		cat $(FABRIC_OUT)/coord.log; exit 1; fi
	diff -u $(FABRIC_OUT)/local.txt $(FABRIC_OUT)/dist.txt
	grep -q '"kind":"fabric-result"' $(FABRIC_OUT)/fabric.events.jsonl
	grep -q '"kind":"fabric-drain"' $(FABRIC_OUT)/fabric.events.jsonl
	@echo "fabric-suite: chaos matrix race-clean; distributed tables byte-identical to local run"

# Fleet observability suite, two halves. First the keystone chaos
# proof under the race detector: the fleet view, span buffer, trace
# IDs and metrics federation unit tests, plus the merged-timeline
# completeness test — a chaotic distributed sweep (drops, duplicates,
# delays, a worker crash with journal restart, and a network
# partition) must leave every assigned point with exactly one terminal
# state in the merged timeline and render tables byte-identical to a
# local run. Then a real two-process TCP sweep with the fleet plane
# mounted: a coordinator (-serve -events) and two workers (-serve,
# their obs addresses advertised on Hello) sweep table7; GET /fleet,
# /fleet/trace and /fleet/metrics are scraped during -linger and
# validated with tracetool (fleet doc schema, per-point timeline,
# federated exposition), the merged event log must carry worker-origin
# spans, and the distributed tables are diffed against a plain local
# run. Artifacts (fleet.json, the merged log, the Chrome export) are
# left in $(FLEET_OUT) for CI to archive.
FLEET_OUT ?= /tmp/clustersim-fleet
FLEET_PORT ?= 17610
FLEET_OBS ?= 127.0.0.1:19110
fleet-suite: build
	$(GO) test -race -run 'TestFleet|TestView|TestFederator|TestSpanBuffer|TestTraceID|TestLogMirror' \
		./internal/obs/fleet/ ./internal/experiments/
	@rm -rf $(FLEET_OUT) && mkdir -p $(FLEET_OUT)
	$(GO) build -o $(FLEET_OUT)/experiments ./cmd/experiments
	$(GO) build -o $(FLEET_OUT)/tracetool ./cmd/tracetool
	$(FLEET_OUT)/experiments -procs 16 -size test table7 > $(FLEET_OUT)/local.txt
	@$(FLEET_OUT)/experiments -procs 16 -size test -state $(FLEET_OUT)/coord \
		-coordinator 127.0.0.1:$(FLEET_PORT) -serve $(FLEET_OBS) \
		-events $(FLEET_OUT)/fleet.events.jsonl -linger 30s table7 \
		> $(FLEET_OUT)/dist.txt 2> $(FLEET_OUT)/coord.log & cpid=$$!; \
	trap "kill $$cpid 2>/dev/null" EXIT; \
	sleep 1; \
	$(FLEET_OUT)/experiments -procs 16 -size test -worker w1 \
		-connect 127.0.0.1:$(FLEET_PORT) -state $(FLEET_OUT)/w1 -serve 127.0.0.1:19111 \
		> /dev/null 2> $(FLEET_OUT)/w1.log & w1=$$!; \
	$(FLEET_OUT)/experiments -procs 16 -size test -worker w2 \
		-connect 127.0.0.1:$(FLEET_PORT) -state $(FLEET_OUT)/w2 -serve 127.0.0.1:19112 \
		> /dev/null 2> $(FLEET_OUT)/w2.log & w2=$$!; \
	wait $$w1 $$w2; wcode=$$?; \
	if [ $$wcode -ne 0 ]; then \
		echo "fleet-suite: worker exited $$wcode"; \
		cat $(FLEET_OUT)/w1.log $(FLEET_OUT)/w2.log; exit 1; fi; \
	ok=; for i in $$(seq 1 100); do \
		if curl -sf http://$(FLEET_OBS)/fleet > $(FLEET_OUT)/fleet.json 2>/dev/null \
			&& grep -q '"points": 8' $(FLEET_OUT)/fleet.json; then ok=1; break; fi; \
		sleep 0.2; \
	done; \
	if [ -z "$$ok" ]; then \
		echo "fleet-suite: /fleet never showed the full sweep"; \
		cat $(FLEET_OUT)/fleet.json $(FLEET_OUT)/coord.log; exit 1; fi; \
	curl -sf "http://$(FLEET_OBS)/fleet/trace?point=ocean-c4-inf" > $(FLEET_OUT)/fleet.trace.json; \
	curl -sf http://$(FLEET_OBS)/fleet/metrics > $(FLEET_OUT)/fleet.metrics.txt; \
	kill $$cpid 2>/dev/null; wait $$cpid 2>/dev/null; true
	diff -u $(FLEET_OUT)/local.txt $(FLEET_OUT)/dist.txt
	$(FLEET_OUT)/tracetool fleet $(FLEET_OUT)/fleet.json
	grep -q '"schema": "clustersim/fleet/v1"' $(FLEET_OUT)/fleet.json
	grep -q '"workers": 2' $(FLEET_OUT)/fleet.json
	grep -q '"schema": "clustersim/fleettrace/v1"' $(FLEET_OUT)/fleet.trace.json
	$(FLEET_OUT)/tracetool metrics $(FLEET_OUT)/fleet.metrics.txt
	grep -q 'worker="w1"' $(FLEET_OUT)/fleet.metrics.txt
	grep -q '"run":"worker-w1"' $(FLEET_OUT)/fleet.events.jsonl
	$(FLEET_OUT)/tracetool fleet -timeline ocean-c4-inf $(FLEET_OUT)/fleet.events.jsonl > $(FLEET_OUT)/timeline.txt
	test -s $(FLEET_OUT)/timeline.txt
	$(FLEET_OUT)/tracetool fleet -chrome $(FLEET_OUT)/fleet.chrome.json $(FLEET_OUT)/fleet.events.jsonl
	@echo "fleet-suite: merged timeline complete under chaos; /fleet, /fleet/trace and federated /metrics valid over real TCP"

profile-golden: build
	@mkdir -p $(PROFILE_OUT)
	$(PROFILE_RUN) > /dev/null
	$(GO) run ./cmd/tracetool profile $(PROFILE_OUT)/mp3d.profile.json \
		> internal/profile/testdata/mp3d-c4-1k.flat.golden
	@echo "profile-golden: regenerated internal/profile/testdata/mp3d-c4-1k.flat.golden"

# Critical-path smoke test: run Ocean with -critpath, render the flat
# report with tracetool, and diff it against the checked-in golden.
# Like the profile golden, any drift is a real behaviour change
# (update deliberately with `make critpath-golden`).
CRITPATH_OUT ?= /tmp/clustersim-critpath
CRITPATH_RUN = $(GO) run ./cmd/clustersim -app ocean -size test -procs 16 -cluster 4 -cache 1 \
		-critpath $(CRITPATH_OUT)/ocean.critpath.json
critpath-suite: build
	@mkdir -p $(CRITPATH_OUT)
	$(CRITPATH_RUN) > /dev/null
	$(GO) run ./cmd/tracetool critpath $(CRITPATH_OUT)/ocean.critpath.json > $(CRITPATH_OUT)/ocean.flat
	diff -u internal/critpath/testdata/ocean-c4-1k.flat.golden $(CRITPATH_OUT)/ocean.flat
	@echo "critpath-suite: flat report matches golden"

critpath-golden: build
	@mkdir -p $(CRITPATH_OUT)
	$(CRITPATH_RUN) > /dev/null
	$(GO) run ./cmd/tracetool critpath $(CRITPATH_OUT)/ocean.critpath.json \
		> internal/critpath/testdata/ocean-c4-1k.flat.golden
	@echo "critpath-golden: regenerated internal/critpath/testdata/ocean-c4-1k.flat.golden"

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The engine's token-passing design must be race-clean; CI runs this on
# every PR (.github/workflows/ci.yml).
race:
	$(GO) test -race ./...

# Machine-readable benchmark harness (cmd/perfbench): run the fixed
# matrix once per point with the host performance monitor attached and
# write BENCH_<stamp>.json into $(BENCH_OUT) (schema in EXPERIMENTS.md;
# render or diff with `tracetool bench`). The classic Go
# microbenchmarks remain available as `make bench-go`.
BENCH_OUT ?= /tmp/clustersim-bench
bench: build
	@mkdir -p $(BENCH_OUT)
	$(GO) run ./cmd/perfbench -out $(BENCH_OUT)

bench-go:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# Regression gate over the CI smoke matrix (three applications): exits
# nonzero when a deterministic counter (points, simcycles, handoffs,
# refs) drifts from bench_baseline.json, or when allocations grow past
# BENCH_TOLERANCE. CI passes a huge tolerance so only the deterministic
# counters gate there (allocation counts shift across Go releases).
BENCH_GATE_APPS ?= mp3d,ocean,fft
BENCH_TOLERANCE ?= 0.05
bench-gate: build
	@mkdir -p $(BENCH_OUT)
	$(GO) run ./cmd/perfbench -apps $(BENCH_GATE_APPS) -tolerance $(BENCH_TOLERANCE) \
		-out $(BENCH_OUT) -baseline bench_baseline.json

# Regenerate the checked-in baseline after a deliberate simulation
# change (new app work, protocol fix) — never to paper over a gate
# failure you cannot explain.
bench-baseline: build
	$(GO) run ./cmd/perfbench -apps $(BENCH_GATE_APPS) -stamp baseline -out . -quiet
	mv BENCH_baseline.json bench_baseline.json
	@echo "bench-baseline: regenerated bench_baseline.json"

# Regenerate every table and figure at the scaled default sizes (~15 min).
experiments: build
	$(GO) run ./cmd/experiments -procs 64 -size default all

# Full Table 2 problem sizes (slow).
paper: build
	$(GO) run ./cmd/experiments -procs 64 -size paper all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/clusterstudy
	$(GO) run ./examples/workingsets
	$(GO) run ./examples/costmodel
	$(GO) run ./examples/tracereplay
	$(GO) run ./examples/telemetry

clean:
	$(GO) clean ./...
