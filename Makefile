# clustersim build and reproduction targets.

GO ?= go

.PHONY: all build vet test test-short race bench experiments paper examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The engine's token-passing design must be race-clean; CI runs this on
# every PR (.github/workflows/ci.yml).
race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# Regenerate every table and figure at the scaled default sizes (~15 min).
experiments: build
	$(GO) run ./cmd/experiments -procs 64 -size default all

# Full Table 2 problem sizes (slow).
paper: build
	$(GO) run ./cmd/experiments -procs 64 -size paper all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/clusterstudy
	$(GO) run ./examples/workingsets
	$(GO) run ./examples/costmodel
	$(GO) run ./examples/tracereplay
	$(GO) run ./examples/telemetry

clean:
	$(GO) clean ./...
