// Package memory models the shared address space of the simulated
// machine: a bump allocator handing out page-aligned regions, and the
// paper's page-placement policy — memory is assigned a home cluster in
// round-robin order when a page is first touched, unless the application
// placed it explicitly (as some SPLASH codes do) or the region is a
// processor-local arena ("all stack references are allocated locally").
package memory

import (
	"fmt"
	"sort"
)

// Addr is a simulated virtual address.
type Addr = uint64

// NoHome marks a page whose home has not been assigned yet.
const NoHome = -1

// PlacementPolicy selects how first-touched pages are homed.
type PlacementPolicy uint8

const (
	// RoundRobin is the paper's policy: pages are homed to clusters in
	// round-robin order of first touch.
	RoundRobin PlacementPolicy = iota
	// AllOnZero homes every unpinned page at cluster 0 — the ablation
	// baseline showing what round-robin distribution buys.
	AllOnZero
)

// Region describes one allocation, for diagnostics and miss profiling.
type Region struct {
	Name string
	Base Addr
	Size uint64
}

// End returns the first address past the region.
func (r Region) End() Addr { return r.Base + r.Size }

// AddressSpace is the simulated shared address space.
type AddressSpace struct {
	pageShift   uint
	numClusters int
	next        Addr  // bump pointer, page aligned
	rrNext      int   // next cluster in the round-robin rotation
	homes       []int // page number -> home cluster; grown on demand
	regions     []Region
	policy      PlacementPolicy
}

// New creates an address space distributing pages of pageBytes (a power
// of two) across numClusters home clusters.
func New(pageBytes uint64, numClusters int) (*AddressSpace, error) {
	if numClusters <= 0 {
		return nil, fmt.Errorf("memory: numClusters %d must be positive", numClusters)
	}
	if pageBytes == 0 || pageBytes&(pageBytes-1) != 0 {
		return nil, fmt.Errorf("memory: page size %d must be a power of two", pageBytes)
	}
	shift := uint(0)
	for 1<<shift < pageBytes {
		shift++
	}
	return &AddressSpace{
		pageShift:   shift,
		numClusters: numClusters,
		next:        pageBytes, // keep address 0 unmapped to catch stray accesses
	}, nil
}

// SetPolicy selects the placement policy; call before simulation.
func (as *AddressSpace) SetPolicy(p PlacementPolicy) { as.policy = p }

// PageBytes returns the placement granularity.
func (as *AddressSpace) PageBytes() uint64 { return 1 << as.pageShift }

// NumClusters returns the number of home clusters.
func (as *AddressSpace) NumClusters() int { return as.numClusters }

// Alloc reserves size bytes and returns the page-aligned base address.
// The pages are unhomed until first touch.
func (as *AddressSpace) Alloc(size uint64, name string) Addr {
	if size == 0 {
		size = 1
	}
	base := as.next
	pages := (size + as.PageBytes() - 1) >> as.pageShift
	as.next += pages << as.pageShift
	as.regions = append(as.regions, Region{Name: name, Base: base, Size: size})
	return base
}

// AllocLocal reserves size bytes homed at the given cluster — used for
// per-processor private data and explicitly placed application arrays.
func (as *AddressSpace) AllocLocal(size uint64, name string, cluster int) Addr {
	base := as.Alloc(size, name)
	as.Place(base, size, cluster)
	return base
}

// Place pins every page overlapping [base, base+size) to the cluster,
// overriding round-robin first-touch assignment.
func (as *AddressSpace) Place(base Addr, size uint64, cluster int) {
	if cluster < 0 || cluster >= as.numClusters {
		panic(fmt.Sprintf("memory: place on invalid cluster %d", cluster))
	}
	first := base >> as.pageShift
	last := (base + size - 1) >> as.pageShift
	as.growHomes(last)
	for p := first; p <= last; p++ {
		as.homes[p] = cluster
	}
}

// HomeOf returns the home cluster of addr, assigning one round-robin if
// this is the first touch of its page.
func (as *AddressSpace) HomeOf(addr Addr) int {
	p := addr >> as.pageShift
	as.growHomes(p)
	h := as.homes[p]
	if h == NoHome {
		if as.policy == AllOnZero {
			h = 0
		} else {
			h = as.rrNext
			as.rrNext++
			if as.rrNext == as.numClusters {
				as.rrNext = 0
			}
		}
		as.homes[p] = h
	}
	return h
}

// Mapped reports whether addr lies inside some allocated region.
func (as *AddressSpace) Mapped(addr Addr) bool {
	return addr >= as.PageBytes() && addr < as.next
}

// RegionOf returns the allocation containing addr, if any.
func (as *AddressSpace) RegionOf(addr Addr) (Region, bool) {
	i, ok := as.RegionIndexOf(addr)
	if !ok {
		return Region{}, false
	}
	return as.regions[i], true
}

// RegionIndexOf returns the allocation-order index of the region
// containing addr, if any — the stable integer key profilers use to
// avoid per-access string handling.
func (as *AddressSpace) RegionIndexOf(addr Addr) (int, bool) {
	i := sort.Search(len(as.regions), func(i int) bool {
		return as.regions[i].Base > addr
	})
	if i == 0 {
		return 0, false
	}
	if addr < as.regions[i-1].End() {
		return i - 1, true
	}
	// addr may fall in the page-alignment padding of the region: report
	// it as unmapped data even though the allocator reserved the page.
	return 0, false
}

// NameOf returns the name of the allocation containing addr, or "" when
// addr lies outside every named region — the RegionOf-backed lookup
// diagnostics and reports use.
func (as *AddressSpace) NameOf(addr Addr) string {
	if i, ok := as.RegionIndexOf(addr); ok {
		return as.regions[i].Name
	}
	return ""
}

// Regions returns all allocations in address order.
func (as *AddressSpace) Regions() []Region { return as.regions }

// FootprintBytes returns the total bytes reserved so far.
func (as *AddressSpace) FootprintBytes() uint64 { return uint64(as.next) - as.PageBytes() }

func (as *AddressSpace) growHomes(page uint64) {
	for uint64(len(as.homes)) <= page {
		as.homes = append(as.homes, NoHome)
	}
}
