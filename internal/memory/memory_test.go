package memory

import (
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, page uint64, clusters int) *AddressSpace {
	t.Helper()
	as, err := New(page, clusters)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return as
}

func TestNewRejectsBadArgs(t *testing.T) {
	if _, err := New(4096, 0); err == nil {
		t.Error("want error for zero clusters")
	}
	if _, err := New(0, 4); err == nil {
		t.Error("want error for zero page size")
	}
	if _, err := New(3000, 4); err == nil {
		t.Error("want error for non-power-of-two page size")
	}
}

func TestAllocPageAlignedAndDisjoint(t *testing.T) {
	as := mustNew(t, 4096, 8)
	a := as.Alloc(100, "a")
	b := as.Alloc(5000, "b")
	c := as.Alloc(1, "c")
	for _, base := range []Addr{a, b, c} {
		if base%4096 != 0 {
			t.Errorf("base %#x not page aligned", base)
		}
	}
	if b < a+4096 {
		t.Errorf("b=%#x overlaps a=%#x", b, a)
	}
	if c < b+8192 {
		t.Errorf("c=%#x overlaps b=%#x (5000 bytes needs 2 pages)", c, b)
	}
	if as.Mapped(0) {
		t.Error("address 0 must stay unmapped")
	}
}

func TestFirstTouchRoundRobin(t *testing.T) {
	as := mustNew(t, 4096, 4)
	base := as.Alloc(8*4096, "grid")
	// Touch pages in a scattered order; homes must follow touch order.
	order := []uint64{3, 0, 5, 1}
	for i, p := range order {
		if h := as.HomeOf(base + p*4096); h != i%4 {
			t.Errorf("page %d touched %dth: home %d, want %d", p, i, h, i%4)
		}
	}
	// Re-touching gives the same answer.
	if h := as.HomeOf(base + 3*4096); h != 0 {
		t.Errorf("second touch changed home to %d", h)
	}
	// Same page, different offset: same home.
	if h := as.HomeOf(base + 3*4096 + 100); h != 0 {
		t.Errorf("offset within page changed home to %d", h)
	}
}

func TestRoundRobinWraps(t *testing.T) {
	as := mustNew(t, 4096, 3)
	base := as.Alloc(7*4096, "x")
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for p, w := range want {
		if h := as.HomeOf(base + uint64(p)*4096); h != w {
			t.Errorf("page %d: home %d, want %d", p, h, w)
		}
	}
}

func TestExplicitPlacementOverridesFirstTouch(t *testing.T) {
	as := mustNew(t, 4096, 4)
	a := as.Alloc(2*4096, "pinned")
	as.Place(a, 2*4096, 3)
	if h := as.HomeOf(a); h != 3 {
		t.Errorf("pinned page home %d, want 3", h)
	}
	if h := as.HomeOf(a + 4096); h != 3 {
		t.Errorf("second pinned page home %d, want 3", h)
	}
	// Placement must not consume round-robin slots.
	b := as.Alloc(4096, "free")
	if h := as.HomeOf(b); h != 0 {
		t.Errorf("first free touch got home %d, want 0", h)
	}
}

func TestAllocLocal(t *testing.T) {
	as := mustNew(t, 4096, 8)
	for c := 0; c < 8; c++ {
		base := as.AllocLocal(4096, "stack", c)
		if h := as.HomeOf(base); h != c {
			t.Errorf("local arena for cluster %d homed at %d", c, h)
		}
	}
}

func TestRegionOf(t *testing.T) {
	as := mustNew(t, 4096, 2)
	a := as.Alloc(100, "alpha")
	b := as.Alloc(200, "beta")
	if r, ok := as.RegionOf(a + 50); !ok || r.Name != "alpha" {
		t.Errorf("RegionOf(a+50) = %v, %v", r, ok)
	}
	if r, ok := as.RegionOf(b); !ok || r.Name != "beta" {
		t.Errorf("RegionOf(b) = %v, %v", r, ok)
	}
	if _, ok := as.RegionOf(a + 200); ok {
		t.Error("address in alignment padding reported as mapped region")
	}
	if _, ok := as.RegionOf(0); ok {
		t.Error("address 0 reported as mapped")
	}
	if n := as.NameOf(b + 199); n != "beta" {
		t.Errorf("NameOf(b+199) = %q, want beta", n)
	}
	if n := as.NameOf(a + 200); n != "" {
		t.Errorf("NameOf(padding) = %q, want empty", n)
	}
	if i, ok := as.RegionIndexOf(b); !ok || i != 1 {
		t.Errorf("RegionIndexOf(b) = %d, %v, want 1, true", i, ok)
	}
}

func TestMappedBounds(t *testing.T) {
	as := mustNew(t, 4096, 2)
	a := as.Alloc(100, "only")
	if !as.Mapped(a) {
		t.Error("allocated base not mapped")
	}
	if as.Mapped(a + 4096) {
		t.Error("address past allocation reported mapped")
	}
}

// Property: allocations never overlap and HomeOf is stable and in range.
func TestAllocatorProperties(t *testing.T) {
	f := func(sizes []uint16, clusters uint8) bool {
		nc := int(clusters%16) + 1
		as, err := New(4096, nc)
		if err != nil {
			return false
		}
		type span struct{ base, end Addr }
		var spans []span
		for i, sz := range sizes {
			if i >= 64 {
				break
			}
			s := uint64(sz) + 1
			b := as.Alloc(s, "r")
			spans = append(spans, span{b, b + s})
		}
		for i := 1; i < len(spans); i++ {
			if spans[i].base < spans[i-1].end {
				return false
			}
		}
		for _, sp := range spans {
			h1 := as.HomeOf(sp.base)
			h2 := as.HomeOf(sp.base)
			if h1 != h2 || h1 < 0 || h1 >= nc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFootprintBytes(t *testing.T) {
	as := mustNew(t, 4096, 2)
	as.Alloc(100, "a")  // 1 page
	as.Alloc(9000, "b") // 3 pages
	if got := as.FootprintBytes(); got != 4*4096 {
		t.Errorf("footprint = %d, want %d", got, 4*4096)
	}
}

func TestPlaceInvalidClusterPanics(t *testing.T) {
	as := mustNew(t, 4096, 2)
	a := as.Alloc(4096, "x")
	defer func() {
		if recover() == nil {
			t.Fatal("Place accepted out-of-range cluster")
		}
	}()
	as.Place(a, 4096, 5)
}

func TestAllOnZeroPolicy(t *testing.T) {
	as := mustNew(t, 4096, 4)
	as.SetPolicy(AllOnZero)
	a := as.Alloc(8*4096, "data")
	for pg := uint64(0); pg < 8; pg++ {
		if h := as.HomeOf(a + pg*4096); h != 0 {
			t.Fatalf("page %d homed at %d under AllOnZero", pg, h)
		}
	}
	// Explicit placement still wins.
	b := as.Alloc(4096, "pinned")
	as.Place(b, 4096, 3)
	if h := as.HomeOf(b); h != 3 {
		t.Fatalf("pinned page homed at %d", h)
	}
}
