package contention

import (
	"math"
	"testing"
	"testing/quick"

	"clustersim/internal/core"
	"clustersim/internal/stats"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// TestTable4Values checks the paper's published conflict probabilities.
func TestTable4Values(t *testing.T) {
	cases := []struct {
		n, m int
		want float64
	}{
		{1, 1, 0.0},
		{2, 8, 0.125},
		{4, 16, 0.176},
		{8, 32, 0.199},
	}
	for _, c := range cases {
		got := ConflictProbability(c.n, c.m)
		if !almost(got, c.want, 0.0105) {
			t.Errorf("C(n=%d,m=%d) = %.4f, want ≈%.3f", c.n, c.m, got, c.want)
		}
	}
}

func TestBanksProvisioning(t *testing.T) {
	want := map[int]int{1: 1, 2: 8, 4: 16, 8: 32}
	for n, m := range want {
		if got := Banks(n); got != m {
			t.Errorf("Banks(%d) = %d, want %d", n, got, m)
		}
	}
}

func TestClusterConflictMatchesTable4(t *testing.T) {
	want := map[int]float64{1: 0, 2: 0.125, 4: 0.176, 8: 0.199}
	for cs, w := range want {
		if got := ClusterConflictProbability(cs); !almost(got, w, 0.0105) {
			t.Errorf("cluster %d: C = %.4f, want ≈%.3f", cs, got, w)
		}
	}
}

// Property: C increases with processors, decreases with banks, stays in [0,1).
func TestConflictMonotonicityProperty(t *testing.T) {
	f := func(nSeed, mSeed uint8) bool {
		n := int(nSeed%16) + 1
		m := int(mSeed%63) + 2
		c := ConflictProbability(n, m)
		if c < 0 || c >= 1 {
			return false
		}
		if ConflictProbability(n+1, m) < c {
			return false
		}
		if ConflictProbability(n, m+1) > c {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func fakeResult(clusterSize int, execTime int64, reads uint64, cpu int64) *core.Result {
	cfg := core.DefaultConfig()
	cfg.Procs = 64
	cfg.ClusterSize = clusterSize
	r := &core.Result{Config: cfg, ExecTime: execTime}
	var p stats.Proc
	p.Reads = reads
	p.CPU = cpu
	r.Procs = []stats.Proc{p}
	return r
}

func TestLoadLatencyFactorsShape(t *testing.T) {
	// Load density 0.3 refs/cycle with exposure 0.25:
	// factor(L) = 1 + (L-1)*0.075.
	res := fakeResult(1, 1000, 300, 1000)
	f := LoadLatencyFactors(res, 0.25)
	want := LoadFactors{1, 1.075, 1.15, 1.225}
	for i := range f {
		if !almost(f[i], want[i], 1e-9) {
			t.Errorf("factor[%d] = %v, want %v", i, f[i], want[i])
		}
	}
	// Factors must land in the paper's observed band for realistic
	// densities (Table 5: 1.036..1.243 at 4 cycles).
	if f[3] < 1.05 || f[3] > 1.30 {
		t.Errorf("4-cycle factor %v outside plausible Table 5 band", f[3])
	}
}

func TestLoadFactorsClamp(t *testing.T) {
	f := LoadFactors{1, 1.1, 1.2, 1.3}
	if f.Factor(0) != 1 || f.Factor(1) != 1 {
		t.Error("latency ≤1 should give factor 1")
	}
	if f.Factor(7) != 1.3 {
		t.Error("latency >4 should clamp to the 4-cycle factor")
	}
	if f.Factor(3) != 1.2 {
		t.Error("latency 3 wrong")
	}
}

func TestZeroCPUNoNaN(t *testing.T) {
	res := fakeResult(1, 0, 100, 0)
	f := LoadLatencyFactors(res, 0.25)
	for i, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("factor[%d] = %v", i, v)
		}
	}
}

// TestSharedCacheFactorOrdering: bigger clusters pay more (longer hit
// times and more conflicts), and the unclustered factor is exactly the
// 1-cycle factor.
func TestSharedCacheFactorOrdering(t *testing.T) {
	lf := LoadFactors{1, 1.05, 1.11, 1.17}
	f1 := SharedCacheFactor(1, lf)
	f2 := SharedCacheFactor(2, lf)
	f4 := SharedCacheFactor(4, lf)
	f8 := SharedCacheFactor(8, lf)
	if f1 != 1 {
		t.Errorf("F(1) = %v, want 1", f1)
	}
	if !(f1 < f2 && f2 < f4 && f4 < f8) {
		t.Errorf("factors not increasing: %v %v %v %v", f1, f2, f4, f8)
	}
	// F(4) = (1-0.176)*factor(3) + 0.176*factor(4) ≈ 1.12
	want := (1-ClusterConflictProbability(4))*1.11 + ClusterConflictProbability(4)*1.17
	if !almost(f4, want, 1e-9) {
		t.Errorf("F(4) = %v, want %v", f4, want)
	}
}

func TestCostedRelativeTime(t *testing.T) {
	lf := LoadFactors{1, 1.05, 1.11, 1.17}
	base := fakeResult(1, 1000, 0, 0)
	clus := fakeResult(4, 900, 0, 0)
	got := CostedRelativeTime(clus, base, lf)
	want := 0.9 * SharedCacheFactor(4, lf)
	if !almost(got, want, 1e-9) {
		t.Fatalf("relative = %v, want %v", got, want)
	}
	// An equal-time clustered run must come out strictly worse than the
	// base once costs are applied — the paper's Table 7 LU behaviour.
	eq := fakeResult(8, 1000, 0, 0)
	if CostedRelativeTime(eq, base, lf) <= 1 {
		t.Error("costs should make equal-time clustering worse than 1.0")
	}
}
