// Package contention implements the paper's analytic cost model for a
// shared first-level cache (Section 6): the bank-conflict probability of
// a multi-banked non-blocking cache (Table 4), load-latency execution-
// time expansion factors (Table 5 — measured with Pixie in the paper, by
// re-using the simulator's reference profile here), and the weighted-
// average execution-time factor that combines them to produce the
// clustering-with-costs results (Tables 6 and 7).
package contention

import (
	"fmt"
	"math"

	"clustersim/internal/coherence"
	"clustersim/internal/core"
)

// BanksPerProcessor is the paper's provisioning rule: "the shared cache
// has four banks for each processor in the cluster".
const BanksPerProcessor = 4

// Banks returns the number of banks of a shared cache serving
// clusterSize processors. A single-processor cache is single-banked
// (Table 4's n=1, m=1 row).
func Banks(clusterSize int) int {
	if clusterSize <= 1 {
		return 1
	}
	return BanksPerProcessor * clusterSize
}

// ConflictProbability returns the probability that a reference conflicts
// with at least one other processor's reference in the same cycle, for n
// processors issuing to m banks uniformly at random:
//
//	C = 1 - ((m-1)/m)^(n-1)
//
// This is the paper's Table 4 formula.
func ConflictProbability(n, m int) float64 {
	if n <= 1 {
		return 0
	}
	if m <= 0 {
		panic(fmt.Sprintf("contention: %d banks", m))
	}
	return 1 - math.Pow(float64(m-1)/float64(m), float64(n-1))
}

// ClusterConflictProbability applies the provisioning rule and formula
// for one cluster size, reproducing Table 4 directly.
func ClusterConflictProbability(clusterSize int) float64 {
	return ConflictProbability(clusterSize, Banks(clusterSize))
}

// DefaultLoadExposure is the fraction of each extra load-latency cycle
// that the processor cannot hide by scheduling independent work into
// load delay slots. The paper measured per-application expansion with
// Pixie on compiler-scheduled MIPS binaries ("the processor will not
// stall on a load instruction until the register destination of the load
// is used"); we substitute this fixed exposure applied to the simulated
// load density, which lands the factors in the paper's 1.03–1.25 band.
const DefaultLoadExposure = 0.25

// LoadFactors are the Table 5 execution-time expansion factors for load
// hit latencies of 1..4 cycles.
type LoadFactors [4]float64

// Factor returns the expansion for a hit latency of cycles (1..4+).
func (f LoadFactors) Factor(cycles int64) float64 {
	switch {
	case cycles <= 1:
		return f[0]
	case cycles >= 4:
		return f[3]
	default:
		return f[cycles-1]
	}
}

// LoadLatencyFactors derives an application's Table 5 row from a
// uniprocessor-style run profile: the execution time with an L-cycle
// load hit is modelled as growing by (L-1) exposed cycles per load,
//
//	factor(L) = 1 + (L-1) × exposure × loads / busyCycles
//
// where loads/busyCycles is the measured load density of the run.
func LoadLatencyFactors(res *core.Result, exposure float64) LoadFactors {
	agg := res.Aggregate()
	density := 0.0
	if agg.CPU > 0 {
		density = float64(agg.Reads) / float64(agg.CPU)
	}
	var f LoadFactors
	for l := 1; l <= 4; l++ {
		f[l-1] = 1 + float64(l-1)*exposure*density
	}
	return f
}

// SharedCacheFactor is the paper's weighted average: a fraction C of
// references conflict and see one extra cycle of hit time, the rest see
// the base shared-cache hit time h(clusterSize) from Table 1:
//
//	F = (1-C) × factor(h) + C × factor(h+1)
func SharedCacheFactor(clusterSize int, lf LoadFactors) float64 {
	h := coherence.SharedCacheHitCycles(clusterSize)
	c := ClusterConflictProbability(clusterSize)
	return (1-c)*lf.Factor(h) + c*lf.Factor(h+1)
}

// CostedRelativeTime produces one cell of Tables 6/7: the execution time
// of a clustered run relative to the unclustered base, after multiplying
// each by its shared-cache cost factor.
func CostedRelativeTime(clustered, base *core.Result, lf LoadFactors) float64 {
	fc := SharedCacheFactor(clustered.Config.ClusterSize, lf)
	fb := SharedCacheFactor(base.Config.ClusterSize, lf)
	return (float64(clustered.ExecTime) * fc) / (float64(base.ExecTime) * fb)
}
