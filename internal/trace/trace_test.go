package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"clustersim/internal/core"
)

// record runs a small synthetic workload under a collector.
func record(t *testing.T, procs, clusterSize int) *Trace {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Procs = procs
	cfg.ClusterSize = clusterSize
	c := NewCollector(procs)
	cfg.Tracer = c
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := m.Alloc(1<<14, "data")
	bar := m.NewBarrier()
	lock := m.NewLock("l")
	flag := m.NewFlag("f")
	_, err = m.Run(func(p *core.Proc) {
		for i := 0; i < 40; i++ {
			off := uint64((p.ID()*101+i*7)%256) * 64
			if i%5 == 0 {
				p.Write(data + off)
			} else {
				p.Read(data + off)
			}
			p.Compute(3)
		}
		bar.Wait(p)
		lock.Acquire(p)
		p.Write(data)
		lock.Release(p)
		if p.ID() == 0 {
			flag.Set(p)
		} else {
			flag.Wait(p)
		}
		bar.Wait(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	return c.Finish()
}

func TestCollectorCaptures(t *testing.T) {
	tr := record(t, 4, 1)
	if tr.Procs != 4 {
		t.Fatalf("procs = %d", tr.Procs)
	}
	if len(tr.Regions) == 0 || tr.Regions[0].Name != "data" {
		t.Fatalf("regions = %+v", tr.Regions)
	}
	if len(tr.Syncs) != 3 {
		t.Fatalf("syncs = %+v", tr.Syncs)
	}
	kinds := map[core.EventKind]int{}
	for _, ev := range tr.Events {
		kinds[ev.Kind]++
	}
	if kinds[core.EvRead] != 4*32+0 { // 32 reads per proc in the loop
		t.Errorf("reads = %d", kinds[core.EvRead])
	}
	if kinds[core.EvBarrier] != 8 || kinds[core.EvAcquire] != 4 || kinds[core.EvRelease] != 4 {
		t.Errorf("sync events = %v", kinds)
	}
	if kinds[core.EvFlagSet] != 1 || kinds[core.EvFlagWait] != 3 {
		t.Errorf("flag events = %v", kinds)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	tr := record(t, 4, 2)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Procs != tr.Procs || len(got.Events) != len(tr.Events) ||
		len(got.Regions) != len(tr.Regions) || len(got.Syncs) != len(tr.Syncs) {
		t.Fatalf("shape mismatch: %d/%d events", len(got.Events), len(tr.Events))
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got.Events[i], tr.Events[i])
		}
	}
	for i := range tr.Regions {
		if got.Regions[i] != tr.Regions[i] {
			t.Fatalf("region %d mismatch", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not a trace")); err == nil {
		t.Fatal("want bad-magic error")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("want EOF error")
	}
}

func TestReplayMatchesOriginalConfig(t *testing.T) {
	// Replaying a trace through the same configuration must visit the
	// same references, hence produce identical reference counts.
	cfg := core.DefaultConfig()
	cfg.Procs = 4
	cfg.ClusterSize = 2
	tr := record(t, 4, 2)
	res, err := Replay(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	agg := res.Aggregate()
	var reads, writes uint64
	for _, ev := range tr.Events {
		switch ev.Kind {
		case core.EvRead:
			reads++
		case core.EvWrite:
			writes++
		}
	}
	if agg.Reads != reads || agg.Writes != writes {
		t.Fatalf("replay refs %d/%d, trace has %d/%d", agg.Reads, agg.Writes, reads, writes)
	}
}

func TestReplayAcrossConfigurations(t *testing.T) {
	// The point of traces: record once, replay under different cluster
	// sizes and cache sizes.
	tr := record(t, 4, 1)
	for _, cs := range []int{1, 2, 4} {
		for _, kb := range []int{0, 1} {
			cfg := core.DefaultConfig()
			cfg.Procs = 4
			cfg.ClusterSize = cs
			cfg.CacheKBPerProc = kb
			res, err := Replay(cfg, tr)
			if err != nil {
				t.Fatalf("cluster=%d cache=%d: %v", cs, kb, err)
			}
			if res.ExecTime <= 0 {
				t.Fatalf("cluster=%d: empty replay", cs)
			}
		}
	}
}

func TestReplayRejectsProcMismatch(t *testing.T) {
	tr := record(t, 4, 1)
	cfg := core.DefaultConfig()
	cfg.Procs = 8
	if _, err := Replay(cfg, tr); err == nil {
		t.Fatal("want processor-count mismatch error")
	}
}

func TestReplayDeterministic(t *testing.T) {
	tr := record(t, 4, 1)
	cfg := core.DefaultConfig()
	cfg.Procs = 4
	cfg.ClusterSize = 2
	a, err := Replay(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecTime != b.ExecTime {
		t.Fatalf("replay nondeterministic: %d vs %d", a.ExecTime, b.ExecTime)
	}
}

// Property: Write/Read round-trips arbitrary small event streams.
func TestRoundTripProperty(t *testing.T) {
	f := func(procsSeed uint8, events []struct {
		Proc uint8
		Kind uint8
		Arg  uint32
	}) bool {
		tr := &Trace{Procs: int(procsSeed%16) + 1}
		for _, e := range events {
			tr.Events = append(tr.Events, core.Event{
				Proc: int32(e.Proc),
				Kind: core.EventKind(e.Kind % 8),
				Arg:  uint64(e.Arg),
			})
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || got.Procs != tr.Procs || len(got.Events) != len(tr.Events) {
			return false
		}
		for i := range tr.Events {
			if got.Events[i] != tr.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
