// Package trace captures and replays simulated reference streams —
// the trace-driven counterpart to the library's execution-driven mode,
// mirroring Tango-lite's two operating modes. A Collector attached to a
// Machine records every reference, compute interval and synchronisation
// operation; the trace can be serialised to a compact binary stream and
// replayed through a machine with a *different* configuration (cluster
// size, cache size, organisation).
//
// The standard caveat of trace-driven simulation applies and is worth
// stating, because it is exactly why the paper's authors built an
// execution-driven simulator: a trace fixes the interleaving decisions
// (lock grant order, data-dependent control flow) that a real machine
// with different timing would change. Replay is therefore a fast
// approximation, best used for cache-capacity questions rather than
// synchronisation studies.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"clustersim/internal/core"
)

// Region describes one allocation in the traced machine, so replay can
// rebuild an identical address layout (the allocator is a deterministic
// bump allocator: same sizes in the same order give the same bases).
type Region struct {
	Name string
	Size uint64
}

// SyncDef describes one synchronisation object of the traced run.
type SyncDef struct {
	Kind         core.EventKind
	ID           int32
	Participants int32 // barrier width; 0 for locks and flags
}

// Trace is a complete recorded run.
type Trace struct {
	Procs   int
	Regions []Region
	Syncs   []SyncDef
	Events  []core.Event
}

// Collector implements core.Tracer, accumulating a Trace in memory.
type Collector struct {
	t Trace
}

// NewCollector creates a collector for a machine with procs processors.
func NewCollector(procs int) *Collector {
	return &Collector{t: Trace{Procs: procs}}
}

// DefineRegion implements core.Tracer.
func (c *Collector) DefineRegion(name string, size uint64) {
	c.t.Regions = append(c.t.Regions, Region{Name: name, Size: size})
}

// DefineSync implements core.Tracer.
func (c *Collector) DefineSync(kind core.EventKind, id, participants int) {
	c.t.Syncs = append(c.t.Syncs, SyncDef{Kind: kind, ID: int32(id), Participants: int32(participants)})
}

// TraceEvent implements core.Tracer.
func (c *Collector) TraceEvent(ev core.Event) {
	c.t.Events = append(c.t.Events, ev)
}

// Attach wires the collector to a machine; call immediately after
// NewMachine, before any allocation (or pass the collector as
// Config.Tracer, which attaches it at construction).
func (c *Collector) Attach(m *core.Machine) {
	m.SetTracer(c)
}

// Finish returns the accumulated trace. Call after Run.
func (c *Collector) Finish() *Trace { return &c.t }

var _ core.Tracer = (*Collector)(nil)

const magic = "CSTR\x01"

// Write serialises the trace in the package's compact binary format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	le := binary.LittleEndian
	write := func(v interface{}) error { return binary.Write(bw, le, v) }
	if err := write(int32(t.Procs)); err != nil {
		return err
	}
	if err := write(int32(len(t.Regions))); err != nil {
		return err
	}
	for _, r := range t.Regions {
		if err := write(int32(len(r.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(r.Name); err != nil {
			return err
		}
		if err := write(r.Size); err != nil {
			return err
		}
	}
	if err := write(int32(len(t.Syncs))); err != nil {
		return err
	}
	for _, s := range t.Syncs {
		if err := write(uint8(s.Kind)); err != nil {
			return err
		}
		if err := write(s.ID); err != nil {
			return err
		}
		if err := write(s.Participants); err != nil {
			return err
		}
	}
	if err := write(int64(len(t.Events))); err != nil {
		return err
	}
	for _, ev := range t.Events {
		if err := write(ev.Proc); err != nil {
			return err
		}
		if err := write(uint8(ev.Kind)); err != nil {
			return err
		}
		if err := write(ev.Arg); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserialises a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head)
	}
	le := binary.LittleEndian
	read := func(v interface{}) error { return binary.Read(br, le, v) }
	t := &Trace{}
	var procs int32
	if err := read(&procs); err != nil {
		return nil, err
	}
	t.Procs = int(procs)
	var nRegions int32
	if err := read(&nRegions); err != nil {
		return nil, err
	}
	if nRegions < 0 || nRegions > 1<<20 {
		return nil, fmt.Errorf("trace: implausible region count %d", nRegions)
	}
	for i := int32(0); i < nRegions; i++ {
		var nameLen int32
		if err := read(&nameLen); err != nil {
			return nil, err
		}
		if nameLen < 0 || nameLen > 1<<16 {
			return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		var size uint64
		if err := read(&size); err != nil {
			return nil, err
		}
		t.Regions = append(t.Regions, Region{Name: string(name), Size: size})
	}
	var nSyncs int32
	if err := read(&nSyncs); err != nil {
		return nil, err
	}
	if nSyncs < 0 || nSyncs > 1<<24 {
		return nil, fmt.Errorf("trace: implausible sync count %d", nSyncs)
	}
	for i := int32(0); i < nSyncs; i++ {
		var kind uint8
		var id, participants int32
		if err := read(&kind); err != nil {
			return nil, err
		}
		if err := read(&id); err != nil {
			return nil, err
		}
		if err := read(&participants); err != nil {
			return nil, err
		}
		t.Syncs = append(t.Syncs, SyncDef{Kind: core.EventKind(kind), ID: id, Participants: participants})
	}
	var nEvents int64
	if err := read(&nEvents); err != nil {
		return nil, err
	}
	if nEvents < 0 {
		return nil, fmt.Errorf("trace: negative event count")
	}
	t.Events = make([]core.Event, 0, min64(nEvents, 1<<20))
	for i := int64(0); i < nEvents; i++ {
		var proc int32
		var kind uint8
		var arg uint64
		if err := read(&proc); err != nil {
			return nil, err
		}
		if err := read(&kind); err != nil {
			return nil, err
		}
		if err := read(&arg); err != nil {
			return nil, err
		}
		t.Events = append(t.Events, core.Event{Proc: proc, Kind: core.EventKind(kind), Arg: arg})
	}
	return t, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Replay runs the trace through a machine built from cfg (which must
// have the same processor count) and returns its result. Addresses are
// rebuilt by re-allocating the recorded regions in order.
func Replay(cfg core.Config, t *Trace) (*core.Result, error) {
	if cfg.Procs != t.Procs {
		return nil, fmt.Errorf("trace: trace has %d processors, config %d", t.Procs, cfg.Procs)
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	for _, r := range t.Regions {
		m.Alloc(r.Size, r.Name)
	}
	barriers := map[int32]*core.Barrier{}
	locks := map[int32]*core.Lock{}
	flags := map[int32]*core.Flag{}
	for _, s := range t.Syncs {
		switch s.Kind {
		case core.EvBarrier:
			barriers[s.ID] = m.NewBarrierN(fmt.Sprintf("replay-barrier-%d", s.ID), int(s.Participants))
		case core.EvAcquire:
			locks[s.ID] = m.NewLock(fmt.Sprintf("replay-lock-%d", s.ID))
		case core.EvFlagSet:
			flags[s.ID] = m.NewFlag(fmt.Sprintf("replay-flag-%d", s.ID))
		}
	}
	// Split the global stream into per-processor programs.
	perProc := make([][]core.Event, t.Procs)
	for _, ev := range t.Events {
		if ev.Proc < 0 || int(ev.Proc) >= t.Procs {
			return nil, fmt.Errorf("trace: event for processor %d out of range", ev.Proc)
		}
		perProc[ev.Proc] = append(perProc[ev.Proc], ev)
	}
	var replayErr error
	res, err := m.Run(func(p *core.Proc) {
		for _, ev := range perProc[p.ID()] {
			switch ev.Kind {
			case core.EvRead:
				p.Read(ev.Arg)
			case core.EvWrite:
				p.Write(ev.Arg)
			case core.EvCompute:
				p.Compute(core.Clock(ev.Arg))
			case core.EvBarrier:
				barriers[int32(ev.Arg)].Wait(p)
			case core.EvAcquire:
				locks[int32(ev.Arg)].Acquire(p)
			case core.EvRelease:
				locks[int32(ev.Arg)].Release(p)
			case core.EvFlagSet:
				flags[int32(ev.Arg)].Set(p)
			case core.EvFlagWait:
				flags[int32(ev.Arg)].Wait(p)
			default:
				replayErr = fmt.Errorf("trace: unknown event kind %d", ev.Kind)
				return
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if replayErr != nil {
		return nil, replayErr
	}
	return res, nil
}
