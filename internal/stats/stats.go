// Package stats defines the execution-time and miss accounting used
// throughout the simulator. Following the paper, each processor's
// execution time is divided into CPU busy time, load stall time, load
// merge stall time (waiting for a line another processor in the cluster
// already prefetched), and synchronization wait time.
package stats

import "clustersim/internal/coherence"

// Breakdown is one processor's execution-time decomposition, in cycles.
type Breakdown struct {
	CPU        int64 // compute plus reference issue cycles
	LoadStall  int64 // read miss stalls
	MergeStall int64 // read stalls merged into an outstanding fill
	SyncWait   int64 // barrier, lock and flag waits
}

// Total returns the sum of all components.
func (b Breakdown) Total() int64 {
	return b.CPU + b.LoadStall + b.MergeStall + b.SyncWait
}

// Plus returns the component-wise sum of two breakdowns.
func (b Breakdown) Plus(o Breakdown) Breakdown {
	return Breakdown{
		CPU:        b.CPU + o.CPU,
		LoadStall:  b.LoadStall + o.LoadStall,
		MergeStall: b.MergeStall + o.MergeStall,
		SyncWait:   b.SyncWait + o.SyncWait,
	}
}

// Minus returns the component-wise difference b - o: the exact inverse
// of Plus, so interval deltas taken between two cumulative snapshots
// tile the whole (the critical-path analyzer's phase invariant).
func (b Breakdown) Minus(o Breakdown) Breakdown {
	return Breakdown{
		CPU:        b.CPU - o.CPU,
		LoadStall:  b.LoadStall - o.LoadStall,
		MergeStall: b.MergeStall - o.MergeStall,
		SyncWait:   b.SyncWait - o.SyncWait,
	}
}

// Counters tallies memory references by outcome.
type Counters struct {
	Reads  uint64
	Writes uint64

	ReadHits    uint64
	WriteHits   uint64
	ReadMisses  uint64
	WriteMisses uint64
	Upgrades    uint64
	Merges      uint64
	WriteMerges uint64

	// Service location of read and write misses (paper Table 1 rows,
	// plus the snoopy-bus services of shared-memory clusters).
	LocalClean   uint64
	LocalDirty   uint64
	RemoteClean  uint64
	RemoteDirty  uint64
	IntraCluster uint64
}

// Misses returns the fetch misses (read + write) — the population the
// sharing profiler (internal/profile) classifies, so a profile's
// class totals must sum to exactly this over the same interval.
func (c Counters) Misses() uint64 { return c.ReadMisses + c.WriteMisses }

// Plus returns the field-wise sum of two counter sets.
func (c Counters) Plus(o Counters) Counters {
	return Counters{
		Reads:        c.Reads + o.Reads,
		Writes:       c.Writes + o.Writes,
		ReadHits:     c.ReadHits + o.ReadHits,
		WriteHits:    c.WriteHits + o.WriteHits,
		ReadMisses:   c.ReadMisses + o.ReadMisses,
		WriteMisses:  c.WriteMisses + o.WriteMisses,
		Upgrades:     c.Upgrades + o.Upgrades,
		Merges:       c.Merges + o.Merges,
		WriteMerges:  c.WriteMerges + o.WriteMerges,
		LocalClean:   c.LocalClean + o.LocalClean,
		LocalDirty:   c.LocalDirty + o.LocalDirty,
		RemoteClean:  c.RemoteClean + o.RemoteClean,
		RemoteDirty:  c.RemoteDirty + o.RemoteDirty,
		IntraCluster: c.IntraCluster + o.IntraCluster,
	}
}

// Minus returns the field-wise difference c - o: the exact inverse of
// Plus, pairing cumulative-counter snapshots into interval deltas (the
// telemetry sampler and the critical-path analyzer's phase snapshots).
func (c Counters) Minus(o Counters) Counters {
	return Counters{
		Reads:        c.Reads - o.Reads,
		Writes:       c.Writes - o.Writes,
		ReadHits:     c.ReadHits - o.ReadHits,
		WriteHits:    c.WriteHits - o.WriteHits,
		ReadMisses:   c.ReadMisses - o.ReadMisses,
		WriteMisses:  c.WriteMisses - o.WriteMisses,
		Upgrades:     c.Upgrades - o.Upgrades,
		Merges:       c.Merges - o.Merges,
		WriteMerges:  c.WriteMerges - o.WriteMerges,
		LocalClean:   c.LocalClean - o.LocalClean,
		LocalDirty:   c.LocalDirty - o.LocalDirty,
		RemoteClean:  c.RemoteClean - o.RemoteClean,
		RemoteDirty:  c.RemoteDirty - o.RemoteDirty,
		IntraCluster: c.IntraCluster - o.IntraCluster,
	}
}

// CountRead records the outcome of one read access.
func (c *Counters) CountRead(a coherence.Access) {
	c.Reads++
	switch a.Class {
	case coherence.Hit:
		c.ReadHits++
	case coherence.ReadMiss:
		c.ReadMisses++
		c.countHops(a.Hops)
	case coherence.MergeMiss:
		c.Merges++
	}
}

// CountWrite records the outcome of a write access.
func (c *Counters) CountWrite(a coherence.Access) {
	c.Writes++
	switch a.Class {
	case coherence.Hit:
		c.WriteHits++
	case coherence.WriteMiss:
		c.WriteMisses++
		c.countHops(a.Hops)
	case coherence.Upgrade:
		c.Upgrades++
	case coherence.WriteMerge:
		c.WriteMerges++
	}
}

func (c *Counters) countHops(h coherence.Hops) {
	switch h {
	case coherence.HopLocalClean:
		c.LocalClean++
	case coherence.HopLocalDirty:
		c.LocalDirty++
	case coherence.HopRemoteClean:
		c.RemoteClean++
	case coherence.HopRemoteDirty:
		c.RemoteDirty++
	case coherence.HopIntraCluster:
		c.IntraCluster++
	}
}

// References returns the total number of memory references.
func (c Counters) References() uint64 { return c.Reads + c.Writes }

// ReadMissRate returns read misses (including merges) per read.
func (c Counters) ReadMissRate() float64 {
	if c.Reads == 0 {
		return 0
	}
	return float64(c.ReadMisses+c.Merges) / float64(c.Reads)
}

// WriteMissRate returns write misses (including write merges) per
// write, mirroring ReadMissRate. Upgrades are excluded: the line was
// present, only ownership was missing.
func (c Counters) WriteMissRate() float64 {
	if c.Writes == 0 {
		return 0
	}
	return float64(c.WriteMisses+c.WriteMerges) / float64(c.Writes)
}

// MergeRate returns merged references (read and write) per reference —
// the cluster-prefetching overlap the paper's merge-stall component
// measures the cost of.
func (c Counters) MergeRate() float64 {
	refs := c.References()
	if refs == 0 {
		return 0
	}
	return float64(c.Merges+c.WriteMerges) / float64(refs)
}

// Proc is the complete per-processor record.
type Proc struct {
	Breakdown
	Counters
}

// Plus returns the sum of two per-processor records.
func (p Proc) Plus(o Proc) Proc {
	return Proc{Breakdown: p.Breakdown.Plus(o.Breakdown), Counters: p.Counters.Plus(o.Counters)}
}

// Minus returns the difference of two per-processor records.
func (p Proc) Minus(o Proc) Proc {
	return Proc{Breakdown: p.Breakdown.Minus(o.Breakdown), Counters: p.Counters.Minus(o.Counters)}
}
