package stats

import (
	"testing"
	"testing/quick"

	"clustersim/internal/coherence"
)

func TestBreakdownTotalAndPlus(t *testing.T) {
	a := Breakdown{CPU: 1, LoadStall: 2, MergeStall: 3, SyncWait: 4}
	if a.Total() != 10 {
		t.Fatalf("total = %d", a.Total())
	}
	b := a.Plus(a)
	if b.Total() != 20 || b.CPU != 2 || b.SyncWait != 8 {
		t.Fatalf("plus = %+v", b)
	}
}

func TestCountRead(t *testing.T) {
	var c Counters
	c.CountRead(coherence.Access{Class: coherence.Hit})
	c.CountRead(coherence.Access{Class: coherence.ReadMiss, Hops: coherence.HopRemoteDirty, Stall: 150})
	c.CountRead(coherence.Access{Class: coherence.MergeMiss, Stall: 10})
	if c.Reads != 3 || c.ReadHits != 1 || c.ReadMisses != 1 || c.Merges != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if c.RemoteDirty != 1 {
		t.Fatalf("hops not counted: %+v", c)
	}
	if got := c.ReadMissRate(); got != 2.0/3.0 {
		t.Fatalf("miss rate = %v", got)
	}
}

func TestCountWrite(t *testing.T) {
	var c Counters
	c.CountWrite(coherence.Access{Class: coherence.WriteMiss, Hops: coherence.HopLocalClean})
	c.CountWrite(coherence.Access{Class: coherence.Upgrade})
	c.CountWrite(coherence.Access{Class: coherence.WriteMerge})
	c.CountWrite(coherence.Access{Class: coherence.Hit})
	if c.Writes != 4 || c.WriteMisses != 1 || c.Upgrades != 1 || c.WriteMerges != 1 || c.WriteHits != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if c.LocalClean != 1 {
		t.Fatalf("hops = %+v", c)
	}
}

func TestZeroRates(t *testing.T) {
	var c Counters
	if c.ReadMissRate() != 0 {
		t.Fatal("miss rate of empty counters should be 0")
	}
	if c.WriteMissRate() != 0 {
		t.Fatal("write miss rate of empty counters should be 0")
	}
	if c.MergeRate() != 0 {
		t.Fatal("merge rate of empty counters should be 0")
	}
	var b Breakdown
	if b.Total() != 0 {
		t.Fatal("empty breakdown total should be 0")
	}
}

func TestWriteMissRate(t *testing.T) {
	c := Counters{Writes: 200, WriteMisses: 30, WriteMerges: 10, Upgrades: 40}
	// Mirrors ReadMissRate: misses plus merges per write; upgrades are
	// ownership-only and excluded.
	if got, want := c.WriteMissRate(), 0.2; got != want {
		t.Fatalf("WriteMissRate = %f, want %f", got, want)
	}
}

func TestMergeRate(t *testing.T) {
	c := Counters{Reads: 300, Writes: 100, Merges: 30, WriteMerges: 10}
	if got, want := c.MergeRate(), 0.1; got != want {
		t.Fatalf("MergeRate = %f, want %f", got, want)
	}
}

// Property: Plus is commutative and References sums reads and writes.
func TestPlusProperty(t *testing.T) {
	f := func(r1, w1, r2, w2 uint32) bool {
		a := Counters{Reads: uint64(r1), Writes: uint64(w1)}
		b := Counters{Reads: uint64(r2), Writes: uint64(w2)}
		ab, ba := a.Plus(b), b.Plus(a)
		return ab == ba && ab.References() == uint64(r1)+uint64(w1)+uint64(r2)+uint64(w2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Minus inverts Plus exactly, field for field — the algebra
// the critical-path analyzer's phase deltas rely on.
func TestPlusMinusRoundTrip(t *testing.T) {
	f := func(c1, l1, m1, s1, c2, l2, m2, s2 int32, r1, w1, rm1, u1 uint32) bool {
		a := Proc{
			Breakdown: Breakdown{CPU: int64(c1), LoadStall: int64(l1), MergeStall: int64(m1), SyncWait: int64(s1)},
			Counters:  Counters{Reads: uint64(r1), Writes: uint64(w1), ReadMisses: uint64(rm1), Upgrades: uint64(u1)},
		}
		b := Proc{
			Breakdown: Breakdown{CPU: int64(c2), LoadStall: int64(l2), MergeStall: int64(m2), SyncWait: int64(s2)},
			Counters:  Counters{Reads: uint64(w1), Writes: uint64(rm1), WriteMisses: uint64(u1), Merges: uint64(r1)},
		}
		return a.Plus(b).Minus(b) == a && b.Plus(a).Minus(a) == b &&
			a.Minus(b).Plus(b) == a && a.Minus(a) == (Proc{})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Minus must cover every field Plus covers: a cumulative snapshot delta
// that silently drops a field would corrupt interval accounting.
func TestMinusCoversAllCounterFields(t *testing.T) {
	full := Counters{
		Reads: 1, Writes: 2, ReadHits: 3, WriteHits: 4, ReadMisses: 5,
		WriteMisses: 6, Upgrades: 7, Merges: 8, WriteMerges: 9,
		LocalClean: 10, LocalDirty: 11, RemoteClean: 12, RemoteDirty: 13,
		IntraCluster: 14,
	}
	if got := full.Minus(Counters{}); got != full {
		t.Fatalf("Minus(zero) = %+v, want identity", got)
	}
	if got := full.Minus(full); got != (Counters{}) {
		t.Fatalf("Minus(self) = %+v, want zero", got)
	}
	if got := full.Plus(full).Minus(full); got != full {
		t.Fatalf("Plus then Minus = %+v, want %+v", got, full)
	}
}

func TestIntraClusterCounted(t *testing.T) {
	var c Counters
	c.CountRead(coherence.Access{Class: coherence.ReadMiss, Hops: coherence.HopIntraCluster, Stall: 15})
	if c.IntraCluster != 1 || c.ReadMisses != 1 {
		t.Fatalf("counters = %+v", c)
	}
	sum := c.Plus(c)
	if sum.IntraCluster != 2 {
		t.Fatalf("Plus dropped IntraCluster: %+v", sum)
	}
}
