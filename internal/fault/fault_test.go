package fault

import (
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	good := []Config{
		{},
		{Seed: 42, NackPerMille: 1000, AckDelayPerMille: 0, PerturbPerMille: 500},
		{MaxRetries: 3, BackoffBase: 10, BackoffCap: 10},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%+v: unexpected error %v", c, err)
		}
	}
	bad := []Config{
		{NackPerMille: -1},
		{NackPerMille: 1001},
		{AckDelayPerMille: 2000},
		{PerturbPerMille: -5},
		{MaxRetries: -1},
		{BackoffBase: -1},
		{AckDelayCycles: -10},
		{BackoffBase: 100, BackoffCap: 50},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v: want validation error", c)
		}
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	in, err := NewInjector(Config{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if in.Config().Active() {
		t.Error("zero-probability plan reports Active")
	}
	for i := 0; i < 1000; i++ {
		extra, nacks := in.Fetch(uint64(i), i%4, true, int64(i))
		if extra != 0 || nacks != 0 {
			t.Fatalf("fetch %d injected extra=%d nacks=%d", i, extra, nacks)
		}
		if d := in.AckDelay(uint64(i), i%4, int64(i)); d != 0 {
			t.Fatalf("ack %d delayed %d", i, d)
		}
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Errorf("zero plan accumulated stats %+v", s)
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	c := Config{} // defaults: base 20, cap 640
	want := []Clock{20, 40, 80, 160, 320, 640, 640, 640}
	for i, w := range want {
		if got := c.Backoff(i); got != w {
			t.Errorf("Backoff(%d) = %d, want %d", i, got, w)
		}
	}
	custom := Config{BackoffBase: 7, BackoffCap: 20}
	for i, w := range []Clock{7, 14, 20, 20} {
		if got := custom.Backoff(i); got != w {
			t.Errorf("custom Backoff(%d) = %d, want %d", i, got, w)
		}
	}
}

// TestDeterministicStream: two injectors with the same plan draw
// identical decisions; a different seed draws a different stream.
func TestDeterministicStream(t *testing.T) {
	cfg := Config{Seed: 7, NackPerMille: 100, AckDelayPerMille: 50, PerturbPerMille: 200}
	a, _ := NewInjector(cfg)
	b, _ := NewInjector(cfg)
	for i := 0; i < 5000; i++ {
		ea, na := a.Fetch(uint64(i), i%8, i%2 == 0, int64(i))
		eb, nb := b.Fetch(uint64(i), i%8, i%2 == 0, int64(i))
		if ea != eb || na != nb {
			t.Fatalf("draw %d diverged: (%d,%d) vs (%d,%d)", i, ea, na, eb, nb)
		}
		if da, db := a.AckDelay(uint64(i), i%8, int64(i)), b.AckDelay(uint64(i), i%8, int64(i)); da != db {
			t.Fatalf("ack draw %d diverged: %d vs %d", i, da, db)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().Nacks == 0 || a.Stats().AckDelays == 0 || a.Stats().Perturbs == 0 {
		t.Errorf("plan at these rates should inject every class over 5000 draws: %+v", a.Stats())
	}
	other, _ := NewInjector(Config{Seed: 8, NackPerMille: 100, AckDelayPerMille: 50, PerturbPerMille: 200})
	for i := 0; i < 5000; i++ {
		other.Fetch(uint64(i), i%8, i%2 == 0, int64(i))
		other.AckDelay(uint64(i), i%8, int64(i))
	}
	if other.Stats() == a.Stats() {
		t.Error("different seeds produced identical fault totals (suspicious)")
	}
}

// TestStarvationPanics: a certain-NACK plan exhausts the liveness cap
// and panics with a diagnostic naming the line and carrying the ring.
func TestStarvationPanics(t *testing.T) {
	in, _ := NewInjector(Config{Seed: 1, NackPerMille: 1000, MaxRetries: 4})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("want starvation panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic payload %T, want string", r)
		}
		for _, want := range []string{"starved", "line 0xabc", "cluster 3", "t=99", "NACK"} {
			if !strings.Contains(msg, want) {
				t.Errorf("diagnostic missing %q:\n%s", want, msg)
			}
		}
	}()
	in.Fetch(0xabc, 3, true, 99)
}

// TestFetchBackoffAccumulates: with certain NACKs, every retry adds its
// scheduled backoff before the liveness cap fires.
func TestFetchBackoffAccumulates(t *testing.T) {
	cfg := Config{Seed: 5, NackPerMille: 500, MaxRetries: 64}
	in, _ := NewInjector(cfg)
	var total Clock
	for i := 0; i < 2000; i++ {
		extra, nacks := in.Fetch(uint64(i), 0, false, int64(i))
		var want Clock
		for n := 0; n < nacks; n++ {
			want += cfg.Backoff(n)
		}
		if extra != want {
			t.Fatalf("fetch %d: %d nacks but extra %d, want %d", i, nacks, extra, want)
		}
		total += extra
	}
	if got := in.Stats().ExtraCycles; got != uint64(total) {
		t.Errorf("ExtraCycles %d, want %d", got, total)
	}
}

func TestRingKeepsNewest(t *testing.T) {
	in, _ := NewInjector(Config{Seed: 3, NackPerMille: 900, MaxRetries: 1 << 30})
	for i := 0; i < 500; i++ {
		in.Fetch(uint64(i), 1, false, int64(i))
	}
	ring := in.Ring()
	if len(ring) == 0 || len(ring) > ringCap {
		t.Fatalf("ring length %d", len(ring))
	}
	for i := 1; i < len(ring); i++ {
		if ring[i].Seq != ring[i-1].Seq+1 {
			t.Fatalf("ring not contiguous at %d: %d then %d", i, ring[i-1].Seq, ring[i].Seq)
		}
	}
	if ring[len(ring)-1].Kind.String() != "NACK" {
		t.Errorf("newest event kind %v", ring[len(ring)-1].Kind)
	}
}

// TestDisabledClassConsumesNoDraw: turning one fault class off must not
// shift the stream of the remaining classes.
func TestDisabledClassConsumesNoDraw(t *testing.T) {
	with, _ := NewInjector(Config{Seed: 11, NackPerMille: 100})
	without, _ := NewInjector(Config{Seed: 11, NackPerMille: 100, AckDelayPerMille: 0, PerturbPerMille: 0})
	for i := 0; i < 3000; i++ {
		// Interleave AckDelay draws on one side only: at probability 0
		// they must consume nothing.
		without.AckDelay(uint64(i), 0, int64(i))
		ea, na := with.Fetch(uint64(i), 0, false, int64(i))
		eb, nb := without.Fetch(uint64(i), 0, false, int64(i))
		if ea != eb || na != nb {
			t.Fatalf("disabled ack class shifted the NACK stream at %d", i)
		}
	}
}
