// Package fault provides the simulator's deterministic fault-injection
// plan. The paper's DASH-style directory protocol really runs over an
// interconnect where a request can find the directory busy and be
// NACKed, where invalidation acknowledgements straggle, and where
// remote-hop latency jitters with traffic. The reproduction's coherence
// layer models the happy path; this package supplies the transient
// failures, so fault sensitivity becomes an experiment axis rather than
// an article of faith.
//
// Three fault classes are injected, all expressed purely as extra
// virtual-time latency (protocol state transitions are never altered,
// so every directory/cache invariant the sanitizer checks still holds):
//
//   - NACK: a fetch or ownership request finds the home directory busy
//     and is retried after an exponential backoff in virtual time. A
//     request NACKed more than MaxRetries times starves, which is a
//     fatal liveness violation: the injector panics with its recent
//     fault ring so the failure is replayable.
//   - Ack delay: one invalidation acknowledgement returns late,
//     stretching the writer's ownership transaction.
//   - Perturbation: a remote-hop fetch picks up jitter cycles.
//
// Determinism: the injector draws from a counter-based splitmix64
// stream seeded by Config.Seed — no wall clock, no global rand, no
// allocation on the hot path. The engine's token discipline serialises
// all memory transactions into one global virtual-time order, so the
// n-th draw of a run is always made by the same transaction and a fixed
// seed reproduces a run bit for bit.
package fault

import (
	"fmt"
	"strings"
)

// Clock counts simulated cycles, mirroring engine.Clock.
type Clock = int64

// Defaults for the zero fields of Config.
const (
	// DefaultMaxRetries is the liveness cap: a request NACKed more than
	// this many times starves and the run aborts with a diagnostic.
	DefaultMaxRetries = 8
	// DefaultBackoffBase is the first retry's wait in cycles, roughly a
	// local memory round trip (Table 1's 30-cycle local fetch, shaved to
	// a re-arbitration).
	DefaultBackoffBase Clock = 20
	// DefaultBackoffCap bounds a single backoff step so starving
	// requests fail fast instead of sleeping geometrically forever.
	DefaultBackoffCap Clock = 640
	// DefaultAckDelayCycles is the extra wait when an invalidation
	// acknowledgement straggles.
	DefaultAckDelayCycles Clock = 40
	// DefaultPerturbMaxCycles bounds the uniform remote-hop jitter.
	DefaultPerturbMaxCycles Clock = 16
)

// Config is the serialisable fault plan. The zero value injects nothing
// (every probability is zero), and core.Config carries a *Config with
// omitempty, so a nil plan leaves config hashes and Result JSON
// byte-identical to a build without the fault layer. Probabilities are
// integers per thousand transactions, keeping the plan free of
// floating-point representation concerns.
type Config struct {
	// Seed selects the deterministic fault stream. Two runs of the same
	// configuration and seed inject byte-identically.
	Seed int64

	// NackPerMille is the probability (‰) that one directory fetch or
	// ownership request is NACKed busy; each retry rolls again, so a
	// request's total NACK count is geometric with this parameter.
	NackPerMille int

	// AckDelayPerMille is the probability (‰) that a victim cluster's
	// invalidation acknowledgement is delayed.
	AckDelayPerMille int

	// PerturbPerMille is the probability (‰) that a remote-hop fetch
	// picks up jitter of 1..PerturbMaxCycles cycles.
	PerturbPerMille int

	// MaxRetries caps consecutive NACKs of one request before the run
	// aborts as starved (0 = DefaultMaxRetries).
	MaxRetries int

	// BackoffBase is the first retry wait in cycles (0 = DefaultBackoffBase).
	BackoffBase Clock

	// BackoffCap bounds one backoff step (0 = DefaultBackoffCap).
	BackoffCap Clock

	// AckDelayCycles is the straggler acknowledgement's extra latency
	// (0 = DefaultAckDelayCycles).
	AckDelayCycles Clock

	// PerturbMaxCycles bounds remote-hop jitter (0 = DefaultPerturbMaxCycles).
	PerturbMaxCycles Clock
}

// Validate reports whether the plan is runnable.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    int
	}{
		{"NackPerMille", c.NackPerMille},
		{"AckDelayPerMille", c.AckDelayPerMille},
		{"PerturbPerMille", c.PerturbPerMille},
	} {
		if p.v < 0 || p.v > 1000 {
			return fmt.Errorf("fault: %s %d outside [0,1000]", p.name, p.v)
		}
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("fault: negative MaxRetries %d", c.MaxRetries)
	}
	for _, p := range []struct {
		name string
		v    Clock
	}{
		{"BackoffBase", c.BackoffBase},
		{"BackoffCap", c.BackoffCap},
		{"AckDelayCycles", c.AckDelayCycles},
		{"PerturbMaxCycles", c.PerturbMaxCycles},
	} {
		if p.v < 0 {
			return fmt.Errorf("fault: negative %s %d", p.name, p.v)
		}
	}
	if c.BackoffBase > 0 && c.BackoffCap > 0 && c.BackoffCap < c.BackoffBase {
		return fmt.Errorf("fault: BackoffCap %d below BackoffBase %d", c.BackoffCap, c.BackoffBase)
	}
	return nil
}

// Active reports whether the plan can inject anything at all.
func (c Config) Active() bool {
	return c.NackPerMille > 0 || c.AckDelayPerMille > 0 || c.PerturbPerMille > 0
}

func (c Config) maxRetries() int {
	if c.MaxRetries == 0 {
		return DefaultMaxRetries
	}
	return c.MaxRetries
}

func (c Config) backoffBase() Clock {
	if c.BackoffBase == 0 {
		return DefaultBackoffBase
	}
	return c.BackoffBase
}

func (c Config) backoffCap() Clock {
	if c.BackoffCap == 0 {
		return DefaultBackoffCap
	}
	return c.BackoffCap
}

func (c Config) ackDelayCycles() Clock {
	if c.AckDelayCycles == 0 {
		return DefaultAckDelayCycles
	}
	return c.AckDelayCycles
}

func (c Config) perturbMax() Clock {
	if c.PerturbMaxCycles == 0 {
		return DefaultPerturbMaxCycles
	}
	return c.PerturbMaxCycles
}

// Backoff returns the virtual-time wait before retry number attempt
// (0-based): BackoffBase doubled per attempt, capped at BackoffCap.
func (c Config) Backoff(attempt int) Clock {
	b := c.backoffBase()
	cap := c.backoffCap()
	for i := 0; i < attempt; i++ {
		b *= 2
		if b >= cap {
			return cap
		}
	}
	if b > cap {
		return cap
	}
	return b
}

// Kind classifies one injected fault event.
type Kind uint8

const (
	// KindNack is a directory-busy NACK followed by a backoff retry.
	KindNack Kind = iota
	// KindAckDelay is a straggling invalidation acknowledgement.
	KindAckDelay
	// KindPerturb is remote-hop latency jitter.
	KindPerturb
	// KindStarved is the fatal liveness violation: a request exhausted
	// its retry budget.
	KindStarved
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case KindNack:
		return "NACK"
	case KindAckDelay:
		return "ACK_DELAY"
	case KindPerturb:
		return "PERTURB"
	case KindStarved:
		return "STARVED"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one injected fault, as recorded in the replay ring.
type Event struct {
	Seq     uint64 // injection sequence number
	Kind    Kind
	Line    uint64 // coherence line number
	Cluster int    // requesting (NACK, PERTURB) or victim (ACK_DELAY) cluster
	Time    Clock  // virtual issue time of the transaction
	Extra   Clock  // cycles injected by this event
}

// String renders one ring line.
func (e Event) String() string {
	return fmt.Sprintf("#%d t=%d c%d %s line %#x +%d cycles",
		e.Seq, e.Time, e.Cluster, e.Kind, e.Line, e.Extra)
}

// Stats totals the injected faults of one run.
type Stats struct {
	Nacks       uint64 // NACKed requests (each forced one backoff retry)
	AckDelays   uint64 // straggling invalidation acknowledgements
	Perturbs    uint64 // jittered remote fetches
	ExtraCycles uint64 // total virtual-time latency injected
}

// ringCap is the capacity of the fault replay ring kept for the
// starvation diagnostic.
const ringCap = 64

// Injector draws the per-transaction fault decisions of one run. Not
// safe for concurrent use — the engine's token discipline already
// serialises all memory transactions onto one goroutine at a time.
type Injector struct {
	cfg   Config
	draws uint64 // PRNG position: the counter of the splitmix64 stream
	stats Stats
	ring  [ringCap]Event
	seq   uint64 // events recorded; ring[(seq-1)%ringCap] is newest
}

// NewInjector builds an injector over a validated plan.
func NewInjector(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg}, nil
}

// Config returns the injector's plan.
func (in *Injector) Config() Config { return in.cfg }

// Stats returns the fault totals so far.
func (in *Injector) Stats() Stats { return in.stats }

// roll advances the deterministic stream one step and returns a uniform
// 64-bit value (splitmix64: the counter is multiplied into the golden-
// gamma sequence, then finalised).
func (in *Injector) roll() uint64 {
	in.draws++
	z := uint64(in.cfg.Seed) + in.draws*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// hit draws one decision at perMille probability. A zero probability
// consumes no draw, so a plan with one fault class disabled does not
// shift the stream of the others across configs that agree on the rest.
func (in *Injector) hit(perMille int) bool {
	if perMille <= 0 {
		return false
	}
	return in.roll()%1000 < uint64(perMille)
}

func (in *Injector) record(k Kind, line uint64, cluster int, now, extra Clock) {
	in.ring[in.seq%ringCap] = Event{
		Seq: in.seq, Kind: k, Line: line, Cluster: cluster, Time: now, Extra: extra,
	}
	in.seq++
}

// Ring returns the recorded fault events, oldest first.
func (in *Injector) Ring() []Event {
	n := in.seq
	if n > ringCap {
		n = ringCap
	}
	out := make([]Event, 0, n)
	for i := in.seq - n; i < in.seq; i++ {
		out = append(out, in.ring[i%ringCap])
	}
	return out
}

// Fetch models the request/NACK/retry handshake of one directory fetch
// or ownership request for line by cluster at virtual time now. It
// returns the extra latency to fold into the miss and the number of
// NACKs absorbed. remote additionally exposes the request to remote-hop
// jitter. If the request is NACKed past the liveness cap it starves:
// Fetch panics with the fault ring, which the engine annotates with the
// PE, application and virtual time.
func (in *Injector) Fetch(line uint64, cluster int, remote bool, now Clock) (extra Clock, nacks int) {
	max := in.cfg.maxRetries()
	for in.hit(in.cfg.NackPerMille) {
		if nacks == max {
			in.record(KindStarved, line, cluster, now, 0)
			panic(in.starveDiagnostic(line, cluster, now))
		}
		wait := in.cfg.Backoff(nacks)
		nacks++
		extra += wait
		in.record(KindNack, line, cluster, now, wait)
	}
	if remote && in.hit(in.cfg.PerturbPerMille) {
		jitter := Clock(in.roll()%uint64(in.cfg.perturbMax())) + 1
		extra += jitter
		in.stats.Perturbs++
		in.record(KindPerturb, line, cluster, now, jitter)
	}
	in.stats.Nacks += uint64(nacks)
	in.stats.ExtraCycles += uint64(extra)
	return extra, nacks
}

// AckDelay draws whether victim cluster's invalidation acknowledgement
// straggles, returning the extra cycles the writer must wait (0 = on
// time).
func (in *Injector) AckDelay(line uint64, victim int, now Clock) Clock {
	if !in.hit(in.cfg.AckDelayPerMille) {
		return 0
	}
	d := in.cfg.ackDelayCycles()
	in.stats.AckDelays++
	in.stats.ExtraCycles += uint64(d)
	in.record(KindAckDelay, line, victim, now, d)
	return d
}

// starveDiagnostic renders the fatal liveness report: the starved
// transaction plus the recent fault ring, replayable because the stream
// is a pure function of (seed, draw counter).
func (in *Injector) starveDiagnostic(line uint64, cluster int, now Clock) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault: line %#x starved: request from cluster %d at t=%d NACKed %d times (liveness cap %d; seed %d)\n",
		line, cluster, now, in.cfg.maxRetries()+1, in.cfg.maxRetries(), in.cfg.Seed)
	ring := in.Ring()
	fmt.Fprintf(&b, "recent fault events (last %d):\n", len(ring))
	for _, e := range ring {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}
