package fabric

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"clustersim/internal/core"
	"clustersim/internal/obs"
)

// fakeResult derives a deterministic, spec-unique result — the stand-in
// for the simulator's actual determinism guarantee.
func fakeResult(spec PointSpec) *core.Result {
	return &core.Result{ExecTime: int64(fnv1a(spec.Key()) % 1_000_000)}
}

func fakeRunner(spec PointSpec) (*core.Result, bool, error) {
	return fakeResult(spec), false, nil
}

func makeSpecs(n int) []PointSpec {
	specs := make([]PointSpec, n)
	for i := range specs {
		specs[i] = PointSpec{
			App: fmt.Sprintf("app%d", i), Size: "small",
			ClusterSize: 1 << (uint(i) % 4), CacheKB: 0, Procs: 16,
			ConfigHash: fmt.Sprintf("hash%04d", i),
		}
	}
	return specs
}

// testFabric is one assembled coordinator+fleet harness over a simnet.
type testFabric struct {
	net   *Net
	coord *Coordinator
	log   *obs.Log
	mu    sync.Mutex
	done  map[string]*core.Result // OnResult sink
}

func newTestFabric(t *testing.T, plan ChaosPlan, cfg CoordinatorConfig) *testFabric {
	t.Helper()
	n, err := NewNet(plan)
	if err != nil {
		t.Fatal(err)
	}
	tf := &testFabric{net: n, log: obs.NewLog(nil, "test"), done: make(map[string]*core.Result)}
	cfg.Obs = NewObs(nil, tf.log)
	if cfg.OnResult == nil {
		cfg.OnResult = func(spec PointSpec, res *core.Result, resumed bool) error {
			tf.mu.Lock()
			defer tf.mu.Unlock()
			tf.done[spec.Key()] = res
			return nil
		}
	}
	tf.coord = NewCoordinator(cfg)
	go tf.coord.Serve(n.Listener()) //simlint:allow goroutine — test harness
	return tf
}

// startWorker connects one worker and serves it until drain/death.
func (tf *testFabric) startWorker(t *testing.T, id string, run Runner) <-chan error {
	t.Helper()
	conn, err := tf.net.Dial(id)
	if err != nil {
		t.Fatalf("dial %s: %v", id, err)
	}
	w := NewWorker(WorkerConfig{ID: id, Heartbeat: 25 * time.Millisecond, Run: run})
	errc := make(chan error, 1)
	go func() { errc <- w.RunConn(conn) }() //simlint:allow goroutine — test harness
	return errc
}

// quickCfg keeps recovery timings test-sized.
func quickCfg() CoordinatorConfig {
	return CoordinatorConfig{
		DeadAfter:    200 * time.Millisecond,
		LeaseTimeout: 500 * time.Millisecond,
		BackoffBase:  10 * time.Millisecond,
		BackoffCap:   100 * time.Millisecond,
		LocalGrace:   time.Hour, // tests that want local fallback override this
		Run:          fakeRunner,
	}
}

func checkResults(t *testing.T, specs []PointSpec, results map[string]*core.Result) {
	t.Helper()
	if len(results) != len(specs) {
		t.Fatalf("completed %d of %d points", len(results), len(specs))
	}
	for _, s := range specs {
		got, ok := results[s.Key()]
		if !ok {
			t.Fatalf("point %s missing", s.Name())
		}
		want := fakeResult(s)
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(want)
		if string(gj) != string(wj) {
			t.Fatalf("point %s: result %s, want %s", s.Name(), gj, wj)
		}
	}
}

func (tf *testFabric) eventKinds() map[string]int {
	kinds := make(map[string]int)
	for _, e := range tf.log.Recent() {
		kinds[e.Kind]++
	}
	return kinds
}

func TestFabricHappyPath(t *testing.T) {
	tf := newTestFabric(t, ChaosPlan{}, quickCfg())
	specs := makeSpecs(8)
	w1 := tf.startWorker(t, "w1", fakeRunner)
	w2 := tf.startWorker(t, "w2", fakeRunner)
	results, err := tf.coord.Run(specs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkResults(t, specs, results)
	if err := <-w1; err != nil {
		t.Errorf("w1 exit: %v", err)
	}
	if err := <-w2; err != nil {
		t.Errorf("w2 exit: %v", err)
	}
	kinds := tf.eventKinds()
	if kinds[EventWorkerJoin] != 2 || kinds[EventResult] != 8 || kinds[EventDrain] != 1 {
		t.Errorf("event kinds = %v, want 2 joins, 8 results, 1 drain", kinds)
	}
	// The OnResult sink saw exactly the returned results.
	tf.mu.Lock()
	defer tf.mu.Unlock()
	if len(tf.done) != len(results) {
		t.Errorf("OnResult saw %d completions, Run returned %d", len(tf.done), len(results))
	}
}

// TestFabricWorkerCrashReassigns kills a worker mid-sweep and requires
// the coordinator to notice, requeue its leases, and finish on the
// survivor.
func TestFabricWorkerCrashReassigns(t *testing.T) {
	tf := newTestFabric(t, ChaosPlan{}, quickCfg())
	specs := makeSpecs(10)

	var once sync.Once
	crashed := make(chan struct{})
	// w1 dies the moment it starts its first point: a crash with a
	// lease in flight. The survivor holds each of its own points until
	// the crash has happened — otherwise its instant turnaround could
	// drain the whole queue before w1 ever receives an assignment, and
	// the sweep would finish with nothing to recover.
	w1Run := func(spec PointSpec) (*core.Result, bool, error) {
		once.Do(func() {
			tf.net.Crash("w1")
			close(crashed)
		})
		// Simulate the host dying mid-compute: linger, then fail to
		// deliver on the crashed link.
		<-crashed
		time.Sleep(50 * time.Millisecond) //simlint:allow wallclock — test pacing
		return fakeResult(spec), false, nil
	}
	w2Run := func(spec PointSpec) (*core.Result, bool, error) {
		<-crashed
		return fakeResult(spec), false, nil
	}
	tf.startWorker(t, "w1", w1Run)
	tf.startWorker(t, "w2", w2Run)

	results, err := tf.coord.Run(specs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkResults(t, specs, results)
	kinds := tf.eventKinds()
	if kinds[EventWorkerDead] == 0 {
		t.Errorf("no %s event after a crash; kinds = %v", EventWorkerDead, kinds)
	}
	if kinds[EventRequeue] == 0 {
		t.Errorf("no %s event after a crash with a lease in flight; kinds = %v", EventRequeue, kinds)
	}
}

// TestFabricDuplicateResultsDropped runs with every message duplicated:
// each Result arrives twice and the coordinator must verify the copies
// byte-identical and drop them.
func TestFabricDuplicateResultsDropped(t *testing.T) {
	tf := newTestFabric(t, ChaosPlan{Seed: 11, DupPerMille: 1000}, quickCfg())
	specs := makeSpecs(6)
	tf.startWorker(t, "w1", fakeRunner)
	results, err := tf.coord.Run(specs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkResults(t, specs, results)
	if kinds := tf.eventKinds(); kinds[EventResultDup] == 0 {
		t.Errorf("DupPerMille=1000 produced no %s events: %v", EventResultDup, kinds)
	}
}

// TestFabricStealDuplicatesSlowPoint pins work stealing: with one slow
// point and an idle second worker, the idle worker must steal a
// speculative copy, and the loser's completion must be dropped as a
// byte-identical duplicate.
func TestFabricStealDuplicatesSlowPoint(t *testing.T) {
	cfg := quickCfg()
	cfg.Steal = true
	cfg.LeaseTimeout = time.Hour // isolate stealing from the deadline backstop
	tf := newTestFabric(t, ChaosPlan{}, cfg)
	specs := makeSpecs(1)
	slow := func(spec PointSpec) (*core.Result, bool, error) {
		time.Sleep(150 * time.Millisecond) //simlint:allow wallclock — test pacing
		return fakeResult(spec), false, nil
	}
	tf.startWorker(t, "w1", slow)
	tf.startWorker(t, "w2", slow)
	results, err := tf.coord.Run(specs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkResults(t, specs, results)
	var stole bool
	for _, e := range tf.log.Recent() {
		if e.Kind == EventAssign && e.Detail == "steal" {
			stole = true
		}
	}
	if !stole {
		t.Fatalf("no steal assignment happened; events = %v", tf.eventKinds())
	}
}

// TestFabricLocalFallback starts no workers at all: after LocalGrace
// the coordinator must degrade to local execution and still finish.
func TestFabricLocalFallback(t *testing.T) {
	cfg := quickCfg()
	cfg.LocalGrace = 20 * time.Millisecond
	tf := newTestFabric(t, ChaosPlan{}, cfg)
	specs := makeSpecs(4)
	results, err := tf.coord.Run(specs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkResults(t, specs, results)
	if kinds := tf.eventKinds(); kinds[EventLocal] != 4 {
		t.Errorf("local-run events = %v, want 4 %s", kinds, EventLocal)
	}
}

// TestFabricWorkerRestartResumes is the crash-restart story: a worker
// computes a point behind a partition (its Result vanishes), restarts,
// is reassigned the same point, and replays it from its local journal
// instead of recomputing.
func TestFabricWorkerRestartResumes(t *testing.T) {
	cfg := quickCfg()
	cfg.DisableLocal = true
	cfg.Run = nil
	tf := newTestFabric(t, ChaosPlan{}, cfg)
	specs := makeSpecs(1)

	// A journal shared across worker incarnations, as the on-disk
	// journal is shared across worker process restarts. The first
	// computation blocks on release after journaling, so the test can
	// crash the link while the result is provably journaled but not yet
	// sent — the worst-case crash point.
	var mu sync.Mutex
	journal := make(map[string]*core.Result)
	computed := make(chan struct{}, 8)
	release := make(chan struct{})
	journaled := func(spec PointSpec) (*core.Result, bool, error) {
		mu.Lock()
		if res, ok := journal[spec.Key()]; ok {
			mu.Unlock()
			return res, true, nil
		}
		mu.Unlock()
		res := fakeResult(spec)
		mu.Lock()
		journal[spec.Key()] = res
		mu.Unlock()
		computed <- struct{}{}
		<-release
		return res, false, nil
	}

	tf.startWorker(t, "w1", journaled)

	done := make(chan struct{})
	var results map[string]*core.Result
	var runErr error
	go func() { //simlint:allow goroutine — test harness
		results, runErr = tf.coord.Run(specs)
		close(done)
	}()

	// Incarnation one journals the point; crash before its Result can
	// leave the host, then let the doomed runner finish (its send fails
	// on the dead conn).
	<-computed
	tf.net.Crash("w1")
	close(release)

	// Restart: same ID, same journal. The coordinator requeues the
	// lease, reassigns it to the new incarnation, and the runner replays
	// from the journal.
	tf.startWorker(t, "w1", journaled)

	<-done
	if runErr != nil {
		t.Fatalf("Run: %v", runErr)
	}
	checkResults(t, specs, results)
	mu.Lock()
	stores := len(journal)
	mu.Unlock()
	if stores != 1 {
		t.Errorf("journal holds %d entries, want 1", stores)
	}
	select {
	case <-computed:
		t.Error("the point was computed twice despite the journal")
	default:
	}
	var resumed bool
	for _, e := range tf.log.Recent() {
		if e.Kind == EventResult && e.Detail == "resumed-from-journal" {
			resumed = true
		}
	}
	if !resumed {
		t.Errorf("no resumed-from-journal completion; events = %v", tf.eventKinds())
	}
}

// TestFabricPermanentFailure pins the failure path: a deterministic
// point failure is reported once, recorded via OnFailure, and fails the
// sweep without hanging it.
func TestFabricPermanentFailure(t *testing.T) {
	cfg := quickCfg()
	var mu sync.Mutex
	var failures []string
	cfg.OnFailure = func(spec PointSpec, msg string) {
		mu.Lock()
		failures = append(failures, spec.Name()+": "+msg)
		mu.Unlock()
	}
	tf := newTestFabric(t, ChaosPlan{}, cfg)
	specs := makeSpecs(4)
	bad := specs[2]
	runner := func(spec PointSpec) (*core.Result, bool, error) {
		if spec.Key() == bad.Key() {
			return nil, false, fmt.Errorf("panic: index out of range (annotated)")
		}
		return fakeResult(spec), false, nil
	}
	tf.startWorker(t, "w1", runner)
	results, err := tf.coord.Run(specs)
	if err == nil {
		t.Fatal("Run must report the failed point")
	}
	if !strings.Contains(err.Error(), bad.Name()) {
		t.Errorf("error %q does not name the failed point %s", err, bad.Name())
	}
	if len(results) != 3 {
		t.Errorf("healthy points completed = %d, want 3", len(results))
	}
	mu.Lock()
	defer mu.Unlock()
	if len(failures) != 1 || !strings.Contains(failures[0], "index out of range") {
		t.Errorf("OnFailure saw %v, want one annotated panic", failures)
	}
}

// TestFabricDeterminismViolationAborts white-boxes the one
// unrecoverable fault: two completions of the same point that are NOT
// byte-identical mean the determinism contract is broken, and the
// coordinator must refuse to pick a winner.
func TestFabricDeterminismViolationAborts(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{})
	spec := makeSpecs(1)[0]
	key := spec.Key()
	c.points[key] = &point{spec: spec}
	c.order = append(c.order, key)
	c.remaining = 1
	c.workers["w1"] = &workerState{id: "w1", conn: nil, leases: map[uint64]bool{}}
	c.workers["w2"] = &workerState{id: "w2", conn: nil, leases: map[uint64]bool{}}
	l1 := c.newLeaseLocked(key, c.workers["w1"])
	l2 := c.newLeaseLocked(key, c.workers["w2"])

	c.deliverResult("w1", Msg{Type: MsgResult, Lease: l1.id, Result: &core.Result{ExecTime: 1}})
	c.deliverResult("w2", Msg{Type: MsgResult, Lease: l2.id, Result: &core.Result{ExecTime: 2}})

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fatal == nil || !strings.Contains(c.fatal.Error(), "determinism violation") {
		t.Fatalf("fatal = %v, want a determinism-violation error", c.fatal)
	}
}

// TestFabricBackoffCaps pins the capped exponential schedule.
func TestFabricBackoffCaps(t *testing.T) {
	cfg := CoordinatorConfig{BackoffBase: 100 * time.Millisecond, BackoffCap: 1 * time.Second}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second, time.Second,
	}
	for i, w := range want {
		if got := cfg.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

// TestFabricChaosMatrix is the hermetic suite: the full fault matrix ×
// steal on/off, each cell asserting every point completes with the
// exact deterministic result. This is the test that says "the fabric
// recovers from a hostile network", and it runs with no sockets.
func TestFabricChaosMatrix(t *testing.T) {
	plans := []struct {
		name string
		plan ChaosPlan
	}{
		{"clean", ChaosPlan{Seed: 1}},
		{"drop", ChaosPlan{Seed: 2, DropPerMille: 100}},
		{"delay", ChaosPlan{Seed: 3, DelayPerMille: 400, DelayMax: 5 * time.Millisecond}},
		{"dup", ChaosPlan{Seed: 4, DupPerMille: 300}},
		{"storm", ChaosPlan{Seed: 5, DropPerMille: 80, DupPerMille: 200, DelayPerMille: 300}},
	}
	for _, steal := range []bool{false, true} {
		for _, pc := range plans {
			name := fmt.Sprintf("%s/steal=%v", pc.name, steal)
			pc := pc
			steal := steal
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				cfg := quickCfg()
				cfg.Steal = steal
				cfg.DeadAfter = 300 * time.Millisecond
				cfg.LeaseTimeout = 400 * time.Millisecond
				tf := newTestFabric(t, pc.plan, cfg)
				specs := makeSpecs(12)
				for i := 0; i < 3; i++ {
					tf.startWorker(t, fmt.Sprintf("w%d", i), fakeRunner)
				}
				results, err := tf.coord.Run(specs)
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				checkResults(t, specs, results)
			})
		}
	}
}
