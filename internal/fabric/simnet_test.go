package fabric

import (
	"io"
	"testing"
	"time"
)

// TestChaosStreamDeterminism pins that fault decisions are a pure
// function of (seed, link label, message ordinal) — independent of
// goroutine interleaving on other links.
func TestChaosStreamDeterminism(t *testing.T) {
	a := newChaosStream(42, "w1/w2c")
	b := newChaosStream(42, "w1/w2c")
	for i := 0; i < 1000; i++ {
		if a.roll() != b.roll() {
			t.Fatalf("draw %d diverged between identical streams", i)
		}
	}
	c := newChaosStream(42, "w2/w2c")
	same := 0
	d := newChaosStream(42, "w1/w2c")
	for i := 0; i < 1000; i++ {
		if c.roll() == d.roll() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("distinct links shared %d of 1000 draws; label folding is broken", same)
	}
}

// TestChaosStreamZeroProbabilityConsumesNoDraw mirrors internal/fault's
// contract: disabling one fault class must not shift the others.
func TestChaosStreamZeroProbabilityConsumesNoDraw(t *testing.T) {
	a := newChaosStream(7, "x")
	a.hit(0) // must not advance
	b := newChaosStream(7, "x")
	if a.roll() != b.roll() {
		t.Fatal("hit(0) consumed a draw")
	}
}

func TestSimnetDeliversBothWays(t *testing.T) {
	n, err := NewNet(ChaosPlan{})
	if err != nil {
		t.Fatal(err)
	}
	l := n.Listener()
	w, err := n.Dial("w1")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	coordEnd, err := l.Accept()
	if err != nil {
		t.Fatalf("Accept: %v", err)
	}
	if err := w.Send(Msg{Type: MsgHello, Worker: "w1"}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	m, err := coordEnd.Recv()
	if err != nil || m.Type != MsgHello || m.Worker != "w1" {
		t.Fatalf("coordinator got (%+v, %v), want hello from w1", m, err)
	}
	if m.V != ProtoV1 {
		t.Fatalf("simnet must stamp the protocol version; got %q", m.V)
	}
	if err := coordEnd.Send(Msg{Type: MsgDrain}); err != nil {
		t.Fatalf("Send back: %v", err)
	}
	if m, err := w.Recv(); err != nil || m.Type != MsgDrain {
		t.Fatalf("worker got (%+v, %v), want drain", m, err)
	}
}

func TestSimnetPartitionBlackholesAndHeals(t *testing.T) {
	n, _ := NewNet(ChaosPlan{})
	l := n.Listener()
	w, _ := n.Dial("w1")
	coordEnd, _ := l.Accept()

	n.Partition("w1")
	w.Send(Msg{Type: MsgHeartbeat, Worker: "w1"}) // vanishes
	n.Heal("w1")
	w.Send(Msg{Type: MsgSteal, Worker: "w1"})

	m, err := coordEnd.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if m.Type != MsgSteal {
		t.Fatalf("got %s, want steal (the partitioned heartbeat must be lost)", m.Type)
	}
}

func TestSimnetCrashIsAbrupt(t *testing.T) {
	n, _ := NewNet(ChaosPlan{})
	l := n.Listener()
	w, _ := n.Dial("w1")
	coordEnd, _ := l.Accept()

	w.Send(Msg{Type: MsgHeartbeat}) // queued at the coordinator
	n.Crash("w1")
	if _, err := coordEnd.Recv(); err != io.EOF {
		t.Fatalf("Recv after crash = %v, want io.EOF (queued messages lost)", err)
	}
	if err := w.Send(Msg{Type: MsgHeartbeat}); err == nil {
		t.Fatal("Send on a crashed conn must fail")
	}
}

func TestSimnetGracefulCloseDrains(t *testing.T) {
	n, _ := NewNet(ChaosPlan{})
	l := n.Listener()
	w, _ := n.Dial("w1")
	coordEnd, _ := l.Accept()

	w.Send(Msg{Type: MsgResult, Lease: 9})
	coordEnd.Close()
	if m, err := coordEnd.Recv(); err != nil || m.Lease != 9 {
		t.Fatalf("graceful close must drain queued messages (FIN semantics); got (%+v, %v)", m, err)
	}
	if _, err := coordEnd.Recv(); err != io.EOF {
		t.Fatalf("after the drain: %v, want io.EOF", err)
	}
	_ = w
}

// TestSimnetDupDelivers pins the duplication fault: with DupPerMille
// 1000 every message arrives twice — the coordinator's dedup diet.
func TestSimnetDupDelivers(t *testing.T) {
	n, _ := NewNet(ChaosPlan{Seed: 1, DupPerMille: 1000})
	l := n.Listener()
	w, _ := n.Dial("w1")
	coordEnd, _ := l.Accept()

	w.Send(Msg{Type: MsgSteal, Worker: "w1"})
	for i := 0; i < 2; i++ {
		m, err := coordEnd.Recv()
		if err != nil || m.Type != MsgSteal {
			t.Fatalf("copy %d: (%+v, %v), want steal", i, m, err)
		}
	}
}

// TestSimnetRedialSeversStaleLink covers worker restart: the old
// incarnation's conns die abruptly and the new link is clean.
func TestSimnetRedialSeversStaleLink(t *testing.T) {
	n, _ := NewNet(ChaosPlan{})
	l := n.Listener()
	w1, _ := n.Dial("w1")
	old, _ := l.Accept()
	w2, err := n.Dial("w1")
	if err != nil {
		t.Fatalf("redial: %v", err)
	}
	if _, err := old.Recv(); err != io.EOF {
		t.Fatalf("stale coordinator end: %v, want io.EOF", err)
	}
	if err := w1.Send(Msg{Type: MsgHeartbeat}); err == nil {
		t.Fatal("stale worker end must be dead")
	}
	fresh, _ := l.Accept()
	if err := w2.Send(Msg{Type: MsgHello, Worker: "w1"}); err != nil {
		t.Fatalf("new link send: %v", err)
	}
	if m, err := fresh.Recv(); err != nil || m.Type != MsgHello {
		t.Fatalf("new link recv: (%+v, %v)", m, err)
	}
}

// TestSimnetDelayStillDelivers bounds the delay fault: a delayed
// message arrives (late), it is not lost.
func TestSimnetDelayStillDelivers(t *testing.T) {
	n, _ := NewNet(ChaosPlan{Seed: 3, DelayPerMille: 1000, DelayMax: 2 * time.Millisecond})
	l := n.Listener()
	w, _ := n.Dial("w1")
	coordEnd, _ := l.Accept()
	for i := 0; i < 20; i++ {
		w.Send(Msg{Type: MsgHeartbeat})
	}
	for i := 0; i < 20; i++ {
		if _, err := coordEnd.Recv(); err != nil {
			t.Fatalf("delayed message %d lost: %v", i, err)
		}
	}
}
