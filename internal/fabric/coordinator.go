package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"clustersim/internal/core"
	"clustersim/internal/obs/fleet"
)

// Coordinator tuning knobs. All timing is wall-clock harness time —
// the fabric schedules real hosts, not simulated ones.
type CoordinatorConfig struct {
	// DeadAfter is how long a worker may stay silent (no heartbeat, no
	// result, no steal) before it is declared dead and its leases are
	// requeued. Default 3s.
	DeadAfter time.Duration

	// LeaseTimeout is the per-lease backstop deadline: a lease older
	// than this is requeued even if its worker still heartbeats (a
	// wedged point without a worker-side watchdog). The worker keeps
	// computing; if its result eventually arrives it is either the
	// first completion (accepted) or a byte-identical duplicate
	// (dropped). Default 10m; 0 keeps the default, negative disables.
	LeaseTimeout time.Duration

	// BackoffBase/BackoffCap shape the capped exponential delay before
	// a requeued point becomes eligible for re-assignment: base×2^n
	// capped. Defaults 250ms / 10s.
	BackoffBase time.Duration
	BackoffCap  time.Duration

	// Steal lets an idle worker duplicate the oldest in-flight lease
	// when the pending queue is empty, absorbing uneven point costs
	// (MP3D vs Barnes). Safe because results are deterministic.
	Steal bool

	// DisableLocal turns off the degraded mode in which the
	// coordinator runs pending points itself when no live workers
	// exist. With local execution on (the default), a sweep always
	// completes, even if no worker ever connects.
	DisableLocal bool

	// LocalGrace is how long the coordinator waits for (re)connecting
	// workers before running points locally. Default 2s.
	LocalGrace time.Duration

	// Run executes one point locally (degraded mode). Required unless
	// DisableLocal.
	Run Runner

	// OnResult receives each point's first completion (the sink the
	// CLI wires to the journal). An error aborts the sweep — losing a
	// result silently would fork the experiment.
	OnResult func(PointSpec, *core.Result, bool) error

	// OnFailure receives each point's permanent failure record.
	OnFailure func(PointSpec, string)

	// Obs feeds fabric metrics and events (nil disables).
	Obs *Obs

	// Progress receives operator-facing lines (nil = silent).
	Progress io.Writer
}

func (c CoordinatorConfig) deadAfter() time.Duration {
	if c.DeadAfter <= 0 {
		return 3 * time.Second
	}
	return c.DeadAfter
}

func (c CoordinatorConfig) leaseTimeout() time.Duration {
	if c.LeaseTimeout < 0 {
		return 0 // disabled
	}
	if c.LeaseTimeout == 0 {
		return 10 * time.Minute
	}
	return c.LeaseTimeout
}

func (c CoordinatorConfig) backoffBase() time.Duration {
	if c.BackoffBase <= 0 {
		return 250 * time.Millisecond
	}
	return c.BackoffBase
}

func (c CoordinatorConfig) backoffCap() time.Duration {
	if c.BackoffCap <= 0 {
		return 10 * time.Second
	}
	return c.BackoffCap
}

func (c CoordinatorConfig) localGrace() time.Duration {
	if c.LocalGrace <= 0 {
		return 2 * time.Second
	}
	return c.LocalGrace
}

// backoff is the capped exponential re-assignment delay for attempt n
// (1-based: the first requeue waits one base).
func (c CoordinatorConfig) backoff(attempt int) time.Duration {
	d := c.backoffBase()
	cap := c.backoffCap()
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= cap {
			return cap
		}
	}
	if d > cap {
		return cap
	}
	return d
}

// Point lifecycle inside the coordinator.
type pointState int

const (
	statePending pointState = iota
	stateLeased
	stateDone
	stateFailed
)

// point is one sweep point's authoritative record.
type point struct {
	spec       PointSpec
	state      pointState
	attempts   int       // requeue count, drives the backoff
	eligible   time.Time // earliest next assignment after a requeue
	leases     []uint64  // active lease IDs (≥2 only while stolen)
	localLease uint64    // lease ID of an in-flight degraded-mode local run
	result     *core.Result
	resJSON    []byte // canonical encoding, the duplicate-completion oracle
	errMsg     string
}

// lease is one assignment of a point to a worker. Leases are retained
// retired so a late Result is always attributable to its point.
type lease struct {
	id      uint64
	key     string
	worker  string
	started time.Time
	retired bool
}

// workerState tracks one connected worker.
type workerState struct {
	id       string
	conn     Conn
	lastSeen time.Time
	idle     bool // sent Steal, awaiting an assignment
	gone     bool
	leases   map[uint64]bool
	obsAddr  string // worker obs server base URL from Hello, if any
}

// Coordinator owns the sweep: it leases points to workers, detects
// death by silence, requeues with capped exponential backoff,
// de-duplicates double completions by asserting byte-identical
// results, lets idle workers steal in-flight leases, and degrades to
// local execution when the fleet is gone.
type Coordinator struct {
	cfg CoordinatorConfig

	mu          sync.Mutex
	points      map[string]*point
	order       []string // registration order, for deterministic reports
	queue       []string // pending keys, FIFO
	remaining   int      // points not yet done/failed
	workers     map[string]*workerState
	workerOrder []string
	leases      map[uint64]*lease
	nextLease   uint64
	localAt     time.Time // earliest moment local fallback may trigger
	listener    Listener
	fatal       error // determinism violation or sink failure: abort
	closed      bool
}

// NewCoordinator builds a coordinator; Serve and Run make it live.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	return &Coordinator{
		cfg:     cfg,
		points:  make(map[string]*point),
		workers: make(map[string]*workerState),
		leases:  make(map[uint64]*lease),
	}
}

func (c *Coordinator) progressf(format string, args ...interface{}) {
	if c.cfg.Progress != nil {
		fmt.Fprintf(c.cfg.Progress, "fabric: "+format+"\n", args...)
	}
}

// Serve accepts worker connections on l until the listener closes
// (blocking; run it on its own goroutine).
func (c *Coordinator) Serve(l Listener) {
	c.mu.Lock()
	c.listener = l
	c.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		// Harness-level connection handler, strictly outside the
		// simulation's token discipline.
		go c.handleConn(conn) //simlint:allow goroutine
	}
}

// handleConn speaks the v1 protocol with one worker: Hello first, then
// steal/heartbeat/result until the stream dies.
func (c *Coordinator) handleConn(conn Conn) {
	m, err := conn.Recv()
	if err != nil || m.Type != MsgHello || m.Worker == "" {
		conn.Close()
		return
	}
	id := m.Worker
	c.register(id, conn, m.ObsAddr)
	for {
		m, err := conn.Recv()
		if err != nil {
			c.workerGone(id, conn, "connection lost")
			return
		}
		// Any frame may carry piggybacked span events; merge them into
		// the fleet timeline before acting on the frame itself, so a
		// point's worker spans precede its fabric-result event.
		if len(m.Spans) > 0 {
			c.cfg.Obs.WorkerSpans(id, m.Spans)
		}
		switch m.Type {
		case MsgHeartbeat:
			c.touch(id, conn)
			c.cfg.Obs.Heartbeat(id)
		case MsgSteal:
			c.touch(id, conn)
			c.markIdle(id, conn)
			c.schedule()
		case MsgResult:
			c.touch(id, conn)
			c.deliverResult(id, m)
			c.schedule()
		default:
			// Unknown types are ignored so minor protocol extensions
			// don't kill the fleet.
		}
	}
}

// register installs (or, for a restarted worker, replaces) a worker.
func (c *Coordinator) register(id string, conn Conn, obsAddr string) {
	c.mu.Lock()
	if old := c.workers[id]; old != nil && !old.gone {
		// A reconnect supersedes the old stream: requeue whatever the
		// previous incarnation held and adopt the new connection.
		c.declareDeadLocked(old, "superseded by reconnect")
	}
	w := &workerState{id: id, conn: conn, lastSeen: c.now(), leases: make(map[uint64]bool), obsAddr: obsAddr}
	if c.workers[id] == nil {
		c.workerOrder = append(c.workerOrder, id)
	}
	c.workers[id] = w
	c.mu.Unlock()
	c.cfg.Obs.WorkerJoined(id)
	c.progressf("worker %s connected (%s)", id, conn.RemoteName())
}

// now is the harness clock (the fabric schedules real machines).
func (c *Coordinator) now() time.Time {
	return time.Now() //simlint:allow wallclock
}

func (c *Coordinator) touch(id string, conn Conn) {
	c.mu.Lock()
	if w := c.workers[id]; w != nil && w.conn == conn {
		w.lastSeen = c.now()
	}
	c.mu.Unlock()
}

func (c *Coordinator) markIdle(id string, conn Conn) {
	c.mu.Lock()
	if w := c.workers[id]; w != nil && w.conn == conn && !w.gone {
		w.idle = true
	}
	c.mu.Unlock()
}

// workerGone handles a dead connection; a stale handler whose worker
// already reconnected must not kill the new incarnation.
func (c *Coordinator) workerGone(id string, conn Conn, reason string) {
	c.mu.Lock()
	w := c.workers[id]
	if w == nil || w.conn != conn || w.gone {
		c.mu.Unlock()
		return
	}
	c.declareDeadLocked(w, reason)
	c.mu.Unlock()
}

// declareDeadLocked retires a worker and requeues its leases.
func (c *Coordinator) declareDeadLocked(w *workerState, reason string) {
	if w.gone {
		return
	}
	w.gone = true
	w.idle = false
	w.conn.Close()
	ids := make([]uint64, 0, len(w.leases))
	for id := range w.leases {
		ids = append(ids, id) //simlint:allow maprange — sorted below
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		c.retireLeaseLocked(c.leases[id], "worker "+w.id+" died", true)
	}
	// Give the fleet a reconnect window before degrading to local runs.
	c.localAt = c.now().Add(c.cfg.localGrace())
	c.cfg.Obs.WorkerDead(w.id, reason, len(ids))
	c.progressf("worker %s dead (%s); %d leases requeued", w.id, reason, len(ids))
}

// retireLeaseLocked removes one lease; when it was the point's last
// active lease and the point is unfinished, the point returns to the
// queue behind a capped exponential backoff.
func (c *Coordinator) retireLeaseLocked(l *lease, reason string, requeue bool) {
	if l == nil || l.retired {
		return
	}
	l.retired = true
	if w := c.workers[l.worker]; w != nil {
		delete(w.leases, l.id)
	}
	p := c.points[l.key]
	if p == nil {
		return
	}
	active := p.leases[:0]
	for _, id := range p.leases {
		if id != l.id {
			active = append(active, id)
		}
	}
	p.leases = active
	if !requeue || p.state != stateLeased || len(p.leases) > 0 {
		return
	}
	p.state = statePending
	p.attempts++
	p.eligible = c.now().Add(c.cfg.backoff(p.attempts))
	c.queue = append(c.queue, l.key)
	c.cfg.Obs.Requeued(p.spec.Name(), p.spec.TraceID(), reason, p.attempts)
}

// newLeaseLocked assigns key to worker w.
func (c *Coordinator) newLeaseLocked(key string, w *workerState) *lease {
	c.nextLease++
	l := &lease{id: c.nextLease, key: key, worker: w.id, started: c.now()}
	c.leases[l.id] = l
	w.leases[l.id] = true
	p := c.points[key]
	p.state = stateLeased
	p.leases = append(p.leases, l.id)
	return l
}

// schedule hands eligible work to idle workers. Sends happen outside
// the lock; a failed send surfaces as the connection dying.
func (c *Coordinator) schedule() {
	type sendItem struct {
		conn Conn
		msg  Msg
	}
	var sends []sendItem
	c.mu.Lock()
	now := c.now()
	for _, id := range c.workerOrder {
		w := c.workers[id]
		if w == nil || w.gone || !w.idle {
			continue
		}
		key, kind := c.nextAssignmentLocked(w, now)
		if key == "" {
			continue
		}
		l := c.newLeaseLocked(key, w)
		w.idle = false
		p := c.points[key]
		spec := p.spec
		trace := spec.TraceID()
		sends = append(sends, sendItem{w.conn, Msg{Type: MsgAssign, Lease: l.id, Point: &spec, Trace: trace}})
		attempt := p.attempts
		c.cfg.Obs.Assigned(id, spec.Name(), trace, kind, attempt)
		c.progressf("assign %s to %s (%s, lease %d)", spec.Name(), id, kind, l.id)
	}
	c.mu.Unlock()
	for _, s := range sends {
		s.conn.Send(s.msg)
	}
}

// nextAssignmentLocked picks work for one idle worker: the first
// eligible pending point (FIFO), or — with stealing on and the queue
// empty — a speculative duplicate of the oldest single-leased
// in-flight point held by someone else.
func (c *Coordinator) nextAssignmentLocked(w *workerState, now time.Time) (key, kind string) {
	for i, k := range c.queue {
		p := c.points[k]
		if p.state != statePending || now.Before(p.eligible) {
			continue
		}
		c.queue = append(c.queue[:i], c.queue[i+1:]...)
		if p.attempts > 0 {
			return k, "reassign"
		}
		return k, "fresh"
	}
	if !c.cfg.Steal {
		return "", ""
	}
	var best *lease
	for id := uint64(1); id <= c.nextLease; id++ {
		l := c.leases[id]
		if l == nil || l.retired || l.worker == w.id {
			continue
		}
		p := c.points[l.key]
		if p.state != stateLeased || len(p.leases) != 1 {
			continue
		}
		if best == nil || l.started.Before(best.started) {
			best = l
		}
	}
	if best == nil {
		return "", ""
	}
	return best.key, "steal"
}

// deliverResult folds one Result message into the authoritative state.
// The first completion wins; later byte-identical completions (late
// re-sends, stolen duplicates, resurrected partitions) are dropped; a
// non-identical duplicate is a determinism violation and aborts the
// sweep — silently forking an experiment is the one unrecoverable sin.
func (c *Coordinator) deliverResult(workerID string, m Msg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	l := c.leases[m.Lease]
	if l == nil {
		return // unattributable: corrupt or cross-run message
	}
	c.retireLeaseLocked(l, "completed", false)
	p := c.points[l.key]
	if p == nil {
		return
	}
	name := p.spec.Name()
	trace := p.spec.TraceID()
	if m.Error != "" {
		if p.state == stateDone {
			// A late failure after a healthy completion (e.g. a stolen
			// copy hit a worker-side watchdog): the result stands.
			c.cfg.Obs.ResultFailed(workerID, name, trace, "late failure dropped: "+m.Error)
			return
		}
		if p.state != stateFailed {
			p.state = stateFailed
			p.errMsg = m.Error
			c.remaining--
			c.retirePointLeasesLocked(p)
			if c.cfg.OnFailure != nil {
				c.cfg.OnFailure(p.spec, m.Error)
			}
		}
		c.cfg.Obs.ResultFailed(workerID, name, trace, m.Error)
		c.progressf("point %s failed on %s: %s", name, workerID, m.Error)
		return
	}
	if m.Result == nil {
		return
	}
	js, err := json.Marshal(m.Result)
	if err != nil {
		c.setFatalLocked(fmt.Errorf("fabric: encode result of %s: %w", name, err))
		return
	}
	switch p.state {
	case stateDone:
		if !bytes.Equal(js, p.resJSON) {
			c.setFatalLocked(fmt.Errorf(
				"fabric: determinism violation: %s completed twice with different results (worker %s disagrees with the stored completion); refusing to pick one",
				name, workerID))
			return
		}
		c.cfg.Obs.ResultDuplicate(workerID, name, trace)
		c.progressf("duplicate completion of %s from %s verified byte-identical, dropped", name, workerID)
	case stateFailed:
		// A success after a recorded failure: only wall-clock-dependent
		// failure modes (worker watchdogs) can disagree with a healthy
		// run, and the healthy result is strictly better evidence.
		p.state = stateDone
		p.errMsg = ""
		p.result = m.Result
		p.resJSON = js
		c.storeLocked(p, m.Resumed, workerID, name, trace, m.WallNS)
	default:
		p.state = stateDone
		p.result = m.Result
		p.resJSON = js
		c.remaining--
		c.retirePointLeasesLocked(p)
		c.storeLocked(p, m.Resumed, workerID, name, trace, m.WallNS)
	}
}

// retirePointLeasesLocked drops any remaining active leases of a
// finished point (stolen copies keep computing; their late results are
// handled as duplicates).
func (c *Coordinator) retirePointLeasesLocked(p *point) {
	for _, id := range append([]uint64(nil), p.leases...) {
		c.retireLeaseLocked(c.leases[id], "point finished", false)
	}
}

func (c *Coordinator) storeLocked(p *point, resumed bool, workerID, name, trace string, wallNS int64) {
	if c.cfg.OnResult != nil {
		if err := c.cfg.OnResult(p.spec, p.result, resumed); err != nil {
			c.setFatalLocked(fmt.Errorf("fabric: persist result of %s: %w", name, err))
			return
		}
	}
	c.cfg.Obs.ResultOK(workerID, name, trace, resumed, time.Duration(wallNS))
	c.progressf("point %s completed by %s (resumed=%v)", name, workerID, resumed)
}

func (c *Coordinator) setFatalLocked(err error) {
	if c.fatal == nil {
		c.fatal = err
	}
}

// checkLivenessLocked declares silent workers dead and requeues
// overripe leases (the lease-deadline backstop).
func (c *Coordinator) checkLivenessLocked(now time.Time) {
	dead := c.cfg.deadAfter()
	for _, id := range c.workerOrder {
		w := c.workers[id]
		if w != nil && !w.gone && now.Sub(w.lastSeen) > dead {
			c.declareDeadLocked(w, fmt.Sprintf("no heartbeat for %v", now.Sub(w.lastSeen).Round(time.Millisecond)))
		}
	}
	if lt := c.cfg.leaseTimeout(); lt > 0 {
		for id := uint64(1); id <= c.nextLease; id++ {
			l := c.leases[id]
			if l != nil && !l.retired && now.Sub(l.started) > lt {
				c.retireLeaseLocked(l, fmt.Sprintf("lease %d exceeded the %v deadline", l.id, lt), true)
			}
		}
	}
}

// pollInterval paces the run loop's liveness/assignment sweep.
const pollInterval = 10 * time.Millisecond

// Run distributes specs and blocks until every point is done or
// permanently failed, returning results keyed by PointSpec.Key. It is
// the sweep's main loop: liveness checking, scheduling, backoff and
// the local-execution degraded mode all pulse from here.
func (c *Coordinator) Run(specs []PointSpec) (map[string]*core.Result, error) {
	c.mu.Lock()
	for _, s := range specs {
		key := s.Key()
		if _, ok := c.points[key]; ok {
			continue
		}
		c.points[key] = &point{spec: s}
		c.order = append(c.order, key)
		c.queue = append(c.queue, key)
		c.remaining++
	}
	if c.cfg.DisableLocal {
		c.localAt = time.Time{}
	} else {
		c.localAt = c.now().Add(c.cfg.localGrace())
	}
	total := len(c.points)
	c.mu.Unlock()
	c.progressf("distributing %d points", total)

	for {
		c.mu.Lock()
		now := c.now()
		c.checkLivenessLocked(now)
		fatal := c.fatal
		remaining := c.remaining
		var local *point
		if fatal == nil && remaining > 0 && !c.cfg.DisableLocal && c.cfg.Run != nil &&
			c.liveWorkersLocked() == 0 && !c.localAt.IsZero() && !now.Before(c.localAt) {
			local = c.popEligibleLocalLocked(now)
		}
		c.mu.Unlock()
		if fatal != nil || remaining == 0 {
			break
		}
		if local != nil {
			c.runLocal(local)
			continue
		}
		c.schedule()
		// Harness pacing between liveness/assignment sweeps.
		time.Sleep(pollInterval) //simlint:allow wallclock
	}
	c.drain()

	c.mu.Lock()
	defer c.mu.Unlock()
	results := make(map[string]*core.Result, len(c.order))
	var failed []string
	for _, key := range c.order {
		p := c.points[key]
		if p.state == stateDone {
			results[key] = p.result
		} else {
			failed = append(failed, fmt.Sprintf("%s: %s", p.spec.Name(), p.errMsg))
		}
	}
	if c.fatal != nil {
		return results, c.fatal
	}
	if len(failed) > 0 {
		return results, fmt.Errorf("fabric: %d of %d points failed permanently:\n  %s",
			len(failed), len(c.order), joinLines(failed))
	}
	return results, nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}

// FleetWorkers snapshots every worker this coordinator has seen, in
// registration order, for the fleet status view: liveness, lease load,
// heartbeat freshness and the worker's obs server URL (if advertised).
func (c *Coordinator) FleetWorkers() []fleet.WorkerLink {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	out := make([]fleet.WorkerLink, 0, len(c.workerOrder))
	for _, id := range c.workerOrder {
		w := c.workers[id]
		if w == nil {
			continue
		}
		link := fleet.WorkerLink{
			Worker:     id,
			Alive:      !w.gone,
			ObsURL:     w.obsAddr,
			LeasesHeld: len(w.leases),
		}
		if !w.gone {
			link.HeartbeatAgeMS = now.Sub(w.lastSeen).Milliseconds()
		}
		out = append(out, link)
	}
	return out
}

// ObsTargets lists the live workers whose /metrics the federator should
// scrape: those that advertised an obs server on their Hello.
func (c *Coordinator) ObsTargets() []fleet.Target {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]fleet.Target, 0, len(c.workerOrder))
	for _, id := range c.workerOrder {
		if w := c.workers[id]; w != nil && !w.gone && w.obsAddr != "" {
			out = append(out, fleet.Target{Worker: id, URL: w.obsAddr})
		}
	}
	return out
}

func (c *Coordinator) liveWorkersLocked() int {
	n := 0
	for _, id := range c.workerOrder {
		if w := c.workers[id]; w != nil && !w.gone {
			n++
		}
	}
	return n
}

// popEligibleLocalLocked takes the first eligible pending point for a
// local (degraded-mode) run, leasing it to the pseudo-worker "(local)"
// so late remote results for the same point dedup normally.
func (c *Coordinator) popEligibleLocalLocked(now time.Time) *point {
	for i, k := range c.queue {
		p := c.points[k]
		if p.state != statePending || now.Before(p.eligible) {
			continue
		}
		c.queue = append(c.queue[:i], c.queue[i+1:]...)
		c.nextLease++
		l := &lease{id: c.nextLease, key: k, worker: "(local)", started: now}
		c.leases[l.id] = l
		p.state = stateLeased
		p.leases = append(p.leases, l.id)
		p.localLease = l.id
		return p
	}
	return nil
}

// runLocal executes one point in the coordinator process (no workers
// left) and feeds it through the normal completion path.
func (c *Coordinator) runLocal(p *point) {
	c.cfg.Obs.LocalRun(p.spec.Name(), p.spec.TraceID())
	c.progressf("no live workers: running %s locally", p.spec.Name())
	started := c.now()
	res, resumed, err := c.cfg.Run(p.spec)
	m := Msg{Type: MsgResult, Lease: p.localLease, Resumed: resumed}
	if err != nil {
		m.Error = err.Error()
	} else {
		m.Result = res
		if !resumed {
			m.WallNS = int64(c.now().Sub(started))
		}
	}
	c.deliverResult("(local)", m)
}

// drain says goodbye to the fleet and stops accepting.
func (c *Coordinator) drain() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	var conns []Conn
	live := 0
	for _, id := range c.workerOrder {
		if w := c.workers[id]; w != nil && !w.gone {
			conns = append(conns, w.conn)
			live++
		}
	}
	l := c.listener
	c.mu.Unlock()
	for _, conn := range conns {
		conn.Send(Msg{Type: MsgDrain, Detail: "sweep complete"})
		conn.Close()
	}
	if l != nil {
		l.Close()
	}
	c.cfg.Obs.Drained(live)
	c.progressf("sweep complete; drained %d workers", live)
}
