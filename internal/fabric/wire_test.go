package fabric

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"clustersim/internal/core"
)

func TestWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Msg{
		{Type: MsgHello, Worker: "w1"},
		{Type: MsgAssign, Lease: 7, Point: &PointSpec{
			App: "barnes", Size: "small", ClusterSize: 4, CacheKB: 16,
			Procs: 16, ConfigHash: "abc123"}},
		{Type: MsgResult, Worker: "w1", Lease: 7, Resumed: true,
			Result: &core.Result{ExecTime: 42}},
		{Type: MsgResult, Worker: "w1", Lease: 8, Error: "panic: boom"},
		{Type: MsgDrain, Detail: "sweep complete"},
	}
	for _, m := range msgs {
		if err := WriteMsg(&buf, m); err != nil {
			t.Fatalf("WriteMsg(%s): %v", m.Type, err)
		}
	}
	r := bufio.NewReader(&buf)
	for i, want := range msgs {
		got, err := ReadMsg(r)
		if err != nil {
			t.Fatalf("ReadMsg #%d: %v", i, err)
		}
		if got.V != ProtoV1 {
			t.Errorf("msg %d: version %q, want %q", i, got.V, ProtoV1)
		}
		if got.Type != want.Type || got.Worker != want.Worker || got.Lease != want.Lease ||
			got.Error != want.Error || got.Resumed != want.Resumed || got.Detail != want.Detail {
			t.Errorf("msg %d: got %+v, want %+v", i, got, want)
		}
		if (got.Point == nil) != (want.Point == nil) {
			t.Errorf("msg %d: Point presence mismatch", i)
		} else if want.Point != nil && *got.Point != *want.Point {
			t.Errorf("msg %d: Point = %+v, want %+v", i, *got.Point, *want.Point)
		}
	}
	if _, err := ReadMsg(r); err != io.EOF {
		t.Errorf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestWireRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"junk header":    "not-a-number\n{}\n",
		"negative":       "-5\n{}\n",
		"oversize":       fmt.Sprintf("%d\n", MaxFrame+1),
		"truncated body": "100\n{\"v\":\"x\"}\n",
		"bad json":       "5\n{{{{{\n",
	}
	for name, in := range cases {
		if _, err := ReadMsg(bufio.NewReader(strings.NewReader(in))); err == nil || err == io.EOF {
			t.Errorf("%s: err = %v, want a protocol error", name, err)
		}
	}
}

func TestWireRejectsVersionSkew(t *testing.T) {
	payload := `{"v":"clustersim/fabric/v0","type":"hello"}`
	in := fmt.Sprintf("%d\n%s\n", len(payload), payload)
	_, err := ReadMsg(bufio.NewReader(strings.NewReader(in)))
	if err == nil || !strings.Contains(err.Error(), "version skew") {
		t.Fatalf("err = %v, want a version-skew error", err)
	}
}

// TestWireTCP pushes the protocol through a real socket: the transport
// the fleet actually uses, not just the in-memory pipes.
func TestWireTCP(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()
	done := make(chan error, 1)
	go func() { //simlint:allow goroutine — test harness
		conn, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		m, err := conn.Recv()
		if err != nil {
			done <- err
			return
		}
		done <- conn.Send(Msg{Type: MsgAssign, Lease: 1, Point: &PointSpec{App: m.Worker}})
	}()
	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.Send(Msg{Type: MsgHello, Worker: "w-tcp"}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	m, err := c.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if m.Type != MsgAssign || m.Point == nil || m.Point.App != "w-tcp" {
		t.Fatalf("echo = %+v, want assign with App=w-tcp", m)
	}
	if err := <-done; err != nil {
		t.Fatalf("server side: %v", err)
	}
}
