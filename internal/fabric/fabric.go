// Package fabric is the fault-tolerant distributed sweep layer: a
// coordinator/worker protocol that fans the experiments suite's
// simulation points out across machines and survives a hostile network.
//
// The design is robustness-first. Every sweep point is deterministic —
// the same PointSpec produces a byte-identical core.Result on any
// worker — so every recovery path is provably safe:
//
//   - A dead worker's leases are re-assigned (capped exponential
//     backoff); if the "dead" worker was merely partitioned and its
//     Result arrives late, the duplicate completion is asserted
//     byte-identical and dropped (last write wins, and must agree).
//   - An idle worker can steal an in-flight lease (speculative
//     duplicate execution) to absorb uneven point costs; the same
//     duplicate-completion argument makes stealing always safe.
//   - A restarted worker replays its local journal instead of
//     recomputing, so a crash loses at most the point in flight.
//   - A coordinator with no live workers degrades to local execution,
//     so the sweep always completes.
//
// Two transports implement the same Conn/Listener contract: a real TCP
// codec (wire.go, length-delimited JSON frames carrying versioned
// clustersim/fabric/v1 messages) and an in-memory simulated network
// (simnet.go) whose seed-deterministic fault injection — message drop,
// duplication, delay, partition, abrupt worker crash — lets the entire
// failure matrix run hermetically in one test process.
//
// The fabric is wall-clock-side harness machinery: it schedules which
// host simulates which point, and never reaches into simulated state.
// Results, tables and config hashes are byte-identical to a local run
// (pinned by the experiments keystone test).
package fabric

import (
	"fmt"

	"clustersim/internal/core"
	"clustersim/internal/fault"
	"clustersim/internal/obs"
	"clustersim/internal/obs/fleet"
)

// ProtoV1 is the wire-protocol version tag every message carries. A
// peer speaking any other version is rejected at decode time, so
// version skew surfaces as a handshake error, not silent corruption.
const ProtoV1 = "clustersim/fabric/v1"

// Message types of the v1 protocol (documented in EXPERIMENTS.md).
const (
	// MsgHello is the worker's first message: its identity.
	MsgHello = "hello"
	// MsgSteal is the worker asking for work — on joining, after each
	// finished point, and (the eponymous case) when the pending queue
	// is empty and the coordinator may duplicate an in-flight lease.
	MsgSteal = "steal"
	// MsgAssign leases one point to a worker.
	MsgAssign = "assign"
	// MsgHeartbeat is the worker's periodic liveness beacon.
	MsgHeartbeat = "heartbeat"
	// MsgResult completes (or fails) a lease.
	MsgResult = "result"
	// MsgDrain tells a worker the sweep is complete: disconnect.
	MsgDrain = "drain"
)

// PointSpec describes one sweep point completely enough for any worker
// to rebuild the exact core.Config. ConfigHash is the coordinator's
// hash of that config; a worker recomputes it and refuses a mismatch,
// so version skew between fleet binaries is caught before it can fork
// an experiment.
type PointSpec struct {
	App         string        `json:"app"`
	Size        string        `json:"size"`
	ClusterSize int           `json:"clusterSize"`
	CacheKB     int           `json:"cacheKB"` // 0 = infinite
	Procs       int           `json:"procs"`
	Quantum     int64         `json:"quantum,omitempty"`
	Sanitize    bool          `json:"sanitize,omitempty"`
	Faults      *fault.Config `json:"faults,omitempty"`
	ConfigHash  string        `json:"configHash"`
}

// Key is the point's unique identity within one sweep: the journal key
// fields. Two specs with equal keys must produce byte-identical
// results — the invariant behind every duplicate-completion recovery.
func (p PointSpec) Key() string {
	return fmt.Sprintf("%s-%s-c%d-%dk-%s", p.App, p.Size, p.ClusterSize, p.CacheKB, p.ConfigHash)
}

// Name is the point's short display name, matching the experiments
// suite's pointName convention (app-cN-cache).
func (p PointSpec) Name() string {
	cache := "inf"
	if p.CacheKB > 0 {
		cache = fmt.Sprintf("%dk", p.CacheKB)
	}
	return fmt.Sprintf("%s-c%d-%s", p.App, p.ClusterSize, cache)
}

// TraceID is the point's fleet-wide trace ID, derived from its journal
// key: every process that touches the point derives the same ID, which
// is what lets coordinator events and worker spans merge into one
// timeline. Trace IDs ride the wire envelope and the event log only —
// never core.Result — so traced runs stay byte-identical.
func (p PointSpec) TraceID() string {
	return fleet.TraceID(p.Key())
}

// Msg is the single wire envelope of the v1 protocol. Type selects
// which optional fields are meaningful.
type Msg struct {
	V    string `json:"v"`    // always ProtoV1
	Type string `json:"type"` // one of the Msg* constants

	// Worker is the sender's stable identity (hello, heartbeat, steal,
	// result). A restarted worker reuses its ID to reclaim its place.
	Worker string `json:"worker,omitempty"`

	// Lease identifies one assignment (assign, result). Lease IDs are
	// unique per coordinator run, so a late Result for a superseded
	// lease is still attributable.
	Lease uint64 `json:"lease,omitempty"`

	// Point is the leased spec (assign).
	Point *PointSpec `json:"point,omitempty"`

	// Result is the completed point (result, success).
	Result *core.Result `json:"result,omitempty"`

	// Error is the failure report (result, failure): the annotated
	// panic or engine error text.
	Error string `json:"error,omitempty"`

	// Resumed marks a Result that was replayed from the worker's local
	// journal rather than recomputed (a restarted worker resuming).
	Resumed bool `json:"resumed,omitempty"`

	// Detail carries free-form context (drain reason, hello metadata).
	Detail string `json:"detail,omitempty"`

	// Trace is the point's fleet-wide trace ID (assign). Optional and
	// ignored by v1 peers that predate it — JSON decoding drops unknown
	// fields, so trace propagation is version-compatible.
	Trace string `json:"trace,omitempty"`

	// WallNS is the worker-measured wall-clock cost of a freshly
	// computed point (result, success, not resumed). Feeds the fleet
	// ETA; never enters Result JSON.
	WallNS int64 `json:"wallNs,omitempty"`

	// ObsAddr is the worker's observability server base URL (hello),
	// e.g. "http://10.0.0.7:9091". The coordinator federates /metrics
	// from it. Empty when the worker serves no endpoints.
	ObsAddr string `json:"obsAddr,omitempty"`

	// Spans carries worker point-local span events piggybacked on
	// result and heartbeat frames, for the coordinator's merged fleet
	// timeline. At-most-once delivery: spans lost with a crashed worker
	// are acceptable, the coordinator's own events keep every point's
	// timeline terminal.
	Spans []obs.Event `json:"spans,omitempty"`
}

// Runner executes one point. The experiments package supplies the real
// implementation (journal replay, panic isolation, optional watchdog);
// fabric tests inject fakes. A Runner must be deterministic: equal
// specs yield byte-identical results. resumed reports that the result
// was replayed from a local journal instead of recomputed.
type Runner func(PointSpec) (res *core.Result, resumed bool, err error)
