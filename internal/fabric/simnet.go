package fabric

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// ChaosPlan configures the simulated network's seed-deterministic
// message-level fault injection. Probabilities are per-mille per
// message, drawn from a counter-based splitmix64 stream (the same
// construction as internal/fault): each link direction owns its own
// stream keyed by (Seed, link, direction), so the n-th message sent on
// a link always suffers the same fate regardless of goroutine
// interleaving across links. The zero plan injects nothing.
//
// Partitions and crashes are scripted explicitly (Partition, Heal,
// Crash) rather than drawn, so chaos tests can stage exact failure
// scenarios around specific sweep moments.
type ChaosPlan struct {
	Seed          int64
	DropPerMille  int           // message silently lost
	DupPerMille   int           // message delivered twice
	DelayPerMille int           // message held for up to DelayMax
	DelayMax      time.Duration // bound on one injected delay (default 5ms)
}

func (p ChaosPlan) delayMax() time.Duration {
	if p.DelayMax <= 0 {
		return 5 * time.Millisecond
	}
	return p.DelayMax
}

// Validate reports whether the plan is runnable.
func (p ChaosPlan) Validate() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"DropPerMille", p.DropPerMille},
		{"DupPerMille", p.DupPerMille},
		{"DelayPerMille", p.DelayPerMille},
	} {
		if f.v < 0 || f.v > 1000 {
			return fmt.Errorf("fabric: chaos %s %d outside [0,1000]", f.name, f.v)
		}
	}
	return nil
}

// chaosStream is one direction's deterministic fault stream.
type chaosStream struct {
	seed  uint64
	draws uint64
}

// fnv1a folds a link label into the stream seed.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func newChaosStream(seed int64, label string) *chaosStream {
	return &chaosStream{seed: uint64(seed) ^ fnv1a(label)}
}

// roll advances the splitmix64 counter stream one step.
func (c *chaosStream) roll() uint64 {
	c.draws++
	z := c.seed + c.draws*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// hit draws one decision; a zero probability consumes no draw, so
// disabling one fault class does not shift the stream of the others.
func (c *chaosStream) hit(perMille int) bool {
	if perMille <= 0 {
		return false
	}
	return c.roll()%1000 < uint64(perMille)
}

// Net is the in-memory simulated network: one coordinator listener and
// any number of named worker links, all in one process, with the
// ChaosPlan applied to every message. It exists so the entire failure
// matrix — drop, duplication, delay, partition, crash, restart — runs
// hermetically in a unit test with no sockets and no timing deps
// beyond the (bounded) injected delays.
type Net struct {
	mu     sync.Mutex
	plan   ChaosPlan
	accept chan *simConn
	links  map[string]*simLink
	closed bool
}

// simLink is one worker's bidirectional connection.
type simLink struct {
	name        string
	partitioned bool
	worker      *simConn // the worker's end
	coord       *simConn // the coordinator's end
}

// NewNet creates a simulated network under the given chaos plan.
func NewNet(plan ChaosPlan) (*Net, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Net{
		plan:   plan,
		accept: make(chan *simConn, 64),
		links:  make(map[string]*simLink),
	}, nil
}

// inboxCap bounds one direction's in-flight queue. Large enough that a
// healthy test never fills it; a full inbox drops like a congested
// switch.
const inboxCap = 4096

// simConn is one end of a link.
type simConn struct {
	net    *Net
	link   *simLink
	remote string
	inbox  chan Msg
	stream *chaosStream
	closed chan struct{}
	once   sync.Once
	// abrupt marks a crash-style close: queued messages are discarded
	// instead of drained, like a peer whose host died mid-stream.
	abrupt bool
}

func (c *simConn) peer() *simConn {
	if c == c.link.worker {
		return c.link.coord
	}
	return c.link.worker
}

// Send applies the chaos plan and delivers to the peer's inbox. A
// dropped or partitioned message returns nil — the sender cannot tell,
// exactly like UDP under a black-holed route (TCP's reliability lives
// above this layer in the coordinator's retry machinery).
func (c *simConn) Send(m Msg) error {
	select {
	case <-c.closed:
		return fmt.Errorf("fabric: simnet %s: connection closed", c.link.name)
	default:
	}
	m.V = ProtoV1
	c.net.mu.Lock()
	partitioned := c.link.partitioned
	drop := c.stream.hit(c.net.plan.DropPerMille)
	dup := c.stream.hit(c.net.plan.DupPerMille)
	delay := c.stream.hit(c.net.plan.DelayPerMille)
	var hold time.Duration
	if delay {
		hold = time.Duration(c.stream.roll() % uint64(c.net.plan.delayMax()))
	}
	c.net.mu.Unlock()
	if partitioned || drop {
		return nil
	}
	peer := c.peer()
	deliver := func() { peer.put(m) }
	if delay {
		// Harness-level chaos timing: the delay reorders harness
		// messages and never touches simulated state.
		time.AfterFunc(hold, func() { //simlint:allow wallclock
			deliver()
			if dup {
				deliver()
			}
		})
		return nil
	}
	deliver()
	if dup {
		deliver()
	}
	return nil
}

// put enqueues one delivery, dropping on a full inbox or a closed peer.
func (c *simConn) put(m Msg) {
	select {
	case <-c.closed:
	case c.inbox <- m:
	default: // congested: drop, the retry layer recovers
	}
}

// Recv returns the next delivered message. A graceful close drains the
// queue first (TCP FIN semantics); an abrupt crash discards it. The
// closed state is checked first on its own so a crash that happened
// before the call deterministically discards queued messages (a
// two-way select would pick a branch at random when both are ready).
func (c *simConn) Recv() (Msg, error) {
	for {
		select {
		case <-c.closed:
			if !c.abrupt {
				select {
				case m := <-c.inbox:
					return m, nil
				default:
				}
			}
			return Msg{}, io.EOF
		default:
		}
		select {
		case <-c.closed:
			// Loop so the abrupt/graceful distinction above decides.
		case m := <-c.inbox:
			return m, nil
		}
	}
}

func (c *simConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// crash closes abruptly. abrupt is only ever written inside the close
// once, before the channel closes, so every reader that observed
// c.closed sees it race-free; crashing an already-closed conn is a
// no-op (it died gracefully first).
func (c *simConn) crash() {
	c.once.Do(func() {
		c.abrupt = true
		close(c.closed)
	})
}

func (c *simConn) RemoteName() string { return c.remote }

// Dial connects a named worker to the coordinator's listener. Redialing
// an existing name (a restarted worker) severs the stale link first.
func (n *Net) Dial(name string) (Conn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, fmt.Errorf("fabric: simnet closed")
	}
	if old := n.links[name]; old != nil {
		old.worker.crash()
		old.coord.crash()
	}
	// Each conn's stream governs what it sends: the worker end draws
	// from the worker-to-coordinator stream and vice versa.
	l := &simLink{name: name}
	l.worker = &simConn{net: n, link: l, remote: "coordinator",
		inbox: make(chan Msg, inboxCap), closed: make(chan struct{}),
		stream: newChaosStream(n.plan.Seed, name+"/w2c")}
	l.coord = &simConn{net: n, link: l, remote: name,
		inbox: make(chan Msg, inboxCap), closed: make(chan struct{}),
		stream: newChaosStream(n.plan.Seed, name+"/c2w")}
	n.links[name] = l
	n.mu.Unlock()
	select {
	case n.accept <- l.coord:
	default:
		l.worker.crash()
		l.coord.crash()
		return nil, fmt.Errorf("fabric: simnet accept queue full")
	}
	return l.worker, nil
}

// Partition black-holes the named link in both directions (the conn
// stays "up": sends vanish, nothing arrives) until Heal.
func (n *Net) Partition(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if l := n.links[name]; l != nil {
		l.partitioned = true
	}
}

// Heal reconnects a partitioned link.
func (n *Net) Heal(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if l := n.links[name]; l != nil {
		l.partitioned = false
	}
}

// Crash abruptly severs the named link, as if the worker's host died:
// both ends fail immediately and queued messages are lost.
func (n *Net) Crash(name string) {
	n.mu.Lock()
	l := n.links[name]
	n.mu.Unlock()
	if l != nil {
		l.worker.crash()
		l.coord.crash()
	}
}

// simListener is the coordinator's accept queue.
type simListener struct{ net *Net }

// Listener returns the coordinator-side listener of this network.
func (n *Net) Listener() Listener { return &simListener{net: n} }

func (s *simListener) Accept() (Conn, error) {
	c, ok := <-s.net.accept
	if !ok {
		return nil, io.EOF
	}
	return c, nil
}

func (s *simListener) Close() error {
	s.net.mu.Lock()
	defer s.net.mu.Unlock()
	if !s.net.closed {
		s.net.closed = true
		close(s.net.accept)
	}
	return nil
}

func (s *simListener) Addr() string { return "simnet" }
