package fabric

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
)

// Conn is one bidirectional message stream between a worker and the
// coordinator. Send is safe for concurrent use (the worker's heartbeat
// goroutine shares the conn with its main loop); Recv is single-reader.
type Conn interface {
	Send(Msg) error
	Recv() (Msg, error)
	Close() error
	// RemoteName labels the peer for logs and events: a TCP address or
	// a simnet worker name.
	RemoteName() string
}

// Listener accepts worker connections on the coordinator side.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() string
}

// MaxFrame bounds one message frame. A 64-processor Result is tens of
// kilobytes; anything near this bound is a corrupt or hostile stream.
const MaxFrame = 8 << 20

// WriteMsg encodes one length-delimited JSON frame:
//
//	<decimal byte length>\n<JSON payload>\n
//
// The payload is a single json.Marshal line, so the stream doubles as
// readable JSON-lines with interleaved length headers; the explicit
// length lets the reader pre-validate the frame bound before decoding.
func WriteMsg(w io.Writer, m Msg) error {
	m.V = ProtoV1
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("fabric: encode %s: %w", m.Type, err)
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("fabric: %s frame of %d bytes exceeds the %d-byte bound", m.Type, len(payload), MaxFrame)
	}
	// One buffered write per frame so a frame is never interleaved with
	// another sender's (Send serialises via mutex above this).
	buf := make([]byte, 0, len(payload)+16)
	buf = strconv.AppendInt(buf, int64(len(payload)), 10)
	buf = append(buf, '\n')
	buf = append(buf, payload...)
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// ReadMsg decodes one frame, enforcing the length bound and the
// protocol version. io.EOF at a frame boundary is a clean close;
// anything else is a protocol error naming what went wrong.
func ReadMsg(r *bufio.Reader) (Msg, error) {
	header, err := r.ReadString('\n')
	if err != nil {
		if err == io.EOF && header == "" {
			return Msg{}, io.EOF
		}
		return Msg{}, fmt.Errorf("fabric: read frame header: %w", err)
	}
	n, err := strconv.Atoi(strings.TrimSpace(header))
	if err != nil {
		return Msg{}, fmt.Errorf("fabric: malformed frame header %q", strings.TrimSpace(header))
	}
	if n < 0 || n > MaxFrame {
		return Msg{}, fmt.Errorf("fabric: frame length %d outside [0,%d]", n, MaxFrame)
	}
	payload := make([]byte, n+1) // +1 for the trailing newline
	if _, err := io.ReadFull(r, payload); err != nil {
		return Msg{}, fmt.Errorf("fabric: read %d-byte frame: %w", n, err)
	}
	if payload[n] != '\n' {
		return Msg{}, fmt.Errorf("fabric: frame not newline-terminated")
	}
	var m Msg
	if err := json.Unmarshal(payload[:n], &m); err != nil {
		return Msg{}, fmt.Errorf("fabric: decode frame: %w", err)
	}
	if m.V != ProtoV1 {
		return Msg{}, fmt.Errorf("fabric: peer speaks %q, want %q (version skew?)", m.V, ProtoV1)
	}
	return m, nil
}

// tcpConn adapts one net.Conn to the Conn contract.
type tcpConn struct {
	mu sync.Mutex // serialises writers
	c  net.Conn
	r  *bufio.Reader
}

func newTCPConn(c net.Conn) *tcpConn {
	return &tcpConn{c: c, r: bufio.NewReaderSize(c, 64<<10)}
}

func (t *tcpConn) Send(m Msg) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return WriteMsg(t.c, m)
}

func (t *tcpConn) Recv() (Msg, error) { return ReadMsg(t.r) }
func (t *tcpConn) Close() error       { return t.c.Close() }
func (t *tcpConn) RemoteName() string { return t.c.RemoteAddr().String() }

// tcpListener adapts net.Listener.
type tcpListener struct{ l net.Listener }

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

// Listen binds a TCP coordinator endpoint (":0" picks a free port,
// reported by Addr).
func Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fabric: listen %s: %w", addr, err)
	}
	return &tcpListener{l: l}, nil
}

// Dial connects a worker to a TCP coordinator.
func Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fabric: dial %s: %w", addr, err)
	}
	return newTCPConn(c), nil
}
