package fabric

import (
	"fmt"
	"time"

	"clustersim/internal/obs"
	"clustersim/internal/obs/fleet"
)

// Fabric event kinds, appended to the sweep's clustersim/events/v1
// stream (the Worker field carries the worker identity). Every recovery
// path emits an event, so "the fabric recovered from X" is a checkable
// statement over the log, not an inference. The canonical string values
// live in internal/obs/fleet — the fleet view's point state machine
// keys on them and cannot import fabric — and are aliased here so
// fabric callers keep their spelling.
const (
	EventWorkerJoin = fleet.EventWorkerJoin
	EventWorkerDead = fleet.EventWorkerDead
	EventAssign     = fleet.EventAssign // Detail: fresh | reassign attempt=N | steal
	EventRequeue    = fleet.EventRequeue
	EventResult     = fleet.EventResult // Detail: computed | resumed-from-journal
	EventResultDup  = fleet.EventResultDup
	EventResultFail = fleet.EventResultFail
	EventLocal      = fleet.EventLocal
	EventDrain      = fleet.EventDrain
	// EventRedial marks a worker's reconnect attempt to the coordinator
	// (emitted worker-side, shipped with the next span batch), so fleet
	// timelines show connectivity gaps.
	EventRedial = fleet.EventRedial
	// EventSpanDrop records worker span events lost to buffer pressure.
	EventSpanDrop = fleet.EventSpanDrop
)

// Obs feeds the fabric's lifecycle into the observability plane: the
// clustersim_fabric_* series in the metrics registry and fabric-*
// events in the run-event log. Either sink may be nil; a nil *Obs
// disables the whole plane, so fabric code calls hooks unconditionally.
type Obs struct {
	log *obs.Log

	gWorkers      *obs.Gauge
	cAssignFresh  *obs.Counter
	cAssignRetry  *obs.Counter
	cAssignSteal  *obs.Counter
	cResultOK     *obs.Counter
	cResultFailed *obs.Counter
	cResultDup    *obs.Counter
	cResumes      *obs.Counter
	cDeaths       *obs.Counter
	cHeartbeats   *obs.Counter
	cRequeues     *obs.Counter
	cLocal        *obs.Counter
	cSpans        *obs.Counter
}

// NewObs registers the fabric series on reg and routes events to log
// (either may be nil).
func NewObs(reg *obs.Registry, log *obs.Log) *Obs {
	o := &Obs{log: log}
	if reg != nil {
		o.gWorkers = reg.Gauge("clustersim_fabric_workers", "Live connected workers.")
		o.cAssignFresh = reg.Counter("clustersim_fabric_assigns_total", "Leases handed out, by kind.", obs.L("kind", "fresh"))
		o.cAssignRetry = reg.Counter("clustersim_fabric_assigns_total", "Leases handed out, by kind.", obs.L("kind", "reassign"))
		o.cAssignSteal = reg.Counter("clustersim_fabric_assigns_total", "Leases handed out, by kind.", obs.L("kind", "steal"))
		o.cResultOK = reg.Counter("clustersim_fabric_results_total", "Point completions received, by outcome.", obs.L("outcome", "ok"))
		o.cResultFailed = reg.Counter("clustersim_fabric_results_total", "Point completions received, by outcome.", obs.L("outcome", "failed"))
		o.cResultDup = reg.Counter("clustersim_fabric_results_total", "Point completions received, by outcome.", obs.L("outcome", "duplicate"))
		o.cResumes = reg.Counter("clustersim_fabric_worker_resumes_total", "Results replayed from a restarted worker's local journal.")
		o.cDeaths = reg.Counter("clustersim_fabric_worker_deaths_total", "Workers declared dead (connection loss or missed heartbeats).")
		o.cHeartbeats = reg.Counter("clustersim_fabric_heartbeats_total", "Worker heartbeats received.")
		o.cRequeues = reg.Counter("clustersim_fabric_requeues_total", "Leases returned to the pending queue for re-assignment.")
		o.cLocal = reg.Counter("clustersim_fabric_local_points_total", "Points the coordinator ran locally (degraded mode).")
		o.cSpans = reg.Counter("clustersim_fabric_worker_spans_total", "Worker span events merged into the fleet timeline.")
	}
	return o
}

func inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

func (o *Obs) emit(e obs.Event) {
	if o == nil {
		return
	}
	o.log.Emit(e) // nil-safe
}

// WorkerJoined records a Hello.
func (o *Obs) WorkerJoined(worker string) {
	if o == nil {
		return
	}
	if o.gWorkers != nil {
		o.gWorkers.Add(1)
	}
	o.emit(obs.Event{Kind: EventWorkerJoin, Worker: worker})
}

// WorkerDead records a worker declared dead, with its in-flight leases.
func (o *Obs) WorkerDead(worker, reason string, leases int) {
	if o == nil {
		return
	}
	if o.gWorkers != nil {
		o.gWorkers.Add(-1)
	}
	inc(o.cDeaths)
	o.emit(obs.Event{Kind: EventWorkerDead, Worker: worker,
		Detail: fmt.Sprintf("%s; %d leases requeued", reason, leases)})
}

// Heartbeat counts one liveness beacon.
func (o *Obs) Heartbeat(worker string) {
	if o == nil {
		return
	}
	inc(o.cHeartbeats)
}

// Assigned records a lease: kind is "fresh" (first attempt),
// "reassign" (after a requeue) or "steal" (speculative duplicate).
func (o *Obs) Assigned(worker, point, trace, kind string, attempt int) {
	if o == nil {
		return
	}
	switch kind {
	case "reassign":
		inc(o.cAssignRetry)
	case "steal":
		inc(o.cAssignSteal)
	default:
		inc(o.cAssignFresh)
	}
	detail := kind
	if kind == "reassign" {
		detail = fmt.Sprintf("reassign attempt=%d", attempt)
	}
	o.emit(obs.Event{Kind: EventAssign, Worker: worker, Point: point, Trace: trace, Detail: detail})
}

// Requeued records a lease returned to the pending queue.
func (o *Obs) Requeued(point, trace, reason string, attempt int) {
	if o == nil {
		return
	}
	inc(o.cRequeues)
	o.emit(obs.Event{Kind: EventRequeue, Point: point, Trace: trace,
		Detail: fmt.Sprintf("%s; attempt=%d", reason, attempt)})
}

// ResultOK records the first completion of a point. wall is the
// worker-measured cost of a fresh computation (zero for resumes),
// carried as DurNS so the fleet ETA can learn point costs across
// processes.
func (o *Obs) ResultOK(worker, point, trace string, resumed bool, wall time.Duration) {
	if o == nil {
		return
	}
	inc(o.cResultOK)
	detail := "computed"
	if resumed {
		inc(o.cResumes)
		detail = "resumed-from-journal"
	}
	o.emit(obs.Event{Kind: EventResult, Worker: worker, Point: point, Trace: trace,
		DurNS: int64(wall), Detail: detail})
}

// ResultDuplicate records a late or stolen double-completion that was
// verified byte-identical and dropped.
func (o *Obs) ResultDuplicate(worker, point, trace string) {
	if o == nil {
		return
	}
	inc(o.cResultDup)
	o.emit(obs.Event{Kind: EventResultDup, Worker: worker, Point: point, Trace: trace,
		Detail: "byte-identical duplicate dropped (last write wins)"})
}

// ResultFailed records a point that failed on a worker.
func (o *Obs) ResultFailed(worker, point, trace, errMsg string) {
	if o == nil {
		return
	}
	inc(o.cResultFailed)
	o.emit(obs.Event{Kind: EventResultFail, Worker: worker, Point: point, Trace: trace, Error: errMsg})
}

// LocalRun records a point executed by the coordinator itself.
func (o *Obs) LocalRun(point, trace string) {
	if o == nil {
		return
	}
	inc(o.cLocal)
	o.emit(obs.Event{Kind: EventLocal, Point: point, Trace: trace,
		Detail: "no live workers; degraded to local execution"})
}

// WorkerSpans merges a batch of worker-shipped span events into the
// coordinator's log. Each span keeps its origin wall timestamp, run
// label, trace and worker identity, but is re-stamped with the
// coordinator's next sequence number: arrival order at the coordinator
// is the fleet's total causal order (see DESIGN.md).
func (o *Obs) WorkerSpans(worker string, spans []obs.Event) {
	if o == nil || len(spans) == 0 {
		return
	}
	if o.cSpans != nil {
		o.cSpans.Add(float64(len(spans)))
	}
	for _, e := range spans {
		if e.Worker == "" {
			e.Worker = worker
		}
		o.emit(e)
	}
}

// Drained records the end-of-sweep goodbye to the fleet.
func (o *Obs) Drained(workers int) {
	if o == nil {
		return
	}
	o.emit(obs.Event{Kind: EventDrain, Detail: fmt.Sprintf("sweep complete; drained %d workers", workers)})
}
