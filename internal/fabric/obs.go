package fabric

import (
	"fmt"

	"clustersim/internal/obs"
)

// Fabric event kinds, appended to the sweep's clustersim/events/v1
// stream (the Worker field carries the worker identity). Every recovery
// path emits an event, so "the fabric recovered from X" is a checkable
// statement over the log, not an inference.
const (
	EventWorkerJoin = "fabric-worker-join"
	EventWorkerDead = "fabric-worker-dead"
	EventAssign     = "fabric-assign" // Detail: fresh | reassign attempt=N | steal
	EventRequeue    = "fabric-requeue"
	EventResult     = "fabric-result" // Detail: computed | resumed-from-journal
	EventResultDup  = "fabric-result-dup"
	EventResultFail = "fabric-result-fail"
	EventLocal      = "fabric-local"
	EventDrain      = "fabric-drain"
)

// Obs feeds the fabric's lifecycle into the observability plane: the
// clustersim_fabric_* series in the metrics registry and fabric-*
// events in the run-event log. Either sink may be nil; a nil *Obs
// disables the whole plane, so fabric code calls hooks unconditionally.
type Obs struct {
	log *obs.Log

	gWorkers      *obs.Gauge
	cAssignFresh  *obs.Counter
	cAssignRetry  *obs.Counter
	cAssignSteal  *obs.Counter
	cResultOK     *obs.Counter
	cResultFailed *obs.Counter
	cResultDup    *obs.Counter
	cResumes      *obs.Counter
	cDeaths       *obs.Counter
	cHeartbeats   *obs.Counter
	cRequeues     *obs.Counter
	cLocal        *obs.Counter
}

// NewObs registers the fabric series on reg and routes events to log
// (either may be nil).
func NewObs(reg *obs.Registry, log *obs.Log) *Obs {
	o := &Obs{log: log}
	if reg != nil {
		o.gWorkers = reg.Gauge("clustersim_fabric_workers", "Live connected workers.")
		o.cAssignFresh = reg.Counter("clustersim_fabric_assigns_total", "Leases handed out, by kind.", obs.L("kind", "fresh"))
		o.cAssignRetry = reg.Counter("clustersim_fabric_assigns_total", "Leases handed out, by kind.", obs.L("kind", "reassign"))
		o.cAssignSteal = reg.Counter("clustersim_fabric_assigns_total", "Leases handed out, by kind.", obs.L("kind", "steal"))
		o.cResultOK = reg.Counter("clustersim_fabric_results_total", "Point completions received, by outcome.", obs.L("outcome", "ok"))
		o.cResultFailed = reg.Counter("clustersim_fabric_results_total", "Point completions received, by outcome.", obs.L("outcome", "failed"))
		o.cResultDup = reg.Counter("clustersim_fabric_results_total", "Point completions received, by outcome.", obs.L("outcome", "duplicate"))
		o.cResumes = reg.Counter("clustersim_fabric_worker_resumes_total", "Results replayed from a restarted worker's local journal.")
		o.cDeaths = reg.Counter("clustersim_fabric_worker_deaths_total", "Workers declared dead (connection loss or missed heartbeats).")
		o.cHeartbeats = reg.Counter("clustersim_fabric_heartbeats_total", "Worker heartbeats received.")
		o.cRequeues = reg.Counter("clustersim_fabric_requeues_total", "Leases returned to the pending queue for re-assignment.")
		o.cLocal = reg.Counter("clustersim_fabric_local_points_total", "Points the coordinator ran locally (degraded mode).")
	}
	return o
}

func inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

func (o *Obs) emit(e obs.Event) {
	if o == nil {
		return
	}
	o.log.Emit(e) // nil-safe
}

// WorkerJoined records a Hello.
func (o *Obs) WorkerJoined(worker string) {
	if o == nil {
		return
	}
	if o.gWorkers != nil {
		o.gWorkers.Add(1)
	}
	o.emit(obs.Event{Kind: EventWorkerJoin, Worker: worker})
}

// WorkerDead records a worker declared dead, with its in-flight leases.
func (o *Obs) WorkerDead(worker, reason string, leases int) {
	if o == nil {
		return
	}
	if o.gWorkers != nil {
		o.gWorkers.Add(-1)
	}
	inc(o.cDeaths)
	o.emit(obs.Event{Kind: EventWorkerDead, Worker: worker,
		Detail: fmt.Sprintf("%s; %d leases requeued", reason, leases)})
}

// Heartbeat counts one liveness beacon.
func (o *Obs) Heartbeat(worker string) {
	if o == nil {
		return
	}
	inc(o.cHeartbeats)
}

// Assigned records a lease: kind is "fresh" (first attempt),
// "reassign" (after a requeue) or "steal" (speculative duplicate).
func (o *Obs) Assigned(worker, point, kind string, attempt int) {
	if o == nil {
		return
	}
	switch kind {
	case "reassign":
		inc(o.cAssignRetry)
	case "steal":
		inc(o.cAssignSteal)
	default:
		inc(o.cAssignFresh)
	}
	detail := kind
	if kind == "reassign" {
		detail = fmt.Sprintf("reassign attempt=%d", attempt)
	}
	o.emit(obs.Event{Kind: EventAssign, Worker: worker, Point: point, Detail: detail})
}

// Requeued records a lease returned to the pending queue.
func (o *Obs) Requeued(point, reason string, attempt int) {
	if o == nil {
		return
	}
	inc(o.cRequeues)
	o.emit(obs.Event{Kind: EventRequeue, Point: point,
		Detail: fmt.Sprintf("%s; attempt=%d", reason, attempt)})
}

// ResultOK records the first completion of a point.
func (o *Obs) ResultOK(worker, point string, resumed bool) {
	if o == nil {
		return
	}
	inc(o.cResultOK)
	detail := "computed"
	if resumed {
		inc(o.cResumes)
		detail = "resumed-from-journal"
	}
	o.emit(obs.Event{Kind: EventResult, Worker: worker, Point: point, Detail: detail})
}

// ResultDuplicate records a late or stolen double-completion that was
// verified byte-identical and dropped.
func (o *Obs) ResultDuplicate(worker, point string) {
	if o == nil {
		return
	}
	inc(o.cResultDup)
	o.emit(obs.Event{Kind: EventResultDup, Worker: worker, Point: point,
		Detail: "byte-identical duplicate dropped (last write wins)"})
}

// ResultFailed records a point that failed on a worker.
func (o *Obs) ResultFailed(worker, point, errMsg string) {
	if o == nil {
		return
	}
	inc(o.cResultFailed)
	o.emit(obs.Event{Kind: EventResultFail, Worker: worker, Point: point, Error: errMsg})
}

// LocalRun records a point executed by the coordinator itself.
func (o *Obs) LocalRun(point string) {
	if o == nil {
		return
	}
	inc(o.cLocal)
	o.emit(obs.Event{Kind: EventLocal, Point: point, Detail: "no live workers; degraded to local execution"})
}

// Drained records the end-of-sweep goodbye to the fleet.
func (o *Obs) Drained(workers int) {
	if o == nil {
		return
	}
	o.emit(obs.Event{Kind: EventDrain, Detail: fmt.Sprintf("sweep complete; drained %d workers", workers)})
}
