package fabric

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// WorkerConfig configures one fleet member.
type WorkerConfig struct {
	// ID is the worker's stable identity. A restarted worker that
	// reuses its ID supersedes its previous connection and — with a
	// journal-backed Runner — resumes instead of recomputing.
	ID string

	// Heartbeat is the liveness beacon period. Default 500ms. It must
	// be comfortably under the coordinator's DeadAfter.
	Heartbeat time.Duration

	// Run executes one assigned point: the experiments glue wraps
	// journal replay, panic isolation and the watchdog here.
	Run Runner

	// Progress receives operator-facing lines (nil = silent).
	Progress io.Writer
}

func (c WorkerConfig) heartbeat() time.Duration {
	if c.Heartbeat <= 0 {
		return 500 * time.Millisecond
	}
	return c.Heartbeat
}

// Worker is one fleet member: it says hello, asks for work (Steal),
// computes assignments one at a time, heartbeats throughout, and
// leaves on Drain.
type Worker struct {
	cfg WorkerConfig
	// computing is set while a point runs; the heartbeat loop piggybacks
	// a Steal re-request whenever the worker is idle, so a lost Steal or
	// Assign frame cannot strand an idle worker (the request is
	// idempotent on the coordinator side).
	computing atomic.Bool
}

// NewWorker builds a worker; RunConn makes it live.
func NewWorker(cfg WorkerConfig) *Worker {
	return &Worker{cfg: cfg}
}

func (w *Worker) progressf(format string, args ...interface{}) {
	if w.cfg.Progress != nil {
		fmt.Fprintf(w.cfg.Progress, "worker %s: "+format+"\n", append([]interface{}{w.cfg.ID}, args...)...)
	}
}

// RunConn serves one connection to the coordinator until Drain (nil)
// or a transport error (the caller decides whether to redial). Points
// run on a separate goroutine so heartbeats and a mid-point Drain are
// handled while the simulation computes; assignments are still
// sequential — the worker never runs two points at once.
func (w *Worker) RunConn(conn Conn) error {
	if w.cfg.ID == "" {
		return fmt.Errorf("fabric: worker needs a non-empty ID")
	}
	if w.cfg.Run == nil {
		return fmt.Errorf("fabric: worker %s has no Runner", w.cfg.ID)
	}
	if err := conn.Send(Msg{Type: MsgHello, Worker: w.cfg.ID}); err != nil {
		return fmt.Errorf("fabric: hello: %w", err)
	}
	if err := conn.Send(Msg{Type: MsgSteal, Worker: w.cfg.ID}); err != nil {
		return fmt.Errorf("fabric: initial work request: %w", err)
	}
	w.progressf("connected to %s", conn.RemoteName())

	// Heartbeat beacon. Harness-level liveness timing only.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { //simlint:allow goroutine
		defer wg.Done()
		t := time.NewTicker(w.cfg.heartbeat()) //simlint:allow wallclock
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				conn.Send(Msg{Type: MsgHeartbeat, Worker: w.cfg.ID})
				if !w.computing.Load() {
					// Idle re-request: recovers from a dropped Steal or
					// Assign frame.
					conn.Send(Msg{Type: MsgSteal, Worker: w.cfg.ID})
				}
			}
		}
	}()
	defer func() {
		close(stop)
		wg.Wait()
		conn.Close()
	}()

	// busy serialises point execution: one outstanding assignment at a
	// time, results posted back from the compute goroutine.
	var busy sync.WaitGroup
	defer busy.Wait()
	for {
		m, err := conn.Recv()
		if err != nil {
			if err == io.EOF {
				return fmt.Errorf("fabric: coordinator closed the connection")
			}
			return err
		}
		switch m.Type {
		case MsgAssign:
			if m.Point == nil {
				continue
			}
			busy.Wait() // previous point (if any) finished and reported
			busy.Add(1)
			w.computing.Store(true)
			lease, spec := m.Lease, *m.Point
			// Compute off the read loop so Drain and heartbeats stay
			// responsive during a long point.
			go func() { //simlint:allow goroutine
				defer busy.Done()
				w.runPoint(conn, lease, spec)
			}()
		case MsgDrain:
			w.progressf("drained: %s", m.Detail)
			return nil
		default:
			// Tolerate unknown types (forward compatibility).
		}
	}
}

// runPoint executes one assignment and reports the outcome, then asks
// for more work.
func (w *Worker) runPoint(conn Conn, lease uint64, spec PointSpec) {
	w.progressf("running %s (lease %d)", spec.Name(), lease)
	res, resumed, err := w.cfg.Run(spec)
	out := Msg{Type: MsgResult, Worker: w.cfg.ID, Lease: lease, Resumed: resumed}
	if err != nil {
		out.Error = err.Error()
		w.progressf("point %s failed: %v", spec.Name(), err)
	} else {
		out.Result = res
		if resumed {
			w.progressf("point %s resumed from journal", spec.Name())
		} else {
			w.progressf("point %s done", spec.Name())
		}
	}
	conn.Send(out)
	w.computing.Store(false)
	conn.Send(Msg{Type: MsgSteal, Worker: w.cfg.ID})
}
