package fabric

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"clustersim/internal/obs"
)

// spansPerFrame caps how many buffered span events piggyback on one
// outgoing Result/Heartbeat frame, keeping frames bounded; the rest
// ride the next frame.
const spansPerFrame = 256

// WorkerConfig configures one fleet member.
type WorkerConfig struct {
	// ID is the worker's stable identity. A restarted worker that
	// reuses its ID supersedes its previous connection and — with a
	// journal-backed Runner — resumes instead of recomputing.
	ID string

	// Heartbeat is the liveness beacon period. Default 500ms. It must
	// be comfortably under the coordinator's DeadAfter.
	Heartbeat time.Duration

	// Run executes one assigned point: the experiments glue wraps
	// journal replay, panic isolation and the watchdog here.
	Run Runner

	// Progress receives operator-facing lines (nil = silent).
	Progress io.Writer

	// ObsAddr, when non-empty, is the worker's obs server base URL
	// advertised on Hello so the coordinator federates its /metrics.
	ObsAddr string

	// Spans, when non-nil, drains up to max buffered point-local span
	// events (a fleet.SpanBuffer's Drain, typically) for piggyback
	// shipment on Result and Heartbeat frames.
	Spans func(max int) []obs.Event
}

func (c WorkerConfig) heartbeat() time.Duration {
	if c.Heartbeat <= 0 {
		return 500 * time.Millisecond
	}
	return c.Heartbeat
}

// Worker is one fleet member: it says hello, asks for work (Steal),
// computes assignments one at a time, heartbeats throughout, and
// leaves on Drain.
type Worker struct {
	cfg WorkerConfig
	// computing is set while a point runs; the heartbeat loop piggybacks
	// a Steal re-request whenever the worker is idle, so a lost Steal or
	// Assign frame cannot strand an idle worker (the request is
	// idempotent on the coordinator side).
	computing atomic.Bool

	// traces maps assigned point names to the coordinator-provided
	// trace ID, so locally emitted span events can be stamped before
	// shipping. Entries persist for the connection's lifetime — a late
	// span (e.g. a watchdog firing after reassignment) still attaches
	// to the right timeline.
	mu     sync.Mutex
	traces map[string]string
}

// NewWorker builds a worker; RunConn makes it live.
func NewWorker(cfg WorkerConfig) *Worker {
	return &Worker{cfg: cfg, traces: make(map[string]string)}
}

func (w *Worker) progressf(format string, args ...interface{}) {
	if w.cfg.Progress != nil {
		fmt.Fprintf(w.cfg.Progress, "worker %s: "+format+"\n", append([]interface{}{w.cfg.ID}, args...)...)
	}
}

// rememberTrace records a point's trace ID from its Assign.
func (w *Worker) rememberTrace(point, trace string) {
	if trace == "" {
		return
	}
	w.mu.Lock()
	w.traces[point] = trace
	w.mu.Unlock()
}

// drainSpans pulls buffered span events and stamps each with this
// worker's identity and (when the point was assigned here) its trace
// ID, ready for piggyback shipment.
func (w *Worker) drainSpans() []obs.Event {
	if w.cfg.Spans == nil {
		return nil
	}
	spans := w.cfg.Spans(spansPerFrame)
	if len(spans) == 0 {
		return nil
	}
	w.mu.Lock()
	for i := range spans {
		if spans[i].Worker == "" {
			spans[i].Worker = w.cfg.ID
		}
		if spans[i].Trace == "" && spans[i].Point != "" {
			spans[i].Trace = w.traces[spans[i].Point]
		}
	}
	w.mu.Unlock()
	return spans
}

// RunConn serves one connection to the coordinator until Drain (nil)
// or a transport error (the caller decides whether to redial). Points
// run on a separate goroutine so heartbeats and a mid-point Drain are
// handled while the simulation computes; assignments are still
// sequential — the worker never runs two points at once.
func (w *Worker) RunConn(conn Conn) error {
	if w.cfg.ID == "" {
		return fmt.Errorf("fabric: worker needs a non-empty ID")
	}
	if w.cfg.Run == nil {
		return fmt.Errorf("fabric: worker %s has no Runner", w.cfg.ID)
	}
	if err := conn.Send(Msg{Type: MsgHello, Worker: w.cfg.ID, ObsAddr: w.cfg.ObsAddr}); err != nil {
		return fmt.Errorf("fabric: hello: %w", err)
	}
	if err := conn.Send(Msg{Type: MsgSteal, Worker: w.cfg.ID}); err != nil {
		return fmt.Errorf("fabric: initial work request: %w", err)
	}
	w.progressf("connected to %s", conn.RemoteName())

	// Heartbeat beacon. Harness-level liveness timing only.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { //simlint:allow goroutine
		defer wg.Done()
		t := time.NewTicker(w.cfg.heartbeat()) //simlint:allow wallclock
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				conn.Send(Msg{Type: MsgHeartbeat, Worker: w.cfg.ID, Spans: w.drainSpans()})
				if !w.computing.Load() {
					// Idle re-request: recovers from a dropped Steal or
					// Assign frame.
					conn.Send(Msg{Type: MsgSteal, Worker: w.cfg.ID})
				}
			}
		}
	}()
	defer func() {
		close(stop)
		wg.Wait()
		conn.Close()
	}()

	// busy serialises point execution: one outstanding assignment at a
	// time, results posted back from the compute goroutine.
	var busy sync.WaitGroup
	defer busy.Wait()
	for {
		m, err := conn.Recv()
		if err != nil {
			if err == io.EOF {
				return fmt.Errorf("fabric: coordinator closed the connection")
			}
			return err
		}
		switch m.Type {
		case MsgAssign:
			if m.Point == nil {
				continue
			}
			w.rememberTrace(m.Point.Name(), m.Trace)
			busy.Wait() // previous point (if any) finished and reported
			busy.Add(1)
			w.computing.Store(true)
			lease, spec := m.Lease, *m.Point
			// Compute off the read loop so Drain and heartbeats stay
			// responsive during a long point.
			go func() { //simlint:allow goroutine
				defer busy.Done()
				w.runPoint(conn, lease, spec)
			}()
		case MsgDrain:
			w.progressf("drained: %s", m.Detail)
			return nil
		default:
			// Tolerate unknown types (forward compatibility).
		}
	}
}

// runPoint executes one assignment and reports the outcome, then asks
// for more work.
func (w *Worker) runPoint(conn Conn, lease uint64, spec PointSpec) {
	w.progressf("running %s (lease %d)", spec.Name(), lease)
	// Harness wall clock: point cost measurement for the fleet ETA.
	started := time.Now() //simlint:allow wallclock
	res, resumed, err := w.cfg.Run(spec)
	out := Msg{Type: MsgResult, Worker: w.cfg.ID, Lease: lease, Resumed: resumed}
	if err != nil {
		out.Error = err.Error()
		w.progressf("point %s failed: %v", spec.Name(), err)
	} else {
		out.Result = res
		if resumed {
			w.progressf("point %s resumed from journal", spec.Name())
		} else {
			out.WallNS = int64(time.Since(started)) //simlint:allow wallclock
			w.progressf("point %s done", spec.Name())
		}
	}
	out.Spans = w.drainSpans()
	conn.Send(out)
	w.computing.Store(false)
	conn.Send(Msg{Type: MsgSteal, Worker: w.cfg.ID})
}
