// Package harness exercises the unused-allow audit: directives that
// suppress nothing are themselves findings.
package harness

// Calm is clean, so the directive in its doc comment is stale.
//
//simlint:allow wallclock // want:unusedallow
func Calm() int {
	total := 0
	for i := 0; i < 3; i++ {
		total += i //simlint:allow maprange // want:unusedallow
	}
	return total
}

// Mixed carries one live and one stale rule on a single directive:
// only the stale one is reported.
func Mixed() {
	ch := make(chan struct{})
	go func() { close(ch) }() //simlint:allow goroutine maprange // want:unusedallow
	<-ch
}
