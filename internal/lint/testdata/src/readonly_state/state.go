// Package stats is a fixture standing in for clustersim/internal/stats:
// a state type with direct and transitive mutators plus accessors — the
// inputs to the readonly rule's mutating-method fixed point.
package stats

// Breakdown mirrors the shape of the real execution-time breakdown.
type Breakdown struct {
	CPU      int64
	SyncWait int64
}

// Reset writes through the receiver: mutating.
func (b *Breakdown) Reset() {
	b.CPU = 0
	b.SyncWait = 0
}

// Clear mutates only by calling Reset: the fixed point must mark it.
func (b *Breakdown) Clear() { b.Reset() }

// Total reads through a pointer receiver without writing: an accessor,
// callable from observers.
func (b *Breakdown) Total() int64 { return b.CPU + b.SyncWait }

// Plus is a value-receiver combinator: it can only mutate its own copy.
func (b Breakdown) Plus(o Breakdown) Breakdown {
	b.CPU += o.CPU
	b.SyncWait += o.SyncWait
	return b
}

// Table is a map-carrying state type for the delete/clear checks.
type Table struct {
	ByName map[string]int64
}

// Drop mutates via the delete builtin.
func (t *Table) Drop(name string) { delete(t.ByName, name) }

// Lookup is an accessor over the same map.
func (t *Table) Lookup(name string) int64 { return t.ByName[name] }
