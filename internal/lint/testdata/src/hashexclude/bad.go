// Package core is a fixture Config violating the hash-exclusion
// contract in every way the rule distinguishes.
package core

import "clustersim/internal/telemetry"

// Config's hash contract is audited against HashExcludedFields.
type Config struct {
	Procs int

	// Observer-typed attachment without json:"-": attaching a collector
	// would change the config hash.
	Telemetry *telemetry.Collector // want:hashexclude

	// Hash-excluded but not declared in the exclusion set.
	Profile *telemetry.Collector `json:"-"` // want:hashexclude

	// Attachment point (func) with no tag at all.
	OnEvent func() // want:hashexclude

	// Declared excluded below but still marshalled into the hash.
	Label string // want:hashexclude

	// Deliberate opt-in: a pointer with omitempty is the sanctioned way
	// to let an optional block feed the hash (the fault-plan pattern).
	Faults *FaultPlan `json:",omitempty"`
}

// FaultPlan is hashed when attached.
type FaultPlan struct{ Seed int64 }

// HashExcludedFields misses Profile, wrongly lists Label, and carries
// one entry naming no field at all.
var HashExcludedFields = []string{"Label", "Ghost"} // want:hashexclude
