// Package core is the clean counter-fixture for hashexclude: every
// excluded field is declared, every attachment point is either excluded
// or an explicit omitempty opt-in.
package core

import "clustersim/internal/telemetry"

// Config holds the hash-exclusion contract.
type Config struct {
	Procs       int
	ClusterSize int
	Telemetry   *telemetry.Collector `json:"-"`
	Sanitize    bool                 `json:"-"`
	Tracer      interface{ Trace() } `json:"-"`
	Faults      *FaultPlan           `json:",omitempty"`
}

// FaultPlan is hashed when attached.
type FaultPlan struct{ Seed int64 }

// HashExcludedFields is the declared exclusion set the rule audits.
var HashExcludedFields = []string{"Telemetry", "Sanitize", "Tracer"}
