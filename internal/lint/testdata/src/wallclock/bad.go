// Package wallclockfix is the wallclock-rule fixture: host-clock reads
// with no directive.
package wallclockfix

import "time"

// Stamp feeds wall-clock values into (what stands in for) simulated
// state.
func Stamp() int64 {
	t := time.Now()    // want:wallclock
	d := time.Since(t) // want:wallclock
	time.Sleep(d)      // want:wallclock
	return t.UnixNano() + int64(d)
}
