package wallclockfix

import "time"

// Wall times a host-side progress report; each clock read carries a
// directive on its own line or the line above.
func Wall() time.Duration {
	start := time.Now() //simlint:allow wallclock
	//simlint:allow wallclock
	elapsed := time.Since(start)
	const tick = 10 * time.Millisecond // Duration arithmetic alone is fine.
	return elapsed + tick
}

// Report is sanctioned wholesale by the directive in its doc comment.
//
//simlint:allow wallclock
func Report() (time.Time, *time.Timer) {
	return time.Now(), time.NewTimer(time.Second)
}
