package syncfix

import "fmt"

// Good shows every sanctioned naming pattern: distinct constant names,
// dynamic per-index names, the same name on distinct receivers, and the
// same name in a different function (which typically means a different
// machine).
func Good(n int) {
	m := &Machine{}
	m.NewLock("errsum")
	m.NewBarrierN("main", n)
	m.NewFlag("ready")
	for p := 0; p < n; p++ {
		m.NewLock(fmt.Sprintf("q%d", p))
	}
	sub := func(mm *Machine) {
		mm.NewLock("errsum")
	}
	sub(&Machine{})
	m2 := &Machine{}
	m2.NewLock("errsum")
	m.NewFlag("") //simlint:allow syncname — directive placement check
}

// NotAMachine proves the rule keys on the receiver type when it
// resolves: unrelated constructors with the same names pass.
type registry struct{}

func (r *registry) NewLock(name string) *Lock { return &Lock{} }

func Unrelated(r *registry) {
	r.NewLock("")
	r.NewLock("x")
	r.NewLock("x")
}
