// Package syncfix exercises the syncname rule on a local stand-in for
// core.Machine: the rule matches the constructor names and, when type
// information resolves the receiver, requires it to be a Machine.
package syncfix

// Barrier, Lock and Flag mirror the core synchronisation objects.
type Barrier struct{}
type Lock struct{}
type Flag struct{}

// Machine mirrors the constructor surface of core.Machine.
type Machine struct{ n int }

func (m *Machine) NewBarrierN(name string, n int) *Barrier { m.n++; return &Barrier{} }
func (m *Machine) NewLock(name string) *Lock               { m.n++; return &Lock{} }
func (m *Machine) NewFlag(name string) *Flag               { m.n++; return &Flag{} }

const anon = ""

// Bad passes empty and duplicate names; core.defineSync would panic on
// the duplicate at run time.
func Bad(m *Machine) {
	m.NewLock("")        // want:syncname
	m.NewBarrierN("", 4) // want:syncname
	m.NewFlag(anon)      // want:syncname
	m.NewLock("workq")
	m.NewLock("workq") // want:syncname
}
