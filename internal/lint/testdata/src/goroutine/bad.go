// Package gofix is the goroutine-rule fixture; the test checks it under
// a non-engine import path, where the spawn is banned.
package gofix

// Spawn forks a worker outside the engine's token discipline.
func Spawn(ch chan int) {
	go func() { ch <- 1 }() // want:goroutine
}
