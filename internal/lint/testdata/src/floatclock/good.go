package clockfix

// Scale applies the analytic dilation once, outside any accumulation.
func Scale(total Clock, dilation float64) Clock {
	return Clock(float64(total) * dilation)
}

// Reset assigns a one-shot converted value, which is allowed: only
// accumulation compounds rounding error.
func Reset(c *counters, estimate float64) {
	c.Busy = Clock(estimate)
}

// Advance accumulates integer cycles only.
func Advance(c *counters, cycles Clock) {
	c.Busy += cycles
	c.Hits++
}
