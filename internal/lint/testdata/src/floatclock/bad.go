// Package clockfix is the floatclock-rule fixture: float values
// accumulating into integer virtual-time storage.
package clockfix

// Clock counts simulated cycles.
type Clock int64

type counters struct {
	Busy Clock
	Hits uint64
}

// Accumulate drips float rounding error into virtual time, once through
// a compound assignment and once through a self-referencing plain one.
func Accumulate(c *counters, dilation float64) {
	c.Busy += Clock(dilation * 100)       // want:floatclock
	c.Hits = c.Hits + uint64(dilation*10) // want:floatclock
}
