// Package core declares a Config without the exclusion set: the hash
// contract cannot be audited, which is itself a violation.
package core

// Config has excluded fields but no HashExcludedFields declaration.
type Config struct { // want:hashexclude
	Procs    int
	Sanitize bool `json:"-"`
}
