package maprangefix

import "sort"

// Rekey writes per-key slots and integer accumulators — both order-
// independent.
func Rekey(m map[string]int) (map[string]int, int, int) {
	out := make(map[string]int, len(m))
	total := 0
	hits := 0
	for k, v := range m {
		out[k] = v * 2
		total += v
		hits++
	}
	return out, total, hits
}

// Sorted collects keys and then sorts them, which the directive
// sanctions.
func Sorted(m map[string]int) []string {
	var names []string
	for k := range m {
		names = append(names, k) //simlint:allow maprange
	}
	sort.Strings(names)
	return names
}
