// Package maprangefix is the maprange-rule fixture: order-dependent
// writes under a map iteration.
package maprangefix

// Collect leaks map iteration order into a slice and last-writer state.
func Collect(m map[string]int) ([]string, string) {
	var names []string
	last := ""
	for k := range m {
		names = append(names, k) // want:maprange
		last = k                 // want:maprange
	}
	return names, last
}

// Mean accumulates floats in iteration order; float addition is not
// associative, so the sums depend on the (randomized) order.
func Mean(m map[string]float64) (float64, float64) {
	var sum float64
	var weight float64
	for _, v := range m {
		sum += v // want:maprange
		weight++ // want:maprange
	}
	return sum, weight
}
