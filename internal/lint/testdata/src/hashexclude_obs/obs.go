// Package telemetry is an observer-package fixture: the hashexclude
// rule must force any Config field of this type to carry json:"-",
// since observers may never change the config hash.
package telemetry

// Collector stands in for the real telemetry collector.
type Collector struct{ events int }
