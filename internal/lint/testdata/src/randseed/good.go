package randfix

import "math/rand"

type pe struct{ id int }

// ID returns the processor index, the sanctioned seed ingredient.
func (p pe) ID() int { return p.id }

// Streams builds one constant-seeded and one processor-keyed stream;
// draws on explicit streams are fine.
func Streams(p pe) (int, int) {
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(int64(17 + p.ID())))
	return a.Intn(4), b.Intn(4)
}
