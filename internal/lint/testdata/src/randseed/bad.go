// Package randfix is the rand-rule fixture: a runtime-valued seed and a
// draw from the globally (randomly) seeded source.
package randfix

import "math/rand"

// Draw seeds from a runtime value and draws from the global source.
func Draw(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // want:rand
	return r.Intn(8) + rand.Intn(8)     // want:rand
}
