// Package enginefix is the goroutine-rule counter-fixture; the test
// checks it under clustersim/internal/engine, the one package allowed
// to spawn goroutines.
package enginefix

// Spawn forks a processor goroutine, which only the engine may do.
func Spawn(ch chan int) {
	go func() { ch <- 1 }()
}
