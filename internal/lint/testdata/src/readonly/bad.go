// Package perf is an observer fixture: every statement below reaches
// simulation state through a pointer and must be flagged.
package perf

import "clustersim/internal/stats"

// Monitor stands in for an observer attached to a machine.
type Monitor struct {
	snap stats.Breakdown
}

// Tamper mutates the simulation's breakdown record in five ways.
func (m *Monitor) Tamper(b *stats.Breakdown, t *stats.Table) {
	b.CPU = 7              // want:readonly
	b.SyncWait++           // want:readonly
	b.Reset()              // want:readonly
	b.Clear()              // want:readonly
	*b = stats.Breakdown{} // want:readonly
	t.Drop("mp3d")         // want:readonly
}
