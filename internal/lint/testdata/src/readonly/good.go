package perf

import "clustersim/internal/stats"

// Recorder shows the sanctioned observer patterns: copy state out,
// mutate only observer-owned storage, call accessors freely.
type Recorder struct {
	perPE []stats.Breakdown
	last  stats.Breakdown
}

// Observe copies and aggregates without ever writing through the
// simulation's pointers.
func (r *Recorder) Observe(b *stats.Breakdown, t *stats.Table) int64 {
	r.last = *b    // copying out is the sanctioned pattern
	r.last.CPU = 1 // a field of the observer's own copy
	local := *b
	local.SyncWait = 2
	r.perPE = append(r.perPE, local)
	r.perPE[0] = local.Plus(*b) // observer-owned slice of state values
	if t.Lookup("mp3d") > 0 {   // pointer-receiver accessor: allowed
		return b.Total()
	}
	return 0
}
