package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Baseline grandfathers known findings: CheckModule output matched by
// a baseline entry is tracked rather than failed, so the rule set can
// grow ahead of the cleanup. Entries match on (rule, file, message) —
// deliberately not line numbers, which drift with every edit above the
// finding. Identical findings in one file are matched as a multiset.
//
// The checked-in baseline is empty (the tree is clean); it exists so a
// future rule that surfaces pre-existing violations can gate new code
// immediately while the backlog is burned down entry by entry.

// BaselineSchema identifies the baseline file format.
const BaselineSchema = "clustersim/simlint-baseline/v1"

// Baseline is the on-disk findings baseline.
type Baseline struct {
	Schema   string          `json:"schema"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry grandfathers findings of one rule with one message in
// one file. Count is how many identical findings are covered (default
// 1).
type BaselineEntry struct {
	Rule  string `json:"rule"`
	File  string `json:"file"` // module-root-relative, slash-separated
	Msg   string `json:"msg"`
	Count int    `json:"count,omitempty"`
}

func (e BaselineEntry) key() string {
	return e.Rule + "\x00" + e.File + "\x00" + e.Msg
}

func (e BaselineEntry) count() int {
	if e.Count <= 0 {
		return 1
	}
	return e.Count
}

// LoadBaseline reads and validates a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	if b.Schema != BaselineSchema {
		return nil, fmt.Errorf("lint: baseline %s: schema %q, want %q", path, b.Schema, BaselineSchema)
	}
	return &b, nil
}

// relTo relativizes a finding's absolute file name against the module
// root, in the slash form baselines and SARIF store.
func relTo(root, filename string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}

// Apply splits findings into the ones the baseline does not cover (new
// violations, which gate) and the grandfathered count, and reports
// baseline entries that matched nothing — stale entries whose findings
// have been fixed and that should be removed from the file.
func (b *Baseline) Apply(findings []Finding, root string) (fresh []Finding, grandfathered int, stale []BaselineEntry) {
	remaining := make(map[string]int)
	for _, e := range b.Findings {
		remaining[e.key()] += e.count()
	}
	for _, f := range findings {
		k := BaselineEntry{Rule: f.Rule, File: relTo(root, f.Pos.Filename), Msg: f.Msg}.key()
		if remaining[k] > 0 {
			remaining[k]--
			grandfathered++
			continue
		}
		fresh = append(fresh, f)
	}
	for _, e := range b.Findings {
		if n := remaining[e.key()]; n > 0 {
			remaining[e.key()] = 0
			se := e
			se.Count = n
			stale = append(stale, se)
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i].key() < stale[j].key() })
	return fresh, grandfathered, stale
}

// NewBaseline builds a baseline that covers exactly the given findings.
func NewBaseline(findings []Finding, root string) *Baseline {
	counts := make(map[BaselineEntry]int)
	for _, f := range findings {
		counts[BaselineEntry{Rule: f.Rule, File: relTo(root, f.Pos.Filename), Msg: f.Msg}]++
	}
	b := &Baseline{Schema: BaselineSchema, Findings: []BaselineEntry{}}
	for e, n := range counts {
		if n > 1 {
			e.Count = n
		}
		b.Findings = append(b.Findings, e) //simlint:allow maprange — fully sorted below
	}
	sort.Slice(b.Findings, func(i, j int) bool { return b.Findings[i].key() < b.Findings[j].key() })
	return b
}

// WriteFile writes the baseline as stable, diff-friendly JSON.
func (b *Baseline) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
