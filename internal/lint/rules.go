package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// fileChecker runs every rule over one file.
type fileChecker struct {
	pkg      *Package
	mod      *module // cross-package facts; nil under single-package Check
	file     *ast.File
	imports  map[string]string // identifier -> import path
	opts     *Options
	findings []Finding
}

func (fc *fileChecker) report(rule string, pos token.Pos, format string, args ...interface{}) {
	if fc.opts.disabled(rule) {
		return
	}
	fc.findings = append(fc.findings, Finding{
		Rule: rule,
		Pos:  fc.pkg.Fset.Position(pos),
		Msg:  fmt.Sprintf(format, args...),
	})
}

func (fc *fileChecker) check() []Finding {
	ast.Inspect(fc.file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fc.checkCall(n)
			fc.checkReadonlyCall(n)
		case *ast.GoStmt:
			fc.checkGo(n)
		case *ast.RangeStmt:
			fc.checkRange(n)
		case *ast.AssignStmt:
			fc.checkFloatClock(n)
			fc.checkReadonlyAssign(n)
		case *ast.IncDecStmt:
			fc.checkReadonlyIncDec(n)
		}
		return true
	})
	fc.checkSyncNames()
	return fc.findings
}

// pkgSelector resolves a call target of the form pkgname.Func to its
// import path and function name. It prefers type information (which
// sees through shadowing) and falls back to the file's import table.
func (fc *fileChecker) pkgSelector(fun ast.Expr) (path, name string, ok bool) {
	sel, isSel := fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	if fc.pkg.Info != nil {
		if obj := fc.pkg.Info.Uses[id]; obj != nil {
			pn, isPkg := obj.(*types.PkgName)
			if !isPkg {
				return "", "", false // shadowed by a local binding
			}
			return pn.Imported().Path(), sel.Sel.Name, true
		}
	}
	if p, found := fc.imports[id.Name]; found {
		return p, sel.Sel.Name, true
	}
	return "", "", false
}

// --- rule: wallclock ---------------------------------------------------

// wallclockFuncs are the time-package functions that read or schedule
// against the host's wall clock. time.Duration arithmetic and constants
// are fine — only the clock sources are banned.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTicker": true, "NewTimer": true,
}

func (fc *fileChecker) checkCall(call *ast.CallExpr) {
	path, name, ok := fc.pkgSelector(call.Fun)
	if !ok {
		return
	}
	if path == "time" && wallclockFuncs[name] {
		fc.report(RuleWallclock, call.Pos(),
			"time.%s reads the wall clock; simulated state must use virtual time (annotate //simlint:allow wallclock if this feeds only host-side reporting)", name)
	}
	if path == "math/rand" || path == "math/rand/v2" {
		fc.checkRand(call, name)
	}
}

// --- rule: rand --------------------------------------------------------

// randSeeded are the math/rand entry points that take an explicit seed;
// each seed argument must be a compile-time constant or derived from a
// processor ID.
var randSeeded = map[string]bool{
	"NewSource": true, "Seed": true, // math/rand
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

// randGlobalOK are the rand-package names that neither seed nor draw
// from the global source (constructors over explicit sources, types).
var randGlobalOK = map[string]bool{
	"New": true, "NewZipf": true,
}

func (fc *fileChecker) checkRand(call *ast.CallExpr, name string) {
	if randSeeded[name] {
		for _, arg := range call.Args {
			if fc.isConst(arg) || containsIDCall(arg) {
				continue
			}
			fc.report(RuleRand, arg.Pos(),
				"rand.%s seed is neither a compile-time constant nor derived from a processor ID; runs will not be reproducible", name)
		}
		return
	}
	if randGlobalOK[name] {
		return
	}
	// Everything else on the package itself (Intn, Float64, Perm,
	// Shuffle, N, ...) draws from the globally, nondeterministically
	// seeded source.
	fc.report(RuleRand, call.Pos(),
		"rand.%s draws from the global source, which is randomly seeded; construct rand.New(rand.NewSource(const)) instead", name)
}

func (fc *fileChecker) isConst(e ast.Expr) bool {
	if fc.pkg.Info == nil {
		return false
	}
	tv, ok := fc.pkg.Info.Types[e]
	return ok && tv.Value != nil
}

// containsIDCall reports whether the expression contains a niladic .ID()
// method call — the sanctioned way to derive per-processor seeds
// (p.ID(), pe.ID()).
func containsIDCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if ok && sel.Sel.Name == "ID" && len(call.Args) == 0 {
			found = true
			return false
		}
		return true
	})
	return found
}

// --- rule: goroutine ---------------------------------------------------

func (fc *fileChecker) checkGo(g *ast.GoStmt) {
	if fc.pkg.Path == "clustersim/internal/engine" {
		return
	}
	fc.report(RuleGoroutine, g.Pos(),
		"go statement outside internal/engine breaks the one-goroutine-at-a-time token discipline")
}

// --- rule: maprange ----------------------------------------------------

// commutativeOps are compound-assignment operators that are order-
// independent over integers (associative and commutative, including
// modular wraparound).
var commutativeOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
	token.AND_ASSIGN: true, token.OR_ASSIGN: true, token.XOR_ASSIGN: true,
}

func (fc *fileChecker) checkRange(r *ast.RangeStmt) {
	if !fc.isMapType(r.X) {
		return
	}
	keyName := ""
	if id, ok := r.Key.(*ast.Ident); ok && id.Name != "_" {
		keyName = id.Name
	}
	ast.Inspect(r.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			fc.checkRangeAssign(r, n, keyName)
		case *ast.IncDecStmt:
			if fc.declaredOutside(rootIdent(n.X), r) && !fc.isIntegerExpr(n.X) {
				fc.report(RuleMapRange, n.Pos(),
					"non-integer update of outer state inside range over map is iteration-order dependent")
			}
		}
		return true
	})
}

func (fc *fileChecker) checkRangeAssign(r *ast.RangeStmt, a *ast.AssignStmt, keyName string) {
	for i, lhs := range a.Lhs {
		root := rootIdent(lhs)
		if root == nil || !fc.declaredOutside(root, r) {
			continue
		}
		// Writes keyed by the range key land in per-key slots and are
		// order-independent (including appends into lru[k]-style slots).
		if keyName != "" && lvalueKeyedBy(lhs, keyName) {
			continue
		}
		// Appends into outer slices depend on map iteration order.
		if i < len(a.Rhs) && isAppendTo(a.Rhs[i]) {
			fc.report(RuleMapRange, a.Pos(),
				"append to %q inside range over map records iteration order; collect and sort, or annotate //simlint:allow maprange after sorting", root.Name)
			continue
		}
		switch {
		case a.Tok == token.ASSIGN || a.Tok == token.DEFINE:
			fc.report(RuleMapRange, a.Pos(),
				"assignment to outer %q inside range over map keeps whichever iteration came last", root.Name)
		case commutativeOps[a.Tok] && fc.isIntegerExpr(lhs):
			// Integer accumulation is commutative: allowed.
		default:
			fc.report(RuleMapRange, a.Pos(),
				"%s on outer %q inside range over map is iteration-order dependent", a.Tok, root.Name)
		}
	}
}

// lvalueKeyedBy reports whether any index along the lvalue chain
// mentions the range key, e.g. out[k], lru[k].tail, grid[k][0].
func lvalueKeyedBy(e ast.Expr, keyName string) bool {
	for {
		switch v := e.(type) {
		case *ast.IndexExpr:
			if mentionsIdent(v.Index, keyName) {
				return true
			}
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return false
		}
	}
}

func isAppendTo(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// rootIdent returns the leftmost identifier of an lvalue chain
// (x, x.f, x[i].g, (*x).f, ...), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether id's declaration lies outside the
// range statement. Unresolvable identifiers are treated as outer state
// (conservative).
func (fc *fileChecker) declaredOutside(id *ast.Ident, r *ast.RangeStmt) bool {
	if id == nil {
		return false
	}
	if fc.pkg.Info == nil {
		return true
	}
	obj := fc.pkg.Info.ObjectOf(id)
	if obj == nil {
		return true
	}
	return obj.Pos() < r.Pos() || obj.Pos() > r.End()
}

func mentionsIdent(e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
			return false
		}
		return true
	})
	return found
}

func (fc *fileChecker) isMapType(e ast.Expr) bool {
	t := fc.typeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func (fc *fileChecker) typeOf(e ast.Expr) types.Type {
	if fc.pkg.Info == nil {
		return nil
	}
	t := fc.pkg.Info.TypeOf(e)
	if t == nil || t == types.Typ[types.Invalid] {
		return nil
	}
	return t
}

func (fc *fileChecker) isIntegerExpr(e ast.Expr) bool {
	return isIntegerType(fc.typeOf(e))
}

func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// --- rule: floatclock --------------------------------------------------

// checkFloatClock flags floating-point values accumulating into integer
// (Clock/counter) storage: `c.Time += Clock(f)` or
// `c.Time = c.Time + int64(f)`. A one-shot conversion (analytic model
// output assigned once) is fine; accumulation compounds rounding error
// and makes virtual time depend on float evaluation order.
func (fc *fileChecker) checkFloatClock(a *ast.AssignStmt) {
	compound := a.Tok == token.ADD_ASSIGN || a.Tok == token.SUB_ASSIGN ||
		a.Tok == token.MUL_ASSIGN || a.Tok == token.QUO_ASSIGN
	for i, lhs := range a.Lhs {
		if i >= len(a.Rhs) && len(a.Rhs) != 1 {
			break
		}
		rhs := a.Rhs[0]
		if len(a.Rhs) == len(a.Lhs) {
			rhs = a.Rhs[i]
		}
		if !fc.isIntegerExpr(lhs) {
			continue
		}
		conv := fc.findFloatToIntConv(rhs)
		if conv == nil {
			continue
		}
		if compound {
			fc.report(RuleFloatClock, conv.Pos(),
				"float value accumulates into integer %s via %s; compute in integer cycles or apply the conversion once outside the loop",
				exprString(lhs), a.Tok)
			continue
		}
		if a.Tok == token.ASSIGN && mentionsExpr(rhs, exprString(lhs)) {
			fc.report(RuleFloatClock, conv.Pos(),
				"self-referencing assignment accumulates a float into integer %s; compute in integer cycles", exprString(lhs))
		}
	}
}

// findFloatToIntConv returns the first conversion of a float-typed
// expression to an integer type inside e, or nil.
func (fc *fileChecker) findFloatToIntConv(e ast.Expr) ast.Expr {
	var conv ast.Expr
	ast.Inspect(e, func(n ast.Node) bool {
		if conv != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 || fc.pkg.Info == nil {
			return true
		}
		tv, ok := fc.pkg.Info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		if isIntegerType(tv.Type) && isFloatType(fc.typeOf(call.Args[0])) {
			conv = call
			return false
		}
		return true
	})
	return conv
}

func exprString(e ast.Expr) string { return types.ExprString(e) }

// mentionsExpr reports whether e contains a sub-expression that renders
// identically to target — the self-reference test of floatclock.
func mentionsExpr(e ast.Expr, target string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		sub, ok := n.(ast.Expr)
		if ok && exprString(sub) == target {
			found = true
			return false
		}
		return true
	})
	return found
}
