package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// fixtureCases maps each testdata corpus directory to the synthetic
// import path it is checked under. goroutine/goroutine_engine share
// their source shape but differ in path — the rule keys off the path.
var fixtureCases = []struct {
	dir  string
	path string
}{
	{"wallclock", "clustersim/internal/core"},
	{"randseed", "clustersim/internal/apps/randfix"},
	{"maprange", "clustersim/internal/coherence"},
	{"goroutine", "clustersim/internal/coherence"},
	{"goroutine_engine", "clustersim/internal/engine"},
	{"floatclock", "clustersim/internal/core"},
}

var wantMarker = regexp.MustCompile(`// want:([a-z]+)`)

// expectedFindings scans a fixture directory for "// want:<rule>"
// markers and returns the expected finding multiset keyed
// "file:line:rule".
func expectedFindings(t *testing.T, dir string) map[string]int {
	t.Helper()
	want := make(map[string]int)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantMarker.FindAllStringSubmatch(line, -1) {
				want[fmt.Sprintf("%s:%d:%s", e.Name(), i+1, m[1])]++
			}
		}
	}
	return want
}

// TestFixtureCorpus proves each rule fires on its known-bad fixture at
// exactly the marked lines and stays silent on the known-good one
// (which also exercises every directive placement).
func TestFixtureCorpus(t *testing.T) {
	fired := make(map[string]bool)
	for _, tc := range fixtureCases {
		t.Run(tc.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.dir)
			pkg, err := (&Loader{}).LoadDir(dir, tc.path)
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[string]int)
			for _, f := range Check(pkg) {
				got[fmt.Sprintf("%s:%d:%s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule)]++
				fired[f.Rule] = true
			}
			want := expectedFindings(t, dir)
			for k, n := range want {
				if got[k] != n {
					t.Errorf("expected %d finding(s) at %s, got %d", n, k, got[k])
				}
			}
			for k, n := range got {
				if want[k] != n {
					t.Errorf("unexpected finding(s) at %s (%d)", k, n)
				}
			}
		})
	}
	for _, r := range Rules {
		if !fired[r] {
			t.Errorf("rule %s never fired across the corpus", r)
		}
	}
}

// TestTreeClean runs the full linter over the module itself, including
// test files: the tree must stay directive-clean (this is the in-test
// twin of `make lint`).
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module against GOROOT source")
	}
	pkgs, err := (&Loader{Tests: true}).Load("../..", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, f := range Check(pkg) {
			t.Errorf("%s", f)
		}
	}
}

func TestDirectiveRules(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//simlint:allow wallclock", []string{"wallclock"}},
		{"//simlint:allow wallclock rand", []string{"wallclock", "rand"}},
		{"//simlint:allow", nil},            // no rules named
		{"// simlint:allow wallclock", nil}, // space breaks the directive
		{"// just a comment", nil},
	}
	for _, tc := range cases {
		if got := directiveRules(tc.text); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("directiveRules(%q) = %v, want %v", tc.text, got, tc.want)
		}
	}
}

func TestIsSimulationPackage(t *testing.T) {
	cases := map[string]bool{
		"clustersim/internal/engine":     true,
		"clustersim/internal/coherence":  true,
		"clustersim/internal/apps/radix": true,
		"clustersim/internal/telemetry":  false,
		"clustersim/cmd/clustersim":      false,
		"clustersim/internal/enginex":    false,
	}
	for path, want := range cases {
		if got := IsSimulationPackage(path); got != want {
			t.Errorf("IsSimulationPackage(%q) = %v, want %v", path, got, want)
		}
	}
}
