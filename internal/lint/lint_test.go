package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// dirSpec binds one testdata corpus directory to the synthetic import
// path it is checked under.
type dirSpec struct {
	dir  string
	path string
}

// fixtureCases lists the corpus: each case's directories are loaded in
// order with one Loader (so later fixtures can import earlier ones —
// how the cross-package contract rules are exercised) and checked
// together with CheckModule. goroutine/goroutine_engine share their
// source shape but differ in path — the rule keys off the path.
var fixtureCases = []struct {
	name string
	dirs []dirSpec
}{
	{"wallclock", []dirSpec{{"wallclock", "clustersim/internal/core"}}},
	{"randseed", []dirSpec{{"randseed", "clustersim/internal/apps/randfix"}}},
	{"maprange", []dirSpec{{"maprange", "clustersim/internal/coherence"}}},
	{"goroutine", []dirSpec{{"goroutine", "clustersim/internal/coherence"}}},
	{"goroutine_engine", []dirSpec{{"goroutine_engine", "clustersim/internal/engine"}}},
	{"floatclock", []dirSpec{{"floatclock", "clustersim/internal/core"}}},
	{"syncname", []dirSpec{{"syncname", "clustersim/internal/apps/syncfix"}}},
	{"hashexclude", []dirSpec{
		{"hashexclude_obs", "clustersim/internal/telemetry"},
		{"hashexclude", "clustersim/internal/core"},
	}},
	{"hashexclude_good", []dirSpec{
		{"hashexclude_obs", "clustersim/internal/telemetry"},
		{"hashexclude_good", "clustersim/internal/core"},
	}},
	{"hashexclude_noset", []dirSpec{{"hashexclude_noset", "clustersim/internal/core"}}},
	{"readonly", []dirSpec{
		{"readonly_state", "clustersim/internal/stats"},
		{"readonly", "clustersim/internal/perf"},
	}},
	{"unusedallow", []dirSpec{{"unusedallow", "clustersim/internal/harness"}}},
}

var wantMarker = regexp.MustCompile(`// want:([a-z]+)`)

// expectedFindings scans fixture directories for "// want:<rule>"
// markers and returns the expected finding multiset keyed
// "file:line:rule".
func expectedFindings(t *testing.T, dirs []dirSpec) map[string]int {
	t.Helper()
	want := make(map[string]int)
	for _, ds := range dirs {
		dir := filepath.Join("testdata", "src", ds.dir)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				for _, m := range wantMarker.FindAllStringSubmatch(line, -1) {
					want[fmt.Sprintf("%s:%d:%s", e.Name(), i+1, m[1])]++
				}
			}
		}
	}
	return want
}

// loadFixture loads a case's directories, in order, with one Loader.
func loadFixture(t *testing.T, dirs []dirSpec) []*Package {
	t.Helper()
	loader := &Loader{}
	var pkgs []*Package
	for _, ds := range dirs {
		pkg, err := loader.LoadDir(filepath.Join("testdata", "src", ds.dir), ds.path)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// TestFixtureCorpus proves each rule fires on its known-bad fixtures at
// exactly the marked lines and stays silent on the known-good ones
// (which also exercise every directive placement). The unused-allow
// audit runs throughout, so every directive in the corpus must either
// suppress a finding or carry a want:unusedallow marker.
func TestFixtureCorpus(t *testing.T) {
	fired := make(map[string]bool)
	for _, tc := range fixtureCases {
		t.Run(tc.name, func(t *testing.T) {
			pkgs := loadFixture(t, tc.dirs)
			got := make(map[string]int)
			for _, f := range CheckModule(pkgs, nil) {
				got[fmt.Sprintf("%s:%d:%s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Rule)]++
				fired[f.Rule] = true
			}
			want := expectedFindings(t, tc.dirs)
			for k, n := range want {
				if got[k] != n {
					t.Errorf("expected %d finding(s) at %s, got %d", n, k, got[k])
				}
			}
			for k, n := range got {
				if want[k] != n {
					t.Errorf("unexpected finding(s) at %s (%d)", k, n)
				}
			}
		})
	}
	for _, r := range Rules {
		if !fired[r] {
			t.Errorf("rule %s never fired across the corpus", r)
		}
	}
}

// TestRuleDisabledSilences proves the corpus markers depend on their
// rules: with a rule disabled, its fixture case reports none of the
// findings the want-markers demand.
func TestRuleDisabledSilences(t *testing.T) {
	cases := map[string]string{ // rule -> fixture case name
		RuleSyncName:    "syncname",
		RuleHashExclude: "hashexclude",
		RuleReadonly:    "readonly",
		RuleUnusedAllow: "unusedallow",
	}
	byName := make(map[string][]dirSpec)
	for _, tc := range fixtureCases {
		byName[tc.name] = tc.dirs
	}
	for rule, caseName := range cases {
		t.Run(rule, func(t *testing.T) {
			dirs := byName[caseName]
			markers := 0
			for k, n := range expectedFindings(t, dirs) {
				if strings.HasSuffix(k, ":"+rule) {
					markers += n
				}
			}
			if markers == 0 {
				t.Fatalf("fixture %s carries no want:%s markers", caseName, rule)
			}
			pkgs := loadFixture(t, dirs)
			opts := &Options{Disabled: map[string]bool{rule: true}, NoAudit: rule != RuleUnusedAllow}
			for _, f := range CheckModule(pkgs, opts) {
				if f.Rule == rule {
					t.Errorf("disabled rule still fired: %s", f)
				}
			}
		})
	}
}

// TestTreeClean runs the full linter — contract rules and unused-allow
// audit included — over the module itself, including test files: the
// tree must stay clean with an empty baseline (this is the in-test twin
// of `make lint`).
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module against GOROOT source")
	}
	pkgs, err := (&Loader{Tests: true}).Load("../..", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range CheckModule(pkgs, nil) {
		t.Errorf("%s", f)
	}
}

// TestSeededObserverMutation is the end-to-end acceptance check for the
// readonly contract: planting a stats write in an observer package —
// against the real stats package source — must produce a readonly
// finding. Every package in the observer set is seeded in turn, so a
// package silently dropping out of the set fails the test.
func TestSeededObserverMutation(t *testing.T) {
	for _, pkg := range []string{"perf", "obs"} {
		t.Run(pkg, func(t *testing.T) {
			root := t.TempDir()
			if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module clustersim\n\ngo 1.21\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			for _, sub := range []string{"internal/stats", "internal/" + pkg} {
				if err := os.MkdirAll(filepath.Join(root, sub), 0o755); err != nil {
					t.Fatal(err)
				}
			}
			realStats, err := os.ReadFile(filepath.Join("..", "stats", "stats.go"))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(root, "internal/stats/stats.go"), realStats, 0o644); err != nil {
				t.Fatal(err)
			}
			seed := `package ` + pkg + `

import "clustersim/internal/stats"

// Skew tampers with a processor's breakdown from observer code.
func Skew(b *stats.Breakdown) {
	b.CPU += 1
}
`
			if err := os.WriteFile(filepath.Join(root, "internal/"+pkg+"/seed.go"), []byte(seed), 0o644); err != nil {
				t.Fatal(err)
			}
			pkgs, err := (&Loader{}).Load(root, []string{"./..."})
			if err != nil {
				t.Fatal(err)
			}
			var hits []Finding
			for _, f := range CheckModule(pkgs, nil) {
				if f.Rule == RuleReadonly {
					hits = append(hits, f)
				}
			}
			if len(hits) != 1 || !strings.Contains(hits[0].Msg, "stats.Breakdown") {
				t.Fatalf("seeded stats write in internal/%s: want one readonly finding on stats.Breakdown, got %v", pkg, hits)
			}
		})
	}
}

func TestDirectiveRules(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//simlint:allow wallclock", []string{"wallclock"}},
		{"//simlint:allow wallclock rand", []string{"wallclock", "rand"}},
		{"//simlint:allow readonly — observer-owned scratch copy", []string{"readonly"}},
		{"//simlint:allow syncname hashexclude", []string{"syncname", "hashexclude"}},
		{"//simlint:allow", nil},            // no rules named
		{"//simlint:allow not-a-rule", nil}, // commentary only
		{"// simlint:allow wallclock", nil}, // space breaks the directive
		{"// just a comment", nil},
	}
	for _, tc := range cases {
		if got := directiveRules(tc.text); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("directiveRules(%q) = %v, want %v", tc.text, got, tc.want)
		}
	}
}

func TestIsSimulationPackage(t *testing.T) {
	cases := map[string]bool{
		"clustersim/internal/engine":     true,
		"clustersim/internal/coherence":  true,
		"clustersim/internal/apps/radix": true,
		"clustersim/internal/telemetry":  false,
		"clustersim/cmd/clustersim":      false,
		"clustersim/internal/enginex":    false,
	}
	for path, want := range cases {
		if got := IsSimulationPackage(path); got != want {
			t.Errorf("IsSimulationPackage(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestIsObserverPackage(t *testing.T) {
	cases := map[string]bool{
		"clustersim/internal/telemetry":     true,
		"clustersim/internal/profile":       true,
		"clustersim/internal/perf":          true,
		"clustersim/internal/critpath":      true,
		"clustersim/internal/critpath/sub":  true,
		"clustersim/internal/obs":           true,
		"clustersim/internal/core":          false,
		"clustersim/internal/telemetryfake": false,
		"clustersim/internal/observatory":   false,
	}
	for path, want := range cases {
		if got := IsObserverPackage(path); got != want {
			t.Errorf("IsObserverPackage(%q) = %v, want %v", path, got, want)
		}
	}
}
