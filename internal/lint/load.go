package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks the module's packages without x/tools:
// module-internal imports are resolved from the packages the loader has
// already checked (in dependency order); standard-library imports are
// compiled from GOROOT source via go/importer's "source" mode; anything
// unresolvable degrades to a stub package and the resulting type errors
// are swallowed — the rules only need best-effort type information.
type Loader struct {
	// Tests includes _test.go files in the scan (off by default: the
	// corpus of interest is the simulator itself).
	Tests bool

	fset    *token.FileSet
	modRoot string
	modPath string
	std     types.Importer
	checked map[string]*types.Package
}

// Load expands the patterns (plain directories or "dir/..." wildcards,
// relative to dir) and returns the type-checked packages in dependency
// order, ready for Check.
func (l *Loader) Load(dir string, patterns []string) ([]*Package, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l.fset = token.NewFileSet()
	l.modRoot = root
	l.modPath = modPath
	l.std = importer.ForCompiler(l.fset, "source", nil)
	l.checked = make(map[string]*types.Package)

	dirs, err := expandPatterns(dir, patterns)
	if err != nil {
		return nil, err
	}
	units, byPath, err := l.parseDirs(dirs)
	if err != nil {
		return nil, err
	}
	order, err := topoSort(units, byPath)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, u := range order {
		out = append(out, l.typeCheck(u))
	}
	return out, nil
}

// ModRoot returns the module root directory of the last Load, the base
// that findings' absolute file names are made relative to in baselines
// and SARIF output.
func (l *Loader) ModRoot() string { return l.modRoot }

// LoadDir parses one directory as a single package under the given
// import path — the fixture-corpus entry point used by the lint tests,
// where the path is synthetic (e.g. an engine path for goroutine-rule
// fixtures). Successive LoadDir calls on one Loader see each other's
// packages: a fixture loaded under a state-package path is importable
// by a later observer fixture, which is how the cross-package contract
// rules are tested without loading the real module.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if l.fset == nil {
		l.fset = token.NewFileSet()
		l.std = importer.ForCompiler(l.fset, "source", nil)
		l.checked = make(map[string]*types.Package)
		l.modPath = importPath
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	u := &unit{path: importPath, name: "", primary: true}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		file, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		u.files = append(u.files, file)
	}
	if len(u.files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return l.typeCheck(u), nil
}

// unit is one to-be-checked package: the files of one package clause in
// one directory.
type unit struct {
	path    string // import path (shared by test variants in the same dir)
	name    string // package clause
	primary bool   // the package other packages import under this path
	files   []*ast.File
	imports []string // module-internal imports, sorted
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// expandPatterns resolves "p/..." wildcards and plain directories into a
// sorted list of directories containing Go files.
func expandPatterns(base string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" {
				pat = "."
			}
		}
		start, err := filepath.Abs(filepath.Join(base, pat))
		if err != nil {
			return nil, err
		}
		info, err := os.Stat(start)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
		}
		if !recursive {
			add(start)
			continue
		}
		err = filepath.WalkDir(start, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != start && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// parseDirs parses every selected directory into units and indexes the
// primary unit of each import path.
func (l *Loader) parseDirs(dirs []string) ([]*unit, map[string]*unit, error) {
	var units []*unit
	byPath := make(map[string]*unit)
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.modRoot, dir)
		if err != nil {
			return nil, nil, err
		}
		path := l.modPath
		if rel != "." {
			path = l.modPath + "/" + filepath.ToSlash(rel)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, nil, err
		}
		groups := make(map[string]*unit)
		var names []string
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
				continue
			}
			if !l.Tests && strings.HasSuffix(name, "_test.go") {
				continue
			}
			file, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
				parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, nil, fmt.Errorf("lint: %w", err)
			}
			pkgName := file.Name.Name
			u := groups[pkgName]
			if u == nil {
				u = &unit{path: path, name: pkgName}
				groups[pkgName] = u
				names = append(names, pkgName)
			}
			u.files = append(u.files, file)
		}
		sort.Strings(names)
		primary := primaryName(names)
		for _, n := range names {
			u := groups[n]
			u.primary = n == primary
			u.imports = l.internalImports(u.files)
			units = append(units, u)
			if u.primary {
				byPath[u.path] = u
			}
		}
	}
	return units, byPath, nil
}

// primaryName picks which package clause in a directory is the one other
// packages import: the non-test clause, preferring the only candidate.
func primaryName(names []string) string {
	for _, n := range names {
		if !strings.HasSuffix(n, "_test") {
			return n
		}
	}
	if len(names) > 0 {
		return names[0]
	}
	return ""
}

// internalImports collects the module-internal import paths of a unit,
// sorted and deduplicated.
func (l *Loader) internalImports(files []*ast.File) []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p != l.modPath && !strings.HasPrefix(p, l.modPath+"/") {
				continue
			}
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Strings(out)
	return out
}

// topoSort orders units so every module-internal dependency is checked
// before its importers; test variants follow their primary unit.
func topoSort(units []*unit, byPath map[string]*unit) ([]*unit, error) {
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[*unit]int)
	var order []*unit
	var visit func(u *unit, chain []string) error
	visit = func(u *unit, chain []string) error {
		switch state[u] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s (chain %v)", u.path, chain)
		}
		state[u] = visiting
		for _, dep := range u.imports {
			d, ok := byPath[dep]
			if !ok || d == u {
				continue // outside the scanned set, or a test variant's own package
			}
			if err := visit(d, append(chain, u.path)); err != nil {
				return err
			}
		}
		state[u] = done
		order = append(order, u)
		return nil
	}
	for _, u := range units {
		if !u.primary {
			continue
		}
		if err := visit(u, nil); err != nil {
			return nil, err
		}
	}
	for _, u := range units {
		if state[u] != done { // test variants and anything unreachable
			state[u] = done
			order = append(order, u)
		}
	}
	return order, nil
}

// typeCheck runs go/types over one unit with the lenient importer. Type
// errors are swallowed: stubbed imports make some expressions invalid,
// and the rules cope with partial information.
func (l *Loader) typeCheck(u *unit) *Package {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:         l,
		Error:            func(error) {}, // best-effort checking
		FakeImportC:      true,
		IgnoreFuncBodies: false,
	}
	pkg, _ := conf.Check(u.path, l.fset, u.files, info)
	if u.primary && pkg != nil {
		l.checked[u.path] = pkg
	}
	return &Package{Path: u.path, Fset: l.fset, Files: u.files, Info: info}
}

// Import resolves one import for go/types: module-internal packages come
// from the already-checked set, the standard library is compiled from
// source, and anything else becomes an empty stub.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.checked[path]; ok {
		return p, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		// Inside the module but not scanned (or not yet checked):
		// stub it so the importer never recurses unpredictably.
		return stubPackage(path), nil
	}
	if p, err := l.std.Import(path); err == nil {
		return p, nil
	}
	return stubPackage(path), nil
}

func stubPackage(path string) *types.Package {
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	return p
}
