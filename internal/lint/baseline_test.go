package lint

import (
	"go/token"
	"path/filepath"
	"testing"
)

func bfind(rule, file string, line int, msg string) Finding {
	return Finding{Rule: rule, Pos: token.Position{Filename: file, Line: line, Column: 1}, Msg: msg}
}

// TestBaselineRoundTrip: a baseline built from a finding set covers
// exactly that set — everything grandfathered, nothing fresh, nothing
// stale — even after the findings' line numbers drift.
func TestBaselineRoundTrip(t *testing.T) {
	root := "/src/mod"
	findings := []Finding{
		bfind(RuleMapRange, "/src/mod/internal/a/a.go", 10, "range over map"),
		bfind(RuleMapRange, "/src/mod/internal/a/a.go", 30, "range over map"), // identical twice: multiset
		bfind(RuleWallclock, "/src/mod/internal/b/b.go", 5, "time.Now"),
	}
	b := NewBaseline(findings, root)
	if len(b.Findings) != 2 {
		t.Fatalf("want 2 entries (one with count 2), got %+v", b.Findings)
	}

	drifted := make([]Finding, len(findings))
	copy(drifted, findings)
	for i := range drifted {
		drifted[i].Pos.Line += 100 // baselines must survive line drift
	}
	fresh, grandfathered, stale := b.Apply(drifted, root)
	if len(fresh) != 0 || grandfathered != 3 || len(stale) != 0 {
		t.Errorf("round trip: fresh=%v grandfathered=%d stale=%v", fresh, grandfathered, stale)
	}
}

// TestBaselineFreshAndStale: findings beyond an entry's count are
// fresh; entries (or count surplus) matching nothing are stale.
func TestBaselineFreshAndStale(t *testing.T) {
	root := "/src/mod"
	b := &Baseline{Schema: BaselineSchema, Findings: []BaselineEntry{
		{Rule: RuleMapRange, File: "internal/a/a.go", Msg: "range over map", Count: 2},
		{Rule: RuleRand, File: "internal/gone/gone.go", Msg: "unseeded rand"},
	}}
	findings := []Finding{
		bfind(RuleMapRange, "/src/mod/internal/a/a.go", 10, "range over map"),
		bfind(RuleMapRange, "/src/mod/internal/a/a.go", 20, "range over map"),
		bfind(RuleMapRange, "/src/mod/internal/a/a.go", 30, "range over map"), // third: beyond count 2
		bfind(RuleWallclock, "/src/mod/internal/c/c.go", 7, "time.Now"),       // not in baseline at all
	}
	fresh, grandfathered, stale := b.Apply(findings, root)
	if grandfathered != 2 {
		t.Errorf("grandfathered = %d, want 2", grandfathered)
	}
	if len(fresh) != 2 || fresh[0].Pos.Line != 30 || fresh[1].Rule != RuleWallclock {
		t.Errorf("fresh = %v", fresh)
	}
	if len(stale) != 1 || stale[0].File != "internal/gone/gone.go" {
		t.Errorf("stale = %v", stale)
	}
}

// TestBaselineFile: WriteFile/LoadBaseline round-trip, plus schema
// validation on load.
func TestBaselineFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	b := NewBaseline([]Finding{bfind(RuleGoroutine, "/m/x.go", 1, "naked go")}, "/m")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Findings) != 1 || got.Findings[0] != b.Findings[0] {
		t.Errorf("round-trip mismatch: %+v vs %+v", got.Findings, b.Findings)
	}

	bad := filepath.Join(dir, "bad.json")
	wrong := &Baseline{Schema: "someone-else/v9"}
	if err := wrong.WriteFile(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(bad); err == nil {
		t.Error("foreign schema must be rejected")
	}
	if _, err := LoadBaseline(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing file must error")
	}
}
