package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleFindings() []Finding {
	return []Finding{
		{Rule: RuleWallclock, Pos: token.Position{Filename: "/src/root/internal/core/clock.go", Line: 12, Column: 9},
			Msg: "call to time.Now in simulation package"},
		{Rule: RuleReadonly, Pos: token.Position{Filename: "/elsewhere/outside.go", Line: 3, Column: 1},
			Msg: "observer write"},
	}
}

// TestWriteSARIFValid decodes the emitted log with a strict decoder and
// checks the SARIF 2.1.0 invariants consumers rely on: schema URI,
// version, a rules table covering every finding's ruleId with matching
// ruleIndex, and physical locations with line/column regions.
func TestWriteSARIFValid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, sampleFindings(), "/src/root"); err != nil {
		t.Fatal(err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name           string `json:"name"`
					InformationURI string `json:"informationUri"`
					Rules          []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
						DefaultConfiguration struct {
							Level string `json:"level"`
						} `json:"defaultConfiguration"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			OriginalURIBaseIDs map[string]struct {
				URI string `json:"uri"`
			} `json:"originalUriBaseIds"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
			ColumnKind string `json:"columnKind"`
		} `json:"runs"`
	}
	dec := json.NewDecoder(&buf)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&log); err != nil {
		t.Fatalf("emitted SARIF does not match the 2.1.0 shape: %v", err)
	}

	if log.Schema != SARIFSchema {
		t.Errorf("$schema = %q", log.Schema)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("want exactly one run, got %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "simlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if run.ColumnKind != "utf16CodeUnits" {
		t.Errorf("columnKind = %q", run.ColumnKind)
	}
	if len(run.Tool.Driver.Rules) != len(Rules) {
		t.Errorf("rules table has %d entries, want %d", len(run.Tool.Driver.Rules), len(Rules))
	}
	for _, r := range run.Tool.Driver.Rules {
		if !knownRules[r.ID] {
			t.Errorf("rules table lists unknown rule %q", r.ID)
		}
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no shortDescription", r.ID)
		}
		if r.DefaultConfiguration.Level != "error" {
			t.Errorf("rule %s level = %q", r.ID, r.DefaultConfiguration.Level)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("want 2 results, got %d", len(run.Results))
	}
	for _, res := range run.Results {
		if res.RuleIndex < 0 || res.RuleIndex >= len(run.Tool.Driver.Rules) ||
			run.Tool.Driver.Rules[res.RuleIndex].ID != res.RuleID {
			t.Errorf("result ruleIndex %d does not point at ruleId %q", res.RuleIndex, res.RuleID)
		}
		if res.Message.Text == "" || len(res.Locations) != 1 {
			t.Errorf("result for %s missing message or location", res.RuleID)
		}
		if res.Locations[0].PhysicalLocation.Region.StartLine <= 0 {
			t.Errorf("result for %s has no startLine", res.RuleID)
		}
	}

	// Under-root findings are SRCROOT-relative; others keep absolute URIs.
	in := run.Results[0].Locations[0].PhysicalLocation.ArtifactLocation
	if in.URI != "internal/core/clock.go" || in.URIBaseID != "SRCROOT" {
		t.Errorf("under-root artifact = %+v", in)
	}
	out := run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation
	if !strings.HasPrefix(out.URI, "file://") || out.URIBaseID != "" {
		t.Errorf("out-of-root artifact = %+v", out)
	}
	if base, ok := run.OriginalURIBaseIDs["SRCROOT"]; !ok || !strings.HasPrefix(base.URI, "file://") {
		t.Errorf("originalUriBaseIds = %+v", run.OriginalURIBaseIDs)
	}
}

// TestWriteSARIFEmpty pins the no-findings shape: results must be an
// empty array (never null — GitHub's upload rejects null) and the rules
// table still advertises every rule.
func TestWriteSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, nil, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"results": []`) {
		t.Errorf("empty findings must serialize results as []:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "originalUriBaseIds") {
		t.Errorf("rootless log must omit originalUriBaseIds")
	}
}
