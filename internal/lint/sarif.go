package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 output, the static-analysis interchange format GitHub
// code scanning and most CI annotators consume. Only the slice of the
// spec simlint needs is modelled; the structure follows
// https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html.

// SARIFSchema is the canonical 2.1.0 schema URI embedded in every log.
const SARIFSchema = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

// SARIFVersion is the SARIF spec version simlint emits.
const SARIFVersion = "2.1.0"

// srcRootID is the uriBaseId all artifact locations are relative to.
const srcRootID = "SRCROOT"

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool               sarifTool                `json:"tool"`
	OriginalURIBaseIDs map[string]sarifArtifact `json:"originalUriBaseIds,omitempty"`
	Results            []sarifResult            `json:"results"`
	ColumnKind         string                   `json:"columnKind"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string          `json:"id"`
	ShortDescription sarifMessage    `json:"shortDescription"`
	DefaultConfig    sarifRuleConfig `json:"defaultConfiguration"`
}

type sarifRuleConfig struct {
	Level string `json:"level"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as one SARIF 2.1.0 run. root, when
// non-empty, is the source root: finding file names below it become
// relative URIs against a SRCROOT base, which is what lets CI annotate
// checkouts mounted at arbitrary paths.
func WriteSARIF(w io.Writer, findings []Finding, root string) error {
	rules := make([]sarifRule, len(RuleIndex))
	index := make(map[string]int, len(RuleIndex))
	for i, ri := range RuleIndex {
		rules[i] = sarifRule{
			ID:               ri.Name,
			ShortDescription: sarifMessage{Text: ri.Summary},
			DefaultConfig:    sarifRuleConfig{Level: "error"},
		}
		index[ri.Name] = i
	}
	run := sarifRun{
		Tool: sarifTool{Driver: sarifDriver{
			Name:           "simlint",
			InformationURI: "https://github.com/clustersim/clustersim#correctness-tooling",
			Rules:          rules,
		}},
		Results:    []sarifResult{}, // empty array, not null: consumers require it
		ColumnKind: "utf16CodeUnits",
	}
	if root != "" {
		run.OriginalURIBaseIDs = map[string]sarifArtifact{
			srcRootID: {URI: "file://" + filepath.ToSlash(root) + "/"},
		}
	}
	for _, f := range findings {
		uri, baseID := sarifURI(f.Pos.Filename, root)
		run.Results = append(run.Results, sarifResult{
			RuleID:    f.Rule,
			RuleIndex: index[f.Rule],
			Level:     "error",
			Message:   sarifMessage{Text: f.Msg},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: uri, URIBaseID: baseID},
				Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			}}},
		})
	}
	log := sarifLog{Schema: SARIFSchema, Version: SARIFVersion, Runs: []sarifRun{run}}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifURI relativizes a finding's file name against the source root.
func sarifURI(filename, root string) (uri, baseID string) {
	if root != "" {
		if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel), srcRootID
		}
	}
	return "file://" + filepath.ToSlash(filename), ""
}
