package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"reflect"
	"strconv"
	"strings"
)

// This file implements the cross-package contract rules: readonly (an
// observer package must not mutate simulation state) and hashexclude
// (core.Config's hash-exclusion contract). Both need type information
// that crosses package boundaries — the loader type-checks the module
// in dependency order precisely so method objects and field types
// resolve to their defining packages here.

// module is the cross-package view of one CheckModule run.
type module struct {
	// mutating marks pointer-receiver methods whose bodies write through
	// their receiver, directly or transitively via other methods on the
	// receiver. Accessors (pointer receiver, no writes) are absent.
	mutating map[*types.Func]bool
}

// methodFacts is the per-method input to the fixed point.
type methodFacts struct {
	direct  bool // body writes through the receiver
	callees []*types.Func
}

// newModule scans every method body in the loaded packages and computes
// the mutating-method set by fixed point: a method mutates if it writes
// through its receiver (assignment, ++/--, delete/clear of a receiver
// map) or calls a receiver method that does.
func newModule(pkgs []*Package) *module {
	facts := make(map[*types.Func]*methodFacts)
	for _, pkg := range pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				facts[obj] = methodBodyFacts(pkg, fd)
			}
		}
	}
	mutating := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for obj, mf := range facts {
			if mutating[obj] {
				continue
			}
			fire := mf.direct
			for _, c := range mf.callees {
				if mutating[c] {
					fire = true
					break
				}
			}
			if fire {
				mutating[obj] = true
				changed = true //simlint:allow maprange — monotone flag, order-independent
			}
		}
	}
	return &module{mutating: mutating}
}

// isBuiltinOrUnresolved reports whether id resolves to a predeclared
// builtin (delete, clear) rather than a user function shadowing the
// name. Unresolved (degraded type info) counts as builtin.
func isBuiltinOrUnresolved(pkg *Package, id *ast.Ident) bool {
	obj := pkg.Info.Uses[id]
	if obj == nil {
		return true
	}
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

// methodBodyFacts extracts, from one method body, whether it writes
// through its receiver and which receiver methods it calls.
func methodBodyFacts(pkg *Package, fd *ast.FuncDecl) *methodFacts {
	mf := &methodFacts{}
	var recvObj types.Object
	if names := fd.Recv.List[0].Names; len(names) == 1 && names[0].Name != "_" {
		recvObj = pkg.Info.Defs[names[0]]
	}
	if recvObj == nil {
		return mf // unnamed receiver: the body cannot reach it
	}
	rootsAtRecv := func(e ast.Expr) bool {
		id := rootIdent(e)
		return id != nil && pkg.Info.ObjectOf(id) == recvObj
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if rootsAtRecv(lhs) {
					mf.direct = true
				}
			}
		case *ast.IncDecStmt:
			if rootsAtRecv(n.X) {
				mf.direct = true
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && (id.Name == "delete" || id.Name == "clear") &&
				len(n.Args) > 0 && rootsAtRecv(n.Args[0]) && isBuiltinOrUnresolved(pkg, id) {
				mf.direct = true
				return true
			}
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !rootsAtRecv(sel.X) {
				return true
			}
			if callee, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok {
				mf.callees = append(mf.callees, callee)
			}
		}
		return true
	})
	return mf
}

// --- rule: readonly ----------------------------------------------------

// stateNamed returns the named state-package type behind t (directly or
// one pointer away), or nil.
func stateNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	if !isStatePackage(named.Obj().Pkg().Path()) {
		return nil
	}
	return named
}

// isStatePointer reports whether t is a pointer whose element is a
// named type from a state package.
func isStatePointer(t types.Type) bool {
	if t == nil {
		return false
	}
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	return stateNamed(p.Elem()) != nil
}

// statePointerOnPath walks an lvalue chain outside-in and returns the
// named state type of the first pointer the chain dereferences, or nil.
// `b.CPU = 0` with b *stats.Breakdown dereferences a state pointer;
// `m.snap.CPU = 0` with m *perf.Monitor and snap a value field does not
// — the observer owns the storage it writes.
func (fc *fileChecker) statePointerOnPath(e ast.Expr) *types.Named {
	for {
		switch v := e.(type) {
		case *ast.SelectorExpr:
			if t := fc.typeOf(v.X); isStatePointer(t) {
				return stateNamed(t)
			}
			e = v.X
		case *ast.StarExpr:
			if t := fc.typeOf(v.X); isStatePointer(t) {
				return stateNamed(t)
			}
			e = v.X
		case *ast.IndexExpr:
			if t := fc.typeOf(v.X); isStatePointer(t) {
				return stateNamed(t)
			}
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// checkReadonlyAssign flags writes that reach simulation state through a
// pointer from observer code.
func (fc *fileChecker) checkReadonlyAssign(a *ast.AssignStmt) {
	if !fc.inObserver() {
		return
	}
	for _, lhs := range a.Lhs {
		if named := fc.statePointerOnPath(lhs); named != nil {
			fc.report(RuleReadonly, lhs.Pos(),
				"observer package writes through *%s.%s into simulation state; observers must copy, never mutate",
				named.Obj().Pkg().Name(), named.Obj().Name())
		}
	}
}

func (fc *fileChecker) checkReadonlyIncDec(s *ast.IncDecStmt) {
	if !fc.inObserver() {
		return
	}
	if named := fc.statePointerOnPath(s.X); named != nil {
		fc.report(RuleReadonly, s.X.Pos(),
			"observer package writes through *%s.%s into simulation state; observers must copy, never mutate",
			named.Obj().Pkg().Name(), named.Obj().Name())
	}
}

// checkReadonlyCall flags calls from observer code to mutating
// (pointer-receiver, non-accessor) methods of state-package types.
func (fc *fileChecker) checkReadonlyCall(call *ast.CallExpr) {
	if !fc.inObserver() || fc.mod == nil || fc.pkg.Info == nil {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection := fc.pkg.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return
	}
	obj, ok := selection.Obj().(*types.Func)
	if !ok || !fc.mod.mutating[obj] {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	if _, ptrRecv := sig.Recv().Type().Underlying().(*types.Pointer); !ptrRecv {
		return // value receiver mutates only its copy
	}
	named := stateNamed(sig.Recv().Type())
	if named == nil {
		return
	}
	fc.report(RuleReadonly, call.Pos(),
		"observer package calls mutating method (*%s.%s).%s on simulation state; observers must copy, never mutate",
		named.Obj().Pkg().Name(), named.Obj().Name(), obj.Name())
}

func (fc *fileChecker) inObserver() bool {
	if !IsObserverPackage(fc.pkg.Path) {
		return false
	}
	// Observer tests must construct and drive the simulation state they
	// observe; the read-only contract binds production code only.
	name := fc.pkg.Fset.Position(fc.file.Pos()).Filename
	return !strings.HasSuffix(name, "_test.go")
}

// --- rule: hashexclude -------------------------------------------------

// hashConfigPath is the package whose Config/HashExcludedFields pair the
// rule audits.
const hashConfigPath = "clustersim/internal/core"

// hashExclusionSetName is the required declaration: a package-level
// []string (or [...]string) of field names excluded from the config
// hash.
const hashExclusionSetName = "HashExcludedFields"

// checkHashExclude enforces the config-hash contract on
// clustersim/internal/core: the journal, the memoizing result cache and
// every byte-identical-Result guarantee key off telemetry.HashConfig's
// JSON encoding of Config, so which fields feed the hash must be an
// explicit, machine-checked list rather than a scattering of struct
// tags.
func checkHashExclude(pkg *Package, opts *Options) []Finding {
	if opts.disabled(RuleHashExclude) || pkg.Path != hashConfigPath {
		return nil
	}
	var (
		cfg     *ast.StructType
		cfgPos  *ast.TypeSpec
		setLit  *ast.CompositeLit
		setSpec *ast.ValueSpec
	)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeSpec:
				if n.Name.Name == "Config" {
					if st, ok := n.Type.(*ast.StructType); ok {
						cfg, cfgPos = st, n
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if name.Name == hashExclusionSetName && i < len(n.Values) {
						if lit, ok := n.Values[i].(*ast.CompositeLit); ok {
							setLit, setSpec = lit, n
						}
					}
				}
			}
			return true
		})
	}
	if cfg == nil {
		return nil
	}
	var out []Finding
	report := func(pos ast.Node, format string, args ...interface{}) {
		out = append(out, Finding{
			Rule: RuleHashExclude,
			Pos:  pkg.Fset.Position(pos.Pos()),
			Msg:  fmt.Sprintf(format, args...),
		})
	}
	if setLit == nil {
		report(cfgPos, "package declares Config but no %s exclusion set; "+
			"declare `var %s = []string{...}` listing every json:\"-\" field", hashExclusionSetName, hashExclusionSetName)
		return out
	}
	excluded := make(map[string]bool)
	for _, el := range setLit.Elts {
		if lit, ok := el.(*ast.BasicLit); ok {
			if s, err := strconv.Unquote(lit.Value); err == nil {
				excluded[s] = true
			}
		}
	}
	seen := make(map[string]bool)
	for _, field := range cfg.Fields.List {
		if len(field.Names) == 0 {
			continue // embedded fields keep their own contracts
		}
		dash, omitempty := jsonTagFacts(field)
		attachment, observer, typeDesc := pkg.fieldTypeFacts(field.Type)
		for _, name := range field.Names {
			seen[name.Name] = true
			switch {
			case dash && !excluded[name.Name]:
				report(name, "Config.%s is hash-excluded (json:\"-\") but missing from %s; "+
					"declare it so the exclusion is part of the audited contract", name.Name, hashExclusionSetName)
			case !dash && excluded[name.Name]:
				report(name, "Config.%s is listed in %s but lacks json:\"-\": "+
					"it still feeds the config hash and Result JSON", name.Name, hashExclusionSetName)
			}
			if observer && !dash {
				report(name, "Config.%s has observer type %s and must carry json:\"-\": "+
					"observers may never change the config hash", name.Name, typeDesc)
			} else if attachment && !dash && !omitempty {
				report(name, "Config.%s is an attachment point (%s) and must either be hash-excluded "+
					"(json:\"-\") or opt in to the hash explicitly (json:\",omitempty\")", name.Name, typeDesc)
			}
		}
	}
	for name := range excluded {
		if !seen[name] {
			report(setSpec, "%s entry %q names no Config field; remove the stale entry", hashExclusionSetName, name)
		}
	}
	return out
}

// jsonTagFacts reads a struct field's json tag: whether it is "-"
// (excluded from marshalling and therefore the hash) and whether it
// carries omitempty.
func jsonTagFacts(field *ast.Field) (dash, omitempty bool) {
	if field.Tag == nil {
		return false, false
	}
	raw, err := strconv.Unquote(field.Tag.Value)
	if err != nil {
		return false, false
	}
	tag, ok := reflect.StructTag(raw).Lookup("json")
	if !ok {
		return false, false
	}
	parts := strings.Split(tag, ",")
	if parts[0] == "-" && len(parts) == 1 {
		return true, false
	}
	for _, p := range parts[1:] {
		if p == "omitempty" {
			omitempty = true
		}
	}
	return false, omitempty
}

// fieldTypeFacts classifies a Config field's type: attachment points are
// pointers, interfaces and funcs (reference semantics — attaching one
// must not silently alter the hash); observer types are named types from
// the observer packages. Falls back to the AST when type information is
// unavailable.
func (pkg *Package) fieldTypeFacts(expr ast.Expr) (attachment, observer bool, desc string) {
	var t types.Type
	if pkg.Info != nil {
		t = pkg.Info.TypeOf(expr)
		if t == types.Typ[types.Invalid] {
			t = nil
		}
	}
	if t != nil {
		desc = t.String()
		switch u := t.Underlying().(type) {
		case *types.Pointer:
			attachment = true
			if named, ok := u.Elem().(*types.Named); ok && named.Obj().Pkg() != nil &&
				IsObserverPackage(named.Obj().Pkg().Path()) {
				observer = true
			}
		case *types.Interface:
			attachment = true
		case *types.Signature:
			attachment = true
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil &&
			IsObserverPackage(named.Obj().Pkg().Path()) {
			observer = true
		}
		return attachment, observer, desc
	}
	switch expr.(type) {
	case *ast.StarExpr, *ast.FuncType, *ast.InterfaceType:
		attachment = true
	}
	return attachment, false, types.ExprString(expr)
}

// --- rule: syncname ----------------------------------------------------

// syncConstructors are the Machine methods that register a named
// synchronisation object; core.defineSync panics at run time when two
// objects share a name, and an empty name is indistinguishable from
// another empty name.
var syncConstructors = map[string]bool{
	"NewBarrierN": true,
	"NewLock":     true,
	"NewFlag":     true,
}

// syncCall is one sync-constructor call site found in a file.
type syncCall struct {
	call *ast.CallExpr
	sel  *ast.SelectorExpr
}

// checkSyncNames runs the syncname rule over one file: constructor name
// arguments must be non-empty, and two calls in the same function with
// the same receiver must not pass the same constant name (that is the
// duplicate-name panic of core.defineSync, promoted to a finding).
// Distinct functions may reuse names: they typically build distinct
// machines.
func (fc *fileChecker) checkSyncNames() {
	if fc.opts.disabled(RuleSyncName) {
		return
	}
	calls := fc.collectSyncCalls()
	if len(calls) == 0 {
		return
	}
	type funcScope struct {
		node ast.Node
		seen map[string]ast.Expr // receiver|name -> first call
	}
	var fns []ast.Node
	ast.Inspect(fc.file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			fns = append(fns, n)
		}
		return true
	})
	innermost := func(pos ast.Expr) ast.Node {
		var best ast.Node
		for _, fn := range fns {
			if fn.Pos() <= pos.Pos() && pos.End() <= fn.End() {
				if best == nil || (best.Pos() <= fn.Pos() && fn.End() <= best.End()) {
					best = fn
				}
			}
		}
		return best
	}
	scopes := make(map[ast.Node]*funcScope)
	for _, sc := range calls {
		name, isConst := fc.constStringArg(sc.call.Args[0])
		if isConst && name == "" {
			fc.report(RuleSyncName, sc.call.Args[0].Pos(),
				"%s needs a non-empty name: sync objects are identified by name in traces, "+
					"the critical-path analyzer and duplicate detection", sc.sel.Sel.Name)
			continue
		}
		if !isConst {
			continue // dynamic names (fmt.Sprintf per index) are the sanctioned pattern
		}
		fn := innermost(sc.call)
		scope := scopes[fn]
		if scope == nil {
			scope = &funcScope{node: fn, seen: make(map[string]ast.Expr)}
			scopes[fn] = scope
		}
		key := types.ExprString(sc.sel.X) + "\x00" + name
		if first, dup := scope.seen[key]; dup {
			fc.report(RuleSyncName, sc.call.Pos(),
				"duplicate sync name %q on %s in this function (first at %s); "+
					"core.defineSync panics at run time on duplicate names",
				name, types.ExprString(sc.sel.X), fc.pkg.Fset.Position(first.Pos()))
			continue
		}
		scope.seen[key] = sc.call
	}
}

// collectSyncCalls finds NewBarrierN/NewLock/NewFlag method calls with
// at least one argument. When type information resolves the receiver,
// only Machine receivers count; unresolved receivers (stubbed imports
// in fixtures) are matched by method name alone.
func (fc *fileChecker) collectSyncCalls() []syncCall {
	var out []syncCall
	ast.Inspect(fc.file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !syncConstructors[sel.Sel.Name] {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && fc.pkg.Info != nil {
			if _, isPkg := fc.pkg.Info.Uses[id].(*types.PkgName); isPkg {
				return true // package function, not a Machine method
			}
		}
		if t := fc.typeOf(sel.X); t != nil {
			named := t
			if p, ok := named.Underlying().(*types.Pointer); ok {
				named = p.Elem()
			}
			if n, ok := named.(*types.Named); ok && n.Obj().Name() != "Machine" {
				return true
			}
		}
		out = append(out, syncCall{call: call, sel: sel})
		return true
	})
	return out
}

// constStringArg resolves an expression to a compile-time string
// constant, via type information first and string literals as fallback.
func (fc *fileChecker) constStringArg(e ast.Expr) (value string, isConst bool) {
	if fc.pkg.Info != nil {
		if tv, ok := fc.pkg.Info.Types[e]; ok && tv.Value != nil {
			if tv.Value.Kind() == constant.String {
				return constant.StringVal(tv.Value), true
			}
			return "", false
		}
	}
	if lit, ok := e.(*ast.BasicLit); ok && lit.Kind.String() == "STRING" {
		if s, err := strconv.Unquote(lit.Value); err == nil {
			return s, true
		}
	}
	return "", false
}
