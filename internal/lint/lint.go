// Package lint implements simlint, the project's custom static-analysis
// pass for determinism invariants. The simulator's headline guarantee —
// ties in virtual time are broken by processor ID, so simulations are
// bit-reproducible — and every reference stream the analytical models
// consume depend on source-level discipline that the compiler does not
// enforce. simlint does, mechanically, using only the standard library's
// go/parser, go/ast, go/token and go/types (no x/tools):
//
//	wallclock  — time.Now/Since/Sleep and friends: wall-clock time must
//	             never feed simulated state. Sanctioned uses (progress
//	             reporting, run manifests) carry a directive.
//	rand       — math/rand constructors must be seeded with a
//	             compile-time constant or a processor-ID-derived
//	             expression; the globally seeded top-level functions are
//	             banned outright (they are randomly seeded since Go 1.20).
//	maprange   — a range over a map must not write order-dependent
//	             results: no appends to slices declared outside the loop,
//	             no plain assignments to outer state, no float
//	             accumulation. Integer += accumulation (commutative) and
//	             map writes keyed by the range key are allowed.
//	goroutine  — go statements are allowed only inside internal/engine;
//	             everywhere else they would break the one-goroutine-at-a-
//	             time token discipline.
//	floatclock — floating-point values must not accumulate into Clock or
//	             counter fields: int64(f)/Clock(f) inside a += or a
//	             self-referencing assignment silently injects rounding
//	             drift into virtual time.
//
// A finding is silenced by the directive comment
//
//	//simlint:allow <rule> [<rule>...]
//
// placed on the offending line, on the line directly above it, or in the
// doc comment of the enclosing function declaration (which silences the
// rule for the whole function).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Rule names, as used in findings and //simlint:allow directives.
const (
	RuleWallclock  = "wallclock"
	RuleRand       = "rand"
	RuleMapRange   = "maprange"
	RuleGoroutine  = "goroutine"
	RuleFloatClock = "floatclock"
)

// Rules lists every rule simlint implements.
var Rules = []string{RuleWallclock, RuleRand, RuleMapRange, RuleGoroutine, RuleFloatClock}

// Finding is one rule violation.
type Finding struct {
	Rule string
	Pos  token.Position
	Msg  string
}

// String formats a finding the way compilers do: file:line:col: message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Package is one type-checked package ready for linting. The loader
// produces these from the module tree; tests build them from fixture
// corpora with synthetic import paths.
type Package struct {
	Path  string // import path, e.g. "clustersim/internal/engine"
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info // best-effort: stdlib imports may be stubbed
}

// simulationPackages are the import-path segments under
// clustersim/internal/ whose state is part of the simulation proper.
// Rule docs refer to these; wallclock/rand/maprange/floatclock apply to
// every scanned package (the determinism argument extends to the
// harness), goroutine exempts only the engine.
var simulationPackages = []string{
	"engine", "core", "cache", "coherence", "directory", "memory", "apps",
}

// IsSimulationPackage reports whether the import path belongs to the
// simulation proper (engine, core, cache, coherence, directory, memory,
// apps and their subpackages).
func IsSimulationPackage(path string) bool {
	for _, seg := range simulationPackages {
		prefix := "clustersim/internal/" + seg
		if path == prefix || strings.HasPrefix(path, prefix+"/") {
			return true
		}
	}
	return false
}

// allowSet records which (line, rule) pairs of one file are silenced.
type allowSet map[int]map[string]bool

func (a allowSet) add(line int, rules []string) {
	m := a[line]
	if m == nil {
		m = make(map[string]bool)
		a[line] = m
	}
	for _, r := range rules {
		m[r] = true
	}
}

func (a allowSet) allows(line int, rule string) bool {
	return a[line][rule] || a[line-1][rule]
}

// directiveRules parses "//simlint:allow wallclock rand" into its rule
// list, or nil if the comment is not a directive.
func directiveRules(text string) []string {
	const prefix = "//simlint:allow"
	if !strings.HasPrefix(text, prefix) {
		return nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	if rest == "" {
		return nil
	}
	return strings.Fields(rest)
}

// collectAllows builds the silence table for one file: each directive
// covers its own line and the next; a directive in a function's doc
// comment covers the whole function body.
func collectAllows(fset *token.FileSet, file *ast.File) allowSet {
	allows := make(allowSet)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			rules := directiveRules(c.Text)
			if rules == nil {
				continue
			}
			line := fset.Position(c.Pos()).Line
			allows.add(line, rules)
			allows.add(line+1, rules)
		}
	}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		var rules []string
		for _, c := range fd.Doc.List {
			rules = append(rules, directiveRules(c.Text)...)
		}
		if len(rules) == 0 {
			continue
		}
		from := fset.Position(fd.Pos()).Line
		to := fset.Position(fd.End()).Line
		for line := from; line <= to; line++ {
			allows.add(line, rules)
		}
	}
	return allows
}

// Check runs every rule over the package and returns the findings that
// are not silenced by directives, sorted by position.
func Check(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		allows := collectAllows(pkg.Fset, file)
		fc := &fileChecker{pkg: pkg, file: file, imports: importNames(file)}
		for _, f := range fc.check() {
			if allows.allows(f.Pos.Line, f.Rule) {
				continue
			}
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

// importNames maps the identifiers a file uses for its imports to import
// paths, honouring renames ("crand" -> "crypto/rand"). Dot and blank
// imports are skipped: neither produces a selector the rules match on.
func importNames(file *ast.File) map[string]string {
	out := make(map[string]string)
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "." || name == "_" {
			continue
		}
		out[name] = path
	}
	return out
}
