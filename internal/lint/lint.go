// Package lint implements simlint, the project's custom static-analysis
// pass for determinism and contract invariants. The simulator's headline
// guarantee — ties in virtual time are broken by processor ID, so
// simulations are bit-reproducible — and every reference stream the
// analytical models consume depend on source-level discipline that the
// compiler does not enforce. simlint does, mechanically, using only the
// standard library's go/parser, go/ast, go/token and go/types (no
// x/tools).
//
// Syntactic determinism rules (v1):
//
//	wallclock  — time.Now/Since/Sleep and friends: wall-clock time must
//	             never feed simulated state. Sanctioned uses (progress
//	             reporting, run manifests) carry a directive.
//	rand       — math/rand constructors must be seeded with a
//	             compile-time constant or a processor-ID-derived
//	             expression; the globally seeded top-level functions are
//	             banned outright (they are randomly seeded since Go 1.20).
//	maprange   — a range over a map must not write order-dependent
//	             results: no appends to slices declared outside the loop,
//	             no plain assignments to outer state, no float
//	             accumulation. Integer += accumulation (commutative) and
//	             map writes keyed by the range key are allowed.
//	goroutine  — go statements are allowed only inside internal/engine;
//	             everywhere else they would break the one-goroutine-at-a-
//	             time token discipline.
//	floatclock — floating-point values must not accumulate into Clock or
//	             counter fields: int64(f)/Clock(f) inside a += or a
//	             self-referencing assignment silently injects rounding
//	             drift into virtual time.
//
// Type-aware contract rules (v2), which read go/types information that
// crosses package boundaries:
//
//	hashexclude — every core.Config field outside the config hash must
//	              carry `json:"-"` and be listed in HashExcludedFields;
//	              attachment points (pointer, interface or func fields)
//	              must be either hash-excluded or explicit `,omitempty`
//	              opt-ins, and observer-typed fields must always be
//	              excluded. A new attachment point can therefore never
//	              silently change the hash contract or leak into Result
//	              JSON.
//	readonly    — observer packages (internal/telemetry, internal/profile,
//	              internal/perf, internal/critpath) must not mutate core
//	              simulation state: no assignments through pointers to
//	              state-package types, and no calls to their mutating
//	              (pointer-receiver, non-accessor) methods. Mutating
//	              methods are computed by a fixed point over method
//	              bodies, so an accessor that merely reads stays callable.
//	syncname    — every NewBarrierN/NewLock/NewFlag call site must pass a
//	              non-empty name, and must not repeat a constant name
//	              within one function: the duplicate-name runtime panic
//	              in core.defineSync becomes a compile-time finding.
//	unusedallow — a //simlint:allow directive that no longer suppresses
//	              any finding is itself reported, so stale exemptions
//	              cannot accumulate (the unused-allow audit; disable with
//	              Options.NoAudit).
//
// A finding is silenced by the directive comment
//
//	//simlint:allow <rule> [<rule>...] [— free-text justification]
//
// placed on the offending line, on the line directly above it, or in the
// doc comment of the enclosing function declaration (which silences the
// rule for the whole function). Tokens after the first non-rule word are
// commentary.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Rule names, as used in findings and //simlint:allow directives.
const (
	RuleWallclock   = "wallclock"
	RuleRand        = "rand"
	RuleMapRange    = "maprange"
	RuleGoroutine   = "goroutine"
	RuleFloatClock  = "floatclock"
	RuleHashExclude = "hashexclude"
	RuleReadonly    = "readonly"
	RuleSyncName    = "syncname"
	RuleUnusedAllow = "unusedallow"
)

// RuleInfo describes one rule for reporting surfaces (SARIF, docs).
type RuleInfo struct {
	Name    string
	Summary string
}

// RuleIndex lists every rule simlint implements, in reporting order.
var RuleIndex = []RuleInfo{
	{RuleWallclock, "wall-clock reads (time.Now/Since/...) must not feed simulated state"},
	{RuleRand, "math/rand must be seeded with a constant or a processor-ID-derived value"},
	{RuleMapRange, "map iteration order must not leak into results"},
	{RuleGoroutine, "go statements are allowed only inside internal/engine"},
	{RuleFloatClock, "floating-point values must not accumulate into virtual-time counters"},
	{RuleHashExclude, "core.Config fields outside the config hash must be json:\"-\" and declared in HashExcludedFields"},
	{RuleReadonly, "observer packages must not mutate core simulation state"},
	{RuleSyncName, "barriers, locks and flags need non-empty, non-duplicate names"},
	{RuleUnusedAllow, "//simlint:allow directives that suppress nothing are stale"},
}

// Rules lists every rule name simlint implements.
var Rules = ruleNames()

func ruleNames() []string {
	out := make([]string, len(RuleIndex))
	for i, r := range RuleIndex {
		out[i] = r.Name
	}
	return out
}

var knownRules = func() map[string]bool {
	m := make(map[string]bool, len(RuleIndex))
	for _, r := range RuleIndex {
		m[r.Name] = true
	}
	return m
}()

// KnownRule reports whether name is an implemented rule.
func KnownRule(name string) bool { return knownRules[name] }

// Options tunes a CheckModule run.
type Options struct {
	// Disabled names rules to skip entirely (used by tests to prove the
	// fixture corpus depends on each rule).
	Disabled map[string]bool

	// NoAudit suppresses the unused-allow audit (rule unusedallow).
	NoAudit bool
}

func (o *Options) disabled(rule string) bool {
	return o != nil && o.Disabled[rule]
}

// Finding is one rule violation.
type Finding struct {
	Rule string
	Pos  token.Position
	Msg  string
}

// String formats a finding the way compilers do: file:line:col: message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Package is one type-checked package ready for linting. The loader
// produces these from the module tree; tests build them from fixture
// corpora with synthetic import paths.
type Package struct {
	Path  string // import path, e.g. "clustersim/internal/engine"
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info // best-effort: stdlib imports may be stubbed
}

// simulationPackages are the import-path segments under
// clustersim/internal/ whose state is part of the simulation proper.
// Rule docs refer to these; wallclock/rand/maprange/floatclock apply to
// every scanned package (the determinism argument extends to the
// harness), goroutine exempts only the engine.
var simulationPackages = []string{
	"engine", "core", "cache", "coherence", "directory", "memory", "apps",
}

// observerPackages are the import-path segments under
// clustersim/internal/ that attach to a machine purely to watch it: the
// readonly rule forbids them from mutating simulation state, which is
// what makes "observed runs are byte-identical to unobserved ones" a
// checkable contract rather than a convention.
var observerPackages = []string{
	"telemetry", "profile", "perf", "critpath", "obs", "obs/fleet",
}

func pathInSet(path string, segs []string) bool {
	for _, seg := range segs {
		prefix := "clustersim/internal/" + seg
		if path == prefix || strings.HasPrefix(path, prefix+"/") {
			return true
		}
	}
	return false
}

// IsSimulationPackage reports whether the import path belongs to the
// simulation proper (engine, core, cache, coherence, directory, memory,
// apps and their subpackages).
func IsSimulationPackage(path string) bool {
	return pathInSet(path, simulationPackages)
}

// IsObserverPackage reports whether the import path is one of the
// observer packages bound by the readonly contract.
func IsObserverPackage(path string) bool {
	return pathInSet(path, observerPackages)
}

// isStatePackage reports whether types from the import path count as
// simulation state for the readonly rule: the simulation packages plus
// internal/stats, whose counters the paper's breakdowns are made of.
func isStatePackage(path string) bool {
	return IsSimulationPackage(path) || path == "clustersim/internal/stats" ||
		strings.HasPrefix(path, "clustersim/internal/stats/")
}

// directive is one //simlint:allow comment, tracked for the
// unused-allow audit: each named rule remembers whether it silenced at
// least one finding.
type directive struct {
	pos   token.Position
	rules []string
	used  map[string]bool
}

// fileAllows records which (line, rule) pairs of one file are silenced,
// and by which directive.
type fileAllows struct {
	byLine     map[int]map[string][]*directive
	directives []*directive
}

func (fa *fileAllows) add(line int, d *directive) {
	m := fa.byLine[line]
	if m == nil {
		m = make(map[string][]*directive)
		fa.byLine[line] = m
	}
	for _, r := range d.rules {
		m[r] = append(m[r], d)
	}
}

// allow reports whether a finding of rule at line is silenced, marking
// every matching directive as used.
func (fa *fileAllows) allow(line int, rule string) bool {
	ds := fa.byLine[line][rule]
	for _, d := range ds {
		d.used[rule] = true
	}
	return len(ds) > 0
}

// directiveRules parses "//simlint:allow wallclock rand — reason" into
// its rule list, or nil if the comment is not a directive. Parsing stops
// at the first token that is not a known rule name: everything after is
// commentary.
func directiveRules(text string) []string {
	const prefix = "//simlint:allow"
	if !strings.HasPrefix(text, prefix) {
		return nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	if rest == "" {
		return nil
	}
	var rules []string
	for _, tok := range strings.Fields(rest) {
		if !knownRules[tok] {
			break
		}
		rules = append(rules, tok)
	}
	return rules
}

// collectAllows builds the silence table for one file: each directive
// covers its own line and the next; a directive in a function's doc
// comment covers the whole function body.
func collectAllows(fset *token.FileSet, file *ast.File) *fileAllows {
	fa := &fileAllows{byLine: make(map[int]map[string][]*directive)}
	docDirectives := make(map[*ast.Comment]bool)
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			rules := directiveRules(c.Text)
			if rules == nil {
				continue
			}
			docDirectives[c] = true
			d := &directive{pos: fset.Position(c.Pos()), rules: rules, used: make(map[string]bool)}
			fa.directives = append(fa.directives, d)
			from := fset.Position(fd.Pos()).Line
			to := fset.Position(fd.End()).Line
			for line := from; line <= to; line++ {
				fa.add(line, d)
			}
		}
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if docDirectives[c] {
				continue
			}
			rules := directiveRules(c.Text)
			if rules == nil {
				continue
			}
			d := &directive{pos: fset.Position(c.Pos()), rules: rules, used: make(map[string]bool)}
			fa.directives = append(fa.directives, d)
			line := fset.Position(c.Pos()).Line
			fa.add(line, d)
			fa.add(line+1, d)
		}
	}
	return fa
}

// CheckModule runs every rule over the packages as one unit — the
// cross-package contract rules (readonly's mutating-method fixed point,
// hashexclude's field-type resolution) see the whole set — and returns
// the findings that are not silenced by directives, sorted by position.
// Unless opts.NoAudit is set, directives that silenced nothing are
// reported under the unusedallow rule.
func CheckModule(pkgs []*Package, opts *Options) []Finding {
	mod := newModule(pkgs)
	allowsByFile := make(map[string]*fileAllows)
	var raw []Finding
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			name := pkg.Fset.Position(file.Pos()).Filename
			allowsByFile[name] = collectAllows(pkg.Fset, file)
			fc := &fileChecker{pkg: pkg, mod: mod, file: file, imports: importNames(file), opts: opts}
			raw = append(raw, fc.check()...)
		}
		raw = append(raw, checkHashExclude(pkg, opts)...)
	}
	var out []Finding
	for _, f := range raw {
		if fa := allowsByFile[f.Pos.Filename]; fa != nil && fa.allow(f.Pos.Line, f.Rule) {
			continue
		}
		out = append(out, f)
	}
	if opts == nil || (!opts.NoAudit && !opts.disabled(RuleUnusedAllow)) {
		out = append(out, auditAllows(allowsByFile)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// auditAllows reports every directive rule that silenced no finding: a
// stale exemption either outlived the code it excused or names the
// wrong rule, and both deserve removal.
func auditAllows(allowsByFile map[string]*fileAllows) []Finding {
	var out []Finding
	for _, fa := range allowsByFile {
		for _, d := range fa.directives {
			for _, r := range d.rules {
				if d.used[r] {
					continue
				}
				out = append(out, Finding{ //simlint:allow maprange — caller sorts all findings
					Rule: RuleUnusedAllow,
					Pos:  d.pos,
					Msg: fmt.Sprintf("//simlint:allow %s suppresses no finding; remove the stale directive "+
						"(or fix its rule name)", r),
				})
			}
		}
	}
	return out
}

// Check runs every rule over one package in isolation. Cross-package
// rules degrade to whatever type information the package carries;
// prefer CheckModule for whole-module runs.
func Check(pkg *Package) []Finding {
	return CheckModule([]*Package{pkg}, &Options{NoAudit: true})
}

// importNames maps the identifiers a file uses for its imports to import
// paths, honouring renames ("crand" -> "crypto/rand"). Dot and blank
// imports are skipped: neither produces a selector the rules match on.
func importNames(file *ast.File) map[string]string {
	out := make(map[string]string)
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "." || name == "_" {
			continue
		}
		out[name] = path
	}
	return out
}
