// Package bench is the machine-readable benchmark harness: it runs the
// fixed simulation matrix of the repo's Go benchmarks (bench_test.go)
// exactly once per point with the host performance monitor attached,
// and reports per-benchmark wall time, simulated cycles, throughput,
// allocations and phase attribution as a BENCH_<stamp>.json document.
//
// The report splits metrics into two classes. Deterministic counters —
// simulated cycles, engine handoffs, memory references, point counts —
// are a function of the simulation alone and must reproduce exactly;
// Compare treats any drift as a regression, which is what the CI gate
// runs against bench_baseline.json. Wall-clock metrics (ns, cycles/sec)
// vary with the host and are reported for trajectory, never gated.
// Allocations sit in between: near-deterministic, gated with a relative
// tolerance.
package bench

import (
	"fmt"
	"io"

	"clustersim/internal/apps"
	"clustersim/internal/apps/registry"
	"clustersim/internal/core"
	"clustersim/internal/experiments"
	"clustersim/internal/perf"
)

// Spec is one named benchmark: a fixed sweep of simulation points
// measured as a unit, mirroring one sub-benchmark of bench_test.go.
type Spec struct {
	Name     string
	App      string
	Clusters []int
	CachesKB []int
}

// Points returns how many simulation runs the spec covers.
func (s Spec) Points() int { return len(s.Clusters) * len(s.CachesKB) }

// finiteApps are the finite-capacity figure applications (Figures 4-8),
// matching BenchmarkFig4..BenchmarkFig8.
var finiteApps = []string{"raytrace", "mp3d", "barnes", "fmm", "volrend"}

// DefaultSpecs is the harness's fixed matrix, mirroring bench_test.go:
// every Figure 2 panel (infinite caches across cluster sizes) and every
// finite-capacity figure (cache sizes × cluster sizes).
func DefaultSpecs() []Spec {
	var specs []Spec
	for _, app := range experiments.Fig2Apps {
		specs = append(specs, Spec{
			Name:     "fig2/" + app,
			App:      app,
			Clusters: experiments.ClusterSizes,
			CachesKB: []int{0},
		})
	}
	for _, app := range finiteApps {
		specs = append(specs, Spec{
			Name:     "finite/" + app,
			App:      app,
			Clusters: experiments.ClusterSizes,
			CachesKB: experiments.FiniteCachesKB,
		})
	}
	return specs
}

// FilterApps keeps only the specs whose application is in keep (nil
// keeps everything). Order is preserved.
func FilterApps(specs []Spec, keep []string) []Spec {
	if len(keep) == 0 {
		return specs
	}
	want := make(map[string]bool, len(keep))
	for _, a := range keep {
		want[a] = true
	}
	var out []Spec
	for _, s := range specs {
		if want[s.App] {
			out = append(out, s)
		}
	}
	return out
}

// Options configures one harness run.
type Options struct {
	// Procs is the simulated machine size (the repo's Go benchmarks use
	// 16).
	Procs int
	// Size selects the problem scale (the Go benchmarks use
	// apps.SizeTest).
	Size apps.Size
	// Progress, when non-nil, receives a one-line report per finished
	// benchmark (typically os.Stderr).
	Progress io.Writer
}

// Measurement is one benchmark's aggregate over its simulation points.
// SimCycles, Handoffs, Refs and Points are deterministic; WallNS,
// CyclesPerSec, EventsPerSec and Phases are host-dependent; Allocs and
// AllocBytes are near-deterministic.
type Measurement struct {
	Name         string              `json:"name"`
	Points       int                 `json:"points"`
	WallNS       int64               `json:"wallNs"`
	SimCycles    int64               `json:"simCycles"`
	CyclesPerSec float64             `json:"cyclesPerSec"`
	Handoffs     uint64              `json:"handoffs"`
	Refs         uint64              `json:"refs"`
	EventsPerSec float64             `json:"eventsPerSec"`
	Allocs       uint64              `json:"allocs"`
	AllocBytes   uint64              `json:"allocBytes"`
	Phases       perf.PhaseBreakdown `json:"phases"`
}

// Run executes every spec once per point and aggregates the per-point
// monitor reports. Points within a spec run back to back, each on a
// fresh machine with its own monitor, exactly as the Go benchmarks do.
func Run(specs []Spec, opt Options) ([]Measurement, error) {
	out := make([]Measurement, 0, len(specs))
	for _, spec := range specs {
		w, err := registry.Lookup(spec.App)
		if err != nil {
			return nil, err
		}
		m := Measurement{Name: spec.Name}
		for _, kb := range spec.CachesKB {
			for _, cs := range spec.Clusters {
				cfg := core.DefaultConfig()
				cfg.Procs = opt.Procs
				cfg.ClusterSize = cs
				cfg.CacheKBPerProc = kb
				mon := perf.New()
				cfg.Perf = mon
				res, err := w.Run(cfg, opt.Size)
				if err != nil {
					return nil, fmt.Errorf("bench: %s (cluster %d, cache %d KB): %w", spec.Name, cs, kb, err)
				}
				rep := mon.Report()
				m.Points++
				m.WallNS += rep.WallNS
				m.SimCycles += res.ExecTime
				m.Handoffs += rep.Handoffs
				m.Refs += rep.Refs
				m.Allocs += rep.Allocs
				m.AllocBytes += rep.AllocBytes
				m.Phases.AppNS += rep.Phases.AppNS
				m.Phases.SchedNS += rep.Phases.SchedNS
				m.Phases.CoherenceNS += rep.Phases.CoherenceNS
			}
		}
		if sec := float64(m.WallNS) / 1e9; sec > 0 {
			m.CyclesPerSec = float64(m.SimCycles) / sec
			m.EventsPerSec = float64(m.Handoffs+m.Refs) / sec
		}
		if opt.Progress != nil {
			fmt.Fprintf(opt.Progress, "bench: %-18s %2d points  %8.1f ms  %12d simcycles  %.3g cycles/s\n",
				m.Name, m.Points, float64(m.WallNS)/1e6, m.SimCycles, m.CyclesPerSec)
		}
		out = append(out, m)
	}
	return out, nil
}
