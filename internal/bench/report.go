package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"clustersim/internal/perf"
)

// SchemaV1 identifies the BENCH document layout (see EXPERIMENTS.md for
// the field-by-field schema).
const SchemaV1 = "clustersim/bench/v1"

// Report is one BENCH_<stamp>.json document: the harness configuration,
// the host block, and one Measurement per benchmark.
type Report struct {
	Schema     string        `json:"schema"`
	Stamp      string        `json:"stamp,omitempty"` // wall-clock label; never compared
	Procs      int           `json:"procs"`
	Size       string        `json:"size"`
	Host       perf.Host     `json:"host"`
	Benchmarks []Measurement `json:"benchmarks"`
}

// WriteReport serialises the report as indented JSON, filling Schema if
// unset.
func WriteReport(w io.Writer, r *Report) error {
	if r.Schema == "" {
		r.Schema = SchemaV1
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses one BENCH document.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("bench: bad report: %w", err)
	}
	if rep.Schema != SchemaV1 {
		return nil, fmt.Errorf("bench: unknown report schema %q", rep.Schema)
	}
	return &rep, nil
}

// Tolerance bounds the accepted relative drift of near-deterministic
// counters. Allocs is the fractional increase of heap allocations that
// still passes (0.05 = +5%); decreases never gate.
type Tolerance struct {
	Allocs float64
}

// DefaultTolerance matches the CI gate: allocations may grow 5% before
// the gate trips; the strictly deterministic counters may not move at
// all.
func DefaultTolerance() Tolerance { return Tolerance{Allocs: 0.05} }

// Delta is one metric's movement between a baseline and a current
// report.
type Delta struct {
	Benchmark  string  `json:"benchmark"`
	Metric     string  `json:"metric"`
	Base       float64 `json:"base"`
	Cur        float64 `json:"cur"`
	Frac       float64 `json:"frac"` // (cur-base)/base; ±Inf when base is 0
	Regression bool    `json:"regression"`
}

// deterministicMetrics are the exact-match counters of a Measurement.
var deterministicMetrics = []struct {
	name string
	get  func(*Measurement) float64
}{
	{"points", func(m *Measurement) float64 { return float64(m.Points) }},
	{"simCycles", func(m *Measurement) float64 { return float64(m.SimCycles) }},
	{"handoffs", func(m *Measurement) float64 { return float64(m.Handoffs) }},
	{"refs", func(m *Measurement) float64 { return float64(m.Refs) }},
}

// Compare diffs cur against base. Deterministic counters (points,
// simCycles, handoffs, refs) regress on any drift; allocations regress
// when they grow beyond tol.Allocs; wall metrics are reported as
// informational deltas only. A benchmark present in base but missing
// from cur is a regression (lost coverage); extra benchmarks in cur are
// ignored. It returns every delta (informational and regressed) plus
// the regression count — the gate passes iff regressions is zero.
func Compare(base, cur *Report, tol Tolerance) (deltas []Delta, regressions int) {
	byName := make(map[string]*Measurement, len(cur.Benchmarks))
	for i := range cur.Benchmarks {
		byName[cur.Benchmarks[i].Name] = &cur.Benchmarks[i]
	}
	for i := range base.Benchmarks {
		b := &base.Benchmarks[i]
		c, ok := byName[b.Name]
		if !ok {
			deltas = append(deltas, Delta{Benchmark: b.Name, Metric: "missing", Regression: true})
			regressions++
			continue
		}
		for _, met := range deterministicMetrics {
			d := delta(b.Name, met.name, met.get(b), met.get(c))
			d.Regression = d.Base != d.Cur
			if d.Regression {
				regressions++
			}
			deltas = append(deltas, d)
		}
		da := delta(b.Name, "allocs", float64(b.Allocs), float64(c.Allocs))
		da.Regression = da.Frac > tol.Allocs
		if da.Regression {
			regressions++
		}
		deltas = append(deltas, da)
		deltas = append(deltas,
			delta(b.Name, "wallNs", float64(b.WallNS), float64(c.WallNS)),
			delta(b.Name, "cyclesPerSec", b.CyclesPerSec, c.CyclesPerSec))
	}
	return deltas, regressions
}

func delta(bench, metric string, base, cur float64) Delta {
	d := Delta{Benchmark: bench, Metric: metric, Base: base, Cur: cur}
	switch {
	case base != 0:
		d.Frac = (cur - base) / base
	case cur != 0:
		d.Frac = math.Inf(1)
	}
	return d
}

// WriteTable renders a report as a human-readable table.
func WriteTable(w io.Writer, r *Report) {
	fmt.Fprintf(w, "bench %s  procs=%d size=%s  %s %s/%s gomaxprocs=%d\n",
		stampOr(r.Stamp, "(unstamped)"), r.Procs, r.Size,
		r.Host.GoVersion, r.Host.GOOS, r.Host.GOARCH, r.Host.GOMAXPROCS)
	fmt.Fprintf(w, "%-18s %6s %12s %14s %12s %12s %8s %8s %8s\n",
		"benchmark", "points", "wall-ms", "simcycles", "cycles/s", "allocs", "app%", "sched%", "coh%")
	for i := range r.Benchmarks {
		m := &r.Benchmarks[i]
		app, sched, coh := phasePercents(m)
		fmt.Fprintf(w, "%-18s %6d %12.1f %14d %12.3g %12d %7.1f%% %7.1f%% %7.1f%%\n",
			m.Name, m.Points, float64(m.WallNS)/1e6, m.SimCycles, m.CyclesPerSec, m.Allocs,
			app, sched, coh)
	}
}

func phasePercents(m *Measurement) (app, sched, coh float64) {
	total := float64(m.Phases.AppNS + m.Phases.SchedNS + m.Phases.CoherenceNS)
	if total == 0 {
		return 0, 0, 0
	}
	return 100 * float64(m.Phases.AppNS) / total,
		100 * float64(m.Phases.SchedNS) / total,
		100 * float64(m.Phases.CoherenceNS) / total
}

// WriteDiff renders the Compare deltas (cur against base): regressions
// first, then every changed metric, then a one-line verdict. Unchanged
// deterministic counters are elided to keep the diff readable.
func WriteDiff(w io.Writer, base, cur *Report, deltas []Delta, regressions int) {
	fmt.Fprintf(w, "bench diff: %s -> %s\n", stampOr(base.Stamp, "base"), stampOr(cur.Stamp, "cur"))
	for _, d := range deltas {
		if !d.Regression && d.Base == d.Cur {
			continue // unchanged: elide
		}
		flag := " "
		if d.Regression {
			flag = "!"
		}
		fmt.Fprintf(w, "%s %-18s %-12s %14.6g -> %-14.6g (%+.2f%%)\n",
			flag, d.Benchmark, d.Metric, d.Base, d.Cur, 100*d.Frac)
	}
	if regressions > 0 {
		fmt.Fprintf(w, "bench: %d regression(s) on deterministic counters\n", regressions)
	} else {
		fmt.Fprintln(w, "bench: no regressions")
	}
}

func stampOr(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}
