package bench

import (
	"bytes"
	"strings"
	"testing"

	"clustersim/internal/apps"
	"clustersim/internal/apps/registry"
)

// smallSpecs is a two-benchmark matrix cheap enough for unit tests.
func smallSpecs() []Spec {
	return []Spec{
		{Name: "fig2/fft", App: "fft", Clusters: []int{1, 2}, CachesKB: []int{0}},
		{Name: "finite/mp3d", App: "mp3d", Clusters: []int{2}, CachesKB: []int{4, 0}},
	}
}

func smallOptions() Options {
	return Options{Procs: 8, Size: apps.SizeTest}
}

func TestDefaultSpecs(t *testing.T) {
	specs := DefaultSpecs()
	if len(specs) != 14 { // 9 fig2 panels + 5 finite figures
		t.Errorf("got %d specs, want 14", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Errorf("duplicate spec name %q", s.Name)
		}
		seen[s.Name] = true
		if _, err := registry.Lookup(s.App); err != nil {
			t.Errorf("spec %q: %v", s.Name, err)
		}
		if s.Points() == 0 {
			t.Errorf("spec %q covers no points", s.Name)
		}
	}
}

func TestFilterApps(t *testing.T) {
	specs := DefaultSpecs()
	got := FilterApps(specs, []string{"mp3d", "ocean"})
	want := []string{"fig2/ocean", "fig2/mp3d", "finite/mp3d"}
	if len(got) != len(want) {
		t.Fatalf("got %d specs, want %d", len(got), len(want))
	}
	for i, s := range got {
		if s.Name != want[i] {
			t.Errorf("spec %d = %q, want %q", i, s.Name, want[i])
		}
	}
	if all := FilterApps(specs, nil); len(all) != len(specs) {
		t.Errorf("nil filter dropped specs: %d of %d", len(all), len(specs))
	}
}

// TestRunMeasures: the harness populates every metric class and its
// deterministic counters reproduce exactly across two runs.
func TestRunMeasures(t *testing.T) {
	first, err := Run(smallSpecs(), smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 2 {
		t.Fatalf("got %d measurements, want 2", len(first))
	}
	for _, m := range first {
		if m.Points == 0 || m.SimCycles <= 0 || m.Handoffs == 0 || m.Refs == 0 {
			t.Errorf("%s: deterministic counters empty: %+v", m.Name, m)
		}
		if m.WallNS <= 0 || m.CyclesPerSec <= 0 || m.EventsPerSec <= 0 {
			t.Errorf("%s: wall metrics empty: %+v", m.Name, m)
		}
		if m.Allocs == 0 || m.AllocBytes == 0 {
			t.Errorf("%s: allocation counters empty: %+v", m.Name, m)
		}
		if sum := m.Phases.AppNS + m.Phases.SchedNS + m.Phases.CoherenceNS; sum != m.WallNS {
			t.Errorf("%s: phase spans sum to %d ns, wall is %d ns", m.Name, sum, m.WallNS)
		}
	}
	if first[0].Points != 2 || first[1].Points != 2 {
		t.Errorf("point counts = %d, %d; want 2, 2", first[0].Points, first[1].Points)
	}
	second, err := Run(smallSpecs(), smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		a, b := first[i], second[i]
		if a.SimCycles != b.SimCycles || a.Handoffs != b.Handoffs || a.Refs != b.Refs || a.Points != b.Points {
			t.Errorf("%s: deterministic counters drifted:\n run 1: %+v\n run 2: %+v", a.Name, a, b)
		}
	}
}

// TestRunBadApp: an unknown application surfaces as an error, not a
// panic or a silent skip.
func TestRunBadApp(t *testing.T) {
	_, err := Run([]Spec{{Name: "x", App: "no-such-app", Clusters: []int{1}, CachesKB: []int{0}}}, smallOptions())
	if err == nil {
		t.Fatal("want error for unknown app")
	}
}

func testReport() *Report {
	return &Report{
		Schema: SchemaV1,
		Stamp:  "test",
		Procs:  8,
		Size:   "test",
		Benchmarks: []Measurement{
			{Name: "fig2/fft", Points: 2, WallNS: 5e6, SimCycles: 100000,
				Handoffs: 2000, Refs: 30000, Allocs: 50000, AllocBytes: 4 << 20},
			{Name: "finite/mp3d", Points: 2, WallNS: 9e6, SimCycles: 220000,
				Handoffs: 4100, Refs: 61000, Allocs: 81000, AllocBytes: 6 << 20},
		},
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := testReport()
	var buf bytes.Buffer
	if err := WriteReport(&buf, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Stamp != r.Stamp || len(back.Benchmarks) != len(r.Benchmarks) ||
		back.Benchmarks[1] != r.Benchmarks[1] {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, r)
	}
	if _, err := ReadReport(strings.NewReader(`{"schema":"bogus/v9"}`)); err == nil {
		t.Error("unknown schema accepted")
	}
	if _, err := ReadReport(strings.NewReader(`not json`)); err == nil {
		t.Error("malformed report accepted")
	}
}

// TestCompareGate is the regression gate's acceptance test: zero
// regressions against the true baseline, nonzero when a deterministic
// counter is perturbed, and wall-clock drift never gates.
func TestCompareGate(t *testing.T) {
	base := testReport()

	// Identical reports: clean gate.
	if _, n := Compare(base, testReport(), DefaultTolerance()); n != 0 {
		t.Errorf("self-compare found %d regressions, want 0", n)
	}

	// Perturbed simcycles: gate trips.
	cur := testReport()
	cur.Benchmarks[0].SimCycles += 7
	deltas, n := Compare(base, cur, DefaultTolerance())
	if n == 0 {
		t.Error("perturbed simCycles passed the gate")
	}
	found := false
	for _, d := range deltas {
		if d.Benchmark == "fig2/fft" && d.Metric == "simCycles" && d.Regression {
			found = true
		}
	}
	if !found {
		t.Errorf("no simCycles regression delta recorded: %+v", deltas)
	}

	// Wall-clock drift alone: informational, never a regression.
	cur = testReport()
	cur.Benchmarks[0].WallNS *= 3
	cur.Benchmarks[1].CyclesPerSec /= 2
	if _, n := Compare(base, cur, DefaultTolerance()); n != 0 {
		t.Errorf("wall-clock drift tripped the gate: %d regressions", n)
	}

	// Allocations: within tolerance passes, beyond fails, decreases pass.
	cur = testReport()
	cur.Benchmarks[0].Allocs = uint64(float64(base.Benchmarks[0].Allocs) * 1.04)
	if _, n := Compare(base, cur, DefaultTolerance()); n != 0 {
		t.Errorf("4%% alloc growth tripped the 5%% gate: %d regressions", n)
	}
	cur.Benchmarks[0].Allocs = uint64(float64(base.Benchmarks[0].Allocs) * 1.2)
	if _, n := Compare(base, cur, DefaultTolerance()); n == 0 {
		t.Error("20% alloc growth passed the 5% gate")
	}
	cur.Benchmarks[0].Allocs = base.Benchmarks[0].Allocs / 2
	if _, n := Compare(base, cur, DefaultTolerance()); n != 0 {
		t.Error("alloc decrease tripped the gate")
	}

	// A benchmark missing from the current report is lost coverage.
	cur = testReport()
	cur.Benchmarks = cur.Benchmarks[:1]
	if _, n := Compare(base, cur, DefaultTolerance()); n == 0 {
		t.Error("missing benchmark passed the gate")
	}

	// Extra benchmarks in the current report are fine.
	cur = testReport()
	cur.Benchmarks = append(cur.Benchmarks, Measurement{Name: "new/bench", Points: 1})
	if _, n := Compare(base, cur, DefaultTolerance()); n != 0 {
		t.Error("extra benchmark tripped the gate")
	}
}

// TestRenderers: the table and diff renderers produce the headline
// facts without panicking on edge inputs.
func TestRenderers(t *testing.T) {
	r := testReport()
	var buf bytes.Buffer
	WriteTable(&buf, r)
	out := buf.String()
	for _, want := range []string{"fig2/fft", "finite/mp3d", "simcycles", "cycles/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}

	cur := testReport()
	cur.Benchmarks[0].SimCycles++
	deltas, n := Compare(r, cur, DefaultTolerance())
	buf.Reset()
	WriteDiff(&buf, r, cur, deltas, n)
	if !strings.Contains(buf.String(), "regression") {
		t.Errorf("diff missing verdict:\n%s", buf.String())
	}
	buf.Reset()
	deltas, n = Compare(r, testReport(), DefaultTolerance())
	WriteDiff(&buf, r, testReport(), deltas, n)
	if !strings.Contains(buf.String(), "no regressions") {
		t.Errorf("clean diff missing verdict:\n%s", buf.String())
	}

	// Empty report: header only, no panic.
	buf.Reset()
	WriteTable(&buf, &Report{})
	if buf.Len() == 0 {
		t.Error("empty report rendered nothing")
	}
}
