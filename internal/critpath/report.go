package critpath

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"clustersim/internal/stats"
)

// SchemaV1 identifies the critical-path document layout.
const SchemaV1 = "clustersim/critpath/v1"

// DefaultTopLocks bounds the contended-locks table in reports.
const DefaultTopLocks = 10

// Report is the exported critical-path profile of one run: the
// barrier-delimited phases with their per-PE breakdowns, the barrier
// imbalance and lock contention tables, and the critical-path walk. It
// serialises deterministically — every slice is sorted with a total
// order — so two runs of the same configuration produce byte-identical
// JSON.
type Report struct {
	Schema     string `json:"schema"`
	App        string `json:"app,omitempty"`
	Size       string `json:"size,omitempty"`
	ConfigHash string `json:"configHash,omitempty"`

	Procs    int `json:"procs"`
	Clusters int `json:"clusters"`

	ExecTime Clock `json:"execTime"`
	// IdealExecTime is the sum over phases of the perfectly balanced
	// phase span: total non-sync work divided evenly over the
	// processors, rounded up. BalanceSpeedup = ExecTime/IdealExecTime
	// is the headroom pure load balancing could buy without touching a
	// single cache miss.
	IdealExecTime  Clock   `json:"idealExecTime"`
	BalanceSpeedup float64 `json:"balanceSpeedup"`

	Phases       []PhaseReport   `json:"phases"`
	Barriers     []BarrierReport `json:"barriers,omitempty"`
	Locks        []LockReport    `json:"locks,omitempty"`
	LocksTotal   int             `json:"locksTotal,omitempty"` // locks seen, before the top-N cut
	CriticalPath []PathLink      `json:"criticalPath"`
	LastArrivers []PECount       `json:"lastArrivers,omitempty"`
}

// PhaseReport is one barrier-delimited interval of the run. The per-PE
// breakdowns of all phases tile each processor's whole-run breakdown
// exactly.
type PhaseReport struct {
	Index  int    `json:"index"`
	Name   string `json:"name"`   // "<barrier>#<n>", or "(run end)"
	SyncID int    `json:"syncID"` // -1 for the trailing run-end phase
	Start  Clock  `json:"start"`
	End    Clock  `json:"end"`

	// LastArriver is the processor whose arrival released the phase's
	// closing barrier — the PE on the critical path through this phase.
	LastArriver     int   `json:"lastArriver"`
	ImbalanceCycles int64 `json:"imbalanceCycles"`

	Aggregate stats.Breakdown   `json:"aggregate"`
	PerPE     []stats.Breakdown `json:"perPE"`
}

// Span returns the phase's length in cycles.
func (p PhaseReport) Span() Clock { return p.End - p.Start }

// Work returns the phase's aggregate non-sync cycles — the load a
// perfect balancer would spread evenly.
func (p PhaseReport) Work() int64 {
	return p.Aggregate.CPU + p.Aggregate.LoadStall + p.Aggregate.MergeStall
}

// IdealSpan returns the phase's perfectly balanced span: Work spread
// evenly over n processors, rounded up.
func (p PhaseReport) IdealSpan(n int) Clock {
	if n <= 0 {
		return p.Span()
	}
	return Clock((p.Work() + int64(n) - 1) / int64(n))
}

// BarrierReport aggregates one barrier's release episodes.
type BarrierReport struct {
	Name         string    `json:"name"`
	ID           int       `json:"id"`
	Participants int       `json:"participants"`
	Episodes     int       `json:"episodes"`
	WaitCycles   int64     `json:"waitCycles"`
	MaxWait      int64     `json:"maxWait"`
	LastArrivers []PECount `json:"lastArrivers,omitempty"`
}

// LockReport aggregates one lock's contention profile.
type LockReport struct {
	Name          string         `json:"name"`
	ID            int            `json:"id"`
	Acquisitions  uint64         `json:"acquisitions"`
	Contended     uint64         `json:"contended"`
	HoldCycles    int64          `json:"holdCycles"`
	MaxHold       int64          `json:"maxHold"`
	WaitCycles    int64          `json:"waitCycles"`
	MaxWait       int64          `json:"maxWait"`
	MaxQueueDepth int            `json:"maxQueueDepth"`
	Pairs         []HolderWaiter `json:"pairs,omitempty"`
}

// HolderWaiter attributes wait cycles on a lock from the waiter to the
// holder whose release granted it.
type HolderWaiter struct {
	Holder     int   `json:"holder"`
	Waiter     int   `json:"waiter"`
	WaitCycles int64 `json:"waitCycles"`
}

// maxPairsPerLock bounds the holder→waiter pairs listed per lock.
const maxPairsPerLock = 6

// PathLink is one step of the critical path: the processor that bound
// one phase and how its span there decomposed.
type PathLink struct {
	Phase      int             `json:"phase"`
	PE         int             `json:"pe"`
	SpanCycles Clock           `json:"spanCycles"`
	Breakdown  stats.Breakdown `json:"breakdown"`
}

// PECount counts how often one processor was a last arriver.
type PECount struct {
	PE    int    `json:"pe"`
	Count uint64 `json:"count"`
}

// Report builds the exported profile, listing the topLocks most
// contended locks by wait cycles (ties broken by sync ID, a total
// order). topLocks <= 0 uses DefaultTopLocks. Call after Finish.
func (a *Analyzer) Report(topLocks int) *Report {
	if !a.finished {
		panic("critpath: Report before Finish")
	}
	if topLocks <= 0 {
		topLocks = DefaultTopLocks
	}
	r := &Report{
		Schema:   SchemaV1,
		Procs:    a.procs,
		Clusters: a.clusters,
		ExecTime: a.execTime,
		Phases:   make([]PhaseReport, 0, len(a.phases)),
	}
	lastBy := make([]uint64, a.procs)
	for i, ph := range a.phases {
		pr := PhaseReport{
			Index: i, Name: ph.name, SyncID: ph.syncID,
			Start: ph.start, End: ph.end,
			LastArriver: ph.last, ImbalanceCycles: ph.imbalance,
			PerPE: ph.perPE,
		}
		for _, b := range ph.perPE {
			pr.Aggregate = pr.Aggregate.Plus(b)
		}
		r.Phases = append(r.Phases, pr)
		r.IdealExecTime += pr.IdealSpan(a.procs)
		lastBy[ph.last]++
		link := PathLink{Phase: i, PE: ph.last, SpanCycles: pr.Span()}
		if ph.last < len(ph.perPE) {
			link.Breakdown = ph.perPE[ph.last]
		}
		r.CriticalPath = append(r.CriticalPath, link)
	}
	if r.IdealExecTime > 0 {
		r.BalanceSpeedup = float64(r.ExecTime) / float64(r.IdealExecTime)
	}
	for pe, n := range lastBy {
		if n > 0 {
			r.LastArrivers = append(r.LastArrivers, PECount{PE: pe, Count: n})
		}
	}
	r.Barriers = a.barrierReports()
	r.Locks, r.LocksTotal = a.lockReports(topLocks)
	return r
}

// barrierReports lists every barrier with at least one episode, in
// sync-ID order.
func (a *Analyzer) barrierReports() []BarrierReport {
	ids := make([]int, 0, len(a.barriers))
	for id := range a.barriers { //simlint:allow maprange — fully sorted below
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var out []BarrierReport
	for _, id := range ids {
		b := a.barriers[id]
		if b.episodes == 0 {
			continue
		}
		br := BarrierReport{
			Name: a.syncName(id), ID: id,
			Episodes: b.episodes, WaitCycles: b.waitCycles, MaxWait: b.maxWait,
		}
		if id < len(a.syncs) {
			br.Participants = a.syncs[id].Participants
		}
		for pe, n := range b.lastBy {
			if n > 0 {
				br.LastArrivers = append(br.LastArrivers, PECount{PE: pe, Count: n})
			}
		}
		out = append(out, br)
	}
	return out
}

// lockReports ranks locks with at least one acquisition by wait
// cycles, then hold cycles, then sync ID, cut to the top n; the second
// result is the count before the cut.
func (a *Analyzer) lockReports(n int) ([]LockReport, int) {
	var out []LockReport
	for id, l := range a.locks {
		if l.acquisitions == 0 {
			continue
		}
		out = append(out, LockReport{ //simlint:allow maprange — fully sorted below
			Name: a.syncName(id), ID: id,
			Acquisitions: l.acquisitions, Contended: l.contended,
			HoldCycles: l.holdCycles, MaxHold: l.maxHold,
			WaitCycles: l.waitCycles, MaxWait: l.maxWait,
			MaxQueueDepth: l.maxQueue,
			Pairs:         sortPairs(l.pairs),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WaitCycles != out[j].WaitCycles {
			return out[i].WaitCycles > out[j].WaitCycles
		}
		if out[i].HoldCycles != out[j].HoldCycles {
			return out[i].HoldCycles > out[j].HoldCycles
		}
		return out[i].ID < out[j].ID
	})
	total := len(out)
	if len(out) > n {
		out = out[:n]
	}
	return out, total
}

func sortPairs(pairs map[pairKey]int64) []HolderWaiter {
	if len(pairs) == 0 {
		return nil
	}
	out := make([]HolderWaiter, 0, len(pairs))
	for k, w := range pairs { //simlint:allow maprange — fully sorted below
		out = append(out, HolderWaiter{Holder: int(k.holder), Waiter: int(k.waiter), WaitCycles: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WaitCycles != out[j].WaitCycles {
			return out[i].WaitCycles > out[j].WaitCycles
		}
		if out[i].Holder != out[j].Holder {
			return out[i].Holder < out[j].Holder
		}
		return out[i].Waiter < out[j].Waiter
	})
	if len(out) > maxPairsPerLock {
		out = out[:maxPairsPerLock]
	}
	return out
}

// Summary is the compact critical-path block embedded in telemetry run
// manifests.
type Summary struct {
	Phases         int     `json:"phases"`
	ExecTime       Clock   `json:"execTime"`
	IdealExecTime  Clock   `json:"idealExecTime"`
	BalanceSpeedup float64 `json:"balanceSpeedup"`
	CriticalPE     int     `json:"criticalPE"`
	TopLock        string  `json:"topLock,omitempty"`
	TopLockWait    int64   `json:"topLockWaitCycles,omitempty"`
}

// Summary condenses the report for a run manifest. CriticalPE is the
// processor that bound the most phases (ties to the lowest PE).
func (r *Report) Summary() *Summary {
	s := &Summary{
		Phases: len(r.Phases), ExecTime: r.ExecTime,
		IdealExecTime: r.IdealExecTime, BalanceSpeedup: r.BalanceSpeedup,
	}
	var best uint64
	for _, pc := range r.LastArrivers {
		if pc.Count > best {
			best, s.CriticalPE = pc.Count, pc.PE
		}
	}
	if len(r.Locks) > 0 {
		s.TopLock = r.Locks[0].Name
		s.TopLockWait = r.Locks[0].WaitCycles
	}
	return s
}

// WriteReport writes r as indented JSON.
func WriteReport(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses one critical-path document.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("critpath: bad critpath document: %w", err)
	}
	if r.Schema != SchemaV1 {
		return nil, fmt.Errorf("critpath: unknown critpath schema %q", r.Schema)
	}
	return &r, nil
}

func pctI(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// WriteFlat renders the report as a pprof-style flat table: phases
// ranked by span with their breakdown split, last arriver and
// imbalance, then the barrier and contended-lock tables and the
// critical-path summary.
func WriteFlat(w io.Writer, r *Report) {
	fmt.Fprintf(w, "critical path")
	if r.App != "" {
		fmt.Fprintf(w, ": %s (%s size)", r.App, r.Size)
	}
	fmt.Fprintf(w, "  procs=%d clusters=%d\n", r.Procs, r.Clusters)
	fmt.Fprintf(w, "exec %d cycles, balanced ideal %d cycles (%.2fx headroom), %d phases\n\n",
		r.ExecTime, r.IdealExecTime, r.BalanceSpeedup, len(r.Phases))

	fmt.Fprintf(w, "%-4s %-18s %10s %6s %6s %6s %6s %6s %5s %10s\n",
		"#", "phase", "span", "span%", "cpu%", "load%", "merge%", "sync%", "last", "imbalance")
	for _, ph := range r.Phases {
		tot := ph.Aggregate.Total()
		fmt.Fprintf(w, "%-4d %-18s %10d %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% P%-4d %10d\n",
			ph.Index, ph.Name, ph.Span(), pctI(int64(ph.Span()), int64(r.ExecTime)),
			pctI(ph.Aggregate.CPU, tot), pctI(ph.Aggregate.LoadStall, tot),
			pctI(ph.Aggregate.MergeStall, tot), pctI(ph.Aggregate.SyncWait, tot),
			ph.LastArriver, ph.ImbalanceCycles)
	}

	if len(r.Barriers) > 0 {
		fmt.Fprintf(w, "\nbarriers:\n")
		fmt.Fprintf(w, "%-18s %5s %9s %12s %10s  %s\n",
			"name", "width", "episodes", "wait-cyc", "max-wait", "last arrivers")
		for _, b := range r.Barriers {
			fmt.Fprintf(w, "%-18s %5d %9d %12d %10d ",
				b.Name, b.Participants, b.Episodes, b.WaitCycles, b.MaxWait)
			for i, pc := range b.LastArrivers {
				if i > 0 {
					fmt.Fprintf(w, ",")
				}
				fmt.Fprintf(w, " P%d×%d", pc.PE, pc.Count)
			}
			fmt.Fprintln(w)
		}
	}

	if len(r.Locks) > 0 {
		fmt.Fprintf(w, "\ncontended locks (top %d of %d by wait cycles):\n", len(r.Locks), r.LocksTotal)
		fmt.Fprintf(w, "%-18s %9s %9s %10s %10s %6s  %s\n",
			"name", "acquires", "contended", "wait-cyc", "hold-cyc", "maxq", "holder→waiter")
		for _, l := range r.Locks {
			fmt.Fprintf(w, "%-18s %9d %9d %10d %10d %6d ",
				l.Name, l.Acquisitions, l.Contended, l.WaitCycles, l.HoldCycles, l.MaxQueueDepth)
			for i, p := range l.Pairs {
				if i > 0 {
					fmt.Fprintf(w, ",")
				}
				fmt.Fprintf(w, " P%d→P%d×%d", p.Holder, p.Waiter, p.WaitCycles)
			}
			fmt.Fprintln(w)
		}
	}

	if len(r.LastArrivers) > 0 {
		fmt.Fprintf(w, "\ncritical path (phases bound per PE):")
		for _, pc := range r.LastArrivers {
			fmt.Fprintf(w, "  P%d×%d", pc.PE, pc.Count)
		}
		fmt.Fprintln(w)
	}
}

// WriteDiff renders the per-phase delta between two reports (new minus
// old), matched by phase name, ranked by absolute span change. Phases
// present on only one side appear with the other side treated as zero.
func WriteDiff(w io.Writer, old, cur *Report) {
	type row struct {
		name                        string
		dSpan, dSync, dWork, dImbal int64
	}
	oldBy := make(map[string]PhaseReport, len(old.Phases))
	for _, ph := range old.Phases {
		oldBy[ph.Name] = ph
	}
	seen := make(map[string]bool)
	var rows []row
	addRow := func(name string, o, n PhaseReport) {
		rows = append(rows, row{
			name:   name,
			dSpan:  int64(n.Span()) - int64(o.Span()),
			dSync:  n.Aggregate.SyncWait - o.Aggregate.SyncWait,
			dWork:  n.Work() - o.Work(),
			dImbal: n.ImbalanceCycles - o.ImbalanceCycles,
		})
	}
	for _, ph := range cur.Phases {
		seen[ph.Name] = true
		addRow(ph.Name, oldBy[ph.Name], ph)
	}
	for _, ph := range old.Phases {
		if !seen[ph.Name] {
			addRow(ph.Name, ph, PhaseReport{})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		ai, aj := abs64(rows[i].dSpan), abs64(rows[j].dSpan)
		if ai != aj {
			return ai > aj
		}
		return rows[i].name < rows[j].name
	})
	fmt.Fprintf(w, "critpath diff (new - old): Δexec %+d cycles  Δideal %+d cycles\n",
		int64(cur.ExecTime)-int64(old.ExecTime),
		int64(cur.IdealExecTime)-int64(old.IdealExecTime))
	fmt.Fprintf(w, "%-18s %12s %12s %12s %12s\n",
		"phase", "Δspan", "Δsync-cyc", "Δwork-cyc", "Δimbalance")
	for _, rw := range rows {
		fmt.Fprintf(w, "%-18s %+12d %+12d %+12d %+12d\n",
			rw.name, rw.dSpan, rw.dSync, rw.dWork, rw.dImbal)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
