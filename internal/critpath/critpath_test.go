package critpath

import (
	"bytes"
	"strings"
	"testing"

	"clustersim/internal/stats"
)

// driveAnalyzer replays a small hand-built run: 2 PEs, one barrier
// closing two phases, one contended lock.
func driveAnalyzer() *Analyzer {
	a := New()
	a.Start(2, 1)
	a.DefineSync(0, KindBarrier, "main", 2)
	a.DefineSync(1, KindLock, "tally", 0)
	a.NoteReset(0)

	// Phase 1: PE0 computes 100, PE1 computes 60 then waits 40.
	a.BarrierRelease(0,
		[]Arrival{{PE: 1, At: 60}, {PE: 0, At: 100}}, 100,
		[]stats.Breakdown{
			{CPU: 100},
			{CPU: 60, SyncWait: 40},
		})

	// Lock episode inside phase 2: PE0 holds [100,130); PE1 blocks at
	// 110 and is granted at 130.
	a.LockAcquired(1, 0, 100)
	a.LockBlocked(1, 1, 110, 1)
	a.LockHandoff(1, 0, 1, 110, 130, 130)
	a.LockReleased(1, 1, 150)

	// Phase 2: PE1 is now the straggler.
	a.BarrierRelease(0,
		[]Arrival{{PE: 0, At: 160}, {PE: 1, At: 200}}, 200,
		[]stats.Breakdown{
			{CPU: 140, SyncWait: 60},
			{CPU: 140, SyncWait: 60},
		})

	// Run end: both finish at 220.
	a.Finish(220, []Clock{220, 220}, []stats.Breakdown{
		{CPU: 160, SyncWait: 60},
		{CPU: 160, SyncWait: 60},
	})
	return a
}

func TestAnalyzerPhases(t *testing.T) {
	r := driveAnalyzer().Report(0)
	if len(r.Phases) != 3 {
		t.Fatalf("phases = %d, want 3 (two barrier phases + run end)", len(r.Phases))
	}
	p := r.Phases[0]
	if p.Name != "main#1" || p.Start != 0 || p.End != 100 || p.LastArriver != 0 {
		t.Errorf("phase 0 = %+v", p)
	}
	if p.ImbalanceCycles != 40 {
		t.Errorf("phase 0 imbalance = %d, want 40", p.ImbalanceCycles)
	}
	if want := (stats.Breakdown{CPU: 60, SyncWait: 40}); p.PerPE[1] != want {
		t.Errorf("phase 0 PE1 = %+v, want %+v", p.PerPE[1], want)
	}
	p = r.Phases[1]
	if p.Name != "main#2" || p.Start != 100 || p.End != 200 || p.LastArriver != 1 {
		t.Errorf("phase 1 = %+v", p)
	}
	// Phase deltas, not cumulative values.
	if want := (stats.Breakdown{CPU: 40, SyncWait: 60}); p.PerPE[0] != want {
		t.Errorf("phase 1 PE0 = %+v, want %+v", p.PerPE[0], want)
	}
	p = r.Phases[2]
	if p.Name != "(run end)" || p.SyncID != -1 || p.Start != 200 || p.End != 220 {
		t.Errorf("run-end phase = %+v", p)
	}
	// Tiling: phase deltas per PE sum to the final cumulative breakdown.
	for pe := 0; pe < 2; pe++ {
		var sum stats.Breakdown
		for _, ph := range r.Phases {
			sum = sum.Plus(ph.PerPE[pe])
		}
		if want := (stats.Breakdown{CPU: 160, SyncWait: 60}); sum != want {
			t.Errorf("PE%d phase sum = %+v, want %+v", pe, sum, want)
		}
	}
}

func TestAnalyzerIdealSpeedup(t *testing.T) {
	r := driveAnalyzer().Report(0)
	// Work: phase 0 = 160 CPU, phase 1 = 120, phase 2 = 40; over 2 PEs
	// ideal spans are 80, 60, 20 → ideal exec 160 of 220.
	if r.IdealExecTime != 160 {
		t.Errorf("ideal exec = %d, want 160", r.IdealExecTime)
	}
	if want := 220.0 / 160.0; r.BalanceSpeedup != want {
		t.Errorf("balance speedup = %v, want %v", r.BalanceSpeedup, want)
	}
}

func TestAnalyzerBarriersAndLocks(t *testing.T) {
	r := driveAnalyzer().Report(0)
	if len(r.Barriers) != 1 {
		t.Fatalf("barriers = %+v", r.Barriers)
	}
	b := r.Barriers[0]
	if b.Name != "main" || b.Episodes != 2 || b.WaitCycles != 40+0+40+0 || b.MaxWait != 40 {
		t.Errorf("barrier = %+v", b)
	}
	if len(b.LastArrivers) != 2 || b.LastArrivers[0].Count != 1 || b.LastArrivers[1].Count != 1 {
		t.Errorf("last arrivers = %+v", b.LastArrivers)
	}
	if len(r.Locks) != 1 || r.LocksTotal != 1 {
		t.Fatalf("locks = %+v", r.Locks)
	}
	l := r.Locks[0]
	if l.Name != "tally" || l.Acquisitions != 2 || l.Contended != 1 {
		t.Errorf("lock = %+v", l)
	}
	// PE0 held [100,130), PE1 held [130,150): 50 cycles, max 30.
	if l.HoldCycles != 50 || l.MaxHold != 30 {
		t.Errorf("hold = %+v", l)
	}
	if l.WaitCycles != 20 || l.MaxWait != 20 || l.MaxQueueDepth != 1 {
		t.Errorf("wait = %+v", l)
	}
	if len(l.Pairs) != 1 || l.Pairs[0] != (HolderWaiter{Holder: 0, Waiter: 1, WaitCycles: 20}) {
		t.Errorf("pairs = %+v", l.Pairs)
	}
}

func TestAnalyzerCriticalPath(t *testing.T) {
	r := driveAnalyzer().Report(0)
	if len(r.CriticalPath) != 3 {
		t.Fatalf("path = %+v", r.CriticalPath)
	}
	if r.CriticalPath[0].PE != 0 || r.CriticalPath[1].PE != 1 {
		t.Errorf("path PEs = %+v", r.CriticalPath)
	}
	if r.CriticalPath[1].SpanCycles != 100 {
		t.Errorf("path[1] span = %d", r.CriticalPath[1].SpanCycles)
	}
	s := r.Summary()
	if s.Phases != 3 || s.ExecTime != 220 || s.TopLock != "tally" || s.TopLockWait != 20 {
		t.Errorf("summary = %+v", s)
	}
}

// Virtual-time ties at a barrier go to the latest engine-order arrival
// — the processor that actually performed the release.
func TestLastArriverTieBreak(t *testing.T) {
	a := New()
	a.Start(3, 1)
	a.DefineSync(0, KindBarrier, "b", 3)
	a.NoteReset(0)
	a.BarrierRelease(0,
		[]Arrival{{PE: 2, At: 50}, {PE: 0, At: 50}, {PE: 1, At: 50}}, 50,
		[]stats.Breakdown{{CPU: 50}, {CPU: 50}, {CPU: 50}})
	a.Finish(50, []Clock{50, 50, 50}, []stats.Breakdown{{CPU: 50}, {CPU: 50}, {CPU: 50}})
	r := a.Report(0)
	if r.Phases[0].LastArriver != 1 {
		t.Errorf("last arriver = P%d, want P1 (last in arrival order)", r.Phases[0].LastArriver)
	}
}

// NoteReset discards everything recorded during initialization.
func TestNoteResetDiscardsPrefix(t *testing.T) {
	a := New()
	a.Start(2, 1)
	a.DefineSync(0, KindBarrier, "b", 2)
	a.BarrierRelease(0,
		[]Arrival{{PE: 1, At: 10}, {PE: 0, At: 30}}, 30,
		[]stats.Breakdown{{CPU: 30}, {CPU: 10, SyncWait: 20}})
	a.NoteReset(30)
	a.BarrierRelease(0,
		[]Arrival{{PE: 0, At: 70}, {PE: 1, At: 80}}, 80,
		[]stats.Breakdown{{CPU: 40, SyncWait: 10}, {CPU: 50}})
	a.Finish(50, []Clock{50, 50}, []stats.Breakdown{{CPU: 40, SyncWait: 10}, {CPU: 50}})
	r := a.Report(0)
	if len(r.Phases) != 1 {
		t.Fatalf("phases = %+v, want only the post-reset phase", r.Phases)
	}
	if p := r.Phases[0]; p.Start != 0 || p.End != 50 {
		t.Errorf("phase times not origin-relative: %+v", p)
	}
	if b := r.Barriers[0]; b.Episodes != 1 {
		t.Errorf("pre-reset episode survived: %+v", b)
	}
}

// Subset barriers record imbalance episodes but never cut phases.
func TestSubsetBarrierIsNotAPhaseBoundary(t *testing.T) {
	a := New()
	a.Start(4, 1)
	a.DefineSync(0, KindBarrier, "pair", 2)
	a.NoteReset(0)
	if name := a.BarrierRelease(0, []Arrival{{PE: 0, At: 10}, {PE: 1, At: 20}}, 20, nil); name != "" {
		t.Errorf("subset barrier closed phase %q", name)
	}
	a.Finish(40, []Clock{40, 40, 40, 40},
		[]stats.Breakdown{{CPU: 40}, {CPU: 40}, {CPU: 40}, {CPU: 40}})
	r := a.Report(0)
	if len(r.Phases) != 1 || r.Phases[0].Name != "(run end)" {
		t.Fatalf("phases = %+v, want just the run-end phase", r.Phases)
	}
	if r.Barriers[0].Episodes != 1 || r.Barriers[0].WaitCycles != 10 {
		t.Errorf("subset episode not recorded: %+v", r.Barriers[0])
	}
}

func TestReportRoundTripAndRenderers(t *testing.T) {
	r := driveAnalyzer().Report(0)
	r.App, r.Size = "toy", "test"
	var buf bytes.Buffer
	if err := WriteReport(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaV1 || got.ExecTime != r.ExecTime || len(got.Phases) != len(r.Phases) {
		t.Errorf("round trip lost data: %+v", got)
	}
	if _, err := ReadReport(strings.NewReader(`{"schema":"bogus/v9"}`)); err == nil {
		t.Error("bad schema accepted")
	}

	var flat bytes.Buffer
	WriteFlat(&flat, r)
	for _, want := range []string{"critical path: toy", "main#1", "(run end)", "tally", "P0→P1×20"} {
		if !strings.Contains(flat.String(), want) {
			t.Errorf("flat report missing %q:\n%s", want, flat.String())
		}
	}
	var diff bytes.Buffer
	WriteDiff(&diff, r, r)
	if !strings.Contains(diff.String(), "Δexec +0") {
		t.Errorf("self-diff not zero:\n%s", diff.String())
	}
}

func TestAnalyzerReusePanics(t *testing.T) {
	a := New()
	a.Start(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
	}()
	a.Start(1, 1)
}

func TestKindString(t *testing.T) {
	if KindBarrier.String() != "barrier" || KindLock.String() != "lock" || KindFlag.String() != "flag" {
		t.Error("kind names wrong")
	}
}
