// Integration tests driving the analyzer through real machine runs.
// They live in an external test package because core imports critpath:
// the analyzer itself must stay import-cycle-free.
package critpath_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"clustersim/internal/apps"
	"clustersim/internal/apps/registry"
	"clustersim/internal/core"
	"clustersim/internal/critpath"
	"clustersim/internal/telemetry"
)

// critConfig is the small clustered machine every registered
// application is analyzed on — finite caches so stall components are
// all populated.
func critConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Procs = 8
	cfg.ClusterSize = 2
	cfg.CacheKBPerProc = 16
	return cfg
}

// TestCritpathPhasesTileBreakdowns is the analyzer's load-bearing
// invariant, checked on all nine applications: the per-phase per-PE
// breakdown deltas sum exactly — component by component — to the
// whole-run Breakdown the Result reports, phases chain contiguously
// from 0 to ExecTime, and within every barrier-closed phase each PE's
// delta tiles the phase span exactly.
func TestCritpathPhasesTileBreakdowns(t *testing.T) {
	for _, w := range registry.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			cfg := critConfig()
			a := critpath.New()
			cfg.Critpath = a
			res, err := w.Run(cfg, apps.SizeTest)
			if err != nil {
				t.Fatal(err)
			}
			r := a.Report(0)
			if len(r.Phases) == 0 {
				t.Fatal("no phases recorded")
			}
			if r.ExecTime != res.ExecTime {
				t.Fatalf("report exec %d, result exec %d", r.ExecTime, res.ExecTime)
			}
			// Contiguity: phases cover [0, ExecTime] with no gaps.
			at := int64(0)
			for _, ph := range r.Phases {
				if ph.Start != at {
					t.Fatalf("phase %q starts at %d, previous ended at %d", ph.Name, ph.Start, at)
				}
				at = ph.End
			}
			if at != res.ExecTime {
				t.Fatalf("phases end at %d, run ends at %d", at, res.ExecTime)
			}
			for pe := 0; pe < cfg.Procs; pe++ {
				var sum [4]int64
				for _, ph := range r.Phases {
					d := ph.PerPE[pe]
					sum[0] += d.CPU
					sum[1] += d.LoadStall
					sum[2] += d.MergeStall
					sum[3] += d.SyncWait
					if d.CPU < 0 || d.LoadStall < 0 || d.MergeStall < 0 || d.SyncWait < 0 {
						t.Errorf("PE%d phase %q has a negative component: %+v", pe, ph.Name, d)
					}
					// Inside a barrier-closed phase every PE's delta tiles
					// the span exactly; the run-end phase tiles the PE's own
					// finish time instead.
					if ph.SyncID >= 0 {
						if d.Total() != ph.End-ph.Start {
							t.Errorf("PE%d phase %q delta totals %d, span is %d",
								pe, ph.Name, d.Total(), ph.End-ph.Start)
						}
					} else if d.Total() != res.Finish[pe]-ph.Start {
						t.Errorf("PE%d run-end delta totals %d, want %d",
							pe, d.Total(), res.Finish[pe]-ph.Start)
					}
				}
				want := res.Procs[pe].Breakdown
				if sum[0] != want.CPU || sum[1] != want.LoadStall ||
					sum[2] != want.MergeStall || sum[3] != want.SyncWait {
					t.Errorf("PE%d phase sum %v != whole-run breakdown %+v", pe, sum, want)
				}
			}
		})
	}
}

// TestCritpathDeterminism requires byte-identical analyzer JSON across
// two runs of the same configuration, for every application.
func TestCritpathDeterminism(t *testing.T) {
	for _, w := range registry.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			run := func() []byte {
				t.Helper()
				cfg := critConfig()
				a := critpath.New()
				cfg.Critpath = a
				if _, err := w.Run(cfg, apps.SizeTest); err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := critpath.WriteReport(&buf, a.Report(0)); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			first, second := run(), run()
			if !bytes.Equal(first, second) {
				t.Errorf("critpath reports differ across identical runs:\n run 1: %.200s\n run 2: %.200s",
					first, second)
			}
			if !bytes.Contains(first, []byte(critpath.SchemaV1)) {
				t.Errorf("report missing schema header: %.120s", first)
			}
		})
	}
}

// TestCritpathReadOnly pins the attachment contract: with the analyzer
// attached, the config hash and the Result JSON stay byte-identical to
// an unanalyzed run, for every application.
func TestCritpathReadOnly(t *testing.T) {
	for _, w := range registry.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			run := func(analyze bool) ([]byte, string) {
				t.Helper()
				cfg := critConfig()
				if analyze {
					cfg.Critpath = critpath.New()
				}
				res, err := w.Run(cfg, apps.SizeTest)
				if err != nil {
					t.Fatal(err)
				}
				blob, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				hash, err := telemetry.HashConfig(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return blob, hash
			}
			plain, hash1 := run(false)
			analyzed, hash2 := run(true)
			if hash2 != hash1 {
				t.Errorf("Critpath changed the config hash: %s vs %s", hash2, hash1)
			}
			if !bytes.Equal(plain, analyzed) {
				t.Errorf("analyzer perturbed the run:\n plain:    %.200s\n analyzed: %.200s",
					plain, analyzed)
			}
		})
	}
}

// TestDuplicateSyncNamePanics pins the registration guard: two sync
// objects with the same name on one machine are indistinguishable in
// every report, so construction must fail loudly.
func TestDuplicateSyncNamePanics(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Procs = 2
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.NewLock("shared")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate sync name did not panic")
		}
	}()
	m.NewLock("shared") //simlint:allow syncname — deliberately duplicated to prove the panic
}

// TestCritpathPhaseMarks checks the telemetry tie-in: with both
// collectors attached, every closed phase appears as a named instant on
// the telemetry timeline.
func TestCritpathPhaseMarks(t *testing.T) {
	cfg := critConfig()
	a := critpath.New()
	col := telemetry.New()
	cfg.Critpath = a
	cfg.Telemetry = col
	w, err := registry.Lookup("ocean")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(cfg, apps.SizeTest); err != nil {
		t.Fatal(err)
	}
	marks := make(map[string]bool)
	for _, mk := range col.Marks() {
		marks[mk.Name] = true
	}
	r := a.Report(0)
	for _, ph := range r.Phases {
		if ph.SyncID < 0 {
			continue // the run-end phase closes after the engine drains
		}
		if !marks["phase "+ph.Name] {
			t.Errorf("phase %q has no telemetry mark (have %d marks)", ph.Name, len(marks))
		}
	}
}
