// Package critpath is the simulator's virtual-time critical-path and
// synchronization-bottleneck analyzer.
//
// The paper explains every clustering result through *where* each
// application spends its time — barrier-dominated phases in Ocean, lock
// traffic in Cholesky-style codes, merge sharing in MP3D — yet the
// simulator's Result reports only whole-run aggregates. An Analyzer
// attached to a core.Machine (via Config.Critpath) segments the run
// into barrier-delimited phases and attributes simulated time causally
// within them:
//
//   - phases: every release of a machine-wide barrier closes a phase.
//     The analyzer snapshots each processor's cumulative
//     stats.Breakdown at the boundary; a phase's per-PE breakdown is
//     the delta against the previous boundary, so the phase breakdowns
//     of one processor tile its whole-run breakdown exactly
//     (telescoping sums — the package's load-bearing invariant, pinned
//     by TestCritpathPhasesTileBreakdowns).
//   - barrier imbalance: for every barrier release episode the analyzer
//     identifies the last arriver (latest arrival time; virtual-time
//     ties broken by engine arrival order, which is deterministic) and
//     the aggregate cycles the other participants burned waiting on it.
//   - lock contention: per-lock hold cycles, FIFO queue depth, wait
//     cycles and holder→waiter wait attribution. A waiter that sat
//     through several hold periods is attributed to the holder whose
//     release finally granted it — the last link of the dependence
//     chain.
//   - critical path: the chain of last arrivers across phases bounds
//     end-to-end virtual time; comparing each phase's span against its
//     perfectly balanced counterfactual (total non-sync work divided
//     evenly over the processors) yields the ideal execution time and
//     the speedup headroom pure load balancing could buy.
//
// Everything is called from the goroutine holding the engine's
// execution token, so the analyzer is lock-free; a nil *Analyzer
// disables every hook at the cost of one branch, exactly like the
// telemetry and profile collectors. The analyzer is read-only: it is
// excluded from the config hash and an analyzed run's Result JSON is
// byte-identical to an unanalyzed one.
package critpath

import (
	"fmt"

	"clustersim/internal/stats"
)

// Clock counts simulated cycles (mirrors engine.Clock; both are int64).
type Clock = int64

// Kind classifies a synchronisation object.
type Kind uint8

const (
	KindBarrier Kind = iota
	KindLock
	KindFlag
)

// String names the kind as it appears in reports.
func (k Kind) String() string {
	switch k {
	case KindBarrier:
		return "barrier"
	case KindLock:
		return "lock"
	case KindFlag:
		return "flag"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// SyncObject describes one registered barrier, lock or flag.
type SyncObject struct {
	ID           int
	Kind         Kind
	Name         string
	Participants int // barrier width; 0 for locks and flags
}

// Arrival is one processor's arrival at a barrier, in engine arrival
// order (the slice the machine hands to BarrierRelease lists waiters
// first, the releasing processor last).
type Arrival struct {
	PE int
	At Clock
}

// phase is one closed barrier-delimited interval, times relative to
// the measurement origin.
type phase struct {
	name      string
	syncID    int // -1 for the trailing run-end phase
	start     Clock
	end       Clock
	last      int // last-arriving PE
	imbalance int64
	perPE     []stats.Breakdown
}

// barrierAccum aggregates one barrier's episodes.
type barrierAccum struct {
	episodes   int
	waitCycles int64
	maxWait    int64
	lastBy     []uint64 // last-arrival count per PE
	phaseSeq   int      // phases this barrier has closed (names them)
}

func (b *barrierAccum) reset() {
	b.episodes, b.waitCycles, b.maxWait, b.phaseSeq = 0, 0, 0, 0
	for i := range b.lastBy {
		b.lastBy[i] = 0
	}
}

// pairKey identifies one holder→waiter dependence on a lock.
type pairKey struct {
	holder, waiter int32
}

// lockAccum aggregates one lock's contention profile.
type lockAccum struct {
	acquisitions uint64
	contended    uint64 // acquisitions that had to queue
	holdCycles   int64
	maxHold      int64
	waitCycles   int64
	maxWait      int64
	maxQueue     int

	holder    int // current holder PE, -1 when free
	holdStart Clock
	pairs     map[pairKey]int64 // wait cycles charged holder→waiter
}

func (l *lockAccum) reset(at Clock) {
	held := l.holder
	*l = lockAccum{holder: held}
	if held >= 0 {
		l.holdStart = at
	}
}

// Analyzer gathers one run's critical-path profile. Create one with
// New, attach it via core.Config.Critpath, and call Report after the
// run. All hook methods are driven by the core package.
type Analyzer struct {
	procs    int
	clusters int
	started  bool
	finished bool

	origin     Clock // virtual time of the last stats reset
	phaseStart Clock // origin-relative start of the open phase
	base       []stats.Breakdown
	phases     []phase

	syncs    []SyncObject // indexed by sync ID
	barriers map[int]*barrierAccum
	locks    map[int]*lockAccum

	execTime Clock
	finish   []Clock
}

// New creates an empty analyzer.
func New() *Analyzer {
	return &Analyzer{
		barriers: make(map[int]*barrierAccum),
		locks:    make(map[int]*lockAccum),
	}
}

// Start sizes the analyzer for a machine; core.NewMachine calls it
// before any synchronisation object exists.
func (a *Analyzer) Start(procs, clusters int) {
	if a.started {
		panic("critpath: Analyzer reused across runs; create one per run")
	}
	a.started = true
	a.procs = procs
	a.clusters = clusters
	a.base = make([]stats.Breakdown, procs)
}

// DefineSync announces a synchronisation object before any episode
// references it.
func (a *Analyzer) DefineSync(id int, kind Kind, name string, participants int) {
	for len(a.syncs) <= id {
		a.syncs = append(a.syncs, SyncObject{ID: len(a.syncs)})
	}
	a.syncs[id] = SyncObject{ID: id, Kind: kind, Name: name, Participants: participants}
	switch kind {
	case KindBarrier:
		a.barriers[id] = &barrierAccum{lastBy: make([]uint64, a.procs)}
	case KindLock:
		a.locks[id] = &lockAccum{holder: -1}
	}
}

// syncName returns the registered name of a sync object.
func (a *Analyzer) syncName(id int) string {
	if id >= 0 && id < len(a.syncs) && a.syncs[id].Name != "" {
		return a.syncs[id].Name
	}
	return fmt.Sprintf("sync%d", id)
}

// NoteReset rebaselines the analyzer at a statistics reset
// (core.Machine.BeginMeasurement): phases and sync aggregates recorded
// during initialization are discarded so the report covers exactly the
// measured interval the Result covers.
func (a *Analyzer) NoteReset(at Clock) {
	a.origin = at
	a.phaseStart = 0
	a.phases = nil
	for i := range a.base {
		a.base[i] = stats.Breakdown{}
	}
	for _, b := range a.barriers {
		b.reset()
	}
	for _, l := range a.locks {
		l.reset(0)
	}
}

// rel converts an absolute virtual time to the measurement origin.
func (a *Analyzer) rel(at Clock) Clock { return at - a.origin }

// BarrierRelease records one barrier release episode. arrivals lists
// every participant in engine arrival order (releasing processor
// last); release is the episode's release time. breakdowns, non-nil
// only for machine-wide barriers, is each processor's cumulative
// Breakdown at the release instant and closes the open phase. The
// returned name is the closed phase's name ("" when no phase closed),
// which the machine forwards to the telemetry timeline as a phase
// marker.
func (a *Analyzer) BarrierRelease(id int, arrivals []Arrival, release Clock, breakdowns []stats.Breakdown) string {
	b := a.barriers[id]
	if b == nil { // defensive: undeclared sync object
		b = &barrierAccum{lastBy: make([]uint64, a.procs)}
		a.barriers[id] = b
	}
	b.episodes++
	last := arrivals[0]
	var imbalance int64
	for _, ar := range arrivals {
		wait := release - ar.At
		imbalance += wait
		if wait > b.maxWait {
			b.maxWait = wait
		}
		// >= keeps the latest engine-order arrival among virtual-time
		// ties: deterministic, and matches who actually released.
		if ar.At >= last.At {
			last = ar
		}
	}
	b.waitCycles += imbalance
	b.lastBy[last.PE]++
	if breakdowns == nil {
		return "" // subset barrier: an episode, not a phase boundary
	}
	start, end := a.phaseStart, a.rel(release)
	perPE := make([]stats.Breakdown, len(breakdowns))
	empty := end == start
	for i, cur := range breakdowns {
		perPE[i] = cur.Minus(a.base[i])
		if perPE[i] != (stats.Breakdown{}) {
			empty = false
		}
		a.base[i] = cur
	}
	a.phaseStart = end
	if empty {
		return "" // back-to-back releases with no work between them
	}
	b.phaseSeq++
	name := fmt.Sprintf("%s#%d", a.syncName(id), b.phaseSeq)
	a.phases = append(a.phases, phase{
		name: name, syncID: id, start: start, end: end,
		last: last.PE, imbalance: imbalance, perPE: perPE,
	})
	return name
}

// lock returns the accumulator for lock id.
func (a *Analyzer) lock(id int) *lockAccum {
	l := a.locks[id]
	if l == nil { // defensive: undeclared sync object
		l = &lockAccum{holder: -1}
		a.locks[id] = l
	}
	return l
}

// LockAcquired records an uncontended acquire: pe took the free lock
// at virtual time at.
func (a *Analyzer) LockAcquired(id, pe int, at Clock) {
	l := a.lock(id)
	l.acquisitions++
	l.holder = pe
	l.holdStart = a.rel(at)
}

// LockBlocked records a contended acquire: pe queued at virtual time
// at behind depth waiters (itself included).
func (a *Analyzer) LockBlocked(id, pe int, at Clock, depth int) {
	l := a.lock(id)
	l.contended++
	if depth > l.maxQueue {
		l.maxQueue = depth
	}
}

// LockHandoff records a release that granted the lock to the
// longest-waiting processor: from released at releaseAt, and to —
// having arrived at arrival — runs from grant. The waiter's whole wait
// is attributed to from, the holder whose release finally granted it.
func (a *Analyzer) LockHandoff(id, from, to int, arrival, releaseAt, grant Clock) {
	l := a.lock(id)
	a.closeHold(l, releaseAt)
	wait := grant - arrival
	l.waitCycles += wait
	if wait > l.maxWait {
		l.maxWait = wait
	}
	if l.pairs == nil {
		l.pairs = make(map[pairKey]int64)
	}
	l.pairs[pairKey{holder: int32(from), waiter: int32(to)}] += wait
	l.acquisitions++
	l.holder = to
	l.holdStart = a.rel(grant)
}

// LockReleased records a release with an empty queue.
func (a *Analyzer) LockReleased(id, pe int, at Clock) {
	l := a.lock(id)
	a.closeHold(l, at)
	l.holder = -1
}

// closeHold charges the current hold period ending at absolute time at.
func (a *Analyzer) closeHold(l *lockAccum, at Clock) {
	hold := a.rel(at) - l.holdStart
	l.holdCycles += hold
	if hold > l.maxHold {
		l.maxHold = hold
	}
}

// Finish closes the run: the trailing phase spans from the last
// barrier boundary to each processor's completion. execTime, finish
// and final are the Result's origin-relative values; core.Machine.Run
// calls this once after the engine drains.
func (a *Analyzer) Finish(execTime Clock, finish []Clock, final []stats.Breakdown) {
	if a.finished {
		panic("critpath: Finish called twice")
	}
	a.finished = true
	a.execTime = execTime
	a.finish = append([]Clock(nil), finish...)
	// A lock still held at run end (a kernel bug core tolerates) has
	// its open hold charged through the end of the run.
	for _, l := range a.locks {
		if l.holder >= 0 {
			a.closeHold(l, a.origin+execTime)
			l.holder = -1
		}
	}
	start := a.phaseStart
	perPE := make([]stats.Breakdown, len(final))
	empty := execTime == start
	last, lastAt := 0, Clock(-1)
	var imbalance int64
	for i, cur := range final {
		perPE[i] = cur.Minus(a.base[i])
		if perPE[i] != (stats.Breakdown{}) {
			empty = false
		}
		a.base[i] = cur
		imbalance += execTime - finish[i]
		if finish[i] > lastAt { // tie: lowest PE
			last, lastAt = i, finish[i]
		}
	}
	a.phaseStart = execTime
	if empty {
		return // the run ended exactly on a barrier
	}
	a.phases = append(a.phases, phase{
		name: "(run end)", syncID: -1, start: start, end: execTime,
		last: last, imbalance: imbalance, perPE: perPE,
	})
}
