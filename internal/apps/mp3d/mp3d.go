// Package mp3d implements the paper's MP3D application: a particle-in-
// cell rarefied-fluid-flow simulation written, as the paper puts it,
// "with vector rather than parallel machines in mind". Particles are
// dealt to processors round-robin with no spatial locality, so every
// step's updates to the shared space-cell array are high-volume,
// unstructured, read-write communication — the paper's communication
// stress test. Collisions exchange velocities with the cell's previous
// occupant, which makes total momentum an exactly conserved quantity we
// verify.
package mp3d

import (
	"fmt"
	"math"
	"math/rand"

	"clustersim/internal/apps"
	"clustersim/internal/core"
)

// Params sizes one MP3D run.
type Params struct {
	Particles int
	Steps     int
}

// ParamsFor maps a size class to parameters. SizePaper is the paper's
// 50,000 particles.
func ParamsFor(size apps.Size) Params {
	switch size {
	case apps.SizeTest:
		return Params{Particles: 512, Steps: 3}
	case apps.SizePaper:
		return Params{Particles: 50000, Steps: 8}
	default:
		return Params{Particles: 10000, Steps: 6}
	}
}

// Workload registers MP3D in the application table.
func Workload() apps.Runner {
	return apps.Runner{
		Name:           "mp3d",
		Representative: "High-comm. unstructured accesses",
		PaperProblem:   "50,000 particles",
		Communication:  "High communication, unstructured",
		WorkingSet:     "large, O(n/p)",
		Run: func(cfg core.Config, size apps.Size) (*core.Result, error) {
			return Run(cfg, ParamsFor(size))
		},
	}
}

// Particle record layout (stride 64 bytes — one cache line):
// pos[3] float64 at 0, vel[3] float64 at 24, cell int at 48.
const (
	pOffPos  = 0
	pOffVel  = 24
	pOffCell = 48
	pStride  = 64
)

// Cell record layout (stride 64): count at 0, lastParticle at 8,
// momentum accumulator at 16.
const (
	cOffCount = 0
	cOffLast  = 8
	cOffMom   = 16
	cStride   = 64
)

const dt = 0.4

// Run advances the particle system and verifies momentum conservation
// and position bounds.
func Run(cfg core.Config, pr Params) (*core.Result, error) {
	if pr.Particles < 1 || pr.Steps < 1 {
		return nil, fmt.Errorf("mp3d: bad params %+v", pr)
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	n := pr.Particles
	// Space grid: roughly 8 particles per cell, as in the SPLASH runs.
	g := int(math.Cbrt(float64(n) / 8.0))
	if g < 2 {
		g = 2
	}
	nc := g * g * g

	parts := apps.NewRecs(m, n, pStride, "particles")
	cells := apps.NewRecs(m, nc, cStride, "cells")
	pos := make([][3]float64, n)
	vel := make([][3]float64, n)
	cellLast := make([]int32, nc) // Go-side cell state
	for i := range cellLast {
		cellLast[i] = -1
	}

	var startMom [3]float64
	bar := m.NewBarrierN("mp3d.main", cfg.Procs)
	res, err := m.Run(func(p *core.Proc) {
		id := p.ID()
		P := p.NumProcs()
		// Initialization: deal particles round-robin (the vector-code
		// assignment) with deterministic positions and velocities.
		rng := rand.New(rand.NewSource(int64(31 + p.ID())))
		for i := id; i < n; i += P {
			for d := 0; d < 3; d++ {
				pos[i][d] = rng.Float64() * float64(g)
				vel[i][d] = (rng.Float64() - 0.5) * 2
				parts.Write(p, i, uint64(pOffPos+8*d))
				parts.Write(p, i, uint64(pOffVel+8*d))
			}
		}
		bar.Wait(p)
		if id == 0 {
			for i := 0; i < n; i++ {
				for d := 0; d < 3; d++ {
					startMom[d] += vel[i][d]
				}
			}
		}
		apps.Begin(p, bar)

		for step := 0; step < pr.Steps; step++ {
			for i := id; i < n; i += P {
				// Move: read the particle record.
				for d := 0; d < 3; d++ {
					parts.Read(p, i, uint64(pOffPos+8*d))
					parts.Read(p, i, uint64(pOffVel+8*d))
				}
				p.Compute(12)
				var ci [3]int
				for d := 0; d < 3; d++ {
					x := pos[i][d] + vel[i][d]*dt
					// Periodic wraparound keeps momentum conserved.
					x -= math.Floor(x/float64(g)) * float64(g)
					pos[i][d] = x
					ci[d] = int(x)
					if ci[d] >= g {
						ci[d] = g - 1
					}
					parts.Write(p, i, uint64(pOffPos+8*d))
				}
				cell := (ci[0]*g+ci[1])*g + ci[2]
				parts.Write(p, i, pOffCell)
				// Cell update: read-modify-write the shared cell —
				// the unstructured communication.
				cells.Read(p, cell, cOffCount)
				cells.Write(p, cell, cOffCount)
				cells.Read(p, cell, cOffMom)
				cells.Write(p, cell, cOffMom)
				p.Compute(6)
				// Collision with the cell's previous occupant: exchange
				// velocities (elastic, momentum-preserving).
				other := int(cellLast[cell])
				if other >= 0 && other != i {
					for d := 0; d < 3; d++ {
						parts.Read(p, other, uint64(pOffVel+8*d))
						vel[i][d], vel[other][d] = vel[other][d], vel[i][d]
						parts.Write(p, other, uint64(pOffVel+8*d))
						parts.Write(p, i, uint64(pOffVel+8*d))
					}
					p.Compute(20)
				}
				cellLast[cell] = int32(i)
				cells.Write(p, cell, cOffLast)
			}
			bar.Wait(p)
		}
	})
	if err != nil {
		return nil, err
	}
	if err := verify(pos, vel, startMom, g); err != nil {
		return nil, err
	}
	return res, nil
}

// verify checks exact-permutation momentum conservation (collisions only
// swap velocity vectors) and position bounds.
func verify(pos, vel [][3]float64, startMom [3]float64, g int) error {
	var endMom [3]float64
	for i := range vel {
		for d := 0; d < 3; d++ {
			endMom[d] += vel[i][d]
			if pos[i][d] < 0 || pos[i][d] >= float64(g) {
				return fmt.Errorf("mp3d: particle %d out of bounds: %v", i, pos[i])
			}
		}
	}
	for d := 0; d < 3; d++ {
		if math.Abs(endMom[d]-startMom[d]) > 1e-6*(math.Abs(startMom[d])+float64(len(vel))) {
			return fmt.Errorf("mp3d: momentum not conserved in dim %d: %g vs %g",
				d, endMom[d], startMom[d])
		}
	}
	return nil
}
