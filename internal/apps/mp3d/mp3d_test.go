package mp3d

import (
	"testing"

	"clustersim/internal/apps"
	"clustersim/internal/core"
)

func testCfg(procs, clusterSize int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Procs = procs
	cfg.ClusterSize = clusterSize
	return cfg
}

func TestRunsAndConserves(t *testing.T) {
	res, err := Run(testCfg(4, 1), ParamsFor(apps.SizeTest))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	agg := res.Aggregate()
	if agg.References() == 0 {
		t.Fatal("no references")
	}
	// MP3D is the communication stress test: it must produce write
	// misses/upgrades from the shared cell read-modify-writes.
	if agg.Upgrades+agg.WriteMisses == 0 {
		t.Fatal("no write sharing observed; cell updates broken")
	}
}

func TestCorrectAcrossClusterSizes(t *testing.T) {
	for _, cs := range []int{1, 2, 4} {
		if _, err := Run(testCfg(4, cs), ParamsFor(apps.SizeTest)); err != nil {
			t.Errorf("cluster %d: %v", cs, err)
		}
	}
}

func TestRejectsBadParams(t *testing.T) {
	if _, err := Run(testCfg(4, 1), Params{Particles: 0, Steps: 1}); err == nil {
		t.Error("want error for zero particles")
	}
	if _, err := Run(testCfg(4, 1), Params{Particles: 10, Steps: 0}); err == nil {
		t.Error("want error for zero steps")
	}
}

func TestDeterministic(t *testing.T) {
	p := ParamsFor(apps.SizeTest)
	r1, err := Run(testCfg(4, 2), p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(testCfg(4, 2), p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExecTime != r2.ExecTime {
		t.Fatalf("nondeterministic: %d vs %d", r1.ExecTime, r2.ExecTime)
	}
}

func TestWorkloadMetadata(t *testing.T) {
	w := Workload()
	if w.Name != "mp3d" || w.Run == nil {
		t.Fatalf("workload = %+v", w)
	}
}

// TestHighCommunication checks MP3D's defining property: a large share of
// execution time is load stall even with infinite caches (the paper shows
// ~40% communication time for MP3D vs a few percent for LU).
func TestHighCommunication(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Run(testCfg(8, 1), Params{Particles: 2048, Steps: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, load, merge, _ := res.Fractions()
	if load+merge < 0.10 {
		t.Errorf("MP3D load+merge fraction %.3f too low for the communication stress test", load+merge)
	}
}

// TestClusteringHelpsMP3D: the paper finds ~15% improvement at 8-way
// clustering because communication time is so large. At small scale we
// just require clustering to help, not hurt.
func TestClusteringHelpsMP3D(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := Params{Particles: 2048, Steps: 4}
	base, err := Run(testCfg(8, 1), p)
	if err != nil {
		t.Fatal(err)
	}
	clus, err := Run(testCfg(8, 4), p)
	if err != nil {
		t.Fatal(err)
	}
	if clus.ExecTime > base.ExecTime {
		t.Errorf("clustering hurt MP3D: %d vs %d", clus.ExecTime, base.ExecTime)
	}
}
