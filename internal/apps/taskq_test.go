package apps

import (
	"sort"
	"testing"

	"clustersim/internal/core"
)

func taskMachine(t *testing.T, procs int) *core.Machine {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Procs = procs
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestTaskQueuesCoverEveryTaskOnce: under stealing, each task is served
// exactly once regardless of how unevenly the work is distributed.
func TestTaskQueuesCoverEveryTaskOnce(t *testing.T) {
	const procs = 4
	const tasks = 97
	m := taskMachine(t, procs)
	q := NewTaskQueues(m, "tq")
	bar := m.NewBarrier()
	served := make([]int, tasks)
	_, err := m.Run(func(p *core.Proc) {
		lo, hi := Chunk(tasks, p.ID(), procs)
		q.Init(p, lo, hi)
		bar.Wait(p)
		for {
			task, ok := q.Next(p)
			if !ok {
				break
			}
			served[task]++
			// Pathological imbalance: processor 0's tasks are 100×
			// heavier, forcing the others to steal.
			if p.ID() == 0 {
				p.Compute(500)
			} else {
				p.Compute(5)
			}
		}
		bar.Wait(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	for task, n := range served {
		if n != 1 {
			t.Fatalf("task %d served %d times", task, n)
		}
	}
}

// TestTaskStealingBalances: with wildly uneven task costs, stealing must
// beat the static assignment's critical path.
func TestTaskStealingBalances(t *testing.T) {
	const procs = 4
	const tasks = 64
	cost := func(task int) core.Clock {
		if task < tasks/procs {
			return 400 // all the heavy work sits in processor 0's range
		}
		return 10
	}
	run := func(steal bool) core.Clock {
		m := taskMachine(t, procs)
		q := NewTaskQueues(m, "tq")
		bar := m.NewBarrier()
		res, err := m.Run(func(p *core.Proc) {
			lo, hi := Chunk(tasks, p.ID(), procs)
			q.Init(p, lo, hi)
			bar.Wait(p)
			if steal {
				for {
					task, ok := q.Next(p)
					if !ok {
						break
					}
					p.Compute(cost(task))
				}
			} else {
				for task := lo; task < hi; task++ {
					p.Compute(cost(task))
				}
			}
			bar.Wait(p)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.ExecTime
	}
	static := run(false)
	stolen := run(true)
	if stolen >= static {
		t.Fatalf("stealing (%d) not faster than static (%d)", stolen, static)
	}
}

// TestTaskQueuesDeterministic: queue order is reproducible.
func TestTaskQueuesDeterministic(t *testing.T) {
	run := func() []int {
		m := taskMachine(t, 3)
		q := NewTaskQueues(m, "tq")
		bar := m.NewBarrier()
		var order []int
		_, err := m.Run(func(p *core.Proc) {
			lo, hi := Chunk(30, p.ID(), 3)
			q.Init(p, lo, hi)
			bar.Wait(p)
			for {
				task, ok := q.Next(p)
				if !ok {
					break
				}
				order = append(order, task)
				p.Compute(core.Clock(task%7) * 3)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order diverges at %d", i)
		}
	}
	// And it is a permutation of all tasks.
	sorted := append([]int(nil), a...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i {
			t.Fatalf("missing task %d", i)
		}
	}
}
