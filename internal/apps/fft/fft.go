// Package fft implements the paper's FFT application: a one-dimensional
// n-point complex FFT organised as the radix-√n six-step algorithm
// (SPLASH-2 style). The n points live in a √n × √n matrix whose rows are
// partitioned contiguously across processors; all communication happens
// in the three blocked matrix transposes, where each processor reads a
// different block from every other processor — the all-to-all pattern
// that, as the paper shows, clustering can reduce only by the factor
// (P-C)/(P-1).
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"clustersim/internal/apps"
	"clustersim/internal/core"
)

// Params sizes one FFT run.
type Params struct {
	M int // log2 of the point count; must be even so √n is integral
}

// ParamsFor maps a size class to parameters. SizePaper is the paper's
// 64K complex points.
func ParamsFor(size apps.Size) Params {
	switch size {
	case apps.SizeTest:
		// 4096 points: the smallest even-M size whose 64 matrix rows
		// admit the default 64-processor machine.
		return Params{M: 12}
	case apps.SizePaper:
		return Params{M: 16} // 65536 points
	default:
		// The paper's own 64K points is the smallest size at which all
		// 64 processors own at least one full cache line of matrix
		// columns (4 rows each), so the blocked transpose self-prefetches
		// within a processor instead of degenerating to lockstep
		// line-sharing; it is also cheap enough to be the default.
		return Params{M: 16}
	}
}

// Workload registers FFT in the application table.
func Workload() apps.Runner {
	return apps.Runner{
		Name:           "fft",
		Representative: "Transform methods, high-radix",
		PaperProblem:   "64K complex points, radix sqrt(n)",
		Communication:  "All-to-all, structured",
		WorkingSet:     "small (4KB), grows as sqrt(n)",
		Run: func(cfg core.Config, size apps.Size) (*core.Result, error) {
			return Run(cfg, ParamsFor(size))
		},
	}
}

const transBlock = 8 // transpose blocking factor (elements)

// Run performs the six-step FFT and verifies sampled output bins against
// a direct DFT plus Parseval's identity.
func Run(cfg core.Config, pr Params) (*core.Result, error) {
	if pr.M%2 != 0 || pr.M < 4 {
		return nil, fmt.Errorf("fft: M=%d must be even and ≥ 4", pr.M)
	}
	n := 1 << pr.M
	r := 1 << (pr.M / 2) // matrix edge = √n
	if cfg.Procs > r {
		return nil, fmt.Errorf("fft: %d processors exceed %d matrix rows", cfg.Procs, r)
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	a := apps.NewC128(m, n, "data-matrix")
	b := apps.NewC128(m, n, "transpose-matrix")
	roots := apps.NewC128(m, r, "roots") // shared read-only roots of unity for row FFTs
	input := make([]complex128, n)       // plain copy for verification

	bar := m.NewBarrierN("fft.main", cfg.Procs)
	res, err := m.Run(func(p *core.Proc) {
		lo, hi := apps.Chunk(r, p.ID(), p.NumProcs())
		// Initialization: each processor fills its rows; P0 the roots.
		rng := rand.New(rand.NewSource(int64(101 + p.ID())))
		for i := lo; i < hi; i++ {
			for j := 0; j < r; j++ {
				v := complex(rng.Float64()-0.5, rng.Float64()-0.5)
				a.Set(p, i*r+j, v)
				input[i*r+j] = v
			}
		}
		if p.ID() == 0 {
			for k := 0; k < r; k++ {
				ang := -2 * math.Pi * float64(k) / float64(r)
				roots.Set(p, k, cmplx.Exp(complex(0, ang)))
			}
		}
		apps.Begin(p, bar)

		// Step 1: transpose A → B.
		transpose(p, b, a, r, lo, hi)
		bar.Wait(p)
		// Step 2: FFT each owned row of B.
		for i := lo; i < hi; i++ {
			rowFFT(p, b, roots, i*r, r)
		}
		bar.Wait(p)
		// Step 3: twiddle B[i][j] *= w^(i·j), w = exp(-2πi/n).
		for i := lo; i < hi; i++ {
			for j := 0; j < r; j++ {
				tw := cmplx.Exp(complex(0, -2*math.Pi*float64(i)*float64(j)/float64(n)))
				p.Compute(20) // sincos
				b.Set(p, i*r+j, b.Get(p, i*r+j)*tw)
			}
		}
		bar.Wait(p)
		// Step 4: transpose B → A.
		transpose(p, a, b, r, lo, hi)
		bar.Wait(p)
		// Step 5: FFT each owned row of A.
		for i := lo; i < hi; i++ {
			rowFFT(p, a, roots, i*r, r)
		}
		bar.Wait(p)
		// Step 6: transpose A → B; B now holds the DFT in natural order.
		transpose(p, b, a, r, lo, hi)
		bar.Wait(p)
	})
	if err != nil {
		return nil, err
	}
	if err := verify(b.Data, input); err != nil {
		return nil, err
	}
	return res, nil
}

// transpose writes dst rows [lo,hi) from the corresponding columns of
// src, blocked so each B×B tile of a remote processor's rows is read
// with spatial locality — the paper's blocked all-to-all.
func transpose(p *core.Proc, dst, src *apps.C128, r, lo, hi int) {
	for jb := 0; jb < r; jb += transBlock {
		for i := lo; i < hi; i++ {
			for j := jb; j < jb+transBlock && j < r; j++ {
				dst.Set(p, i*r+j, src.Get(p, j*r+i))
				p.Compute(1)
			}
		}
	}
}

// rowFFT performs an in-place iterative radix-2 FFT on row elements
// [base, base+r) of arr, reading twiddles from the shared roots array.
func rowFFT(p *core.Proc, arr, roots *apps.C128, base, r int) {
	// Bit reversal permutation.
	for i, j := 0, 0; i < r; i++ {
		if i < j {
			vi := arr.Get(p, base+i)
			vj := arr.Get(p, base+j)
			arr.Set(p, base+i, vj)
			arr.Set(p, base+j, vi)
		}
		mask := r >> 1
		for ; j&mask != 0; mask >>= 1 {
			j &^= mask
		}
		j |= mask
	}
	for span := 1; span < r; span <<= 1 {
		step := r / (2 * span) // stride into the r-point roots table
		for k := 0; k < r; k += 2 * span {
			for t := 0; t < span; t++ {
				w := roots.Get(p, t*step)
				u := arr.Get(p, base+k+t)
				v := arr.Get(p, base+k+t+span) * w
				arr.Set(p, base+k+t, u+v)
				arr.Set(p, base+k+t+span, u-v)
				p.Compute(6)
			}
		}
	}
}

// verify checks sampled bins of the result against a direct DFT and the
// whole transform against Parseval's identity.
func verify(out, in []complex128) error {
	n := len(in)
	// Parseval: Σ|x|² = (1/n)Σ|X|².
	var ein, eout float64
	for i := 0; i < n; i++ {
		ein += real(in[i])*real(in[i]) + imag(in[i])*imag(in[i])
		eout += real(out[i])*real(out[i]) + imag(out[i])*imag(out[i])
	}
	eout /= float64(n)
	if math.Abs(ein-eout) > 1e-6*(ein+1) {
		return fmt.Errorf("fft: Parseval violated: in %g vs out/n %g", ein, eout)
	}
	// Direct DFT at sampled bins.
	rng := rand.New(rand.NewSource(7))
	for s := 0; s < 8; s++ {
		k := rng.Intn(n)
		var want complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(j) * float64(k) / float64(n)
			want += in[j] * cmplx.Exp(complex(0, ang))
		}
		if cmplx.Abs(out[k]-want) > 1e-6*(cmplx.Abs(want)+1) {
			return fmt.Errorf("fft: bin %d = %v, want %v", k, out[k], want)
		}
	}
	return nil
}
