package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"clustersim/internal/apps"
	"clustersim/internal/core"
)

func testCfg(procs, clusterSize int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Procs = procs
	cfg.ClusterSize = clusterSize
	return cfg
}

func TestTransformCorrect(t *testing.T) {
	res, err := Run(testCfg(4, 1), Params{M: 8})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Aggregate().References() == 0 {
		t.Fatal("no references")
	}
}

func TestCorrectAcrossClusterSizes(t *testing.T) {
	for _, cs := range []int{1, 2, 4} {
		if _, err := Run(testCfg(4, cs), Params{M: 8}); err != nil {
			t.Errorf("cluster %d: %v", cs, err)
		}
	}
}

func TestRejectsOddM(t *testing.T) {
	if _, err := Run(testCfg(4, 1), Params{M: 7}); err == nil {
		t.Fatal("want error for odd M")
	}
	if _, err := Run(testCfg(4, 1), Params{M: 2}); err == nil {
		t.Fatal("want error for tiny M")
	}
}

func TestRejectsTooManyProcs(t *testing.T) {
	if _, err := Run(testCfg(64, 1), Params{M: 4}); err == nil {
		t.Fatal("want error when procs exceed matrix rows")
	}
}

func TestDeterministic(t *testing.T) {
	r1, err := Run(testCfg(4, 2), Params{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(testCfg(4, 2), Params{M: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExecTime != r2.ExecTime {
		t.Fatalf("nondeterministic: %d vs %d", r1.ExecTime, r2.ExecTime)
	}
}

func TestWorkloadMetadata(t *testing.T) {
	w := Workload()
	if w.Name != "fft" || w.Run == nil {
		t.Fatalf("workload = %+v", w)
	}
	if _, err := w.Run(testCfg(4, 1), apps.SizeTest); err != nil {
		t.Fatal(err)
	}
}

// TestAllToAllLimitsClustering checks the paper's FFT finding: the
// all-to-all transpose limits clustering's communication reduction to
// the factor (P-C)/(P-1). At 8 processors with 4-way clusters that
// factor is large (4/7), so we only check the benefit never exceeds it
// by much and clustering never hurts badly.
func TestAllToAllLimitsClustering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	base, err := Run(testCfg(8, 1), Params{M: 10})
	if err != nil {
		t.Fatal(err)
	}
	clus, err := Run(testCfg(8, 4), Params{M: 10})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(clus.ExecTime) / float64(base.ExecTime)
	if ratio < 0.45 || ratio > 1.15 {
		t.Errorf("clustering ratio %.3f outside the plausible band", ratio)
	}
	// The all-to-all pattern: remaining load stall must not drop below
	// roughly the (P-C)/(P-1) share of the base communication.
	limit := float64(8-4) / float64(8-1)
	bs := float64(base.Aggregate().LoadStall)
	cs := float64(clus.Aggregate().LoadStall)
	if bs > 0 && cs < 0.5*limit*bs {
		t.Errorf("load stall ratio %.3f far below the all-to-all limit %.3f", cs/bs, limit)
	}
}

// TestRowFFTMatchesDFT drives the in-place row FFT on one row and
// compares against a direct DFT.
func TestRowFFTMatchesDFT(t *testing.T) {
	const r = 16
	cfg := testCfg(1, 1)
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	arr := apps.NewC128(m, r, "row")
	roots := apps.NewC128(m, r, "roots")
	input := make([]complex128, r)
	_, err = m.Run(func(p *core.Proc) {
		rng := rand.New(rand.NewSource(5))
		for k := 0; k < r; k++ {
			ang := -2 * math.Pi * float64(k) / float64(r)
			roots.Set(p, k, cmplx.Exp(complex(0, ang)))
		}
		for i := 0; i < r; i++ {
			v := complex(rng.Float64()-0.5, rng.Float64()-0.5)
			arr.Set(p, i, v)
			input[i] = v
		}
		rowFFT(p, arr, roots, 0, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < r; k++ {
		var want complex128
		for j := 0; j < r; j++ {
			ang := -2 * math.Pi * float64(j*k) / float64(r)
			want += input[j] * cmplx.Exp(complex(0, ang))
		}
		if cmplx.Abs(arr.Data[k]-want) > 1e-9 {
			t.Fatalf("bin %d = %v, want %v", k, arr.Data[k], want)
		}
	}
}

// TestTransposeExact drives the blocked transpose and checks it.
func TestTransposeExact(t *testing.T) {
	const r = 16
	cfg := testCfg(2, 1)
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := apps.NewC128(m, r*r, "src")
	dst := apps.NewC128(m, r*r, "dst")
	bar := m.NewBarrier()
	_, err = m.Run(func(p *core.Proc) {
		lo, hi := apps.Chunk(r, p.ID(), 2)
		if p.ID() == 0 {
			for i := 0; i < r*r; i++ {
				src.Set(p, i, complex(float64(i), 0))
			}
		}
		bar.Wait(p)
		transpose(p, dst, src, r, lo, hi)
		bar.Wait(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			if dst.Data[i*r+j] != src.Data[j*r+i] {
				t.Fatalf("dst[%d][%d] != src[%d][%d]", i, j, j, i)
			}
		}
	}
}
