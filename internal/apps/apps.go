// Package apps provides the common scaffolding for the paper's nine
// applications: typed arrays that couple real Go data with simulated
// shared-memory references, a workload registry, and problem-size
// classes. Each application package implements the real algorithm —
// the simulator consumes the resulting reference stream, so correctness
// of the computation is testable and the access patterns are authentic.
package apps

import (
	"fmt"

	"clustersim/internal/core"
)

// Size selects a problem-size class.
type Size int

const (
	// SizeTest is a tiny problem for unit tests.
	SizeTest Size = iota
	// SizeDefault is the scaled-down default used by the benchmark
	// harness; it preserves the paper's partitioning topology.
	SizeDefault
	// SizePaper is the paper's Table 2 problem size.
	SizePaper
)

// String names the size class.
func (s Size) String() string {
	switch s {
	case SizeTest:
		return "test"
	case SizeDefault:
		return "default"
	case SizePaper:
		return "paper"
	}
	return fmt.Sprintf("Size(%d)", int(s))
}

// Runner describes one registered application.
type Runner struct {
	// Name is the paper's application name, lower case.
	Name string
	// Representative is the Table 2 "Representative Of" entry.
	Representative string
	// PaperProblem is the Table 2 problem-size description.
	PaperProblem string
	// Communication is the Table 3 major-communication-pattern entry.
	Communication string
	// WorkingSet is the Table 3 working-set description.
	WorkingSet string
	// Run builds a machine from cfg, runs the application at the given
	// size, verifies the computation, and returns the result.
	Run func(cfg core.Config, size Size) (*core.Result, error)
}

// --- typed simulated arrays -------------------------------------------

// F64 is a shared array of float64 backed by both real Go storage and a
// simulated address range.
type F64 struct {
	Base core.Addr
	Data []float64
}

// NewF64 allocates a shared float64 array.
func NewF64(m *core.Machine, n int, name string) *F64 {
	return &F64{Base: m.Alloc(uint64(n)*8, name), Data: make([]float64, n)}
}

// Addr returns the simulated address of element i.
func (a *F64) Addr(i int) core.Addr { return a.Base + uint64(i)*8 }

// Get loads element i through the simulator.
func (a *F64) Get(p *core.Proc, i int) float64 {
	p.Read(a.Addr(i))
	return a.Data[i]
}

// Set stores element i through the simulator.
func (a *F64) Set(p *core.Proc, i int, v float64) {
	p.Write(a.Addr(i))
	a.Data[i] = v
}

// Len returns the element count.
func (a *F64) Len() int { return len(a.Data) }

// I64 is a shared array of int64.
type I64 struct {
	Base core.Addr
	Data []int64
}

// NewI64 allocates a shared int64 array.
func NewI64(m *core.Machine, n int, name string) *I64 {
	return &I64{Base: m.Alloc(uint64(n)*8, name), Data: make([]int64, n)}
}

// Addr returns the simulated address of element i.
func (a *I64) Addr(i int) core.Addr { return a.Base + uint64(i)*8 }

// Get loads element i through the simulator.
func (a *I64) Get(p *core.Proc, i int) int64 {
	p.Read(a.Addr(i))
	return a.Data[i]
}

// Set stores element i through the simulator.
func (a *I64) Set(p *core.Proc, i int, v int64) {
	p.Write(a.Addr(i))
	a.Data[i] = v
}

// Len returns the element count.
func (a *I64) Len() int { return len(a.Data) }

// C128 is a shared array of complex128 (16 bytes per element).
type C128 struct {
	Base core.Addr
	Data []complex128
}

// NewC128 allocates a shared complex array.
func NewC128(m *core.Machine, n int, name string) *C128 {
	return &C128{Base: m.Alloc(uint64(n)*16, name), Data: make([]complex128, n)}
}

// Addr returns the simulated address of element i.
func (a *C128) Addr(i int) core.Addr { return a.Base + uint64(i)*16 }

// Get loads element i through the simulator.
func (a *C128) Get(p *core.Proc, i int) complex128 {
	p.Read(a.Addr(i))
	return a.Data[i]
}

// Set stores element i through the simulator.
func (a *C128) Set(p *core.Proc, i int, v complex128) {
	p.Write(a.Addr(i))
	a.Data[i] = v
}

// Len returns the element count.
func (a *C128) Len() int { return len(a.Data) }

// U8 is a shared array of bytes (volume data, images).
type U8 struct {
	Base core.Addr
	Data []uint8
}

// NewU8 allocates a shared byte array.
func NewU8(m *core.Machine, n int, name string) *U8 {
	return &U8{Base: m.Alloc(uint64(n), name), Data: make([]uint8, n)}
}

// Addr returns the simulated address of element i.
func (a *U8) Addr(i int) core.Addr { return a.Base + uint64(i) }

// Get loads element i through the simulator.
func (a *U8) Get(p *core.Proc, i int) uint8 {
	p.Read(a.Addr(i))
	return a.Data[i]
}

// Set stores element i through the simulator.
func (a *U8) Set(p *core.Proc, i int, v uint8) {
	p.Write(a.Addr(i))
	a.Data[i] = v
}

// Len returns the element count.
func (a *U8) Len() int { return len(a.Data) }

// Recs is a shared array of fixed-stride records (array-of-structs
// layout, as the SPLASH codes use for bodies, cells and particles).
type Recs struct {
	Base   core.Addr
	Stride uint64
	N      int
}

// NewRecs allocates n records of recBytes each.
func NewRecs(m *core.Machine, n int, recBytes uint64, name string) Recs {
	return Recs{Base: m.Alloc(uint64(n)*recBytes, name), Stride: recBytes, N: n}
}

// Addr returns the address of byte off within record i.
func (r Recs) Addr(i int, off uint64) core.Addr {
	return r.Base + uint64(i)*r.Stride + off
}

// Read loads the word at byte off of record i.
func (r Recs) Read(p *core.Proc, i int, off uint64) { p.Read(r.Addr(i, off)) }

// Write stores the word at byte off of record i.
func (r Recs) Write(p *core.Proc, i int, off uint64) { p.Write(r.Addr(i, off)) }

// Begin marks the start of the measured phase: all processors
// synchronise, processor 0 resets the machine's statistics and time
// origin, and all synchronise again before proceeding. Every application
// calls this between initialization and its parallel computation, in the
// SPLASH measurement style the paper follows.
func Begin(p *core.Proc, bar *core.Barrier) {
	bar.Wait(p)
	if p.ID() == 0 {
		p.Machine().BeginMeasurement(p)
	}
	bar.Wait(p)
}

// --- work partitioning helpers ----------------------------------------

// Chunk returns the half-open range [lo,hi) of n items owned by
// processor id out of procs, balanced to within one item.
func Chunk(n, id, procs int) (lo, hi int) {
	base := n / procs
	rem := n % procs
	lo = id*base + min(id, rem)
	hi = lo + base
	if id < rem {
		hi++
	}
	return lo, hi
}

// ProcGrid factors procs into pr×pc with pr ≤ pc and both as close to
// √procs as possible — the processor-grid shape used by LU and Ocean.
func ProcGrid(procs int) (pr, pc int) {
	pr = 1
	for d := 1; d*d <= procs; d++ {
		if procs%d == 0 {
			pr = d
		}
	}
	return pr, procs / pr
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Morton3 interleaves the low 10 bits of x, y, z into a 30-bit Morton
// (Z-order) key, used to give spatial locality to static body
// assignments in the N-body codes.
func Morton3(x, y, z uint32) uint32 {
	return spread3(x) | spread3(y)<<1 | spread3(z)<<2
}

func spread3(v uint32) uint32 {
	v &= 0x3ff
	v = (v | v<<16) & 0x30000ff
	v = (v | v<<8) & 0x300f00f
	v = (v | v<<4) & 0x30c30c3
	v = (v | v<<2) & 0x9249249
	return v
}
