package radix

import (
	"testing"

	"clustersim/internal/apps"
	"clustersim/internal/core"
)

func testCfg(procs, clusterSize int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Procs = procs
	cfg.ClusterSize = clusterSize
	return cfg
}

func TestSortsCorrectly(t *testing.T) {
	res, err := Run(testCfg(4, 1), ParamsFor(apps.SizeTest))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Aggregate().References() == 0 {
		t.Fatal("no references")
	}
}

func TestCorrectAcrossClusterSizes(t *testing.T) {
	for _, cs := range []int{1, 2, 4} {
		if _, err := Run(testCfg(4, cs), ParamsFor(apps.SizeTest)); err != nil {
			t.Errorf("cluster %d: %v", cs, err)
		}
	}
}

func TestOddPassCount(t *testing.T) {
	// 16-bit keys with radix 256 → 2 passes; 24-bit → 3 passes. Both
	// parities of the ping-pong must verify.
	if _, err := Run(testCfg(4, 1), Params{Keys: 2048, Radix: 256, KeyBits: 16}); err != nil {
		t.Errorf("2 passes: %v", err)
	}
	if _, err := Run(testCfg(4, 1), Params{Keys: 2048, Radix: 256, KeyBits: 24}); err != nil {
		t.Errorf("3 passes: %v", err)
	}
}

func TestSmallRadix(t *testing.T) {
	if _, err := Run(testCfg(4, 2), Params{Keys: 1024, Radix: 16, KeyBits: 16}); err != nil {
		t.Errorf("radix 16: %v", err)
	}
}

func TestRejectsBadParams(t *testing.T) {
	if _, err := Run(testCfg(4, 1), Params{Keys: 0, Radix: 256, KeyBits: 16}); err == nil {
		t.Error("want error for zero keys")
	}
	if _, err := Run(testCfg(4, 1), Params{Keys: 100, Radix: 100, KeyBits: 16}); err == nil {
		t.Error("want error for non-power-of-two radix")
	}
}

func TestDeterministic(t *testing.T) {
	p := ParamsFor(apps.SizeTest)
	r1, err := Run(testCfg(4, 2), p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(testCfg(4, 2), p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExecTime != r2.ExecTime {
		t.Fatalf("nondeterministic: %d vs %d", r1.ExecTime, r2.ExecTime)
	}
}

func TestWorkloadMetadata(t *testing.T) {
	w := Workload()
	if w.Name != "radix" || w.Run == nil {
		t.Fatalf("workload = %+v", w)
	}
}

// TestHistogramPrefetching: the paper observes radix's clustering benefit
// shows up as prefetching on the shared histograms, with merge stalls
// replacing load stalls; total time moves little.
func TestHistogramPrefetching(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := Params{Keys: 8192, Radix: 64, KeyBits: 18}
	base, err := Run(testCfg(8, 1), p)
	if err != nil {
		t.Fatal(err)
	}
	clus, err := Run(testCfg(8, 4), p)
	if err != nil {
		t.Fatal(err)
	}
	if clus.Aggregate().Merges <= base.Aggregate().Merges {
		t.Errorf("clustering should increase merge events: %d vs %d",
			clus.Aggregate().Merges, base.Aggregate().Merges)
	}
	ratio := float64(clus.ExecTime) / float64(base.ExecTime)
	if ratio < 0.5 || ratio > 1.25 {
		t.Errorf("radix clustering ratio %.3f outside plausible band", ratio)
	}
}
