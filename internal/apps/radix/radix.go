// Package radix implements the paper's Radix application: a parallel
// radix sort of integer keys (SPLASH-2 style). Each pass builds local
// histograms, combines them into global digit offsets on shared
// histogram arrays (the structure the paper credits with "significant
// prefetching effects, particularly on the shared histograms"), and then
// permutes keys into a shared destination array — the all-to-all,
// relatively unstructured scattered-write communication phase.
package radix

import (
	"fmt"
	"math/rand"

	"clustersim/internal/apps"
	"clustersim/internal/core"
)

// Params sizes one Radix run.
type Params struct {
	Keys    int // number of integer keys
	Radix   int // digit base (the paper uses 256)
	KeyBits int // bits per key; passes = ceil(KeyBits / log2(Radix))
}

// ParamsFor maps a size class to parameters. SizePaper is the paper's
// 256K keys with radix 256.
func ParamsFor(size apps.Size) Params {
	switch size {
	case apps.SizeTest:
		return Params{Keys: 4096, Radix: 256, KeyBits: 24}
	case apps.SizePaper:
		return Params{Keys: 256 * 1024, Radix: 256, KeyBits: 24}
	default:
		return Params{Keys: 64 * 1024, Radix: 256, KeyBits: 24}
	}
}

// Workload registers Radix in the application table.
func Workload() apps.Runner {
	return apps.Runner{
		Name:           "radix",
		Representative: "High-performance parallel sorting",
		PaperProblem:   "256K integer keys, radix=256",
		Communication:  "All-to-all, relatively unstructured",
		WorkingSet:     "two: one small, one large O(n/p)",
		Run: func(cfg core.Config, size apps.Size) (*core.Result, error) {
			return Run(cfg, ParamsFor(size))
		},
	}
}

// Run sorts deterministic pseudo-random keys and verifies order and
// content preservation.
func Run(cfg core.Config, pr Params) (*core.Result, error) {
	if pr.Keys <= 0 || pr.Radix < 2 || pr.Radix&(pr.Radix-1) != 0 {
		return nil, fmt.Errorf("radix: bad params %+v (radix must be a power of two)", pr)
	}
	digitBits := 0
	for 1<<digitBits < pr.Radix {
		digitBits++
	}
	passes := (pr.KeyBits + digitBits - 1) / digitBits
	m, err := core.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	P := cfg.Procs
	R := pr.Radix
	src := apps.NewI64(m, pr.Keys, "keysA")
	dst := apps.NewI64(m, pr.Keys, "keysB")
	// Shared histogram matrix histo[p][d] and rank matrix rank[p][d];
	// each processor's row is placed at its cluster, as SPLASH places
	// per-process data, but rows are read globally in the combine phase.
	histo := apps.NewI64(m, P*R, "histograms")
	rank := apps.NewI64(m, P*R, "ranks")
	for q := 0; q < P; q++ {
		m.Place(histo.Addr(q*R), uint64(R)*8, q)
		m.Place(rank.Addr(q*R), uint64(R)*8, q)
	}
	digitBase := apps.NewI64(m, R, "digitBase")
	colSum := apps.NewI64(m, R, "colSum")

	inSum := make([]int64, P) // per-processor plain-Go input checksums
	inXor := make([]int64, P)
	bar := m.NewBarrierN("radix.main", cfg.Procs)
	res, err := m.Run(func(p *core.Proc) {
		id := p.ID()
		klo, khi := apps.Chunk(pr.Keys, id, P)
		rng := rand.New(rand.NewSource(int64(997 + p.ID())))
		mask := int64(1)<<pr.KeyBits - 1
		for i := klo; i < khi; i++ {
			k := rng.Int63() & mask
			src.Set(p, i, k)
			inSum[id] += k
			inXor[id] ^= k
		}
		apps.Begin(p, bar)

		a, b := src, dst
		for pass := 0; pass < passes; pass++ {
			shift := uint(pass * digitBits)
			// Phase 1: local histogram over my contiguous key block.
			for d := 0; d < R; d++ {
				histo.Set(p, id*R+d, 0)
			}
			for i := klo; i < khi; i++ {
				d := int(a.Get(p, i) >> shift & int64(R-1))
				histo.Set(p, id*R+d, histo.Get(p, id*R+d)+1)
				p.Compute(4)
			}
			bar.Wait(p)
			// Phase 2: for my digit range, scan across processors to
			// produce per-processor ranks and the column totals. This is
			// where every processor reads every other's histogram row.
			dlo, dhi := apps.Chunk(R, id, P)
			for d := dlo; d < dhi; d++ {
				running := int64(0)
				for q := 0; q < P; q++ {
					rank.Set(p, q*R+d, running)
					running += histo.Get(p, q*R+d)
					p.Compute(2)
				}
				colSum.Set(p, d, running)
			}
			bar.Wait(p)
			// Phase 3: exclusive prefix over the digit totals.
			if id == 0 {
				running := int64(0)
				for d := 0; d < R; d++ {
					s := colSum.Get(p, d)
					digitBase.Set(p, d, running)
					running += s
					p.Compute(2)
				}
			}
			bar.Wait(p)
			// Phase 4: permutation — scattered writes into the shared
			// destination array.
			local := make([]int64, R) // register/stack-resident counters
			for i := klo; i < khi; i++ {
				k := a.Get(p, i)
				d := int(k >> shift & int64(R-1))
				pos := digitBase.Get(p, d) + rank.Get(p, id*R+d) + local[d]
				local[d]++
				b.Set(p, int(pos), k)
				p.Compute(6)
			}
			bar.Wait(p)
			a, b = b, a
		}
	})
	if err != nil {
		return nil, err
	}
	// After an even number of ping-pong swaps the result is back in src.
	out := dst.Data
	if passes%2 == 0 {
		out = src.Data
	}
	var wantSum, wantXor int64
	for q := 0; q < P; q++ {
		wantSum += inSum[q]
		wantXor ^= inXor[q]
	}
	if err := verify(out, wantSum, wantXor); err != nil {
		return nil, err
	}
	return res, nil
}

// verify checks the output is sorted and preserves the input multiset's
// sum and xor checksums.
func verify(out []int64, wantSum, wantXor int64) error {
	var sum, xor int64
	for i, v := range out {
		if i > 0 && out[i-1] > v {
			return fmt.Errorf("radix: out of order at %d: %d > %d", i, out[i-1], v)
		}
		sum += v
		xor ^= v
	}
	if sum != wantSum || xor != wantXor {
		return fmt.Errorf("radix: content changed: sum %d/%d xor %d/%d", sum, wantSum, xor, wantXor)
	}
	return nil
}
