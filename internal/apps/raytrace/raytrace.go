// Package raytrace implements the paper's Raytrace application: a
// recursive ray tracer over a procedurally generated sphere-flake scene
// (our stand-in for the SPLASH "Balls4" input — same structure: a large
// read-only sphere database under a shared spatial acceleration
// structure). The pixel plane is divided into square tiles, one per
// processor, exactly as the grid in Ocean; rays reflect off spheres, so
// a processor's reads wander unpredictably through the shared scene —
// the large, unstructured read-only working set of Figure 4.
//
// Every run is verified pixel-exactly against a serial re-render that
// uses the same tracing code without simulated references.
package raytrace

import (
	"fmt"
	"math"

	"clustersim/internal/apps"
	"clustersim/internal/core"
)

// Params sizes one Raytrace run.
type Params struct {
	Width, Height int
	FlakeLevel    int // sphere-flake recursion depth: spheres = Σ 9^i
	MaxDepth      int // reflection bounces
}

// ParamsFor maps a size class to parameters. SizePaper substitutes a
// level-4 flake (7381 spheres) for the Balls4 scene.
func ParamsFor(size apps.Size) Params {
	switch size {
	case apps.SizeTest:
		return Params{Width: 32, Height: 32, FlakeLevel: 2, MaxDepth: 2}
	case apps.SizePaper:
		return Params{Width: 128, Height: 128, FlakeLevel: 4, MaxDepth: 3}
	default:
		return Params{Width: 64, Height: 64, FlakeLevel: 3, MaxDepth: 3}
	}
}

// Workload registers Raytrace in the application table.
func Workload() apps.Runner {
	return apps.Runner{
		Name:           "raytrace",
		Representative: "Ray tracing in computer graphics",
		PaperProblem:   "Balls4 (sphere-flake scene)",
		Communication:  "Read only, unstructured",
		WorkingSet:     "large, unclear scaling",
		Run: func(cfg core.Config, size apps.Size) (*core.Result, error) {
			return Run(cfg, ParamsFor(size))
		},
	}
}

// Sphere record layout, stride 64: center (0,8,16), radius 24,
// reflectivity 32, shade 40.
const (
	sCenter  = 0
	sRadius  = 24
	sReflect = 32
	sShade   = 40
	sStride  = 64
)

type vec [3]float64

func (a vec) add(b vec) vec       { return vec{a[0] + b[0], a[1] + b[1], a[2] + b[2]} }
func (a vec) sub(b vec) vec       { return vec{a[0] - b[0], a[1] - b[1], a[2] - b[2]} }
func (a vec) scale(s float64) vec { return vec{a[0] * s, a[1] * s, a[2] * s} }
func (a vec) dot(b vec) float64   { return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] }
func (a vec) norm() vec           { return a.scale(1 / math.Sqrt(a.dot(a)+1e-30)) }

type sphere struct {
	center  vec
	radius  float64
	reflect float64
	shade   float64
}

const gridRes = 16 // acceleration-grid cells per edge

// scene is the shared read-only database plus the optional simulated
// handles: when p is nil the same code renders without references.
type scene struct {
	spheres []sphere
	bounds  [2]vec
	// Uniform grid: cellStart[c]..cellStart[c+1] index into cellList.
	cellStart []int32
	cellList  []int32

	srec   apps.Recs
	starts *apps.I64
	list   *apps.I64
	light  vec
}

// readSphere issues the simulated loads for sphere i's record.
func (sc *scene) readSphere(p *core.Proc, i int) {
	if p == nil {
		return
	}
	for d := 0; d < 3; d++ {
		sc.srec.Read(p, i, uint64(sCenter+8*d))
	}
	sc.srec.Read(p, i, sRadius)
	p.Compute(8)
}

func (sc *scene) readShade(p *core.Proc, i int) {
	if p == nil {
		return
	}
	sc.srec.Read(p, i, sReflect)
	sc.srec.Read(p, i, sShade)
}

func (sc *scene) readCell(p *core.Proc, c int) {
	if p == nil {
		return
	}
	sc.starts.Get(p, c)
	sc.starts.Get(p, c+1)
	p.Compute(4)
}

func (sc *scene) readCellEntry(p *core.Proc, idx int) {
	if p == nil {
		return
	}
	sc.list.Get(p, idx)
}

// buildFlake generates the sphere-flake: each parent spawns nine
// children of one-third radius on its surface.
func buildFlake(level int) []sphere {
	var out []sphere
	var recurse func(c vec, r float64, lvl int)
	dirs := flakeDirections()
	recurse = func(c vec, r float64, lvl int) {
		out = append(out, sphere{center: c, radius: r, reflect: 0.3, shade: 0.2 + 0.6*float64(lvl%3)/2})
		if lvl == 0 {
			return
		}
		for _, d := range dirs {
			child := c.add(d.scale(r * (1 + 1.0/3)))
			recurse(child, r/3, lvl-1)
		}
	}
	recurse(vec{0, 0, 0}, 1.0, level)
	return out
}

func flakeDirections() []vec {
	var dirs []vec
	for i := 0; i < 6; i++ {
		ang := 2 * math.Pi * float64(i) / 6
		dirs = append(dirs, vec{math.Cos(ang), math.Sin(ang), 0.15}.norm())
	}
	for i := 0; i < 3; i++ {
		ang := 2*math.Pi*float64(i)/3 + 0.3
		dirs = append(dirs, vec{0.45 * math.Cos(ang), 0.45 * math.Sin(ang), 1}.norm())
	}
	return dirs
}

// buildGrid bins spheres into the uniform acceleration grid.
func buildGrid(spheres []sphere) (bounds [2]vec, starts, list []int32) {
	bounds[0] = vec{math.Inf(1), math.Inf(1), math.Inf(1)}
	bounds[1] = vec{math.Inf(-1), math.Inf(-1), math.Inf(-1)}
	for _, s := range spheres {
		for d := 0; d < 3; d++ {
			bounds[0][d] = math.Min(bounds[0][d], s.center[d]-s.radius)
			bounds[1][d] = math.Max(bounds[1][d], s.center[d]+s.radius)
		}
	}
	// Pad slightly so boundary spheres bin cleanly.
	for d := 0; d < 3; d++ {
		pad := (bounds[1][d] - bounds[0][d]) * 0.01
		bounds[0][d] -= pad
		bounds[1][d] += pad
	}
	nc := gridRes * gridRes * gridRes
	lists := make([][]int32, nc)
	cellOf := func(x float64, d int) int {
		c := int((x - bounds[0][d]) / (bounds[1][d] - bounds[0][d]) * gridRes)
		if c < 0 {
			c = 0
		}
		if c >= gridRes {
			c = gridRes - 1
		}
		return c
	}
	for i, s := range spheres {
		var lo, hi [3]int
		for d := 0; d < 3; d++ {
			lo[d] = cellOf(s.center[d]-s.radius, d)
			hi[d] = cellOf(s.center[d]+s.radius, d)
		}
		for x := lo[0]; x <= hi[0]; x++ {
			for y := lo[1]; y <= hi[1]; y++ {
				for z := lo[2]; z <= hi[2]; z++ {
					c := (z*gridRes+y)*gridRes + x
					lists[c] = append(lists[c], int32(i))
				}
			}
		}
	}
	starts = make([]int32, nc+1)
	for c := 0; c < nc; c++ {
		starts[c+1] = starts[c] + int32(len(lists[c]))
		list = append(list, lists[c]...)
	}
	return bounds, starts, list
}

// intersect returns the nearest hit among the spheres in one grid cell.
func (sc *scene) intersectCell(p *core.Proc, cell int, org, dir vec, tMax float64) (int, float64) {
	sc.readCell(p, cell)
	best, bestT := -1, tMax
	for idx := sc.cellStart[cell]; idx < sc.cellStart[cell+1]; idx++ {
		sc.readCellEntry(p, int(idx))
		i := int(sc.cellList[idx])
		sc.readSphere(p, i)
		s := &sc.spheres[i]
		oc := org.sub(s.center)
		b := oc.dot(dir)
		c := oc.dot(oc) - s.radius*s.radius
		disc := b*b - c
		if disc <= 0 {
			continue
		}
		t := -b - math.Sqrt(disc)
		if t > 1e-9 && t < bestT {
			best, bestT = i, t
		}
	}
	return best, bestT
}

// trace walks the grid with a 3D DDA and shades the nearest hit,
// recursing for reflections.
func (sc *scene) trace(p *core.Proc, org, dir vec, depth int) float64 {
	cellW := [3]float64{}
	for d := 0; d < 3; d++ {
		cellW[d] = (sc.bounds[1][d] - sc.bounds[0][d]) / gridRes
	}
	// Clip the ray to the grid bounds.
	t0, t1 := 0.0, math.Inf(1)
	for d := 0; d < 3; d++ {
		if math.Abs(dir[d]) < 1e-12 {
			if org[d] < sc.bounds[0][d] || org[d] > sc.bounds[1][d] {
				return 0
			}
			continue
		}
		ta := (sc.bounds[0][d] - org[d]) / dir[d]
		tb := (sc.bounds[1][d] - org[d]) / dir[d]
		if ta > tb {
			ta, tb = tb, ta
		}
		t0 = math.Max(t0, ta)
		t1 = math.Min(t1, tb)
	}
	if t0 >= t1 {
		return 0
	}
	pos := org.add(dir.scale(t0 + 1e-9))
	var cell [3]int
	var step [3]int
	var tNext, tDelta [3]float64
	for d := 0; d < 3; d++ {
		c := int((pos[d] - sc.bounds[0][d]) / cellW[d])
		if c < 0 {
			c = 0
		}
		if c >= gridRes {
			c = gridRes - 1
		}
		cell[d] = c
		if dir[d] > 0 {
			step[d] = 1
			tNext[d] = t0 + (sc.bounds[0][d]+float64(c+1)*cellW[d]-pos[d])/dir[d]
			tDelta[d] = cellW[d] / dir[d]
		} else if dir[d] < 0 {
			step[d] = -1
			tNext[d] = t0 + (sc.bounds[0][d]+float64(c)*cellW[d]-pos[d])/dir[d]
			tDelta[d] = -cellW[d] / dir[d]
		} else {
			step[d] = 0
			tNext[d] = math.Inf(1)
			tDelta[d] = math.Inf(1)
		}
	}
	for {
		cIdx := (cell[2]*gridRes+cell[1])*gridRes + cell[0]
		// Only accept hits inside this cell's t-range to keep DDA exact.
		exitT := math.Min(tNext[0], math.Min(tNext[1], tNext[2]))
		hit, tHit := sc.intersectCell(p, cIdx, org, dir, exitT+1e-9)
		if hit >= 0 && tHit <= exitT+1e-9 {
			return sc.shade(p, hit, org.add(dir.scale(tHit)), dir, depth)
		}
		// Advance to the next cell.
		d := 0
		if tNext[1] < tNext[d] {
			d = 1
		}
		if tNext[2] < tNext[d] {
			d = 2
		}
		cell[d] += step[d]
		if cell[d] < 0 || cell[d] >= gridRes || tNext[d] > t1 {
			return 0
		}
		tNext[d] += tDelta[d]
		if p != nil {
			p.Compute(6)
		}
	}
}

// shade computes Lambertian lighting plus a reflection bounce.
func (sc *scene) shade(p *core.Proc, i int, point, dir vec, depth int) float64 {
	sc.readShade(p, i)
	s := &sc.spheres[i]
	n := point.sub(s.center).norm()
	l := sc.light.sub(point).norm()
	diff := n.dot(l)
	if diff < 0 {
		diff = 0
	}
	col := s.shade * (0.2 + 0.8*diff)
	if p != nil {
		p.Compute(25)
	}
	if depth > 0 && s.reflect > 0 {
		r := dir.sub(n.scale(2 * dir.dot(n)))
		col += s.reflect * sc.trace(p, point.add(n.scale(1e-6)), r.norm(), depth-1)
	}
	if col > 1 {
		col = 1
	}
	return col
}

// pixelBlock is one stealable unit of rendering work.
type pixelBlock struct{ x0, y0, x1, y1 int }

const taskBlock = 4 // pixels per block edge

// pixelBlocks splits the image into taskBlock² blocks, enumerated tile
// by tile so processor p's initial queue range [lo[p], hi[p]) covers its
// own tile.
func pixelBlocks(procs, width, height int) (blocks []pixelBlock, lo, hi []int) {
	gr, gc := apps.ProcGrid(procs)
	lo = make([]int, procs)
	hi = make([]int, procs)
	for id := 0; id < procs; id++ {
		tr, tc := id/gc, id%gc
		ylo, yhi := apps.Chunk(height, tr, gr)
		xlo, xhi := apps.Chunk(width, tc, gc)
		lo[id] = len(blocks)
		for by := ylo; by < yhi; by += taskBlock {
			for bx := xlo; bx < xhi; bx += taskBlock {
				b := pixelBlock{x0: bx, y0: by, x1: bx + taskBlock, y1: by + taskBlock}
				if b.x1 > xhi {
					b.x1 = xhi
				}
				if b.y1 > yhi {
					b.y1 = yhi
				}
				blocks = append(blocks, b)
			}
		}
		hi[id] = len(blocks)
	}
	return blocks, lo, hi
}

// Run renders the scene in parallel and verifies pixel-exactly against a
// serial render with the same code.
func Run(cfg core.Config, pr Params) (*core.Result, error) {
	if pr.Width < 4 || pr.Height < 4 || pr.FlakeLevel < 0 || pr.FlakeLevel > 5 || pr.MaxDepth < 0 {
		return nil, fmt.Errorf("raytrace: bad params %+v", pr)
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	spheres := buildFlake(pr.FlakeLevel)
	bounds, starts, list := buildGrid(spheres)
	sc := &scene{
		spheres:   spheres,
		bounds:    bounds,
		cellStart: starts,
		cellList:  list,
		light:     vec{5, 5, 8},
		srec:      apps.NewRecs(m, len(spheres), sStride, "spheres"),
		starts:    apps.NewI64(m, len(starts), "cellStarts"),
		list:      apps.NewI64(m, len(list)+1, "cellList"),
	}
	img := apps.NewI64(m, pr.Width*pr.Height, "image")
	camera := func(px, py int) (vec, vec) {
		// Orthographic camera looking down -z.
		x := bounds[0][0] + (float64(px)+0.5)/float64(pr.Width)*(bounds[1][0]-bounds[0][0])
		y := bounds[0][1] + (float64(py)+0.5)/float64(pr.Height)*(bounds[1][1]-bounds[0][1])
		return vec{x, y, bounds[1][2] + 1}, vec{0.12, 0.07, -1}.norm()
	}

	// Pixel blocks, enumerated tile-by-tile so each processor's initial
	// queue range is its own Ocean-style tile; uneven ray costs are then
	// balanced by stealing, as in the SPLASH code.
	blocks, lo, hi := pixelBlocks(cfg.Procs, pr.Width, pr.Height)
	queues := apps.NewTaskQueues(m, "rt")
	bar := m.NewBarrierN("raytrace.main", cfg.Procs)
	res, err := m.Run(func(p *core.Proc) {
		id := p.ID()
		// Initialization: processor 0 publishes the scene database.
		if id == 0 {
			for i := range spheres {
				for d := 0; d < 3; d++ {
					sc.srec.Write(p, i, uint64(sCenter+8*d))
				}
				sc.srec.Write(p, i, sRadius)
				sc.srec.Write(p, i, sReflect)
				sc.srec.Write(p, i, sShade)
			}
			for i := range starts {
				sc.starts.Set(p, i, int64(starts[i]))
			}
			for i := range list {
				sc.list.Set(p, i, int64(list[i]))
			}
		}
		queues.Init(p, lo[id], hi[id])
		apps.Begin(p, bar)

		for {
			task, ok := queues.Next(p)
			if !ok {
				break
			}
			b := blocks[task]
			for py := b.y0; py < b.y1; py++ {
				for px := b.x0; px < b.x1; px++ {
					org, dir := camera(px, py)
					col := sc.trace(p, org, dir, pr.MaxDepth)
					img.Set(p, py*pr.Width+px, int64(col*255))
				}
			}
		}
		bar.Wait(p)
	})
	if err != nil {
		return nil, err
	}
	// Serial verification render: identical code, no references.
	for py := 0; py < pr.Height; py++ {
		for px := 0; px < pr.Width; px++ {
			org, dir := camera(px, py)
			want := int64(sc.trace(nil, org, dir, pr.MaxDepth) * 255)
			if got := img.Data[py*pr.Width+px]; got != want {
				return nil, fmt.Errorf("raytrace: pixel (%d,%d) = %d, serial render says %d",
					px, py, got, want)
			}
		}
	}
	return res, nil
}
