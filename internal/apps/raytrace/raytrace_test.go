package raytrace

import (
	"testing"

	"clustersim/internal/apps"
	"clustersim/internal/core"
)

func testCfg(procs, clusterSize int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Procs = procs
	cfg.ClusterSize = clusterSize
	return cfg
}

func TestRendersAndMatchesSerial(t *testing.T) {
	res, err := Run(testCfg(4, 1), ParamsFor(apps.SizeTest))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	agg := res.Aggregate()
	if agg.References() == 0 {
		t.Fatal("no references")
	}
	// The scene is read-only: writes should be limited to pixels.
	if agg.Writes > agg.Reads {
		t.Errorf("raytrace should be read-dominated: %d writes vs %d reads", agg.Writes, agg.Reads)
	}
}

func TestCorrectAcrossClusterSizes(t *testing.T) {
	for _, cs := range []int{1, 2, 4} {
		if _, err := Run(testCfg(4, cs), ParamsFor(apps.SizeTest)); err != nil {
			t.Errorf("cluster %d: %v", cs, err)
		}
	}
}

func TestFlakeSphereCount(t *testing.T) {
	// Level L flake has Σ_{i=0..L} 9^i spheres.
	want := map[int]int{0: 1, 1: 10, 2: 91, 3: 820}
	for lvl, n := range want {
		if got := len(buildFlake(lvl)); got != n {
			t.Errorf("level %d: %d spheres, want %d", lvl, got, n)
		}
	}
}

func TestGridCoversAllSpheres(t *testing.T) {
	spheres := buildFlake(2)
	_, starts, list := buildGrid(spheres)
	seen := make([]bool, len(spheres))
	for _, i := range list {
		seen[i] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Errorf("sphere %d missing from the acceleration grid", i)
		}
	}
	if int(starts[len(starts)-1]) != len(list) {
		t.Error("grid start offsets inconsistent")
	}
}

func TestImageNotBlank(t *testing.T) {
	// Rendering must actually hit the scene — a regression guard against
	// camera or DDA bugs that silently produce black frames.
	pr := ParamsFor(apps.SizeTest)
	m, err := core.NewMachine(testCfg(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	_ = m
	res, err := Run(testCfg(2, 1), pr)
	if err != nil {
		t.Fatal(err)
	}
	// Serial verification inside Run already compared pixels; here we
	// only need the run to have produced nontrivial read traffic into
	// the sphere database.
	if res.Aggregate().Reads < 1000 {
		t.Errorf("suspiciously few reads (%d); rays likely missing the scene", res.Aggregate().Reads)
	}
}

func TestRejectsBadParams(t *testing.T) {
	if _, err := Run(testCfg(4, 1), Params{Width: 1, Height: 32, FlakeLevel: 1, MaxDepth: 1}); err == nil {
		t.Error("want error for tiny image")
	}
	if _, err := Run(testCfg(4, 1), Params{Width: 32, Height: 32, FlakeLevel: 9, MaxDepth: 1}); err == nil {
		t.Error("want error for absurd flake level")
	}
}

func TestDeterministic(t *testing.T) {
	p := ParamsFor(apps.SizeTest)
	r1, err := Run(testCfg(4, 2), p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(testCfg(4, 2), p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExecTime != r2.ExecTime {
		t.Fatalf("nondeterministic: %d vs %d", r1.ExecTime, r2.ExecTime)
	}
}

func TestReflectionDepthAddsWork(t *testing.T) {
	flat, err := Run(testCfg(2, 1), Params{Width: 32, Height: 32, FlakeLevel: 2, MaxDepth: 0})
	if err != nil {
		t.Fatal(err)
	}
	refl, err := Run(testCfg(2, 1), Params{Width: 32, Height: 32, FlakeLevel: 2, MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if refl.Aggregate().Reads <= flat.Aggregate().Reads {
		t.Errorf("reflections should add traversal work: %d vs %d",
			refl.Aggregate().Reads, flat.Aggregate().Reads)
	}
}

func TestWorkloadMetadata(t *testing.T) {
	w := Workload()
	if w.Name != "raytrace" || w.Run == nil {
		t.Fatalf("workload = %+v", w)
	}
}

// TestDDAFindsNearestHit fires rays straight at known spheres and checks
// the grid traversal returns the nearest intersection, not just any.
func TestDDAFindsNearestHit(t *testing.T) {
	spheres := []sphere{
		{center: vec{0, 0, 0}, radius: 0.5, shade: 0.5, reflect: 0},
		{center: vec{0, 0, 3}, radius: 0.5, shade: 0.9, reflect: 0},
	}
	bounds, starts, list := buildGrid(spheres)
	sc := &scene{
		spheres:   spheres,
		bounds:    bounds,
		cellStart: starts,
		cellList:  list,
		light:     vec{5, 5, 8},
	}
	// Ray from z=+10 downward must hit the z=3 sphere (nearer), whose
	// shade is brighter than the origin sphere's.
	colNear := sc.trace(nil, vec{0, 0, 10}, vec{0, 0, -1}, 0)
	// Ray offset beyond both spheres must miss.
	colMiss := sc.trace(nil, vec{2, 2, 10}, vec{0, 0, -1}, 0)
	if colNear <= 0 {
		t.Fatal("ray through both spheres missed")
	}
	if colMiss != 0 {
		t.Fatalf("off-axis ray hit something: %v", colMiss)
	}
	// Shooting from below must hit the z=0 sphere first; the two hits
	// differ because the shades differ.
	colFar := sc.trace(nil, vec{0, 0, -10}, vec{0, 0, 1}, 0)
	if colFar == colNear {
		t.Fatal("both directions returned the same sphere; DDA not ordering hits")
	}
}

// TestVecOps sanity-checks the small vector helpers.
func TestVecOps(t *testing.T) {
	a := vec{1, 2, 3}
	b := vec{4, 5, 6}
	if a.add(b) != (vec{5, 7, 9}) || b.sub(a) != (vec{3, 3, 3}) {
		t.Fatal("add/sub")
	}
	if a.dot(b) != 32 {
		t.Fatal("dot")
	}
	n := vec{3, 0, 4}.norm()
	if diff := n.dot(n) - 1; diff > 1e-12 || diff < -1e-12 {
		t.Fatal("norm not unit")
	}
}
