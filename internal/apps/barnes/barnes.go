// Package barnes implements the paper's Barnes application: the
// Barnes-Hut hierarchical N-body method. Space is represented as an
// octree; processors build it in parallel under per-cell locks, then
// traverse it once per owned body applying the θ opening criterion.
// Communication is low-volume and unstructured, and processors'
// traversals overlap heavily in the upper tree — the shared read-mostly
// working set whose overlap gives clustering its finite-cache benefits
// in Figure 6. Bodies are assigned in Morton order so adjacent
// processors own spatially adjacent bodies.
package barnes

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"clustersim/internal/apps"
	"clustersim/internal/core"
)

// Params sizes one Barnes run.
type Params struct {
	Bodies int
	Steps  int
	Theta  float64 // opening criterion (the paper uses 1.0)
}

// ParamsFor maps a size class to parameters. SizePaper is the paper's
// 8192 particles with θ = 1.0.
func ParamsFor(size apps.Size) Params {
	switch size {
	case apps.SizeTest:
		return Params{Bodies: 256, Steps: 1, Theta: 1.0}
	case apps.SizePaper:
		return Params{Bodies: 8192, Steps: 2, Theta: 1.0}
	default:
		return Params{Bodies: 2048, Steps: 2, Theta: 1.0}
	}
}

// Workload registers Barnes in the application table.
func Workload() apps.Runner {
	return apps.Runner{
		Name:           "barnes",
		Representative: "Hierarchical N-body codes",
		PaperProblem:   "8192 particles, theta = 1.0",
		Communication:  "Low volume, unstructured, but hierarchical",
		WorkingSet:     "relatively small (12KB), O(log n)",
		Run: func(cfg core.Config, size apps.Size) (*core.Result, error) {
			return Run(cfg, ParamsFor(size))
		},
	}
}

const (
	bucketCap = 8    // bodies per leaf before splitting
	maxDepth  = 40   // guards against pathological coincident bodies
	softening = 0.05 // Plummer softening length
	dt        = 0.02
	lockPool  = 64 // per-cell lock hashing

	// Body record layout, stride 128: pos (0,8,16), mass 24, acc
	// (32,40,48) — all in the first line, which the force phase touches —
	// and vel (64,72,80) in the second, touched by the update phase.
	bStride = 128
	bPos    = 0
	bMass   = 24
	bAcc    = 32
	bVel    = 64

	// Cell record layout, stride 192: line 0 holds the geometry the
	// descent reads (center 0..23, half 24, leaf flag 32, count 40);
	// line 1 the eight child/bucket slots; line 2 the centre of mass
	// (128..151) and total mass (152).
	cStride = 192
	cCenter = 0
	cHalf   = 24
	cFlag   = 32
	cCount  = 40
	cChild  = 64
	cCom    = 128
	cMass   = 152
)

// tree is the Go-side octree mirrored by the simulated cell records.
type tree struct {
	cells  apps.Recs
	bodies apps.Recs

	// Per-cell state.
	isLeaf []bool
	count  []int32
	child  [][8]int32 // cell index, or body index in leaves; -1 empty
	center [][3]float64
	half   []float64
	com    [][3]float64
	mass   []float64

	next int // next free cell (Go-side metadata, modified between yields)

	pos  [][3]float64
	vel  [][3]float64
	acc  [][3]float64
	bm   []float64
	root int
}

func (t *tree) allocCell(center [3]float64, half float64) int {
	if t.next >= len(t.isLeaf) {
		panic("barnes: cell arena exhausted")
	}
	c := t.next
	t.next++
	t.isLeaf[c] = true
	t.count[c] = 0
	for i := range t.child[c] {
		t.child[c][i] = -1
	}
	t.center[c] = center
	t.half[c] = half
	return c
}

// writeCellMeta issues the simulated stores for a fresh cell's geometry.
func (t *tree) writeCellMeta(p *core.Proc, c int) {
	for d := 0; d < 3; d++ {
		t.cells.Write(p, c, uint64(cCenter+8*d))
	}
	t.cells.Write(p, c, cHalf)
	t.cells.Write(p, c, cFlag)
	t.cells.Write(p, c, cCount)
}

func (t *tree) octant(c int, b int) int {
	o := 0
	for d := 0; d < 3; d++ {
		if t.pos[b][d] >= t.center[c][d] {
			o |= 1 << d
		}
	}
	return o
}

func (t *tree) childCenter(c, oct int) [3]float64 {
	h := t.half[c] / 2
	ctr := t.center[c]
	for d := 0; d < 3; d++ {
		if oct&(1<<d) != 0 {
			ctr[d] += h
		} else {
			ctr[d] -= h
		}
	}
	return ctr
}

// insert adds body b to the tree with simulated references, taking the
// per-cell lock only around modifications (SPLASH-style).
func (t *tree) insert(p *core.Proc, locks []*core.Lock, b int) {
	node := t.root
	for depth := 0; ; depth++ {
		if depth > maxDepth {
			panic("barnes: tree too deep; coincident bodies?")
		}
		t.cells.Read(p, node, cFlag)
		if t.isLeaf[node] {
			lk := locks[node%lockPool]
			lk.Acquire(p)
			t.cells.Read(p, node, cFlag)
			if !t.isLeaf[node] {
				lk.Release(p) // split under us; descend as internal
				continue
			}
			if int(t.count[node]) < bucketCap {
				slot := t.count[node]
				t.child[node][slot] = int32(b)
				t.count[node]++
				t.cells.Write(p, node, uint64(cChild+8*int(slot)))
				t.cells.Write(p, node, cCount)
				lk.Release(p)
				return
			}
			t.split(p, node, depth)
			lk.Release(p)
			continue // node is now internal; descend
		}
		for d := 0; d < 3; d++ {
			t.cells.Read(p, node, uint64(cCenter+8*d))
		}
		oct := t.octant(node, b)
		t.cells.Read(p, node, uint64(cChild+8*oct))
		ch := t.child[node][oct]
		if ch == -1 {
			lk := locks[node%lockPool]
			lk.Acquire(p)
			t.cells.Read(p, node, uint64(cChild+8*oct))
			if t.child[node][oct] == -1 {
				leaf := t.allocCell(t.childCenter(node, oct), t.half[node]/2)
				t.child[leaf][0] = int32(b)
				t.count[leaf] = 1
				t.writeCellMeta(p, leaf)
				t.cells.Write(p, leaf, cChild)
				t.child[node][oct] = int32(leaf)
				t.cells.Write(p, node, uint64(cChild+8*oct))
				lk.Release(p)
				return
			}
			lk.Release(p) // someone else created it; descend
			continue
		}
		node = int(ch)
		p.Compute(4)
	}
}

// split converts a full leaf into an internal node. The bucket is read
// with simulated references first (safe: the caller holds the node's
// lock, so no one can modify it), then the whole restructure runs in
// plain Go with no simulated references — and therefore no yields — so
// other processors can never observe a partially split subtree. The
// simulated stores for every touched cell are issued afterwards.
func (t *tree) split(p *core.Proc, node, depth int) {
	bucket := make([]int32, t.count[node])
	copy(bucket, t.child[node][:t.count[node]])
	for i := range bucket {
		t.cells.Read(p, node, uint64(cChild+8*i))
		for d := 0; d < 3; d++ {
			t.bodies.Read(p, int(bucket[i]), uint64(bPos+8*d))
		}
	}
	touched := []int{node}
	t.isLeaf[node] = false
	t.count[node] = 0
	for i := range t.child[node] {
		t.child[node][i] = -1
	}
	for _, b := range bucket {
		t.goInsert(node, int(b), depth, &touched)
	}
	// Charge the stores for every cell the restructure touched.
	for _, c := range touched {
		t.writeCellMeta(p, c)
		for i := 0; i < 8; i++ {
			t.cells.Write(p, c, uint64(cChild+8*i))
		}
	}
}

// goInsert inserts b under node in plain Go (no simulated references),
// recording every touched cell. Only called on subtrees protected by the
// caller's lock.
func (t *tree) goInsert(node, b, depth int, touched *[]int) {
	for {
		if depth > maxDepth {
			panic("barnes: tree too deep; coincident bodies?")
		}
		if t.isLeaf[node] {
			if int(t.count[node]) < bucketCap {
				t.child[node][t.count[node]] = int32(b)
				t.count[node]++
				*touched = append(*touched, node)
				return
			}
			// Overflow: convert in place and redistribute.
			bucket := make([]int32, t.count[node])
			copy(bucket, t.child[node][:t.count[node]])
			t.isLeaf[node] = false
			t.count[node] = 0
			for i := range t.child[node] {
				t.child[node][i] = -1
			}
			*touched = append(*touched, node)
			for _, ob := range bucket {
				t.goInsert(node, int(ob), depth, touched)
			}
			continue
		}
		oct := t.octant(node, b)
		if t.child[node][oct] == -1 {
			leaf := t.allocCell(t.childCenter(node, oct), t.half[node]/2)
			t.child[leaf][0] = int32(b)
			t.count[leaf] = 1
			t.child[node][oct] = int32(leaf)
			*touched = append(*touched, node, leaf)
			return
		}
		node = int(t.child[node][oct])
		depth++
	}
}

// subtreeRootsAtDepth enumerates, deterministically and without
// simulated references, the cells at the given depth (or shallower
// leaves) — the units of the parallel centre-of-mass pass.
func (t *tree) subtreeRootsAtDepth(target int) []int {
	var out []int
	var walk func(c, d int)
	walk = func(c, d int) {
		if d == target || t.isLeaf[c] {
			out = append(out, c)
			return
		}
		for i := 0; i < 8; i++ {
			if ch := t.child[c][i]; ch != -1 {
				walk(int(ch), d+1)
			}
		}
	}
	walk(t.root, 0)
	return out
}

// combineUpper fills in the centres of mass of the cells above the
// parallel subtree roots, reading the already-computed subtree results.
func (t *tree) combineUpper(p *core.Proc, node, depth, target int) (com [3]float64, mass float64) {
	if depth == target || t.isLeaf[node] {
		for d := 0; d < 3; d++ {
			t.cells.Read(p, node, uint64(cCom+8*d))
		}
		t.cells.Read(p, node, cMass)
		return t.com[node], t.mass[node]
	}
	for i := 0; i < 8; i++ {
		ch := t.child[node][i]
		t.cells.Read(p, node, uint64(cChild+8*i))
		if ch == -1 {
			continue
		}
		ccom, cm := t.combineUpper(p, int(ch), depth+1, target)
		for d := 0; d < 3; d++ {
			com[d] += ccom[d] * cm
		}
		mass += cm
		p.Compute(10)
	}
	if mass > 0 {
		for d := 0; d < 3; d++ {
			com[d] /= mass
		}
	}
	t.com[node] = com
	t.mass[node] = mass
	for d := 0; d < 3; d++ {
		t.cells.Write(p, node, uint64(cCom+8*d))
	}
	t.cells.Write(p, node, cMass)
	return com, mass
}

// computeCOM fills in centres of mass bottom-up for one subtree.
func (t *tree) computeCOM(p *core.Proc, node int) (com [3]float64, mass float64) {
	if t.isLeaf[node] {
		for i := 0; i < int(t.count[node]); i++ {
			b := int(t.child[node][i])
			t.cells.Read(p, node, uint64(cChild+8*i))
			for d := 0; d < 3; d++ {
				t.bodies.Read(p, b, uint64(bPos+8*d))
				com[d] += t.pos[b][d] * t.bm[b]
			}
			t.bodies.Read(p, b, bMass)
			mass += t.bm[b]
			p.Compute(8)
		}
	} else {
		for i := 0; i < 8; i++ {
			ch := t.child[node][i]
			t.cells.Read(p, node, uint64(cChild+8*i))
			if ch == -1 {
				continue
			}
			ccom, cm := t.computeCOM(p, int(ch))
			for d := 0; d < 3; d++ {
				com[d] += ccom[d] * cm
			}
			mass += cm
			p.Compute(10)
		}
	}
	if mass > 0 {
		for d := 0; d < 3; d++ {
			com[d] /= mass
		}
	}
	t.com[node] = com
	t.mass[node] = mass
	for d := 0; d < 3; d++ {
		t.cells.Write(p, node, uint64(cCom+8*d))
	}
	t.cells.Write(p, node, cMass)
	return com, mass
}

// force accumulates the acceleration on body b by walking the tree.
func (t *tree) force(p *core.Proc, b int, theta float64) [3]float64 {
	var acc [3]float64
	theta2 := theta * theta
	var walk func(node int)
	walk = func(node int) {
		t.cells.Read(p, node, cFlag)
		if t.isLeaf[node] {
			for i := 0; i < int(t.count[node]); i++ {
				t.cells.Read(p, node, uint64(cChild+8*i))
				ob := int(t.child[node][i])
				if ob == b {
					continue
				}
				for d := 0; d < 3; d++ {
					t.bodies.Read(p, ob, uint64(bPos+8*d))
				}
				t.bodies.Read(p, ob, bMass)
				addGravity(&acc, t.pos[b], t.pos[ob], t.bm[ob])
				p.Compute(30)
			}
			return
		}
		// Opening criterion against the centre of mass.
		for d := 0; d < 3; d++ {
			t.cells.Read(p, node, uint64(cCom+8*d))
		}
		t.cells.Read(p, node, cMass)
		t.cells.Read(p, node, cHalf)
		dx := t.com[node][0] - t.pos[b][0]
		dy := t.com[node][1] - t.pos[b][1]
		dz := t.com[node][2] - t.pos[b][2]
		d2 := dx*dx + dy*dy + dz*dz + 1e-20
		s := 2 * t.half[node]
		p.Compute(12)
		if s*s < theta2*d2 {
			addGravity(&acc, t.pos[b], t.com[node], t.mass[node])
			p.Compute(30)
			return
		}
		for i := 0; i < 8; i++ {
			t.cells.Read(p, node, uint64(cChild+8*i))
			if ch := t.child[node][i]; ch != -1 {
				walk(int(ch))
			}
		}
	}
	walk(t.root)
	return acc
}

func addGravity(acc *[3]float64, from, to [3]float64, mass float64) {
	dx := to[0] - from[0]
	dy := to[1] - from[1]
	dz := to[2] - from[2]
	d2 := dx*dx + dy*dy + dz*dz + softening*softening
	inv := mass / (d2 * math.Sqrt(d2))
	acc[0] += dx * inv
	acc[1] += dy * inv
	acc[2] += dz * inv
}

// Run simulates the system and verifies tree forces against a direct
// O(n²) sum on sampled bodies.
func Run(cfg core.Config, pr Params) (*core.Result, error) {
	if pr.Bodies < 2 || pr.Steps < 1 || pr.Theta <= 0 {
		return nil, fmt.Errorf("barnes: bad params %+v", pr)
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	n := pr.Bodies
	maxCells := 4*n + 64
	t := &tree{
		cells:  apps.NewRecs(m, maxCells, cStride, "cells"),
		bodies: apps.NewRecs(m, n, bStride, "bodies"),
		isLeaf: make([]bool, maxCells),
		count:  make([]int32, maxCells),
		child:  make([][8]int32, maxCells),
		center: make([][3]float64, maxCells),
		half:   make([]float64, maxCells),
		com:    make([][3]float64, maxCells),
		mass:   make([]float64, maxCells),
		pos:    make([][3]float64, n),
		vel:    make([][3]float64, n),
		acc:    make([][3]float64, n),
		bm:     make([]float64, n),
	}
	// Plummer-model initial conditions, Morton-sorted so contiguous body
	// ranges are spatially local.
	initPlummer(t, n)

	locks := make([]*core.Lock, lockPool)
	for i := range locks {
		locks[i] = m.NewLock(fmt.Sprintf("cell%d", i))
	}
	bar := m.NewBarrierN("barnes.main", cfg.Procs)
	res, err := m.Run(func(p *core.Proc) {
		id := p.ID()
		lo, hi := apps.Chunk(n, id, p.NumProcs())
		// Initialization: write the owned bodies' records.
		for b := lo; b < hi; b++ {
			for d := 0; d < 3; d++ {
				t.bodies.Write(p, b, uint64(bPos+8*d))
				t.bodies.Write(p, b, uint64(bVel+8*d))
			}
			t.bodies.Write(p, b, bMass)
		}
		apps.Begin(p, bar)

		for step := 0; step < pr.Steps; step++ {
			// Phase 1: processor 0 resets the tree root spanning space.
			if id == 0 {
				t.next = 0
				root := t.allocCell([3]float64{0, 0, 0}, boundingHalf(t))
				t.root = root
				t.writeCellMeta(p, root)
			}
			bar.Wait(p)
			// Phase 2: parallel tree build under per-cell locks.
			for b := lo; b < hi; b++ {
				for d := 0; d < 3; d++ {
					t.bodies.Read(p, b, uint64(bPos+8*d))
				}
				t.insert(p, locks, b)
			}
			bar.Wait(p)
			// Phase 3: centre-of-mass pass, parallel over depth-2
			// subtrees, then a cheap upper-level combine by processor 0.
			const comDepth = 2
			subroots := t.subtreeRootsAtDepth(comDepth)
			for i, c := range subroots {
				if i%p.NumProcs() == id {
					t.computeCOM(p, c)
				}
			}
			bar.Wait(p)
			if id == 0 {
				t.combineUpper(p, t.root, 0, comDepth)
			}
			bar.Wait(p)
			// Phase 4: force computation — the dominant phase, reading
			// the shared octree.
			for b := lo; b < hi; b++ {
				for d := 0; d < 3; d++ {
					t.bodies.Read(p, b, uint64(bPos+8*d))
				}
				acc := t.force(p, b, pr.Theta)
				t.acc[b] = acc
				for d := 0; d < 3; d++ {
					t.bodies.Write(p, b, uint64(bAcc+8*d))
				}
			}
			bar.Wait(p)
			// Phase 5: leapfrog update of owned bodies.
			for b := lo; b < hi; b++ {
				for d := 0; d < 3; d++ {
					t.bodies.Read(p, b, uint64(bVel+8*d))
					t.vel[b][d] += t.acc[b][d] * dt
					t.pos[b][d] += t.vel[b][d] * dt
					t.bodies.Write(p, b, uint64(bVel+8*d))
					t.bodies.Write(p, b, uint64(bPos+8*d))
					p.Compute(4)
				}
			}
			bar.Wait(p)
		}
	})
	if err != nil {
		return nil, err
	}
	if err := verify(t, pr.Theta); err != nil {
		return nil, err
	}
	return res, nil
}

// boundingHalf returns a half-width covering all bodies around origin.
func boundingHalf(t *tree) float64 {
	maxAbs := 0.0
	for _, p := range t.pos {
		for d := 0; d < 3; d++ {
			if a := math.Abs(p[d]); a > maxAbs {
				maxAbs = a
			}
		}
	}
	return maxAbs*1.01 + 1e-9
}

// initPlummer draws a Plummer-model distribution and Morton-sorts it.
func initPlummer(t *tree, n int) {
	rng := rand.New(rand.NewSource(4242))
	type bodyInit struct {
		pos [3]float64
		vel [3]float64
		key uint32
	}
	bs := make([]bodyInit, n)
	for i := range bs {
		// Plummer radius; clamp the heavy tail for a bounded box.
		r := 1.0 / math.Sqrt(math.Pow(rng.Float64()*0.999+1e-9, -2.0/3.0)-1)
		if r > 8 {
			r = 8
		}
		u, v := rng.Float64(), rng.Float64()
		thetaA := math.Acos(2*u - 1)
		phi := 2 * math.Pi * v
		bs[i].pos = [3]float64{
			r * math.Sin(thetaA) * math.Cos(phi),
			r * math.Sin(thetaA) * math.Sin(phi),
			r * math.Cos(thetaA),
		}
		for d := 0; d < 3; d++ {
			bs[i].vel[d] = (rng.Float64() - 0.5) * 0.1
		}
	}
	for i := range bs {
		q := func(x float64) uint32 {
			v := (x + 8) / 16 * 1023
			if v < 0 {
				v = 0
			}
			if v > 1023 {
				v = 1023
			}
			return uint32(v)
		}
		bs[i].key = apps.Morton3(q(bs[i].pos[0]), q(bs[i].pos[1]), q(bs[i].pos[2]))
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].key < bs[j].key })
	for i := range bs {
		t.pos[i] = bs[i].pos
		t.vel[i] = bs[i].vel
		t.bm[i] = 1.0 / float64(n)
	}
}

// verify compares tree accelerations with a direct sum on sampled bodies.
// Tolerances are set for θ = 1.0, which is a deliberately coarse opening
// criterion.
func verify(t *tree, theta float64) error {
	n := len(t.pos)
	samples := 16
	if n < samples {
		samples = n
	}
	var sumRel float64
	for s := 0; s < samples; s++ {
		b := s * n / samples
		// t.acc holds the last step's tree forces computed BEFORE the
		// final position update, so compute the direct sum at the
		// pre-update positions: undo one leapfrog step.
		var pre [3]float64
		for d := 0; d < 3; d++ {
			pre[d] = t.pos[b][d] - t.vel[b][d]*dt
		}
		var want [3]float64
		for o := 0; o < n; o++ {
			if o == b {
				continue
			}
			var opre [3]float64
			for d := 0; d < 3; d++ {
				opre[d] = t.pos[o][d] - t.vel[o][d]*dt
			}
			addGravity(&want, pre, opre, t.bm[o])
		}
		got := t.acc[b]
		wn := math.Sqrt(want[0]*want[0] + want[1]*want[1] + want[2]*want[2])
		dx := got[0] - want[0]
		dy := got[1] - want[1]
		dz := got[2] - want[2]
		en := math.Sqrt(dx*dx + dy*dy + dz*dz)
		if wn > 1e-12 {
			sumRel += en / wn
		}
	}
	if avg := sumRel / float64(samples); avg > 0.25 {
		return fmt.Errorf("barnes: mean relative force error %.3f exceeds 0.25 (θ=%.2f)", avg, theta)
	}
	return nil
}
