package barnes

import (
	"fmt"
	"testing"

	"clustersim/internal/apps"
	"clustersim/internal/core"
)

func testCfg(procs, clusterSize int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Procs = procs
	cfg.ClusterSize = clusterSize
	return cfg
}

func TestForcesMatchDirectSum(t *testing.T) {
	res, err := Run(testCfg(4, 1), ParamsFor(apps.SizeTest))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Aggregate().References() == 0 {
		t.Fatal("no references")
	}
}

func TestCorrectAcrossClusterSizes(t *testing.T) {
	for _, cs := range []int{1, 2, 4} {
		if _, err := Run(testCfg(4, cs), ParamsFor(apps.SizeTest)); err != nil {
			t.Errorf("cluster %d: %v", cs, err)
		}
	}
}

func TestTightThetaIsMoreAccurate(t *testing.T) {
	// θ=0.3 opens many more cells; the run must still verify (tolerance
	// is fixed) and issue more references than θ=1.0.
	loose, err := Run(testCfg(4, 1), Params{Bodies: 256, Steps: 1, Theta: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Run(testCfg(4, 1), Params{Bodies: 256, Steps: 1, Theta: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Aggregate().References() <= loose.Aggregate().References() {
		t.Errorf("tight theta should do more work: %d vs %d",
			tight.Aggregate().References(), loose.Aggregate().References())
	}
}

func TestRejectsBadParams(t *testing.T) {
	if _, err := Run(testCfg(4, 1), Params{Bodies: 1, Steps: 1, Theta: 1}); err == nil {
		t.Error("want error for one body")
	}
	if _, err := Run(testCfg(4, 1), Params{Bodies: 16, Steps: 1, Theta: 0}); err == nil {
		t.Error("want error for zero theta")
	}
}

func TestDeterministic(t *testing.T) {
	p := ParamsFor(apps.SizeTest)
	r1, err := Run(testCfg(4, 2), p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(testCfg(4, 2), p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExecTime != r2.ExecTime {
		t.Fatalf("nondeterministic: %d vs %d", r1.ExecTime, r2.ExecTime)
	}
}

func TestParallelBuildConsistent(t *testing.T) {
	// The same problem built by 1 and by 8 processors must produce
	// verifiable forces (the per-cell-lock build must not lose bodies).
	for _, procs := range []int{1, 2, 8} {
		if _, err := Run(testCfg(procs, 1), Params{Bodies: 512, Steps: 1, Theta: 0.8}); err != nil {
			t.Errorf("procs=%d: %v", procs, err)
		}
	}
}

func TestMultipleSteps(t *testing.T) {
	if _, err := Run(testCfg(4, 2), Params{Bodies: 128, Steps: 3, Theta: 1.0}); err != nil {
		t.Errorf("3 steps: %v", err)
	}
}

func TestWorkloadMetadata(t *testing.T) {
	w := Workload()
	if w.Name != "barnes" || w.Run == nil {
		t.Fatalf("workload = %+v", w)
	}
}

// TestClusteringNearNeutralInfinite reproduces the paper's Figure 2
// finding for Barnes: with infinite caches, clustering yields almost no
// benefit (≤ a few percent).
func TestClusteringNearNeutralInfinite(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := Params{Bodies: 1024, Steps: 1, Theta: 1.0}
	base, err := Run(testCfg(8, 1), p)
	if err != nil {
		t.Fatal(err)
	}
	clus, err := Run(testCfg(8, 4), p)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(clus.ExecTime) / float64(base.ExecTime)
	if ratio < 0.75 || ratio > 1.15 {
		t.Errorf("Barnes infinite-cache clustering ratio %.3f, expected near-neutral", ratio)
	}
}

// buildTreeForAudit runs one step on a machine and returns the tree for
// structural inspection.
func buildTreeForAudit(t *testing.T, procs int, bodies int) *tree {
	t.Helper()
	// Re-run the public entry point but keep the tree: replicate Run's
	// construction at small scale with a single step.
	cfg := testCfg(procs, 1)
	pr := Params{Bodies: bodies, Steps: 1, Theta: 1.0}
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := pr.Bodies
	maxCells := 4*n + 64
	tr := &tree{
		cells:  apps.NewRecs(m, maxCells, cStride, "cells"),
		bodies: apps.NewRecs(m, n, bStride, "bodies"),
		isLeaf: make([]bool, maxCells),
		count:  make([]int32, maxCells),
		child:  make([][8]int32, maxCells),
		center: make([][3]float64, maxCells),
		half:   make([]float64, maxCells),
		com:    make([][3]float64, maxCells),
		mass:   make([]float64, maxCells),
		pos:    make([][3]float64, n),
		vel:    make([][3]float64, n),
		acc:    make([][3]float64, n),
		bm:     make([]float64, n),
	}
	initPlummer(tr, n)
	locks := make([]*core.Lock, lockPool)
	for i := range locks {
		locks[i] = m.NewLock(fmt.Sprintf("cell%d", i))
	}
	bar := m.NewBarrier()
	_, err = m.Run(func(p *core.Proc) {
		id := p.ID()
		lo, hi := apps.Chunk(n, id, p.NumProcs())
		if id == 0 {
			tr.next = 0
			root := tr.allocCell([3]float64{0, 0, 0}, boundingHalf(tr))
			tr.root = root
			tr.writeCellMeta(p, root)
		}
		bar.Wait(p)
		for b := lo; b < hi; b++ {
			tr.insert(p, locks, b)
		}
		bar.Wait(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestTreeContainsEveryBodyExactlyOnce audits the parallel build: no
// body may be lost or duplicated by racing inserts.
func TestTreeContainsEveryBodyExactlyOnce(t *testing.T) {
	for _, procs := range []int{1, 4, 8} {
		tr := buildTreeForAudit(t, procs, 300)
		seen := make([]int, 300)
		var walk func(c int)
		walk = func(c int) {
			if tr.isLeaf[c] {
				for i := 0; i < int(tr.count[c]); i++ {
					seen[tr.child[c][i]]++
				}
				return
			}
			for i := 0; i < 8; i++ {
				if ch := tr.child[c][i]; ch != -1 {
					walk(int(ch))
				}
			}
		}
		walk(tr.root)
		for b, n := range seen {
			if n != 1 {
				t.Fatalf("procs=%d: body %d appears %d times in the tree", procs, b, n)
			}
		}
	}
}

// TestTreeGeometry audits spatial containment: every body sits inside
// the cell that holds it, and children nest inside parents.
func TestTreeGeometry(t *testing.T) {
	tr := buildTreeForAudit(t, 4, 300)
	var walk func(c int)
	walk = func(c int) {
		for d := 0; d < 3; d++ {
			if tr.half[c] <= 0 {
				t.Fatalf("cell %d has nonpositive half-width", c)
			}
		}
		if tr.isLeaf[c] {
			for i := 0; i < int(tr.count[c]); i++ {
				b := tr.child[c][i]
				for d := 0; d < 3; d++ {
					lo := tr.center[c][d] - tr.half[c] - 1e-9
					hi := tr.center[c][d] + tr.half[c] + 1e-9
					if tr.pos[b][d] < lo || tr.pos[b][d] > hi {
						t.Fatalf("body %d outside its leaf %d in dim %d", b, c, d)
					}
				}
			}
			return
		}
		for i := 0; i < 8; i++ {
			ch := tr.child[c][i]
			if ch == -1 {
				continue
			}
			if tr.half[int(ch)] > tr.half[c]/2+1e-12 {
				t.Fatalf("child %d larger than half its parent %d", ch, c)
			}
			walk(int(ch))
		}
	}
	walk(tr.root)
}

// TestLeafBucketBound: no settled leaf may exceed the bucket capacity.
func TestLeafBucketBound(t *testing.T) {
	tr := buildTreeForAudit(t, 8, 500)
	var walk func(c int)
	walk = func(c int) {
		if tr.isLeaf[c] {
			if int(tr.count[c]) > bucketCap {
				t.Fatalf("leaf %d holds %d bodies (cap %d)", c, tr.count[c], bucketCap)
			}
			return
		}
		for i := 0; i < 8; i++ {
			if ch := tr.child[c][i]; ch != -1 {
				walk(int(ch))
			}
		}
	}
	walk(tr.root)
}
