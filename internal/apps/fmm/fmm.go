// Package fmm implements the paper's FMM application: a two-dimensional
// uniform Fast Multipole Method with the complex-logarithm kernel
// (Greengard-Rokhlin). Leaves of a uniform quadtree carry multipole
// expansions that are translated up (M2M), converted across interaction
// lists (M2L), pushed down (L2L) and evaluated at the bodies (L2P), with
// direct evaluation (P2P) among neighbouring leaves. Like Barnes the
// communication is low-volume, unstructured and hierarchical, with an
// even smaller shared working set (the expansion coefficients).
package fmm

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"clustersim/internal/apps"
	"clustersim/internal/core"
)

// Params sizes one FMM run.
type Params struct {
	Bodies int
	Terms  int // expansion order p (coefficients 0..p)
}

// ParamsFor maps a size class to parameters. SizePaper matches the
// paper's 8192 particles.
func ParamsFor(size apps.Size) Params {
	switch size {
	case apps.SizeTest:
		return Params{Bodies: 256, Terms: 8}
	case apps.SizePaper:
		return Params{Bodies: 8192, Terms: 8}
	default:
		return Params{Bodies: 2048, Terms: 8}
	}
}

// Workload registers FMM in the application table.
func Workload() apps.Runner {
	return apps.Runner{
		Name:           "fmm",
		Representative: "Fast Multipole N-body Method",
		PaperProblem:   "8192 particles",
		Communication:  "Low volume, unstructured, but hierarchical",
		WorkingSet:     "small (4KB), constant in n",
		Run: func(cfg core.Config, size apps.Size) (*core.Result, error) {
			return Run(cfg, ParamsFor(size))
		},
	}
}

// Body record layout, stride 64: position (re 0, im 8), charge 16,
// field (re 24, im 32).
const (
	bPos    = 0
	bCharge = 16
	bField  = 24
	bStride = 64
)

// quad holds the quadtree geometry and Go-side data.
type quad struct {
	depth  int   // leaf level
	lvlOff []int // box-id offset per level
	side   []int // boxes per edge per level
	nBoxes int

	terms int
	binom [][]float64

	mpole *apps.C128 // [box][term]
	local *apps.C128
	brec  apps.Recs

	pos    []complex128
	charge []float64
	field  []complex128

	leafBodies [][]int32 // bodies per leaf box (leaf-local index)
}

func (q *quad) boxID(level, ix, iy int) int { return q.lvlOff[level] + iy*q.side[level] + ix }

func (q *quad) center(level, ix, iy int) complex128 {
	w := 1.0 / float64(q.side[level])
	return complex((float64(ix)+0.5)*w, (float64(iy)+0.5)*w)
}

func (q *quad) coefIdx(box, k int) int { return box*(q.terms+1) + k }

// readMpole loads a box's full multipole expansion through the simulator.
func (q *quad) readMpole(p *core.Proc, box int) []complex128 {
	out := make([]complex128, q.terms+1)
	for k := 0; k <= q.terms; k++ {
		out[k] = q.mpole.Get(p, q.coefIdx(box, k))
	}
	return out
}

// Run executes the FMM and verifies the field against a direct sum.
func Run(cfg core.Config, pr Params) (*core.Result, error) {
	res, q, err := run(cfg, pr)
	if err != nil {
		return nil, err
	}
	if err := q.verify(); err != nil {
		return nil, err
	}
	return res, nil
}

// SampledError runs the FMM and returns the worst sampled relative field
// error against the direct sum — used to test spectral convergence in
// the expansion order.
func SampledError(cfg core.Config, pr Params) (float64, error) {
	_, q, err := run(cfg, pr)
	if err != nil {
		return 0, err
	}
	return q.worstSampledError(), nil
}

func run(cfg core.Config, pr Params) (*core.Result, *quad, error) {
	if pr.Bodies < 2 || pr.Terms < 2 || pr.Terms > 20 {
		return nil, nil, fmt.Errorf("fmm: bad params %+v", pr)
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		return nil, nil, err
	}
	n := pr.Bodies
	depth := 2
	for (1<<(2*depth+2))*10 <= n { // aim for ≈10+ bodies per leaf
		depth++
	}
	q := &quad{depth: depth, terms: pr.Terms}
	q.lvlOff = make([]int, depth+1)
	q.side = make([]int, depth+1)
	off := 0
	for l := 0; l <= depth; l++ {
		q.lvlOff[l] = off
		q.side[l] = 1 << l
		off += q.side[l] * q.side[l]
	}
	q.nBoxes = off
	q.binom = pascal(2*pr.Terms + 2)
	q.mpole = apps.NewC128(m, q.nBoxes*(pr.Terms+1), "multipoles")
	q.local = apps.NewC128(m, q.nBoxes*(pr.Terms+1), "locals")
	q.brec = apps.NewRecs(m, n, bStride, "bodies")
	q.pos = make([]complex128, n)
	q.charge = make([]float64, n)
	q.field = make([]complex128, n)

	// Deterministic body distribution, binned to leaves Go-side.
	rng := rand.New(rand.NewSource(777))
	leafSide := q.side[depth]
	q.leafBodies = make([][]int32, leafSide*leafSide)
	for i := 0; i < n; i++ {
		q.pos[i] = complex(rng.Float64(), rng.Float64())
		q.charge[i] = 1.0 / float64(n)
		ix := int(real(q.pos[i]) * float64(leafSide))
		iy := int(imag(q.pos[i]) * float64(leafSide))
		q.leafBodies[iy*leafSide+ix] = append(q.leafBodies[iy*leafSide+ix], int32(i))
	}

	bar := m.NewBarrierN("fmm.main", cfg.Procs)
	res, err := m.Run(func(p *core.Proc) {
		id := p.ID()
		P := p.NumProcs()
		// Initialization: write owned body records.
		blo, bhi := apps.Chunk(n, id, P)
		for b := blo; b < bhi; b++ {
			q.brec.Write(p, b, bPos)
			q.brec.Write(p, b, bPos+8)
			q.brec.Write(p, b, bCharge)
		}
		apps.Begin(p, bar)

		// Phase 1: P2M on owned leaves.
		nl := leafSide * leafSide
		llo, lhi := apps.Chunk(nl, id, P)
		for leaf := llo; leaf < lhi; leaf++ {
			q.p2m(p, leaf)
		}
		bar.Wait(p)
		// Phase 2: M2M up the tree, one level at a time.
		for l := depth - 1; l >= 0; l-- {
			nb := q.side[l] * q.side[l]
			lo, hi := apps.Chunk(nb, id, P)
			for bi := lo; bi < hi; bi++ {
				q.m2m(p, l, bi%q.side[l], bi/q.side[l])
			}
			bar.Wait(p)
		}
		// Phase 3: downward pass — L2L from parent plus M2L over the
		// interaction list, from level 2 to the leaves.
		for l := 2; l <= depth; l++ {
			nb := q.side[l] * q.side[l]
			lo, hi := apps.Chunk(nb, id, P)
			for bi := lo; bi < hi; bi++ {
				q.downward(p, l, bi%q.side[l], bi/q.side[l])
			}
			bar.Wait(p)
		}
		// Phase 4: L2P + P2P on owned leaves.
		for leaf := llo; leaf < lhi; leaf++ {
			q.evaluate(p, leaf)
		}
		bar.Wait(p)
	})
	if err != nil {
		return nil, nil, err
	}
	return res, q, nil
}

// p2m builds the multipole expansion of one leaf from its bodies.
func (q *quad) p2m(p *core.Proc, leaf int) {
	side := q.side[q.depth]
	ix, iy := leaf%side, leaf/side
	z0 := q.center(q.depth, ix, iy)
	box := q.boxID(q.depth, ix, iy)
	coef := make([]complex128, q.terms+1)
	for _, b := range q.leafBodies[leaf] {
		q.brec.Read(p, int(b), bPos)
		q.brec.Read(p, int(b), bPos+8)
		q.brec.Read(p, int(b), bCharge)
		d := q.pos[b] - z0
		qi := complex(q.charge[b], 0)
		coef[0] += qi
		pw := complex(1, 0)
		for k := 1; k <= q.terms; k++ {
			pw *= d
			coef[k] -= qi * pw / complex(float64(k), 0)
			p.Compute(6)
		}
	}
	for k := 0; k <= q.terms; k++ {
		q.mpole.Set(p, q.coefIdx(box, k), coef[k])
	}
}

// m2m merges the four children's multipoles into box (ix,iy) at level l.
func (q *quad) m2m(p *core.Proc, l, ix, iy int) {
	z0 := q.center(l, ix, iy)
	out := make([]complex128, q.terms+1)
	for cy := 0; cy < 2; cy++ {
		for cx := 0; cx < 2; cx++ {
			cix, ciy := 2*ix+cx, 2*iy+cy
			cbox := q.boxID(l+1, cix, ciy)
			a := q.readMpole(p, cbox)
			d := q.center(l+1, cix, ciy) - z0
			out[0] += a[0]
			for k := 1; k <= q.terms; k++ {
				// -Q d^k / k term.
				s := -a[0] * cpow(d, k) / complex(float64(k), 0)
				for j := 1; j <= k; j++ {
					s += a[j] * cpow(d, k-j) * complex(q.binom[k-1][j-1], 0)
				}
				out[k] += s
				p.Compute(8)
			}
		}
	}
	box := q.boxID(l, ix, iy)
	for k := 0; k <= q.terms; k++ {
		q.mpole.Set(p, q.coefIdx(box, k), out[k])
	}
}

// downward computes box (ix,iy)'s local expansion: the parent's local
// shifted (L2L) plus M2L from the interaction list — children of the
// parent's neighbours that are not adjacent to this box.
func (q *quad) downward(p *core.Proc, l, ix, iy int) {
	box := q.boxID(l, ix, iy)
	zt := q.center(l, ix, iy)
	out := make([]complex128, q.terms+1)
	if l > 2 {
		// L2L from the parent.
		pix, piy := ix/2, iy/2
		pbox := q.boxID(l-1, pix, piy)
		zp := q.center(l-1, pix, piy)
		bl := make([]complex128, q.terms+1)
		for k := 0; k <= q.terms; k++ {
			bl[k] = q.local.Get(p, q.coefIdx(pbox, k))
		}
		d := zt - zp
		for kk := 0; kk <= q.terms; kk++ {
			var s complex128
			for j := kk; j <= q.terms; j++ {
				s += bl[j] * complex(q.binom[j][kk], 0) * cpow(d, j-kk)
			}
			out[kk] = s
			p.Compute(8)
		}
	}
	// M2L over the interaction list.
	side := q.side[l]
	pix, piy := ix/2, iy/2
	for ny := piy - 1; ny <= piy+1; ny++ {
		for nx := pix - 1; nx <= pix+1; nx++ {
			if nx < 0 || ny < 0 || nx >= q.side[l-1] || ny >= q.side[l-1] {
				continue
			}
			for cy := 0; cy < 2; cy++ {
				for cx := 0; cx < 2; cx++ {
					six, siy := 2*nx+cx, 2*ny+cy
					if six < 0 || siy < 0 || six >= side || siy >= side {
						continue
					}
					if abs(six-ix) <= 1 && abs(siy-iy) <= 1 {
						continue // adjacent: handled by P2P or deeper levels
					}
					sbox := q.boxID(l, six, siy)
					a := q.readMpole(p, sbox)
					z0 := q.center(l, six, siy) - zt // source center in target frame
					// Greengard 2D M2L.
					b0 := a[0] * cmplx.Log(-z0)
					sign := -1.0
					for k := 1; k <= q.terms; k++ {
						b0 += a[k] / cpow(z0, k) * complex(sign, 0)
						sign = -sign
					}
					out[0] += b0
					for kk := 1; kk <= q.terms; kk++ {
						s := -a[0] / (complex(float64(kk), 0) * cpow(z0, kk))
						sign := -1.0
						for k := 1; k <= q.terms; k++ {
							s += a[k] / cpow(z0, k+kk) * complex(sign*q.binom[kk+k-1][k-1], 0)
							sign = -sign
						}
						out[kk] += s
						p.Compute(10)
					}
				}
			}
		}
	}
	for k := 0; k <= q.terms; k++ {
		q.local.Set(p, q.coefIdx(box, k), out[k])
	}
}

// evaluate computes the field at each body of a leaf: the local
// expansion's derivative plus direct interactions with neighbour leaves.
func (q *quad) evaluate(p *core.Proc, leaf int) {
	side := q.side[q.depth]
	ix, iy := leaf%side, leaf/side
	box := q.boxID(q.depth, ix, iy)
	zc := q.center(q.depth, ix, iy)
	bl := make([]complex128, q.terms+1)
	for k := 0; k <= q.terms; k++ {
		bl[k] = q.local.Get(p, q.coefIdx(box, k))
	}
	for _, b := range q.leafBodies[leaf] {
		q.brec.Read(p, int(b), bPos)
		q.brec.Read(p, int(b), bPos+8)
		d := q.pos[b] - zc
		// E = φ'(z) = Σ k·b_k d^(k-1).
		var e complex128
		for k := 1; k <= q.terms; k++ {
			e += complex(float64(k), 0) * bl[k] * cpow(d, k-1)
			p.Compute(6)
		}
		// P2P with neighbour leaves (including own).
		for ny := iy - 1; ny <= iy+1; ny++ {
			for nx := ix - 1; nx <= ix+1; nx++ {
				if nx < 0 || ny < 0 || nx >= side || ny >= side {
					continue
				}
				for _, ob := range q.leafBodies[ny*side+nx] {
					if ob == b {
						continue
					}
					q.brec.Read(p, int(ob), bPos)
					q.brec.Read(p, int(ob), bPos+8)
					q.brec.Read(p, int(ob), bCharge)
					e += complex(q.charge[ob], 0) / (q.pos[b] - q.pos[ob])
					p.Compute(12)
				}
			}
		}
		q.field[b] = e
		q.brec.Write(p, int(b), bField)
		q.brec.Write(p, int(b), bField+8)
	}
}

// verify compares sampled fields with the direct O(n²) sum. The error
// bound follows the classic estimate (1/(c-1))^p with separation ratio
// c ≈ 2.83 for a uniform interaction list, with generous slack.
func (q *quad) verify() error {
	worst := q.worstSampledError()
	tol := 40 * math.Pow(0.55, float64(q.terms))
	if worst > tol {
		return fmt.Errorf("fmm: worst sampled relative field error %.2e exceeds %.2e (p=%d)",
			worst, tol, q.terms)
	}
	return nil
}

// worstSampledError returns the worst relative field error over sampled
// bodies against the direct O(n²) sum.
func (q *quad) worstSampledError() float64 {
	n := len(q.pos)
	samples := 24
	if n < samples {
		samples = n
	}
	var worst float64
	for s := 0; s < samples; s++ {
		b := s * n / samples
		var want complex128
		for o := 0; o < n; o++ {
			if o == b {
				continue
			}
			want += complex(q.charge[o], 0) / (q.pos[b] - q.pos[o])
		}
		rel := cmplx.Abs(q.field[b]-want) / (cmplx.Abs(want) + 1e-12)
		if rel > worst {
			worst = rel
		}
	}
	return worst
}

func cpow(z complex128, k int) complex128 {
	out := complex(1, 0)
	for i := 0; i < k; i++ {
		out *= z
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func pascal(n int) [][]float64 {
	b := make([][]float64, n)
	for i := range b {
		b[i] = make([]float64, n)
		b[i][0] = 1
		for j := 1; j <= i; j++ {
			b[i][j] = b[i-1][j-1]
			if j <= i-1 {
				b[i][j] += b[i-1][j]
			}
		}
	}
	return b
}
