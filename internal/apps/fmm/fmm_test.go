package fmm

import (
	"testing"

	"clustersim/internal/apps"
	"clustersim/internal/core"
)

func testCfg(procs, clusterSize int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Procs = procs
	cfg.ClusterSize = clusterSize
	return cfg
}

func TestFieldMatchesDirectSum(t *testing.T) {
	res, err := Run(testCfg(4, 1), ParamsFor(apps.SizeTest))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Aggregate().References() == 0 {
		t.Fatal("no references")
	}
}

func TestCorrectAcrossClusterSizes(t *testing.T) {
	for _, cs := range []int{1, 2, 4} {
		if _, err := Run(testCfg(4, cs), ParamsFor(apps.SizeTest)); err != nil {
			t.Errorf("cluster %d: %v", cs, err)
		}
	}
}

func TestExpansionOrderConvergence(t *testing.T) {
	// More terms must shrink the sampled field error — the usual
	// spectral-convergence check for multipole codes.
	errOf := func(terms int) float64 {
		e, err := SampledError(testCfg(2, 1), Params{Bodies: 512, Terms: terms})
		if err != nil {
			t.Fatalf("terms=%d: %v", terms, err)
		}
		return e
	}
	e4 := errOf(4)
	e12 := errOf(12)
	if e12 >= e4 {
		t.Errorf("error did not shrink with order: p=4 → %.2e, p=12 → %.2e", e4, e12)
	}
	if e12 > 1e-4 {
		t.Errorf("p=12 error %.2e too large; expansion math wrong", e12)
	}
}

func TestRejectsBadParams(t *testing.T) {
	if _, err := Run(testCfg(4, 1), Params{Bodies: 1, Terms: 8}); err == nil {
		t.Error("want error for one body")
	}
	if _, err := Run(testCfg(4, 1), Params{Bodies: 64, Terms: 1}); err == nil {
		t.Error("want error for degenerate expansion")
	}
}

func TestDeterministic(t *testing.T) {
	p := ParamsFor(apps.SizeTest)
	r1, err := Run(testCfg(4, 2), p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(testCfg(4, 2), p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExecTime != r2.ExecTime {
		t.Fatalf("nondeterministic: %d vs %d", r1.ExecTime, r2.ExecTime)
	}
}

func TestWorkloadMetadata(t *testing.T) {
	w := Workload()
	if w.Name != "fmm" || w.Run == nil {
		t.Fatalf("workload = %+v", w)
	}
}
