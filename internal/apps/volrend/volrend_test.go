package volrend

import (
	"testing"

	"clustersim/internal/apps"
	"clustersim/internal/core"
)

func testCfg(procs, clusterSize int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Procs = procs
	cfg.ClusterSize = clusterSize
	return cfg
}

func TestRendersAndMatchesSerial(t *testing.T) {
	res, err := Run(testCfg(4, 1), ParamsFor(apps.SizeTest))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Aggregate().References() == 0 {
		t.Fatal("no references")
	}
}

func TestCorrectAcrossClusterSizes(t *testing.T) {
	for _, cs := range []int{1, 2, 4} {
		if _, err := Run(testCfg(4, cs), ParamsFor(apps.SizeTest)); err != nil {
			t.Errorf("cluster %d: %v", cs, err)
		}
	}
}

func TestOctreeMinMaxSound(t *testing.T) {
	v := &volume{edge: 16, data: buildVolume(16)}
	v.buildOctree()
	// Every voxel must lie within its leaf's [min,max] and the root's.
	root := v.nodeIdx(0, 0, 0, 0)
	leafSide := v.edge / leafBlock
	lvl := v.levels - 1
	for z := 0; z < v.edge; z++ {
		for y := 0; y < v.edge; y++ {
			for x := 0; x < v.edge; x++ {
				d := v.at(x, y, z)
				li := v.nodeIdx(lvl, x*leafSide/v.edge, y*leafSide/v.edge, z*leafSide/v.edge)
				if d < v.minv[li] || d > v.maxv[li] {
					t.Fatalf("voxel (%d,%d,%d)=%d outside leaf [%d,%d]",
						x, y, z, d, v.minv[li], v.maxv[li])
				}
				if d < v.minv[root] || d > v.maxv[root] {
					t.Fatalf("voxel outside root bounds")
				}
			}
		}
	}
}

func TestEmptySpaceSkippingSavesReads(t *testing.T) {
	// Rendering with the octree must touch far fewer voxels than a
	// naive march would (volume is mostly empty around the object).
	res, err := Run(testCfg(2, 1), Params{VolumeEdge: 32, Width: 16, Height: 16})
	if err != nil {
		t.Fatal(err)
	}
	naive := uint64(16 * 16 * 32 * 8) // every step fully sampled
	if reads := res.Aggregate().Reads; reads >= naive {
		t.Errorf("no empty-space skipping benefit: %d reads ≥ naive %d", reads, naive)
	}
}

func TestImageHasContent(t *testing.T) {
	// Guard against transfer-function regressions producing black frames;
	// exercised via the run's own serial comparison plus a direct render.
	v := &volume{edge: 32, data: buildVolume(32)}
	v.buildOctree()
	nonzero := 0
	for py := 0; py < 16; py++ {
		for px := 0; px < 16; px++ {
			if v.render(nil, px, py, 16, 16) > 0 {
				nonzero++
			}
		}
	}
	if nonzero < 16 {
		t.Fatalf("only %d nonzero pixels; volume or transfer function broken", nonzero)
	}
}

func TestRejectsBadParams(t *testing.T) {
	if _, err := Run(testCfg(4, 1), Params{VolumeEdge: 17, Width: 16, Height: 16}); err == nil {
		t.Error("want error for non-power-of-two volume")
	}
	if _, err := Run(testCfg(4, 1), Params{VolumeEdge: 16, Width: 1, Height: 16}); err == nil {
		t.Error("want error for tiny image")
	}
}

func TestDeterministic(t *testing.T) {
	p := ParamsFor(apps.SizeTest)
	r1, err := Run(testCfg(4, 2), p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(testCfg(4, 2), p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExecTime != r2.ExecTime {
		t.Fatalf("nondeterministic: %d vs %d", r1.ExecTime, r2.ExecTime)
	}
}

func TestWorkloadMetadata(t *testing.T) {
	w := Workload()
	if w.Name != "volrend" || w.Run == nil {
		t.Fatalf("workload = %+v", w)
	}
}

// TestSkipDistanceSound: a skip must never jump past an opaque voxel —
// every skipped position's enclosing leaf is fully transparent.
func TestSkipDistanceSound(t *testing.T) {
	v := &volume{edge: 32, data: buildVolume(32)}
	v.buildOctree()
	for x := 0; x < 32; x += 3 {
		for y := 0; y < 32; y += 3 {
			z := 31
			for z >= 0 {
				skip := v.skipDistance(nil, x, y, z)
				if skip == 0 {
					z--
					continue
				}
				for dz := 0; dz < skip && z-dz >= 0; dz++ {
					if v.at(x, y, z-dz) >= threshold {
						t.Fatalf("skip from (%d,%d,%d) of %d jumps over opaque voxel at z=%d",
							x, y, z, skip, z-dz)
					}
				}
				z -= skip
			}
		}
	}
}

// TestTrilinearInterpolatesBetweenVoxels: at voxel centers the sample
// equals the voxel; between two voxels it lies between their values.
func TestTrilinearAtCenters(t *testing.T) {
	v := &volume{edge: 8, data: make([]uint8, 8*8*8)}
	for i := range v.data {
		v.data[i] = uint8(i % 251)
	}
	for _, c := range [][3]int{{2, 3, 4}, {0, 0, 0}, {7, 7, 7}} {
		got := v.trilinear(nil, float64(c[0])+0.5, float64(c[1])+0.5, float64(c[2])+0.5)
		want := float64(v.at(c[0], c[1], c[2]))
		if got != want {
			t.Fatalf("center sample at %v = %v, want %v", c, got, want)
		}
	}
	a := float64(v.at(1, 1, 1))
	b := float64(v.at(2, 1, 1))
	mid := v.trilinear(nil, 2.0, 1.5, 1.5) // halfway between the two in x
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	if mid < lo || mid > hi {
		t.Fatalf("midpoint %v outside [%v,%v]", mid, lo, hi)
	}
}
