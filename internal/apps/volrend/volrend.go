// Package volrend implements the paper's Volrend application: ray-cast
// volume rendering of a 3D density data set with a shared min-max octree
// imposed on the volume for empty-space skipping — the paper notes both
// graphics codes "impose an octree data structure on the volume for
// efficiency which is shared". The pixel plane is tiled across
// processors like Ocean's grid; rays do not reflect (the paper's stated
// difference from Raytrace), so working sets are smaller. The
// head-from-CT input is substituted by a procedural density volume of
// nested shells with the same character: mostly empty space around a
// dense, structured object.
//
// Every run is verified pixel-exactly against a serial re-render using
// the same code without simulated references.
package volrend

import (
	"fmt"
	"math"

	"clustersim/internal/apps"
	"clustersim/internal/core"
)

// Params sizes one Volrend run.
type Params struct {
	VolumeEdge    int // voxels per edge (power of two ≥ 8)
	Width, Height int // image size
}

// ParamsFor maps a size class to parameters. SizePaper substitutes a
// 128³ procedural volume for the paper's 256×256×128 CT head.
func ParamsFor(size apps.Size) Params {
	switch size {
	case apps.SizeTest:
		return Params{VolumeEdge: 16, Width: 16, Height: 16}
	case apps.SizePaper:
		return Params{VolumeEdge: 128, Width: 128, Height: 128}
	default:
		return Params{VolumeEdge: 64, Width: 64, Height: 64}
	}
}

// Workload registers Volrend in the application table.
func Workload() apps.Runner {
	return apps.Runner{
		Name:           "volrend",
		Representative: "Volume rendering in computer graphics",
		PaperProblem:   "Human head from CT scan (procedural substitute)",
		Communication:  "Read only, quite unstructured",
		WorkingSet:     "quite small, O(cbrt n)",
		Run: func(cfg core.Config, size apps.Size) (*core.Result, error) {
			return Run(cfg, ParamsFor(size))
		},
	}
}

const (
	leafBlock = 4 // octree leaves cover 4³ voxel blocks
	threshold = 60
	// Octree node record layout, stride 16: min at 0, max at 8.
	oMin    = 0
	oMax    = 8
	oStride = 16
)

// volume is the shared data set plus octree; when p is nil the accessors
// skip simulated references so the same code verifies serially.
type volume struct {
	edge int
	data []uint8

	// Complete octree: level 0 is the root; level L has (edge/leafBlock)
	// nodes per axis. minv/maxv indexed by lvlOff[l] + (z*s+y)*s + x.
	levels int
	lvlOff []int
	minv   []uint8
	maxv   []uint8

	vox  *apps.U8
	tree apps.Recs
}

func (v *volume) at(x, y, z int) uint8 {
	return v.data[(z*v.edge+y)*v.edge+x]
}

func (v *volume) readVoxel(p *core.Proc, x, y, z int) uint8 {
	if p != nil {
		v.vox.Get(p, (z*v.edge+y)*v.edge+x)
	}
	return v.at(x, y, z)
}

func (v *volume) nodeIdx(level, x, y, z int) int {
	s := 1 << level
	return v.lvlOff[level] + (z*s+y)*s + x
}

func (v *volume) readNodeMax(p *core.Proc, idx int) uint8 {
	if p != nil {
		v.tree.Read(p, idx, oMax)
	}
	return v.maxv[idx]
}

// buildVolume fills the procedural density field: nested spherical
// shells with angular wobble, empty outside — CT-head-like structure.
func buildVolume(edge int) []uint8 {
	data := make([]uint8, edge*edge*edge)
	c := float64(edge) / 2
	for z := 0; z < edge; z++ {
		for y := 0; y < edge; y++ {
			for x := 0; x < edge; x++ {
				dx, dy, dz := float64(x)-c, float64(y)-c, float64(z)-c
				r := math.Sqrt(dx*dx+dy*dy+dz*dz) / c
				var d float64
				if r < 0.85 {
					shell := math.Sin(r*14+math.Atan2(dy, dx)*2) * 0.5
					d = (1 - r) * 180 * (0.8 + shell*0.4)
					if d < 0 {
						d = 0
					}
					if d > 255 {
						d = 255
					}
				}
				data[(z*edge+y)*edge+x] = uint8(d)
			}
		}
	}
	return data
}

// buildOctree constructs the min-max pyramid bottom-up.
func (v *volume) buildOctree() {
	leafSide := v.edge / leafBlock
	v.levels = 1
	for 1<<(v.levels-1) < leafSide {
		v.levels++
	}
	v.lvlOff = make([]int, v.levels)
	off := 0
	for l := 0; l < v.levels; l++ {
		v.lvlOff[l] = off
		s := 1 << l
		off += s * s * s
	}
	v.minv = make([]uint8, off)
	v.maxv = make([]uint8, off)
	// Leaves.
	l := v.levels - 1
	for z := 0; z < leafSide; z++ {
		for y := 0; y < leafSide; y++ {
			for x := 0; x < leafSide; x++ {
				mn, mx := uint8(255), uint8(0)
				for dz := 0; dz < leafBlock; dz++ {
					for dy := 0; dy < leafBlock; dy++ {
						for dx := 0; dx < leafBlock; dx++ {
							d := v.at(x*leafBlock+dx, y*leafBlock+dy, z*leafBlock+dz)
							if d < mn {
								mn = d
							}
							if d > mx {
								mx = d
							}
						}
					}
				}
				idx := v.nodeIdx(l, x, y, z)
				v.minv[idx], v.maxv[idx] = mn, mx
			}
		}
	}
	// Internal levels.
	for l := v.levels - 2; l >= 0; l-- {
		s := 1 << l
		for z := 0; z < s; z++ {
			for y := 0; y < s; y++ {
				for x := 0; x < s; x++ {
					mn, mx := uint8(255), uint8(0)
					for c := 0; c < 8; c++ {
						ci := v.nodeIdx(l+1, 2*x+c&1, 2*y+(c>>1)&1, 2*z+(c>>2)&1)
						if v.minv[ci] < mn {
							mn = v.minv[ci]
						}
						if v.maxv[ci] > mx {
							mx = v.maxv[ci]
						}
					}
					idx := v.nodeIdx(l, x, y, z)
					v.minv[idx], v.maxv[idx] = mn, mx
				}
			}
		}
	}
}

// skipDistance returns how many voxels along -z the ray may skip from
// (x,y,z) because the enclosing octree region is entirely transparent,
// issuing the node reads it inspects. Returns 0 if the voxel must be
// sampled.
func (v *volume) skipDistance(p *core.Proc, x, y, z int) int {
	best := 0
	for l := v.levels - 1; l >= 0; l-- {
		scale := v.edge / (1 << l)
		idx := v.nodeIdx(l, x/scale, y/scale, z/scale)
		if v.readNodeMax(p, idx) >= threshold {
			break
		}
		// Whole node transparent: skip to just below its z floor.
		best = z - (z/scale)*scale + 1
	}
	return best
}

// render casts one orthographic ray down -z, compositing front to back.
func (v *volume) render(p *core.Proc, px, py, w, h int) int64 {
	x := (float64(px) + 0.5) / float64(w) * float64(v.edge)
	y := (float64(py) + 0.5) / float64(h) * float64(v.edge)
	xi, yi := int(x), int(y)
	if xi >= v.edge {
		xi = v.edge - 1
	}
	if yi >= v.edge {
		yi = v.edge - 1
	}
	var color, alpha float64
	z := v.edge - 1
	for z >= 0 && alpha < 0.95 {
		if skip := v.skipDistance(p, xi, yi, z); skip > 0 {
			z -= skip
			if p != nil {
				p.Compute(6)
			}
			continue
		}
		d := float64(v.trilinear(p, x, y, float64(z)+0.5))
		if d >= threshold {
			a := (d - threshold) / 255 * 0.22
			shade := d / 255 * (0.4 + 0.6*float64(z)/float64(v.edge))
			color += (1 - alpha) * a * shade
			alpha += (1 - alpha) * a
		}
		if p != nil {
			p.Compute(20)
		}
		z--
	}
	return int64(color * 255)
}

// trilinear samples the volume with 8 voxel reads.
func (v *volume) trilinear(p *core.Proc, x, y, z float64) float64 {
	x -= 0.5
	y -= 0.5
	z -= 0.5
	x0, y0, z0 := clampI(int(math.Floor(x)), v.edge-1), clampI(int(math.Floor(y)), v.edge-1), clampI(int(math.Floor(z)), v.edge-1)
	x1, y1, z1 := clampI(x0+1, v.edge-1), clampI(y0+1, v.edge-1), clampI(z0+1, v.edge-1)
	fx, fy, fz := x-float64(x0), y-float64(y0), z-float64(z0)
	fx, fy, fz = clampF(fx), clampF(fy), clampF(fz)
	c000 := float64(v.readVoxel(p, x0, y0, z0))
	c100 := float64(v.readVoxel(p, x1, y0, z0))
	c010 := float64(v.readVoxel(p, x0, y1, z0))
	c110 := float64(v.readVoxel(p, x1, y1, z0))
	c001 := float64(v.readVoxel(p, x0, y0, z1))
	c101 := float64(v.readVoxel(p, x1, y0, z1))
	c011 := float64(v.readVoxel(p, x0, y1, z1))
	c111 := float64(v.readVoxel(p, x1, y1, z1))
	c00 := c000*(1-fx) + c100*fx
	c10 := c010*(1-fx) + c110*fx
	c01 := c001*(1-fx) + c101*fx
	c11 := c011*(1-fx) + c111*fx
	c0 := c00*(1-fy) + c10*fy
	c1 := c01*(1-fy) + c11*fy
	return c0*(1-fz) + c1*fz
}

func clampI(v, hi int) int {
	if v < 0 {
		return 0
	}
	if v > hi {
		return hi
	}
	return v
}

func clampF(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// pixelBlock is one stealable unit of rendering work.
type pixelBlock struct{ x0, y0, x1, y1 int }

const taskBlock = 4 // pixels per block edge

// pixelBlocks splits the image into taskBlock² blocks, enumerated tile
// by tile so processor p's initial queue range covers its own tile.
func pixelBlocks(procs, width, height int) (blocks []pixelBlock, lo, hi []int) {
	gr, gc := apps.ProcGrid(procs)
	lo = make([]int, procs)
	hi = make([]int, procs)
	for id := 0; id < procs; id++ {
		tr, tc := id/gc, id%gc
		ylo, yhi := apps.Chunk(height, tr, gr)
		xlo, xhi := apps.Chunk(width, tc, gc)
		lo[id] = len(blocks)
		for by := ylo; by < yhi; by += taskBlock {
			for bx := xlo; bx < xhi; bx += taskBlock {
				b := pixelBlock{x0: bx, y0: by, x1: bx + taskBlock, y1: by + taskBlock}
				if b.x1 > xhi {
					b.x1 = xhi
				}
				if b.y1 > yhi {
					b.y1 = yhi
				}
				blocks = append(blocks, b)
			}
		}
		hi[id] = len(blocks)
	}
	return blocks, lo, hi
}

// Run renders the volume in parallel and verifies pixel-exactly against
// a serial render.
func Run(cfg core.Config, pr Params) (*core.Result, error) {
	e := pr.VolumeEdge
	if e < 8 || e&(e-1) != 0 || pr.Width < 4 || pr.Height < 4 {
		return nil, fmt.Errorf("volrend: bad params %+v", pr)
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	v := &volume{edge: e, data: buildVolume(e)}
	v.buildOctree()
	v.vox = apps.NewU8(m, e*e*e, "volume")
	v.tree = apps.NewRecs(m, len(v.minv), oStride, "octree")
	img := apps.NewI64(m, pr.Width*pr.Height, "image")

	// Stealable pixel blocks, tile-enumerated as in Raytrace: the SPLASH
	// Volrend balances its very uneven per-ray costs the same way.
	blocks, lo, hi := pixelBlocks(cfg.Procs, pr.Width, pr.Height)
	queues := apps.NewTaskQueues(m, "vr")
	bar := m.NewBarrierN("volrend.main", cfg.Procs)
	res, err := m.Run(func(p *core.Proc) {
		id := p.ID()
		// Initialization: spread the read-only volume publication across
		// processors so first-touch homes it round-robin.
		vlo, vhi := apps.Chunk(e*e*e, id, p.NumProcs())
		for i := vlo; i < vhi; i += 8 {
			v.vox.Set(p, i, v.data[i])
		}
		if id == 0 {
			for i := range v.minv {
				v.tree.Write(p, i, oMin)
				v.tree.Write(p, i, oMax)
			}
		}
		queues.Init(p, lo[id], hi[id])
		apps.Begin(p, bar)

		for {
			task, ok := queues.Next(p)
			if !ok {
				break
			}
			b := blocks[task]
			for py := b.y0; py < b.y1; py++ {
				for px := b.x0; px < b.x1; px++ {
					img.Set(p, py*pr.Width+px, v.render(p, px, py, pr.Width, pr.Height))
				}
			}
		}
		bar.Wait(p)
	})
	if err != nil {
		return nil, err
	}
	for py := 0; py < pr.Height; py++ {
		for px := 0; px < pr.Width; px++ {
			want := v.render(nil, px, py, pr.Width, pr.Height)
			if got := img.Data[py*pr.Width+px]; got != want {
				return nil, fmt.Errorf("volrend: pixel (%d,%d) = %d, serial render says %d",
					px, py, got, want)
			}
		}
	}
	return res, nil
}
