package registry

import (
	"testing"

	"clustersim/internal/apps"
	"clustersim/internal/core"
	"clustersim/internal/trace"
)

func TestAllNinePresent(t *testing.T) {
	want := []string{"barnes", "fft", "fmm", "lu", "mp3d", "ocean", "radix", "raytrace", "volrend"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("position %d: %q, want %q (Table 2 order)", i, got[i], want[i])
		}
	}
}

func TestLookup(t *testing.T) {
	w, err := Lookup("ocean")
	if err != nil || w.Name != "ocean" {
		t.Fatalf("Lookup(ocean) = %v, %v", w, err)
	}
	if _, err := Lookup("doom"); err == nil {
		t.Fatal("want error for unknown app")
	}
}

func TestMetadataComplete(t *testing.T) {
	for _, w := range All() {
		if w.Representative == "" || w.PaperProblem == "" || w.Communication == "" ||
			w.WorkingSet == "" || w.Run == nil {
			t.Errorf("%s: incomplete metadata %+v", w.Name, w)
		}
	}
}

// TestEveryWorkloadRunsAtTestSize is the cross-application smoke test:
// all nine verify at SizeTest on a small clustered machine.
func TestEveryWorkloadRunsAtTestSize(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Procs = 4
	cfg.ClusterSize = 2
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			res, err := w.Run(cfg, apps.SizeTest)
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			if res.ExecTime <= 0 || res.Aggregate().References() == 0 {
				t.Fatalf("%s: empty run", w.Name)
			}
		})
	}
}

// TestEveryWorkloadFiniteCache runs all nine with a small finite cache,
// exercising evictions, replacement hints and writebacks end to end.
func TestEveryWorkloadFiniteCache(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Procs = 4
	cfg.ClusterSize = 2
	cfg.CacheKBPerProc = 4
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			if _, err := w.Run(cfg, apps.SizeTest); err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
		})
	}
}

// TestEveryWorkloadSharedMemoryClusters runs all nine applications on
// the paper's second cluster organisation (private caches + attraction
// memory over a snoopy bus).
func TestEveryWorkloadSharedMemoryClusters(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Procs = 4
	cfg.ClusterSize = 2
	cfg.CacheKBPerProc = 4
	cfg.Organization = core.SharedMemory
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			if _, err := w.Run(cfg, apps.SizeTest); err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
		})
	}
}

// TestEveryWorkloadSetAssociative runs all nine with 2-way
// set-associative cluster caches (the future-work configuration).
func TestEveryWorkloadSetAssociative(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Procs = 4
	cfg.ClusterSize = 2
	cfg.CacheKBPerProc = 4
	cfg.Assoc = 2
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			if _, err := w.Run(cfg, apps.SizeTest); err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
		})
	}
}

// TestEveryWorkloadTraceable records a trace of every application and
// replays it through a different cluster size, checking reference-count
// fidelity.
func TestEveryWorkloadTraceable(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			col := trace.NewCollector(4)
			cfg := core.DefaultConfig()
			cfg.Procs = 4
			cfg.ClusterSize = 1
			cfg.Tracer = col
			if _, err := w.Run(cfg, apps.SizeTest); err != nil {
				t.Fatal(err)
			}
			tr := col.Finish()
			rcfg := core.DefaultConfig()
			rcfg.Procs = 4
			rcfg.ClusterSize = 2
			rep, err := trace.Replay(rcfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			// The replay must visit exactly the references the trace
			// recorded. (The original Result covers only the measured
			// phase after BeginMeasurement, so it is NOT the reference
			// point — the trace captures initialization too.)
			var reads, writes uint64
			for _, ev := range tr.Events {
				switch ev.Kind {
				case core.EvRead:
					reads++
				case core.EvWrite:
					writes++
				}
			}
			ra := rep.Aggregate()
			if ra.Reads != reads || ra.Writes != writes {
				t.Fatalf("replay refs %d/%d differ from trace %d/%d",
					ra.Reads, ra.Writes, reads, writes)
			}
		})
	}
}
