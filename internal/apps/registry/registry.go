// Package registry collects the paper's nine applications into a single
// ordered table, keyed by the names used in Tables 2 and 3 and the
// figures.
package registry

import (
	"fmt"
	"sort"

	"clustersim/internal/apps"
	"clustersim/internal/apps/barnes"
	"clustersim/internal/apps/fft"
	"clustersim/internal/apps/fmm"
	"clustersim/internal/apps/lu"
	"clustersim/internal/apps/mp3d"
	"clustersim/internal/apps/ocean"
	"clustersim/internal/apps/radix"
	"clustersim/internal/apps/raytrace"
	"clustersim/internal/apps/volrend"
)

// All returns every workload in the paper's Table 2 order.
func All() []apps.Runner {
	return []apps.Runner{
		barnes.Workload(),
		fft.Workload(),
		fmm.Workload(),
		lu.Workload(),
		mp3d.Workload(),
		ocean.Workload(),
		radix.Workload(),
		raytrace.Workload(),
		volrend.Workload(),
	}
}

// Names returns the application names in Table 2 order.
func Names() []string {
	var out []string
	for _, w := range All() {
		out = append(out, w.Name)
	}
	return out
}

// Lookup finds a workload by name.
func Lookup(name string) (apps.Runner, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	known := Names()
	sort.Strings(known)
	return apps.Runner{}, fmt.Errorf("registry: unknown application %q (known: %v)", name, known)
}
