// Package registry collects the paper's nine applications into a single
// ordered table, keyed by the names used in Tables 2 and 3 and the
// figures.
package registry

import (
	"fmt"
	"sort"

	"clustersim/internal/apps"
	"clustersim/internal/apps/barnes"
	"clustersim/internal/apps/fft"
	"clustersim/internal/apps/fmm"
	"clustersim/internal/apps/lu"
	"clustersim/internal/apps/mp3d"
	"clustersim/internal/apps/ocean"
	"clustersim/internal/apps/radix"
	"clustersim/internal/apps/raytrace"
	"clustersim/internal/apps/volrend"
	"clustersim/internal/core"
)

// All returns every workload in the paper's Table 2 order.
func All() []apps.Runner {
	runners := []apps.Runner{
		barnes.Workload(),
		fft.Workload(),
		fmm.Workload(),
		lu.Workload(),
		mp3d.Workload(),
		ocean.Workload(),
		radix.Workload(),
		raytrace.Workload(),
		volrend.Workload(),
	}
	for i := range runners {
		runners[i] = labeled(runners[i])
	}
	return runners
}

// labeled defaults Config.Label to the workload's name, so engine panic
// diagnostics name the application without each app having to set it.
// Label is excluded from the config hash, so this changes no results.
func labeled(w apps.Runner) apps.Runner {
	name, inner := w.Name, w.Run
	w.Run = func(cfg core.Config, size apps.Size) (*core.Result, error) {
		if cfg.Label == "" {
			cfg.Label = name
		}
		return inner(cfg, size)
	}
	return w
}

// Names returns the application names in Table 2 order.
func Names() []string {
	var out []string
	for _, w := range All() {
		out = append(out, w.Name)
	}
	return out
}

// Lookup finds a workload by name.
func Lookup(name string) (apps.Runner, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	known := Names()
	sort.Strings(known)
	return apps.Runner{}, fmt.Errorf("registry: unknown application %q (known: %v)", name, known)
}
