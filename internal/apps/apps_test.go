package apps

import (
	"testing"
	"testing/quick"

	"clustersim/internal/core"
)

func testMachine(t *testing.T) *core.Machine {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Procs = 2
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTypedArraysRoundTrip(t *testing.T) {
	m := testMachine(t)
	f := NewF64(m, 16, "f")
	i := NewI64(m, 16, "i")
	c := NewC128(m, 16, "c")
	u := NewU8(m, 16, "u")
	_, err := m.Run(func(p *core.Proc) {
		if p.ID() != 0 {
			return
		}
		f.Set(p, 3, 2.5)
		i.Set(p, 4, -7)
		c.Set(p, 5, complex(1, 2))
		u.Set(p, 6, 200)
		if f.Get(p, 3) != 2.5 || i.Get(p, 4) != -7 || c.Get(p, 5) != complex(1, 2) || u.Get(p, 6) != 200 {
			t.Error("round trip failed")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 16 || i.Len() != 16 || c.Len() != 16 || u.Len() != 16 {
		t.Error("lengths wrong")
	}
}

func TestArrayAddressStrides(t *testing.T) {
	m := testMachine(t)
	f := NewF64(m, 4, "f")
	if f.Addr(1)-f.Addr(0) != 8 {
		t.Error("f64 stride")
	}
	c := NewC128(m, 4, "c")
	if c.Addr(1)-c.Addr(0) != 16 {
		t.Error("c128 stride")
	}
	u := NewU8(m, 4, "u")
	if u.Addr(1)-u.Addr(0) != 1 {
		t.Error("u8 stride")
	}
	r := NewRecs(m, 4, 96, "r")
	if r.Addr(2, 8)-r.Addr(1, 8) != 96 {
		t.Error("rec stride")
	}
}

func TestChunkCoversExactly(t *testing.T) {
	f := func(nSeed, pSeed uint16) bool {
		n := int(nSeed % 1000)
		procs := int(pSeed%64) + 1
		covered := 0
		prevHi := 0
		for id := 0; id < procs; id++ {
			lo, hi := Chunk(n, id, procs)
			if lo != prevHi || hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
			if hi-lo > n/procs+1 {
				return false // imbalance worse than one item
			}
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProcGrid(t *testing.T) {
	cases := map[int][2]int{
		1:  {1, 1},
		2:  {1, 2},
		4:  {2, 2},
		8:  {2, 4},
		16: {4, 4},
		64: {8, 8},
	}
	for procs, want := range cases {
		pr, pc := ProcGrid(procs)
		if pr != want[0] || pc != want[1] {
			t.Errorf("ProcGrid(%d) = %d×%d, want %d×%d", procs, pr, pc, want[0], want[1])
		}
		if pr*pc != procs {
			t.Errorf("ProcGrid(%d) does not cover", procs)
		}
	}
}

func TestMorton3(t *testing.T) {
	if Morton3(0, 0, 0) != 0 {
		t.Error("origin")
	}
	if Morton3(1, 0, 0) != 1 || Morton3(0, 1, 0) != 2 || Morton3(0, 0, 1) != 4 {
		t.Error("unit axes")
	}
	// Z-order property: interleaved bits.
	if Morton3(3, 0, 0) != 0b1001 {
		t.Errorf("Morton3(3,0,0) = %b", Morton3(3, 0, 0))
	}
	// Distinct small coordinates must give distinct keys.
	seen := map[uint32]bool{}
	for x := uint32(0); x < 8; x++ {
		for y := uint32(0); y < 8; y++ {
			for z := uint32(0); z < 8; z++ {
				k := Morton3(x, y, z)
				if seen[k] {
					t.Fatalf("collision at (%d,%d,%d)", x, y, z)
				}
				seen[k] = true
			}
		}
	}
}

func TestSizeString(t *testing.T) {
	if SizeTest.String() != "test" || SizeDefault.String() != "default" || SizePaper.String() != "paper" {
		t.Error("size strings")
	}
}
