package apps

import (
	"fmt"

	"clustersim/internal/core"
)

// TaskQueues is the distributed work queue with stealing that the SPLASH
// graphics codes (Raytrace, Volrend) use to balance uneven per-pixel
// work: each processor owns a contiguous range of task IDs and serves
// them from its own lock-protected queue; when a queue runs dry the
// processor steals from the tail of other processors' queues. The queue
// state (next/limit counters) lives in simulated shared memory, so the
// locking and counter traffic appear in the reference stream exactly as
// they would on the real machine.
type TaskQueues struct {
	nprocs int
	locks  []*core.Lock
	state  *I64 // [p*2] = next, [p*2+1] = limit
}

// NewTaskQueues creates one queue per processor, with each queue's
// counters placed at that processor's cluster.
func NewTaskQueues(m *core.Machine, name string) *TaskQueues {
	n := m.Config().Procs
	q := &TaskQueues{
		nprocs: n,
		locks:  make([]*core.Lock, n),
		state:  NewI64(m, 2*n, name+".queues"),
	}
	for p := 0; p < n; p++ {
		q.locks[p] = m.NewLock(fmt.Sprintf("%s.q%d", name, p))
		m.Place(q.state.Addr(2*p), 16, p)
	}
	return q
}

// Init sets processor p's task range [lo, hi); every processor calls it
// for itself before the first Next, followed by a barrier.
func (q *TaskQueues) Init(p *core.Proc, lo, hi int) {
	id := p.ID()
	q.locks[id].Acquire(p)
	q.state.Set(p, 2*id, int64(lo))
	q.state.Set(p, 2*id+1, int64(hi))
	q.locks[id].Release(p)
}

// Next returns the next task for processor p: from its own queue head,
// or stolen from the tail of the first non-empty victim. ok is false
// when every queue is empty.
func (q *TaskQueues) Next(p *core.Proc) (task int, ok bool) {
	id := p.ID()
	// Own queue: take from the head.
	q.locks[id].Acquire(p)
	next := q.state.Get(p, 2*id)
	limit := q.state.Get(p, 2*id+1)
	if next < limit {
		q.state.Set(p, 2*id, next+1)
		q.locks[id].Release(p)
		return int(next), true
	}
	q.locks[id].Release(p)
	// Steal: scan the other queues, taking from the tail to minimise
	// interference with the owner's head.
	for d := 1; d < q.nprocs; d++ {
		v := (id + d) % q.nprocs
		// Cheap unlocked peek first (a real algorithm's optimisation;
		// the authoritative check happens under the lock).
		if q.state.Get(p, 2*v) >= q.state.Get(p, 2*v+1) {
			continue
		}
		q.locks[v].Acquire(p)
		next = q.state.Get(p, 2*v)
		limit = q.state.Get(p, 2*v+1)
		if next < limit {
			q.state.Set(p, 2*v+1, limit-1)
			q.locks[v].Release(p)
			return int(limit - 1), true
		}
		q.locks[v].Release(p)
	}
	return 0, false
}
