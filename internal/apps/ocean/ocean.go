// Package ocean implements the paper's Ocean application: a regular-grid
// nearest-neighbour iterative computation with a multigrid solver. Every
// processor owns a square subgrid of every grid (subgrid-contiguous
// layout, explicitly placed at its cluster, as the SPLASH code places
// its partitions); communication happens at the four borders of each
// subgrid. Processors with adjacent IDs own adjacent subgrids in the
// same row of the processor grid, so doubling the cluster size doubles
// the subgrids local to a cluster and roughly halves the external
// border traffic — the mechanism behind Ocean's Figure 2 improvement.
package ocean

import (
	"fmt"
	"math"

	"clustersim/internal/apps"
	"clustersim/internal/core"
)

// Params sizes one Ocean run.
type Params struct {
	N      int // grid edge including boundary; must be 2^k + 2
	Steps  int // timesteps
	Cycles int // multigrid V-cycles per solve
}

// ParamsFor maps a size class to parameters. SizePaper is the paper's
// 130×130 grid (Figure 2); the 66×66 "small problem" of Figure 3 is
// Params{N: 66, ...}.
func ParamsFor(size apps.Size) Params {
	switch size {
	case apps.SizeTest:
		return Params{N: 34, Steps: 1, Cycles: 1}
	case apps.SizePaper:
		return Params{N: 130, Steps: 2, Cycles: 2}
	default:
		// The default matches the paper's Figure 2 grid; Figure 3's
		// "small problem" halves it to 66×66.
		return Params{N: 130, Steps: 2, Cycles: 2}
	}
}

// Workload registers Ocean in the application table.
func Workload() apps.Runner {
	return apps.Runner{
		Name:           "ocean",
		Representative: "Regular-grid iterative codes",
		PaperProblem:   "130-by-130 grids, 25 grids",
		Communication:  "Nearest-neighbor, multigrid",
		WorkingSet:     "size of local partition of grid, O(n/p)",
		Run: func(cfg core.Config, size apps.Size) (*core.Result, error) {
			return Run(cfg, ParamsFor(size))
		},
	}
}

// layout maps global grid coordinates onto the subgrid-contiguous
// storage of one grid level.
type layout struct {
	n        int // grid edge including boundary
	pr, pc   int
	rowLo    []int // per processor-row: first global row owned
	rowHi    []int
	colLo    []int
	colHi    []int
	base     []int // per processor: element offset of its block
	width    []int // per processor: block width
	rowOwner []int // global row -> processor-row
	colOwner []int
	total    int
}

func newLayout(n, procs int) *layout {
	pr, pc := apps.ProcGrid(procs)
	l := &layout{n: n, pr: pr, pc: pc}
	inner := n - 2
	l.rowLo, l.rowHi = make([]int, pr), make([]int, pr)
	l.colLo, l.colHi = make([]int, pc), make([]int, pc)
	for r := 0; r < pr; r++ {
		lo, hi := apps.Chunk(inner, r, pr)
		l.rowLo[r], l.rowHi[r] = lo+1, hi+1
	}
	for c := 0; c < pc; c++ {
		lo, hi := apps.Chunk(inner, c, pc)
		l.colLo[c], l.colHi[c] = lo+1, hi+1
	}
	// Boundary rows/cols belong to the edge processors' blocks.
	l.rowLo[0], l.rowHi[pr-1] = 0, n
	l.colLo[0], l.colHi[pc-1] = 0, n
	l.rowOwner = make([]int, n)
	for g := 0; g < n; g++ {
		for r := 0; r < pr; r++ {
			if g >= l.rowLo[r] && g < l.rowHi[r] {
				l.rowOwner[g] = r
				break
			}
		}
	}
	l.colOwner = make([]int, n)
	for g := 0; g < n; g++ {
		for c := 0; c < pc; c++ {
			if g >= l.colLo[c] && g < l.colHi[c] {
				l.colOwner[g] = c
				break
			}
		}
	}
	l.base = make([]int, procs)
	l.width = make([]int, procs)
	off := 0
	for r := 0; r < pr; r++ {
		for c := 0; c < pc; c++ {
			pid := r*pc + c
			h := l.rowHi[r] - l.rowLo[r]
			w := l.colHi[c] - l.colLo[c]
			l.base[pid] = off
			l.width[pid] = w
			off += h * w
		}
	}
	l.total = off
	return l
}

// owner returns the processor owning global cell (gi, gj).
func (l *layout) owner(gi, gj int) int {
	return l.rowOwner[gi]*l.pc + l.colOwner[gj]
}

// idx returns the storage offset of global cell (gi, gj).
func (l *layout) idx(gi, gj int) int {
	r, c := l.rowOwner[gi], l.colOwner[gj]
	pid := r*l.pc + c
	return l.base[pid] + (gi-l.rowLo[r])*l.width[pid] + (gj - l.colLo[c])
}

// grid is one distributed 2D array.
type grid struct {
	lay *layout
	f   *apps.F64
}

func newGrid(m *core.Machine, lay *layout, name string) *grid {
	g := &grid{lay: lay, f: apps.NewF64(m, lay.total, name)}
	// Place each processor's block at its cluster (SPLASH Ocean's 4D
	// arrays); the paper notes some applications place data explicitly.
	for pid := 0; pid < lay.pr*lay.pc; pid++ {
		r := pid / lay.pc
		h := lay.rowHi[r] - lay.rowLo[r]
		count := uint64(h*lay.width[pid]) * 8
		if count > 0 {
			m.Place(g.f.Addr(lay.base[pid]), count, pid)
		}
	}
	return g
}

func (g *grid) get(p *core.Proc, gi, gj int) float64 { return g.f.Get(p, g.lay.idx(gi, gj)) }
func (g *grid) set(p *core.Proc, gi, gj int, v float64) {
	g.f.Set(p, g.lay.idx(gi, gj), v)
}

// raw reads the value without simulated traffic (verification only).
func (g *grid) raw(gi, gj int) float64 { return g.f.Data[g.lay.idx(gi, gj)] }

// span is a processor's owned inner-cell rectangle at one level.
type span struct{ rlo, rhi, clo, chi int }

func ownedInner(l *layout, pid int) span {
	r, c := pid/l.pc, pid%l.pc
	s := span{l.rowLo[r], l.rowHi[r], l.colLo[c], l.colHi[c]}
	if s.rlo < 1 {
		s.rlo = 1
	}
	if s.rhi > l.n-1 {
		s.rhi = l.n - 1
	}
	if s.clo < 1 {
		s.clo = 1
	}
	if s.chi > l.n-1 {
		s.chi = l.n - 1
	}
	return s
}

// Run executes the timestep loop and verifies that the multigrid solver
// reduced the residual of the final solve.
func Run(cfg core.Config, pr Params) (*core.Result, error) {
	inner := pr.N - 2
	if inner < 4 || inner&(inner-1) != 0 {
		return nil, fmt.Errorf("ocean: N=%d must be 2^k+2 with k ≥ 2", pr.N)
	}
	if pr.Steps < 1 || pr.Cycles < 1 {
		return nil, fmt.Errorf("ocean: Steps and Cycles must be ≥ 1")
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	// Multigrid hierarchy: level 0 is the full grid; coarser levels
	// halve the inner dimension while every processor still owns cells.
	prRows, pcCols := apps.ProcGrid(cfg.Procs)
	var lays []*layout
	for n := pr.N; n-2 >= 4 && (n-2)/2 >= prRows && (n-2)/2 >= pcCols && len(lays) < 4; n = (n-2)/2 + 2 {
		lays = append(lays, newLayout(n, cfg.Procs))
	}
	if len(lays) == 0 {
		lays = append(lays, newLayout(pr.N, cfg.Procs))
	}
	psi := newGrid(m, lays[0], "psi")
	rhs := newGrid(m, lays[0], "rhs")
	// Work and residual grids per level.
	u := make([]*grid, len(lays))
	f := make([]*grid, len(lays))
	res := make([]*grid, len(lays))
	for lvl, lay := range lays {
		u[lvl] = newGrid(m, lay, fmt.Sprintf("u%d", lvl))
		f[lvl] = newGrid(m, lay, fmt.Sprintf("f%d", lvl))
		res[lvl] = newGrid(m, lay, fmt.Sprintf("res%d", lvl))
	}
	errSum := apps.NewF64(m, 1, "errsum") // reduction variable
	lock := m.NewLock("errsum")
	bar := m.NewBarrierN("ocean.main", cfg.Procs)
	var initialResidual float64 // plain-Go instrumentation, no simulated refs

	runRes, err := m.Run(func(p *core.Proc) {
		id := p.ID()
		s0 := ownedInner(lays[0], id)
		// Initialization: smooth deterministic field in psi.
		for i := s0.rlo; i < s0.rhi; i++ {
			for j := s0.clo; j < s0.chi; j++ {
				x := float64(i) / float64(pr.N)
				y := float64(j) / float64(pr.N)
				psi.set(p, i, j, math.Sin(math.Pi*x)*math.Sin(2*math.Pi*y))
				p.Compute(30)
			}
		}
		apps.Begin(p, bar)

		for step := 0; step < pr.Steps; step++ {
			// Phase 1: rhs = -∇²psi + forcing (border reads are the
			// nearest-neighbour communication).
			for i := s0.rlo; i < s0.rhi; i++ {
				for j := s0.clo; j < s0.chi; j++ {
					lap := psi.get(p, i-1, j) + psi.get(p, i+1, j) +
						psi.get(p, i, j-1) + psi.get(p, i, j+1) - 4*psi.get(p, i, j)
					force := 0.01 * math.Sin(float64(step+1)*math.Pi*float64(i+j)/float64(pr.N))
					rhs.set(p, i, j, -lap+force)
					p.Compute(30) // sin/cos forcing plus the stencil arithmetic
				}
			}
			bar.Wait(p)
			// Phase 2: copy psi into the level-0 work grid and rhs into
			// its right-hand side.
			for i := s0.rlo; i < s0.rhi; i++ {
				for j := s0.clo; j < s0.chi; j++ {
					u[0].set(p, i, j, psi.get(p, i, j))
					f[0].set(p, i, j, rhs.get(p, i, j))
					p.Compute(2)
				}
			}
			bar.Wait(p)
			if p.ID() == 0 && step == pr.Steps-1 {
				initialResidual = residualNorm(u[0], f[0])
			}
			// Phase 3: multigrid V-cycles.
			for c := 0; c < pr.Cycles; c++ {
				vcycle(p, id, bar, lays, u, f, res, 0)
			}
			// Phase 4: psi ← solution; accumulate a global error sum
			// under the reduction lock (Ocean's global reductions).
			local := 0.0
			for i := s0.rlo; i < s0.rhi; i++ {
				for j := s0.clo; j < s0.chi; j++ {
					v := u[0].get(p, i, j)
					d := v - psi.get(p, i, j)
					local += d * d
					psi.set(p, i, j, v)
					p.Compute(4)
				}
			}
			lock.Acquire(p)
			errSum.Set(p, 0, errSum.Get(p, 0)+local)
			lock.Release(p)
			bar.Wait(p)
		}
	})
	if err != nil {
		return nil, err
	}
	if err := verify(u[0], f[0], initialResidual, pr.Cycles); err != nil {
		return nil, err
	}
	return runRes, nil
}

// vcycle runs one multigrid V-cycle from the given level.
func vcycle(p *core.Proc, id int, bar *core.Barrier, lays []*layout, u, f, res []*grid, lvl int) {
	h2 := float64(int(1) << (2 * lvl)) // (2^lvl)² relative mesh spacing
	smooth(p, id, bar, lays[lvl], u[lvl], f[lvl], h2, 2)
	if lvl+1 < len(lays) {
		restrictResidual(p, id, bar, lays, u, f, res, lvl, h2)
		vcycle(p, id, bar, lays, u, f, res, lvl+1)
		prolongCorrect(p, id, bar, lays, u, lvl)
	}
	smooth(p, id, bar, lays[lvl], u[lvl], f[lvl], h2, 2)
}

// smooth runs red-black Gauss-Seidel sweeps.
func smooth(p *core.Proc, id int, bar *core.Barrier, lay *layout, u, f *grid, h2 float64, sweeps int) {
	s := ownedInner(lay, id)
	for sw := 0; sw < sweeps; sw++ {
		for color := 0; color < 2; color++ {
			for i := s.rlo; i < s.rhi; i++ {
				for j := s.clo; j < s.chi; j++ {
					if (i+j)&1 != color {
						continue
					}
					v := 0.25 * (u.get(p, i-1, j) + u.get(p, i+1, j) +
						u.get(p, i, j-1) + u.get(p, i, j+1) - h2*f.get(p, i, j))
					u.set(p, i, j, v)
					p.Compute(16)
				}
			}
			bar.Wait(p)
		}
	}
}

// restrictResidual computes the fine residual and restricts it (2×2
// full weighting) to the coarse right-hand side, zeroing the coarse u.
func restrictResidual(p *core.Proc, id int, bar *core.Barrier, lays []*layout, u, f, res []*grid, lvl int, h2 float64) {
	s := ownedInner(lays[lvl], id)
	for i := s.rlo; i < s.rhi; i++ {
		for j := s.clo; j < s.chi; j++ {
			r := f[lvl].get(p, i, j) - (u[lvl].get(p, i-1, j)+u[lvl].get(p, i+1, j)+
				u[lvl].get(p, i, j-1)+u[lvl].get(p, i, j+1)-4*u[lvl].get(p, i, j))/h2
			res[lvl].set(p, i, j, r)
			p.Compute(16)
		}
	}
	bar.Wait(p)
	sc := ownedInner(lays[lvl+1], id)
	for ci := sc.rlo; ci < sc.rhi; ci++ {
		for cj := sc.clo; cj < sc.chi; cj++ {
			fi, fj := 2*ci-1, 2*cj-1
			r := 0.25 * (res[lvl].get(p, fi, fj) + res[lvl].get(p, fi+1, fj) +
				res[lvl].get(p, fi, fj+1) + res[lvl].get(p, fi+1, fj+1))
			f[lvl+1].set(p, ci, cj, r)
			u[lvl+1].set(p, ci, cj, 0)
			p.Compute(6)
		}
	}
	bar.Wait(p)
}

// prolongCorrect injects the coarse correction into the fine grid.
func prolongCorrect(p *core.Proc, id int, bar *core.Barrier, lays []*layout, u []*grid, lvl int) {
	s := ownedInner(lays[lvl], id)
	for i := s.rlo; i < s.rhi; i++ {
		for j := s.clo; j < s.chi; j++ {
			ci, cj := (i+1)/2, (j+1)/2
			cl := lays[lvl+1]
			if ci >= 1 && ci < cl.n-1 && cj >= 1 && cj < cl.n-1 {
				u[lvl].set(p, i, j, u[lvl].get(p, i, j)+u[lvl+1].get(p, ci, cj))
				p.Compute(3)
			}
		}
	}
	bar.Wait(p)
}

// residualNorm computes Σ(f - ∇²u)² over the inner grid in plain Go.
func residualNorm(u, f *grid) float64 {
	lay := u.lay
	var rnorm float64
	for i := 1; i < lay.n-1; i++ {
		for j := 1; j < lay.n-1; j++ {
			lap := u.raw(i-1, j) + u.raw(i+1, j) + u.raw(i, j-1) + u.raw(i, j+1) - 4*u.raw(i, j)
			r := f.raw(i, j) - lap
			rnorm += r * r
		}
	}
	return rnorm
}

// verify recomputes the final level-0 residual in plain Go and checks the
// multigrid solver reduced the last solve's initial residual.
func verify(u, f *grid, initial float64, cycles int) error {
	lay := u.lay
	for i := 1; i < lay.n-1; i++ {
		for j := 1; j < lay.n-1; j++ {
			if math.IsNaN(u.raw(i, j)) || math.IsInf(u.raw(i, j), 0) {
				return fmt.Errorf("ocean: solution diverged at (%d,%d)", i, j)
			}
		}
	}
	rnorm := residualNorm(u, f)
	// Each V-cycle must contract the residual; 0.8 per cycle is a loose
	// bound (measured contraction is ≈0.3).
	bound := initial
	for c := 0; c < cycles; c++ {
		bound *= 0.8
	}
	if initial > 0 && rnorm > bound {
		return fmt.Errorf("ocean: solver failed to reduce residual: |r|²=%g, initial %g, bound %g",
			rnorm, initial, bound)
	}
	return nil
}
