package ocean

import (
	"testing"

	"clustersim/internal/apps"
	"clustersim/internal/core"
)

func testCfg(procs, clusterSize int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Procs = procs
	cfg.ClusterSize = clusterSize
	return cfg
}

func TestSolverConvergesAndRuns(t *testing.T) {
	res, err := Run(testCfg(4, 1), ParamsFor(apps.SizeTest))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Aggregate().References() == 0 {
		t.Fatal("no references")
	}
}

func TestCorrectAcrossClusterSizes(t *testing.T) {
	for _, cs := range []int{1, 2, 4} {
		if _, err := Run(testCfg(4, cs), ParamsFor(apps.SizeTest)); err != nil {
			t.Errorf("cluster %d: %v", cs, err)
		}
	}
}

func TestRejectsBadGrid(t *testing.T) {
	if _, err := Run(testCfg(4, 1), Params{N: 33, Steps: 1, Cycles: 1}); err == nil {
		t.Fatal("want error for N not 2^k+2")
	}
	if _, err := Run(testCfg(4, 1), Params{N: 34, Steps: 0, Cycles: 1}); err == nil {
		t.Fatal("want error for zero steps")
	}
}

func TestLayoutCoversGridExactly(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8, 16} {
		lay := newLayout(34, procs)
		seen := make([]bool, lay.total)
		for i := 0; i < 34; i++ {
			for j := 0; j < 34; j++ {
				idx := lay.idx(i, j)
				if idx < 0 || idx >= lay.total {
					t.Fatalf("procs=%d: idx(%d,%d)=%d out of range", procs, i, j, idx)
				}
				if seen[idx] {
					t.Fatalf("procs=%d: cell (%d,%d) collides", procs, i, j)
				}
				seen[idx] = true
			}
		}
		if lay.total != 34*34 {
			t.Fatalf("procs=%d: total=%d, want %d", procs, lay.total, 34*34)
		}
	}
}

func TestLayoutOwnerConsistent(t *testing.T) {
	lay := newLayout(18, 4)
	for i := 0; i < 18; i++ {
		for j := 0; j < 18; j++ {
			pid := lay.owner(i, j)
			s := ownedInner(lay, pid)
			inner := i >= 1 && i < 17 && j >= 1 && j < 17
			if inner && (i < s.rlo || i >= s.rhi || j < s.clo || j >= s.chi) {
				t.Fatalf("inner cell (%d,%d) not in owner %d's span %+v", i, j, pid, s)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	p := ParamsFor(apps.SizeTest)
	r1, err := Run(testCfg(4, 2), p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(testCfg(4, 2), p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExecTime != r2.ExecTime {
		t.Fatalf("nondeterministic: %d vs %d", r1.ExecTime, r2.ExecTime)
	}
}

func TestWorkloadMetadata(t *testing.T) {
	w := Workload()
	if w.Name != "ocean" || w.Run == nil {
		t.Fatalf("workload = %+v", w)
	}
}

// TestClusteringReducesCommunication is the paper's key Ocean result:
// clustering internalises the left-right border exchanges, so load-stall
// time drops markedly with cluster size.
func TestClusteringReducesCommunication(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := Params{N: 34, Steps: 2, Cycles: 1}
	base, err := Run(testCfg(16, 1), p)
	if err != nil {
		t.Fatal(err)
	}
	clus, err := Run(testCfg(16, 4), p)
	if err != nil {
		t.Fatal(err)
	}
	bs := base.Aggregate().LoadStall
	cs := clus.Aggregate().LoadStall
	if bs == 0 {
		t.Fatal("baseline has no load stall; test configuration broken")
	}
	if float64(cs) > 0.9*float64(bs) {
		t.Errorf("4-way clustering reduced Ocean load stall only %d -> %d", bs, cs)
	}
	if clus.ExecTime >= base.ExecTime {
		t.Errorf("clustering did not improve Ocean: %d vs %d", clus.ExecTime, base.ExecTime)
	}
}

// TestRestrictionIsBlockAverage drives the multigrid restriction on a
// known field and checks the coarse right-hand side is the 2×2 block
// average of the fine residual.
func TestRestrictionIsBlockAverage(t *testing.T) {
	cfg := testCfg(1, 1)
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fineLay := newLayout(10, 1)  // 8 inner cells
	coarseLay := newLayout(6, 1) // 4 inner cells
	lays := []*layout{fineLay, coarseLay}
	u := []*grid{newGrid(m, fineLay, "uf"), newGrid(m, coarseLay, "uc")}
	f := []*grid{newGrid(m, fineLay, "ff"), newGrid(m, coarseLay, "fc")}
	res := []*grid{newGrid(m, fineLay, "rf"), newGrid(m, coarseLay, "rc")}
	bar := m.NewBarrier()
	_, err = m.Run(func(p *core.Proc) {
		// u = 0 everywhere, f(i,j) = i + 10j, so the residual equals f.
		for i := 1; i < 9; i++ {
			for j := 1; j < 9; j++ {
				u[0].set(p, i, j, 0)
				f[0].set(p, i, j, float64(i)+10*float64(j))
			}
		}
		restrictResidual(p, 0, bar, lays, u, f, res, 0, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for ci := 1; ci < 5; ci++ {
		for cj := 1; cj < 5; cj++ {
			fi, fj := 2*ci-1, 2*cj-1
			want := (rawAt(f[0], fi, fj) + rawAt(f[0], fi+1, fj) +
				rawAt(f[0], fi, fj+1) + rawAt(f[0], fi+1, fj+1)) / 4
			if got := rawAt(f[1], ci, cj); got != want {
				t.Fatalf("coarse (%d,%d) = %v, want %v", ci, cj, got, want)
			}
			if rawAt(u[1], ci, cj) != 0 {
				t.Fatalf("coarse u not zeroed at (%d,%d)", ci, cj)
			}
		}
	}
}

func rawAt(g *grid, i, j int) float64 { return g.raw(i, j) }

// TestSmoothReducesResidual: red-black Gauss-Seidel sweeps must strictly
// reduce the residual on a Poisson problem.
func TestSmoothReducesResidual(t *testing.T) {
	cfg := testCfg(1, 1)
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lay := newLayout(10, 1)
	u := newGrid(m, lay, "u")
	f := newGrid(m, lay, "f")
	var before, after float64
	bar := m.NewBarrier()
	_, err = m.Run(func(p *core.Proc) {
		for i := 1; i < 9; i++ {
			for j := 1; j < 9; j++ {
				u.set(p, i, j, 0)
				f.set(p, i, j, 1)
			}
		}
		before = residualNorm(u, f)
		smooth(p, 0, bar, lay, u, f, 1, 4)
		after = residualNorm(u, f)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Point smoothers damp high frequencies fast but smooth error slowly
	// (the reason multigrid exists); require a clear but modest drop.
	if after >= before*0.8 {
		t.Fatalf("smoothing barely reduced residual: %g -> %g", before, after)
	}
}
