// Package lu implements the paper's LU application: blocked dense LU
// factorization of an N×N matrix without pivoting (SPLASH-2 style,
// contiguous blocks). Blocks are assigned to a 2D processor grid in a
// scatter ("cookie-cutter") decomposition; communication is low and
// flows along rows and columns of the processor grid when perimeter
// blocks read the diagonal block and interior blocks read perimeter
// blocks. The per-processor working set is essentially one 16×16 block —
// 2 KB — and the working sets of different processors are disjoint, so
// the paper finds clustering buys LU almost nothing.
package lu

import (
	"fmt"
	"math"
	"math/rand"

	"clustersim/internal/apps"
	"clustersim/internal/core"
)

// Params sizes one LU run.
type Params struct {
	N     int // matrix dimension
	Block int // block size (the paper uses 16)
}

// ParamsFor maps a size class to problem parameters. SizePaper is the
// paper's 512×512 matrix with 16×16 blocks.
func ParamsFor(size apps.Size) Params {
	switch size {
	case apps.SizeTest:
		return Params{N: 64, Block: 8}
	case apps.SizePaper:
		return Params{N: 512, Block: 16}
	default:
		// 256 gives a 16×16 block grid — four blocks per processor on
		// the 64-processor machine, enough parallel slack that load
		// imbalance does not swamp the communication effects.
		return Params{N: 256, Block: 16}
	}
}

// Workload registers LU in the application table.
func Workload() apps.Runner {
	return apps.Runner{
		Name:           "lu",
		Representative: "Blocked dense linear algebra",
		PaperProblem:   "512-by-512 matrix, 16-by-16 blocks",
		Communication:  "Low communication, along row and column",
		WorkingSet:     "small (2KB), constant in n",
		Run: func(cfg core.Config, size apps.Size) (*core.Result, error) {
			return Run(cfg, ParamsFor(size))
		},
	}
}

// matrix wraps the block-contiguous shared array: block (I,J) occupies
// B*B consecutive elements starting at ((I*nb)+J)*B*B.
type matrix struct {
	a  *apps.F64
	nb int
	b  int
}

func (m matrix) blockBase(I, J int) int { return (I*m.nb + J) * m.b * m.b }

func (m matrix) idx(I, J, ii, jj int) int { return m.blockBase(I, J) + ii*m.b + jj }

// Run factors a deterministic diagonally dominant matrix and verifies
// L·U against the original on sampled entries.
func Run(cfg core.Config, pr Params) (*core.Result, error) {
	if pr.N%pr.Block != 0 {
		return nil, fmt.Errorf("lu: block %d must divide N %d", pr.Block, pr.N)
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	n, b := pr.N, pr.Block
	nb := n / b
	mat := matrix{a: apps.NewF64(m, n*n, "matrix"), nb: nb, b: b}
	orig := make([]float64, n*n) // plain copy for verification
	gr, gc := apps.ProcGrid(cfg.Procs)
	owner := func(I, J int) int { return (I%gr)*gc + (J % gc) }

	bar := m.NewBarrierN("lu.main", cfg.Procs)
	res, err := m.Run(func(p *core.Proc) {
		// Initialization: each processor fills the blocks it owns.
		rng := rand.New(rand.NewSource(int64(17 + p.ID())))
		for I := 0; I < nb; I++ {
			for J := 0; J < nb; J++ {
				if owner(I, J) != p.ID() {
					continue
				}
				for ii := 0; ii < b; ii++ {
					for jj := 0; jj < b; jj++ {
						v := rng.Float64() - 0.5
						gi, gj := I*b+ii, J*b+jj
						if gi == gj {
							v += float64(n) // diagonal dominance: no pivoting needed
						}
						mat.a.Set(p, mat.idx(I, J, ii, jj), v)
						orig[gi*n+gj] = v
					}
				}
			}
		}
		apps.Begin(p, bar)

		for k := 0; k < nb; k++ {
			// Factor the diagonal block.
			if owner(k, k) == p.ID() {
				factorDiag(p, mat, k)
			}
			bar.Wait(p)
			// Perimeter: row k blocks get L(k,k)⁻¹·A, column k blocks
			// get A·U(k,k)⁻¹. Everyone reads the diagonal block.
			for J := k + 1; J < nb; J++ {
				if owner(k, J) == p.ID() {
					solveRow(p, mat, k, J)
				}
			}
			for I := k + 1; I < nb; I++ {
				if owner(I, k) == p.ID() {
					solveCol(p, mat, I, k)
				}
			}
			bar.Wait(p)
			// Interior update: A(I,J) -= A(I,k)·A(k,J).
			for I := k + 1; I < nb; I++ {
				for J := k + 1; J < nb; J++ {
					if owner(I, J) == p.ID() {
						updateBlock(p, mat, I, J, k)
					}
				}
			}
			bar.Wait(p)
		}
	})
	if err != nil {
		return nil, err
	}
	if err := verify(mat, orig, n); err != nil {
		return nil, err
	}
	return res, nil
}

// factorDiag computes the unblocked LU of block (k,k) in place.
func factorDiag(p *core.Proc, m matrix, k int) {
	b := m.b
	for d := 0; d < b; d++ {
		pivot := m.a.Get(p, m.idx(k, k, d, d))
		p.Compute(10) // divide latency
		for i := d + 1; i < b; i++ {
			lid := m.a.Get(p, m.idx(k, k, i, d)) / pivot
			m.a.Set(p, m.idx(k, k, i, d), lid)
			p.Compute(10)
			for j := d + 1; j < b; j++ {
				v := m.a.Get(p, m.idx(k, k, i, j)) - lid*m.a.Get(p, m.idx(k, k, d, j))
				m.a.Set(p, m.idx(k, k, i, j), v)
				p.Compute(2)
			}
		}
	}
}

// solveRow applies the lower-triangular solve to block (k,J).
func solveRow(p *core.Proc, m matrix, k, J int) {
	b := m.b
	for d := 0; d < b; d++ {
		for i := d + 1; i < b; i++ {
			l := m.a.Get(p, m.idx(k, k, i, d)) // reads the shared diagonal block
			for j := 0; j < b; j++ {
				v := m.a.Get(p, m.idx(k, J, i, j)) - l*m.a.Get(p, m.idx(k, J, d, j))
				m.a.Set(p, m.idx(k, J, i, j), v)
				p.Compute(2)
			}
		}
	}
}

// solveCol applies the upper-triangular solve to block (I,k).
func solveCol(p *core.Proc, m matrix, I, k int) {
	b := m.b
	for d := 0; d < b; d++ {
		pivot := m.a.Get(p, m.idx(k, k, d, d))
		p.Compute(10)
		for i := 0; i < b; i++ {
			v := m.a.Get(p, m.idx(I, k, i, d)) / pivot
			m.a.Set(p, m.idx(I, k, i, d), v)
			p.Compute(10)
			for j := d + 1; j < b; j++ {
				u := m.a.Get(p, m.idx(k, k, d, j))
				w := m.a.Get(p, m.idx(I, k, i, j)) - v*u
				m.a.Set(p, m.idx(I, k, i, j), w)
				p.Compute(2)
			}
		}
	}
}

// updateBlock computes A(I,J) -= A(I,k)·A(k,J), reading the two
// perimeter blocks (the communication) and updating the owned block.
func updateBlock(p *core.Proc, m matrix, I, J, k int) {
	b := m.b
	for ii := 0; ii < b; ii++ {
		for jj := 0; jj < b; jj++ {
			acc := m.a.Get(p, m.idx(I, J, ii, jj))
			for kk := 0; kk < b; kk++ {
				acc -= m.a.Get(p, m.idx(I, k, ii, kk)) * m.a.Get(p, m.idx(k, J, kk, jj))
				p.Compute(2)
			}
			m.a.Set(p, m.idx(I, J, ii, jj), acc)
		}
	}
}

// verify reconstructs L·U and compares with the original matrix.
func verify(m matrix, orig []float64, n int) error {
	b, nb := m.b, m.nb
	get := func(gi, gj int) float64 {
		return m.a.Data[m.idx(gi/b, gj/b, gi%b, gj%b)]
	}
	// After the in-place factorization A holds L strictly below the
	// diagonal (unit diagonal implied) and U on and above it, so
	// (L·U)(i,j) = Σ_{k ≤ min(i,j)} L(i,k)·U(k,j). Sample rows to keep
	// verification O(n²·samples).
	step := n/16 + 1
	var maxErr, scale float64
	for gi := 0; gi < n; gi += step {
		for gj := 0; gj < n; gj++ {
			kmax := gi
			if gj < gi {
				kmax = gj
			}
			sum := 0.0
			for k := 0; k <= kmax; k++ {
				l := 1.0
				if k < gi {
					l = get(gi, k)
				}
				sum += l * get(k, gj)
			}
			diff := math.Abs(sum - orig[gi*n+gj])
			if diff > maxErr {
				maxErr = diff
			}
			if s := math.Abs(orig[gi*n+gj]); s > scale {
				scale = s
			}
		}
	}
	if maxErr > 1e-6*scale {
		return fmt.Errorf("lu: verification failed: max |LU-A| = %g (scale %g)", maxErr, scale)
	}
	_ = nb
	return nil
}
