package lu

import (
	"testing"

	"clustersim/internal/apps"
	"clustersim/internal/core"
)

func testCfg(procs, clusterSize int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Procs = procs
	cfg.ClusterSize = clusterSize
	return cfg
}

func TestFactorizationCorrect(t *testing.T) {
	res, err := Run(testCfg(4, 1), Params{N: 32, Block: 8})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ExecTime <= 0 {
		t.Fatal("no time elapsed")
	}
	agg := res.Aggregate()
	if agg.References() == 0 {
		t.Fatal("no memory references issued")
	}
}

func TestCorrectAcrossClusterSizes(t *testing.T) {
	for _, cs := range []int{1, 2, 4} {
		if _, err := Run(testCfg(4, cs), Params{N: 32, Block: 8}); err != nil {
			t.Errorf("cluster size %d: %v", cs, err)
		}
	}
}

func TestRejectsBadBlock(t *testing.T) {
	if _, err := Run(testCfg(4, 1), Params{N: 30, Block: 8}); err == nil {
		t.Fatal("want error for block not dividing N")
	}
}

func TestDeterministic(t *testing.T) {
	r1, err := Run(testCfg(4, 2), Params{N: 32, Block: 8})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(testCfg(4, 2), Params{N: 32, Block: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExecTime != r2.ExecTime {
		t.Fatalf("nondeterministic: %d vs %d", r1.ExecTime, r2.ExecTime)
	}
}

func TestParamsForSizes(t *testing.T) {
	if p := ParamsFor(apps.SizePaper); p.N != 512 || p.Block != 16 {
		t.Errorf("paper params = %+v", p)
	}
	if p := ParamsFor(apps.SizeTest); p.N >= ParamsFor(apps.SizeDefault).N {
		t.Errorf("test size %d not smaller than default", p.N)
	}
}

func TestWorkloadMetadata(t *testing.T) {
	w := Workload()
	if w.Name != "lu" || w.PaperProblem == "" || w.Run == nil {
		t.Fatalf("workload = %+v", w)
	}
	if _, err := w.Run(testCfg(4, 2), apps.SizeTest); err != nil {
		t.Fatalf("workload run: %v", err)
	}
}

// TestClusteringNearNeutral reproduces the paper's headline LU result at
// small scale: clustering changes LU's execution time by only a few
// percent (Figure 2 shows ≥98% of the 1-processor-cluster time).
func TestClusteringNearNeutral(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	base, err := Run(testCfg(8, 1), Params{N: 64, Block: 8})
	if err != nil {
		t.Fatal(err)
	}
	clus, err := Run(testCfg(8, 4), Params{N: 64, Block: 8})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(clus.ExecTime) / float64(base.ExecTime)
	if ratio < 0.80 || ratio > 1.20 {
		t.Errorf("clustering changed LU time by ratio %.3f; paper says near-neutral", ratio)
	}
}
