package telemetry

import "testing"

// Degenerate sampling periods must fall back to the documented default
// rather than sampling every cycle (or looping forever on a zero step).
func TestSampleIntervalGuardsDegenerateRequests(t *testing.T) {
	cases := []struct {
		requested, want Clock
	}{
		{0, DefaultInterval},
		{-1, DefaultInterval},
		{-1_000_000, DefaultInterval},
		{1, 1},
		{50_000, 50_000},
		{DefaultInterval + 1, DefaultInterval + 1},
	}
	for _, c := range cases {
		if got := SampleInterval(c.requested); got != c.want {
			t.Errorf("SampleInterval(%d) = %d, want %d", c.requested, got, c.want)
		}
	}
	if DefaultInterval <= 0 {
		t.Fatalf("DefaultInterval %d must be positive", DefaultInterval)
	}
}
