package telemetry

import (
	"testing"

	"clustersim/internal/stats"
)

// Degenerate sampling periods must fall back to the documented default
// rather than sampling every cycle (or looping forever on a zero step).
func TestSampleIntervalGuardsDegenerateRequests(t *testing.T) {
	cases := []struct {
		requested, want Clock
	}{
		{0, DefaultInterval},
		{-1, DefaultInterval},
		{-1_000_000, DefaultInterval},
		{1, 1},
		{50_000, 50_000},
		{DefaultInterval + 1, DefaultInterval + 1},
	}
	for _, c := range cases {
		if got := SampleInterval(c.requested); got != c.want {
			t.Errorf("SampleInterval(%d) = %d, want %d", c.requested, got, c.want)
		}
	}
	if DefaultInterval <= 0 {
		t.Fatalf("DefaultInterval %d must be positive", DefaultInterval)
	}
}

// TestOnSampleObservesDeltas pins the SetOnSample contract: the
// callback sees every interval's machine-wide deltas (not cumulative
// counters), in order, at the sample's simulated instant.
func TestOnSampleObservesDeltas(t *testing.T) {
	c := New()
	c.Start(2, 2)
	type seen struct {
		at   Clock
		refs uint64
	}
	var got []seen
	c.SetOnSample(func(at Clock, total ClusterSample) {
		got = append(got, seen{at, total.Refs.References()})
	})
	cum := func(a, b uint64) []ClusterSample {
		return []ClusterSample{
			{Refs: stats.Counters{Reads: a}},
			{Refs: stats.Counters{Reads: b}},
		}
	}
	c.Sample(100, cum(30, 20))
	c.Sample(200, cum(70, 50))
	want := []seen{{100, 50}, {200, 70}}
	if len(got) != len(want) {
		t.Fatalf("callback fired %d times, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sample %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}
