package telemetry

import (
	"fmt"

	"clustersim/internal/coherence"
	"clustersim/internal/stats"
)

// DefaultInterval is the sampling period used when interval sampling is
// requested without a usable period: one million simulated cycles, fine
// enough to resolve phase behaviour in the paper's runs yet coarse
// enough that the series stays small.
const DefaultInterval Clock = 1_000_000

// SampleInterval normalises a requested sampling period. Zero and
// negative requests fall back to DefaultInterval — per-cycle sampling
// from a degenerate interval would swamp the run with samples.
func SampleInterval(requested Clock) Clock {
	if requested <= 0 {
		return DefaultInterval
	}
	return requested
}

// ClusterSample is one cluster's counters at (or over) a point in
// simulated time: the reference counters summed over the cluster's
// processors plus the cluster's protocol counters.
type ClusterSample struct {
	Refs stats.Counters
	Coh  coherence.Stats
}

func (a ClusterSample) minus(b ClusterSample) ClusterSample {
	return ClusterSample{
		Refs: a.Refs.Minus(b.Refs),
		Coh: coherence.Stats{
			InvalidationsSent:     a.Coh.InvalidationsSent - b.Coh.InvalidationsSent,
			InvalidationsReceived: a.Coh.InvalidationsReceived - b.Coh.InvalidationsReceived,
			ReplacementHints:      a.Coh.ReplacementHints - b.Coh.ReplacementHints,
			Writebacks:            a.Coh.Writebacks - b.Coh.Writebacks,
		},
	}
}

// Sample is the per-cluster counter *deltas* accumulated over one
// sampling interval ending at At.
type Sample struct {
	At       Clock
	Clusters []ClusterSample
}

// Total sums the sample's per-cluster reference deltas.
func (s Sample) Total() ClusterSample {
	var t ClusterSample
	for _, c := range s.Clusters {
		t.Refs = t.Refs.Plus(c.Refs)
		t.Coh.InvalidationsSent += c.Coh.InvalidationsSent
		t.Coh.InvalidationsReceived += c.Coh.InvalidationsReceived
		t.Coh.ReplacementHints += c.Coh.ReplacementHints
		t.Coh.Writebacks += c.Coh.Writebacks
	}
	return t
}

// Sample snapshots the *cumulative* per-cluster counters at simulated
// time at; the collector stores the delta against the previous
// snapshot. The machine drives this on its Config.SampleEvery grid.
func (c *Collector) Sample(at Clock, cumulative []ClusterSample) {
	s := Sample{At: at, Clusters: make([]ClusterSample, len(cumulative))}
	for i, cur := range cumulative {
		s.Clusters[i] = cur.minus(c.prev[i])
		c.prev[i] = cur
	}
	c.samples = append(c.samples, s)
	if c.progress != nil || c.onSample != nil {
		t := s.Total()
		if c.progress != nil {
			fmt.Fprintf(c.progress, "%s cycle %d: refs +%d  rd-miss +%d  merge +%d  inval +%d\n",
				c.label, at, t.Refs.References(), t.Refs.ReadMisses, t.Refs.Merges,
				t.Coh.InvalidationsSent)
		}
		if c.onSample != nil {
			c.onSample(at, t)
		}
	}
}

// NoteStatsReset tells the sampler the machine's counters were zeroed
// (BeginMeasurement), so the next delta baselines at zero instead of
// underflowing.
func (c *Collector) NoteStatsReset(at Clock) {
	for i := range c.prev {
		c.prev[i] = ClusterSample{}
	}
	c.MarkInstant("begin measurement", at)
}

// Samples returns the recorded interval series.
func (c *Collector) Samples() []Sample { return c.samples }
