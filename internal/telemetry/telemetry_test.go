package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"clustersim/internal/coherence"
	"clustersim/internal/stats"
)

func TestSliceCoalescing(t *testing.T) {
	c := New()
	c.Start(1, 1)
	c.Slice(0, SliceCompute, 0, 10)
	c.Slice(0, SliceCompute, 10, 5) // adjacent same kind: coalesces
	c.Slice(0, SliceLoadStall, 15, 30)
	c.Slice(0, SliceCompute, 45, 1)
	c.Slice(0, SliceCompute, 46, 0) // zero duration: dropped
	c.Slice(0, SliceCompute, 50, 2) // gap: new slice
	c.ClosePE(0)

	got := c.Slices(0)
	want := []Slice{
		{SliceCompute, 0, 15},
		{SliceLoadStall, 15, 30},
		{SliceCompute, 45, 1},
		{SliceCompute, 50, 2},
	}
	if len(got) != len(want) {
		t.Fatalf("slices = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("slice %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	totals := c.SliceTotals(0)
	if totals[SliceCompute] != 18 || totals[SliceLoadStall] != 30 {
		t.Errorf("totals = %v", totals)
	}
}

func TestCollectorRejectsReuse(t *testing.T) {
	c := New()
	c.Start(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("second Start should panic")
		}
	}()
	c.Start(1, 1)
}

func TestSamplerDeltas(t *testing.T) {
	c := New()
	c.Start(2, 1)
	cum := func(reads, inval uint64) []ClusterSample {
		return []ClusterSample{{
			Refs: stats.Counters{Reads: reads, ReadMisses: reads / 10},
			Coh:  coherence.Stats{InvalidationsSent: inval},
		}}
	}
	c.Sample(100, cum(50, 3))
	c.Sample(200, cum(90, 7))
	s := c.Samples()
	if len(s) != 2 {
		t.Fatalf("samples = %d", len(s))
	}
	if s[0].Clusters[0].Refs.Reads != 50 || s[1].Clusters[0].Refs.Reads != 40 {
		t.Errorf("read deltas = %d, %d; want 50, 40",
			s[0].Clusters[0].Refs.Reads, s[1].Clusters[0].Refs.Reads)
	}
	if s[1].Clusters[0].Coh.InvalidationsSent != 4 {
		t.Errorf("invalidation delta = %d, want 4", s[1].Clusters[0].Coh.InvalidationsSent)
	}

	// A stats reset rebaselines the next delta at zero instead of
	// underflowing the unsigned counters.
	c.NoteStatsReset(200)
	c.Sample(300, cum(10, 1))
	s = c.Samples()
	if got := s[2].Clusters[0].Refs.Reads; got != 10 {
		t.Errorf("post-reset delta = %d, want 10", got)
	}
	if len(c.Marks()) != 1 || c.Marks()[0].Name != "begin measurement" {
		t.Errorf("marks = %+v", c.Marks())
	}
}

func TestHandoffMetrics(t *testing.T) {
	c := New()
	c.Start(2, 1)
	c.Handoff(-1, 0, 0, 0, 1)
	c.Handoff(0, 1, 25, 10, 3)
	c.Handoff(1, 0, 12, 12, 2)
	m := c.Sched()
	if m.Handoffs != 3 || m.MaxReadyDepth != 3 || m.MaxSkew != 15 {
		t.Errorf("sched metrics = %+v", m)
	}
	if mean := m.MeanReadyDepth(); mean < 1.9 || mean > 2.1 {
		t.Errorf("mean depth = %f, want 2", mean)
	}
}

// buildCollector fabricates a small finished collection.
func buildCollector() *Collector {
	c := New()
	c.Start(2, 1)
	c.DefineSync(0, SyncBarrier, "main", 2)
	c.Slice(0, SliceCompute, 0, 100)
	c.Slice(0, SliceLoadStall, 100, 50)
	c.Slice(1, SliceCompute, 0, 120)
	c.SyncWait(0, 0, 150, 170) // P0 waits 20 at the barrier
	c.Coherence(0, coherence.ReadMiss, coherence.HopRemoteClean, 100)
	c.Sample(170, []ClusterSample{{Refs: stats.Counters{Reads: 9, ReadMisses: 1}}})
	c.ClosePE(0)
	c.ClosePE(1)
	return c
}

func TestChromeTraceRoundTrip(t *testing.T) {
	c := buildCollector()
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, c, map[string]string{"app": "unit"}); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b.Bytes()) {
		t.Fatal("trace is not valid JSON")
	}
	sum, err := SummarizeChromeTrace(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sum.PEs != 2 {
		t.Errorf("PEs = %d, want 2", sum.PEs)
	}
	// P0: 100 compute + 50 load + 20 sync = 170 cycles, tiling its clock.
	if got := sum.PETotals[0]; got != 170 {
		t.Errorf("P0 slice cycles = %d, want 170", got)
	}
	if sum.ByKind["sync-wait"] != 20 || sum.ByKind["compute"] != 220 {
		t.Errorf("by-kind = %+v", sum.ByKind)
	}
	if sum.SyncWaits != 1 || sum.Counters != 1 {
		t.Errorf("syncWaits=%d counters=%d", sum.SyncWaits, sum.Counters)
	}
	if sum.OtherData["app"] != "unit" {
		t.Errorf("otherData = %+v", sum.OtherData)
	}
}

func TestManifestRoundTripAndStableHash(t *testing.T) {
	type miniConfig struct {
		Procs, ClusterSize int
	}
	cfg := miniConfig{Procs: 8, ClusterSize: 4}
	c := buildCollector()

	write := func() string {
		var b bytes.Buffer
		if err := WriteManifest(&b, Manifest{
			App: "unit", Size: "test", Config: cfg,
			Result:    map[string]int{"ExecTime": 170},
			Telemetry: c.SelfReport(),
		}); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first, second := write(), write()
	if first != second {
		t.Fatal("manifest encoding is not deterministic")
	}

	doc, err := ReadManifest(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != SchemaV1 || doc.App != "unit" || doc.Size != "test" {
		t.Errorf("doc header = %+v", doc)
	}
	wantHash, err := HashConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if doc.ConfigHash != wantHash {
		t.Errorf("hash = %s, want %s", doc.ConfigHash, wantHash)
	}
	var back miniConfig
	if err := json.Unmarshal(doc.Config, &back); err != nil {
		t.Fatal(err)
	}
	if back != cfg {
		t.Errorf("config round-trip = %+v, want %+v", back, cfg)
	}
	if doc.Telemetry == nil || doc.Telemetry.SyncEpisodes != 1 || doc.Telemetry.Samples != 1 {
		t.Errorf("telemetry block = %+v", doc.Telemetry)
	}

	// A different config must hash differently.
	otherHash, err := HashConfig(miniConfig{Procs: 8, ClusterSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if otherHash == wantHash {
		t.Error("distinct configs hashed equal")
	}
}

func TestNilCollectorSelfReport(t *testing.T) {
	var c *Collector
	if c.SelfReport() != nil {
		t.Fatal("nil collector should report nil")
	}
}

func TestReadManifestRejectsUnknownSchema(t *testing.T) {
	_, err := ReadManifest(strings.NewReader(`{"schema":"bogus/v9"}`))
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("err = %v", err)
	}
}
