package telemetry

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tempEntries returns the leftover *.tmp* names in dir — AtomicFile
// must never leak its temporary on any failure path.
func tempEntries(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var tmps []string
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			tmps = append(tmps, e.Name())
		}
	}
	return tmps
}

func TestAtomicFileWrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := AtomicFile(path, func(w io.Writer) error {
		_, err := fmt.Fprint(w, `{"ok":true}`)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"ok":true}` {
		t.Errorf("content = %q", got)
	}
	if tmps := tempEntries(t, dir); len(tmps) != 0 {
		t.Errorf("leftover temporaries: %v", tmps)
	}
}

// An unwritable directory fails up front: no temporary can be created,
// and the error surfaces instead of a torn or missing artifact.
func TestAtomicFileUnwritableDir(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("root ignores directory permissions")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o500); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o700)
	err := AtomicFile(filepath.Join(dir, "out.json"), func(w io.Writer) error { return nil })
	if err == nil {
		t.Fatal("write into unwritable directory succeeded")
	}
}

// A failing write callback aborts the whole operation: the error comes
// back verbatim, the destination is untouched, and the temporary is
// removed.
func TestAtomicFileWriteError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("previous"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := AtomicFile(path, func(w io.Writer) error {
		fmt.Fprint(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "previous" {
		t.Errorf("failed write clobbered the destination: %q", got)
	}
	if tmps := tempEntries(t, dir); len(tmps) != 0 {
		t.Errorf("leftover temporaries after write error: %v", tmps)
	}
}

// A failing rename (target path is an existing directory) surfaces as
// an error and still cleans up the temporary.
func TestAtomicFileRenameError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "occupied")
	if err := os.Mkdir(path, 0o700); err != nil {
		t.Fatal(err)
	}
	// A non-empty directory cannot be replaced by rename(2) on any
	// platform.
	if err := os.WriteFile(filepath.Join(path, "file"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := AtomicFile(path, func(w io.Writer) error {
		_, err := fmt.Fprint(w, "contents")
		return err
	})
	if err == nil {
		t.Fatal("rename onto a non-empty directory succeeded")
	}
	if tmps := tempEntries(t, dir); len(tmps) != 0 {
		t.Errorf("leftover temporaries after rename error: %v", tmps)
	}
}

// AtomicFileDurable behaves like AtomicFile from the caller's point of
// view (complete contents, no leaked temporaries) and the directory
// fsync it adds succeeds on a real filesystem. A missing parent
// surfaces as an error rather than a silent no-op — durability that
// cannot be provided must not be pretended.
func TestAtomicFileDurableWrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := AtomicFileDurable(path, func(w io.Writer) error {
		_, err := fmt.Fprint(w, `{"ok":true}`)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"ok":true}` {
		t.Errorf("content = %q", got)
	}
	if tmps := tempEntries(t, dir); len(tmps) != 0 {
		t.Errorf("leftover temporaries: %v", tmps)
	}
	if err := SyncDir(filepath.Join(dir, "missing")); err == nil {
		t.Error("SyncDir on a missing directory succeeded")
	}
}

// An exporter fed a collector with no recorded events still writes a
// valid, summarizable document — observability tooling must not fall
// over on trivial runs.
func TestExportersEmptyStreams(t *testing.T) {
	col := New()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, col, nil); err != nil {
		t.Fatalf("empty trace export: %v", err)
	}
	sum, err := SummarizeChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("empty trace summary: %v", err)
	}
	// Metadata events (process naming) are fine; no PE tracks, slices,
	// sync episodes or counter samples may appear.
	if sum.PEs != 0 || sum.SyncWaits != 0 || sum.Counters != 0 || len(sum.ByKind) != 0 {
		t.Errorf("empty trace not empty: %+v", sum)
	}

	rep := col.SelfReport()
	if rep == nil {
		t.Fatal("empty collector self-report is nil")
	}
	if rep.Handoffs != 0 || rep.Slices != 0 || rep.Samples != 0 || len(rep.Series) != 0 {
		t.Errorf("empty self-report not empty: %+v", rep)
	}
	var nilCol *Collector
	if nilCol.SelfReport() != nil {
		t.Error("nil collector self-report is non-nil")
	}
}
