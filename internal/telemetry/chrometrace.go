package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export. The output is the JSON-object flavour of
// the Trace Event Format ({"traceEvents": [...]}) understood by
// ui.perfetto.dev and chrome://tracing. One simulated cycle is written
// as one microsecond of trace time.
//
// Track layout:
//   - pid 1 "PEs": one thread per processor; "X" (complete) slices
//     named compute / load-stall / merge-stall / sync-wait that tile
//     the processor's timeline exactly.
//   - pid 2 "cluster caches": one counter track per cluster carrying
//     the interval sampler's deltas (read misses, merges,
//     invalidations per interval).
//   - pid 3 "sync": one thread per synchronisation object; each wait
//     episode is a slice named after the waiting processor.
//   - global "i" instants for marks such as "begin measurement".

const (
	pidPEs      = 1
	pidClusters = 2
	pidSync     = 3
)

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteChromeTrace serialises the collection as Chrome trace-event
// JSON. meta, if non-nil, lands in the file's otherData block (app
// name, config hash, ...).
func WriteChromeTrace(w io.Writer, c *Collector, meta map[string]string) error {
	tr := chromeTrace{DisplayTimeUnit: "ms", OtherData: meta}
	ev := func(e chromeEvent) { tr.TraceEvents = append(tr.TraceEvents, e) }

	// Process and thread naming metadata.
	ev(chromeEvent{Name: "process_name", Ph: "M", Pid: pidPEs,
		Args: map[string]any{"name": "PEs"}})
	ev(chromeEvent{Name: "process_name", Ph: "M", Pid: pidClusters,
		Args: map[string]any{"name": "cluster caches"}})
	for pe := 0; pe < c.NumPEs(); pe++ {
		ev(chromeEvent{Name: "thread_name", Ph: "M", Pid: pidPEs, Tid: pe,
			Args: map[string]any{"name": fmt.Sprintf("PE %d", pe)}})
	}
	if len(c.Syncs()) > 0 {
		ev(chromeEvent{Name: "process_name", Ph: "M", Pid: pidSync,
			Args: map[string]any{"name": "sync"}})
		for _, so := range c.Syncs() {
			name := fmt.Sprintf("%s %q", so.Kind, so.Name)
			if so.Participants > 0 {
				name = fmt.Sprintf("%s (%d-wide)", name, so.Participants)
			}
			ev(chromeEvent{Name: "thread_name", Ph: "M", Pid: pidSync, Tid: so.ID,
				Args: map[string]any{"name": name}})
		}
	}

	// Per-PE execution-state slices.
	for pe := 0; pe < c.NumPEs(); pe++ {
		for _, s := range c.Slices(pe) {
			ev(chromeEvent{Name: s.Kind.String(), Ph: "X", Pid: pidPEs, Tid: pe,
				Ts: s.Start, Dur: s.Dur})
		}
	}

	// Synchronisation episodes.
	for _, e := range c.Episodes() {
		if e.Release <= e.Arrival {
			continue
		}
		ev(chromeEvent{Name: fmt.Sprintf("P%d wait", e.Proc), Ph: "X",
			Pid: pidSync, Tid: int(e.SyncID), Ts: e.Arrival, Dur: e.Release - e.Arrival})
	}

	// Interval-sampled cluster counters.
	for _, s := range c.Samples() {
		for cl, cs := range s.Clusters {
			ev(chromeEvent{Name: fmt.Sprintf("cluster %d", cl), Ph: "C",
				Pid: pidClusters, Tid: cl, Ts: s.At,
				Args: map[string]any{
					"readMisses":    cs.Refs.ReadMisses,
					"merges":        cs.Refs.Merges,
					"writeMisses":   cs.Refs.WriteMisses,
					"upgrades":      cs.Refs.Upgrades,
					"invalidations": cs.Coh.InvalidationsSent,
				}})
		}
	}

	// Global marks.
	for _, m := range c.Marks() {
		ev(chromeEvent{Name: m.Name, Ph: "i", Pid: pidPEs, Ts: m.At, S: "g"})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// TraceSummary is the digest of a Chrome trace file produced by this
// package, as computed by SummarizeChromeTrace.
type TraceSummary struct {
	Events    int
	PEs       int
	LastTs    int64
	ByKind    map[string]int64 // total slice cycles per slice name, PE tracks only
	PETotals  map[int]int64    // summed slice cycles per PE
	Counters  int              // counter samples
	SyncWaits int              // sync episode slices
	Marks     []string
	OtherData map[string]string
}

// SummarizeChromeTrace parses a trace written by WriteChromeTrace (or
// any Trace Event Format JSON object) and aggregates it.
func SummarizeChromeTrace(r io.Reader) (*TraceSummary, error) {
	var tr chromeTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tr); err != nil {
		return nil, fmt.Errorf("telemetry: bad trace file: %w", err)
	}
	sum := &TraceSummary{
		ByKind:    make(map[string]int64),
		PETotals:  make(map[int]int64),
		OtherData: tr.OtherData,
	}
	pes := map[int]bool{}
	for _, e := range tr.TraceEvents {
		sum.Events++
		if end := e.Ts + e.Dur; end > sum.LastTs {
			sum.LastTs = end
		}
		switch {
		case e.Ph == "X" && e.Pid == pidPEs:
			pes[e.Tid] = true
			sum.ByKind[e.Name] += e.Dur
			sum.PETotals[e.Tid] += e.Dur
		case e.Ph == "X" && e.Pid == pidSync:
			sum.SyncWaits++
		case e.Ph == "C":
			sum.Counters++
		case e.Ph == "i":
			sum.Marks = append(sum.Marks, e.Name)
		}
	}
	sum.PEs = len(pes)
	return sum, nil
}
