package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
)

// SchemaV1 identifies the run-manifest document layout.
const SchemaV1 = "clustersim/run-manifest/v1"

// Manifest is the JSON run manifest: everything needed to identify,
// diff and script over a simulation run. Config and Result are written
// as-is (core.Config and *core.Result in practice; the types are `any`
// here because core depends on this package, not the reverse).
type Manifest struct {
	Schema     string        `json:"schema"`
	App        string        `json:"app,omitempty"`
	Size       string        `json:"size,omitempty"`
	ConfigHash string        `json:"configHash"`
	Config     any           `json:"config"`
	Result     any           `json:"result"`
	Memory     *MemoryReport `json:"memory,omitempty"`
	Profile    any           `json:"profile,omitempty"`
	// Critpath is the critical-path analyzer's summary block
	// (*critpath.Summary in practice): phase count, balanced-ideal
	// execution time and the top contended lock.
	Critpath  any         `json:"critpath,omitempty"`
	Telemetry *SelfReport `json:"telemetry,omitempty"`
	// Host is the host-side block (perf.Host in practice): Go version,
	// GOOS/GOARCH, GOMAXPROCS, wall duration, peak heap. It describes the
	// machine the simulator ran on, never the simulated machine — scripts
	// diffing manifests for reproducibility must strip it first.
	Host any `json:"host,omitempty"`
}

// MemoryReport is the manifest's address-space block: the total
// simulated footprint and the named-region table, so scripts can map
// profile addresses back to the structures the application declared.
type MemoryReport struct {
	FootprintBytes uint64       `json:"footprintBytes"`
	Regions        []RegionInfo `json:"regions,omitempty"`
}

// RegionInfo is one named allocation, in allocation order.
type RegionInfo struct {
	Name string `json:"name"`
	Base uint64 `json:"base"`
	Size uint64 `json:"size"`
}

// SelfReport is the simulator's self-metrics block of a manifest.
type SelfReport struct {
	Handoffs        uint64            `json:"handoffs"`
	MaxReadyDepth   int               `json:"maxReadyDepth"`
	MeanReadyDepth  float64           `json:"meanReadyDepth"`
	MaxQuantumSkew  Clock             `json:"maxQuantumSkew"`
	Slices          int               `json:"slices"`
	SyncEpisodes    int               `json:"syncEpisodes"`
	CoherenceEvents uint64            `json:"coherenceEvents"`
	MissClasses     map[string]uint64 `json:"missClasses,omitempty"`
	Samples         int               `json:"samples"`
	Series          []SamplePoint     `json:"series,omitempty"`
}

// SamplePoint is one machine-wide interval of the sampled time series.
type SamplePoint struct {
	At            Clock  `json:"at"`
	Reads         uint64 `json:"reads"`
	Writes        uint64 `json:"writes"`
	ReadMisses    uint64 `json:"readMisses"`
	Merges        uint64 `json:"merges"`
	WriteMisses   uint64 `json:"writeMisses"`
	Upgrades      uint64 `json:"upgrades"`
	Invalidations uint64 `json:"invalidations"`
}

// SelfReport summarises the collection for a manifest. Safe on a nil
// collector (returns nil), so callers can pass their collector through
// unconditionally.
func (c *Collector) SelfReport() *SelfReport {
	if c == nil {
		return nil
	}
	r := &SelfReport{
		Handoffs:        c.sched.Handoffs,
		MaxReadyDepth:   c.sched.MaxReadyDepth,
		MeanReadyDepth:  c.sched.MeanReadyDepth(),
		MaxQuantumSkew:  c.sched.MaxSkew,
		SyncEpisodes:    len(c.episodes),
		CoherenceEvents: c.CoherenceEvents(),
		Samples:         len(c.samples),
	}
	if t := c.MissClassTotals(); len(t) > 0 {
		r.MissClasses = t
	}
	for pe := range c.pes {
		r.Slices += len(c.pes[pe].slices)
	}
	for _, s := range c.samples {
		t := s.Total()
		r.Series = append(r.Series, SamplePoint{
			At:            s.At,
			Reads:         t.Refs.Reads,
			Writes:        t.Refs.Writes,
			ReadMisses:    t.Refs.ReadMisses,
			Merges:        t.Refs.Merges,
			WriteMisses:   t.Refs.WriteMisses,
			Upgrades:      t.Refs.Upgrades,
			Invalidations: t.Coh.InvalidationsSent,
		})
	}
	return r
}

// HashConfig returns a deterministic content hash of a configuration:
// sha256 over its canonical JSON encoding (struct field order is fixed,
// so encoding/json is canonical for struct values). Two runs of the
// same configuration always produce the same hash.
func HashConfig(cfg any) (string, error) {
	b, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("telemetry: config not hashable: %w", err)
	}
	h := sha256.Sum256(b)
	return "sha256:" + hex.EncodeToString(h[:]), nil
}

// WriteManifest writes m as indented JSON, filling Schema and
// ConfigHash if they are unset.
func WriteManifest(w io.Writer, m Manifest) error {
	if m.Schema == "" {
		m.Schema = SchemaV1
	}
	if m.ConfigHash == "" {
		h, err := HashConfig(m.Config)
		if err != nil {
			return err
		}
		m.ConfigHash = h
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ManifestDoc is the read-side view of a manifest: Config and Result
// stay raw so callers can unmarshal them into the concrete types they
// know about.
type ManifestDoc struct {
	Schema     string          `json:"schema"`
	App        string          `json:"app"`
	Size       string          `json:"size"`
	ConfigHash string          `json:"configHash"`
	Config     json.RawMessage `json:"config"`
	Result     json.RawMessage `json:"result"`
	Memory     *MemoryReport   `json:"memory"`
	Profile    json.RawMessage `json:"profile"`
	Critpath   json.RawMessage `json:"critpath"`
	Telemetry  *SelfReport     `json:"telemetry"`
	Host       json.RawMessage `json:"host"`
}

// ReadManifest parses one manifest document.
func ReadManifest(r io.Reader) (*ManifestDoc, error) {
	var d ManifestDoc
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("telemetry: bad manifest: %w", err)
	}
	if d.Schema != SchemaV1 {
		return nil, fmt.Errorf("telemetry: unknown manifest schema %q", d.Schema)
	}
	return &d, nil
}
