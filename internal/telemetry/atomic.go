package telemetry

import (
	"io"
	"os"
	"path/filepath"
)

// AtomicFile writes a file through a same-directory temporary and a
// rename, so readers — and a process killed mid-write — never observe a
// torn document. Every JSON artifact a run can be interrupted around
// (traces, profiles, manifests, journal points) goes through here: the
// rename is atomic on POSIX filesystems, so the path either holds the
// complete new contents or whatever was there before.
func AtomicFile(path string, write func(io.Writer) error) (err error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// AtomicFileDurable is AtomicFile plus a directory fsync after the
// rename. AtomicFile alone guarantees readers never see a torn file,
// and fsyncs the *data* before renaming — but the rename itself lives
// in the directory, and on a power loss an unsynced directory can
// forget the entry while keeping the (synced) inode unreachable. For
// artifacts that must survive the machine dying, not just the process
// (journal point and failure records that a restarted worker resumes
// from), the directory entry has to reach disk too.
func AtomicFileDurable(path string, write func(io.Writer) error) error {
	if err := AtomicFile(path, write); err != nil {
		return err
	}
	return SyncDir(filepath.Dir(path))
}

// SyncDir fsyncs a directory, committing renames and removals inside
// it. Some platforms refuse fsync on directories (and some container
// filesystems error without meaning data loss); those errors are
// surfaced, not swallowed, so callers decide.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
