package telemetry

import (
	"io"
	"os"
	"path/filepath"
)

// AtomicFile writes a file through a same-directory temporary and a
// rename, so readers — and a process killed mid-write — never observe a
// torn document. Every JSON artifact a run can be interrupted around
// (traces, profiles, manifests, journal points) goes through here: the
// rename is atomic on POSIX filesystems, so the path either holds the
// complete new contents or whatever was there before.
func AtomicFile(path string, write func(io.Writer) error) (err error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
