// Package telemetry is the simulator's observability layer. A Collector
// attached to a core.Machine (via Config.Telemetry) receives typed
// events from every layer of the stack — per-processor execution-state
// slices, coherence outcomes, synchronisation episodes, and the
// engine's own scheduling metrics — and an interval sampler snapshots
// per-cluster counter deltas on a simulated-cycle grid. Two exporters
// turn a finished collection into artifacts: a Chrome trace-event JSON
// file viewable at ui.perfetto.dev (one track per processor, one
// counter track per cluster cache) and a JSON run manifest that makes
// runs diffable and scriptable.
//
// The paper's whole argument is a story about where cycles go — the
// Figure 2–5 execution-time breakdowns and the Table 1 miss-service
// classes. The collector records exactly those quantities, but resolved
// over virtual time instead of summed at end of run, so phase behaviour
// (a transpose, a tree build, a barrier convoy) is visible directly.
//
// Everything here is called from the goroutine holding the engine's
// execution token, so the collector is deliberately lock-free; a nil
// *Collector disables every hook at the cost of one branch.
package telemetry

import (
	"fmt"
	"io"

	"clustersim/internal/coherence"
)

// Clock counts simulated cycles (mirrors engine.Clock without importing
// it; both are int64).
type Clock = int64

// SliceKind classifies one span of a processor's execution time, in the
// paper's four-way breakdown.
type SliceKind uint8

const (
	// SliceCompute is CPU busy time: local work plus reference issue.
	SliceCompute SliceKind = iota
	// SliceLoadStall is read-miss stall time.
	SliceLoadStall
	// SliceMergeStall is stall time merged into another processor's
	// outstanding fill.
	SliceMergeStall
	// SliceSyncWait is barrier, lock and flag wait time.
	SliceSyncWait

	numSliceKinds
)

// String names the slice kind as it appears on trace tracks.
func (k SliceKind) String() string {
	switch k {
	case SliceCompute:
		return "compute"
	case SliceLoadStall:
		return "load-stall"
	case SliceMergeStall:
		return "merge-stall"
	case SliceSyncWait:
		return "sync-wait"
	}
	return fmt.Sprintf("SliceKind(%d)", uint8(k))
}

// Slice is one maximal span of a processor in a single execution state.
// Adjacent same-kind spans are coalesced, so the slices of one
// processor tile its timeline exactly: their durations sum to the
// processor's final virtual time.
type Slice struct {
	Kind  SliceKind
	Start Clock
	Dur   Clock
}

// SyncKind classifies a synchronisation object.
type SyncKind uint8

const (
	SyncBarrier SyncKind = iota
	SyncLock
	SyncFlag
)

// String names the sync kind.
func (k SyncKind) String() string {
	switch k {
	case SyncBarrier:
		return "barrier"
	case SyncLock:
		return "lock"
	case SyncFlag:
		return "flag"
	}
	return fmt.Sprintf("SyncKind(%d)", uint8(k))
}

// SyncObject describes one barrier, lock or flag.
type SyncObject struct {
	ID           int
	Kind         SyncKind
	Name         string
	Participants int // barrier width; 0 for locks and flags
}

// SyncEpisode is one processor's wait on one synchronisation object:
// the span from its arrival to its release.
type SyncEpisode struct {
	Proc    int32
	SyncID  int32
	Arrival Clock
	Release Clock
}

// Mark is a named instant on the global timeline (e.g. the start of the
// measured phase).
type Mark struct {
	Name string
	At   Clock
}

// SchedMetrics are the engine scheduler's self-measurements.
type SchedMetrics struct {
	Handoffs      uint64 `json:"handoffs"`      // token handoffs, incl. initial dispatch
	MaxReadyDepth int    `json:"maxReadyDepth"` // peak ready-heap population at a handoff
	depthSum      uint64 // for the mean
	MaxSkew       Clock  `json:"maxQuantumSkew"` // max (yielder clock - resumer clock) at a handoff
}

// MeanReadyDepth returns the average ready-heap population at handoff.
func (s SchedMetrics) MeanReadyDepth() float64 {
	if s.Handoffs == 0 {
		return 0
	}
	return float64(s.depthSum) / float64(s.Handoffs)
}

// peTrack accumulates one processor's timeline, coalescing adjacent
// same-kind spans.
type peTrack struct {
	slices           []Slice
	curKind          SliceKind
	curStart, curEnd Clock
	open             bool
}

func (t *peTrack) add(kind SliceKind, start, dur Clock) {
	if dur <= 0 {
		return
	}
	if t.open && kind == t.curKind && start == t.curEnd {
		t.curEnd += dur
		return
	}
	t.flush()
	t.curKind, t.curStart, t.curEnd, t.open = kind, start, start+dur, true
}

func (t *peTrack) flush() {
	if t.open {
		t.slices = append(t.slices, Slice{Kind: t.curKind, Start: t.curStart, Dur: t.curEnd - t.curStart})
		t.open = false
	}
}

// Collector gathers one run's telemetry. Create one per run with New,
// hand it to the machine via Config.Telemetry, and export after Run
// returns. It implements engine.Probe.
type Collector struct {
	pes      []peTrack
	clusters int

	syncs    []SyncObject
	episodes []SyncEpisode
	marks    []Mark

	// missCounts[cluster][class][hops] tallies coherence outcomes.
	missCounts [][int(coherence.WriteMerge) + 1][int(coherence.HopIntraCluster) + 1]uint64

	sched SchedMetrics

	// interval sampler state (see sampler.go)
	samples []Sample
	prev    []ClusterSample // cumulative snapshot at the previous sample

	progress io.Writer
	label    string

	// onSample, when set, observes each interval sample as it lands
	// (machine-wide counter deltas at a simulated instant); see
	// SetOnSample.
	onSample func(at Clock, total ClusterSample)

	started bool
}

// New creates an empty collector.
func New() *Collector { return &Collector{} }

// SetProgress directs a one-line-per-sample progress feed (labelled
// with label) to w; typically os.Stderr.
func (c *Collector) SetProgress(w io.Writer, label string) {
	c.progress = w
	c.label = label
}

// SetOnSample registers a callback observing each interval sample as it
// lands: the machine-wide counter deltas over the interval ending at
// simulated time at. The callback runs on the engine's token-holding
// goroutine, so it must be fast and must not touch simulated state —
// it exists to feed wall-clock-side observers (the obs gauges behind
// the -serve endpoints).
func (c *Collector) SetOnSample(fn func(at Clock, total ClusterSample)) {
	c.onSample = fn
}

// Start sizes the collector for a machine; core.NewMachine calls it.
func (c *Collector) Start(procs, clusters int) {
	if c.started {
		panic("telemetry: Collector reused across runs; create one per run")
	}
	c.started = true
	c.pes = make([]peTrack, procs)
	c.clusters = clusters
	c.missCounts = make([][int(coherence.WriteMerge) + 1][int(coherence.HopIntraCluster) + 1]uint64, clusters)
	c.prev = make([]ClusterSample, clusters)
}

// Slice records dur cycles of processor pe in the given state starting
// at start. Zero-duration slices are dropped; adjacent same-kind slices
// coalesce.
func (c *Collector) Slice(pe int, kind SliceKind, start, dur Clock) {
	c.pes[pe].add(kind, start, dur)
}

// DefineSync announces a synchronisation object before any episode
// references it.
func (c *Collector) DefineSync(id int, kind SyncKind, name string, participants int) {
	c.syncs = append(c.syncs, SyncObject{ID: id, Kind: kind, Name: name, Participants: participants})
}

// SyncWait records one processor's wait episode on a synchronisation
// object and charges the span to its sync-wait track.
func (c *Collector) SyncWait(pe, syncID int, arrival, release Clock) {
	c.episodes = append(c.episodes, SyncEpisode{
		Proc: int32(pe), SyncID: int32(syncID), Arrival: arrival, Release: release})
	c.pes[pe].add(SliceSyncWait, arrival, release-arrival)
}

// Coherence records the outcome of one miss-class event in a cluster.
// Hits are not reported (they are visible in the sampled counters).
func (c *Collector) Coherence(cluster int, class coherence.Class, hops coherence.Hops, at Clock) {
	c.missCounts[cluster][class][hops]++
}

// MarkInstant records a named global instant (e.g. "begin measurement").
func (c *Collector) MarkInstant(name string, at Clock) {
	c.marks = append(c.marks, Mark{Name: name, At: at})
}

// ClosePE flushes processor pe's open slice; the machine calls it once
// per processor when the run completes.
func (c *Collector) ClosePE(pe int) { c.pes[pe].flush() }

// Handoff implements engine.Probe.
func (c *Collector) Handoff(from, to int, fromTime, toTime Clock, readyDepth int) {
	c.sched.Handoffs++
	c.sched.depthSum += uint64(readyDepth)
	if readyDepth > c.sched.MaxReadyDepth {
		c.sched.MaxReadyDepth = readyDepth
	}
	if skew := fromTime - toTime; skew > c.sched.MaxSkew {
		c.sched.MaxSkew = skew
	}
}

// Slices returns processor pe's timeline (call after the run).
func (c *Collector) Slices(pe int) []Slice { return c.pes[pe].slices }

// NumPEs returns the number of processor tracks.
func (c *Collector) NumPEs() int { return len(c.pes) }

// NumClusters returns the number of cluster tracks.
func (c *Collector) NumClusters() int { return c.clusters }

// Syncs returns the synchronisation objects seen.
func (c *Collector) Syncs() []SyncObject { return c.syncs }

// Episodes returns all synchronisation wait episodes.
func (c *Collector) Episodes() []SyncEpisode { return c.episodes }

// Marks returns the global instants recorded.
func (c *Collector) Marks() []Mark { return c.marks }

// Sched returns the scheduler self-metrics.
func (c *Collector) Sched() SchedMetrics { return c.sched }

// MissClassTotals sums coherence events machine-wide, keyed
// "class/hops" (e.g. "read-miss/remote-dirty").
func (c *Collector) MissClassTotals() map[string]uint64 {
	out := make(map[string]uint64)
	for cl := range c.missCounts {
		for class := range c.missCounts[cl] {
			for hops, n := range c.missCounts[cl][class] {
				if n == 0 {
					continue
				}
				key := coherence.Class(class).String() + "/" + coherence.Hops(hops).String()
				out[key] += n
			}
		}
	}
	return out
}

// CoherenceEvents returns the total number of coherence events recorded.
func (c *Collector) CoherenceEvents() uint64 {
	var n uint64
	for cl := range c.missCounts {
		for class := range c.missCounts[cl] {
			for _, v := range c.missCounts[cl][class] {
				n += v
			}
		}
	}
	return n
}

// SliceTotals sums one processor's slice durations per kind, indexed by
// SliceKind. Because slices tile the timeline, the four entries sum to
// the processor's final virtual time.
func (c *Collector) SliceTotals(pe int) [4]Clock {
	var out [4]Clock
	for _, s := range c.pes[pe].slices {
		out[s.Kind] += s.Dur
	}
	return out
}
