package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRandomProgramsProperty generates random (barrier-synchronised, so
// deadlock-free) programs and checks machine-level invariants on both
// cluster organisations:
//
//   - the run completes without error,
//   - the accounting identity holds for every processor,
//   - the memory system's directory/cache agreement survives,
//   - the run is deterministic.
func TestRandomProgramsProperty(t *testing.T) {
	f := func(seed int64, clusterSeed, cacheSeed, orgSeed uint8) bool {
		clusterSizes := []int{1, 2, 4}
		cacheKBs := []int{0, 1, 4}
		cfg := DefaultConfig()
		cfg.Procs = 8
		cfg.ClusterSize = clusterSizes[int(clusterSeed)%len(clusterSizes)]
		cfg.CacheKBPerProc = cacheKBs[int(cacheSeed)%len(cacheKBs)]
		if orgSeed%2 == 1 {
			cfg.Organization = SharedMemory
		}

		run := func() (Clock, bool) {
			m, err := NewMachine(cfg)
			if err != nil {
				return 0, false
			}
			a := m.Alloc(1<<15, "data")
			bar := m.NewBarrier()
			lk := m.NewLock("l")
			res, err := m.Run(func(p *Proc) {
				r := rand.New(rand.NewSource(seed + int64(p.ID())*7919))
				for i := 0; i < 150; i++ {
					off := uint64(r.Intn(512)) * 64
					switch r.Intn(5) {
					case 0:
						p.Write(a + off)
					case 1:
						p.Compute(Clock(r.Intn(20)))
					case 2:
						lk.Acquire(p)
						p.Read(a + off)
						lk.Release(p)
					default:
						p.Read(a + off)
					}
					if i%30 == 29 {
						bar.Wait(p)
					}
				}
				bar.Wait(p)
			})
			if err != nil {
				return 0, false
			}
			for i, st := range res.Procs {
				if st.Total() != res.Finish[i] {
					t.Logf("seed %d: P%d accounting %d != finish %d", seed, i, st.Total(), res.Finish[i])
					return 0, false
				}
			}
			if err := m.System().CheckInvariants(res.ExecTime + 1000); err != nil {
				t.Logf("seed %d: invariants: %v", seed, err)
				return 0, false
			}
			return res.ExecTime, true
		}
		t1, ok1 := run()
		t2, ok2 := run()
		return ok1 && ok2 && t1 == t2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
