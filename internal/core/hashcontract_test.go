package core

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

// TestHashExclusionContract is the runtime twin of simlint's
// hashexclude rule: HashExcludedFields and the json:"-" struct tags on
// Config must describe exactly the same set of fields, so the config
// hash's input is a single auditable list.
func TestHashExclusionContract(t *testing.T) {
	tagged := make(map[string]bool)
	rt := reflect.TypeOf(Config{})
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		tag := f.Tag.Get("json")
		if tag == "-" {
			tagged[f.Name] = true
			continue
		}
		// Attachment-shaped fields (pointers, interfaces, funcs) must be
		// either hash-excluded or an explicit omitempty opt-in like
		// Faults — never silently part of the hash.
		switch f.Type.Kind() {
		case reflect.Ptr, reflect.Interface, reflect.Func:
			if !strings.Contains(tag, "omitempty") {
				t.Errorf("attachment field Config.%s is neither json:\"-\" nor json:\",omitempty\"", f.Name)
			}
		}
	}

	declared := make(map[string]bool, len(HashExcludedFields))
	for _, name := range HashExcludedFields {
		if declared[name] {
			t.Errorf("HashExcludedFields lists %q twice", name)
		}
		declared[name] = true
		if _, ok := rt.FieldByName(name); !ok {
			t.Errorf("HashExcludedFields lists %q but Config has no such field", name)
		}
		if !tagged[name] {
			t.Errorf("HashExcludedFields lists %q but Config.%s does not carry json:\"-\"", name, name)
		}
	}
	for name := range tagged {
		if !declared[name] {
			t.Errorf("Config.%s carries json:\"-\" but is missing from HashExcludedFields", name)
		}
	}

	want := append([]string(nil), HashExcludedFields...)
	sort.Strings(want)
	got := make([]string, 0, len(tagged))
	for name := range tagged {
		got = append(got, name) //simlint:allow maprange — fully sorted below
	}
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("exclusion set size mismatch: tags %v vs declared %v", got, want)
	}
}
