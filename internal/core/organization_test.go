package core

import (
	"testing"
)

// memCfg builds a shared-main-memory-cluster machine config.
func memCfg(procs, clusterSize, cacheKB int) Config {
	cfg := DefaultConfig()
	cfg.Procs = procs
	cfg.ClusterSize = clusterSize
	cfg.CacheKBPerProc = cacheKB
	cfg.Organization = SharedMemory
	return cfg
}

func TestOrganizationString(t *testing.T) {
	if SharedCache.String() != "shared-cache" || SharedMemory.String() != "shared-memory" {
		t.Fatal("organization strings")
	}
}

func TestSharedMemoryIntraClusterSharing(t *testing.T) {
	m := mustMachine(t, memCfg(4, 2, 0))
	a := m.Alloc(64, "x")
	bar := m.NewBarrier()
	res, err := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Read(a) // global cold miss
		}
		bar.Wait(p)
		if p.ID() == 1 {
			p.Read(a) // sibling: snoopy-bus fetch
		}
		if p.ID() == 2 {
			p.Read(a) // other cluster: global miss
		}
		bar.Wait(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs[1].IntraCluster != 1 {
		t.Errorf("sibling should fetch over the bus: %+v", res.Procs[1].Counters)
	}
	if res.Procs[1].LoadStall >= res.Procs[2].LoadStall {
		t.Errorf("bus fetch (%d) should be cheaper than remote (%d)",
			res.Procs[1].LoadStall, res.Procs[2].LoadStall)
	}
}

func TestSharedMemoryNoDestructiveInterference(t *testing.T) {
	// Two processors with disjoint streams in one cluster: with private
	// caches (SharedMemory) neither evicts the other's data, unlike a
	// small shared cache.
	run := func(org Organization) *Result {
		cfg := DefaultConfig()
		cfg.Procs = 2
		cfg.ClusterSize = 2
		cfg.CacheKBPerProc = 1 // 16 lines per proc (or 32 shared)
		cfg.Organization = org
		m := mustMachine(t, cfg)
		a := m.Alloc(1<<16, "streams")
		bar := m.NewBarrier()
		res, err := m.Run(func(p *Proc) {
			// Each proc loops over its own 24-line working set: each
			// fits alone in 16 lines? No — 24 > 16, but the point is the
			// shared 32-line cache cannot hold both 24-line sets while
			// the private caches at least keep their own LRU streams
			// separate.
			base := a + uint64(p.ID())*4096
			for round := 0; round < 30; round++ {
				for i := 0; i < 12; i++ {
					p.Read(base + uint64(i)*64)
				}
				bar.Wait(p)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	priv := run(SharedMemory)
	shared := run(SharedCache)
	// 12 lines per proc: private 16-line caches hold them all (only the
	// cold round misses); the shared 32-line cache also holds 24 — both
	// fine here. Tighten: the metric that must hold generally is that
	// private caches never do worse in read misses.
	if priv.Aggregate().ReadMisses > shared.Aggregate().ReadMisses {
		t.Errorf("private caches missed more (%d) than shared (%d) on disjoint streams",
			priv.Aggregate().ReadMisses, shared.Aggregate().ReadMisses)
	}
}

func TestSharedMemoryWorksetDuplication(t *testing.T) {
	// The flip side (paper §2): a shared READ-ONLY table is stored once
	// in a shared cache but duplicated in private caches, so with equal
	// total budget the shared-cache organisation holds it and the
	// private one thrashes.
	run := func(org Organization) *Result {
		cfg := DefaultConfig()
		cfg.Procs = 2
		cfg.ClusterSize = 2
		cfg.CacheKBPerProc = 1 // 16 lines/proc private, 32 lines shared
		cfg.Organization = org
		m := mustMachine(t, cfg)
		a := m.Alloc(64*24, "table") // 24 lines, fits in 32, not in 16
		bar := m.NewBarrier()
		res, err := m.Run(func(p *Proc) {
			for round := 0; round < 20; round++ {
				for i := 0; i < 24; i++ {
					p.Read(a + uint64(i)*64)
				}
				bar.Wait(p)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	shared := run(SharedCache)
	priv := run(SharedMemory)
	if shared.Aggregate().ReadMisses >= priv.Aggregate().ReadMisses {
		t.Errorf("shared cache should exploit working-set overlap: %d vs %d misses",
			shared.Aggregate().ReadMisses, priv.Aggregate().ReadMisses)
	}
	// But the private organisation's extra misses are cheap bus fetches.
	if priv.Aggregate().IntraCluster == 0 {
		t.Error("private-cache refetches should be intra-cluster")
	}
}

func TestSharedMemoryRejectsHintAblation(t *testing.T) {
	cfg := memCfg(4, 2, 4)
	cfg.DisableReplacementHints = true
	if _, err := NewMachine(cfg); err == nil {
		t.Fatal("want error combining SharedMemory with hint ablation")
	}
}

func TestSharedMemoryDeterministic(t *testing.T) {
	run := func() Clock {
		m := mustMachine(t, memCfg(8, 4, 2))
		a := m.Alloc(1<<14, "d")
		bar := m.NewBarrier()
		res, err := m.Run(func(p *Proc) {
			for i := 0; i < 100; i++ {
				off := uint64((p.ID()*37+i*11)%256) * 64
				if i%4 == 0 {
					p.Write(a + off)
				} else {
					p.Read(a + off)
				}
			}
			bar.Wait(p)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.ExecTime
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

func TestSharedMemoryInvariantsAfterRun(t *testing.T) {
	m := mustMachine(t, memCfg(8, 2, 2))
	a := m.Alloc(1<<15, "d")
	bar := m.NewBarrier()
	res, err := m.Run(func(p *Proc) {
		for i := 0; i < 300; i++ {
			off := uint64((p.ID()*131+i*17)%512) * 64
			if i%3 == 0 {
				p.Write(a + off)
			} else {
				p.Read(a + off)
			}
		}
		bar.Wait(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.System().CheckInvariants(res.ExecTime + 1000); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}
