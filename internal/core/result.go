package core

import (
	"fmt"
	"io"
	"sort"

	"clustersim/internal/coherence"
	"clustersim/internal/memory"
	"clustersim/internal/stats"
	"clustersim/internal/telemetry"
)

// Result is the outcome of one simulation run.
type Result struct {
	Config    Config
	ExecTime  Clock // completion time of the slowest processor
	Procs     []stats.Proc
	Finish    []Clock // per-processor completion time (same origin as ExecTime)
	Clusters  []coherence.Stats
	Footprint uint64 // bytes of simulated memory allocated

	// Allocations is the named-region table of the run's address space,
	// in allocation order — the map from addresses back to the data
	// structures the application declared.
	Allocations []memory.Region `json:",omitempty"`

	// Regions holds per-allocation reference profiles when the machine
	// ran with EnableRegionProfile.
	Regions map[string]stats.Counters
}

// MemoryReport builds the run manifest's address-space block from the
// run's footprint and named-region table.
func (r *Result) MemoryReport() *telemetry.MemoryReport {
	m := &telemetry.MemoryReport{FootprintBytes: r.Footprint}
	for _, reg := range r.Allocations {
		m.Regions = append(m.Regions, telemetry.RegionInfo{Name: reg.Name, Base: reg.Base, Size: reg.Size})
	}
	return m
}

// Aggregate sums the per-processor records.
func (r *Result) Aggregate() stats.Proc {
	var total stats.Proc
	for _, p := range r.Procs {
		total = total.Plus(p)
	}
	return total
}

// Fractions returns each breakdown component as a fraction of the summed
// per-processor time, in the paper's order: CPU, load, merge, sync. The
// paper's figures scale these fractions by the normalised execution time.
func (r *Result) Fractions() (cpu, load, merge, sync float64) {
	a := r.Aggregate().Breakdown
	t := float64(a.Total())
	if t == 0 {
		return 0, 0, 0, 0
	}
	return float64(a.CPU) / t, float64(a.LoadStall) / t,
		float64(a.MergeStall) / t, float64(a.SyncWait) / t
}

// NormalizedBar expresses this run as a stacked bar of the paper's
// figures: the total height is 100 × ExecTime/base.ExecTime, split into
// CPU, load-stall, merge-stall and sync components.
type NormalizedBar struct {
	Total, CPU, Load, Merge, Sync float64
}

// Normalize builds the stacked bar of this result against a baseline run
// (the one-processor-per-cluster configuration in the paper's figures).
// A zero-ExecTime baseline (a degenerate run, e.g. an empty kernel)
// yields a zero bar rather than ±Inf/NaN components.
func (r *Result) Normalize(base *Result) NormalizedBar {
	if base.ExecTime == 0 {
		return NormalizedBar{}
	}
	h := 100 * float64(r.ExecTime) / float64(base.ExecTime)
	cpu, load, merge, sync := r.Fractions()
	return NormalizedBar{
		Total: h,
		CPU:   h * cpu,
		Load:  h * load,
		Merge: h * merge,
		Sync:  h * sync,
	}
}

// TotalInvalidations sums invalidation messages across clusters.
func (r *Result) TotalInvalidations() uint64 {
	var n uint64
	for _, c := range r.Clusters {
		n += c.InvalidationsSent
	}
	return n
}

// WriteSummary prints a human-readable report of the run.
func (r *Result) WriteSummary(w io.Writer) {
	a := r.Aggregate()
	cpu, load, merge, sync := r.Fractions()
	fmt.Fprintf(w, "procs=%d cluster=%d cache/proc=%s line=%dB\n",
		r.Config.Procs, r.Config.ClusterSize, cacheLabel(r.Config.CacheKBPerProc), r.Config.LineBytes)
	fmt.Fprintf(w, "  exec time       %12d cycles\n", r.ExecTime)
	fmt.Fprintf(w, "  breakdown       cpu %.1f%%  load %.1f%%  merge %.1f%%  sync %.1f%%\n",
		100*cpu, 100*load, 100*merge, 100*sync)
	fmt.Fprintf(w, "  references      %12d (%d reads, %d writes)\n",
		a.References(), a.Reads, a.Writes)
	fmt.Fprintf(w, "  read misses     %12d + %d merges (%.3f%% of reads)\n",
		a.ReadMisses, a.Merges, 100*a.ReadMissRate())
	fmt.Fprintf(w, "  write misses    %12d + %d merges (%.3f%% of writes), upgrades %d\n",
		a.WriteMisses, a.WriteMerges, 100*a.WriteMissRate(), a.Upgrades)
	fmt.Fprintf(w, "  merge rate      %.3f%% of references\n", 100*a.MergeRate())
	fmt.Fprintf(w, "  miss service    local-clean %d  local-dirty %d  remote-clean %d  remote-dirty %d\n",
		a.LocalClean, a.LocalDirty, a.RemoteClean, a.RemoteDirty)
	fmt.Fprintf(w, "  invalidations   %12d\n", r.TotalInvalidations())
	if r.Config.Faults != nil {
		// Only faulted runs print this line, keeping fault-free output
		// byte-identical to builds that predate the fault layer.
		var nacks, acks, cycles uint64
		for _, st := range r.Clusters {
			nacks += st.Nacks
			acks += st.AckDelays
			cycles += st.FaultCycles
		}
		fmt.Fprintf(w, "  faults          nacks %d  ack-delays %d  injected %d cycles (seed %d)\n",
			nacks, acks, cycles, r.Config.Faults.Seed)
	}
	fmt.Fprintf(w, "  footprint       %12d bytes\n", r.Footprint)
}

// WriteRegionProfile prints the per-allocation reference profile,
// ordered by read misses, if the run was profiled.
func (r *Result) WriteRegionProfile(w io.Writer) {
	if len(r.Regions) == 0 {
		fmt.Fprintln(w, "  (no region profile; run with Config.ProfileRegions)")
		return
	}
	names := make([]string, 0, len(r.Regions))
	for name := range r.Regions {
		names = append(names, name) //simlint:allow maprange
	}
	// (sorted below with a deterministic tie-break, so iteration order
	// never reaches the report)
	sort.Slice(names, func(i, j int) bool {
		a, b := r.Regions[names[i]], r.Regions[names[j]]
		am, bm := a.ReadMisses+a.Merges, b.ReadMisses+b.Merges
		if am != bm {
			return am > bm
		}
		return names[i] < names[j]
	})
	fmt.Fprintf(w, "  %-16s %12s %12s %10s %10s %10s\n",
		"region", "reads", "writes", "rd misses", "merges", "upgrades")
	for _, name := range names {
		c := r.Regions[name]
		fmt.Fprintf(w, "  %-16s %12d %12d %10d %10d %10d\n",
			name, c.Reads, c.Writes, c.ReadMisses, c.Merges, c.Upgrades)
	}
}

func cacheLabel(kb int) string {
	if kb == 0 {
		return "inf"
	}
	return fmt.Sprintf("%dKB", kb)
}
