package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"clustersim/internal/coherence"
	"clustersim/internal/perf"
	"clustersim/internal/stats"
	"clustersim/internal/telemetry"
)

// fixedResult builds a fully deterministic Result by hand, so the
// report goldens are independent of the simulator.
func fixedResult() *Result {
	cfg := DefaultConfig()
	cfg.Procs = 2
	cfg.ClusterSize = 2
	cfg.CacheKBPerProc = 16
	r := &Result{
		Config:   cfg,
		ExecTime: 12345,
		Procs: []stats.Proc{
			{
				Breakdown: stats.Breakdown{CPU: 6000, LoadStall: 3000, MergeStall: 2000, SyncWait: 1345},
				Counters: stats.Counters{
					Reads: 4000, Writes: 2000,
					ReadHits: 3700, WriteHits: 1800,
					ReadMisses: 200, WriteMisses: 100, Upgrades: 80, Merges: 100, WriteMerges: 20,
					LocalClean: 120, LocalDirty: 60, RemoteClean: 80, RemoteDirty: 40,
				},
			},
			{
				Breakdown: stats.Breakdown{CPU: 5000, LoadStall: 4000, MergeStall: 1000, SyncWait: 2345},
				Counters: stats.Counters{
					Reads: 3000, Writes: 1000,
					ReadHits: 2850, WriteHits: 900,
					ReadMisses: 100, WriteMisses: 50, Upgrades: 40, Merges: 50, WriteMerges: 10,
					LocalClean: 50, LocalDirty: 30, RemoteClean: 40, RemoteDirty: 30,
				},
			},
		},
		Finish:    []Clock{12000, 12345},
		Clusters:  []coherence.Stats{{InvalidationsSent: 321, InvalidationsReceived: 321, Writebacks: 12}},
		Footprint: 65536,
		Regions: map[string]stats.Counters{
			"grid":  {Reads: 6000, Writes: 2500, ReadMisses: 250, Merges: 120, Upgrades: 100},
			"tally": {Reads: 1000, Writes: 500, ReadMisses: 50, Merges: 30, Upgrades: 20},
		},
	}
	return r
}

const wantSummary = `procs=2 cluster=2 cache/proc=16KB line=64B
  exec time              12345 cycles
  breakdown       cpu 44.6%  load 28.4%  merge 12.2%  sync 14.9%
  references             10000 (7000 reads, 3000 writes)
  read misses              300 + 150 merges (6.429% of reads)
  write misses             150 + 30 merges (6.000% of writes), upgrades 120
  merge rate      1.800% of references
  miss service    local-clean 170  local-dirty 90  remote-clean 120  remote-dirty 70
  invalidations            321
  footprint              65536 bytes
`

func TestWriteSummaryGolden(t *testing.T) {
	var b strings.Builder
	fixedResult().WriteSummary(&b)
	if got := b.String(); got != wantSummary {
		t.Errorf("summary mismatch:\n--- got ---\n%s--- want ---\n%s", got, wantSummary)
	}
}

const wantRegionProfile = `  region                  reads       writes  rd misses     merges   upgrades
  grid                     6000         2500        250        120        100
  tally                    1000          500         50         30         20
`

func TestWriteRegionProfileGolden(t *testing.T) {
	var b strings.Builder
	fixedResult().WriteRegionProfile(&b)
	if got := b.String(); got != wantRegionProfile {
		t.Errorf("region profile mismatch:\n--- got ---\n%s--- want ---\n%s", got, wantRegionProfile)
	}
}

func TestWriteRegionProfilePlaceholder(t *testing.T) {
	r := fixedResult()
	r.Regions = nil
	var b strings.Builder
	r.WriteRegionProfile(&b)
	if !strings.Contains(b.String(), "no region profile") {
		t.Errorf("placeholder missing: %q", b.String())
	}
}

// TestNormalizeZeroBaseline: a degenerate zero-time baseline produces a
// zero bar, not ±Inf/NaN.
func TestNormalizeZeroBaseline(t *testing.T) {
	r := fixedResult()
	base := fixedResult()
	base.ExecTime = 0
	bar := r.Normalize(base)
	if bar != (NormalizedBar{}) {
		t.Errorf("bar = %+v, want zero value", bar)
	}
	// Sanity: a real baseline still normalizes.
	base.ExecTime = r.ExecTime
	if bar := r.Normalize(base); bar.Total != 100 {
		t.Errorf("self-normalized total = %f, want 100", bar.Total)
	}
}

// TestManifestWithRealResult: the JSON manifest round-trips a concrete
// core.Result and its hash is stable across independent encodings of
// the same config.
func TestManifestWithRealResult(t *testing.T) {
	res := fixedResult()
	write := func() []byte {
		var b bytes.Buffer
		if err := telemetry.WriteManifest(&b, telemetry.Manifest{
			App: "golden", Size: "test", Config: res.Config, Result: res,
		}); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	first, second := write(), write()
	if !bytes.Equal(first, second) {
		t.Fatal("manifest not byte-identical across two encodings of the same run")
	}

	doc, err := telemetry.ReadManifest(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	var cfg Config
	if err := json.Unmarshal(doc.Config, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg != res.Config {
		t.Errorf("config round-trip:\n got %+v\nwant %+v", cfg, res.Config)
	}
	var back Result
	if err := json.Unmarshal(doc.Result, &back); err != nil {
		t.Fatal(err)
	}
	if back.ExecTime != res.ExecTime || back.Footprint != res.Footprint ||
		len(back.Procs) != len(res.Procs) || back.Procs[1] != res.Procs[1] ||
		back.Regions["grid"] != res.Regions["grid"] {
		t.Errorf("result round-trip mismatch: %+v", back)
	}

	// The hash must not depend on observability attachments.
	withTel := res.Config
	withTel.Telemetry = telemetry.New()
	withTel.SampleEvery = 999
	withTel.Tracer = nil
	h1, err := telemetry.HashConfig(res.Config)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := telemetry.HashConfig(withTel)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("config hash changed when telemetry was attached")
	}
	if doc.ConfigHash != h1 {
		t.Errorf("manifest hash %s != direct hash %s", doc.ConfigHash, h1)
	}
}

// TestManifestHostBlock: the manifest's host block round-trips, and two
// manifests of the same run that differ only in their host blocks are
// identical once the host block is stripped — the normalization scripts
// (and the reproducibility tests) rely on.
func TestManifestHostBlock(t *testing.T) {
	res := fixedResult()
	write := func(h perf.Host) []byte {
		var b bytes.Buffer
		if err := telemetry.WriteManifest(&b, telemetry.Manifest{
			App: "golden", Size: "test", Config: res.Config, Result: res, Host: h,
		}); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	hostA := perf.Host{GoVersion: "go1.0", GOOS: "linux", GOARCH: "amd64",
		GOMAXPROCS: 8, NumCPU: 8, WallNS: 1e9, HeapPeakBytes: 1 << 20}
	hostB := hostA
	hostB.WallNS = 7e9 // a slower host, same simulation
	hostB.GOMAXPROCS = 2

	first, second := write(hostA), write(hostB)
	if bytes.Equal(first, second) {
		t.Fatal("distinct host blocks encoded identically")
	}
	strip := func(raw []byte) *telemetry.ManifestDoc {
		doc, err := telemetry.ReadManifest(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		var h perf.Host
		if err := json.Unmarshal(doc.Host, &h); err != nil {
			t.Fatalf("host block does not parse: %v", err)
		}
		doc.Host = nil // normalization: the host block never identifies a run
		return doc
	}
	a, b := strip(first), strip(second)
	if a.ConfigHash != b.ConfigHash || !bytes.Equal(a.Config, b.Config) || !bytes.Equal(a.Result, b.Result) {
		t.Error("manifests differ beyond the host block")
	}

	// Round-trip fidelity of the block itself.
	doc, err := telemetry.ReadManifest(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	var back perf.Host
	if err := json.Unmarshal(doc.Host, &back); err != nil {
		t.Fatal(err)
	}
	if back != hostA {
		t.Errorf("host round-trip:\n got %+v\nwant %+v", back, hostA)
	}
}
