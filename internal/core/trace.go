package core

import (
	"fmt"

	"clustersim/internal/critpath"
	"clustersim/internal/telemetry"
)

// Event tracing. Tango-lite, the simulator the paper builds on, could
// both drive the memory system directly (execution-driven, the mode this
// library uses) and emit reference traces for later trace-driven
// simulation. A Tracer attached to a Machine receives every reference,
// compute interval and synchronisation operation in global virtual-time
// order; the trace package serialises these streams and replays them
// through fresh machine configurations.

// EventKind classifies one traced event.
type EventKind uint8

const (
	// EvRead is a load; Arg is the address.
	EvRead EventKind = iota
	// EvWrite is a store; Arg is the address.
	EvWrite
	// EvCompute is local work; Arg is the cycle count.
	EvCompute
	// EvBarrier is a barrier arrival; Arg is the barrier's sync ID.
	EvBarrier
	// EvAcquire is a lock acquire; Arg is the lock's sync ID.
	EvAcquire
	// EvRelease is a lock release; Arg is the lock's sync ID.
	EvRelease
	// EvFlagSet raises a flag; Arg is the flag's sync ID.
	EvFlagSet
	// EvFlagWait waits on a flag; Arg is the flag's sync ID.
	EvFlagWait
)

// Event is one traced processor action.
type Event struct {
	Proc int32
	Kind EventKind
	Arg  uint64
}

// Tracer receives the event stream of a run. Calls arrive in the global
// order the events were simulated in (the engine is sequential), from
// the goroutine holding the execution token.
type Tracer interface {
	// DefineRegion announces an allocation, in allocation order, so a
	// replay can rebuild the identical address layout.
	DefineRegion(name string, size uint64)
	// DefineSync announces a synchronisation object before any event
	// references it. Participants is the barrier width (0 for locks and
	// flags).
	DefineSync(kind EventKind, id int, participants int)
	// TraceEvent records one processor action.
	TraceEvent(ev Event)
}

// SetTracer attaches a tracer; call before Run and before allocating or
// creating synchronisation objects (Config.Tracer does this for you).
func (m *Machine) SetTracer(t Tracer) { m.tracer = t }

// nextSyncID hands out identities for barriers, locks and flags.
func (m *Machine) nextSyncID() int {
	id := m.syncIDs
	m.syncIDs++
	return id
}

func (m *Machine) traceEvent(proc int, kind EventKind, arg uint64) {
	if m.tracer != nil {
		m.tracer.TraceEvent(Event{Proc: int32(proc), Kind: kind, Arg: arg})
	}
}

func (m *Machine) defineSync(kind EventKind, id, participants int, name string) {
	if prev, dup := m.syncNames[name]; dup {
		panic(fmt.Sprintf("core: sync object %q registered twice (sync IDs %d and %d); "+
			"give every barrier, lock and flag a distinct name", name, prev, id))
	}
	if m.syncNames == nil {
		m.syncNames = make(map[string]int)
	}
	m.syncNames[name] = id
	if m.tracer != nil {
		m.tracer.DefineSync(kind, id, participants)
	}
	if m.tel != nil {
		m.tel.DefineSync(id, syncKindOf(kind), name, participants)
	}
	if m.crit != nil {
		m.crit.DefineSync(id, critKindOf(kind), name, participants)
	}
}

// syncKindOf maps the trace event of a sync object's definition to the
// telemetry classification.
func syncKindOf(kind EventKind) telemetry.SyncKind {
	switch kind {
	case EvBarrier:
		return telemetry.SyncBarrier
	case EvAcquire:
		return telemetry.SyncLock
	default:
		return telemetry.SyncFlag
	}
}

// critKindOf maps the trace event of a sync object's definition to the
// critical-path analyzer's classification.
func critKindOf(kind EventKind) critpath.Kind {
	switch kind {
	case EvBarrier:
		return critpath.KindBarrier
	case EvAcquire:
		return critpath.KindLock
	default:
		return critpath.KindFlag
	}
}

// telSyncWait charges [arrival, release) on processor pe to sync object
// id in the telemetry stream. The zero-duration case still records an
// episode so contention counts stay exact.
func (m *Machine) telSyncWait(pe, id int, arrival, release Clock) {
	if m.tel != nil {
		m.tel.SyncWait(pe, id, arrival, release)
	}
}
