package core

import (
	"strings"
	"testing"

	"clustersim/internal/memory"
)

// TestPlacementPolicyAffectsLocality: with AllOnZero every page homes at
// cluster 0, so cluster 0's misses are all local (30 cycles) and other
// clusters' are all remote — versus the balanced round-robin default.
func TestPlacementPolicyAffectsLocality(t *testing.T) {
	run := func(policy memory.PlacementPolicy) *Result {
		cfg := tiny(4, 1)
		cfg.Placement = policy
		m := mustMachine(t, cfg)
		a := m.Alloc(16*4096, "data")
		res, err := m.Run(func(p *Proc) {
			for pg := 0; pg < 16; pg++ {
				p.Read(a + uint64(pg)*4096 + uint64(p.ID())*64)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rr := run(memory.RoundRobin)
	zero := run(memory.AllOnZero)
	aggRR := rr.Aggregate()
	aggZ := zero.Aggregate()
	// Under AllOnZero, processor 0 sees only local misses.
	if zero.Procs[0].RemoteClean+zero.Procs[0].RemoteDirty != 0 {
		t.Errorf("AllOnZero: P0 saw remote misses: %+v", zero.Procs[0].Counters)
	}
	// Under round-robin, local misses spread across processors.
	if aggRR.LocalClean == 0 {
		t.Errorf("round-robin produced no local misses: %+v", aggRR)
	}
	if aggZ.LocalClean != zero.Procs[0].LocalClean {
		t.Errorf("AllOnZero gave local misses to a non-zero cluster")
	}
}

// TestReplacementHintAblation: with hints disabled, a cluster that
// silently evicts a clean line keeps its stale directory bit and
// receives a spurious invalidation on the next remote write.
func TestReplacementHintAblation(t *testing.T) {
	run := func(disable bool) *Result {
		cfg := tiny(2, 1)
		cfg.DisableReplacementHints = disable
		cfg.CacheKBPerProc = 1 // 16 lines; the 32-line walk below evicts line 0
		m := mustMachine(t, cfg)
		a := m.Alloc(64*64, "data")
		bar := m.NewBarrier()
		res, err := m.Run(func(p *Proc) {
			if p.ID() == 0 {
				// Read line 0, then walk far enough to evict it.
				p.Read(a)
				for i := 1; i < 32; i++ {
					p.Read(a + uint64(i)*64)
				}
			}
			bar.Wait(p)
			if p.ID() == 1 {
				p.Write(a) // may send a spurious invalidation to P0
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with := run(false)
	without := run(true)
	if got := with.Clusters[1].InvalidationsSent; got != 0 {
		t.Errorf("with hints: expected no invalidations, got %d", got)
	}
	if got := without.Clusters[1].InvalidationsSent; got == 0 {
		t.Errorf("without hints: expected a spurious invalidation")
	}
	if with.Clusters[0].ReplacementHints == 0 {
		t.Errorf("with hints: no hints recorded")
	}
	if without.Clusters[0].ReplacementHints != 0 {
		t.Errorf("without hints: hints still recorded")
	}
}

// TestQuantumSpeedAccuracyTradeoff: a nonzero quantum must keep results
// deterministic and close to the exact run.
func TestQuantumSpeedAccuracyTradeoff(t *testing.T) {
	run := func(q Clock) Clock {
		cfg := tiny(8, 2)
		cfg.Quantum = q
		m := mustMachine(t, cfg)
		a := m.Alloc(1<<16, "data")
		bar := m.NewBarrier()
		res, err := m.Run(func(p *Proc) {
			for i := 0; i < 300; i++ {
				p.Read(a + uint64((p.ID()*997+i*131)%1024)*64)
				p.Compute(3)
			}
			bar.Wait(p)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.ExecTime
	}
	exact := run(0)
	loose := run(200)
	loose2 := run(200)
	if loose != loose2 {
		t.Fatalf("quantum run nondeterministic: %d vs %d", loose, loose2)
	}
	diff := float64(loose-exact) / float64(exact)
	if diff < -0.2 || diff > 0.2 {
		t.Errorf("quantum=200 skewed exec time by %.1f%% (exact %d, loose %d)",
			100*diff, exact, loose)
	}
}

// TestRegionProfile checks per-allocation attribution of references.
func TestRegionProfile(t *testing.T) {
	cfg := tiny(2, 1)
	cfg.ProfileRegions = true
	m := mustMachine(t, cfg)
	hot := m.Alloc(4096, "hot")
	cold := m.Alloc(4096, "cold")
	res, err := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			for i := 0; i < 32; i++ {
				p.Read(hot + uint64(i)*64)
			}
			p.Write(cold)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	h, ok := res.Regions["hot"]
	if !ok || h.Reads != 32 || h.ReadMisses == 0 {
		t.Fatalf("hot region profile = %+v (ok=%v)", h, ok)
	}
	c := res.Regions["cold"]
	if c.Writes != 1 || c.Reads != 0 {
		t.Fatalf("cold region profile = %+v", c)
	}
	var b strings.Builder
	res.WriteRegionProfile(&b)
	if !strings.Contains(b.String(), "hot") {
		t.Errorf("profile output missing region name:\n%s", b.String())
	}
}

// TestNoProfileByDefault: without the flag, Regions stays nil and no
// lookup overhead is incurred.
func TestNoProfileByDefault(t *testing.T) {
	m := mustMachine(t, tiny(1, 1))
	a := m.Alloc(64, "x")
	res, err := m.Run(func(p *Proc) { p.Read(a) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Regions != nil {
		t.Fatal("Regions should be nil without profiling")
	}
	var b strings.Builder
	res.WriteRegionProfile(&b)
	if !strings.Contains(b.String(), "no region profile") {
		t.Error("expected placeholder message")
	}
}

// TestBlockingWritesAblation: with the store-buffer assumption disabled,
// write misses stall for the fetch latency, so execution time grows.
func TestBlockingWritesAblation(t *testing.T) {
	run := func(blocking bool) *Result {
		cfg := tiny(2, 1)
		cfg.BlockingWrites = blocking
		m := mustMachine(t, cfg)
		a := m.Alloc(1<<13, "data")
		res, err := m.Run(func(p *Proc) {
			for i := 0; i < 32; i++ {
				p.Write(a + uint64(i)*64)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	hidden := run(false)
	blocking := run(true)
	if blocking.ExecTime <= hidden.ExecTime {
		t.Fatalf("blocking writes should cost time: %d vs %d",
			blocking.ExecTime, hidden.ExecTime)
	}
	// With hidden writes the 32 cold write misses cost 32 cycles; with
	// blocking writes each pays its fetch latency too.
	if hidden.ExecTime != 32 {
		t.Errorf("hidden-write run = %d cycles, want 32 issue cycles", hidden.ExecTime)
	}
}
