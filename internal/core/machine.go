package core

import (
	"fmt"

	"clustersim/internal/coherence"
	"clustersim/internal/critpath"
	"clustersim/internal/engine"
	"clustersim/internal/fault"
	"clustersim/internal/memory"
	"clustersim/internal/perf"
	"clustersim/internal/profile"
	"clustersim/internal/sanitizer"
	"clustersim/internal/stats"
	"clustersim/internal/telemetry"
)

// Machine is one simulated clustered multiprocessor. Allocate shared data
// with Alloc/AllocLocal, create synchronisation objects, then call Run
// exactly once with the per-processor kernel.
type Machine struct {
	cfg   Config
	as    *memory.AddressSpace
	sys   coherence.MemoryModel
	sched *engine.Scheduler
	procs []*Proc
	ran   bool

	// origin is the virtual time at which measurement began (see
	// BeginMeasurement); ExecTime is reported relative to it.
	origin Clock

	// regionStats accumulates per-allocation reference profiles when
	// profiling is enabled (see EnableRegionProfile).
	regionStats map[string]*stats.Counters

	// tracer, when set, receives the event stream (see SetTracer).
	tracer  Tracer
	syncIDs int

	// tel, when set, receives the observability stream (Config.Telemetry);
	// nextSample is the next interval-sampler deadline.
	tel        *telemetry.Collector
	nextSample Clock

	// prof, when set, receives every reference and protocol event
	// (Config.Profile). Like tel and san, the hot paths gate on the nil
	// check alone.
	prof *profile.Collector

	// san, when set, validates every coherence transaction
	// (Config.Sanitize). The hot paths gate on the nil check alone, so a
	// disabled sanitizer costs nothing.
	san *sanitizer.Checker

	// mon, when set, attributes host wall-clock time to execution
	// phases (Config.Perf). Hot paths gate on the nil check alone.
	mon *perf.Monitor

	// crit, when set, receives synchronisation episodes for
	// critical-path analysis (Config.Critpath). Hot paths gate on the
	// nil check alone.
	crit *critpath.Analyzer

	// syncNames guards against two synchronisation objects registering
	// the same name — indistinguishable in every report.
	syncNames map[string]int
}

// NewMachine builds a machine from cfg.
func NewMachine(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	as, err := memory.New(cfg.PageBytes, cfg.NumClusters())
	if err != nil {
		return nil, err
	}
	as.SetPolicy(cfg.Placement)
	// The fault injector (if any) is built once and attached to whichever
	// organisation the switch below constructs. A nil plan, or one whose
	// probabilities are all zero, attaches nothing: the coherence hot
	// paths keep their single nil check and the run is byte-identical to
	// a machine without the fault layer.
	var inj *fault.Injector
	if cfg.Faults != nil && cfg.Faults.Active() {
		inj, err = fault.NewInjector(*cfg.Faults)
		if err != nil {
			return nil, err
		}
	}
	var sys coherence.MemoryModel
	switch cfg.Organization {
	case SharedMemory:
		bus := cfg.BusCycles
		if bus == 0 {
			bus = coherence.DefaultBusCycles
		}
		mc, err := coherence.NewMemClusterSystem(as, cfg.NumClusters(), cfg.ClusterSize,
			cfg.CacheLinesPerProc(), cfg.Assoc, cfg.LineBytes, cfg.Latencies, bus, cfg.Policy)
		if err != nil {
			return nil, err
		}
		if cfg.DisableReplacementHints {
			return nil, fmt.Errorf("core: replacement hints do not apply to shared-memory clusters")
		}
		mc.SetFaults(inj)
		sys = mc
	default:
		sc, err := coherence.NewSystemAssoc(as, cfg.NumClusters(), cfg.CacheLinesPerCluster(),
			cfg.Assoc, cfg.LineBytes, cfg.Latencies, cfg.Policy)
		if err != nil {
			return nil, err
		}
		if cfg.DisableReplacementHints {
			sc.DisableReplacementHints()
		}
		sc.SetFaults(inj)
		sys = sc
	}
	m := &Machine{cfg: cfg, as: as, sys: sys}
	if cfg.Sanitize {
		// Global monotonicity is safe to assert because Validate rejects
		// Sanitize with a nonzero Quantum.
		m.san = sanitizer.New(sys, cfg.Procs, true)
	}
	if cfg.ProfileRegions {
		m.EnableRegionProfile()
	}
	if cfg.Tracer != nil {
		m.SetTracer(cfg.Tracer)
	}
	m.sched = engine.NewScheduler(cfg.Procs, cfg.Quantum)
	m.sched.SetLabel(cfg.Label)
	m.procs = make([]*Proc, cfg.Procs)
	for i, pe := range m.sched.PEs() {
		m.procs[i] = &Proc{pe: pe, m: m, cluster: cfg.ClusterOf(i)}
	}
	if cfg.Telemetry != nil {
		m.tel = cfg.Telemetry
		m.tel.Start(cfg.Procs, cfg.NumClusters())
		m.sched.SetProbe(m.tel)
		if cfg.SampleEvery > 0 {
			m.nextSample = cfg.SampleEvery
		}
	}
	if cfg.Profile != nil {
		m.prof = cfg.Profile
		m.prof.Start(as, cfg.NumClusters(), cfg.LineBytes)
		sys.SetObserver(m.prof)
	}
	if cfg.Perf != nil {
		m.mon = cfg.Perf
		m.sched.SetTimer(m.mon)
	}
	if cfg.Critpath != nil {
		m.crit = cfg.Critpath
		m.crit.Start(cfg.Procs, cfg.NumClusters())
	}
	return m, nil
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// EnableRegionProfile turns on per-allocation reference profiling: every
// reference is attributed to the named region containing its address, so
// results report which data structures miss — the style of analysis the
// paper uses when it attributes Radix's merges to "the shared
// histograms". Costs one region lookup per reference; off by default.
func (m *Machine) EnableRegionProfile() {
	m.regionStats = make(map[string]*stats.Counters)
}

// regionCounters returns the profile bucket for addr, or nil when
// profiling is off.
func (m *Machine) regionCounters(addr Addr) *stats.Counters {
	if m.regionStats == nil {
		return nil
	}
	r, ok := m.as.RegionOf(addr)
	if !ok {
		return nil
	}
	c := m.regionStats[r.Name]
	if c == nil {
		c = &stats.Counters{}
		m.regionStats[r.Name] = c
	}
	return c
}

// Alloc reserves size bytes of shared memory; pages are homed round-robin
// at first touch, as in the paper.
func (m *Machine) Alloc(size uint64, name string) Addr {
	if m.tracer != nil {
		m.tracer.DefineRegion(name, size)
	}
	return m.as.Alloc(size, name)
}

// AllocLocal reserves size bytes homed at the given processor's cluster —
// the paper's explicit placement and local "stack" allocation.
func (m *Machine) AllocLocal(size uint64, name string, proc int) Addr {
	return m.as.AllocLocal(size, name, m.cfg.ClusterOf(proc))
}

// Place pins [base, base+size) to the cluster of the given processor.
func (m *Machine) Place(base Addr, size uint64, proc int) {
	m.as.Place(base, size, m.cfg.ClusterOf(proc))
}

// AddressSpace exposes the allocator for diagnostics.
func (m *Machine) AddressSpace() *memory.AddressSpace { return m.as }

// Sanitizer returns the attached runtime checker, or nil when
// Config.Sanitize is off. Tests install an OnViolation handler through
// it to collect violations instead of panicking.
func (m *Machine) Sanitizer() *sanitizer.Checker { return m.san }

// System exposes the memory system for inspection and invariant audits.
func (m *Machine) System() coherence.MemoryModel { return m.sys }

// BeginMeasurement starts the measured phase of a run, SPLASH-style:
// every processor's statistics and the protocol counters are zeroed and
// the reported execution time is counted from the calling processor's
// current virtual time. Call it from exactly one processor while all
// others are held at a barrier (see the apps package's Begin helper);
// cache and directory contents are deliberately left warm, as they would
// be on a real machine after initialization.
func (m *Machine) BeginMeasurement(p *Proc) {
	for _, q := range m.procs {
		q.stats = stats.Proc{}
	}
	m.sys.ResetStats()
	if m.regionStats != nil {
		m.regionStats = make(map[string]*stats.Counters)
	}
	m.origin = p.Now()
	if m.tel != nil {
		m.tel.NoteStatsReset(m.origin)
	}
	if m.prof != nil {
		// Zero the profile counters but keep presence and last-writer
		// state: caches stay warm, so lines fetched during init must not
		// look cold in the measured phase.
		m.prof.Reset()
	}
	if m.crit != nil {
		// Phases and sync aggregates recorded during initialization are
		// discarded so the analysis covers exactly the measured interval.
		m.crit.NoteReset(m.origin)
	}
}

// maybeSample feeds the telemetry interval sampler once the virtual
// clock crosses the next SampleEvery boundary. Called from the
// reference hot path, so the common case is two compares.
func (m *Machine) maybeSample(now Clock) {
	if m.nextSample == 0 || now < m.nextSample {
		return
	}
	m.snapshotSample(now)
	step := telemetry.SampleInterval(m.cfg.SampleEvery)
	for m.nextSample <= now {
		m.nextSample += step
	}
}

// snapshotSample hands the cumulative per-cluster counters to the
// collector, which stores the interval delta.
func (m *Machine) snapshotSample(now Clock) {
	cum := make([]telemetry.ClusterSample, m.cfg.NumClusters())
	for _, p := range m.procs {
		cum[p.cluster].Refs = cum[p.cluster].Refs.Plus(p.stats.Counters)
	}
	for c := range cum {
		cum[c].Coh = m.sys.ClusterStats(c)
	}
	m.tel.Sample(now, cum)
}

// Run executes kernel once on every processor and returns the result.
// A Machine runs once; build a fresh Machine per experiment point.
func (m *Machine) Run(kernel func(*Proc)) (*Result, error) {
	if m.ran {
		return nil, fmt.Errorf("core: Machine.Run called twice; build a new Machine per run")
	}
	m.ran = true
	m.mon.Start() // nil-safe; opens the run's wall clock in the sched phase
	err := m.sched.Run(func(pe *engine.PE) {
		kernel(m.procs[pe.ID()])
	})
	if err != nil {
		return nil, err
	}
	var last Clock // final virtual time: the slowest processor's clock
	for _, p := range m.procs {
		if t := p.pe.Now(); t > last {
			last = t
		}
	}
	m.mon.Stop(last)
	if m.tel != nil {
		for _, p := range m.procs {
			m.tel.ClosePE(p.ID())
		}
		if m.cfg.SampleEvery > 0 {
			m.snapshotSample(last) // close the final partial interval
		}
	}
	if m.san != nil {
		m.san.Final(last) // end-of-run full audit
	}
	res := &Result{
		Config:      m.cfg,
		Procs:       make([]stats.Proc, m.cfg.Procs),
		Finish:      make([]Clock, m.cfg.Procs),
		Clusters:    make([]coherence.Stats, m.cfg.NumClusters()),
		Footprint:   m.as.FootprintBytes(),
		Allocations: m.as.Regions(),
	}
	for i, p := range m.procs {
		res.Procs[i] = p.stats
		res.Finish[i] = p.pe.Now() - m.origin
		if t := res.Finish[i]; t > res.ExecTime {
			res.ExecTime = t
		}
	}
	for c := 0; c < m.cfg.NumClusters(); c++ {
		res.Clusters[c] = m.sys.ClusterStats(c)
	}
	if m.regionStats != nil {
		res.Regions = make(map[string]stats.Counters, len(m.regionStats))
		for name, c := range m.regionStats {
			res.Regions[name] = *c
		}
	}
	if m.crit != nil {
		final := make([]stats.Breakdown, m.cfg.Procs)
		for i, p := range m.procs {
			final[i] = p.stats.Breakdown
		}
		m.crit.Finish(res.ExecTime, res.Finish, final)
	}
	return res, nil
}
