package core

import (
	"encoding/json"
	"strings"
	"testing"

	"clustersim/internal/fault"
	"clustersim/internal/telemetry"
)

// baselineDefaultHash is the config hash of DefaultConfig() computed
// before the fault layer existed. Pinning it proves the acceptance
// criterion that fault injection is strictly opt-in: a nil Faults plan
// (and any Label) must leave config hashes — and therefore every
// journal key and manifest — byte-identical to pre-fault builds.
const baselineDefaultHash = "sha256:e0dd439026d4cf9fcbe5d46a66c52dd57d54397964f45905b9bff3fd3c27b4dc"

func TestConfigHashUnchangedWithoutFaults(t *testing.T) {
	cfg := DefaultConfig()
	h, err := telemetry.HashConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h != baselineDefaultHash {
		t.Fatalf("DefaultConfig hash drifted:\n got  %s\n want %s\n"+
			"(a nil fault plan must marshal identically to pre-fault builds)", h, baselineDefaultHash)
	}
	cfg.Label = "ocean" // excluded from the hash
	if h2, _ := telemetry.HashConfig(cfg); h2 != h {
		t.Errorf("Label changed the config hash: %s vs %s", h2, h)
	}
	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, forbidden := range []string{"Faults", "Label"} {
		if strings.Contains(string(b), forbidden) {
			t.Errorf("zero-value config JSON leaks %q: %s", forbidden, b)
		}
	}
}

func TestFaultPlanChangesHash(t *testing.T) {
	cfg := DefaultConfig()
	base, _ := telemetry.HashConfig(cfg)
	cfg.Faults = &fault.Config{Seed: 1, NackPerMille: 10}
	h, err := telemetry.HashConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h == base {
		t.Error("an attached fault plan must change the config hash (journal keys would collide)")
	}
	cfg.Faults = &fault.Config{Seed: 2, NackPerMille: 10}
	if h2, _ := telemetry.HashConfig(cfg); h2 == h {
		t.Error("fault seed must be part of the config hash")
	}
}

func TestValidateRejectsBadFaultPlan(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = &fault.Config{NackPerMille: 5000}
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted an out-of-range fault plan")
	}
	if _, err := NewMachine(cfg); err == nil {
		t.Error("NewMachine accepted an out-of-range fault plan")
	}
}

// TestInactivePlanAttachesNoInjector: a non-nil plan whose
// probabilities are all zero behaves exactly like no plan — same
// result, only the hash differs (the plan is serialised).
func TestInactivePlanAttachesNoInjector(t *testing.T) {
	run := func(f *fault.Config) Clock {
		cfg := DefaultConfig()
		cfg.Procs = 4
		cfg.ClusterSize = 2
		cfg.Faults = f
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		data := m.Alloc(4096, "data")
		res, err := m.Run(func(p *Proc) {
			for i := 0; i < 64; i++ {
				p.Read(data + uint64(i)*64)
				p.Write(data + uint64(i)*64)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.ExecTime
	}
	plain := run(nil)
	inactive := run(&fault.Config{Seed: 123}) // all probabilities zero
	if plain != inactive {
		t.Errorf("inactive plan perturbed the run: %d vs %d cycles", inactive, plain)
	}
}
