package core

import (
	"clustersim/internal/coherence"
	"clustersim/internal/engine"
	"clustersim/internal/stats"
	"clustersim/internal/telemetry"
)

// Proc is one simulated processor, passed to the application kernel. All
// methods must be called from the kernel goroutine.
type Proc struct {
	pe      *engine.PE
	m       *Machine
	cluster int
	stats   stats.Proc
}

// ID returns the processor number in [0, NumProcs).
func (p *Proc) ID() int { return p.pe.ID() }

// NumProcs returns the machine's processor count.
func (p *Proc) NumProcs() int { return p.m.cfg.Procs }

// Cluster returns the processor's cluster number.
func (p *Proc) Cluster() int { return p.cluster }

// Now returns the processor's virtual clock.
func (p *Proc) Now() Clock { return p.pe.Now() }

// Machine returns the owning machine.
func (p *Proc) Machine() *Machine { return p.m }

// Compute models cycles of processor-local work (register arithmetic,
// private-stack traffic) between shared-memory references.
func (p *Proc) Compute(cycles Clock) {
	start := p.pe.Now()
	p.pe.Advance(cycles)
	p.stats.CPU += cycles
	p.m.traceEvent(p.ID(), EvCompute, uint64(cycles))
	if p.m.tel != nil {
		p.m.tel.Slice(p.ID(), telemetry.SliceCompute, start, cycles)
	}
}

// Read issues a load of the word at addr. The issue costs one cycle of
// CPU time; a miss stalls the processor for the Table 1 latency, and a
// read that merges into an outstanding fill stalls until the data
// arrives, accounted separately as in the paper.
func (p *Proc) Read(addr Addr) {
	p.pe.Yield()
	p.m.traceEvent(p.ID(), EvRead, addr)
	issue := p.pe.Now()
	if p.m.mon != nil {
		p.m.mon.EnterCoherence()
	}
	acc := p.m.sys.Read(p.ID(), p.cluster, addr, issue)
	if p.m.mon != nil {
		p.m.mon.EnterApp()
	}
	if p.m.san != nil {
		p.m.san.OnAccess(p.ID(), p.cluster, false, addr, issue, acc)
	}
	p.stats.CountRead(acc)
	if rc := p.m.regionCounters(addr); rc != nil {
		rc.CountRead(acc)
	}
	if p.m.prof != nil {
		p.m.prof.OnAccess(p.ID(), p.cluster, false, addr, acc, acc.Stall, issue)
	}
	p.pe.Advance(1)
	p.stats.CPU++
	if acc.Stall > 0 {
		p.pe.Advance(acc.Stall)
		if acc.Class == coherence.MergeMiss {
			p.stats.MergeStall += acc.Stall
		} else {
			p.stats.LoadStall += acc.Stall
		}
	}
	if p.m.tel != nil {
		p.telemeter(issue, acc, acc.Class == coherence.MergeMiss)
	}
}

// telemeter reports one reference's issue cycle, stall span and
// coherence outcome to the attached collector, then gives the interval
// sampler a chance to fire.
func (p *Proc) telemeter(issue Clock, acc coherence.Access, merge bool) {
	tel := p.m.tel
	tel.Slice(p.ID(), telemetry.SliceCompute, issue, 1)
	if acc.Stall > 0 {
		kind := telemetry.SliceLoadStall
		if merge {
			kind = telemetry.SliceMergeStall
		}
		tel.Slice(p.ID(), kind, issue+1, acc.Stall)
	}
	if acc.Class != coherence.Hit {
		tel.Coherence(p.cluster, acc.Class, acc.Hops, issue)
	}
	p.m.maybeSample(p.pe.Now())
}

// Write issues a store to addr. Stores never stall: the paper assumes
// write and upgrade latency is completely hidden by store buffers and a
// relaxed consistency model.
func (p *Proc) Write(addr Addr) {
	p.pe.Yield()
	p.m.traceEvent(p.ID(), EvWrite, addr)
	issue := p.pe.Now()
	if p.m.mon != nil {
		p.m.mon.EnterCoherence()
	}
	acc := p.m.sys.Write(p.ID(), p.cluster, addr, issue)
	if p.m.mon != nil {
		p.m.mon.EnterApp()
	}
	if p.m.san != nil {
		p.m.san.OnAccess(p.ID(), p.cluster, true, addr, issue, acc)
	}
	p.stats.CountWrite(acc)
	if rc := p.m.regionCounters(addr); rc != nil {
		rc.CountWrite(acc)
	}
	if p.m.prof != nil {
		// Stores only stall the processor under BlockingWrites; the
		// profiler charges what the PE actually waited.
		stall := Clock(0)
		if p.m.cfg.BlockingWrites {
			stall = acc.Stall
		}
		p.m.prof.OnAccess(p.ID(), p.cluster, true, addr, acc, stall, issue)
	}
	p.pe.Advance(1)
	p.stats.CPU++
	if p.m.cfg.BlockingWrites && acc.Stall > 0 {
		p.pe.Advance(acc.Stall)
		p.stats.LoadStall += acc.Stall
	}
	if p.m.tel != nil {
		reported := acc
		if !p.m.cfg.BlockingWrites {
			reported.Stall = 0 // hidden by store buffers: the PE never stalled
		}
		p.telemeter(issue, reported, false)
	}
}

// ReadRange issues sequential loads covering [addr, addr+bytes), one per
// cache line — convenient for block copies and scans.
func (p *Proc) ReadRange(addr Addr, bytes uint64) {
	line := p.m.cfg.LineBytes
	for a := addr; a < addr+bytes; a += line {
		p.Read(a)
	}
}

// WriteRange issues sequential stores covering [addr, addr+bytes), one
// per cache line.
func (p *Proc) WriteRange(addr Addr, bytes uint64) {
	line := p.m.cfg.LineBytes
	for a := addr; a < addr+bytes; a += line {
		p.Write(a)
	}
}

// Stats returns a copy of the processor's accumulated statistics.
func (p *Proc) Stats() stats.Proc { return p.stats }
