package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"clustersim/internal/telemetry"
)

// telemetryMachine runs a small clustered workload with a collector
// attached: mixed compute, shared reads (misses + merges), a lock and
// barriers.
func telemetryMachine(t *testing.T, sampleEvery Clock) (*telemetry.Collector, *Result, []Clock) {
	t.Helper()
	col := telemetry.New()
	cfg := DefaultConfig()
	cfg.Procs = 4
	cfg.ClusterSize = 2
	cfg.CacheKBPerProc = 4
	cfg.Telemetry = col
	cfg.SampleEvery = sampleEvery
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := m.Alloc(16*1024, "data")
	bar := m.NewBarrier()
	lock := m.NewLock("tally")
	res, err := m.Run(func(p *Proc) {
		p.Compute(Clock(50 * (p.ID() + 1)))
		bar.Wait(p)
		for a := data; a < data+16*1024; a += 64 {
			p.Read(a)
		}
		lock.Acquire(p)
		p.Compute(25)
		lock.Release(p)
		bar.Wait(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	finals := make([]Clock, cfg.Procs)
	for i := range finals {
		finals[i] = res.Finish[i] // origin is 0: no BeginMeasurement
	}
	return col, res, finals
}

// TestTelemetrySlicesTileTimeline: each PE's slices partition its
// entire virtual timeline — the acceptance invariant for the Chrome
// trace exporter.
func TestTelemetrySlicesTileTimeline(t *testing.T) {
	col, _, finals := telemetryMachine(t, 0)
	for pe := 0; pe < col.NumPEs(); pe++ {
		totals := col.SliceTotals(pe)
		sum := totals[0] + totals[1] + totals[2] + totals[3]
		if sum != finals[pe] {
			t.Errorf("PE %d slice cycles %d != final clock %d (totals %v)",
				pe, sum, finals[pe], totals)
		}
		// Slices must also be contiguous and start at zero.
		var cursor Clock
		for _, s := range col.Slices(pe) {
			if s.Start != cursor {
				t.Errorf("PE %d gap: slice starts at %d, cursor %d", pe, s.Start, cursor)
			}
			cursor = s.Start + s.Dur
		}
	}
}

// TestTelemetryAgreesWithStats: slice totals per kind must equal the
// per-processor Breakdown the simulator reports.
func TestTelemetryAgreesWithStats(t *testing.T) {
	col, res, _ := telemetryMachine(t, 0)
	for pe, p := range res.Procs {
		totals := col.SliceTotals(pe)
		if totals[telemetry.SliceCompute] != p.CPU ||
			totals[telemetry.SliceLoadStall] != p.LoadStall ||
			totals[telemetry.SliceMergeStall] != p.MergeStall ||
			totals[telemetry.SliceSyncWait] != p.SyncWait {
			t.Errorf("PE %d telemetry %v != breakdown %+v", pe, totals, p.Breakdown)
		}
	}
}

// TestTelemetrySyncAndSched: sync objects are defined, wait episodes
// recorded, and the scheduler reports handoffs.
func TestTelemetrySyncAndSched(t *testing.T) {
	col, _, _ := telemetryMachine(t, 0)
	if n := len(col.Syncs()); n != 2 {
		t.Errorf("defined syncs = %d, want 2 (barrier + lock)", n)
	}
	if len(col.Episodes()) == 0 {
		t.Error("no sync episodes recorded")
	}
	if col.Sched().Handoffs == 0 {
		t.Error("no scheduler handoffs recorded")
	}
	if col.CoherenceEvents() == 0 {
		t.Error("no coherence events recorded")
	}
}

// TestTelemetrySampling: the interval sampler fires on the cycle grid
// and the machine-wide deltas sum to the final counters.
func TestTelemetrySampling(t *testing.T) {
	col, res, _ := telemetryMachine(t, 500)
	samples := col.Samples()
	if len(samples) < 2 {
		t.Fatalf("samples = %d, want several", len(samples))
	}
	var reads uint64
	for _, s := range samples {
		reads += s.Total().Refs.Reads
	}
	if want := res.Aggregate().Reads; reads != want {
		t.Errorf("sampled read deltas sum to %d, want %d", reads, want)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].At <= samples[i-1].At {
			t.Errorf("sample times not increasing: %d then %d", samples[i-1].At, samples[i].At)
		}
	}
}

// TestTelemetryMeasurementReset: BeginMeasurement rebaselines the
// sampler (no uint64 underflow) and drops a global mark.
func TestTelemetryMeasurementReset(t *testing.T) {
	col := telemetry.New()
	cfg := DefaultConfig()
	cfg.Procs = 2
	cfg.ClusterSize = 1
	cfg.Telemetry = col
	cfg.SampleEvery = 100
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := m.Alloc(4096, "d")
	bar := m.NewBarrier()
	_, err = m.Run(func(p *Proc) {
		for a := data; a < data+2048; a += 64 {
			p.Read(a)
		}
		bar.Wait(p)
		if p.ID() == 0 {
			p.Machine().BeginMeasurement(p)
		}
		bar.Wait(p)
		for a := data; a < data+2048; a += 64 {
			p.Read(a)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Marks()) == 0 || col.Marks()[0].Name != "begin measurement" {
		t.Fatalf("marks = %+v", col.Marks())
	}
	for _, s := range col.Samples() {
		for _, c := range s.Clusters {
			if c.Refs.Reads > 1<<60 {
				t.Fatalf("underflowed sample delta: %d", c.Refs.Reads)
			}
		}
	}
}

// TestTelemetryChromeExportEndToEnd: a real run exports valid trace
// JSON whose PE tracks tile the timeline.
func TestTelemetryChromeExportEndToEnd(t *testing.T) {
	col, _, finals := telemetryMachine(t, 500)
	var b bytes.Buffer
	if err := telemetry.WriteChromeTrace(&b, col, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b.Bytes()) {
		t.Fatal("exported trace is not valid JSON")
	}
	sum, err := telemetry.SummarizeChromeTrace(&b)
	if err != nil {
		t.Fatal(err)
	}
	for pe, final := range finals {
		if got := sum.PETotals[pe]; got != final {
			t.Errorf("trace PE %d cycles = %d, want %d", pe, got, final)
		}
	}
	if sum.Counters == 0 {
		t.Error("no counter samples in trace")
	}
}

// TestValidateTelemetryFlags: SampleEvery without a collector is a
// configuration error, as is a negative interval.
func TestValidateTelemetryFlags(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SampleEvery = 100
	if err := cfg.Validate(); err == nil {
		t.Error("SampleEvery without Telemetry should fail validation")
	}
	cfg.Telemetry = telemetry.New()
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid telemetry config rejected: %v", err)
	}
	cfg.SampleEvery = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative SampleEvery should fail validation")
	}
}
