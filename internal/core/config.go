// Package core is the public face of the clustered-multiprocessor
// simulator: it assembles the discrete-event engine, the shared address
// space, the cluster caches, the directory and the coherence protocol
// into a Machine that runs application kernels and reports the paper's
// execution-time breakdowns.
//
// A typical use:
//
//	cfg := core.DefaultConfig()
//	cfg.ClusterSize = 4
//	m, _ := core.NewMachine(cfg)
//	data := m.Alloc(1<<20, "grid")
//	bar := m.NewBarrier()
//	res, _ := m.Run(func(p *core.Proc) {
//		p.Read(data + uint64(p.ID())*64)
//		bar.Wait(p)
//	})
//	fmt.Println(res.ExecTime, res.Aggregate().Breakdown)
package core

import (
	"fmt"

	"clustersim/internal/cache"
	"clustersim/internal/coherence"
	"clustersim/internal/critpath"
	"clustersim/internal/fault"
	"clustersim/internal/memory"
	"clustersim/internal/perf"
	"clustersim/internal/profile"
	"clustersim/internal/telemetry"
)

// Clock counts simulated cycles.
type Clock = int64

// Addr is a simulated virtual address.
type Addr = uint64

// Organization selects which of the paper's two cluster types (Section
// 2) the machine uses.
type Organization uint8

const (
	// SharedCache is the paper's main configuration: the processors of a
	// cluster share one cache backed by distributed memory.
	SharedCache Organization = iota
	// SharedMemory is the paper's second organisation: each processor
	// keeps a private cache and the cluster's processors share an
	// effectively infinite attraction memory over a snoopy bus (flat
	// COMA style).
	SharedMemory
)

// String names the cluster organisation.
func (o Organization) String() string {
	if o == SharedMemory {
		return "shared-memory"
	}
	return "shared-cache"
}

// Config describes one machine organisation. The paper's study fixes the
// total processor count (64) and the total cache budget, and varies the
// number of processors sharing each cluster cache.
type Config struct {
	// Procs is the total number of processors (the paper uses 64).
	Procs int

	// ClusterSize is the number of processors sharing one cluster cache
	// (the paper studies 1, 2, 4 and 8). Must divide Procs, with at most
	// 64 clusters.
	ClusterSize int

	// CacheKBPerProc sizes each cluster cache at ClusterSize × this many
	// kilobytes, keeping the machine's total cache budget fixed across
	// cluster sizes as in the paper (4, 16 or 32). 0 means infinite.
	CacheKBPerProc int

	// LineBytes is the coherence granularity (the paper uses 64).
	LineBytes uint64

	// PageBytes is the placement granularity for round-robin first-touch
	// homing (default 4096).
	PageBytes uint64

	// Latencies are the Table 1 miss latencies.
	Latencies coherence.Latencies

	// Policy selects the replacement policy of the cluster caches; the
	// paper uses LRU. FIFO exists for ablations.
	Policy cache.ReplacePolicy

	// Assoc is the cluster caches' associativity: 0 (the default) is the
	// paper's fully associative configuration; k > 0 builds k-way
	// set-associative caches, the limited-associativity study the paper
	// defers to future work. Requires a finite cache whose line count is
	// a power-of-two multiple of k.
	Assoc int

	// Quantum is the event-ordering slack of the engine, in cycles.
	// 0 (the default) gives exact ordering; larger values speed up big
	// parameter sweeps with bounded timing skew.
	Quantum Clock

	// Placement selects the page-placement policy (ablation knob); the
	// paper uses round-robin first touch.
	Placement memory.PlacementPolicy

	// DisableReplacementHints suppresses the directory's replacement
	// hints (ablation knob): stale sharer bits cause spurious
	// invalidations.
	DisableReplacementHints bool

	// Organization selects shared-cache clusters (the default, the
	// paper's main study) or shared-main-memory clusters (Section 2's
	// second type). Under SharedMemory, CacheKBPerProc sizes each
	// processor's private cache and the cluster's attraction memory is
	// infinite.
	Organization Organization

	// BusCycles is the intra-cluster snoopy-bus transfer latency of the
	// SharedMemory organisation (default 15).
	BusCycles Clock

	// ProfileRegions attributes every reference to the named allocation
	// containing it (see Result.Regions). Costs one lookup per
	// reference; off by default.
	ProfileRegions bool

	// Tracer, when non-nil, receives the run's event stream (see the
	// trace package). Attached at machine construction so allocations
	// and synchronisation objects are announced. Excluded from the JSON
	// manifest: it does not affect simulated behaviour.
	Tracer Tracer `json:"-"`

	// Telemetry, when non-nil, receives the run's observability stream:
	// per-processor execution-state slices, coherence events, sync
	// episodes and scheduler self-metrics (see the telemetry package).
	// Excluded from the JSON manifest and the config hash.
	Telemetry *telemetry.Collector `json:"-"`

	// Profile, when non-nil, receives every memory reference and
	// coherence protocol event for data-centric sharing analysis: misses
	// classified cold / replacement / true-sharing / false-sharing and
	// attributed to allocator regions, hot lines and page homes (see the
	// profile package). Purely observational, so it is excluded from the
	// JSON manifest and the config hash.
	Profile *profile.Collector `json:"-"`

	// Perf, when non-nil, attaches the host-side performance monitor:
	// wall-clock time attributed per phase (application compute, engine
	// scheduling, coherence protocol), simulated-cycles-per-second
	// throughput and Go runtime health (heap peak, GC pauses; see the
	// perf package). It observes only the host, never simulated state,
	// so it is excluded from the JSON manifest and the config hash and
	// a monitored run's Result is byte-identical to an unmonitored one.
	Perf *perf.Monitor `json:"-"`

	// Critpath, when non-nil, attaches the virtual-time critical-path
	// analyzer: the run is segmented into barrier-delimited phases with
	// per-processor breakdown deltas, barrier imbalance and lock
	// contention are attributed per synchronisation object, and the
	// chain of last arrivers across phases is reported as the run's
	// critical path (see the critpath package). Purely observational, so
	// it is excluded from the JSON manifest and the config hash and an
	// analyzed run's Result is byte-identical to an unanalyzed one.
	Critpath *critpath.Analyzer `json:"-"`

	// SampleEvery, when positive and Telemetry is attached, snapshots
	// per-cluster counter deltas every SampleEvery simulated cycles
	// into the collector's time series. Purely observational, so it is
	// excluded from the config hash.
	SampleEvery Clock `json:"-"`

	// Sanitize attaches the runtime sanitizer: after every coherence
	// transaction the directory's sharer vector is cross-validated
	// against the touched line's cache states, issue times are checked
	// for per-processor and global virtual-time monotonicity, and a full
	// machine audit runs periodically and at the end of the run. A
	// violation panics with a replayable transaction dump. Requires
	// Quantum 0 (the global monotonicity guarantee quanta trade away).
	// Purely observational, so it is excluded from the config hash.
	Sanitize bool `json:"-"`

	// BlockingWrites makes stores stall for their fetch latency —
	// disabling the paper's assumption that "the latency of WRITE and
	// UPGRADE misses could be completely hidden by store buffers and a
	// relaxed consistency model". Ablation knob.
	BlockingWrites bool

	// Faults, when non-nil, attaches the deterministic fault plan (see
	// the fault package): directory-busy NACKs with bounded virtual-time
	// retry, straggling invalidation acknowledgements and remote-hop
	// jitter. A nil plan is omitted from the JSON manifest and the
	// config hash, so runs without fault injection stay byte-identical
	// to builds that predate the fault layer.
	Faults *fault.Config `json:",omitempty"`

	// Label names the running application for crash diagnostics (engine
	// panics are annotated with it). Purely descriptive, so it is
	// excluded from the manifest and the config hash.
	Label string `json:"-"`
}

// HashExcludedFields names every Config field excluded from the JSON
// manifest and therefore from the config hash (telemetry.HashConfig).
// The simlint hashexclude rule keeps this set and the json:"-" struct
// tags above in lockstep at compile time; TestHashExclusionContract
// cross-checks it by reflection at run time. Faults is deliberately
// absent: its `json:",omitempty"` tag opts a non-nil fault plan INTO
// the hash while keeping plan-free runs byte-identical to old builds.
var HashExcludedFields = []string{
	"Tracer",
	"Telemetry",
	"Profile",
	"Perf",
	"Critpath",
	"SampleEvery",
	"Sanitize",
	"Label",
}

// DefaultConfig returns the paper's baseline machine: 64 processors,
// unclustered, infinite caches, 64-byte lines, Table 1 latencies.
func DefaultConfig() Config {
	return Config{
		Procs:          64,
		ClusterSize:    1,
		CacheKBPerProc: 0,
		LineBytes:      64,
		PageBytes:      4096,
		Latencies:      coherence.DefaultLatencies(),
		Policy:         cache.LRU,
	}
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if c.Procs <= 0 {
		return fmt.Errorf("core: Procs %d must be positive", c.Procs)
	}
	if c.ClusterSize <= 0 {
		return fmt.Errorf("core: ClusterSize %d must be positive", c.ClusterSize)
	}
	if c.Procs%c.ClusterSize != 0 {
		return fmt.Errorf("core: ClusterSize %d must divide Procs %d", c.ClusterSize, c.Procs)
	}
	if n := c.Procs / c.ClusterSize; n > 64 {
		return fmt.Errorf("core: %d clusters exceed the directory's 64-bit sharer vector", n)
	}
	if c.CacheKBPerProc < 0 {
		return fmt.Errorf("core: negative cache size")
	}
	if c.LineBytes == 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("core: LineBytes %d must be a power of two", c.LineBytes)
	}
	if c.PageBytes == 0 || c.PageBytes&(c.PageBytes-1) != 0 {
		return fmt.Errorf("core: PageBytes %d must be a power of two", c.PageBytes)
	}
	if c.CacheKBPerProc > 0 {
		clusterBytes := uint64(c.CacheKBPerProc) * 1024 * uint64(c.ClusterSize)
		if clusterBytes < c.LineBytes {
			return fmt.Errorf("core: cluster cache of %d bytes smaller than one line", clusterBytes)
		}
	}
	if c.Quantum < 0 {
		return fmt.Errorf("core: negative Quantum")
	}
	if c.SampleEvery < 0 {
		return fmt.Errorf("core: negative SampleEvery")
	}
	if c.SampleEvery > 0 && c.Telemetry == nil {
		return fmt.Errorf("core: SampleEvery set without a Telemetry collector")
	}
	if c.Sanitize && c.Quantum > 0 {
		return fmt.Errorf("core: Sanitize requires exact event ordering, but Quantum is %d; "+
			"quanta permit bounded timing skew that breaks the sanitizer's global monotonicity invariant", c.Quantum)
	}
	if c.BusCycles < 0 {
		return fmt.Errorf("core: negative BusCycles")
	}
	if c.Assoc < 0 {
		return fmt.Errorf("core: negative associativity")
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	if c.Assoc > 0 {
		lines := c.CacheLinesPerCluster()
		if c.Organization == SharedMemory {
			lines = c.CacheLinesPerProc()
		}
		if lines == 0 {
			return fmt.Errorf("core: set-associative caches need a finite cache size")
		}
		if lines%c.Assoc != 0 {
			return fmt.Errorf("core: %d lines not divisible into %d-way sets", lines, c.Assoc)
		}
		if sets := lines / c.Assoc; sets&(sets-1) != 0 {
			return fmt.Errorf("core: %d sets is not a power of two", lines/c.Assoc)
		}
	}
	return nil
}

// NumClusters returns the number of cluster caches.
func (c Config) NumClusters() int { return c.Procs / c.ClusterSize }

// CacheLinesPerCluster returns each cluster cache's capacity in lines
// (0 = infinite).
func (c Config) CacheLinesPerCluster() int {
	if c.CacheKBPerProc == 0 {
		return 0
	}
	return int(uint64(c.CacheKBPerProc) * 1024 * uint64(c.ClusterSize) / c.LineBytes)
}

// CacheLinesPerProc returns each processor's private-cache capacity in
// lines under the SharedMemory organisation (0 = infinite).
func (c Config) CacheLinesPerProc() int {
	if c.CacheKBPerProc == 0 {
		return 0
	}
	return int(uint64(c.CacheKBPerProc) * 1024 / c.LineBytes)
}

// ClusterOf returns the cluster of a processor. Processors with adjacent
// IDs share a cluster, matching the paper's partitioning assumption that
// "processors are assigned to adjacent subgrids in the same row".
func (c Config) ClusterOf(proc int) int { return proc / c.ClusterSize }
