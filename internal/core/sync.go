package core

import (
	"fmt"

	"clustersim/internal/critpath"
	"clustersim/internal/stats"
)

// waiter records a parked processor and its arrival time, for
// synchronisation wait accounting.
type waiter struct {
	p       *Proc
	arrival Clock
}

// Barrier synchronises a fixed set of processors. Every participant's
// wait between its arrival and the last arrival is charged to its
// synchronisation time, as in the paper's breakdowns.
type Barrier struct {
	name    string
	id      int
	m       *Machine
	need    int
	waiting []waiter
}

// NewBarrier creates a barrier over all processors of the machine.
func (m *Machine) NewBarrier() *Barrier { return m.NewBarrierN("barrier", m.cfg.Procs) }

// NewBarrierN creates a named barrier over n participants.
func (m *Machine) NewBarrierN(name string, n int) *Barrier {
	if n <= 0 || n > m.cfg.Procs {
		panic(fmt.Sprintf("core: barrier over %d of %d processors", n, m.cfg.Procs))
	}
	b := &Barrier{name: name, id: m.nextSyncID(), m: m, need: n}
	m.defineSync(EvBarrier, b.id, n, name)
	return b
}

// Wait blocks p until all participants have arrived. All participants
// resume at the virtual time of the last arrival.
func (b *Barrier) Wait(p *Proc) {
	p.pe.Yield()
	b.m.traceEvent(p.ID(), EvBarrier, uint64(b.id))
	arrival := p.pe.Now()
	if len(b.waiting) < b.need-1 {
		b.waiting = append(b.waiting, waiter{p, arrival})
		p.pe.Block(fmt.Sprintf("%s (%d/%d arrived)", b.name, len(b.waiting), b.need))
		return
	}
	// Last arrival: release everyone at the max arrival time.
	release := arrival
	for _, w := range b.waiting {
		if w.arrival > release {
			release = w.arrival
		}
	}
	var arrivals []critpath.Arrival
	if b.m.crit != nil {
		// Engine arrival order, releasing processor last — the analyzer
		// breaks virtual-time ties toward the end of this slice.
		arrivals = make([]critpath.Arrival, 0, b.need)
		for _, w := range b.waiting {
			arrivals = append(arrivals, critpath.Arrival{PE: w.p.ID(), At: w.arrival})
		}
		arrivals = append(arrivals, critpath.Arrival{PE: p.ID(), At: arrival})
	}
	for _, w := range b.waiting {
		w.p.stats.SyncWait += release - w.arrival
		b.m.telSyncWait(w.p.ID(), b.id, w.arrival, release)
		p.pe.Unblock(w.p.pe, release)
	}
	b.waiting = b.waiting[:0]
	p.stats.SyncWait += release - arrival
	b.m.telSyncWait(p.ID(), b.id, arrival, release)
	// After every participant's wait is charged: at a machine-wide
	// barrier each processor's cumulative breakdown now totals exactly
	// release - origin, the tiling property the analyzer's phases rest on.
	b.m.critBarrierRelease(b, arrivals, release)
	p.pe.SetTime(release)
}

// critBarrierRelease feeds one barrier release episode to the
// critical-path analyzer. Machine-wide barriers also snapshot every
// processor's cumulative breakdown — they delimit phases — and a closed
// phase is marked on the telemetry timeline.
func (m *Machine) critBarrierRelease(b *Barrier, arrivals []critpath.Arrival, release Clock) {
	if m.crit == nil {
		return
	}
	var breakdowns []stats.Breakdown
	if b.need == m.cfg.Procs {
		breakdowns = make([]stats.Breakdown, m.cfg.Procs)
		for i, p := range m.procs {
			breakdowns[i] = p.stats.Breakdown
		}
	}
	if name := m.crit.BarrierRelease(b.id, arrivals, release, breakdowns); name != "" && m.tel != nil {
		m.tel.MarkInstant("phase "+name, release)
	}
}

// Lock is a FIFO queueing mutex. Waiting time is charged to
// synchronisation time.
type Lock struct {
	name   string
	id     int
	m      *Machine
	holder *Proc
	queue  []waiter
}

// NewLock creates a named lock.
func (m *Machine) NewLock(name string) *Lock {
	l := &Lock{name: name, id: m.nextSyncID(), m: m}
	m.defineSync(EvAcquire, l.id, 0, name)
	return l
}

// Acquire takes the lock, blocking while another processor holds it.
func (l *Lock) Acquire(p *Proc) {
	p.pe.Yield()
	l.m.traceEvent(p.ID(), EvAcquire, uint64(l.id))
	if l.holder == nil {
		l.holder = p
		if l.m.crit != nil {
			l.m.crit.LockAcquired(l.id, p.ID(), p.pe.Now())
		}
		return
	}
	l.queue = append(l.queue, waiter{p, p.pe.Now()})
	if l.m.crit != nil {
		l.m.crit.LockBlocked(l.id, p.ID(), p.pe.Now(), len(l.queue))
	}
	p.pe.Block(fmt.Sprintf("lock %s (held by P%d)", l.name, l.holder.ID()))
}

// Release hands the lock to the longest-waiting processor, if any.
func (l *Lock) Release(p *Proc) {
	if l.holder != p {
		panic(fmt.Sprintf("core: P%d released lock %s held by %v", p.ID(), l.name, holderID(l.holder)))
	}
	p.pe.Yield()
	l.m.traceEvent(p.ID(), EvRelease, uint64(l.id))
	if len(l.queue) == 0 {
		if l.m.crit != nil {
			l.m.crit.LockReleased(l.id, p.ID(), p.pe.Now())
		}
		l.holder = nil
		return
	}
	w := l.queue[0]
	l.queue = l.queue[1:]
	now := p.pe.Now()
	release := now
	if w.arrival > release {
		release = w.arrival
	}
	w.p.stats.SyncWait += release - w.arrival
	l.m.telSyncWait(w.p.ID(), l.id, w.arrival, release)
	if l.m.crit != nil {
		l.m.crit.LockHandoff(l.id, p.ID(), w.p.ID(), w.arrival, now, release)
	}
	l.holder = w.p
	p.pe.Unblock(w.p.pe, release)
}

func holderID(p *Proc) interface{} {
	if p == nil {
		return "nobody"
	}
	return p.ID()
}

// Flag is a one-shot condition: waiters block until some processor sets
// it; waits after Set return immediately.
type Flag struct {
	name    string
	id      int
	m       *Machine
	set     bool
	waiting []waiter
}

// NewFlag creates a named, initially clear flag.
func (m *Machine) NewFlag(name string) *Flag {
	f := &Flag{name: name, id: m.nextSyncID(), m: m}
	m.defineSync(EvFlagSet, f.id, 0, name)
	return f
}

// Set raises the flag, releasing all current waiters at the setter's time.
func (f *Flag) Set(p *Proc) {
	p.pe.Yield()
	f.m.traceEvent(p.ID(), EvFlagSet, uint64(f.id))
	f.set = true
	now := p.pe.Now()
	for _, w := range f.waiting {
		release := now
		if w.arrival > release {
			release = w.arrival
		}
		w.p.stats.SyncWait += release - w.arrival
		f.m.telSyncWait(w.p.ID(), f.id, w.arrival, release)
		p.pe.Unblock(w.p.pe, release)
	}
	f.waiting = nil
}

// Wait blocks p until the flag is set.
func (f *Flag) Wait(p *Proc) {
	p.pe.Yield()
	f.m.traceEvent(p.ID(), EvFlagWait, uint64(f.id))
	if f.set {
		return
	}
	f.waiting = append(f.waiting, waiter{p, p.pe.Now()})
	p.pe.Block(fmt.Sprintf("flag %s", f.name))
}
