package core

import (
	"strings"
	"testing"

	"clustersim/internal/coherence"
)

// tiny returns a small machine config for protocol-level tests.
func tiny(procs, clusterSize int) Config {
	cfg := DefaultConfig()
	cfg.Procs = procs
	cfg.ClusterSize = clusterSize
	return cfg
}

func mustMachine(t *testing.T, cfg Config) *Machine {
	t.Helper()
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{}, // zeros everywhere
		func() Config { c := DefaultConfig(); c.Procs = 0; return c }(),
		func() Config { c := DefaultConfig(); c.ClusterSize = 3; return c }(),                // doesn't divide 64
		func() Config { c := DefaultConfig(); c.Procs = 128; c.ClusterSize = 1; return c }(), // 128 clusters
		func() Config { c := DefaultConfig(); c.LineBytes = 48; return c }(),
		func() Config { c := DefaultConfig(); c.Quantum = -1; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: config %+v should not validate", i, c)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestCacheLinesPerCluster(t *testing.T) {
	cfg := tiny(8, 4)
	cfg.CacheKBPerProc = 4
	// 4 procs/cluster × 4 KB / 64 B = 256 lines.
	if got := cfg.CacheLinesPerCluster(); got != 256 {
		t.Fatalf("lines = %d, want 256", got)
	}
	cfg.CacheKBPerProc = 0
	if got := cfg.CacheLinesPerCluster(); got != 0 {
		t.Fatalf("infinite cache lines = %d, want 0", got)
	}
}

func TestClusterOfAdjacency(t *testing.T) {
	cfg := tiny(8, 4)
	want := []int{0, 0, 0, 0, 1, 1, 1, 1}
	for p, w := range want {
		if got := cfg.ClusterOf(p); got != w {
			t.Errorf("ClusterOf(%d) = %d, want %d", p, got, w)
		}
	}
}

func TestRunOnceOnly(t *testing.T) {
	m := mustMachine(t, tiny(2, 1))
	if _, err := m.Run(func(p *Proc) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(func(p *Proc) {}); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestComputeAccountsCPU(t *testing.T) {
	m := mustMachine(t, tiny(1, 1))
	res, err := m.Run(func(p *Proc) { p.Compute(1000) })
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime != 1000 || res.Procs[0].CPU != 1000 {
		t.Fatalf("exec=%d cpu=%d, want 1000/1000", res.ExecTime, res.Procs[0].CPU)
	}
}

func TestReadMissStallAccounting(t *testing.T) {
	m := mustMachine(t, tiny(1, 1))
	a := m.Alloc(64, "x")
	res, err := m.Run(func(p *Proc) {
		p.Read(a) // cold: local clean, 30-cycle stall + 1 issue
		p.Read(a) // hit: 1 issue
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Procs[0]
	if st.LoadStall != 30 {
		t.Errorf("load stall = %d, want 30", st.LoadStall)
	}
	if st.CPU != 2 {
		t.Errorf("cpu = %d, want 2 issue cycles", st.CPU)
	}
	if res.ExecTime != 32 {
		t.Errorf("exec = %d, want 32", res.ExecTime)
	}
	if st.ReadMisses != 1 || st.ReadHits != 1 {
		t.Errorf("counters = %+v", st.Counters)
	}
}

func TestWritesDoNotStall(t *testing.T) {
	m := mustMachine(t, tiny(1, 1))
	a := m.Alloc(64, "x")
	res, err := m.Run(func(p *Proc) {
		p.Write(a)
		p.Write(a + 8)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime != 2 {
		t.Fatalf("exec = %d, want 2 (write latency must be hidden)", res.ExecTime)
	}
	st := res.Procs[0]
	if st.WriteMisses != 1 || st.WriteMerges != 1 {
		t.Fatalf("counters = %+v", st.Counters)
	}
}

// TestClusterPrefetching is the paper's central mechanism: two processors
// in the same cluster reading the same data — the second reference either
// merges (temporal proximity) or hits (prefetched), never pays a full miss.
func TestClusterPrefetching(t *testing.T) {
	run := func(clusterSize int) *Result {
		m := mustMachine(t, tiny(2, clusterSize))
		a := m.Alloc(64, "shared")
		// Home the page away from both procs' traffic pattern by
		// touching from proc 1's side first via explicit placement.
		bar := m.NewBarrier()
		res, err := m.Run(func(p *Proc) {
			if p.ID() == 0 {
				p.Read(a)
			}
			bar.Wait(p)
			if p.ID() == 1 {
				p.Read(a)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	same := run(2)     // both procs in one cluster
	separate := run(1) // two clusters
	if got := same.Procs[1].ReadHits; got != 1 {
		t.Errorf("clustered second reader: hits = %d, want 1 (prefetched)", got)
	}
	if got := separate.Procs[1].ReadMisses; got != 1 {
		t.Errorf("unclustered second reader: misses = %d, want 1", got)
	}
	if same.ExecTime >= separate.ExecTime {
		t.Errorf("clustering did not help: %d >= %d", same.ExecTime, separate.ExecTime)
	}
}

// TestMergeStall reproduces the paper's LU observation: processors in a
// cluster accessing the same remote data at the same time convert load
// stall into merge stall.
func TestMergeStall(t *testing.T) {
	m := mustMachine(t, tiny(2, 2))
	a := m.Alloc(64, "shared")
	res, err := m.Run(func(p *Proc) {
		p.Compute(Clock(p.ID())) // stagger by 1 cycle
		p.Read(a)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs[0].ReadMisses != 1 {
		t.Fatalf("first reader should miss: %+v", res.Procs[0].Counters)
	}
	if res.Procs[1].Merges != 1 {
		t.Fatalf("second reader should merge: %+v", res.Procs[1].Counters)
	}
	if res.Procs[1].MergeStall == 0 || res.Procs[1].MergeStall >= 30 {
		t.Fatalf("merge stall = %d, want in (0,30)", res.Procs[1].MergeStall)
	}
}

func TestBarrierSyncAccounting(t *testing.T) {
	m := mustMachine(t, tiny(2, 1))
	bar := m.NewBarrier()
	res, err := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Compute(100)
		} else {
			p.Compute(500)
		}
		bar.Wait(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs[0].SyncWait != 400 {
		t.Errorf("P0 sync wait = %d, want 400", res.Procs[0].SyncWait)
	}
	if res.Procs[1].SyncWait != 0 {
		t.Errorf("P1 sync wait = %d, want 0", res.Procs[1].SyncWait)
	}
	if res.ExecTime != 500 {
		t.Errorf("exec = %d, want 500", res.ExecTime)
	}
}

func TestBarrierReusable(t *testing.T) {
	m := mustMachine(t, tiny(4, 2))
	bar := m.NewBarrier()
	counter := 0
	res, err := m.Run(func(p *Proc) {
		for round := 0; round < 5; round++ {
			p.Compute(Clock(1 + p.ID()))
			bar.Wait(p)
			if p.ID() == 0 {
				counter++
			}
			bar.Wait(p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if counter != 5 {
		t.Fatalf("counter = %d, want 5", counter)
	}
	_ = res
}

func TestLockMutualExclusionAndFIFO(t *testing.T) {
	m := mustMachine(t, tiny(4, 1))
	lk := m.NewLock("l")
	var order []int
	res, err := m.Run(func(p *Proc) {
		p.Compute(Clock(10 * p.ID())) // arrival order 0,1,2,3
		lk.Acquire(p)
		order = append(order, p.ID())
		p.Compute(100) // long critical section forces queueing
		lk.Release(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	for i := 1; i < 4; i++ {
		if order[i] != i {
			t.Fatalf("lock grant order %v not FIFO", order)
		}
	}
	// Later acquirers waited longer.
	if res.Procs[3].SyncWait <= res.Procs[1].SyncWait {
		t.Errorf("sync waits not increasing: %d vs %d",
			res.Procs[3].SyncWait, res.Procs[1].SyncWait)
	}
}

func TestLockReleaseByNonHolderPanics(t *testing.T) {
	m := mustMachine(t, tiny(2, 1))
	lk := m.NewLock("l")
	_, err := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			lk.Release(p)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "released lock") {
		t.Fatalf("want release-by-non-holder error, got %v", err)
	}
}

func TestFlag(t *testing.T) {
	m := mustMachine(t, tiny(3, 1))
	f := m.NewFlag("ready")
	res, err := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Compute(300)
			f.Set(p)
			return
		}
		f.Wait(p)
		if p.Now() < 300 {
			t.Errorf("P%d resumed at %d before flag set", p.ID(), p.Now())
		}
		f.Wait(p) // second wait returns immediately
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs[1].SyncWait != 300 {
		t.Errorf("P1 sync wait = %d, want 300", res.Procs[1].SyncWait)
	}
}

func TestDeadlockSurfacesAsError(t *testing.T) {
	m := mustMachine(t, tiny(2, 1))
	bar := m.NewBarrier()
	lk := m.NewLock("held")
	_, err := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			lk.Acquire(p)
			bar.Wait(p)
		} else {
			lk.Acquire(p) // blocks forever: P0 is at the barrier
		}
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock, got %v", err)
	}
}

func TestUnallocatedAccessSurfacesAsError(t *testing.T) {
	m := mustMachine(t, tiny(1, 1))
	_, err := m.Run(func(p *Proc) { p.Read(0xfff000000) })
	if err == nil || !strings.Contains(err.Error(), "unallocated") {
		t.Fatalf("want unallocated-access error, got %v", err)
	}
}

func TestDeterministicExecTime(t *testing.T) {
	run := func() Clock {
		m := mustMachine(t, tiny(8, 2))
		a := m.Alloc(4096, "data")
		bar := m.NewBarrier()
		lk := m.NewLock("l")
		res, err := m.Run(func(p *Proc) {
			for i := 0; i < 50; i++ {
				p.Read(a + uint64((p.ID()*13+i*7)%512)*8)
				p.Compute(3)
				if i%10 == 0 {
					lk.Acquire(p)
					p.Write(a + 8*uint64(i%8))
					lk.Release(p)
				}
			}
			bar.Wait(p)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.ExecTime
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

func TestInvariantsAfterRun(t *testing.T) {
	m := mustMachine(t, tiny(8, 4))
	a := m.Alloc(1<<16, "data")
	bar := m.NewBarrier()
	res, err := m.Run(func(p *Proc) {
		for i := 0; i < 200; i++ {
			off := uint64((p.ID()*31+i*17)%4096) * 8
			if i%3 == 0 {
				p.Write(a + off)
			} else {
				p.Read(a + off)
			}
		}
		bar.Wait(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.System().CheckInvariants(res.ExecTime + 1000); err != nil {
		t.Fatalf("post-run invariants: %v", err)
	}
}

func TestNormalizeBar(t *testing.T) {
	base := &Result{ExecTime: 1000}
	base.Procs = nil
	r := &Result{ExecTime: 500}
	bar := r.Normalize(base)
	if bar.Total != 50 {
		t.Fatalf("total = %v, want 50", bar.Total)
	}
}

func TestResultSummaryWrites(t *testing.T) {
	m := mustMachine(t, tiny(2, 2))
	a := m.Alloc(4096, "d")
	res, err := m.Run(func(p *Proc) {
		p.Read(a + uint64(p.ID())*64)
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	res.WriteSummary(&b)
	out := b.String()
	for _, want := range []string{"exec time", "breakdown", "references", "invalidations"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestAllocLocalHomesAtProcCluster(t *testing.T) {
	cfg := tiny(8, 2)
	m := mustMachine(t, cfg)
	a := m.AllocLocal(4096, "p5-stack", 5)
	if home := m.AddressSpace().HomeOf(a); home != cfg.ClusterOf(5) {
		t.Fatalf("home = %d, want %d", home, cfg.ClusterOf(5))
	}
}

// TestLatencyClassesEndToEnd drives the four Table 1 rows through Proc.
func TestLatencyClassesEndToEnd(t *testing.T) {
	cfg := tiny(4, 1)
	cfg.Latencies = coherence.DefaultLatencies()
	m := mustMachine(t, cfg)
	a := m.Alloc(64, "x")
	m.Place(a, 64, 0) // home at cluster 0
	bar := m.NewBarrier()
	res, err := m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Read(a) // local clean: 30
		}
		bar.Wait(p)
		switch p.ID() {
		case 1:
			p.Read(a) // remote clean: 100
		}
		bar.Wait(p)
		switch p.ID() {
		case 2:
			p.Write(a) // exclusive at 2
		}
		bar.Wait(p)
		switch p.ID() {
		case 0:
			p.Read(a) // local home, dirty remote: 100
		case 3:
			// wait one more barrier, then 3-hop
		}
		bar.Wait(p)
		switch p.ID() {
		case 3:
			p.Read(a) // remote home... dir now SHARED after P0's fetch: 100 clean
		}
		bar.Wait(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs[0].LoadStall != 30+100 {
		t.Errorf("P0 load stall = %d, want 130", res.Procs[0].LoadStall)
	}
	if res.Procs[1].LoadStall != 100 {
		t.Errorf("P1 load stall = %d, want 100", res.Procs[1].LoadStall)
	}
	if res.Procs[3].LoadStall != 100 {
		t.Errorf("P3 load stall = %d, want 100", res.Procs[3].LoadStall)
	}
}

// TestAccountingIdentity: every cycle of a processor's elapsed time must
// be attributed to exactly one breakdown component — CPU, load stall,
// merge stall or sync wait — so the per-processor breakdown total equals
// its finish time (modulo the few cycles of skew around the measurement
// barrier in apps that use BeginMeasurement; none here).
func TestAccountingIdentity(t *testing.T) {
	m := mustMachine(t, tiny(8, 2))
	a := m.Alloc(1<<14, "d")
	bar := m.NewBarrier()
	lk := m.NewLock("l")
	res, err := m.Run(func(p *Proc) {
		for i := 0; i < 120; i++ {
			off := uint64((p.ID()*53+i*29)%256) * 64
			if i%7 == 0 {
				p.Write(a + off)
			} else {
				p.Read(a + off)
			}
			p.Compute(Clock(i % 5))
			if i%25 == 0 {
				lk.Acquire(p)
				p.Compute(40)
				lk.Release(p)
			}
			if i%40 == 0 {
				bar.Wait(p)
			}
		}
		bar.Wait(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range res.Procs {
		if st.Total() != res.Finish[i] {
			t.Errorf("P%d: breakdown total %d != finish %d", i, st.Total(), res.Finish[i])
		}
	}
	if res.Finish[0] > res.ExecTime {
		t.Error("finish exceeds exec time")
	}
}

// TestGoldenCycleCounts pins the exact simulated timings of a small,
// fully deterministic scenario. These numbers are a regression tripwire:
// if a change to the engine, cache, directory or protocol moves them,
// the change altered simulation semantics and must be intentional.
func TestGoldenCycleCounts(t *testing.T) {
	m := mustMachine(t, tiny(4, 2))
	a := m.Alloc(4096, "data")
	bar := m.NewBarrier()
	res, err := m.Run(func(p *Proc) {
		// Every processor scans the same 8 lines, then writes its own.
		for i := 0; i < 8; i++ {
			p.Read(a + uint64(i)*64)
		}
		bar.Wait(p)
		p.Write(a + uint64(p.ID())*64)
		p.Compute(10)
		bar.Wait(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	agg := res.Aggregate()
	// One miss per line per cluster (16), with the second processor of
	// each cluster merging behind the first on every line (16 merges,
	// lockstep), then one upgrade per written line. The pinned values
	// encode that whole interaction; recompute them only for an
	// intentional semantic change.
	if res.ExecTime != 819 {
		t.Errorf("ExecTime = %d, want 819 (semantics changed?)", res.ExecTime)
	}
	if agg.ReadMisses != 16 || agg.Merges != 16 {
		t.Errorf("misses/merges = %d/%d, want 16/16", agg.ReadMisses, agg.Merges)
	}
	if agg.Upgrades != 4 {
		t.Errorf("upgrades = %d, want 4", agg.Upgrades)
	}
}

func TestReadWriteRange(t *testing.T) {
	m := mustMachine(t, tiny(1, 1))
	a := m.Alloc(1024, "buf")
	res, err := m.Run(func(p *Proc) {
		p.ReadRange(a, 512)  // 8 lines
		p.WriteRange(a, 256) // 4 lines
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Procs[0]
	if st.Reads != 8 || st.Writes != 4 {
		t.Fatalf("refs = %d/%d, want 8/4", st.Reads, st.Writes)
	}
	if st.ReadMisses != 8 {
		t.Fatalf("cold range should miss every line: %d", st.ReadMisses)
	}
	if st.Upgrades != 4 {
		t.Fatalf("writes to shared fetched lines should upgrade: %+v", st.Counters)
	}
}
