// Package profile is the simulator's data-centric sharing profiler.
//
// The paper argues clustering entirely through data-structure-level
// sharing behaviour — which structures miss, why, and whether a cluster
// cache can absorb the traffic — yet machine-level counters cannot say
// *which* line or array caused a miss. A Collector attached to a
// core.Machine (via Config.Profile) observes every memory reference and
// every coherence protocol event, classifies each fetch miss in the
// Dubois-style taxonomy:
//
//   - cold: the cluster had never held the line;
//   - replacement: the cluster's copy was displaced by a capacity or
//     conflict eviction (or, in shared-memory clusters, a private cache
//     refilled a line the cluster's attraction memory still held);
//   - true sharing: the copy was invalidated by another cluster's write,
//     and the word now accessed was written since the copy was lost;
//   - false sharing: the copy was invalidated, but only words *other*
//     than the one now accessed were written — traffic manufactured by
//     line granularity alone;
//
// and attributes counts and stall cycles to the named allocator region
// containing the address, to the individual cache line (with
// invalidator→victim pairs), and to the page-placement outcome
// (local-home vs. remote-home fetches per region).
//
// True/false discrimination uses per-word last-writer tracking at
// WordBytes granularity: every store stamps its word with the writing
// cluster and time; an invalidation stamps the victim's loss time; a
// later miss by the victim compares the accessed word's last write
// against the loss. Sub-word false sharing (two bytes of one word) is
// reported as true sharing — the simulator's references are word-sized,
// so the distinction cannot arise from the apps' access streams.
//
// Everything is called from the goroutine holding the engine's
// execution token, so the collector is lock-free; a nil *Collector
// disables every hook at the cost of one branch, exactly like the
// telemetry collector.
package profile

import (
	"clustersim/internal/coherence"
	"clustersim/internal/memory"
)

// Clock counts simulated cycles (mirrors engine.Clock; both are int64).
type Clock = int64

// WordBytes is the granularity of last-writer tracking. The simulated
// applications issue word-sized references, so one 8-byte word per
// tracked write is exact for them.
const WordBytes = 8

// MissKind is one class of the profiler's miss taxonomy.
type MissKind uint8

const (
	// MissCold is a first-ever fetch of the line by the cluster.
	MissCold MissKind = iota
	// MissReplacement refetches a line lost to eviction.
	MissReplacement
	// MissTrueSharing refetches a line lost to invalidation, where the
	// accessed word was written by another cluster since the loss.
	MissTrueSharing
	// MissFalseSharing refetches a line lost to invalidation, where the
	// accessed word was NOT among those written — a line-granularity
	// artifact.
	MissFalseSharing
)

// String names the miss kind as it appears in reports.
func (k MissKind) String() string {
	switch k {
	case MissCold:
		return "cold"
	case MissReplacement:
		return "replacement"
	case MissTrueSharing:
		return "true-sharing"
	case MissFalseSharing:
		return "false-sharing"
	}
	return "unknown"
}

// ClassCounts tallies misses by taxonomy class.
type ClassCounts struct {
	Cold         uint64 `json:"cold"`
	Replacement  uint64 `json:"replacement"`
	TrueSharing  uint64 `json:"trueSharing"`
	FalseSharing uint64 `json:"falseSharing"`
}

func (c *ClassCounts) add(k MissKind) {
	switch k {
	case MissCold:
		c.Cold++
	case MissReplacement:
		c.Replacement++
	case MissTrueSharing:
		c.TrueSharing++
	case MissFalseSharing:
		c.FalseSharing++
	}
}

// Total returns the sum over all classes.
func (c ClassCounts) Total() uint64 {
	return c.Cold + c.Replacement + c.TrueSharing + c.FalseSharing
}

// Plus returns the class-wise sum.
func (c ClassCounts) Plus(o ClassCounts) ClassCounts {
	return ClassCounts{
		Cold:         c.Cold + o.Cold,
		Replacement:  c.Replacement + o.Replacement,
		TrueSharing:  c.TrueSharing + o.TrueSharing,
		FalseSharing: c.FalseSharing + o.FalseSharing,
	}
}

// StallCycles splits processor stall cycles by the miss class that
// caused them.
type StallCycles struct {
	Cold         Clock `json:"cold"`
	Replacement  Clock `json:"replacement"`
	TrueSharing  Clock `json:"trueSharing"`
	FalseSharing Clock `json:"falseSharing"`
}

func (s *StallCycles) add(k MissKind, cycles Clock) {
	switch k {
	case MissCold:
		s.Cold += cycles
	case MissReplacement:
		s.Replacement += cycles
	case MissTrueSharing:
		s.TrueSharing += cycles
	case MissFalseSharing:
		s.FalseSharing += cycles
	}
}

// Total returns the summed stall cycles.
func (s StallCycles) Total() Clock {
	return s.Cold + s.Replacement + s.TrueSharing + s.FalseSharing
}

// Per-(line, cluster) presence states.
const (
	neverSeen uint8 = iota
	present
	lostReplacement
	lostInvalidation
)

// wordWrite is the last writer of one word of a tracked line.
type wordWrite struct {
	cluster int32
	valid   bool
	at      Clock
}

// pairKey identifies one invalidator→victim relationship on a line.
type pairKey struct {
	writerPE int32 // the processor whose write caused the invalidation
	victim   int32 // the cluster that lost its copy
}

// lineState is the profiler's record of one cache line.
type lineState struct {
	region int32 // allocator region index; -1 when outside every region
	state  []uint8
	lostAt []Clock
	words  []wordWrite

	misses ClassCounts
	stall  Clock
	invals uint64
	pairs  map[pairKey]uint64
}

// regionAccum accumulates one allocator region's profile.
type regionAccum struct {
	reads, writes, hits uint64
	upgrades, merges    uint64
	misses              ClassCounts
	stalls              StallCycles
	mergeStall          Clock

	// Fetch-service placement: misses served by the page's local home,
	// a remote home, or (shared-memory clusters) inside the cluster.
	localHome, remoteHome, intraCluster uint64
}

// Collector gathers one run's sharing profile. Create one with New,
// attach it via core.Config.Profile, and call Report after the run.
type Collector struct {
	as           *memory.AddressSpace
	clusters     int
	lineShift    uint
	lineBytes    uint64
	wordsPerLine int
	wordMask     uint64

	lines   map[uint64]*lineState
	regions []regionAccum // indexed by allocation order; grown on demand
	spill   regionAccum   // accesses outside every named region
	started bool
}

// New creates an empty collector.
func New() *Collector { return &Collector{} }

// Start sizes the collector for a machine; core.NewMachine calls it
// before any simulated reference is issued.
func (c *Collector) Start(as *memory.AddressSpace, clusters int, lineBytes uint64) {
	if c.started {
		panic("profile: Collector reused across runs; create one per run")
	}
	c.started = true
	c.as = as
	c.clusters = clusters
	c.lineBytes = lineBytes
	for 1<<c.lineShift < lineBytes {
		c.lineShift++
	}
	c.wordsPerLine = int(lineBytes / WordBytes)
	if c.wordsPerLine < 1 {
		c.wordsPerLine = 1
	}
	c.wordMask = uint64(c.wordsPerLine - 1)
	c.lines = make(map[uint64]*lineState)
}

// line returns (creating if needed) the state of the line containing
// addr.
func (c *Collector) line(num uint64, addr memory.Addr) *lineState {
	st := c.lines[num]
	if st == nil {
		region := int32(-1)
		if i, ok := c.as.RegionIndexOf(addr); ok {
			region = int32(i)
		}
		st = &lineState{
			region: region,
			state:  make([]uint8, c.clusters),
			lostAt: make([]Clock, c.clusters),
			words:  make([]wordWrite, c.wordsPerLine),
		}
		c.lines[num] = st
	}
	return st
}

// region returns the accumulator for region index i (-1 = spill).
func (c *Collector) region(i int32) *regionAccum {
	if i < 0 {
		return &c.spill
	}
	for int(i) >= len(c.regions) {
		c.regions = append(c.regions, regionAccum{})
	}
	return &c.regions[i]
}

// wordIndex returns the tracked-word slot of addr within its line.
func (c *Collector) wordIndex(addr memory.Addr) int {
	return int((addr / WordBytes) & c.wordMask)
}

// OnAccess records the outcome of one memory reference. stall is the
// cycles the issuing processor actually stalled (0 for hits, hidden
// writes, and store-buffered write misses).
func (c *Collector) OnAccess(proc, cluster int, write bool, addr memory.Addr, acc coherence.Access, stall, now Clock) {
	num := addr >> c.lineShift
	st := c.line(num, addr)
	r := c.region(st.region)
	if write {
		r.writes++
	} else {
		r.reads++
	}
	switch acc.Class {
	case coherence.Hit:
		r.hits++
	case coherence.MergeMiss, coherence.WriteMerge:
		r.merges++
		r.mergeStall += stall
	case coherence.Upgrade:
		r.upgrades++
	case coherence.ReadMiss, coherence.WriteMiss:
		kind := c.classify(st, cluster, addr)
		st.misses.add(kind)
		st.stall += stall
		r.misses.add(kind)
		r.stalls.add(kind, stall)
		switch acc.Hops {
		case coherence.HopLocalClean, coherence.HopLocalDirty:
			r.localHome++
		case coherence.HopRemoteClean, coherence.HopRemoteDirty:
			r.remoteHome++
		case coherence.HopIntraCluster:
			r.intraCluster++
		}
		st.state[cluster] = present
	}
	if write {
		st.words[c.wordIndex(addr)] = wordWrite{cluster: int32(cluster), valid: true, at: now}
	}
}

// classify applies the taxonomy to a fetch miss by cluster at addr.
func (c *Collector) classify(st *lineState, cluster int, addr memory.Addr) MissKind {
	switch st.state[cluster] {
	case neverSeen:
		return MissCold
	case lostInvalidation:
		w := st.words[c.wordIndex(addr)]
		if w.valid && int(w.cluster) != cluster && w.at >= st.lostAt[cluster] {
			return MissTrueSharing
		}
		return MissFalseSharing
	default:
		// lostReplacement — or, in shared-memory clusters, a private
		// cache refilling a line the attraction memory retained
		// (state still `present` at cluster granularity).
		return MissReplacement
	}
}

// Invalidated implements coherence.Observer: victim cluster's copy of
// line was invalidated at now by a write from writerPE (in
// writerCluster).
func (c *Collector) Invalidated(line uint64, writerPE, writerCluster, victim int, now Clock) {
	st := c.line(line, line<<c.lineShift)
	st.state[victim] = lostInvalidation
	st.lostAt[victim] = now
	st.invals++
	if st.pairs == nil {
		st.pairs = make(map[pairKey]uint64)
	}
	st.pairs[pairKey{writerPE: int32(writerPE), victim: int32(victim)}]++
}

// Evicted implements coherence.Observer: cluster's copy of line was
// displaced by a replacement at now.
func (c *Collector) Evicted(line uint64, cluster int, now Clock) {
	st := c.line(line, line<<c.lineShift)
	if st.state[cluster] == present {
		st.state[cluster] = lostReplacement
		st.lostAt[cluster] = now
	}
}

// Reset zeroes every counter while keeping the presence and last-writer
// state — caches stay warm across core.Machine.BeginMeasurement, so a
// line fetched during initialization and kept must not look cold in the
// measured phase.
func (c *Collector) Reset() {
	for i := range c.regions {
		c.regions[i] = regionAccum{}
	}
	c.spill = regionAccum{}
	for _, st := range c.lines {
		st.misses = ClassCounts{}
		st.stall = 0
		st.invals = 0
		st.pairs = nil
	}
}
