package profile

import (
	"bytes"
	"testing"

	"clustersim/internal/coherence"
	"clustersim/internal/memory"
)

// newCollector builds a 2-cluster collector over a small address space
// with two named regions. Returns the collector and the region bases.
func newCollector(t *testing.T) (*Collector, memory.Addr, memory.Addr) {
	t.Helper()
	as, err := memory.New(4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := as.Alloc(8000, "grid") // 8000 of 8192 reserved: leaves alignment padding
	b := as.Alloc(4096, "histogram")
	c := New()
	c.Start(as, 2, 64)
	return c, a, b
}

func readMiss(stall Clock) coherence.Access {
	return coherence.Access{Class: coherence.ReadMiss, Hops: coherence.HopLocalClean, Stall: stall}
}

func writeMiss() coherence.Access {
	return coherence.Access{Class: coherence.WriteMiss, Hops: coherence.HopRemoteClean}
}

// The taxonomy walk: a line is fetched cold, invalidated, refetched on
// an untouched word (false sharing), invalidated again, refetched on
// the written word (true sharing), evicted, and refetched (replacement).
func TestMissClassification(t *testing.T) {
	c, grid, _ := newCollector(t)
	line := grid >> 6

	// Cluster 0 reads word 0: cold.
	c.OnAccess(0, 0, false, grid, readMiss(30), 30, 10)
	// PE 4 (cluster 1) writes word 1 of the same line: cold for cluster
	// 1, and the write stamps word 1's last writer.
	c.OnAccess(4, 1, true, grid+8, writeMiss(), 0, 20)
	c.Invalidated(line, 4, 1, 0, 20)

	// Cluster 0 refetches word 0 — never written since the loss: false.
	c.OnAccess(0, 0, false, grid, readMiss(30), 30, 30)

	// Cluster 0's refetch made the line shared again, so cluster 1's
	// next write is an upgrade; it invalidates cluster 0 once more.
	// Refetching the word cluster 1 wrote: true sharing.
	c.OnAccess(4, 1, true, grid+8, coherence.Access{Class: coherence.Upgrade}, 0, 40)
	c.Invalidated(line, 4, 1, 0, 40)
	c.OnAccess(0, 0, false, grid+8, readMiss(100), 100, 50)

	// Eviction, then refetch: replacement.
	c.Evicted(line, 0, 60)
	c.OnAccess(0, 0, false, grid, readMiss(30), 30, 70)

	r := c.Report(10)
	if len(r.Regions) != 1 || r.Regions[0].Name != "grid" {
		t.Fatalf("regions = %+v, want one region grid", r.Regions)
	}
	got := r.Regions[0].Misses
	want := ClassCounts{Cold: 2, Replacement: 1, TrueSharing: 1, FalseSharing: 1}
	if got != want {
		t.Errorf("grid misses = %+v, want %+v", got, want)
	}
	if st := r.Regions[0].Stalls; st.FalseSharing != 30 || st.TrueSharing != 100 {
		t.Errorf("stall split = %+v, want false=30 true=100", st)
	}
	if len(r.HotLines) != 1 || r.HotLines[0].Invalidations != 2 {
		t.Fatalf("hot lines = %+v, want one line with 2 invalidations", r.HotLines)
	}
	pairs := r.HotLines[0].Pairs
	if len(pairs) != 1 || pairs[0] != (PairCount{WriterPE: 4, VictimCluster: 0, Count: 2}) {
		t.Errorf("pairs = %+v, want PE4→cl0×2", pairs)
	}
}

// An invalidating write at the same cycle as the victim's loss counts
// as true sharing: the fetched word really was newly produced.
func TestSameCycleWriteIsTrueSharing(t *testing.T) {
	c, grid, _ := newCollector(t)
	line := grid >> 6
	c.OnAccess(0, 0, false, grid, readMiss(30), 30, 5)
	c.OnAccess(4, 1, true, grid, writeMiss(), 0, 9)
	c.Invalidated(line, 4, 1, 0, 9)
	c.OnAccess(0, 0, false, grid, readMiss(30), 30, 12)
	r := c.Report(0)
	if m := r.Regions[0].Misses; m.TrueSharing != 1 || m.FalseSharing != 0 {
		t.Errorf("misses = %+v, want 1 true-sharing refetch", m)
	}
}

// Placement attribution: fetches served by the local home vs. a remote
// home vs. inside the cluster.
func TestPlacementAttribution(t *testing.T) {
	c, grid, _ := newCollector(t)
	c.OnAccess(0, 0, false, grid, readMiss(30), 30, 1)
	c.OnAccess(0, 0, false, grid+64, coherence.Access{Class: coherence.ReadMiss, Hops: coherence.HopRemoteDirty, Stall: 150}, 150, 2)
	c.OnAccess(0, 0, false, grid+128, coherence.Access{Class: coherence.ReadMiss, Hops: coherence.HopIntraCluster, Stall: 15}, 15, 3)
	reg := c.Report(0).Regions[0]
	if reg.LocalHome != 1 || reg.RemoteHome != 1 || reg.IntraCluster != 1 {
		t.Errorf("placement = local %d remote %d intra %d, want 1/1/1",
			reg.LocalHome, reg.RemoteHome, reg.IntraCluster)
	}
	if f := reg.LocalHomeFraction(); f != 0.5 {
		t.Errorf("LocalHomeFraction = %v, want 0.5", f)
	}
}

// Reset (BeginMeasurement) zeroes counters but keeps presence and
// last-writer state: a warm line must not re-classify as cold, and a
// pre-reset invalidation still discriminates true from false sharing.
func TestResetKeepsWarmState(t *testing.T) {
	c, grid, _ := newCollector(t)
	line := grid >> 6
	c.OnAccess(0, 0, false, grid, readMiss(30), 30, 1)
	c.OnAccess(4, 1, true, grid+8, writeMiss(), 0, 2)
	c.Invalidated(line, 4, 1, 0, 2)

	c.Reset()

	c.OnAccess(0, 0, false, grid+8, readMiss(100), 100, 10)
	r := c.Report(0)
	m := r.Regions[0].Misses
	if m != (ClassCounts{TrueSharing: 1}) {
		t.Errorf("post-reset misses = %+v, want exactly one true-sharing miss", m)
	}
	if r.Totals.Misses.Total() != 1 {
		t.Errorf("totals = %+v, want only post-reset counts", r.Totals)
	}
}

// Accesses outside every named region land in the (unattributed) spill
// bucket; regions never touched are omitted.
func TestSpillAndOmittedRegions(t *testing.T) {
	c, grid, _ := newCollector(t)
	_ = grid
	as := c.as
	pad := as.Regions()[0].End() // alignment padding past "grid"
	if _, ok := as.RegionOf(pad); ok {
		t.Fatalf("address %#x unexpectedly inside a region", pad)
	}
	c.OnAccess(0, 0, false, pad, readMiss(30), 30, 1)
	r := c.Report(0)
	if len(r.Regions) != 1 || r.Regions[0].Name != "(unattributed)" {
		t.Fatalf("regions = %+v, want only the spill bucket", r.Regions)
	}
}

// Reports round-trip through JSON, reject foreign schemas, and render
// identically for identical inputs.
func TestReportRoundTripAndDeterminism(t *testing.T) {
	build := func() *bytes.Buffer {
		c, grid, hist := newCollector(t)
		line := grid >> 6
		c.OnAccess(0, 0, false, grid, readMiss(30), 30, 1)
		c.OnAccess(4, 1, true, grid, writeMiss(), 0, 2)
		c.Invalidated(line, 4, 1, 0, 2)
		c.OnAccess(0, 0, false, grid, readMiss(100), 100, 3)
		c.OnAccess(3, 0, false, hist, readMiss(30), 30, 4)
		r := c.Report(4)
		r.App, r.Size = "mp3d", "small"
		var buf bytes.Buffer
		if err := WriteReport(&buf, r); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	a, b := build(), build()
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical event streams produced different JSON")
	}
	r, err := ReadReport(a)
	if err != nil {
		t.Fatal(err)
	}
	if r.App != "mp3d" || len(r.Regions) != 2 {
		t.Errorf("round-trip lost data: %+v", r)
	}
	// Regions rank by misses: grid (2 classified) before histogram (1).
	if r.Regions[0].Name != "grid" || r.Regions[1].Name != "histogram" {
		t.Errorf("region order = %s, %s; want grid, histogram", r.Regions[0].Name, r.Regions[1].Name)
	}
	if _, err := ReadReport(bytes.NewBufferString(`{"schema":"other/v9"}`)); err == nil {
		t.Error("foreign schema accepted")
	}

	var flat bytes.Buffer
	WriteFlat(&flat, r)
	for _, want := range []string{"grid", "histogram", "classified misses", "hot lines"} {
		if !bytes.Contains(flat.Bytes(), []byte(want)) {
			t.Errorf("flat report missing %q:\n%s", want, flat.String())
		}
	}
	var diff bytes.Buffer
	WriteDiff(&diff, r, r)
	if !bytes.Contains(diff.Bytes(), []byte("Δmisses +0")) {
		t.Errorf("self-diff should be zero:\n%s", diff.String())
	}
}

// The manifest summary keeps the per-region class split.
func TestSummary(t *testing.T) {
	c, grid, _ := newCollector(t)
	c.OnAccess(0, 0, false, grid, readMiss(30), 30, 1)
	s := c.Report(0).Summary()
	if s.ClassifiedMisses != 1 || len(s.Regions) != 1 || s.Regions[0].Misses.Cold != 1 {
		t.Errorf("summary = %+v, want 1 cold miss in grid", s)
	}
}

// A collector must refuse reuse across runs: warm per-run state would
// silently corrupt the second run's classification.
func TestStartPanicsOnReuse(t *testing.T) {
	c, _, _ := newCollector(t)
	defer func() {
		if recover() == nil {
			t.Error("second Start did not panic")
		}
	}()
	c.Start(c.as, 2, 64)
}
