package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// SchemaV1 identifies the sharing-profile document layout.
const SchemaV1 = "clustersim/profile/v1"

// Report is the exported sharing profile of one run: per-region miss
// attribution, the hottest individual cache lines, and placement
// outcomes. It serialises deterministically — every slice is sorted
// with a total order — so two runs of the same configuration produce
// byte-identical JSON.
type Report struct {
	Schema     string `json:"schema"`
	App        string `json:"app,omitempty"`
	Size       string `json:"size,omitempty"`
	ConfigHash string `json:"configHash,omitempty"`

	LineBytes uint64 `json:"lineBytes"`
	WordBytes uint64 `json:"wordBytes"`
	PageBytes uint64 `json:"pageBytes"`
	Clusters  int    `json:"clusters"`

	Totals   Totals         `json:"totals"`
	Regions  []RegionReport `json:"regions"`
	HotLines []LineReport   `json:"hotLines,omitempty"`
}

// Totals is the machine-wide aggregate of the report.
type Totals struct {
	Reads       uint64      `json:"reads"`
	Writes      uint64      `json:"writes"`
	Hits        uint64      `json:"hits"`
	Upgrades    uint64      `json:"upgrades"`
	Merges      uint64      `json:"merges"`
	Misses      ClassCounts `json:"misses"`
	StallCycles Clock       `json:"stallCycles"`
}

// RegionReport is one named allocator region's profile.
type RegionReport struct {
	Name  string `json:"name"`
	Bytes uint64 `json:"bytes"`
	Pages uint64 `json:"pages"`

	Reads    uint64 `json:"reads"`
	Writes   uint64 `json:"writes"`
	Hits     uint64 `json:"hits"`
	Upgrades uint64 `json:"upgrades"`
	Merges   uint64 `json:"merges"`

	Misses     ClassCounts `json:"misses"`
	Stalls     StallCycles `json:"stallCycles"`
	MergeStall Clock       `json:"mergeStallCycles"`

	// Placement outcome: where the region's fetch misses were served.
	LocalHome    uint64 `json:"localHomeFetches"`
	RemoteHome   uint64 `json:"remoteHomeFetches"`
	IntraCluster uint64 `json:"intraClusterFetches,omitempty"`
}

// LocalHomeFraction returns the share of home-serviced fetches that hit
// the page's local home — the quantity the round-robin vs. first-touch
// placement policies move.
func (r RegionReport) LocalHomeFraction() float64 {
	total := r.LocalHome + r.RemoteHome
	if total == 0 {
		return 0
	}
	return float64(r.LocalHome) / float64(total)
}

// LineReport is one hot cache line.
type LineReport struct {
	Line   uint64 `json:"line"` // line number (addr >> log2(LineBytes))
	Addr   uint64 `json:"addr"` // base address of the line
	Region string `json:"region"`
	Offset uint64 `json:"offset"` // byte offset of the line within its region

	Misses        ClassCounts `json:"misses"`
	StallCycles   Clock       `json:"stallCycles"`
	Invalidations uint64      `json:"invalidations"`
	Pairs         []PairCount `json:"pairs,omitempty"`
}

// PairCount counts invalidations from one writing processor to one
// victim cluster on a line — who is fighting whom.
type PairCount struct {
	WriterPE      int    `json:"writerPE"`
	VictimCluster int    `json:"victimCluster"`
	Count         uint64 `json:"count"`
}

// maxPairsPerLine bounds the invalidator→victim pairs listed per line.
const maxPairsPerLine = 6

// Report builds the exported profile, ranking the topLines hottest
// cache lines by classified misses (ties broken by line number, so the
// ranking is a total order).
func (c *Collector) Report(topLines int) *Report {
	r := &Report{
		Schema:    SchemaV1,
		LineBytes: c.lineBytes,
		WordBytes: WordBytes,
		PageBytes: c.as.PageBytes(),
		Clusters:  c.clusters,
	}
	regions := c.as.Regions()
	for i, reg := range regions {
		var acc regionAccum
		if i < len(c.regions) {
			acc = c.regions[i]
		}
		if acc == (regionAccum{}) {
			continue // never referenced in the measured phase
		}
		r.Regions = append(r.Regions, regionReport(reg.Name, reg.Size, c.pagesOf(reg.Base, reg.Size), acc))
	}
	if c.spill != (regionAccum{}) {
		r.Regions = append(r.Regions, regionReport("(unattributed)", 0, 0, c.spill))
	}
	// Rank regions by classified misses, then stall, then name.
	sort.SliceStable(r.Regions, func(i, j int) bool {
		a, b := r.Regions[i], r.Regions[j]
		if am, bm := a.Misses.Total(), b.Misses.Total(); am != bm {
			return am > bm
		}
		if as, bs := a.Stalls.Total(), b.Stalls.Total(); as != bs {
			return as > bs
		}
		return a.Name < b.Name
	})
	for _, reg := range r.Regions {
		r.Totals.Reads += reg.Reads
		r.Totals.Writes += reg.Writes
		r.Totals.Hits += reg.Hits
		r.Totals.Upgrades += reg.Upgrades
		r.Totals.Merges += reg.Merges
		r.Totals.Misses = r.Totals.Misses.Plus(reg.Misses)
		r.Totals.StallCycles += reg.Stalls.Total() + reg.MergeStall
	}
	r.HotLines = c.hotLines(topLines)
	return r
}

func regionReport(name string, bytes, pages uint64, acc regionAccum) RegionReport {
	return RegionReport{
		Name:         name,
		Bytes:        bytes,
		Pages:        pages,
		Reads:        acc.reads,
		Writes:       acc.writes,
		Hits:         acc.hits,
		Upgrades:     acc.upgrades,
		Merges:       acc.merges,
		Misses:       acc.misses,
		Stalls:       acc.stalls,
		MergeStall:   acc.mergeStall,
		LocalHome:    acc.localHome,
		RemoteHome:   acc.remoteHome,
		IntraCluster: acc.intraCluster,
	}
}

func (c *Collector) pagesOf(base, size uint64) uint64 {
	if size == 0 {
		return 0
	}
	pb := c.as.PageBytes()
	return (base+size-1)/pb - base/pb + 1
}

// hotLines ranks the top-n lines by classified misses.
func (c *Collector) hotLines(n int) []LineReport {
	if n <= 0 {
		return nil
	}
	var out []LineReport
	for num, st := range c.lines {
		if st.misses.Total() == 0 {
			continue
		}
		addr := num << c.lineShift
		name, off := "(unattributed)", uint64(0)
		if reg, ok := c.as.RegionOf(addr); ok {
			name, off = reg.Name, addr-reg.Base
		}
		out = append(out, LineReport{ //simlint:allow maprange — fully sorted below
			Line:          num,
			Addr:          addr,
			Region:        name,
			Offset:        off,
			Misses:        st.misses,
			StallCycles:   st.stall,
			Invalidations: st.invals,
			Pairs:         sortPairs(st.pairs),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if am, bm := out[i].Misses.Total(), out[j].Misses.Total(); am != bm {
			return am > bm
		}
		return out[i].Line < out[j].Line
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

func sortPairs(pairs map[pairKey]uint64) []PairCount {
	if len(pairs) == 0 {
		return nil
	}
	out := make([]PairCount, 0, len(pairs))
	for k, n := range pairs { //simlint:allow maprange — fully sorted below
		out = append(out, PairCount{WriterPE: int(k.writerPE), VictimCluster: int(k.victim), Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].WriterPE != out[j].WriterPE {
			return out[i].WriterPE < out[j].WriterPE
		}
		return out[i].VictimCluster < out[j].VictimCluster
	})
	if len(out) > maxPairsPerLine {
		out = out[:maxPairsPerLine]
	}
	return out
}

// Summary is the compact per-region miss-class block embedded in
// telemetry run manifests.
type Summary struct {
	ClassifiedMisses uint64          `json:"classifiedMisses"`
	Regions          []RegionSummary `json:"regions,omitempty"`
}

// RegionSummary is one region's miss-class totals.
type RegionSummary struct {
	Name   string      `json:"name"`
	Misses ClassCounts `json:"misses"`
}

// Summary condenses the report for a run manifest.
func (r *Report) Summary() *Summary {
	s := &Summary{ClassifiedMisses: r.Totals.Misses.Total()}
	for _, reg := range r.Regions {
		s.Regions = append(s.Regions, RegionSummary{Name: reg.Name, Misses: reg.Misses})
	}
	return s
}

// WriteReport writes r as indented JSON.
func WriteReport(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses one profile document.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("profile: bad profile document: %w", err)
	}
	if r.Schema != SchemaV1 {
		return nil, fmt.Errorf("profile: unknown profile schema %q", r.Schema)
	}
	return &r, nil
}

func pct(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// WriteFlat renders the report as a pprof-style flat table: regions
// ranked by classified misses with flat/cumulative percentages and the
// miss-class split, followed by the hot-line ranking.
func WriteFlat(w io.Writer, r *Report) {
	fmt.Fprintf(w, "sharing profile")
	if r.App != "" {
		fmt.Fprintf(w, ": %s (%s size)", r.App, r.Size)
	}
	fmt.Fprintf(w, "  line=%dB word=%dB page=%dB clusters=%d\n",
		r.LineBytes, r.WordBytes, r.PageBytes, r.Clusters)
	total := r.Totals.Misses.Total()
	fmt.Fprintf(w, "classified misses: %d (cold %.1f%%  repl %.1f%%  true %.1f%%  false %.1f%%), stall %d cycles\n\n",
		total, pct(r.Totals.Misses.Cold, total), pct(r.Totals.Misses.Replacement, total),
		pct(r.Totals.Misses.TrueSharing, total), pct(r.Totals.Misses.FalseSharing, total),
		r.Totals.StallCycles)

	fmt.Fprintf(w, "%-16s %10s %6s %6s %9s %9s %9s %9s %12s %7s\n",
		"region", "misses", "flat%", "sum%", "cold", "repl", "true", "false", "stall-cyc", "local%")
	var cum uint64
	for _, reg := range r.Regions {
		m := reg.Misses.Total()
		cum += m
		fmt.Fprintf(w, "%-16s %10d %5.1f%% %5.1f%% %9d %9d %9d %9d %12d %6.1f%%\n",
			reg.Name, m, pct(m, total), pct(cum, total),
			reg.Misses.Cold, reg.Misses.Replacement, reg.Misses.TrueSharing, reg.Misses.FalseSharing,
			reg.Stalls.Total(), 100*reg.LocalHomeFraction())
	}

	if len(r.HotLines) > 0 {
		fmt.Fprintf(w, "\nhot lines (top %d by classified misses):\n", len(r.HotLines))
		for _, l := range r.HotLines {
			fmt.Fprintf(w, "  %#012x %s+%#x  misses %d (cold %d repl %d true %d false %d)  invals %d",
				l.Addr, l.Region, l.Offset, l.Misses.Total(),
				l.Misses.Cold, l.Misses.Replacement, l.Misses.TrueSharing, l.Misses.FalseSharing,
				l.Invalidations)
			for i, p := range l.Pairs {
				if i == 0 {
					fmt.Fprintf(w, "  pairs ")
				} else {
					fmt.Fprintf(w, ", ")
				}
				fmt.Fprintf(w, "PE%d→cl%d×%d", p.WriterPE, p.VictimCluster, p.Count)
			}
			fmt.Fprintln(w)
		}
	}
}

// WriteDiff renders the per-region delta between two profiles (new
// minus old), ranked by absolute change in classified misses. Regions
// present on only one side appear with the other side treated as zero.
func WriteDiff(w io.Writer, old, cur *Report) {
	type row struct {
		name          string
		dMiss         int64
		dCold, dRepl  int64
		dTrue, dFalse int64
		dStall        int64
	}
	oldBy := make(map[string]RegionReport, len(old.Regions))
	for _, reg := range old.Regions {
		oldBy[reg.Name] = reg
	}
	seen := make(map[string]bool)
	var rows []row
	addRow := func(name string, o, n RegionReport) {
		rows = append(rows, row{
			name:   name,
			dMiss:  int64(n.Misses.Total()) - int64(o.Misses.Total()),
			dCold:  int64(n.Misses.Cold) - int64(o.Misses.Cold),
			dRepl:  int64(n.Misses.Replacement) - int64(o.Misses.Replacement),
			dTrue:  int64(n.Misses.TrueSharing) - int64(o.Misses.TrueSharing),
			dFalse: int64(n.Misses.FalseSharing) - int64(o.Misses.FalseSharing),
			dStall: int64(n.Stalls.Total()) - int64(o.Stalls.Total()),
		})
	}
	for _, reg := range cur.Regions {
		seen[reg.Name] = true
		addRow(reg.Name, oldBy[reg.Name], reg)
	}
	for _, reg := range old.Regions {
		if !seen[reg.Name] {
			addRow(reg.Name, reg, RegionReport{})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		ai, aj := abs64(rows[i].dMiss), abs64(rows[j].dMiss)
		if ai != aj {
			return ai > aj
		}
		return rows[i].name < rows[j].name
	})
	fmt.Fprintf(w, "profile diff (new - old): Δmisses %+d  Δstall %+d cycles\n",
		int64(cur.Totals.Misses.Total())-int64(old.Totals.Misses.Total()),
		int64(cur.Totals.StallCycles)-int64(old.Totals.StallCycles))
	fmt.Fprintf(w, "%-16s %10s %9s %9s %9s %9s %12s\n",
		"region", "Δmisses", "Δcold", "Δrepl", "Δtrue", "Δfalse", "Δstall-cyc")
	for _, rw := range rows {
		fmt.Fprintf(w, "%-16s %+10d %+9d %+9d %+9d %+9d %+12d\n",
			rw.name, rw.dMiss, rw.dCold, rw.dRepl, rw.dTrue, rw.dFalse, rw.dStall)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
