package perf

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile into path and returns the stop
// function; call it (usually via defer) before the process exits. The
// CLIs share this so `-cpuprofile` behaves identically everywhere.
func StartCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("perf: -cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("perf: -cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile writes an allocation profile to path, after a GC so
// the live-heap numbers are current — the `-memprofile` behaviour of
// the standard test binary.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("perf: -memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		return fmt.Errorf("perf: -memprofile: %w", err)
	}
	return nil
}
