package perf

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestPhaseTiling: the three phase spans tile the run's wall time
// exactly — no nanosecond is dropped or double-counted.
func TestPhaseTiling(t *testing.T) {
	m := New()
	m.Start()
	m.EnterApp()
	m.EnterCoherence()
	m.EnterApp()
	m.EnterSched()
	m.EnterApp()
	m.Stop(1000)
	r := m.Report()
	if sum := r.Phases.AppNS + r.Phases.SchedNS + r.Phases.CoherenceNS; sum != r.WallNS {
		t.Errorf("phase spans sum to %d ns, wall is %d ns", sum, r.WallNS)
	}
	if r.WallNS <= 0 {
		t.Errorf("wall = %d ns, want positive", r.WallNS)
	}
}

// TestTransitionCounts: handoffs and refs count phase entries, which
// are deterministic for a deterministic caller.
func TestTransitionCounts(t *testing.T) {
	m := New()
	m.Start()
	for i := 0; i < 7; i++ {
		m.EnterSched()
		m.EnterApp()
	}
	for i := 0; i < 11; i++ {
		m.EnterCoherence()
		m.EnterApp()
	}
	m.Stop(42)
	r := m.Report()
	if r.Handoffs != 7 {
		t.Errorf("Handoffs = %d, want 7", r.Handoffs)
	}
	if r.Refs != 11 {
		t.Errorf("Refs = %d, want 11", r.Refs)
	}
	if r.SimCycles != 42 {
		t.Errorf("SimCycles = %d, want 42", r.SimCycles)
	}
	if r.CyclesPerSec <= 0 || r.EventsPerSec <= 0 {
		t.Errorf("throughput not positive: %f cycles/s, %f events/s", r.CyclesPerSec, r.EventsPerSec)
	}
}

// TestNilMonitor: every method is a no-op on a nil monitor, so call
// sites need only one branch (and some need none).
func TestNilMonitor(t *testing.T) {
	var m *Monitor
	m.Start()
	m.EnterApp()
	m.EnterSched()
	m.EnterCoherence()
	m.Stop(0)
	if r := m.Report(); r != nil {
		t.Errorf("nil monitor report = %+v, want nil", r)
	}
}

// TestStopIdempotent: a second Stop neither extends the wall span nor
// perturbs the phase totals, and transitions after Stop are ignored.
func TestStopIdempotent(t *testing.T) {
	m := New()
	m.Start()
	m.EnterApp()
	m.Stop(5)
	first := *m.Report()
	m.EnterCoherence()
	m.Stop(99)
	second := *m.Report()
	if first != second {
		t.Errorf("report changed after second Stop:\n first: %+v\nsecond: %+v", first, second)
	}
}

// TestHostBlock: the host block identifies the runtime and carries the
// run's wall span and sampled peaks.
func TestHostBlock(t *testing.T) {
	m := New()
	m.Start()
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		m.EnterApp()
		sink = append(sink, make([]byte, 1024))
		m.EnterSched()
	}
	m.Stop(1)
	_ = sink
	h := m.Report().Host
	if h.GoVersion != runtime.Version() || h.GOOS != runtime.GOOS || h.GOARCH != runtime.GOARCH {
		t.Errorf("host identity wrong: %+v", h)
	}
	if h.GOMAXPROCS <= 0 || h.NumCPU <= 0 {
		t.Errorf("host parallelism wrong: %+v", h)
	}
	if h.HeapPeakBytes == 0 {
		t.Error("heap peak not sampled")
	}
	if h.GoroutinePeak <= 0 {
		t.Error("goroutine peak not sampled")
	}
	if h.WallNS != m.Report().WallNS {
		t.Error("host wall span differs from report wall span")
	}
	// The block must be JSON-serialisable for the manifest.
	if _, err := json.Marshal(h); err != nil {
		t.Fatal(err)
	}
}

// TestCPUProfileWrites: StartCPUProfile produces a non-empty pprof file
// (the CI job additionally checks `go tool pprof` parses it).
func TestCPUProfileWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	stop, err := StartCPUProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	busy := 0
	for i := 0; i < 1<<20; i++ {
		busy += i * i
	}
	_ = busy
	stop()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("cpu profile is empty")
	}
}

// TestHeapProfileWrites: WriteHeapProfile produces a non-empty file and
// errors cleanly on an unwritable path.
func TestHeapProfileWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mem.pprof")
	if err := WriteHeapProfile(path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("heap profile is empty")
	}
	if err := WriteHeapProfile(filepath.Join(t.TempDir(), "no-such-dir", "mem.pprof")); err == nil {
		t.Error("unwritable path: want error, got nil")
	}
}
