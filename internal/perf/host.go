package perf

import (
	"runtime"
	"runtime/metrics"
)

// Host identifies the machine and Go runtime a run executed on and the
// runtime's health figures over the run: the run manifest's `host`
// block. Everything here is host-side reporting — none of it feeds the
// simulation, so two runs differing only in this block are still the
// "same" run (scripts diff manifests with the host block stripped; see
// the golden manifest test).
type Host struct {
	GoVersion  string `json:"goVersion"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numCpu"`

	// Filled by Monitor.Report for a monitored run; zero otherwise.
	WallNS         int64  `json:"wallNs"`
	HeapPeakBytes  uint64 `json:"heapPeakBytes"`
	GCPauseTotalNS int64  `json:"gcPauseTotalNs"`
	NumGC          uint32 `json:"numGc"`
	GoroutinePeak  int    `json:"goroutinePeak"`
}

// ReadHost snapshots the static host identity.
func ReadHost() Host {
	return Host{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// hostGaugeNames are the runtime/metrics gauges the monitor tracks
// peaks of during a run.
var hostGaugeNames = []string{
	"/memory/classes/heap/objects:bytes",
	"/sched/goroutines:goroutines",
}

// ReadHostGauges samples the current live-heap bytes and goroutine
// count; the obs /status endpoint reports them as the host's live
// health figures between the monitor's peak snapshots.
func ReadHostGauges() (heapBytes uint64, goroutines int) {
	return readHostGauges()
}

// readHostGauges samples the current live-heap bytes and goroutine
// count through runtime/metrics.
func readHostGauges() (heapBytes uint64, goroutines int) {
	samples := make([]metrics.Sample, len(hostGaugeNames))
	for i, n := range hostGaugeNames {
		samples[i].Name = n
	}
	metrics.Read(samples)
	if samples[0].Value.Kind() == metrics.KindUint64 {
		heapBytes = samples[0].Value.Uint64()
	}
	if samples[1].Value.Kind() == metrics.KindUint64 {
		goroutines = int(samples[1].Value.Uint64())
	}
	return heapBytes, goroutines
}
