// Package perf is the simulator's self-observability layer: where the
// previous layers watch the *simulated* machine (telemetry, the sharing
// profiler, the sanitizer), this one watches the *simulator* — host
// wall-clock attribution per execution phase, simulation throughput
// (simulated cycles and engine events per wall second), and Go runtime
// health (heap peak, GC pauses, goroutine count).
//
// A Monitor attaches to a core.Machine via Config.Perf. It is purely
// observational: it never reads or writes simulated state, touches no
// virtual clock, and is excluded from the config hash, so a monitored
// run produces a Result byte-identical to an unmonitored one (pinned by
// test across all nine applications).
//
// Phase attribution exploits the engine's token discipline: exactly one
// goroutine executes at any instant, so a single global phase register
// plus one monotonic-clock read per transition attributes every wall
// nanosecond to exactly one of three phases — application compute (the
// kernel and reference issue), engine scheduling (the token-handoff
// machinery, including the Go runtime's goroutine switch), and the
// coherence protocol (cache, directory and latency model). The three
// phase totals tile the run's wall time exactly.
package perf

import (
	"runtime"
	"time"
)

// Phase classifies one span of the simulator's host execution.
type Phase uint8

const (
	// PhaseApp is application execution: the kernel's compute and the
	// issue side of every memory reference.
	PhaseApp Phase = iota
	// PhaseSched is the engine's token-handoff machinery: ready-heap
	// maintenance, the channel handoff and the goroutine switch it
	// triggers.
	PhaseSched
	// PhaseCoherence is the memory-system model: cluster cache lookup,
	// directory state machine and latency accounting.
	PhaseCoherence

	numPhases
)

// String names the phase as it appears in reports.
func (p Phase) String() string {
	switch p {
	case PhaseApp:
		return "app"
	case PhaseSched:
		return "sched"
	case PhaseCoherence:
		return "coherence"
	}
	return "unknown"
}

// hostSampleEvery is the transition-count cadence of mid-run host
// snapshots (heap, goroutines). Counting transitions instead of wall
// time keeps the sampling schedule deterministic for a deterministic
// simulation, and amortises the runtime/metrics read to noise.
const hostSampleEvery = 1 << 16

// Monitor measures one run. Create one per run with New, attach it via
// core.Config.Perf, and read the Report after the run. All methods are
// called from the goroutine holding the engine's execution token (or
// from the machine before/after the run), so the monitor needs no
// locking — the same single-writer argument as the telemetry collector.
type Monitor struct {
	base    time.Time // monotonic origin
	lastNS  int64     // time of the last phase transition, ns since base
	phase   Phase
	running bool

	phaseNS     [numPhases]int64
	transitions [numPhases]uint64

	wallNS    int64 // Start→Stop span
	simCycles int64 // final virtual time, set by Stop

	startMem runtime.MemStats
	stopMem  runtime.MemStats

	sampleCountdown uint32
	heapPeak        uint64
	goroutinePeak   int

	host Host
}

// New creates an idle monitor.
func New() *Monitor { return &Monitor{} }

// Start begins the run clock in PhaseSched (the engine dispatches the
// first token before any kernel instruction runs). The machine calls it
// at the top of Run.
func (m *Monitor) Start() {
	if m == nil || m.running {
		return
	}
	m.running = true
	m.base = time.Now() //simlint:allow wallclock — host-side self-measurement only
	m.lastNS = 0
	m.phase = PhaseSched
	m.host = ReadHost()
	runtime.ReadMemStats(&m.startMem)
	m.sampleHost()
	m.sampleCountdown = hostSampleEvery
}

// now returns nanoseconds since Start on the monotonic clock.
func (m *Monitor) now() int64 {
	return int64(time.Since(m.base)) //simlint:allow wallclock — host-side self-measurement only
}

// Transition charges the span since the previous transition to the
// current phase and enters p. Cost: one monotonic clock read.
func (m *Monitor) Transition(p Phase) {
	if m == nil || !m.running {
		return
	}
	t := m.now()
	m.phaseNS[m.phase] += t - m.lastNS
	m.lastNS = t
	m.phase = p
	m.transitions[p]++
	m.sampleCountdown--
	if m.sampleCountdown == 0 {
		m.sampleCountdown = hostSampleEvery
		m.sampleHost()
	}
}

// EnterSched marks the start of engine token-handoff work. The engine
// calls it through its Timer interface.
func (m *Monitor) EnterSched() { m.Transition(PhaseSched) }

// EnterApp marks a processor resuming application execution (engine
// Timer interface).
func (m *Monitor) EnterApp() { m.Transition(PhaseApp) }

// EnterCoherence marks entry into the memory-system model; the core
// reference path brackets every system call with
// EnterCoherence/EnterApp.
func (m *Monitor) EnterCoherence() { m.Transition(PhaseCoherence) }

// sampleHost snapshots the runtime gauges whose peaks the report keeps.
func (m *Monitor) sampleHost() {
	heap, goroutines := readHostGauges()
	if heap > m.heapPeak {
		m.heapPeak = heap
	}
	if goroutines > m.goroutinePeak {
		m.goroutinePeak = goroutines
	}
}

// Stop closes the run clock. simCycles is the run's final virtual time
// (the simulated work accomplished); the machine passes the maximum
// final processor clock. Stop is idempotent.
func (m *Monitor) Stop(simCycles int64) {
	if m == nil || !m.running {
		return
	}
	t := m.now()
	m.phaseNS[m.phase] += t - m.lastNS
	m.lastNS = t
	m.wallNS = t
	m.simCycles = simCycles
	m.running = false
	runtime.ReadMemStats(&m.stopMem)
	m.sampleHost()
}

// PhaseBreakdown is the wall-clock attribution of one run. The three
// phase spans tile WallNS exactly.
type PhaseBreakdown struct {
	AppNS       int64 `json:"appNs"`
	SchedNS     int64 `json:"schedNs"`
	CoherenceNS int64 `json:"coherenceNs"`
}

// Report is the monitor's summary of one run: throughput, phase
// attribution and the host block. Wall-clock fields vary run to run;
// Handoffs and Refs are deterministic for a deterministic simulation.
type Report struct {
	WallNS       int64          `json:"wallNs"`
	SimCycles    int64          `json:"simCycles"`
	CyclesPerSec float64        `json:"cyclesPerSec"`
	Handoffs     uint64         `json:"handoffs"`     // engine token handoffs observed
	Refs         uint64         `json:"refs"`         // memory-system calls observed
	EventsPerSec float64        `json:"eventsPerSec"` // (handoffs+refs) per wall second
	Phases       PhaseBreakdown `json:"phases"`
	AllocBytes   uint64         `json:"allocBytes"` // heap bytes allocated during the run
	Allocs       uint64         `json:"allocs"`     // heap objects allocated during the run
	Host         Host           `json:"host"`
}

// Report summarises a stopped (or still-running) monitor.
func (m *Monitor) Report() *Report {
	if m == nil {
		return nil
	}
	r := &Report{
		WallNS:    m.wallNS,
		SimCycles: m.simCycles,
		Handoffs:  m.transitions[PhaseSched],
		Refs:      m.transitions[PhaseCoherence],
		Phases: PhaseBreakdown{
			AppNS:       m.phaseNS[PhaseApp],
			SchedNS:     m.phaseNS[PhaseSched],
			CoherenceNS: m.phaseNS[PhaseCoherence],
		},
		AllocBytes: m.stopMem.TotalAlloc - m.startMem.TotalAlloc,
		Allocs:     m.stopMem.Mallocs - m.startMem.Mallocs,
		Host:       m.host,
	}
	r.Host.WallNS = m.wallNS
	r.Host.HeapPeakBytes = m.heapPeak
	r.Host.GoroutinePeak = m.goroutinePeak
	r.Host.GCPauseTotalNS = int64(m.stopMem.PauseTotalNs - m.startMem.PauseTotalNs)
	r.Host.NumGC = m.stopMem.NumGC - m.startMem.NumGC
	if sec := float64(m.wallNS) / 1e9; sec > 0 {
		r.CyclesPerSec = float64(m.simCycles) / sec
		r.EventsPerSec = float64(r.Handoffs+r.Refs) / sec
	}
	return r
}

// PhaseNS returns the accumulated wall nanoseconds of one phase.
func (m *Monitor) PhaseNS(p Phase) int64 { return m.phaseNS[p] }

// Transitions returns how many times phase p was entered.
func (m *Monitor) Transitions(p Phase) uint64 { return m.transitions[p] }
