// Package sanitizer is the simulator's config-gated runtime checker:
// with Config.Sanitize set, every coherence transaction is followed by a
// cross-validation of the directory's sharer bit-vector against the
// cache-line states of the line it touched (EXCLUSIVE entries have
// exactly one owner, SHARED copies are a subset of the sharer set,
// pending fills are judged by their fill state), and every reference's
// issue time is checked for virtual-time monotonicity — per processor
// always, and globally across the machine, which the token-passing
// engine guarantees at Quantum 0 (ties broken by processor ID). A full
// O(resident lines) audit additionally runs every AuditEvery
// transactions and once more when the run finishes.
//
// A violation is fatal by default: the checker panics with the failed
// invariant and a replayable dump of the last transactions (sequence
// number, processor, cluster, read/write, address, issue time, miss
// class) so the failure can be reproduced by replaying that reference
// stream against the memory model. Tests install an OnViolation handler
// to collect violations instead.
package sanitizer

import (
	"fmt"
	"strings"

	"clustersim/internal/coherence"
	"clustersim/internal/memory"
)

// Clock mirrors engine.Clock.
type Clock = int64

// DefaultAuditEvery is the default period, in transactions, of the full
// machine-wide invariant audit. The per-line spot check runs on every
// state-changing transaction regardless, so the full audit only guards
// against corruption in lines no transaction is touching; a sparse
// period keeps the sanitizer's overhead within the <2x budget.
const DefaultAuditEvery = 4096

// ringCap is the capacity of the replay ring: enough context to replay
// the window around a violation without measurably costing memory.
const ringCap = 256

// Event is one recorded memory transaction.
type Event struct {
	Seq     uint64
	Proc    int
	Cluster int
	Write   bool
	Addr    memory.Addr
	Time    Clock
	Class   coherence.Class
}

// String renders one replay line.
func (e Event) String() string {
	op := "R"
	if e.Write {
		op = "W"
	}
	return fmt.Sprintf("#%d t=%d p%d/c%d %s %#x -> %s",
		e.Seq, e.Time, e.Proc, e.Cluster, op, e.Addr, e.Class)
}

// Violation is one failed invariant with its replayable context.
type Violation struct {
	Err  error
	Dump []Event // oldest first, ending at the offending transaction
}

// Error implements error, with the full dump attached.
func (v Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sanitizer: %v\nreplay (last %d transactions):\n", v.Err, len(v.Dump))
	for _, e := range v.Dump {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}

// Checker validates the memory system transaction by transaction. Not
// safe for concurrent use — the engine's token discipline already
// serialises all processors onto one goroutine at a time.
type Checker struct {
	// AuditEvery is the full-audit period in transactions;
	// DefaultAuditEvery unless overridden before the run.
	AuditEvery uint64
	// OnViolation, when set, receives each violation instead of the
	// default panic. The checker keeps running, so a test can count
	// violations across a whole run.
	OnViolation func(Violation)

	sys    coherence.MemoryModel
	global bool // enforce machine-wide monotonicity (valid at Quantum 0)

	lastPE     []Clock
	lastGlobal Clock
	ring       [ringCap]Event
	seq        uint64 // transactions seen; ring[(seq-1)%ringCap] is newest
	nviol      uint64
}

// New builds a checker over the given memory system. global asserts
// machine-wide (not just per-processor) issue-time monotonicity; core
// enables it always, since Config.Validate rejects Sanitize with a
// nonzero Quantum.
func New(sys coherence.MemoryModel, procs int, global bool) *Checker {
	return &Checker{
		AuditEvery: DefaultAuditEvery,
		sys:        sys,
		global:     global,
		lastPE:     make([]Clock, procs),
	}
}

// Violations returns the number of violations delivered so far (always
// zero under the default panic handler).
func (c *Checker) Violations() uint64 { return c.nviol }

// Transactions returns the number of transactions checked.
func (c *Checker) Transactions() uint64 { return c.seq }

// Dump returns the replay ring, oldest first.
func (c *Checker) Dump() []Event {
	n := c.seq
	if n > ringCap {
		n = ringCap
	}
	out := make([]Event, 0, n)
	for i := c.seq - n; i < c.seq; i++ {
		out = append(out, c.ring[i%ringCap])
	}
	return out
}

func (c *Checker) violate(err error) {
	v := Violation{Err: err, Dump: c.Dump()}
	if c.OnViolation == nil {
		panic(v.Error())
	}
	c.nviol++
	c.OnViolation(v)
}

// OnAccess records and validates one memory transaction: monotonicity of
// the issue time, the touched line's directory/cache agreement when the
// transaction changed protocol state, and periodically the whole
// machine.
func (c *Checker) OnAccess(proc, cluster int, write bool, addr memory.Addr, now Clock, acc coherence.Access) {
	c.ring[c.seq%ringCap] = Event{
		Seq: c.seq, Proc: proc, Cluster: cluster,
		Write: write, Addr: addr, Time: now, Class: acc.Class,
	}
	c.seq++

	if now < c.lastPE[proc] {
		c.violate(fmt.Errorf("virtual time ran backwards on processor %d: %d after %d",
			proc, now, c.lastPE[proc]))
	}
	c.lastPE[proc] = now
	if c.global {
		if now < c.lastGlobal {
			c.violate(fmt.Errorf("global virtual time ran backwards: %d after %d (processor %d)",
				now, c.lastGlobal, proc))
		}
		c.lastGlobal = now
	}

	// Hits and merges change no protocol state; spot-check only the
	// transactions that moved directory or cache state.
	switch acc.Class {
	case coherence.ReadMiss, coherence.WriteMiss, coherence.Upgrade:
		if err := c.sys.CheckLine(addr, now); err != nil {
			c.violate(err)
		}
	}
	if c.AuditEvery > 0 && c.seq%c.AuditEvery == 0 {
		if err := c.sys.CheckInvariants(now); err != nil {
			c.violate(err)
		}
	}
}

// Final runs the end-of-run full audit at the machine's final time.
func (c *Checker) Final(now Clock) {
	if err := c.sys.CheckInvariants(now); err != nil {
		c.violate(err)
	}
}
