package sanitizer_test

import (
	"strings"
	"testing"

	"clustersim/internal/cache"
	"clustersim/internal/coherence"
	"clustersim/internal/core"
	"clustersim/internal/memory"
	"clustersim/internal/sanitizer"
)

// newSystem builds a two-cluster shared-cache system with one mapped
// region for driving the checker directly.
func newSystem(t *testing.T) (*coherence.System, memory.Addr) {
	t.Helper()
	as, err := memory.New(4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := as.Alloc(1<<14, "data")
	sys, err := coherence.NewSystem(as, 2, 0, 64, coherence.DefaultLatencies(), cache.LRU)
	if err != nil {
		t.Fatal(err)
	}
	return sys, base
}

// TestCleanRun drives a sanitizer-enabled machine through a sharing
// pattern (including upgrades and cross-cluster invalidations) and
// expects zero violations.
func TestCleanRun(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Procs = 4
	cfg.ClusterSize = 2
	cfg.CacheKBPerProc = 4
	cfg.Sanitize = true
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := m.Alloc(1<<16, "grid")
	bar := m.NewBarrier()
	_, err = m.Run(func(p *core.Proc) {
		for i := 0; i < 200; i++ {
			a := data + uint64((i*7+p.ID()*3)%512)*64
			p.Read(a)
			if i%3 == 0 {
				p.Write(a)
			}
			p.Compute(2)
		}
		bar.Wait(p)
		// Everyone writes the same lines: upgrade/invalidation churn.
		for i := 0; i < 50; i++ {
			p.Write(data + uint64(i)*64)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	san := m.Sanitizer()
	if san == nil {
		t.Fatal("Sanitize set but no checker attached")
	}
	if n := san.Violations(); n != 0 {
		t.Errorf("clean run produced %d violations", n)
	}
	if san.Transactions() == 0 {
		t.Error("checker saw no transactions")
	}
}

// TestMachineWithoutSanitizer checks the accessor stays nil when the
// config gate is off.
func TestMachineWithoutSanitizer(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Procs = 2
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sanitizer() != nil {
		t.Error("sanitizer attached without Config.Sanitize")
	}
}

// TestValidateRejectsQuantum pins the config gate: the sanitizer's
// global-monotonicity invariant only holds under exact event ordering.
func TestValidateRejectsQuantum(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Sanitize = true
	cfg.Quantum = 100
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted Sanitize with Quantum > 0")
	}
	cfg.Quantum = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate rejected Sanitize with Quantum 0: %v", err)
	}
}

// TestMonotonicityViolation feeds the checker a time that runs
// backwards and expects both the per-processor and the global invariant
// to fire.
func TestMonotonicityViolation(t *testing.T) {
	sys, base := newSystem(t)
	c := sanitizer.New(sys, 2, true)
	var got []sanitizer.Violation
	c.OnViolation = func(v sanitizer.Violation) { got = append(got, v) }

	acc := coherence.Access{Class: coherence.Hit} // Hit skips the line check
	c.OnAccess(0, 0, false, base, 10, acc)
	c.OnAccess(0, 0, false, base, 5, acc)
	if len(got) != 2 {
		t.Fatalf("expected per-PE and global violations, got %d: %v", len(got), got)
	}
	if !strings.Contains(got[0].Error(), "processor 0") {
		t.Errorf("violation does not name the processor: %v", got[0])
	}
	if len(got[0].Dump) != 2 {
		t.Errorf("replay dump has %d events, want 2", len(got[0].Dump))
	}
}

// TestGlobalMonotonicityAcrossPEs checks the machine-wide ordering: a
// different processor issuing at an earlier time is a violation only
// when global checking is on.
func TestGlobalMonotonicityAcrossPEs(t *testing.T) {
	sys, base := newSystem(t)
	acc := coherence.Access{Class: coherence.Hit}
	for _, global := range []bool{true, false} {
		c := sanitizer.New(sys, 2, global)
		n := 0
		c.OnViolation = func(sanitizer.Violation) { n++ }
		c.OnAccess(0, 0, false, base, 10, acc)
		c.OnAccess(1, 1, false, base, 5, acc) // fine per-PE, backwards globally
		want := 0
		if global {
			want = 1
		}
		if n != want {
			t.Errorf("global=%v: %d violations, want %d", global, n, want)
		}
	}
}

// TestDirectoryCorruption plants a stale sharer bit and expects the
// per-line cross-validation to catch it on the next state-changing
// transaction.
func TestDirectoryCorruption(t *testing.T) {
	sys, base := newSystem(t)
	c := sanitizer.New(sys, 2, true)
	var got []sanitizer.Violation
	c.OnViolation = func(v sanitizer.Violation) { got = append(got, v) }

	acc := sys.Read(0, 0, base, 1)
	c.OnAccess(0, 0, false, base, 1, acc)
	if len(got) != 0 {
		t.Fatalf("healthy read flagged: %v", got)
	}
	// Corrupt: claim cluster 1 shares the line although nothing is cached.
	sys.Directory().AddSharer(sys.LineOf(base), 1)
	acc2 := sys.Read(0, 0, base+8, 2) // same line: a merge, so force the class
	acc2.Class = coherence.ReadMiss
	c.OnAccess(0, 0, false, base+8, 2, acc2)
	if len(got) != 1 {
		t.Fatalf("stale sharer bit not caught: %d violations", len(got))
	}
	if !strings.Contains(got[0].Error(), "replay") {
		t.Errorf("violation lacks the replay dump: %v", got[0])
	}
}

// TestFinalAudit checks the end-of-run audit catches corruption that no
// later transaction would touch.
func TestFinalAudit(t *testing.T) {
	sys, base := newSystem(t)
	c := sanitizer.New(sys, 2, true)
	n := 0
	c.OnViolation = func(sanitizer.Violation) { n++ }

	acc := sys.Write(0, 0, base, 1)
	c.OnAccess(0, 0, true, base, 1, acc)
	sys.Directory().AddSharer(sys.LineOf(base)+1, 1) // orphan directory entry
	c.Final(10)
	if n != 1 {
		t.Errorf("final audit missed the orphan entry: %d violations", n)
	}
}

// TestDefaultPanics checks the default handler is fatal and carries the
// replay dump in the panic message.
func TestDefaultPanics(t *testing.T) {
	sys, base := newSystem(t)
	c := sanitizer.New(sys, 1, true)
	acc := coherence.Access{Class: coherence.Hit}
	c.OnAccess(0, 0, false, base, 10, acc)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic on violation")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "replay") {
			t.Errorf("panic message lacks replay dump: %v", r)
		}
	}()
	c.OnAccess(0, 0, false, base, 5, acc)
}
