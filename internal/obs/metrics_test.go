package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs.", L("state", "done"))
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %v, want 3", got)
	}

	g := r.Gauge("depth", "Depth.")
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Errorf("gauge = %v, want 3", got)
	}

	h := r.Histogram("cost_seconds", "Cost.", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50) // +Inf bucket only
	if got := h.Count(); got != 3 {
		t.Errorf("histogram count = %d, want 3", got)
	}
}

// Registration is idempotent and label order does not matter: the same
// (name, label set) always resolves to the same series.
func TestSeriesIdentityIgnoresLabelOrder(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "X.", L("a", "1"), L("b", "2"))
	b := r.Counter("x_total", "X.", L("b", "2"), L("a", "1"))
	a.Inc()
	if got := b.Value(); got != 1 {
		t.Errorf("label-reordered handle sees %v, want 1 (same series)", got)
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	mustPanic("invalid metric name", func() { r.Counter("0bad", "") })
	mustPanic("invalid label name", func() { r.Counter("ok_total", "", L("0bad", "v")) })
	mustPanic("duplicate label", func() { r.Counter("ok_total", "", L("a", "1"), L("a", "2")) })
	r.Counter("kind_total", "")
	mustPanic("kind conflict", func() { r.Gauge("kind_total", "") })
	mustPanic("counter decrease", func() { r.Counter("down_total", "").Add(-1) })
	mustPanic("unsorted histogram bounds", func() { r.Histogram("h", "", []float64{2, 1}) })
}

// The exposition is deterministic and byte-exact: families sorted by
// name, series by key-sorted label signature, histograms cumulative.
// This is the golden render the /metrics endpoint serves.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("sweep_points_total", "Points by outcome.", L("state", "done")).Add(3)
	r.Counter("sweep_points_total", "Points by outcome.", L("state", "failed"))
	r.Gauge("sweep_running", "Running now.").Set(2)
	h := r.Histogram("point_seconds", "Point cost.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(7)
	r.Counter("esc_total", "Escapes.", L("msg", "a\"b\\c\nd")).Inc()

	const want = `# HELP esc_total Escapes.
# TYPE esc_total counter
esc_total{msg="a\"b\\c\nd"} 1
# HELP point_seconds Point cost.
# TYPE point_seconds histogram
point_seconds_bucket{le="0.1"} 1
point_seconds_bucket{le="1"} 2
point_seconds_bucket{le="+Inf"} 3
point_seconds_sum 7.55
point_seconds_count 3
# HELP sweep_points_total Points by outcome.
# TYPE sweep_points_total counter
sweep_points_total{state="done"} 3
sweep_points_total{state="failed"} 0
# HELP sweep_running Running now.
# TYPE sweep_running gauge
sweep_running 2
`
	var one, two bytes.Buffer
	if err := r.WritePrometheus(&one); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", one.String(), want)
	}
	if one.String() != two.String() {
		t.Error("two renders of the same registry differ")
	}
}

// Everything WritePrometheus emits must satisfy our own validator, and
// the validator must reject the classic malformations.
func TestParseExpositionRoundTripAndRejects(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.", L("k", "v")).Inc()
	r.Histogram("h_seconds", "H.", []float64{1}).Observe(2)
	var expo bytes.Buffer
	if err := r.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	st, err := ParseExposition(bytes.NewReader(expo.Bytes()))
	if err != nil {
		t.Fatalf("own render rejected: %v\n%s", err, expo.String())
	}
	if st.Families != 2 || st.Series != 5 {
		t.Errorf("stats = %+v, want 2 families, 5 series", st)
	}

	bad := map[string]string{
		"empty":            "",
		"comments only":    "# HELP x y\n",
		"bad type":         "# TYPE x frobnogram\nx 1\n",
		"bad name":         "0bad 1\n",
		"bad value":        "x not-a-number\n",
		"unterminated":     `x{k="v 1` + "\n",
		"missing equals":   "x{k} 1\n",
		"unquoted value":   "x{k=v} 1\n",
		"bad timestamp":    "x 1 soon\n",
		"trailing garbage": "x 1 2 3\n",
	}
	for name, doc := range bad {
		if _, err := ParseExposition(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted %q", name, doc)
		}
	}

	// The specials and timestamps are legal.
	ok := "x +Inf\ny -Inf 1700000000000\nz NaN\nw{} 1\n"
	if _, err := ParseExposition(strings.NewReader(ok)); err != nil {
		t.Errorf("legal document rejected: %v", err)
	}
}

// TestParseExpositionRejectsDuplicateSeries pins the series-identity
// contract the metrics federation relies on: a series is identified by
// its name plus the KEY-SORTED label signature, so two samples whose
// labels differ only in order are the same series and must be rejected
// as duplicates.
func TestParseExpositionRejectsDuplicateSeries(t *testing.T) {
	dup := "m{a=\"1\",b=\"2\"} 1\nm{b=\"2\",a=\"1\"} 2\n"
	if _, err := ParseExposition(strings.NewReader(dup)); err == nil {
		t.Errorf("reordered-label duplicate accepted: %q", dup)
	} else if !strings.Contains(err.Error(), "duplicate series") {
		t.Errorf("error = %v, want it to name the duplicate series", err)
	}

	exact := "m{a=\"1\"} 1\nm{a=\"1\"} 2\n"
	if _, err := ParseExposition(strings.NewReader(exact)); err == nil {
		t.Errorf("exact duplicate accepted: %q", exact)
	}

	// Distinct label VALUES are distinct series; so are bare vs labelled.
	ok := "m{a=\"1\",b=\"2\"} 1\nm{a=\"2\",b=\"1\"} 2\nn 1\nn_total{x=\"y\"} 2\n"
	if _, err := ParseExposition(strings.NewReader(ok)); err != nil {
		t.Errorf("distinct series rejected: %v", err)
	}

	// A duplicated TYPE declaration is a malformation too.
	dupType := "# TYPE m counter\nm 1\n# TYPE m counter\n"
	if _, err := ParseExposition(strings.NewReader(dupType)); err == nil {
		t.Errorf("duplicate TYPE accepted: %q", dupType)
	}
}
