package obs

import (
	"fmt"
	"sync"
	"time"

	"clustersim/internal/perf"
)

// StatusSchemaV1 identifies the GET /status document (documented in
// EXPERIMENTS.md).
const StatusSchemaV1 = "clustersim/status/v1"

// PointState is the lifecycle of one sweep point as /status reports it.
type PointState string

const (
	PointPending  PointState = "pending"
	PointRunning  PointState = "running"
	PointDone     PointState = "done"
	PointFailed   PointState = "failed"
	PointReplayed PointState = "replayed"
)

// wallBuckets are the point wall-cost histogram bounds in seconds:
// point costs span orders of magnitude (MP3D vs Barnes), so the grid
// is exponential.
var wallBuckets = []float64{0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100, 300, 1000}

// Sweep tracks one sweep's live state for the observability plane: the
// per-point state machine behind GET /status, the sweep-level series
// in the metrics registry, and the structured events in the run-event
// log. Registry and log are both optional (nil disables that output),
// and a nil *Sweep disables the whole plane, so the experiments suite
// calls these hooks unconditionally.
//
// Everything here is wall-clock-side harness state: the only
// simulation-derived inputs are finished Results' exec times, passed
// in by value. Sweep is a member of the simlint readonly observer set.
type Sweep struct {
	mu      sync.Mutex
	run     string
	args    string
	procs   int
	size    string
	started time.Time
	now     func() time.Time

	points map[string]*PointStatus
	order  []string

	journalHits   int
	journalMisses int
	interrupted   bool
	finished      bool
	failedExps    int

	eta *ETA
	log *Log

	reg            *Registry
	cRunning       *Gauge
	cDone          *Counter
	cFailed        *Counter
	cReplayed      *Counter
	cJournalHits   *Counter
	cJournalMisses *Counter
	cVirtCycles    *Counter
	hWall          *Histogram
}

// PointStatus is one point's row in the /status document.
type PointStatus struct {
	Point      string     `json:"point"`
	App        string     `json:"app"`
	Cluster    int        `json:"cluster"`
	Cache      string     `json:"cache"`
	State      PointState `json:"state"`
	WallMS     int64      `json:"wallMs,omitempty"`
	VirtCycles int64      `json:"virtCycles,omitempty"`
	Error      string     `json:"error,omitempty"`
}

// JournalStats is the journal cache-hit split of the /status document.
type JournalStats struct {
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
}

// HostStatus is the /status host block: static identity plus the live
// runtime gauges at render time.
type HostStatus struct {
	perf.Host
	HeapBytes  uint64 `json:"heapBytes"`
	Goroutines int    `json:"goroutines"`
}

// PointCounts tallies points by state.
type PointCounts struct {
	Pending  int `json:"pending"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Replayed int `json:"replayed"`
}

// StatusDoc is the GET /status response (schema clustersim/status/v1).
type StatusDoc struct {
	Schema        string        `json:"schema"`
	Run           string        `json:"run"`
	Args          string        `json:"args,omitempty"`
	Procs         int           `json:"procs,omitempty"`
	Size          string        `json:"size,omitempty"`
	State         string        `json:"state"` // running | done | failed | interrupted
	StartedUnixMS int64         `json:"startedUnixMs"`
	Counts        PointCounts   `json:"counts"`
	Journal       JournalStats  `json:"journal"`
	ETA           Estimate      `json:"eta"`
	Host          HostStatus    `json:"host"`
	Points        []PointStatus `json:"points"`
}

// NewSweep creates a tracker labelled run, feeding the registry and
// event log (either may be nil).
func NewSweep(run string, reg *Registry, log *Log) *Sweep {
	// Harness wall clock: sweep timing is host-side reporting only.
	return NewSweepAt(run, reg, log, func() time.Time { return time.Now() }) //simlint:allow wallclock
}

// NewSweepAt injects the clock (tests use a fake).
func NewSweepAt(run string, reg *Registry, log *Log, now func() time.Time) *Sweep {
	s := &Sweep{
		run:    run,
		now:    now,
		points: make(map[string]*PointStatus),
		eta:    NewETAAt(now),
		log:    log,
		reg:    reg,
	}
	s.started = now()
	if reg != nil {
		s.cRunning = reg.Gauge("clustersim_sweep_points_running", "Points simulating right now.")
		s.cDone = reg.Counter("clustersim_sweep_points_total", "Points finished, by outcome.", L("state", "done"))
		s.cFailed = reg.Counter("clustersim_sweep_points_total", "Points finished, by outcome.", L("state", "failed"))
		s.cReplayed = reg.Counter("clustersim_sweep_points_total", "Points finished, by outcome.", L("state", "replayed"))
		s.cJournalHits = reg.Counter("clustersim_sweep_journal_lookups_total", "Journal lookups, by outcome.", L("outcome", "hit"))
		s.cJournalMisses = reg.Counter("clustersim_sweep_journal_lookups_total", "Journal lookups, by outcome.", L("outcome", "miss"))
		s.cVirtCycles = reg.Counter("clustersim_sweep_virtual_cycles_total", "Simulated cycles accumulated over finished points.")
		s.hWall = reg.Histogram("clustersim_point_wall_seconds", "Wall-clock cost of freshly computed points.", wallBuckets)
	}
	log.Emit(Event{Kind: EventSweepStart, Run: run})
	return s
}

// SetIdentity records what the sweep is (the requested experiments,
// machine size and problem size) for the /status header.
func (s *Sweep) SetIdentity(args string, procs int, size string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.args, s.procs, s.size = args, procs, size
	s.mu.Unlock()
}

// SetTotalPoints declares the sweep's expected point count for the ETA
// model, when the caller knows it up front.
func (s *Sweep) SetTotalPoints(n int) {
	if s == nil {
		return
	}
	s.eta.SetTotal(n)
}

// Log returns the attached event log (nil-safe), so the process can
// route additional events through the sweep's stream.
func (s *Sweep) Log() *Log {
	if s == nil {
		return nil
	}
	return s.log
}

// point finds or creates a point row.
func (s *Sweep) point(name, app string, cluster int, cache string) *PointStatus {
	p := s.points[name]
	if p == nil {
		p = &PointStatus{Point: name, App: app, Cluster: cluster, Cache: cache, State: PointPending}
		s.points[name] = p
		s.order = append(s.order, name)
		s.eta.Saw()
	}
	return p
}

// PointStarted marks a point as simulating now.
func (s *Sweep) PointStarted(name, app string, cluster int, cache string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	p := s.point(name, app, cluster, cache)
	p.State = PointRunning
	s.mu.Unlock()
	if s.cRunning != nil {
		s.cRunning.Add(1)
	}
	s.log.Emit(Event{Kind: EventPointStart, Span: SpanBegin, Point: name, App: app, Cluster: cluster, Cache: cache})
}

// PointDone marks a freshly computed point finished. Idempotent per
// point: in a distributed sweep a stolen point can complete on two
// workers, and the byte-identical duplicate is delivered again — the
// second completion must not count twice toward the counters or the
// ETA's completed-cost mean (pinned by
// TestSweepDuplicateCompletionCountsOnce).
func (s *Sweep) PointDone(name string, wall time.Duration, virtCycles int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	p := s.points[name]
	if p == nil || p.State == PointDone {
		s.mu.Unlock()
		return
	}
	p.State = PointDone
	p.WallMS = wall.Milliseconds()
	p.VirtCycles = virtCycles
	app, cluster, cache := p.App, p.Cluster, p.Cache
	s.mu.Unlock()
	s.eta.Completed(wall)
	if s.reg != nil {
		s.cRunning.Add(-1)
		s.cDone.Inc()
		s.cVirtCycles.Add(float64(virtCycles))
		s.hWall.Observe(wall.Seconds())
	}
	s.log.Emit(Event{Kind: EventPointDone, Span: SpanEnd, Point: name, App: app, Cluster: cluster, Cache: cache,
		VirtCycles: virtCycles, DurNS: int64(wall)})
}

// PointReplayed marks a point served from the journal (a cache hit —
// no simulation work).
func (s *Sweep) PointReplayed(name, app string, cluster int, cache string, virtCycles int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	p := s.point(name, app, cluster, cache)
	p.State = PointReplayed
	p.VirtCycles = virtCycles
	s.journalHits++
	s.mu.Unlock()
	s.eta.CompletedFree()
	if s.reg != nil {
		s.cReplayed.Inc()
		s.cJournalHits.Inc()
		s.cVirtCycles.Add(float64(virtCycles))
	}
	s.log.Emit(Event{Kind: EventPointReplay, Point: name, App: app, Cluster: cluster, Cache: cache, VirtCycles: virtCycles})
}

// JournalMiss records a journal lookup that found nothing (the point
// will simulate).
func (s *Sweep) JournalMiss() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.journalMisses++
	s.mu.Unlock()
	if s.cJournalMisses != nil {
		s.cJournalMisses.Inc()
	}
}

// PointFailed marks a running point failed (panic, engine error, or a
// journalled failure surfacing on replay).
func (s *Sweep) PointFailed(name, app string, cluster int, cache string, errMsg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	p := s.point(name, app, cluster, cache)
	wasRunning := p.State == PointRunning
	p.State = PointFailed
	p.Error = errMsg
	s.mu.Unlock()
	s.eta.CompletedFree()
	if s.reg != nil {
		if wasRunning {
			s.cRunning.Add(-1)
		}
		s.cFailed.Inc()
	}
	span := ""
	if wasRunning {
		span = SpanEnd
	}
	s.log.Emit(Event{Kind: EventPointFail, Span: span, Point: name, App: app, Cluster: cluster, Cache: cache, Error: errMsg})
}

// PointTimeout records the watchdog firing on a wedged point; the
// process exits right after, so this is the last event of the log.
func (s *Sweep) PointTimeout(name string, budget time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if p := s.points[name]; p != nil {
		p.State = PointFailed
		p.Error = "watchdog timeout"
	}
	s.mu.Unlock()
	s.log.Emit(Event{Kind: EventWatchdog, Span: SpanEnd, Point: name, DurNS: int64(budget),
		Error: "point exceeded the wall-clock budget"})
}

// Interrupted records a cooperative stop (SIGINT/SIGTERM or
// -stop-after) between points.
func (s *Sweep) Interrupted() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.interrupted = true
	s.mu.Unlock()
	s.log.Emit(Event{Kind: EventSignalStop, Detail: "suite stopped between points; completed work flushed"})
}

// Finish records the end of the sweep; failedExperiments is how many
// requested experiments returned errors.
func (s *Sweep) Finish(failedExperiments int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.finished = true
	s.failedExps = failedExperiments
	summary := formatSummary(s.statusLocked().Counts)
	s.mu.Unlock()
	s.log.Emit(Event{Kind: EventSweepDone, Detail: summary})
}

// formatSummary is the one-line replayed-vs-computed split carried by
// the sweep-done event (the CLI prints its own from suite counters).
func formatSummary(c PointCounts) string {
	return fmt.Sprintf("%d points computed, %d replayed from journal, %d failed",
		c.Done, c.Replayed, c.Failed)
}

// Status renders the current /status document. The host block reads
// the live runtime gauges at call time.
func (s *Sweep) Status() *StatusDoc {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statusLocked()
}

func (s *Sweep) statusLocked() *StatusDoc {
	doc := &StatusDoc{
		Schema:        StatusSchemaV1,
		Run:           s.run,
		Args:          s.args,
		Procs:         s.procs,
		Size:          s.size,
		StartedUnixMS: s.started.UnixMilli(),
		Journal:       JournalStats{Hits: s.journalHits, Misses: s.journalMisses},
		ETA:           s.eta.Estimate(),
	}
	doc.Host.Host = perf.ReadHost()
	doc.Host.HeapBytes, doc.Host.Goroutines = perf.ReadHostGauges()
	for _, name := range s.order {
		p := *s.points[name]
		doc.Points = append(doc.Points, p)
		switch p.State {
		case PointPending:
			doc.Counts.Pending++
		case PointRunning:
			doc.Counts.Running++
		case PointDone:
			doc.Counts.Done++
		case PointFailed:
			doc.Counts.Failed++
		case PointReplayed:
			doc.Counts.Replayed++
		}
	}
	switch {
	case s.interrupted:
		doc.State = "interrupted"
	case s.finished && (s.failedExps > 0 || doc.Counts.Failed > 0):
		doc.State = "failed"
	case s.finished:
		doc.State = "done"
	default:
		doc.State = "running"
	}
	return doc
}
