package obs

import (
	"testing"
	"time"
)

// The ETA model under a fake clock: mean completed cost times the
// outstanding count, with replays and failures advancing completion
// for free.
func TestETACompletedCostModel(t *testing.T) {
	now := time.Unix(0, 0)
	e := NewETAAt(func() time.Time { return now })
	e.SetTotal(10)

	// Nothing computed yet: elapsed only, no projection.
	now = now.Add(5 * time.Second)
	est := e.Estimate()
	if est.HaveRemaining || est.ElapsedMS != 5000 || est.TotalPoints != 10 {
		t.Fatalf("pre-sample estimate = %+v", est)
	}

	e.Completed(2 * time.Second)
	e.Completed(4 * time.Second)
	est = e.Estimate()
	if !est.HaveRemaining || est.MeanPointMS != 3000 {
		t.Fatalf("mean = %+v, want 3000ms", est)
	}
	if est.RemainingMS != 8*3000 {
		t.Errorf("remaining = %dms, want 8 points x 3000ms", est.RemainingMS)
	}

	// A replay completes a point without contributing a cost sample.
	e.CompletedFree()
	est = e.Estimate()
	if est.MeanPointMS != 3000 || est.RemainingMS != 7*3000 || est.DonePoints != 3 {
		t.Errorf("after free completion: %+v", est)
	}
}

// Points discovered beyond the declared total grow the total instead of
// producing a negative remaining count.
func TestETATotalGrowsWithSightings(t *testing.T) {
	now := time.Unix(0, 0)
	e := NewETAAt(func() time.Time { return now })
	e.SetTotal(1)
	for i := 0; i < 3; i++ {
		e.Saw()
		e.Completed(time.Second)
	}
	est := e.Estimate()
	if est.TotalPoints != 3 || est.RemainingMS != 0 {
		t.Errorf("estimate = %+v, want total grown to 3 and nothing remaining", est)
	}
}
