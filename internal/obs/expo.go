package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ExpositionContentType is the Content-Type of GET /metrics: the
// Prometheus text exposition format, version 0.0.4.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the registry in the text exposition format:
// families sorted by name, series sorted by their key-sorted label
// signature, histograms as cumulative _bucket/_sum/_count triples. Two
// renders of the same registry state are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, fam := range r.snapshot() {
		if fam.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", fam.name, escapeHelp(fam.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam.name, fam.kind)
		for _, s := range fam.series {
			switch fam.kind {
			case kindHistogram:
				writeHistogram(bw, fam.name, s)
			default:
				fmt.Fprintf(bw, "%s%s %s\n", fam.name, s.sig, formatValue(s.val))
			}
		}
	}
	return bw.Flush()
}

// writeHistogram emits the cumulative bucket series, sum and count of
// one histogram series. The le label joins the series' own labels
// inside one brace set.
func writeHistogram(w io.Writer, name string, s seriesSnap) {
	for i, bound := range s.bounds {
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(s.sig, "le", formatValue(bound)), s.cum[i])
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(s.sig, "le", "+Inf"), s.count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, s.sig, formatValue(s.sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, s.sig, s.count)
}

// withLabel appends key="value" to a rendered label signature.
func withLabel(sig, key, value string) string {
	extra := key + `="` + escapeLabelValue(value) + `"`
	if sig == "" {
		return "{" + extra + "}"
	}
	return sig[:len(sig)-1] + "," + extra + "}"
}

// formatValue renders a sample value the way Prometheus expects:
// shortest exact decimal, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp applies the HELP-line escapes (backslash and newline; the
// format leaves quotes alone in help text).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ExpositionStats summarises one parsed exposition document.
type ExpositionStats struct {
	Families int // # TYPE lines
	Series   int // sample lines
}

// ParseExposition validates a text exposition document (format 0.0.4):
// every sample line must parse (name, optional label set, float value,
// optional timestamp), TYPE lines must name a known metric kind, and
// sample names must be well-formed. It returns how many families and
// sample lines the document holds. This is the validator behind
// `tracetool metrics` and the CI observability smoke test — it is a
// format check, not a full Prometheus client.
func ParseExposition(r io.Reader) (ExpositionStats, error) {
	var stats ExpositionStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseCommentLine(line)
			if !ok {
				continue // free-form comment
			}
			if kind == "TYPE" {
				switch rest {
				case kindCounter, kindGauge, kindHistogram, "summary", "untyped":
				default:
					return stats, fmt.Errorf("line %d: unknown metric type %q", lineNo, rest)
				}
				if !validName(name) {
					return stats, fmt.Errorf("line %d: invalid metric name %q in TYPE", lineNo, name)
				}
				stats.Families++
			}
			continue
		}
		if err := parseSampleLine(line); err != nil {
			return stats, fmt.Errorf("line %d: %v", lineNo, err)
		}
		stats.Series++
	}
	if err := sc.Err(); err != nil {
		return stats, err
	}
	if stats.Series == 0 {
		return stats, fmt.Errorf("no sample lines")
	}
	return stats, nil
}

// parseCommentLine splits "# HELP name text" / "# TYPE name kind";
// ok is false for any other comment.
func parseCommentLine(line string) (kind, name, rest string, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", false
	}
	if fields[1] != "HELP" && fields[1] != "TYPE" {
		return "", "", "", false
	}
	return fields[1], fields[2], strings.Join(fields[3:], " "), true
}

// parseSampleLine validates one sample: name[{labels}] value [timestamp].
func parseSampleLine(line string) error {
	rest := line
	i := strings.IndexAny(rest, "{ \t")
	if i < 0 {
		return fmt.Errorf("sample %q has no value", line)
	}
	name := rest[:i]
	if !validName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end, err := scanLabels(rest)
		if err != nil {
			return err
		}
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("sample %q: want value [timestamp], got %q", line, rest)
	}
	if _, err := parseSampleValue(fields[0]); err != nil {
		return fmt.Errorf("sample %q: bad value %q", line, fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("sample %q: bad timestamp %q", line, fields[1])
		}
	}
	return nil
}

// parseSampleValue accepts floats plus the spelled-out specials.
func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// scanLabels validates a {k="v",...} label block starting at s[0]=='{'
// and returns the index just past the closing brace.
func scanLabels(s string) (int, error) {
	i := 1
	for {
		// allow {} and trailing comma forms
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(s) && s[i] != '=' && s[i] != '}' && s[i] != ',' {
			i++
		}
		if i >= len(s) || s[i] != '=' {
			return 0, fmt.Errorf("label block %q: missing '='", s)
		}
		if !validName(strings.TrimSpace(s[start:i])) {
			return 0, fmt.Errorf("label block %q: invalid label name %q", s, s[start:i])
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label block %q: value not quoted", s)
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("label block %q: unterminated value", s)
		}
		i++ // closing quote
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}
