package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ExpositionContentType is the Content-Type of GET /metrics: the
// Prometheus text exposition format, version 0.0.4.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the registry in the text exposition format:
// families sorted by name, series sorted by their key-sorted label
// signature, histograms as cumulative _bucket/_sum/_count triples. Two
// renders of the same registry state are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, fam := range r.snapshot() {
		if fam.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", fam.name, escapeHelp(fam.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam.name, fam.kind)
		for _, s := range fam.series {
			switch fam.kind {
			case kindHistogram:
				writeHistogram(bw, fam.name, s)
			default:
				fmt.Fprintf(bw, "%s%s %s\n", fam.name, s.sig, FormatValue(s.val))
			}
		}
	}
	return bw.Flush()
}

// writeHistogram emits the cumulative bucket series, sum and count of
// one histogram series. The le label joins the series' own labels
// inside one brace set.
func writeHistogram(w io.Writer, name string, s seriesSnap) {
	for i, bound := range s.bounds {
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(s.sig, "le", FormatValue(bound)), s.cum[i])
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(s.sig, "le", "+Inf"), s.count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, s.sig, FormatValue(s.sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, s.sig, s.count)
}

// withLabel appends key="value" to a rendered label signature.
func withLabel(sig, key, value string) string {
	extra := key + `="` + escapeLabelValue(value) + `"`
	if sig == "" {
		return "{" + extra + "}"
	}
	return sig[:len(sig)-1] + "," + extra + "}"
}

// FormatValue renders a sample value the way Prometheus expects:
// shortest exact decimal, +Inf/-Inf/NaN spelled out. Exported so the
// fleet federator re-renders parsed samples byte-compatibly.
func FormatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp applies the HELP-line escapes (backslash and newline; the
// format leaves quotes alone in help text).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ExpositionStats summarises one parsed exposition document.
type ExpositionStats struct {
	Families int // # TYPE lines
	Series   int // sample lines
}

// Sample is one parsed sample line: metric name, labels in document
// order, and the value. Timestamps are validated but not retained —
// nothing in this repo emits them.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// ExpoFamily groups the samples of one metric family. Histogram and
// summary component samples (_bucket/_sum/_count) file under their
// declared family. Typed records whether a # TYPE line declared the
// family (implicit families from bare samples are untyped).
type ExpoFamily struct {
	Name    string
	Kind    string // counter|gauge|histogram|summary|untyped
	Help    string
	Typed   bool
	Samples []Sample
}

// Exposition is a fully parsed text exposition document, families in
// document order. This is what the fleet federator merges.
type Exposition struct {
	Families []ExpoFamily
}

// Stats summarises the document the way ParseExposition reports it.
func (e *Exposition) Stats() ExpositionStats {
	var st ExpositionStats
	if e == nil {
		return st
	}
	for i := range e.Families {
		if e.Families[i].Typed {
			st.Families++
		}
		st.Series += len(e.Families[i].Samples)
	}
	return st
}

// Signature renders a label set in its canonical exposition form: keys
// sorted, values escaped. Two label sets with the same pairs in any
// order share a signature — this is the series-identity contract the
// registry, the duplicate-series check and the federator all agree on.
func Signature(labels []Label) string {
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	return signature(sorted)
}

// ParseExposition validates a text exposition document (format 0.0.4):
// every sample line must parse (name, optional label set, float value,
// optional timestamp), TYPE lines must name a known metric kind, sample
// names must be well-formed, and no two sample lines may address the
// same series — label order does not disambiguate, because series
// identity is the key-sorted signature. It returns how many families
// and sample lines the document holds. This is the validator behind
// `tracetool metrics` and the CI observability smoke test — it is a
// format check, not a full Prometheus client.
func ParseExposition(r io.Reader) (ExpositionStats, error) {
	doc, err := ReadExposition(r)
	return doc.Stats(), err
}

// ReadExposition parses a text exposition document into its families
// and samples, applying the same strict validation as ParseExposition.
// On error the partially parsed document is returned alongside it.
func ReadExposition(r io.Reader) (*Exposition, error) {
	doc := &Exposition{}
	byName := make(map[string]int) // family name -> index in doc.Families
	famFor := func(name string) *ExpoFamily {
		if i, ok := byName[name]; ok {
			return &doc.Families[i]
		}
		// _bucket/_sum/_count samples belong to their declared
		// histogram or summary family.
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base, ok := strings.CutSuffix(name, suffix)
			if !ok {
				continue
			}
			if i, ok := byName[base]; ok {
				if k := doc.Families[i].Kind; k == kindHistogram || k == "summary" {
					return &doc.Families[i]
				}
			}
		}
		byName[name] = len(doc.Families)
		doc.Families = append(doc.Families, ExpoFamily{Name: name, Kind: "untyped"})
		return &doc.Families[len(doc.Families)-1]
	}
	seen := make(map[string]bool) // name + key-sorted signature
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	nSamples := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseCommentLine(line)
			if !ok {
				continue // free-form comment
			}
			if !validName(name) {
				return doc, fmt.Errorf("line %d: invalid metric name %q in %s", lineNo, name, kind)
			}
			fam := famFor(name)
			if kind == "HELP" {
				if fam.Help == "" {
					fam.Help = rest
				}
				continue
			}
			switch rest {
			case kindCounter, kindGauge, kindHistogram, "summary", "untyped":
			default:
				return doc, fmt.Errorf("line %d: unknown metric type %q", lineNo, rest)
			}
			if fam.Typed {
				return doc, fmt.Errorf("line %d: duplicate TYPE for metric %q", lineNo, name)
			}
			fam.Kind = rest
			fam.Typed = true
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return doc, fmt.Errorf("line %d: %v", lineNo, err)
		}
		key := s.Name + Signature(s.Labels)
		if seen[key] {
			return doc, fmt.Errorf("line %d: duplicate series %s (series identity is the key-sorted label signature)", lineNo, key)
		}
		seen[key] = true
		fam := famFor(s.Name)
		fam.Samples = append(fam.Samples, s)
		nSamples++
	}
	if err := sc.Err(); err != nil {
		return doc, err
	}
	if nSamples == 0 {
		return doc, fmt.Errorf("no sample lines")
	}
	return doc, nil
}

// parseCommentLine splits "# HELP name text" / "# TYPE name kind";
// ok is false for any other comment.
func parseCommentLine(line string) (kind, name, rest string, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", false
	}
	if fields[1] != "HELP" && fields[1] != "TYPE" {
		return "", "", "", false
	}
	return fields[1], fields[2], strings.Join(fields[3:], " "), true
}

// parseSampleLine parses one sample: name[{labels}] value [timestamp].
func parseSampleLine(line string) (Sample, error) {
	var s Sample
	rest := line
	i := strings.IndexAny(rest, "{ \t")
	if i < 0 {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	s.Name = rest[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		labels, end, err := scanLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("sample %q: want value [timestamp], got %q", line, rest)
	}
	v, err := parseSampleValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value %q", line, fields[0])
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("sample %q: bad timestamp %q", line, fields[1])
		}
	}
	return s, nil
}

// parseSampleValue accepts floats plus the spelled-out specials.
func parseSampleValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// scanLabels parses a {k="v",...} label block starting at s[0]=='{',
// returning the labels in document order (values unescaped) and the
// index just past the closing brace.
func scanLabels(s string) ([]Label, int, error) {
	var labels []Label
	i := 1
	for {
		// allow {} and trailing comma forms
		if i < len(s) && s[i] == '}' {
			return labels, i + 1, nil
		}
		start := i
		for i < len(s) && s[i] != '=' && s[i] != '}' && s[i] != ',' {
			i++
		}
		if i >= len(s) || s[i] != '=' {
			return nil, 0, fmt.Errorf("label block %q: missing '='", s)
		}
		key := strings.TrimSpace(s[start:i])
		if !validName(key) {
			return nil, 0, fmt.Errorf("label block %q: invalid label name %q", s, s[start:i])
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return nil, 0, fmt.Errorf("label block %q: value not quoted", s)
		}
		i++
		var val strings.Builder
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default: // \\ and \" unescape to themselves
					val.WriteByte(s[i])
				}
				i++
				continue
			}
			val.WriteByte(s[i])
			i++
		}
		if i >= len(s) {
			return nil, 0, fmt.Errorf("label block %q: unterminated value", s)
		}
		i++ // closing quote
		labels = append(labels, Label{Key: key, Value: val.String()})
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}
