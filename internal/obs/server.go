package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"
)

// Server is the embeddable observability endpoint: mount Handler() on
// any listener (the CLIs' -serve flag, or the future clusterd daemon
// unchanged). All endpoints are read-only GETs over wall-clock-side
// state; nothing here can reach the simulation.
//
//	GET /         endpoint index (text)
//	GET /metrics  Prometheus text exposition format 0.0.4
//	GET /status   StatusDoc JSON (schema clustersim/status/v1)
//	GET /events   JSONL tail of the run-event log; ?point= filters,
//	              ?follow=1 streams live events until the client leaves
//	GET /debug/pprof/...  the standard Go profiling endpoints
type Server struct {
	reg   *Registry
	sweep *Sweep
	log   *Log
	extra []extraRoute
	// done is closed when a graceful Shutdown begins. The ?follow=1
	// streams select on it: without this signal they would end only when
	// their client hangs up, and http.Server.Shutdown would wait out its
	// whole deadline on every attached follower.
	done chan struct{}
}

// extraRoute is one endpoint mounted via Handle, kept in registration
// order so the index and the mux are deterministic.
type extraRoute struct {
	pattern string // mux pattern, e.g. "GET /fleet"
	note    string // one-line index description
	h       http.Handler
}

// Handle mounts an additional read-only endpoint on the server (the
// fleet view uses this for /fleet and /fleet/trace). Must be called
// before Handler()/Start(); note is the one-line description shown on
// the index page.
func (s *Server) Handle(pattern, note string, h http.Handler) {
	s.extra = append(s.extra, extraRoute{pattern: pattern, note: note, h: h})
}

// NewServer builds a server over the given sources; any of them may be
// nil (the corresponding endpoint then serves an empty document).
func NewServer(reg *Registry, sweep *Sweep, log *Log) *Server {
	return &Server{reg: reg, sweep: sweep, log: log, done: make(chan struct{})}
}

// Handler returns the endpoint mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleIndex)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("GET /events", s.handleEvents)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	for _, r := range s.extra {
		mux.Handle(r.pattern, r.h)
	}
	return mux
}

func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `clustersim live observability
  /metrics       Prometheus text exposition (0.0.4)
  /status        sweep status JSON (clustersim/status/v1)
  /events        run-event tail (JSONL; ?point=NAME, ?follow=1)
  /debug/pprof/  Go profiling endpoints
`)
	for _, r := range s.extra {
		path := strings.TrimPrefix(r.pattern, "GET ")
		fmt.Fprintf(w, "  %-14s %s\n", path, r.note)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", ExpositionContentType)
	if s.reg == nil {
		return
	}
	s.reg.WritePrometheus(w)
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	doc := s.sweep.Status()
	if doc == nil {
		doc = &StatusDoc{Schema: StatusSchemaV1, State: "idle"}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	point := r.URL.Query().Get("point")
	follow := r.URL.Query().Get("follow") != ""
	enc := json.NewEncoder(w)
	emit := func(e Event) bool {
		if point != "" && e.Point != point {
			return true
		}
		return enc.Encode(e) == nil
	}
	// Subscribe before replaying the ring so no event falls between the
	// two; followers tolerate the (bounded) duplicate window instead.
	var live <-chan Event
	var cancel func()
	if follow {
		live, cancel = s.log.Subscribe()
		defer cancel()
	}
	lastSeq := uint64(0)
	for _, e := range s.log.Recent() {
		if !emit(e) {
			return
		}
		lastSeq = e.Seq
	}
	if !follow {
		return
	}
	fl, _ := w.(http.Flusher)
	if fl != nil {
		fl.Flush()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			// Graceful shutdown: end the stream at a record boundary so
			// the follower sees a clean EOF, not a severed connection.
			return
		case e, ok := <-live:
			if !ok {
				return
			}
			if e.Seq <= lastSeq {
				continue // ring/subscription overlap
			}
			if !emit(e) {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
	}
}

// Running is one bound, serving listener.
type Running struct {
	srv   *http.Server
	ln    net.Listener
	drain func() // signals follow streams that shutdown has begun
}

// Addr is the bound address (resolves ":0" to the real port).
func (r *Running) Addr() string { return r.ln.Addr().String() }

// URL is the http:// form of Addr.
func (r *Running) URL() string {
	host, port, err := net.SplitHostPort(r.Addr())
	if err != nil {
		return "http://" + r.Addr()
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// Close stops serving immediately, severing in-flight responses. Use
// Shutdown for the clean path; Close remains the hard stop.
func (r *Running) Close() error {
	r.drain()
	return r.srv.Close()
}

// Shutdown stops serving gracefully: the listener closes, attached
// /events?follow=1 streams are told to end at a record boundary, and
// in-flight handlers get until the deadline to finish before the
// remaining connections are severed. Safe to call more than once.
func (r *Running) Shutdown(timeout time.Duration) error {
	r.drain()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return r.srv.Shutdown(ctx)
}

// Start binds addr and serves the endpoints in the background until
// Close. The returned Running reports the resolved address, so ":0"
// works for tests and port-agnostic scripts.
func (s *Server) Start(addr string) (*Running, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler: s.Handler(),
		// Write timeouts would sever ?follow streams; rely on request
		// context cancellation instead and bound only header reads.
		ReadHeaderTimeout: 5 * time.Second,
	}
	// Harness-level HTTP serving, strictly outside the simulation: the
	// engine's token discipline governs simulation goroutines only, and
	// nothing reachable from a handler mutates simulated state (obs is
	// in the simlint readonly observer set).
	go srv.Serve(ln) //simlint:allow goroutine
	var once sync.Once
	drain := func() { once.Do(func() { close(s.done) }) }
	return &Running{srv: srv, ln: ln, drain: drain}, nil
}
