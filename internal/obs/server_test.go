package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, h http.Handler, target string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
	return rec
}

func TestServerMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_total", "Demo.").Add(7)
	h := NewServer(reg, nil, nil).Handler()

	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != ExpositionContentType {
		t.Errorf("content type %q, want %q", ct, ExpositionContentType)
	}
	st, err := ParseExposition(strings.NewReader(rec.Body.String()))
	if err != nil {
		t.Fatalf("served exposition invalid: %v\n%s", err, rec.Body.String())
	}
	if st.Families != 1 || st.Series != 1 {
		t.Errorf("stats %+v", st)
	}
	if !strings.Contains(rec.Body.String(), "demo_total 7") {
		t.Errorf("body:\n%s", rec.Body.String())
	}
}

func TestServerStatusEndpoint(t *testing.T) {
	sw := NewSweepAt("run-s", nil, nil, fakeClock(time.Unix(3000, 0), time.Second))
	sw.PointStarted("fft-c2-inf", "fft", 2, "inf")
	sw.PointDone("fft-c2-inf", time.Second, 9)
	h := NewServer(nil, sw, nil).Handler()

	rec := get(t, h, "/status")
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type %q", ct)
	}
	var doc StatusDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("status not JSON: %v\n%s", err, rec.Body.String())
	}
	if doc.Schema != StatusSchemaV1 || doc.Run != "run-s" || doc.Counts.Done != 1 {
		t.Errorf("doc: %+v", doc)
	}
}

// With no sweep attached, /status serves an explicit idle document
// rather than an error — curl-ability does not depend on wiring.
func TestServerStatusIdleWithoutSweep(t *testing.T) {
	rec := get(t, NewServer(nil, nil, nil).Handler(), "/status")
	var doc StatusDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != StatusSchemaV1 || doc.State != "idle" {
		t.Errorf("idle doc: %+v", doc)
	}
}

func TestServerEventsEndpointFilters(t *testing.T) {
	log := NewLog(nil, "r")
	log.SetClock(fakeClock(time.Unix(0, 0), time.Millisecond))
	log.Emit(Event{Kind: EventPointStart, Point: "a"})
	log.Emit(Event{Kind: EventPointStart, Point: "b"})
	log.Emit(Event{Kind: EventPointDone, Point: "a"})
	h := NewServer(nil, nil, log).Handler()

	rec := get(t, h, "/events")
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Errorf("content type %q", ct)
	}
	all := strings.Count(rec.Body.String(), "\n")
	if all != 3 {
		t.Errorf("%d events unfiltered, want 3:\n%s", all, rec.Body.String())
	}

	rec = get(t, h, "/events?point=a")
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d events for point a, want 2:\n%s", len(lines), rec.Body.String())
	}
	for _, ln := range lines {
		var e Event
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatal(err)
		}
		if e.Point != "a" {
			t.Errorf("filter leaked %+v", e)
		}
	}
}

func TestServerIndexAndMethodDiscipline(t *testing.T) {
	h := NewServer(NewRegistry(), nil, nil).Handler()
	rec := get(t, h, "/")
	for _, path := range []string{"/metrics", "/status", "/events", "/debug/pprof/"} {
		if !strings.Contains(rec.Body.String(), path) {
			t.Errorf("index does not mention %s:\n%s", path, rec.Body.String())
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d, want 405 (endpoints are read-only)", rec.Code)
	}
}

// TestServerShutdownDrainsFollowers pins the graceful path: Shutdown
// with an attached /events?follow=1 stream must end the stream at a
// record boundary (clean EOF, every line valid JSON) and return well
// before its deadline instead of waiting it out.
func TestServerShutdownDrainsFollowers(t *testing.T) {
	log := NewLog(nil, "r")
	log.SetClock(fakeClock(time.Unix(0, 0), time.Millisecond))
	log.Emit(Event{Kind: EventPointStart, Point: "a"})
	run, err := NewServer(nil, nil, log).Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()

	resp, err := http.Get(run.URL() + "/events?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	type streamEnd struct {
		lines []string
		err   error
	}
	ended := make(chan streamEnd, 1)
	go func() { //simlint:allow goroutine — test harness
		body, err := io.ReadAll(resp.Body) // blocks until the server ends the stream
		lines := strings.Split(strings.TrimSpace(string(body)), "\n")
		ended <- streamEnd{lines, err}
	}()

	// Let the follower attach and replay the ring, then shut down.
	time.Sleep(50 * time.Millisecond) //simlint:allow wallclock — test pacing
	log.Emit(Event{Kind: EventPointDone, Point: "a"})
	start := time.Now() //simlint:allow wallclock — test timing
	if err := run.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if waited := time.Since(start); waited > 2*time.Second { //simlint:allow wallclock — test timing
		t.Errorf("Shutdown took %v; followers were not drained, the deadline was", waited)
	}
	end := <-ended
	if end.err != nil {
		t.Fatalf("follower stream severed instead of drained: %v", end.err)
	}
	for _, ln := range end.lines {
		var e Event
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Errorf("stream ended mid-record: %q: %v", ln, err)
		}
	}
	// Shutdown is idempotent.
	if err := run.Shutdown(time.Second); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

func TestServerStartServesAndCloses(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("live_total", "Live.").Inc()
	run, err := NewServer(reg, nil, nil).Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	if !strings.HasPrefix(run.URL(), "http://127.0.0.1:") {
		t.Fatalf("url %q", run.URL())
	}
	resp, err := http.Get(run.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	st, err := ParseExposition(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if st.Series != 1 {
		t.Errorf("stats %+v", st)
	}
	if err := run.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

// TestServerEventsFollowWithPointFilter pins the combined
// /events?point=&follow=1 contract: the filter applies to both the
// replayed ring and the live stream, and the stream still ends cleanly
// on shutdown.
func TestServerEventsFollowWithPointFilter(t *testing.T) {
	log := NewLog(nil, "r")
	log.SetClock(fakeClock(time.Unix(0, 0), time.Millisecond))
	log.Emit(Event{Kind: EventPointStart, Point: "a"})
	log.Emit(Event{Kind: EventPointStart, Point: "b"})
	run, err := NewServer(nil, nil, log).Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()

	resp, err := http.Get(run.URL() + "/events?point=a&follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got := make(chan []Event, 1)
	go func() { //simlint:allow goroutine — test harness
		body, _ := io.ReadAll(resp.Body)
		var evs []Event
		for _, ln := range strings.Split(strings.TrimSpace(string(body)), "\n") {
			var e Event
			if json.Unmarshal([]byte(ln), &e) == nil {
				evs = append(evs, e)
			}
		}
		got <- evs
	}()

	// Live events on both points while the follower is attached.
	time.Sleep(50 * time.Millisecond) //simlint:allow wallclock — test pacing
	log.Emit(Event{Kind: EventPointDone, Point: "b"})
	log.Emit(Event{Kind: EventPointDone, Point: "a"})
	time.Sleep(50 * time.Millisecond) //simlint:allow wallclock — test pacing
	if err := run.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	evs := <-got
	if len(evs) != 2 {
		t.Fatalf("%d events through point filter, want 2 (ring + live): %+v", len(evs), evs)
	}
	for _, e := range evs {
		if e.Point != "a" {
			t.Errorf("combined filter leaked %+v", e)
		}
	}
	if evs[0].Kind != EventPointStart || evs[1].Kind != EventPointDone {
		t.Errorf("stream order: %+v", evs)
	}
}
