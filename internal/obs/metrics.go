// Package obs is the simulator's *live* observability plane. Where
// telemetry, the sharing profiler, the host performance monitor and the
// critical-path analyzer all produce post-hoc, per-run artifacts, obs
// answers "what is the fleet doing right now": a dependency-free
// metrics registry (counters, gauges, histograms with deterministic
// label ordering), an embeddable HTTP server exposing the registry in
// Prometheus text exposition format 0.0.4 plus a JSON /status document
// and a streamed /events tail, and a structured JSONL run-event log
// (schema clustersim/events/v1).
//
// Everything in this package is wall-clock-side harness state and lives
// strictly outside the simulation: obs types are never attached to
// core.Config, never read or write simulation state, and a run with the
// observability plane enabled produces Result JSON and config hashes
// byte-identical to an unmonitored run (pinned by TestObsReadOnly).
// The package is a member of the simlint readonly observer set, so a
// simulation-state write in here is a lint failure, not a convention
// violation. This is the metrics/health surface the future clusterd
// daemon mounts unchanged.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is one metric dimension. Series are identified by their full,
// key-sorted label set, so two registrations with the same pairs in any
// order resolve to the same series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metric kinds, as they render in the # TYPE line.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// Registry holds one process's metric families. It is safe for
// concurrent use: the sweep worker updates series while the HTTP
// server renders the exposition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is every series sharing one metric name.
type family struct {
	name, help, kind string
	series           map[string]*series // keyed by the rendered label signature
}

// series is one (name, labels) time series. Counters and gauges use
// val; histograms use the bucket fields.
type series struct {
	labels []Label // sorted by key
	val    float64

	bounds  []float64 // histogram upper bounds, ascending, +Inf implicit
	buckets []uint64  // observation counts per bound (non-cumulative)
	sum     float64
	count   uint64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns (registering on first use) the counter series with
// the given name and labels. Counters only go up.
type Counter struct {
	r *Registry
	s *series
}

// Gauge returns-style handle for a value that can go up and down.
type Gauge struct {
	r *Registry
	s *series
}

// Histogram accumulates observations into fixed buckets.
type Histogram struct {
	r *Registry
	s *series
}

// validName reports whether s is a legal Prometheus metric or label
// name: [a-zA-Z_:][a-zA-Z0-9_:]* (labels additionally may not use ':',
// but the stricter check costs nothing here and we never emit colons).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		letter := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if i == 0 && !letter {
			return false
		}
		if !letter && !(c >= '0' && c <= '9') {
			return false
		}
	}
	return true
}

// signature renders a sorted label set as its exposition form, which
// doubles as the series key. Deterministic label ordering is the
// load-bearing property: two renders of the same registry are
// byte-identical, so the /metrics golden test (and any scrape differ)
// is meaningful.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the exposition-format escapes: backslash,
// double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// getSeries registers (or finds) the series for name/labels under the
// given kind, panicking on invalid names or a kind conflict — both are
// programmer errors, not runtime conditions.
func (r *Registry) getSeries(kind, name, help string, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	for i, l := range sorted {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l.Key, name))
		}
		if i > 0 && sorted[i-1].Key == l.Key {
			panic(fmt.Sprintf("obs: duplicate label %q on metric %q", l.Key, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = fam
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, fam.kind, kind))
	}
	if fam.help == "" {
		fam.help = help
	}
	sig := signature(sorted)
	s := fam.series[sig]
	if s == nil {
		s = &series{labels: sorted}
		fam.series[sig] = s
	}
	return s
}

// Counter registers (idempotently) and returns a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return &Counter{r: r, s: r.getSeries(kindCounter, name, help, labels)}
}

// Gauge registers (idempotently) and returns a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return &Gauge{r: r, s: r.getSeries(kindGauge, name, help, labels)}
}

// Histogram registers (idempotently) and returns a histogram over the
// given ascending upper bounds (+Inf is implicit). Bounds are fixed at
// first registration.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not strictly ascending", name))
		}
	}
	h := &Histogram{r: r, s: r.getSeries(kindHistogram, name, help, labels)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h.s.bounds == nil {
		h.s.bounds = append([]float64(nil), bounds...)
		h.s.buckets = make([]uint64, len(bounds))
	}
	return h
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v, which must be non-negative (counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("obs: counter decreased")
	}
	c.r.mu.Lock()
	c.s.val += v
	c.r.mu.Unlock()
}

// Value returns the counter's current value.
func (c *Counter) Value() float64 {
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	return c.s.val
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	g.r.mu.Lock()
	g.s.val = v
	g.r.mu.Unlock()
}

// Add adjusts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	g.r.mu.Lock()
	g.s.val += v
	g.r.mu.Unlock()
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 {
	g.r.mu.Lock()
	defer g.r.mu.Unlock()
	return g.s.val
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	h.s.sum += v
	h.s.count++
	for i, b := range h.s.bounds {
		if v <= b {
			h.s.buckets[i]++
			return
		}
	}
	// falls into the implicit +Inf bucket only, counted via count.
}

// Count returns the histogram's observation count.
func (h *Histogram) Count() uint64 {
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	return h.s.count
}

// snapshot copies the registry under the lock for rendering: family
// names sorted, series sorted by label signature.
type famSnap struct {
	name, help, kind string
	series           []seriesSnap
}

type seriesSnap struct {
	sig    string
	val    float64
	bounds []float64
	cum    []uint64 // cumulative bucket counts, histograms only
	sum    float64
	count  uint64
}

func (r *Registry) snapshot() []famSnap {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name) //simlint:allow maprange — sorted below
	}
	sort.Strings(names)
	out := make([]famSnap, 0, len(names))
	for _, name := range names {
		fam := r.families[name]
		fs := famSnap{name: fam.name, help: fam.help, kind: fam.kind}
		sigs := make([]string, 0, len(fam.series))
		for sig := range fam.series {
			sigs = append(sigs, sig) //simlint:allow maprange — sorted below
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			s := fam.series[sig]
			ss := seriesSnap{sig: sig, val: s.val, sum: s.sum, count: s.count}
			if fam.kind == kindHistogram {
				ss.bounds = append([]float64(nil), s.bounds...)
				ss.cum = make([]uint64, len(s.buckets))
				var run uint64
				for i, n := range s.buckets {
					run += n
					ss.cum[i] = run
				}
			}
			fs.series = append(fs.series, ss)
		}
		out = append(out, fs)
	}
	return out
}
