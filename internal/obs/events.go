package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// EventsSchemaV1 identifies one run-event record (documented in
// EXPERIMENTS.md). Every line of an events JSONL file is one Event.
const EventsSchemaV1 = "clustersim/events/v1"

// Event kinds. Point events are span-shaped: point-start opens a span
// that exactly one of point-done / point-fail / watchdog closes
// (carrying the wall duration); the rest are instants. The distributed
// fabric adds its own fabric-* kinds (see internal/fabric), carrying
// the worker identity in the Worker field.
const (
	EventSweepStart  = "sweep-start"
	EventSweepDone   = "sweep-done"
	EventPointStart  = "point-start"
	EventPointDone   = "point-done"
	EventPointReplay = "point-replay"
	EventPointFail   = "point-fail"
	EventWatchdog    = "watchdog"
	EventSignalStop  = "signal-stop"
)

// Span markers for span-shaped events.
const (
	SpanBegin = "begin"
	SpanEnd   = "end"
)

// Event is one structured run event. Field order is fixed by this
// struct (encoding/json emits fields in declaration order), and Seq is
// strictly monotone per log, so an events file is diffable and
// mergeable; both properties are pinned by TestEventLogDeterminism.
// Wall timestamps are host-side only — VirtCycles is the only
// simulation-derived field, and it is read from a finished Result,
// never from live simulation state.
type Event struct {
	Schema     string `json:"schema"`
	Seq        uint64 `json:"seq"`
	WallUnixNS int64  `json:"wallUnixNs"`
	Run        string `json:"run,omitempty"`
	Kind       string `json:"kind"`
	Span       string `json:"span,omitempty"`
	Point      string `json:"point,omitempty"`
	Worker     string `json:"worker,omitempty"`
	Trace      string `json:"trace,omitempty"`
	App        string `json:"app,omitempty"`
	Cluster    int    `json:"cluster,omitempty"`
	Cache      string `json:"cache,omitempty"`
	VirtCycles int64  `json:"virtCycles,omitempty"`
	DurNS      int64  `json:"durNs,omitempty"`
	Error      string `json:"error,omitempty"`
	Detail     string `json:"detail,omitempty"`
}

// logRingCap bounds the in-memory tail GET /events replays.
const logRingCap = 1024

// Log is an append-only JSONL run-event log plus the in-memory tail
// the /events endpoint serves. Append discipline mirrors
// telemetry.AtomicFile's torn-write guarantee for the append case: the
// file is opened O_APPEND and every event is exactly one Write of one
// complete line, so a reader (or a tail -f) never observes a torn
// record even while the sweep is running. A nil *Log is a no-op sink.
type Log struct {
	mu     sync.Mutex
	w      io.Writer
	closer io.Closer
	run    string
	seq    uint64
	now    func() time.Time
	ring   []Event
	subs   map[int]chan Event
	nextID int
	mirror func(Event)
}

// NewLog writes events to w (which may be nil for a memory-only log
// feeding /events). run labels every record.
func NewLog(w io.Writer, run string) *Log {
	return &Log{
		w:   w,
		run: run,
		// Wall stamps on harness events only; never feeds simulated state.
		now:  func() time.Time { return time.Now() }, //simlint:allow wallclock
		subs: make(map[int]chan Event),
	}
}

// OpenLog appends to the JSONL file at path (created if missing).
func OpenLog(path, run string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	l := NewLog(f, run)
	l.closer = f
	return l, nil
}

// SetClock injects a deterministic clock (tests).
func (l *Log) SetClock(now func() time.Time) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.now = now
	l.mu.Unlock()
}

// SetMirror registers a synchronous secondary sink invoked under the
// log lock for every emitted event, after stamping. Unlike Subscribe,
// a mirror is lossless — the fleet view depends on seeing every event
// to keep its merged timeline complete — so it must be fast and must
// never call back into the log. At most one mirror; nil clears it.
func (l *Log) SetMirror(fn func(Event)) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.mirror = fn
	l.mu.Unlock()
}

// Emit stamps (schema, seq, wall time, run) onto e and appends it:
// one marshal, one Write. Marshal errors cannot happen for Event's
// plain field types, so Emit has no error to return; a short write to
// a dying disk surfaces on Close. Seq is always re-stamped — the log's
// sequence is the causal order — but a non-zero incoming WallUnixNS is
// preserved, so a worker span re-emitted at the coordinator keeps its
// origin timestamp while taking its place in the coordinator's total
// order.
func (l *Log) Emit(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e.Schema = EventsSchemaV1
	e.Seq = l.seq
	if e.WallUnixNS == 0 {
		e.WallUnixNS = l.now().UnixNano()
	}
	if e.Run == "" {
		e.Run = l.run
	}
	if l.w != nil {
		line, err := json.Marshal(e)
		if err == nil {
			line = append(line, '\n')
			l.w.Write(line)
		}
	}
	if len(l.ring) == logRingCap {
		copy(l.ring, l.ring[1:])
		l.ring = l.ring[:logRingCap-1]
	}
	l.ring = append(l.ring, e)
	if l.mirror != nil {
		l.mirror(e)
	}
	for _, ch := range l.subs {
		select {
		case ch <- e:
		default: // a stalled follower drops events rather than blocking the sweep
		}
	}
}

// Recent returns a copy of the in-memory tail (oldest first).
func (l *Log) Recent() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.ring))
	copy(out, l.ring)
	return out
}

// Subscribe registers a live follower. The returned cancel func must be
// called when the follower goes away. Followers that fall behind the
// channel buffer lose events instead of stalling the sweep.
func (l *Log) Subscribe() (<-chan Event, func()) {
	if l == nil {
		ch := make(chan Event)
		return ch, func() {}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	id := l.nextID
	l.nextID++
	ch := make(chan Event, 256)
	l.subs[id] = ch
	return ch, func() {
		l.mu.Lock()
		delete(l.subs, id)
		l.mu.Unlock()
	}
}

// Close closes the underlying file, if any.
func (l *Log) Close() error {
	if l == nil || l.closer == nil {
		return nil
	}
	return l.closer.Close()
}

// ReadEvents decodes an events JSONL stream, validating the schema tag
// on every record (tracetool events and the smoke tests).
func ReadEvents(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		if e.Schema != EventsSchemaV1 {
			return out, errUnknownSchema(e.Schema)
		}
		out = append(out, e)
	}
}

type errUnknownSchema string

func (e errUnknownSchema) Error() string {
	return "obs: unknown event schema " + string(e) + " (want " + EventsSchemaV1 + ")"
}
