package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// Drive a small sweep through every lifecycle transition and check the
// /status document, the metric series, and the event stream all agree.
func TestSweepLifecycle(t *testing.T) {
	reg := NewRegistry()
	var evbuf bytes.Buffer
	log := NewLog(&evbuf, "run-t")
	log.SetClock(fakeClock(time.Unix(2000, 0), time.Second))
	sw := NewSweepAt("run-t", reg, log, fakeClock(time.Unix(2000, 0), time.Second))
	sw.SetIdentity("fig2", 16, "default")
	sw.SetTotalPoints(4)

	// Point 1: journal hit.
	sw.JournalMiss() // a prior lookup that missed
	sw.PointReplayed("fft-c1-inf", "fft", 1, "inf", 100)
	// Point 2: computed.
	sw.PointStarted("fft-c4-inf", "fft", 4, "inf")
	sw.PointDone("fft-c4-inf", 2*time.Second, 12345)
	// Point 3: fails while running.
	sw.PointStarted("lu-c4-inf", "lu", 4, "inf")
	sw.PointFailed("lu-c4-inf", "lu", 4, "inf", "boom")
	// Point 4: still running at render time.
	sw.PointStarted("lu-c8-inf", "lu", 8, "inf")

	doc := sw.Status()
	if doc.Schema != StatusSchemaV1 || doc.Run != "run-t" || doc.Args != "fig2" || doc.Procs != 16 {
		t.Fatalf("status header: %+v", doc)
	}
	if doc.State != "running" {
		t.Errorf("state = %q, want running", doc.State)
	}
	want := PointCounts{Running: 1, Done: 1, Failed: 1, Replayed: 1}
	if doc.Counts != want {
		t.Errorf("counts = %+v, want %+v", doc.Counts, want)
	}
	if doc.Journal != (JournalStats{Hits: 1, Misses: 1}) {
		t.Errorf("journal = %+v", doc.Journal)
	}
	if len(doc.Points) != 4 {
		t.Fatalf("%d point rows, want 4", len(doc.Points))
	}
	if p := doc.Points[1]; p.State != PointDone || p.WallMS != 2000 || p.VirtCycles != 12345 {
		t.Errorf("computed point row: %+v", p)
	}
	if p := doc.Points[2]; p.State != PointFailed || p.Error != "boom" {
		t.Errorf("failed point row: %+v", p)
	}
	// ETA: one cost sample (2s), one point of four outstanding.
	if !doc.ETA.HaveRemaining || doc.ETA.MeanPointMS != 2000 || doc.ETA.RemainingMS != 2000 {
		t.Errorf("eta = %+v", doc.ETA)
	}
	if doc.Host.Goroutines <= 0 {
		t.Errorf("host gauges not populated: %+v", doc.Host)
	}

	// Metric series match the state machine.
	checks := map[string]float64{
		"running gauge":  reg.Gauge("clustersim_sweep_points_running", "").Value(),
		"done counter":   reg.Counter("clustersim_sweep_points_total", "", L("state", "done")).Value(),
		"failed counter": reg.Counter("clustersim_sweep_points_total", "", L("state", "failed")).Value(),
	}
	for name, got := range checks {
		if got != 1 {
			t.Errorf("%s = %v, want 1", name, got)
		}
	}
	if got := reg.Counter("clustersim_sweep_virtual_cycles_total", "").Value(); got != 12445 {
		t.Errorf("virtual cycles = %v, want 12445 (replay + computed)", got)
	}

	sw.PointDone("lu-c8-inf", time.Second, 1)
	sw.Finish(0)
	doc = sw.Status()
	// One point failed, so the sweep as a whole is failed even with zero
	// failed experiments.
	if doc.State != "failed" {
		t.Errorf("final state = %q, want failed", doc.State)
	}

	evs, err := ReadEvents(strings.NewReader(evbuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, e := range evs {
		kinds = append(kinds, e.Kind)
	}
	wantKinds := []string{
		EventSweepStart, EventPointReplay, EventPointStart, EventPointDone,
		EventPointStart, EventPointFail, EventPointStart, EventPointDone, EventSweepDone,
	}
	if strings.Join(kinds, " ") != strings.Join(wantKinds, " ") {
		t.Errorf("event kinds:\n got %v\nwant %v", kinds, wantKinds)
	}
	last := evs[len(evs)-1]
	if !strings.Contains(last.Detail, "2 points computed, 1 replayed from journal, 1 failed") {
		t.Errorf("sweep-done summary: %q", last.Detail)
	}
}

func TestSweepInterruptedAndCleanStates(t *testing.T) {
	sw := NewSweepAt("r", nil, nil, fakeClock(time.Unix(0, 0), time.Second))
	sw.PointStarted("p", "fft", 1, "inf")
	sw.PointDone("p", time.Second, 1)
	sw.Finish(0)
	if got := sw.Status().State; got != "done" {
		t.Errorf("clean sweep state = %q, want done", got)
	}

	sw = NewSweepAt("r", nil, nil, fakeClock(time.Unix(0, 0), time.Second))
	sw.Interrupted()
	if got := sw.Status().State; got != "interrupted" {
		t.Errorf("interrupted sweep state = %q", got)
	}
}

// All hooks are nil-receiver safe: the suite calls them unconditionally.
func TestNilSweepIsSafe(t *testing.T) {
	var sw *Sweep
	sw.SetIdentity("x", 1, "s")
	sw.SetTotalPoints(3)
	sw.PointStarted("p", "a", 1, "c")
	sw.PointDone("p", time.Second, 1)
	sw.PointReplayed("p", "a", 1, "c", 1)
	sw.JournalMiss()
	sw.PointFailed("p", "a", 1, "c", "e")
	sw.PointTimeout("p", time.Second)
	sw.Interrupted()
	sw.Finish(0)
	if sw.Status() != nil || sw.Log() != nil {
		t.Error("nil sweep leaked non-nil state")
	}
}

// TestSweepDuplicateCompletionCountsOnce pins the distributed-sweep
// ETA discipline: a stolen point can complete on two workers, and the
// byte-identical duplicate is delivered to the sweep again — the second
// PointDone must not move the counters or feed the ETA's completed-cost
// mean a second sample.
func TestSweepDuplicateCompletionCountsOnce(t *testing.T) {
	reg := NewRegistry()
	sw := NewSweepAt("run-dup", reg, nil, fakeClock(time.Unix(3000, 0), time.Second))
	sw.SetTotalPoints(2)

	sw.PointStarted("fft-c4-inf", "fft", 4, "inf")
	sw.PointDone("fft-c4-inf", 2*time.Second, 100)
	// The stolen copy lands: same point, different measured wall cost.
	sw.PointDone("fft-c4-inf", 8*time.Second, 100)

	doc := sw.Status()
	if doc.Counts.Done != 1 {
		t.Errorf("done = %d after duplicate completion, want 1", doc.Counts.Done)
	}
	// One 2s sample, one of two points done: mean must stay 2s and the
	// projection 2s — a second (8s) sample would skew both.
	if doc.ETA.MeanPointMS != 2000 || doc.ETA.RemainingMS != 2000 {
		t.Errorf("eta after duplicate = %+v, want mean 2000ms / remaining 2000ms", doc.ETA)
	}
	if doc.Points[0].WallMS != 2000 {
		t.Errorf("point wall = %dms, want the first completion's 2000ms", doc.Points[0].WallMS)
	}
	var expo bytes.Buffer
	reg.WritePrometheus(&expo)
	if !strings.Contains(expo.String(), `clustersim_sweep_points_total{state="done"} 1`) {
		t.Errorf("done counter incremented twice:\n%s", expo.String())
	}
	if !strings.Contains(expo.String(), "clustersim_sweep_points_running 0") {
		t.Errorf("running gauge went negative:\n%s", expo.String())
	}
}
