package obs

import (
	"sync"
	"time"
)

// ETA is the completed-cost ETA model behind /status: every freshly
// computed point contributes its wall cost, and the estimate for the
// remaining work is mean completed cost × points outstanding. Replayed
// points are free (journal hits cost microseconds, not simulation
// time), so they advance completion without skewing the mean. The
// total is declared when the sweep shape is known and grows lazily
// otherwise — experiments discover points as tables request them, so
// the estimate is a floor until the last table is enumerated.
//
// The clock is injectable for tests; the model itself never reads
// simulated time.
type ETA struct {
	mu      sync.Mutex
	now     func() time.Time
	start   time.Time
	total   int // declared sweep size; grows to seen if exceeded
	seen    int // points that have entered any state
	done    int // computed + replayed + failed (work no longer outstanding)
	costNS  int64
	samples int // computed points contributing to costNS
}

// NewETA starts the model's wall clock now.
func NewETA() *ETA {
	// Host-side progress estimation only; never feeds simulated state.
	return NewETAAt(func() time.Time { return time.Now() }) //simlint:allow wallclock
}

// NewETAAt injects the clock (tests use a fake).
func NewETAAt(now func() time.Time) *ETA {
	e := &ETA{now: now}
	e.start = now()
	return e
}

// SetTotal declares the sweep's point count, when known.
func (e *ETA) SetTotal(n int) {
	e.mu.Lock()
	if n > e.total {
		e.total = n
	}
	e.mu.Unlock()
}

// Saw records that a point exists (entered any state).
func (e *ETA) Saw() {
	e.mu.Lock()
	e.seen++
	if e.seen > e.total {
		e.total = e.seen
	}
	e.mu.Unlock()
}

// Completed records one freshly computed point and its wall cost.
func (e *ETA) Completed(cost time.Duration) {
	e.mu.Lock()
	e.done++
	e.costNS += int64(cost)
	e.samples++
	e.mu.Unlock()
}

// CompletedFree records a point that finished without simulation work
// (journal replay) or that will never finish (recorded failure): the
// work is no longer outstanding, but no cost sample is taken.
func (e *ETA) CompletedFree() {
	e.mu.Lock()
	e.done++
	e.mu.Unlock()
}

// Estimate is the model's current output.
type Estimate struct {
	ElapsedMS     int64 `json:"elapsedMs"`
	TotalPoints   int   `json:"totalPoints"`
	DonePoints    int   `json:"donePoints"`
	MeanPointMS   int64 `json:"meanPointMs,omitempty"`
	RemainingMS   int64 `json:"remainingMs,omitempty"`
	HaveRemaining bool  `json:"haveRemaining"`
}

// Estimate returns elapsed wall time and, once at least one computed
// point has landed, the projected time to finish the declared total.
func (e *ETA) Estimate() Estimate {
	e.mu.Lock()
	defer e.mu.Unlock()
	est := Estimate{
		ElapsedMS:   e.now().Sub(e.start).Milliseconds(),
		TotalPoints: e.total,
		DonePoints:  e.done,
	}
	if e.samples == 0 {
		return est
	}
	mean := e.costNS / int64(e.samples)
	est.MeanPointMS = mean / int64(time.Millisecond)
	remaining := e.total - e.done
	if remaining < 0 {
		remaining = 0
	}
	est.RemainingMS = mean * int64(remaining) / int64(time.Millisecond)
	est.HaveRemaining = true
	return est
}
