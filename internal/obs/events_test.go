package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func fakeClock(start time.Time, step time.Duration) func() time.Time {
	at := start
	return func() time.Time {
		at = at.Add(step)
		return at
	}
}

// TestEventLogDeterminism pins the two properties that make events
// files diffable: field order is fixed by the Event struct (so two
// identical runs produce byte-identical logs under a fixed clock), and
// Seq is strictly monotone from 1.
func TestEventLogDeterminism(t *testing.T) {
	emitAll := func(l *Log) {
		l.Emit(Event{Kind: EventSweepStart})
		l.Emit(Event{Kind: EventPointStart, Span: SpanBegin, Point: "fft-c4-inf", App: "fft", Cluster: 4, Cache: "inf"})
		l.Emit(Event{Kind: EventPointDone, Span: SpanEnd, Point: "fft-c4-inf", App: "fft", Cluster: 4, Cache: "inf",
			VirtCycles: 777, DurNS: 1500})
		l.Emit(Event{Kind: EventPointFail, Point: "lu-c1-inf", Error: "boom"})
		l.Emit(Event{Kind: EventSweepDone, Detail: "done"})
	}
	render := func() string {
		var b bytes.Buffer
		l := NewLog(&b, "run-1")
		l.SetClock(fakeClock(time.Unix(1000, 0), time.Second))
		emitAll(l)
		return b.String()
	}
	one, two := render(), render()
	if one != two {
		t.Fatalf("two identical runs differ:\n%s\nvs\n%s", one, two)
	}

	// Byte-exact field order: schema first, then seq, wall stamp, run,
	// kind, and the span/point block — the documented v1 layout.
	first := strings.SplitN(one, "\n", 2)[0]
	want := `{"schema":"clustersim/events/v1","seq":1,"wallUnixNs":1001000000000,"run":"run-1","kind":"sweep-start"}`
	if first != want {
		t.Errorf("first line layout:\n got %s\nwant %s", first, want)
	}

	evs, err := ReadEvents(strings.NewReader(one))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 5 {
		t.Fatalf("read %d events, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d: seq = %d, want strictly monotone from 1", i, e.Seq)
		}
		if e.Schema != EventsSchemaV1 {
			t.Errorf("event %d: schema = %q", i, e.Schema)
		}
		if e.Run != "run-1" {
			t.Errorf("event %d: run = %q", i, e.Run)
		}
	}
	if evs[2].VirtCycles != 777 || evs[2].DurNS != 1500 {
		t.Errorf("span payload lost: %+v", evs[2])
	}
}

// Every event is exactly one Write of one complete line: a reader
// tailing the file never sees a torn record.
func TestEmitWritesWholeLines(t *testing.T) {
	var w countingWriter
	l := NewLog(&w, "r")
	l.SetClock(fakeClock(time.Unix(0, 0), time.Millisecond))
	l.Emit(Event{Kind: EventSweepStart})
	l.Emit(Event{Kind: EventSweepDone})
	if w.writes != 2 {
		t.Errorf("%d Writes for 2 events, want one per event", w.writes)
	}
	for _, chunk := range w.chunks {
		if !strings.HasSuffix(chunk, "\n") || strings.Count(chunk, "\n") != 1 {
			t.Errorf("chunk is not one complete line: %q", chunk)
		}
	}
}

type countingWriter struct {
	writes int
	chunks []string
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	w.chunks = append(w.chunks, string(p))
	return len(p), nil
}

func TestRecentRingBounded(t *testing.T) {
	l := NewLog(nil, "r")
	l.SetClock(fakeClock(time.Unix(0, 0), time.Millisecond))
	for i := 0; i < logRingCap+10; i++ {
		l.Emit(Event{Kind: EventPointStart})
	}
	recent := l.Recent()
	if len(recent) != logRingCap {
		t.Fatalf("ring holds %d, want %d", len(recent), logRingCap)
	}
	if recent[0].Seq != 11 || recent[len(recent)-1].Seq != logRingCap+10 {
		t.Errorf("ring window [%d, %d], want oldest dropped", recent[0].Seq, recent[len(recent)-1].Seq)
	}
}

func TestSubscribeDeliversAndCancels(t *testing.T) {
	l := NewLog(nil, "r")
	l.SetClock(fakeClock(time.Unix(0, 0), time.Millisecond))
	ch, cancel := l.Subscribe()
	l.Emit(Event{Kind: EventPointStart, Point: "p"})
	select {
	case e := <-ch:
		if e.Point != "p" {
			t.Errorf("got %+v", e)
		}
	default:
		t.Fatal("subscriber did not receive the event")
	}
	cancel()
	l.Emit(Event{Kind: EventPointDone, Point: "p"})
	select {
	case e := <-ch:
		t.Errorf("cancelled subscriber still received %+v", e)
	default:
	}
}

func TestReadEventsRejectsUnknownSchema(t *testing.T) {
	in := `{"schema":"clustersim/events/v2","seq":1,"kind":"x"}` + "\n"
	if _, err := ReadEvents(strings.NewReader(in)); err == nil {
		t.Fatal("unknown schema accepted")
	}
}

// Nil receivers are no-ops so callers can hook unconditionally.
func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Emit(Event{Kind: EventSweepStart})
	l.SetClock(nil)
	if got := l.Recent(); got != nil {
		t.Errorf("nil log Recent = %v", got)
	}
	ch, cancel := l.Subscribe()
	cancel()
	select {
	case <-ch:
		t.Error("nil log subscription delivered")
	default:
	}
	if err := l.Close(); err != nil {
		t.Errorf("nil log Close = %v", err)
	}
}
