// Package fleet is the cross-process half of the observability plane:
// it turns one distributed sweep into one observable story. Every sweep
// point carries a trace ID derived from its journal key, so coordinator
// events and worker span events for the same point share an identity
// even though they are emitted by different processes. Workers buffer
// their point-local span events (SpanBuffer) and ship them piggybacked
// on fabric Result/Heartbeat frames; the coordinator re-emits them into
// its own event log, whose sequence numbers become the fleet's total
// causal order (see DESIGN.md, "Causal merge ordering"). The View
// mirrors that merged log into an aggregated fleet state — per-worker
// liveness, per-point timelines, a fleet ETA — served as the
// clustersim/fleet/v1 document on GET /fleet, with per-point timelines
// on GET /fleet/trace and federated worker metrics on /fleet/metrics.
//
// Like its parent package, fleet is strictly wall-clock-side harness
// state: it never touches simulation state (it is a member of the
// simlint readonly observer set), trace fields live only in the wire
// envelope and the event log — never in core.Result — and a traced
// distributed sweep stays byte-identical to a local run.
package fleet

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"clustersim/internal/obs"
)

// SchemaV1 identifies the GET /fleet document.
const SchemaV1 = "clustersim/fleet/v1"

// TraceSchemaV1 identifies the GET /fleet/trace document.
const TraceSchemaV1 = "clustersim/fleettrace/v1"

// Fabric event kinds the view's point state machine keys on. The
// canonical definitions live here so internal/fabric (which imports
// this package for trace IDs) can alias rather than duplicate them.
const (
	EventWorkerJoin = "fabric-worker-join"
	EventWorkerDead = "fabric-worker-dead"
	EventAssign     = "fabric-assign"
	EventRequeue    = "fabric-requeue"
	EventResult     = "fabric-result"
	EventResultDup  = "fabric-result-dup"
	EventResultFail = "fabric-result-fail"
	EventLocal      = "fabric-local"
	EventDrain      = "fabric-drain"
	EventRedial     = "fabric-redial"
	EventSpanDrop   = "fabric-span-drop"
)

// detailResumed matches the fabric-result Detail for journal resumes.
const detailResumed = "resumed-from-journal"

// TraceID derives a point's fleet-wide trace ID from its journal key
// (fabric.PointSpec.Key()). FNV-1a 64 in hex: stable across processes
// and runs, cheap, and collision-free in practice for sweep-sized point
// sets.
func TraceID(key string) string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	const hex = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hex[h&0xf]
		h >>= 4
	}
	return string(b[:])
}

// WorkerLink is the coordinator's live view of one registered worker,
// merged into the fleet doc alongside the event-derived aggregates.
type WorkerLink struct {
	Worker         string
	Alive          bool
	ObsURL         string // worker's obs server base URL, if advertised
	LeasesHeld     int
	HeartbeatAgeMS int64
}

// maxTimelineEvents bounds one point's retained timeline; beyond it
// events still feed the state machine but are not stored.
const maxTimelineEvents = 512

// pointState is one point's merged cross-process story.
type pointState struct {
	name      string
	trace     string
	assigned  bool
	state     string // "" | "assigned" | "done" | "failed"
	resumed   bool
	results   int // fabric-result events seen (exactly 1 for a done point)
	events    []obs.Event
	truncated int
}

// workerAgg is the event-derived per-worker tally.
type workerAgg struct {
	done, replayed, failed, dups int
	spans                        int // events observed carrying this worker's ID
	lastKind                     string
	lastUnixNS                   int64
}

// View aggregates the coordinator's merged event log into the fleet
// status document. It attaches as the event log's mirror (lossless,
// synchronous), so the merged timeline it serves is complete — unlike
// /events followers, which may drop under backpressure.
type View struct {
	mu          sync.Mutex
	run         string
	fed         *Federator
	eta         *obs.ETA
	links       func() []WorkerLink
	points      map[string]*pointState
	order       []string
	byTrace     map[string]string
	workers     map[string]*workerAgg
	workerOrder []string
	events      int
}

// NewView builds a fleet view labelled run. fed may be nil (no metrics
// federation; /fleet/metrics then serves an empty exposition).
func NewView(run string, fed *Federator) *View {
	return &View{
		run:     run,
		fed:     fed,
		eta:     obs.NewETA(),
		points:  make(map[string]*pointState),
		byTrace: make(map[string]string),
		workers: make(map[string]*workerAgg),
	}
}

// SetSource installs the coordinator's worker snapshot (liveness,
// leases, heartbeat age). Called once the coordinator exists; the doc
// works without it, from events alone.
func (v *View) SetSource(links func() []WorkerLink) {
	v.mu.Lock()
	v.links = links
	v.mu.Unlock()
}

// SetTotal declares the sweep's expected point count for the fleet ETA.
func (v *View) SetTotal(n int) {
	v.mu.Lock()
	v.eta.SetTotal(n)
	v.mu.Unlock()
}

// Federator returns the attached federator (may be nil).
func (v *View) Federator() *Federator { return v.fed }

// Observe ingests one event of the coordinator's merged log. It is the
// mirror callback: invoked synchronously under the log lock, in seq
// order, for every event — the completeness guarantee the audit rests
// on. Lock order is coordinator → log → view, so Observe must never
// call back into either.
func (v *View) Observe(e obs.Event) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.events++
	if e.Worker != "" {
		w := v.worker(e.Worker)
		w.spans++
		w.lastKind = e.Kind
		w.lastUnixNS = e.WallUnixNS
	}
	if e.Point == "" {
		return
	}
	p := v.point(e.Point)
	if e.Trace != "" && p.trace == "" {
		p.trace = e.Trace
		v.byTrace[e.Trace] = e.Point
	}
	if len(p.events) < maxTimelineEvents {
		p.events = append(p.events, e)
	} else {
		p.truncated++
	}
	switch e.Kind {
	case EventAssign, EventLocal:
		p.assigned = true
		if p.state == "" {
			p.state = "assigned"
		}
	case EventResult:
		p.results++
		if p.state == "done" {
			return // defensive: coordinator emits one result per point
		}
		wasFailed := p.state == "failed"
		p.state = "done"
		p.resumed = e.Detail == detailResumed
		if !wasFailed {
			// First terminal transition feeds the ETA exactly once:
			// resumes are free, fresh completions carry the worker's
			// measured wall cost. Duplicate completions of a stolen
			// point arrive as fabric-result-dup and never reach here.
			if p.resumed || e.DurNS == 0 {
				v.eta.CompletedFree()
			} else {
				v.eta.Completed(time.Duration(e.DurNS))
			}
		}
		if e.Worker != "" {
			if p.resumed {
				v.worker(e.Worker).replayed++
			} else {
				v.worker(e.Worker).done++
			}
		}
	case EventResultDup:
		if e.Worker != "" {
			v.worker(e.Worker).dups++
		}
	case EventResultFail:
		if p.state == "" || p.state == "assigned" {
			p.state = "failed"
			v.eta.CompletedFree()
			if e.Worker != "" {
				v.worker(e.Worker).failed++
			}
		}
	}
}

// point finds or creates a point's merged state (caller holds v.mu).
func (v *View) point(name string) *pointState {
	p := v.points[name]
	if p == nil {
		p = &pointState{name: name}
		v.points[name] = p
		v.order = append(v.order, name)
		v.eta.Saw()
	}
	return p
}

// worker finds or creates a worker tally (caller holds v.mu).
func (v *View) worker(id string) *workerAgg {
	w := v.workers[id]
	if w == nil {
		w = &workerAgg{}
		v.workers[id] = w
		v.workerOrder = append(v.workerOrder, id)
	}
	return w
}

// Timeline returns the merged, seq-ordered events of one point, looked
// up by point name or by trace ID.
func (v *View) Timeline(pointOrTrace string) ([]obs.Event, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	name := pointOrTrace
	if _, ok := v.points[name]; !ok {
		if mapped, ok := v.byTrace[pointOrTrace]; ok {
			name = mapped
		}
	}
	p := v.points[name]
	if p == nil {
		return nil, false
	}
	out := make([]obs.Event, len(p.events))
	copy(out, p.events)
	return out, true
}

// Points lists every point the view has seen, in first-seen order.
func (v *View) Points() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, len(v.order))
	copy(out, v.order)
	return out
}

// Audit is the merged-timeline completeness check the keystone chaos
// test asserts: after a drained sweep every assigned point must have
// reached exactly one terminal state.
type Audit struct {
	Points      int
	Assigned    int
	Done        int // fresh completions
	Replayed    int
	Failed      int
	Incomplete  []string // assigned points with no terminal state
	MultiResult []string // points with more than one fabric-result event
}

// Audit computes the completeness summary over every point seen.
func (v *View) Audit() Audit {
	v.mu.Lock()
	defer v.mu.Unlock()
	var a Audit
	a.Points = len(v.order)
	for _, name := range v.order {
		p := v.points[name]
		if p.assigned {
			a.Assigned++
		}
		switch {
		case p.state == "done" && p.resumed:
			a.Replayed++
		case p.state == "done":
			a.Done++
		case p.state == "failed":
			a.Failed++
		default:
			if p.assigned {
				a.Incomplete = append(a.Incomplete, name)
			}
		}
		if p.results > 1 {
			a.MultiResult = append(a.MultiResult, name)
		}
	}
	return a
}

// Totals is the fleet-wide tally block of the /fleet doc.
type Totals struct {
	Workers  int `json:"workers"`
	Live     int `json:"live"`
	Points   int `json:"points"`
	Assigned int `json:"assigned"`
	Done     int `json:"done"`
	Replayed int `json:"replayed"`
	Failed   int `json:"failed"`
	Events   int `json:"events"`
}

// WorkerStatus is one worker's row of the /fleet doc: the coordinator's
// live link state merged with the event-derived tallies and the last
// metrics scrape.
type WorkerStatus struct {
	Worker         string `json:"worker"`
	Alive          bool   `json:"alive"`
	ObsURL         string `json:"obsUrl,omitempty"`
	LeasesHeld     int    `json:"leasesHeld"`
	HeartbeatAgeMS int64  `json:"heartbeatAgeMs,omitempty"`
	Done           int    `json:"done"`
	Replayed       int    `json:"replayed"`
	Failed         int    `json:"failed"`
	Duplicates     int    `json:"duplicates"`
	Spans          int    `json:"spans"`
	LastSpan       string `json:"lastSpan,omitempty"`
	LastSpanUnixMS int64  `json:"lastSpanUnixMs,omitempty"`
	ScrapeError    string `json:"scrapeError,omitempty"`
	ScrapeUnixMS   int64  `json:"scrapeUnixMs,omitempty"`
}

// Doc is the GET /fleet response (schema clustersim/fleet/v1).
type Doc struct {
	Schema          string         `json:"schema"`
	Run             string         `json:"run,omitempty"`
	GeneratedUnixMS int64          `json:"generatedUnixMs"`
	Totals          Totals         `json:"totals"`
	ETA             obs.Estimate   `json:"eta"`
	Workers         []WorkerStatus `json:"workers"`
}

// Doc renders the current fleet document. The coordinator snapshot and
// the federator are consulted outside the view lock (lock order: the
// coordinator may emit events — coordinator → log → view — so the view
// must not hold its lock while calling into the coordinator).
func (v *View) Doc() *Doc {
	var links []WorkerLink
	v.mu.Lock()
	source := v.links
	v.mu.Unlock()
	if source != nil {
		links = source()
	}
	var scrapes []ScrapeStatus
	if v.fed != nil {
		scrapes = v.fed.Status()
	}
	scrapeFor := make(map[string]ScrapeStatus, len(scrapes))
	for _, s := range scrapes {
		scrapeFor[s.Worker] = s
	}

	v.mu.Lock()
	defer v.mu.Unlock()
	doc := &Doc{
		Schema: SchemaV1,
		Run:    v.run,
		// Harness wall clock: document stamp only, never simulation input.
		GeneratedUnixMS: time.Now().UnixMilli(), //simlint:allow wallclock
		ETA:             v.eta.Estimate(),
	}
	doc.Totals.Points = len(v.order)
	doc.Totals.Events = v.events
	for _, name := range v.order {
		p := v.points[name]
		if p.assigned {
			doc.Totals.Assigned++
		}
		switch {
		case p.state == "done" && p.resumed:
			doc.Totals.Replayed++
		case p.state == "done":
			doc.Totals.Done++
		case p.state == "failed":
			doc.Totals.Failed++
		}
	}
	// Workers: coordinator link order first, then event-only identities
	// (e.g. "(local)") in first-seen order.
	seen := make(map[string]bool, len(links))
	addRow := func(link *WorkerLink, id string) {
		row := WorkerStatus{Worker: id}
		if link != nil {
			row.Alive = link.Alive
			row.ObsURL = link.ObsURL
			row.LeasesHeld = link.LeasesHeld
			row.HeartbeatAgeMS = link.HeartbeatAgeMS
		}
		if agg := v.workers[id]; agg != nil {
			row.Done = agg.done
			row.Replayed = agg.replayed
			row.Failed = agg.failed
			row.Duplicates = agg.dups
			row.Spans = agg.spans
			row.LastSpan = agg.lastKind
			if agg.lastUnixNS != 0 {
				row.LastSpanUnixMS = agg.lastUnixNS / int64(time.Millisecond)
			}
		}
		if s, ok := scrapeFor[id]; ok {
			row.ScrapeError = s.Err
			row.ScrapeUnixMS = s.AtUnixMS
		}
		if row.Alive {
			doc.Totals.Live++
		}
		doc.Workers = append(doc.Workers, row)
	}
	for i := range links {
		addRow(&links[i], links[i].Worker)
		seen[links[i].Worker] = true
	}
	for _, id := range v.workerOrder {
		if !seen[id] {
			addRow(nil, id)
		}
	}
	doc.Totals.Workers = len(doc.Workers)
	return doc
}

// TraceDoc is the GET /fleet/trace response (clustersim/fleettrace/v1):
// one point's merged cross-process timeline in coordinator-seq order.
type TraceDoc struct {
	Schema    string      `json:"schema"`
	Point     string      `json:"point"`
	Trace     string      `json:"trace,omitempty"`
	State     string      `json:"state,omitempty"`
	Truncated int         `json:"truncatedEvents,omitempty"`
	Events    []obs.Event `json:"events"`
}

// Trace renders one point's timeline document, by name or trace ID.
func (v *View) Trace(pointOrTrace string) (*TraceDoc, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	name := pointOrTrace
	if _, ok := v.points[name]; !ok {
		if mapped, ok := v.byTrace[pointOrTrace]; ok {
			name = mapped
		}
	}
	p := v.points[name]
	if p == nil {
		return nil, false
	}
	doc := &TraceDoc{
		Schema:    TraceSchemaV1,
		Point:     p.name,
		Trace:     p.trace,
		State:     p.state,
		Truncated: p.truncated,
		Events:    make([]obs.Event, len(p.events)),
	}
	copy(doc.Events, p.events)
	return doc, true
}

// Mount registers the fleet endpoints on an obs server:
//
//	GET /fleet          the clustersim/fleet/v1 document
//	GET /fleet/trace    one point's merged timeline (?point= or ?trace=)
//	GET /fleet/metrics  federated worker metrics, worker= labelled
func (v *View) Mount(s *obs.Server) {
	s.Handle("GET /fleet", "fleet status JSON (clustersim/fleet/v1)", http.HandlerFunc(v.handleDoc))
	s.Handle("GET /fleet/trace", "per-point cross-process timeline (?point=NAME)", http.HandlerFunc(v.handleTrace))
	s.Handle("GET /fleet/metrics", "federated worker metrics (worker= labels)", http.HandlerFunc(v.handleMetrics))
}

func (v *View) handleDoc(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v.Doc())
}

func (v *View) handleTrace(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("point")
	if q == "" {
		q = r.URL.Query().Get("trace")
	}
	if q == "" {
		http.Error(w, "missing ?point= or ?trace=", http.StatusBadRequest)
		return
	}
	doc, ok := v.Trace(q)
	if !ok {
		http.Error(w, "unknown point "+q, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

func (v *View) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", obs.ExpositionContentType)
	if v.fed == nil {
		return
	}
	v.fed.WritePrometheus(w)
}
