package fleet

import (
	"sync"

	"clustersim/internal/obs"
)

// spanBufferCap bounds the worker-side span backlog. Under a long
// coordinator outage the oldest spans are dropped first: the
// coordinator's own fabric-result events guarantee every point still
// gets a terminal span in the merged timeline, so worker spans are
// enrichment, delivered at-most-once.
const spanBufferCap = 4096

// SpanBuffer collects a worker's point-local span events for piggyback
// shipment on fabric Result/Heartbeat frames. It attaches as the worker
// event log's mirror, so every locally emitted event is captured
// without a subscriber goroutine.
type SpanBuffer struct {
	mu      sync.Mutex
	buf     []obs.Event
	dropped uint64
}

// NewSpanBuffer creates an empty buffer.
func NewSpanBuffer() *SpanBuffer { return &SpanBuffer{} }

// Observe enqueues one event (the log-mirror callback), dropping the
// oldest beyond capacity.
func (b *SpanBuffer) Observe(e obs.Event) {
	if b == nil {
		return
	}
	b.mu.Lock()
	if len(b.buf) == spanBufferCap {
		copy(b.buf, b.buf[1:])
		b.buf = b.buf[:spanBufferCap-1]
		b.dropped++
	}
	b.buf = append(b.buf, e)
	b.mu.Unlock()
}

// Drain removes and returns up to max buffered events, oldest first
// (max <= 0 drains everything). The fabric worker calls this when
// assembling an outgoing frame.
func (b *SpanBuffer) Drain(max int) []obs.Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.buf)
	if max > 0 && n > max {
		n = max
	}
	if n == 0 {
		return nil
	}
	out := make([]obs.Event, n)
	copy(out, b.buf[:n])
	rest := copy(b.buf, b.buf[n:])
	b.buf = b.buf[:rest]
	return out
}

// Dropped reports how many events capacity pressure discarded.
func (b *SpanBuffer) Dropped() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}
