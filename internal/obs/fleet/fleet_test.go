package fleet

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"clustersim/internal/obs"
)

// Trace IDs are a pure function of the journal key: every process
// derives the same ID, and distinct keys get distinct IDs.
func TestTraceIDStableAndDistinct(t *testing.T) {
	key := "ocean-default-c4-16k-abcdef"
	id := TraceID(key)
	if id != TraceID(key) {
		t.Fatalf("TraceID not stable: %s vs %s", id, TraceID(key))
	}
	if len(id) != 16 {
		t.Fatalf("TraceID %q: want 16 hex chars", id)
	}
	for _, c := range id {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Fatalf("TraceID %q: non-hex rune %q", id, c)
		}
	}
	seen := map[string]string{}
	for _, k := range []string{key, "ocean-default-c4-0k-abcdef", "fft-default-c1-0k-abcdef", ""} {
		other := TraceID(k)
		if prev, dup := seen[other]; dup {
			t.Errorf("collision: %q and %q both map to %s", prev, k, other)
		}
		seen[other] = k
	}
}

func TestSpanBufferDrainAndDropOldest(t *testing.T) {
	b := NewSpanBuffer()
	for i := 0; i < 5; i++ {
		b.Observe(obs.Event{Kind: "k", Seq: uint64(i + 1)})
	}
	got := b.Drain(2)
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("Drain(2) = %+v, want seqs 1,2", got)
	}
	rest := b.Drain(0)
	if len(rest) != 3 || rest[0].Seq != 3 {
		t.Fatalf("Drain(0) = %+v, want seqs 3..5", rest)
	}
	if b.Drain(10) != nil {
		t.Error("drained an empty buffer to non-nil")
	}

	// Overflow drops the oldest, keeps counting.
	for i := 0; i < spanBufferCap+7; i++ {
		b.Observe(obs.Event{Seq: uint64(i + 1)})
	}
	if b.Dropped() != 7 {
		t.Errorf("dropped = %d, want 7", b.Dropped())
	}
	all := b.Drain(0)
	if len(all) != spanBufferCap || all[0].Seq != 8 {
		t.Errorf("after overflow: %d events, first seq %d; want %d starting at 8", len(all), all[0].Seq, spanBufferCap)
	}

	var nilBuf *SpanBuffer
	nilBuf.Observe(obs.Event{})
	if nilBuf.Drain(1) != nil || nilBuf.Dropped() != 0 {
		t.Error("nil SpanBuffer not inert")
	}
}

// The view's point state machine: one terminal transition per point,
// duplicates and late failures never double-count, resumes are free.
func TestViewStateMachineAndAudit(t *testing.T) {
	v := NewView("run-x", nil)
	v.SetTotal(4)

	// p1: assigned, computed fresh (2s measured on the worker).
	v.Observe(obs.Event{Kind: EventAssign, Point: "p1", Trace: "t1", Worker: "w1"})
	v.Observe(obs.Event{Kind: EventResult, Point: "p1", Trace: "t1", Worker: "w1",
		DurNS: int64(2 * time.Second), Detail: "computed"})
	// The stolen duplicate of p1 arrives: counted as a dup, not a result.
	v.Observe(obs.Event{Kind: EventResultDup, Point: "p1", Trace: "t1", Worker: "w2"})

	// p2: resumed from a worker journal — free for the ETA.
	v.Observe(obs.Event{Kind: EventAssign, Point: "p2", Worker: "w2"})
	v.Observe(obs.Event{Kind: EventResult, Point: "p2", Worker: "w2", Detail: detailResumed})

	// p3: failed.
	v.Observe(obs.Event{Kind: EventAssign, Point: "p3", Worker: "w1"})
	v.Observe(obs.Event{Kind: EventResultFail, Point: "p3", Worker: "w1", Error: "boom"})

	// p4: assigned, never finishes.
	v.Observe(obs.Event{Kind: EventAssign, Point: "p4", Worker: "w2"})

	a := v.Audit()
	if a.Points != 4 || a.Assigned != 4 || a.Done != 1 || a.Replayed != 1 || a.Failed != 1 {
		t.Errorf("audit = %+v", a)
	}
	if len(a.Incomplete) != 1 || a.Incomplete[0] != "p4" {
		t.Errorf("incomplete = %v, want [p4]", a.Incomplete)
	}
	if len(a.MultiResult) != 0 {
		t.Errorf("multiresult = %v, want none", a.MultiResult)
	}

	doc := v.Doc()
	if doc.Schema != SchemaV1 || doc.Run != "run-x" {
		t.Fatalf("doc header: %+v", doc)
	}
	if doc.Totals != (Totals{Workers: 2, Points: 4, Assigned: 4, Done: 1, Replayed: 1, Failed: 1, Events: 8}) {
		t.Errorf("totals = %+v", doc.Totals)
	}
	// ETA: one 2s sample, three free/failed of four total → 2s remaining... no:
	// 3 of 4 complete (done+replayed+failed), 1 outstanding at mean 2s.
	if !doc.ETA.HaveRemaining || doc.ETA.MeanPointMS != 2000 || doc.ETA.RemainingMS != 2000 {
		t.Errorf("eta = %+v, want mean 2000ms, remaining 2000ms", doc.ETA)
	}
	var w1 *WorkerStatus
	for i := range doc.Workers {
		if doc.Workers[i].Worker == "w1" {
			w1 = &doc.Workers[i]
		}
	}
	if w1 == nil || w1.Done != 1 || w1.Failed != 1 || w1.Duplicates != 0 {
		t.Errorf("w1 row = %+v", w1)
	}

	// Timeline lookup works by point name and by trace ID.
	byName, ok1 := v.Timeline("p1")
	byTrace, ok2 := v.Timeline("t1")
	if !ok1 || !ok2 || len(byName) != 3 || len(byTrace) != 3 {
		t.Errorf("timelines: name %d events (%v), trace %d events (%v)", len(byName), ok1, len(byTrace), ok2)
	}
	if _, ok := v.Timeline("nope"); ok {
		t.Error("unknown point resolved")
	}
}

// A duplicate fabric-result for an already-done point (the defensive
// path — the coordinator emits one per point by construction) must not
// feed the ETA twice, and is flagged by the audit.
func TestViewDoubleResultFlaggedNotDoubleCounted(t *testing.T) {
	v := NewView("r", nil)
	v.SetTotal(2)
	v.Observe(obs.Event{Kind: EventAssign, Point: "p", Worker: "w1"})
	v.Observe(obs.Event{Kind: EventResult, Point: "p", Worker: "w1", DurNS: int64(time.Second), Detail: "computed"})
	v.Observe(obs.Event{Kind: EventResult, Point: "p", Worker: "w2", DurNS: int64(9 * time.Second), Detail: "computed"})

	doc := v.Doc()
	if doc.Totals.Done != 1 {
		t.Errorf("done = %d, want 1", doc.Totals.Done)
	}
	if doc.ETA.MeanPointMS != 1000 {
		t.Errorf("mean = %dms: second result fed the ETA", doc.ETA.MeanPointMS)
	}
	a := v.Audit()
	if len(a.MultiResult) != 1 || a.MultiResult[0] != "p" {
		t.Errorf("multiresult = %v, want [p]", a.MultiResult)
	}
}

// A late failure after a completion does not demote the point, and a
// completion after a failure recovers it (matching the coordinator's
// "healthy result is better evidence" rule).
func TestViewFailThenResultRecovers(t *testing.T) {
	v := NewView("r", nil)
	v.Observe(obs.Event{Kind: EventAssign, Point: "p", Worker: "w1"})
	v.Observe(obs.Event{Kind: EventResultFail, Point: "p", Worker: "w1", Error: "watchdog"})
	v.Observe(obs.Event{Kind: EventResult, Point: "p", Worker: "w2", DurNS: int64(time.Second), Detail: "computed"})
	// And a failure arriving after done is ignored.
	v.Observe(obs.Event{Kind: EventResultFail, Point: "p", Worker: "w1", Error: "late"})

	doc := v.Doc()
	if doc.Totals.Done != 1 || doc.Totals.Failed != 0 {
		t.Errorf("totals = %+v, want the completion to win", doc.Totals)
	}
}

// View.Doc merges the coordinator's live worker links with event-only
// identities like "(local)".
func TestViewDocMergesLinksAndEventWorkers(t *testing.T) {
	v := NewView("r", nil)
	v.SetSource(func() []WorkerLink {
		return []WorkerLink{
			{Worker: "w1", Alive: true, ObsURL: "http://w1:9091", LeasesHeld: 2, HeartbeatAgeMS: 40},
			{Worker: "w2", Alive: false},
		}
	})
	v.Observe(obs.Event{Kind: EventLocal, Point: "p", Worker: "(local)"})
	v.Observe(obs.Event{Kind: EventResult, Point: "p", Worker: "(local)", Detail: "computed"})

	doc := v.Doc()
	if doc.Totals.Workers != 3 || doc.Totals.Live != 1 {
		t.Fatalf("totals = %+v, want 3 workers / 1 live", doc.Totals)
	}
	if doc.Workers[0].Worker != "w1" || !doc.Workers[0].Alive || doc.Workers[0].ObsURL != "http://w1:9091" || doc.Workers[0].LeasesHeld != 2 {
		t.Errorf("w1 row = %+v", doc.Workers[0])
	}
	if doc.Workers[2].Worker != "(local)" || doc.Workers[2].Done != 1 {
		t.Errorf("(local) row = %+v", doc.Workers[2])
	}
}

// serveMetrics is a fake worker /metrics endpoint.
func serveMetrics(t *testing.T, body string, fail *bool) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		if fail != nil && *fail {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, body)
	}))
}

// The federated render is deterministic, worker= labelled, and passes
// the same strict validator workers' own expositions do; a failed
// scrape keeps the last good document.
func TestFederatorMergeAndLastGood(t *testing.T) {
	w1fail := false
	w1 := serveMetrics(t, "# HELP a_total A.\n# TYPE a_total counter\na_total{k=\"v\"} 3\n", &w1fail)
	defer w1.Close()
	w2 := serveMetrics(t, "# HELP a_total A.\n# TYPE a_total counter\na_total{k=\"v\"} 5\n# TYPE b_gauge gauge\nb_gauge 1\n", nil)
	defer w2.Close()

	f := NewFederator()
	if err := f.Scrape("w1", w1.URL); err != nil {
		t.Fatal(err)
	}
	if err := f.Scrape("w2", w2.URL); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := f.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	render := out.String()
	for _, want := range []string{
		`a_total{k="v",worker="w1"} 3`,
		`a_total{k="v",worker="w2"} 5`,
		`b_gauge{worker="w2"} 1`,
	} {
		if !strings.Contains(render, want) {
			t.Errorf("federated render missing %q:\n%s", want, render)
		}
	}
	st, err := obs.ParseExposition(strings.NewReader(render))
	if err != nil {
		t.Fatalf("federated render fails own validator: %v\n%s", err, render)
	}
	if st.Families != 2 || st.Series != 3 {
		t.Errorf("stats = %+v, want 2 families / 3 series", st)
	}

	// Determinism: a second render is byte-identical.
	var again bytes.Buffer
	f.WritePrometheus(&again)
	if again.String() != render {
		t.Errorf("non-deterministic render:\n%s\nvs\n%s", render, again.String())
	}

	// w1 goes down: the scrape errors but the last good doc survives.
	w1fail = true
	if err := f.Scrape("w1", w1.URL); err == nil {
		t.Fatal("failed scrape reported success")
	}
	var after bytes.Buffer
	f.WritePrometheus(&after)
	if !strings.Contains(after.String(), `a_total{k="v",worker="w1"} 3`) {
		t.Errorf("last good doc lost on scrape failure:\n%s", after.String())
	}
	var errored bool
	for _, s := range f.Status() {
		if s.Worker == "w1" && s.Err != "" && s.Series == 1 {
			errored = true
		}
	}
	if !errored {
		t.Errorf("status does not carry the w1 scrape error: %+v", f.Status())
	}
}

// A strict-invalid worker exposition is rejected at scrape time and
// never pollutes the federated render.
func TestFederatorRejectsInvalidExposition(t *testing.T) {
	bad := serveMetrics(t, "m{a=\"1\",b=\"2\"} 1\nm{b=\"2\",a=\"1\"} 2\n", nil)
	defer bad.Close()
	f := NewFederator()
	if err := f.Scrape("w1", bad.URL); err == nil || !strings.Contains(err.Error(), "duplicate series") {
		t.Fatalf("scrape of duplicate-series exposition = %v, want duplicate-series error", err)
	}
	var out bytes.Buffer
	f.WritePrometheus(&out)
	if out.Len() != 0 {
		t.Errorf("invalid doc leaked into the render:\n%s", out.String())
	}
}

// The mirror wiring end-to-end: a log's events flow losslessly into the
// view, worker span events keep their origin wall stamps but take the
// log's sequence order.
func TestLogMirrorFeedsViewLosslessly(t *testing.T) {
	log := obs.NewLog(nil, "coord")
	log.SetClock(func() time.Time { return time.Unix(500, 0) })
	v := NewView("coord", nil)
	log.SetMirror(v.Observe)

	log.Emit(obs.Event{Kind: EventAssign, Point: "p", Trace: "t", Worker: "w1"})
	// A worker span re-emitted at the coordinator: origin stamp preserved.
	log.Emit(obs.Event{Kind: "point-start", Point: "p", Worker: "w1", Run: "worker-w1",
		WallUnixNS: time.Unix(400, 0).UnixNano()})
	log.Emit(obs.Event{Kind: EventResult, Point: "p", Trace: "t", Worker: "w1", Detail: "computed", DurNS: 5})

	tl, ok := v.Timeline("t")
	if !ok || len(tl) != 3 {
		t.Fatalf("timeline = %v events (ok=%v), want 3", len(tl), ok)
	}
	if tl[1].WallUnixNS != time.Unix(400, 0).UnixNano() {
		t.Errorf("worker span origin stamp rewritten: %d", tl[1].WallUnixNS)
	}
	if !(tl[0].Seq < tl[1].Seq && tl[1].Seq < tl[2].Seq) {
		t.Errorf("coordinator seq not monotone over the merged timeline: %d %d %d", tl[0].Seq, tl[1].Seq, tl[2].Seq)
	}
	if tl[1].Run != "worker-w1" {
		t.Errorf("worker run label lost: %q", tl[1].Run)
	}
}
