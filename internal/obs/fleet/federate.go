package fleet

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"clustersim/internal/obs"
)

// Target is one worker /metrics endpoint to federate: the worker ID
// and its obs server base URL (as advertised on the fabric Hello).
type Target struct {
	Worker string
	URL    string
}

// scrapeState is the last scrape outcome for one worker. A failed
// scrape records the error but keeps the last good document, so a
// worker that exits after draining still contributes its final counts.
type scrapeState struct {
	doc      *obs.Exposition
	err      string
	atUnixMS int64
}

// Federator periodically scrapes registered workers' /metrics (parsed
// with the same strict validator behind tracetool metrics) and renders
// the union with a worker= label spliced into every series, in the
// deterministic order the rest of the registry machinery guarantees:
// families sorted by name, then workers sorted, then samples in their
// per-worker document order (already signature-sorted by the worker's
// own renderer).
type Federator struct {
	mu      sync.Mutex
	client  *http.Client
	scrapes map[string]*scrapeState
	order   []string
}

// NewFederator creates a federator with a short per-scrape timeout —
// a wedged worker must not stall the poll loop.
func NewFederator() *Federator {
	return &Federator{
		client:  &http.Client{Timeout: 5 * time.Second},
		scrapes: make(map[string]*scrapeState),
	}
}

// state finds or creates a worker's scrape slot (caller holds f.mu).
func (f *Federator) state(worker string) *scrapeState {
	s := f.scrapes[worker]
	if s == nil {
		s = &scrapeState{}
		f.scrapes[worker] = s
		f.order = append(f.order, worker)
	}
	return s
}

// Scrape fetches and validates one worker's /metrics right now.
// baseURL is the worker's obs server root (http://host:port).
func (f *Federator) Scrape(worker, baseURL string) error {
	doc, err := f.fetch(baseURL)
	f.mu.Lock()
	s := f.state(worker)
	// Harness wall clock: scrape freshness stamp for the fleet doc only.
	s.atUnixMS = time.Now().UnixMilli() //simlint:allow wallclock
	if err != nil {
		s.err = err.Error()
	} else {
		s.err = ""
		s.doc = doc
	}
	f.mu.Unlock()
	return err
}

func (f *Federator) fetch(baseURL string) (*obs.Exposition, error) {
	resp, err := f.client.Get(baseURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("scrape %s/metrics: status %d", baseURL, resp.StatusCode)
	}
	doc, err := obs.ReadExposition(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("scrape %s/metrics: %v", baseURL, err)
	}
	return doc, nil
}

// Poll scrapes every target on each tick until stop closes. targets is
// re-evaluated per round so newly joined workers federate without a
// restart. Runs in the caller's goroutine.
func (f *Federator) Poll(interval time.Duration, targets func() []Target, stop <-chan struct{}) {
	if interval <= 0 {
		interval = time.Second
	}
	// Harness pacing only: the scrape cadence never feeds simulated state.
	t := time.NewTicker(interval) //simlint:allow wallclock
	defer t.Stop()
	for {
		for _, tgt := range targets() {
			if tgt.URL == "" {
				continue
			}
			f.Scrape(tgt.Worker, tgt.URL)
		}
		select {
		case <-stop:
			return
		case <-t.C:
		}
	}
}

// ScrapeStatus is one worker's last-scrape summary for the fleet doc.
type ScrapeStatus struct {
	Worker   string
	Err      string
	AtUnixMS int64
	Series   int
}

// Status reports every scraped worker in first-seen order.
func (f *Federator) Status() []ScrapeStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]ScrapeStatus, 0, len(f.order))
	for _, w := range f.order {
		s := f.scrapes[w]
		st := ScrapeStatus{Worker: w, Err: s.err, AtUnixMS: s.atUnixMS}
		if s.doc != nil {
			st.Series = s.doc.Stats().Series
		}
		out = append(out, st)
	}
	return out
}

// WritePrometheus renders the federated exposition: every worker's last
// good scrape, re-labelled with worker=<id>. Deterministic for a fixed
// set of scrape documents; the output passes ParseExposition (the
// worker label makes colliding series distinct).
func (f *Federator) WritePrometheus(w io.Writer) error {
	f.mu.Lock()
	workers := make([]string, 0, len(f.order))
	docs := make(map[string]*obs.Exposition, len(f.order))
	for _, id := range f.order {
		if s := f.scrapes[id]; s.doc != nil {
			workers = append(workers, id)
			docs[id] = s.doc
		}
	}
	f.mu.Unlock()
	sort.Strings(workers)

	// Union of family names; kind/help from the first worker declaring
	// the family (they agree in practice — every worker runs the same
	// registry code).
	type famMeta struct{ kind, help string }
	fams := make(map[string]famMeta)
	var famNames []string
	for _, id := range workers {
		for i := range docs[id].Families {
			fam := &docs[id].Families[i]
			if _, ok := fams[fam.Name]; !ok {
				fams[fam.Name] = famMeta{kind: fam.Kind, help: fam.Help}
				famNames = append(famNames, fam.Name)
			}
		}
	}
	sort.Strings(famNames)

	bw := bufio.NewWriter(w)
	for _, name := range famNames {
		meta := fams[name]
		if meta.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, meta.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, meta.kind)
		for _, id := range workers {
			for i := range docs[id].Families {
				fam := &docs[id].Families[i]
				if fam.Name != name {
					continue
				}
				for _, s := range fam.Samples {
					labels := make([]obs.Label, 0, len(s.Labels)+1)
					labels = append(labels, s.Labels...)
					labels = append(labels, obs.L("worker", id))
					fmt.Fprintf(bw, "%s%s %s\n", s.Name, obs.Signature(labels), obs.FormatValue(s.Value))
				}
			}
		}
	}
	return bw.Flush()
}
