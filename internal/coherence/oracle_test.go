package coherence

import (
	"fmt"
	"math/rand"
	"testing"

	"clustersim/internal/cache"
	"clustersim/internal/memory"
)

// oracle is an independent, deliberately naive reference implementation
// of the protocol semantics: per-cluster LRU arrays as plain slices, a
// map-based directory, and straight-line rules transcribed from the
// paper. It exists only to differentially test the production System —
// every access must produce the same classification, service class and
// stall on both.
type oracle struct {
	clusters int
	capacity int // lines per cluster; 0 = infinite
	lat      Latencies

	// Per cluster: resident lines, most recently used first.
	lru [][]oline
	// Directory: line -> state + sharers.
	dir map[uint64]*oentry
	// Page homes assigned round-robin on first touch.
	homes  map[uint64]int
	rrNext int
}

type oline struct {
	tag     uint64
	excl    bool
	readyAt Clock
	fillEx  bool
	pending bool
}

type oentry struct {
	excl    bool
	sharers map[int]bool
}

func newOracle(clusters, capacity int, lat Latencies) *oracle {
	o := &oracle{
		clusters: clusters,
		capacity: capacity,
		lat:      lat,
		lru:      make([][]oline, clusters),
		dir:      map[uint64]*oentry{},
		homes:    map[uint64]int{},
	}
	return o
}

func (o *oracle) home(addr uint64) int {
	page := addr >> 12
	if h, ok := o.homes[page]; ok {
		return h
	}
	h := o.rrNext
	o.rrNext = (o.rrNext + 1) % o.clusters
	o.homes[page] = h
	return h
}

func (o *oracle) find(cl int, tag uint64) int {
	for i := range o.lru[cl] {
		if o.lru[cl][i].tag == tag {
			return i
		}
	}
	return -1
}

func (o *oracle) touch(cl, i int) {
	l := o.lru[cl][i]
	copy(o.lru[cl][1:i+1], o.lru[cl][:i])
	o.lru[cl][0] = l
}

func (o *oracle) settle(cl, i int, now Clock) {
	l := &o.lru[cl][i]
	if l.pending && now >= l.readyAt {
		l.pending = false
		l.excl = l.fillEx
	}
}

func (o *oracle) entry(tag uint64) *oentry {
	e := o.dir[tag]
	if e == nil {
		e = &oentry{sharers: map[int]bool{}}
		o.dir[tag] = e
	}
	return e
}

// insert adds a pending fill at the MRU position, evicting the LRU
// settled line if at capacity.
func (o *oracle) insert(cl int, tag uint64, fillEx bool, now, readyAt Clock) {
	if o.capacity > 0 && len(o.lru[cl]) >= o.capacity {
		// Find the least recently used settled victim.
		vi := -1
		for i := len(o.lru[cl]) - 1; i >= 0; i-- {
			o.settle(cl, i, now)
			if !o.lru[cl][i].pending {
				vi = i
				break
			}
		}
		if vi >= 0 {
			v := o.lru[cl][vi]
			o.lru[cl] = append(o.lru[cl][:vi], o.lru[cl][vi+1:]...)
			e := o.entry(v.tag)
			delete(e.sharers, cl) // hint or writeback both clear the bit
			if v.excl || len(e.sharers) == 0 {
				delete(o.dir, v.tag)
			} else {
				e.excl = false
			}
			if v.excl {
				// Writeback: no other sharers could exist.
				delete(o.dir, v.tag)
			}
		}
	}
	o.lru[cl] = append([]oline{{tag: tag, pending: true, readyAt: readyAt, fillEx: fillEx}}, o.lru[cl]...)
}

func (o *oracle) invalidateOthers(tag uint64, cl int) {
	e := o.entry(tag)
	for j := range e.sharers {
		if j == cl {
			continue
		}
		if i := o.find(j, tag); i >= 0 {
			o.lru[j] = append(o.lru[j][:i], o.lru[j][i+1:]...)
		}
	}
	o.dir[tag] = &oentry{sharers: map[int]bool{}}
}

func (o *oracle) owner(tag uint64) int {
	e := o.entry(tag)
	for j := range e.sharers {
		return j
	}
	return -1
}

func (o *oracle) read(cl int, addr uint64, now Clock) Access {
	tag := addr >> 6
	if i := o.find(cl, tag); i >= 0 {
		o.settle(cl, i, now)
		if o.lru[cl][i].pending {
			st := o.lru[cl][i].readyAt - now
			o.touch(cl, i)
			return Access{Class: MergeMiss, Stall: st}
		}
		o.touch(cl, i)
		return Access{Class: Hit}
	}
	h := o.home(addr)
	e := o.entry(tag)
	var hops Hops
	if e.excl {
		own := o.owner(tag)
		// Downgrade the owner's copy.
		if i := o.find(own, tag); i >= 0 {
			l := &o.lru[own][i]
			if l.pending {
				l.fillEx = false
			} else {
				l.excl = false
			}
		}
		e.excl = false
		switch {
		case cl == h:
			hops = HopLocalDirty
		case own == h:
			hops = HopRemoteClean
		default:
			hops = HopRemoteDirty
		}
	} else if cl == h {
		hops = HopLocalClean
	} else {
		hops = HopRemoteClean
	}
	lat := o.lat.of(hops)
	e.sharers[cl] = true
	o.insert(cl, tag, false, now, now+lat)
	return Access{Class: ReadMiss, Hops: hops, Stall: lat}
}

func (o *oracle) write(cl int, addr uint64, now Clock) Access {
	tag := addr >> 6
	if i := o.find(cl, tag); i >= 0 {
		o.settle(cl, i, now)
		l := &o.lru[cl][i]
		if l.pending {
			if l.fillEx {
				o.touch(cl, i)
				return Access{Class: WriteMerge}
			}
			o.invalidateOthers(tag, cl)
			e := o.entry(tag)
			e.excl = true
			e.sharers[cl] = true
			// Pointer may be stale after invalidateOthers touched other
			// clusters' slices only; re-find to mutate ours.
			j := o.find(cl, tag)
			o.lru[cl][j].fillEx = true
			o.touch(cl, j)
			return Access{Class: Upgrade}
		}
		if l.excl {
			o.touch(cl, i)
			return Access{Class: Hit}
		}
		o.invalidateOthers(tag, cl)
		e := o.entry(tag)
		e.excl = true
		e.sharers[cl] = true
		j := o.find(cl, tag)
		o.lru[cl][j].excl = true
		o.touch(cl, j)
		return Access{Class: Upgrade}
	}
	h := o.home(addr)
	e := o.entry(tag)
	var hops Hops
	if e.excl {
		own := o.owner(tag)
		switch {
		case cl == h:
			hops = HopLocalDirty
		case own == h:
			hops = HopRemoteClean
		default:
			hops = HopRemoteDirty
		}
	} else if cl == h {
		hops = HopLocalClean
	} else {
		hops = HopRemoteClean
	}
	o.invalidateOthers(tag, cl)
	e = o.entry(tag)
	e.excl = true
	e.sharers[cl] = true
	o.insert(cl, tag, true, now, now+o.lat.of(hops))
	return Access{Class: WriteMiss, Hops: hops, Stall: o.lat.of(hops)}
}

// TestDifferentialOracle replays long random workloads through both the
// production System and the naive oracle and requires identical
// classification, hop class and stall for every single access.
func TestDifferentialOracle(t *testing.T) {
	for _, capacity := range []int{0, 8, 64} {
		capacity := capacity
		t.Run(fmt.Sprintf("capacity=%d", capacity), func(t *testing.T) {
			as, err := memory.New(4096, 4)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := NewSystem(as, 4, capacity, 64, DefaultLatencies(), cache.LRU)
			if err != nil {
				t.Fatal(err)
			}
			base := as.Alloc(1<<20, "data")
			orc := newOracle(4, capacity, DefaultLatencies())
			// Pre-align the oracle's first-touch rotation with the real
			// allocator by mirroring page homes lazily through the same
			// access sequence (both assign round-robin on first touch).
			r := rand.New(rand.NewSource(2024))
			now := Clock(0)
			for step := 0; step < 60000; step++ {
				cl := r.Intn(4)
				addr := base + uint64(r.Intn(2048))*8
				var got, want Access
				if r.Intn(3) == 0 {
					got = sys.Write(cl, cl, addr, now)
					want = orc.write(cl, addr, now)
				} else {
					got = sys.Read(cl, cl, addr, now)
					want = orc.read(cl, addr, now)
				}
				if got != want {
					t.Fatalf("step %d (cl %d, addr %#x, t %d): system %+v, oracle %+v",
						step, cl, addr, now, got, want)
				}
				// The sanitizer's per-line spot check must hold after
				// every transaction, and the full audit at intervals
				// (it also covers lines that only evictions touched).
				if err := sys.CheckLine(addr, now); err != nil {
					t.Fatalf("step %d (cl %d, addr %#x, t %d): %v", step, cl, addr, now, err)
				}
				if step%5000 == 4999 {
					if err := sys.CheckInvariants(now); err != nil {
						t.Fatalf("step %d: full audit: %v", step, err)
					}
				}
				now += Clock(r.Intn(7))
			}
		})
	}
}
