package coherence

import (
	"math/rand"
	"testing"

	"clustersim/internal/cache"
	"clustersim/internal/memory"
)

// memSys builds a shared-memory-cluster system: 2 clusters × 2 procs,
// per-proc caches of l1Lines lines (0 = infinite).
func memSys(t *testing.T, l1Lines int) (*MemClusterSystem, memory.Addr) {
	t.Helper()
	as, err := memory.New(4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewMemClusterSystem(as, 2, 2, l1Lines, 0, 64, DefaultLatencies(),
		DefaultBusCycles, cache.LRU)
	if err != nil {
		t.Fatal(err)
	}
	base := as.Alloc(1<<20, "data")
	return s, base
}

func TestMemClusterValidation(t *testing.T) {
	as, _ := memory.New(4096, 2)
	if _, err := NewMemClusterSystem(as, 3, 2, 0, 0, 64, DefaultLatencies(), 15, cache.LRU); err == nil {
		t.Error("want error for cluster-count mismatch")
	}
	if _, err := NewMemClusterSystem(as, 2, 0, 0, 0, 64, DefaultLatencies(), 15, cache.LRU); err == nil {
		t.Error("want error for zero cluster size")
	}
	if _, err := NewMemClusterSystem(as, 2, 2, 0, 0, 64, DefaultLatencies(), 0, cache.LRU); err == nil {
		t.Error("want error for zero bus latency")
	}
	if _, err := NewMemClusterSystem(as, 2, 2, 0, 0, 63, DefaultLatencies(), 15, cache.LRU); err == nil {
		t.Error("want error for bad line size")
	}
}

func TestIntraClusterFetchIsCheap(t *testing.T) {
	s, base := memSys(t, 0)
	// Proc 0 (cluster 0) takes the global miss.
	a := s.Read(0, 0, base, 0)
	if a.Class != ReadMiss || a.Hops == HopIntraCluster {
		t.Fatalf("first read = %+v, want a global miss", a)
	}
	// Proc 1 (same cluster) finds it in the cluster: bus latency only.
	b := s.Read(1, 0, base, 100)
	if b.Class != ReadMiss || b.Hops != HopIntraCluster || b.Stall != DefaultBusCycles {
		t.Fatalf("sibling read = %+v, want intra-cluster at %d cycles", b, DefaultBusCycles)
	}
	// Proc 2 (other cluster) pays the full remote latency.
	c := s.Read(2, 1, base, 200)
	if c.Hops == HopIntraCluster || c.Stall < 30 {
		t.Fatalf("remote read = %+v, want a global miss", c)
	}
}

func TestMemClusterPrivateCachesHit(t *testing.T) {
	s, base := memSys(t, 0)
	s.Read(0, 0, base, 0)
	if a := s.Read(0, 0, base, 100); a.Class != Hit {
		t.Fatalf("second read by same proc = %+v, want Hit", a)
	}
}

func TestOwnershipStaysInCluster(t *testing.T) {
	// The paper: "invalidations are sent to processors that have copies
	// of the data item, but ownership is kept within the cluster" — a
	// sibling's write after a sibling's read needs no global traffic.
	s, base := memSys(t, 0)
	s.Write(0, 0, base, 0) // cluster 0 owns the line
	a := s.Write(1, 0, base, 100)
	if a.Class != WriteMiss || a.Hops != HopIntraCluster {
		t.Fatalf("sibling write = %+v, want intra-cluster write miss", a)
	}
	// Proc 0's private copy must be gone.
	if got := s.Read(0, 0, base, 200); got.Hops != HopIntraCluster {
		t.Fatalf("original writer reread = %+v, want intra-cluster refetch", got)
	}
	// Throughout, the directory still shows cluster 0 exclusive: a read
	// from cluster 1 is a dirty-remote transaction.
	b := s.Read(2, 1, base, 400)
	if b.Hops == HopIntraCluster || b.Class != ReadMiss {
		t.Fatalf("remote read of cluster-owned line = %+v", b)
	}
}

func TestCrossClusterInvalidationClearsEverything(t *testing.T) {
	s, base := memSys(t, 0)
	s.Read(0, 0, base, 0)
	s.Read(1, 0, base, 100)
	s.Write(2, 1, base, 200) // cluster 1 takes ownership
	// Both cluster-0 procs and the attraction memory lost the line.
	if s.InCluster(0, base>>6) {
		t.Fatal("cluster 0 attraction memory still holds the line")
	}
	if !s.InCluster(1, base>>6) {
		t.Fatal("cluster 1 attraction memory should hold the line it wrote")
	}
	if got := s.Read(0, 0, base, 400); got.Hops == HopIntraCluster || got.Class != ReadMiss {
		t.Fatalf("read after invalidation = %+v, want global miss", got)
	}
}

func TestSharedUpgradeInvalidatesOtherCluster(t *testing.T) {
	s, base := memSys(t, 0)
	s.Read(0, 0, base, 0)
	s.Read(2, 1, base, 100)
	// Upgrade in cluster 0: cluster 1's copy must go.
	a := s.Write(0, 0, base, 300)
	if a.Class != Upgrade {
		t.Fatalf("write on shared = %+v, want Upgrade", a)
	}
	if got := s.Read(2, 1, base, 500); got.Class != ReadMiss || got.Hops == HopIntraCluster {
		t.Fatalf("other cluster after upgrade = %+v, want global miss", got)
	}
}

func TestEvictionStaysInCluster(t *testing.T) {
	// With a tiny private cache, evicted lines are re-fetched over the
	// bus, not from the directory — the attraction memory retains them.
	s, base := memSys(t, 2)
	s.Read(0, 0, base, 0)
	s.Read(0, 0, base+64, 100)
	s.Read(0, 0, base+128, 200) // evicts line 0 from the private cache
	a := s.Read(0, 0, base, 400)
	if a.Hops != HopIntraCluster {
		t.Fatalf("refetch after private eviction = %+v, want intra-cluster", a)
	}
}

func TestDirtyEvictionWritesBackToCluster(t *testing.T) {
	s, base := memSys(t, 2)
	s.Write(0, 0, base, 0)
	s.Read(0, 0, base+64, 100)
	s.Read(0, 0, base+128, 200) // evicts the dirty line into the attraction memory
	if st := s.ClusterStats(0); st.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", st.Writebacks)
	}
	// Ownership still in cluster: sibling write is intra-cluster.
	if a := s.Write(1, 0, base, 400); a.Hops != HopIntraCluster {
		t.Fatalf("sibling write after writeback = %+v", a)
	}
}

func TestMemClusterMerge(t *testing.T) {
	s, base := memSys(t, 0)
	s.Read(0, 0, base, 0) // fill pending until 30 (local clean)
	a := s.Read(0, 0, base, 10)
	if a.Class != MergeMiss || a.Stall != 20 {
		t.Fatalf("merge = %+v", a)
	}
}

func TestMemClusterRandomTrafficInvariants(t *testing.T) {
	for _, lines := range []int{0, 8} {
		s, base := memSys(t, lines)
		r := rand.New(rand.NewSource(99))
		now := Clock(0)
		for step := 0; step < 20000; step++ {
			proc := r.Intn(4)
			cl := proc / 2
			addr := base + uint64(r.Intn(256))*8
			if r.Intn(3) == 0 {
				s.Write(proc, cl, addr, now)
			} else {
				s.Read(proc, cl, addr, now)
			}
			now += Clock(r.Intn(5))
			if step%2000 == 0 {
				if err := s.CheckInvariants(now); err != nil {
					t.Fatalf("l1=%d step %d: %v", lines, step, err)
				}
			}
		}
		if err := s.CheckInvariants(now + 1000); err != nil {
			t.Fatalf("l1=%d final: %v", lines, err)
		}
	}
}

func TestMemClusterWrongClusterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong cluster did not panic")
		}
	}()
	s, base := memSys(t, 0)
	s.Read(0, 1, base, 0) // proc 0 is in cluster 0
}
