package coherence

import (
	"math/rand"
	"testing"

	"clustersim/internal/cache"
	"clustersim/internal/memory"
)

func benchSystem(b *testing.B, cacheLines int) (*System, memory.Addr) {
	b.Helper()
	as, err := memory.New(4096, 8)
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewSystem(as, 8, cacheLines, 64, DefaultLatencies(), cache.LRU)
	if err != nil {
		b.Fatal(err)
	}
	return s, as.Alloc(1<<22, "bench")
}

// BenchmarkProtocolReadHit measures the hot path: repeated hits.
func BenchmarkProtocolReadHit(b *testing.B) {
	s, base := benchSystem(b, 0)
	s.Read(0, 0, base, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Read(0, 0, base, Clock(i)+100)
	}
}

// BenchmarkProtocolColdMisses measures fill+directory work.
func BenchmarkProtocolColdMisses(b *testing.B) {
	s, base := benchSystem(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Read(i%8, i%8, base+uint64(i%65536)*64, Clock(i))
	}
}

// BenchmarkProtocolSharingMix measures a read/write mix with
// invalidations and a finite cache (evictions, hints, writebacks).
func BenchmarkProtocolSharingMix(b *testing.B) {
	s, base := benchSystem(b, 256)
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl := r.Intn(8)
		addr := base + uint64(r.Intn(4096))*64
		if r.Intn(4) == 0 {
			s.Write(cl, cl, addr, Clock(i))
		} else {
			s.Read(cl, cl, addr, Clock(i))
		}
	}
}

// BenchmarkMemClusterSharingMix measures the shared-main-memory variant
// on the same workload shape.
func BenchmarkMemClusterSharingMix(b *testing.B) {
	as, err := memory.New(4096, 4)
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewMemClusterSystem(as, 4, 2, 256, 0, 64, DefaultLatencies(),
		DefaultBusCycles, cache.LRU)
	if err != nil {
		b.Fatal(err)
	}
	base := as.Alloc(1<<22, "bench")
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proc := r.Intn(8)
		addr := base + uint64(r.Intn(4096))*64
		if r.Intn(4) == 0 {
			s.Write(proc, proc/2, addr, Clock(i))
		} else {
			s.Read(proc, proc/2, addr, Clock(i))
		}
	}
}
