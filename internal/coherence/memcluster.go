package coherence

import (
	"fmt"
	"math/bits"

	"clustersim/internal/cache"
	"clustersim/internal/directory"
	"clustersim/internal/fault"
	"clustersim/internal/memory"
)

// DefaultBusCycles is the intra-cluster snoopy-bus transfer latency of a
// shared-main-memory cluster — "the snoopy bus increases the latency of
// fetching data from the memory because it adds arbitration, queueing
// and electrical delays", but it is still far cheaper than leaving the
// cluster.
const DefaultBusCycles Clock = 15

// MemClusterSystem models the paper's second cluster organisation
// (Section 2): each processor keeps a private cache; the processors of a
// cluster are connected by a snoopy bus to an effectively infinite
// attraction memory, "as in a flat COMA style machine". Misses that find
// their line anywhere inside the cluster are satisfied over the bus;
// only lines absent from the whole cluster use the inter-cluster
// directory protocol with the Table 1 latencies.
//
// The essential contrasts with the shared-cache System are exactly the
// paper's: there is no destructive interference between processors
// (private caches), working sets are duplicated rather than overlapped,
// and communication savings appear as cheap intra-cluster bus transfers
// rather than outright hits.
type MemClusterSystem struct {
	as          *memory.AddressSpace
	dir         *directory.Directory // cluster-granularity sharer sets
	l1          []cache.Store        // per processor
	attraction  []map[uint64]cache.State
	clusterSize int
	lat         Latencies
	bus         Clock
	lineShift   uint
	numClusters int
	clusterStat []Stats
	obs         Observer
	inj         *fault.Injector
}

// NewMemClusterSystem builds a shared-main-memory-cluster system.
// l1Lines is the per-processor cache capacity in lines (0 = infinite);
// clusterSize processors share each attraction memory.
func NewMemClusterSystem(as *memory.AddressSpace, numClusters, clusterSize, l1Lines, ways int,
	lineBytes uint64, lat Latencies, bus Clock, policy cache.ReplacePolicy) (*MemClusterSystem, error) {
	if numClusters != as.NumClusters() {
		return nil, fmt.Errorf("coherence: %d clusters but address space has %d",
			numClusters, as.NumClusters())
	}
	if clusterSize <= 0 {
		return nil, fmt.Errorf("coherence: cluster size %d must be positive", clusterSize)
	}
	if lineBytes == 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("coherence: line size %d must be a power of two", lineBytes)
	}
	if bus <= 0 {
		return nil, fmt.Errorf("coherence: bus latency %d must be positive", bus)
	}
	dir, err := directory.New(numClusters)
	if err != nil {
		return nil, err
	}
	s := &MemClusterSystem{
		as:          as,
		dir:         dir,
		clusterSize: clusterSize,
		lat:         lat,
		bus:         bus,
		lineShift:   uint(bits.TrailingZeros64(lineBytes)),
		numClusters: numClusters,
		clusterStat: make([]Stats, numClusters),
	}
	nProcs := numClusters * clusterSize
	s.l1 = make([]cache.Store, nProcs)
	for i := range s.l1 {
		if ways == 0 {
			s.l1[i] = cache.New(l1Lines, policy)
			continue
		}
		sa, err := cache.NewSetAssoc(l1Lines, ways, policy)
		if err != nil {
			return nil, err
		}
		s.l1[i] = sa
	}
	s.attraction = make([]map[uint64]cache.State, numClusters)
	for i := range s.attraction {
		s.attraction[i] = make(map[uint64]cache.State)
	}
	return s, nil
}

// LineBytes returns the coherence granularity.
func (s *MemClusterSystem) LineBytes() uint64 { return 1 << s.lineShift }

// ClusterStats returns one cluster's protocol counters.
func (s *MemClusterSystem) ClusterStats(cluster int) Stats { return s.clusterStat[cluster] }

// ResetStats zeroes the protocol counters.
func (s *MemClusterSystem) ResetStats() {
	for i := range s.clusterStat {
		s.clusterStat[i] = Stats{}
	}
}

// L1 returns a processor's private cache, for inspection.
func (s *MemClusterSystem) L1(proc int) cache.Store { return s.l1[proc] }

// SetObserver attaches a protocol-event observer. Only cluster-level
// copy losses are reported: a private-cache eviction or invalidation
// whose line the attraction memory retains is invisible, because the
// cluster never lost the data.
func (s *MemClusterSystem) SetObserver(o Observer) { s.obs = o }

// SetFaults attaches a deterministic fault injector (nil detaches).
// Only inter-cluster directory traffic is exposed to faults; the
// intra-cluster snoopy bus is reliable.
func (s *MemClusterSystem) SetFaults(in *fault.Injector) { s.inj = in }

// injectFetch consults the fault plan for one global fetch or ownership
// request, as System.injectFetch.
func (s *MemClusterSystem) injectFetch(line uint64, cluster int, hops Hops, now Clock) Clock {
	if s.inj == nil {
		return 0
	}
	extra, nacks := s.inj.Fetch(line, cluster, hops != HopLocalClean, now)
	st := &s.clusterStat[cluster]
	st.Nacks += uint64(nacks)
	st.FaultCycles += uint64(extra)
	return extra
}

// InCluster reports whether the cluster's attraction memory holds line.
func (s *MemClusterSystem) InCluster(cluster int, line uint64) bool {
	_, ok := s.attraction[cluster][line]
	return ok
}

// Read simulates a load by processor proc (in cluster) at time now.
func (s *MemClusterSystem) Read(proc, cluster int, addr memory.Addr, now Clock) Access {
	s.check(proc, cluster, addr)
	line := addr >> s.lineShift
	l1 := s.l1[proc]
	if l := l1.Lookup(line, now); l != nil {
		l1.Touch(l)
		if l.Pending {
			return Access{Class: MergeMiss, Stall: l.ReadyAt - now}
		}
		return Access{Class: Hit}
	}
	// In-cluster: the snoopy bus finds the line in a sibling cache or
	// the attraction memory — the paper's cache-to-cache sharing.
	if _, ok := s.attraction[cluster][line]; ok {
		s.insertL1(proc, cluster, line, cache.Shared, now, now+s.bus)
		return Access{Class: ReadMiss, Hops: HopIntraCluster, Stall: s.bus}
	}
	// Global miss: directory protocol at cluster granularity.
	home := s.as.HomeOf(addr)
	e := s.dir.Lookup(line)
	var hops Hops
	if e.State == directory.Exclusive {
		owner := e.Owner()
		if owner == cluster {
			panic(fmt.Sprintf("coherence: cluster %d misses on line %#x it owns", cluster, line))
		}
		s.downgradeCluster(owner, line)
		s.dir.Downgrade(line)
		switch {
		case cluster == home:
			hops = HopLocalDirty
		case owner == home:
			hops = HopRemoteClean
		default:
			hops = HopRemoteDirty
		}
	} else {
		if cluster == home {
			hops = HopLocalClean
		} else {
			hops = HopRemoteClean
		}
	}
	lat := s.lat.of(hops) + s.injectFetch(line, cluster, hops, now)
	s.dir.AddSharer(line, cluster)
	s.attraction[cluster][line] = cache.Shared
	s.insertL1(proc, cluster, line, cache.Shared, now, now+lat)
	return Access{Class: ReadMiss, Hops: hops, Stall: lat}
}

// Write simulates a store by processor proc at time now. As in the
// shared-cache organisation, store latency is hidden; ownership moves
// instantaneously. The cluster keeps ownership whenever it already has
// it — the paper's "invalidations ... stay within the same cluster".
func (s *MemClusterSystem) Write(proc, cluster int, addr memory.Addr, now Clock) Access {
	s.check(proc, cluster, addr)
	line := addr >> s.lineShift
	l1 := s.l1[proc]
	if l := l1.Lookup(line, now); l != nil {
		l1.Touch(l)
		if l.Pending {
			if l.FillState == cache.Exclusive {
				return Access{Class: WriteMerge}
			}
			ack := s.makeExclusive(proc, cluster, line, now)
			l.FillState = cache.Exclusive
			return Access{Class: Upgrade, Stall: ack}
		}
		switch l.State {
		case cache.Exclusive:
			return Access{Class: Hit}
		case cache.Shared:
			ack := s.makeExclusive(proc, cluster, line, now)
			l.State = cache.Exclusive
			return Access{Class: Upgrade, Stall: ack}
		}
	}
	if _, ok := s.attraction[cluster][line]; ok {
		// In-cluster write miss: bus fetch (hidden) plus ownership.
		ack := s.makeExclusive(proc, cluster, line, now)
		s.insertL1(proc, cluster, line, cache.Exclusive, now, now+s.bus)
		return Access{Class: WriteMiss, Hops: HopIntraCluster, Stall: s.bus + ack}
	}
	// Global write miss.
	home := s.as.HomeOf(addr)
	e := s.dir.Lookup(line)
	var hops Hops
	if e.State == directory.Exclusive {
		owner := e.Owner()
		switch {
		case cluster == home:
			hops = HopLocalDirty
		case owner == home:
			hops = HopRemoteClean
		default:
			hops = HopRemoteDirty
		}
	} else {
		if cluster == home {
			hops = HopLocalClean
		} else {
			hops = HopRemoteClean
		}
	}
	lat := s.lat.of(hops) + s.injectFetch(line, cluster, hops, now)
	ack := s.invalidateOtherClusters(line, cluster, proc, now)
	s.dir.SetExclusive(line, cluster)
	s.attraction[cluster][line] = cache.Exclusive
	s.insertL1(proc, cluster, line, cache.Exclusive, now, now+lat)
	return Access{Class: WriteMiss, Hops: hops, Stall: lat + ack}
}

// makeExclusive gives proc's cluster exclusive ownership of line and
// removes every other copy: other clusters entirely, and the sibling
// processors' private caches within the cluster. It returns the
// writer's wait for the slowest injected straggler acknowledgement
// (always 0 when the cluster already owned the line — no messages
// leave the cluster, and the snoopy bus is reliable).
func (s *MemClusterSystem) makeExclusive(proc, cluster int, line uint64, now Clock) Clock {
	var ack Clock
	if st, ok := s.attraction[cluster][line]; !ok || st != cache.Exclusive {
		ack = s.invalidateOtherClusters(line, cluster, proc, now)
		s.dir.SetExclusive(line, cluster)
		s.attraction[cluster][line] = cache.Exclusive
	}
	base := cluster * s.clusterSize
	for q := base; q < base+s.clusterSize; q++ {
		if q == proc {
			continue
		}
		if s.l1[q].Invalidate(line) {
			s.clusterStat[cluster].InvalidationsSent++
			s.clusterStat[cluster].InvalidationsReceived++
		}
	}
	return ack
}

// invalidateOtherClusters removes line from every cluster except the
// writer's: their attraction memories and all their processors' caches.
// The write was issued by proc at time now; each victim cluster's loss
// is reported to the observer. It returns the writer's wait for the
// slowest injected straggler acknowledgement (0 without fault
// injection) — acks are gathered in parallel, so waits overlap.
func (s *MemClusterSystem) invalidateOtherClusters(line uint64, cluster, proc int, now Clock) Clock {
	var ackDelay Clock
	mask := s.dir.ClearAll(line)
	mask &^= 1 << uint(cluster)
	for mask != 0 {
		j := bits.TrailingZeros64(mask)
		mask &^= 1 << uint(j)
		delete(s.attraction[j], line)
		base := j * s.clusterSize
		for q := base; q < base+s.clusterSize; q++ {
			s.l1[q].Invalidate(line)
		}
		s.clusterStat[j].InvalidationsReceived++
		s.clusterStat[cluster].InvalidationsSent++
		if s.obs != nil {
			s.obs.Invalidated(line, proc, cluster, j, now)
		}
		if s.inj != nil {
			if d := s.inj.AckDelay(line, j, now); d > 0 {
				s.clusterStat[j].AckDelays++
				if d > ackDelay {
					ackDelay = d
				}
			}
		}
	}
	s.clusterStat[cluster].FaultCycles += uint64(ackDelay)
	return ackDelay
}

// downgradeCluster moves a cluster's exclusive line to shared: the
// attraction memory keeps a shared copy and any dirty private copy is
// downgraded in place.
func (s *MemClusterSystem) downgradeCluster(cluster int, line uint64) {
	s.attraction[cluster][line] = cache.Shared
	base := cluster * s.clusterSize
	for q := base; q < base+s.clusterSize; q++ {
		s.l1[q].Downgrade(line)
	}
}

// insertL1 installs a fill in a private cache. Evictions stay inside the
// cluster: clean victims drop silently (the attraction memory retains
// the line), dirty victims write back into the attraction memory — no
// directory traffic either way.
func (s *MemClusterSystem) insertL1(proc, cluster int, line uint64, fill cache.State, now, readyAt Clock) {
	victim, evicted := s.l1[proc].Insert(line, fill, now, readyAt)
	if evicted && victim.State == cache.Exclusive {
		s.clusterStat[cluster].Writebacks++ // intra-cluster writeback
	}
}

func (s *MemClusterSystem) check(proc, cluster int, addr memory.Addr) {
	if proc < 0 || proc >= len(s.l1) || proc/s.clusterSize != cluster {
		panic(fmt.Sprintf("coherence: processor %d is not in cluster %d", proc, cluster))
	}
	if !s.as.Mapped(addr) {
		panic(fmt.Sprintf("coherence: access to unallocated address %#x", addr))
	}
}

// CheckLine audits one line's directory/attraction/private-cache
// agreement at time now — the sanitizer's per-transaction spot check.
// Peek keeps the audit non-mutating.
func (s *MemClusterSystem) CheckLine(addr memory.Addr, now Clock) error {
	line := addr >> s.lineShift
	e := s.dir.Lookup(line)
	for cl := 0; cl < s.numClusters; cl++ {
		if _, present := s.attraction[cl][line]; e.Has(cl) != present {
			return fmt.Errorf("line %#x: directory bit %v but attraction presence %v in cluster %d",
				line, e.Has(cl), present, cl)
		}
	}
	if e.State == directory.Exclusive && e.NumSharers() != 1 {
		return fmt.Errorf("line %#x: EXCLUSIVE with %d sharers", line, e.NumSharers())
	}
	for p := range s.l1 {
		l := s.l1[p].Peek(line)
		if l == nil {
			continue
		}
		cl := p / s.clusterSize
		st, ok := s.attraction[cl][line]
		if !ok {
			return fmt.Errorf("processor %d caches line %#x absent from cluster %d", p, line, cl)
		}
		eff := l.State
		if l.Pending {
			eff = l.FillState
		}
		if eff == cache.Exclusive && st != cache.Exclusive {
			return fmt.Errorf("processor %d holds line %#x EXCLUSIVE but cluster %d is %v",
				p, line, cl, st)
		}
	}
	return nil
}

// CheckInvariants audits directory/attraction/private-cache agreement.
func (s *MemClusterSystem) CheckInvariants(now Clock) error {
	var err error
	s.dir.ForEach(func(line uint64, e directory.Entry) {
		if err != nil {
			return
		}
		for cl := 0; cl < s.numClusters; cl++ {
			_, present := s.attraction[cl][line]
			if e.Has(cl) != present {
				err = fmt.Errorf("line %#x: directory bit %v but attraction presence %v in cluster %d",
					line, e.Has(cl), present, cl)
				return
			}
		}
		if e.State == directory.Exclusive && e.NumSharers() != 1 {
			err = fmt.Errorf("line %#x: EXCLUSIVE with %d sharers", line, e.NumSharers())
		}
	})
	if err != nil {
		return err
	}
	// Private caches only hold lines their cluster has, in a compatible
	// state.
	for p := range s.l1 {
		p := p
		cl := p / s.clusterSize
		s.l1[p].ForEach(func(l *cache.Line) {
			if err != nil {
				return
			}
			st, ok := s.attraction[cl][l.Tag]
			if !ok {
				err = fmt.Errorf("processor %d caches line %#x absent from cluster %d", p, l.Tag, cl)
				return
			}
			eff := l.State
			if l.Pending {
				eff = l.FillState
			}
			if eff == cache.Exclusive && st != cache.Exclusive {
				err = fmt.Errorf("processor %d holds line %#x EXCLUSIVE but cluster %d is %v",
					p, l.Tag, cl, st)
			}
		})
	}
	return err
}

// Interface conformance.
var (
	_ MemoryModel = (*System)(nil)
	_ MemoryModel = (*MemClusterSystem)(nil)
)
