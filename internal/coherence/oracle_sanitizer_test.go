package coherence_test

import (
	"fmt"
	"math/rand"
	"testing"

	"clustersim/internal/core"
	"clustersim/internal/sanitizer"
)

// TestSanitizerPropertyRandomStreams drives fixed-seed random reference
// streams through sanitizer-enabled machines at every cluster size the
// paper studies (1, 2, 4, 8), under both cluster organisations and with
// finite caches small enough to force eviction traffic. The property:
// the sanitizer's per-transaction cross-validation, periodic full
// audits and final audit all pass with zero violations — the protocol
// implementation never leaves a state the directory and the caches
// disagree on, and virtual time never runs backwards.
func TestSanitizerPropertyRandomStreams(t *testing.T) {
	for _, org := range []core.Organization{core.SharedCache, core.SharedMemory} {
		for _, cs := range []int{1, 2, 4, 8} {
			org, cs := org, cs
			t.Run(fmt.Sprintf("%v/cluster=%d", org, cs), func(t *testing.T) {
				cfg := core.DefaultConfig()
				cfg.Procs = 8
				cfg.ClusterSize = cs
				cfg.CacheKBPerProc = 4 // finite: exercise evictions + hints
				cfg.Organization = org
				cfg.Sanitize = true
				m, err := core.NewMachine(cfg)
				if err != nil {
					t.Fatal(err)
				}
				san := m.Sanitizer()
				san.AuditEvery = 512 // audit the whole machine often in tests
				var violations []sanitizer.Violation
				san.OnViolation = func(v sanitizer.Violation) {
					if len(violations) < 4 {
						violations = append(violations, v)
					}
				}
				// Shared array spanning many pages so homes rotate across
				// clusters; a hot tail induces upgrade/invalidation churn.
				data := m.Alloc(1<<18, "shared")
				bar := m.NewBarrier()
				_, err = m.Run(func(p *core.Proc) {
					rng := rand.New(rand.NewSource(int64(1000 + p.ID())))
					for i := 0; i < 2500; i++ {
						var a uint64
						if rng.Intn(4) == 0 {
							a = data + uint64(rng.Intn(64))*64 // contended tail
						} else {
							a = data + uint64(rng.Intn(4096))*64
						}
						if rng.Intn(3) == 0 {
							p.Write(a)
						} else {
							p.Read(a)
						}
						if i%16 == 0 {
							p.Compute(core.Clock(rng.Intn(20)))
						}
						if i%500 == 499 {
							bar.Wait(p)
						}
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				for _, v := range violations {
					t.Errorf("%v", v)
				}
				if n := san.Violations(); n != 0 {
					t.Errorf("%d violations across %d transactions", n, san.Transactions())
				}
				if san.Transactions() < 8*2500 {
					t.Errorf("checker saw only %d transactions", san.Transactions())
				}
			})
		}
	}
}
