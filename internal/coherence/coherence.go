// Package coherence implements the invalidation-based, directory-backed
// cache-coherence protocol of the simulated machine, with the memory-
// operation latencies of the paper's Table 1.
//
// Misses are classified as in the paper: READ misses stall the processor
// for the full fetch latency; WRITE misses and UPGRADE misses are assumed
// completely hidden by store buffers and a relaxed consistency model, so
// they cost no stall; a READ to a line that is still pending from an
// outstanding READ or WRITE miss is a MERGE miss that blocks until the
// data returns. Invalidations are instantaneous and may invalidate
// pending lines.
package coherence

import (
	"fmt"
	"math/bits"

	"clustersim/internal/cache"
	"clustersim/internal/directory"
	"clustersim/internal/fault"
	"clustersim/internal/memory"
)

// Clock mirrors engine.Clock.
type Clock = int64

// Latencies gives the fetch latency of each miss category, in cycles
// (paper Table 1). Cache hits cost one cycle in the event-driven core;
// the extra hit time of a shared cache is applied analytically by the
// contention package.
type Latencies struct {
	LocalClean  Clock // miss to local home, satisfied by home (dir SHARED or NOT_CACHED)
	LocalDirty  Clock // miss to local home, line dirty in a remote cluster
	RemoteClean Clock // miss to remote home, satisfied by the home
	RemoteDirty Clock // miss to remote home, line dirty in a third cluster (3 hops)
}

// DefaultLatencies returns the paper's Table 1 values: 30/100/100/150.
func DefaultLatencies() Latencies {
	return Latencies{LocalClean: 30, LocalDirty: 100, RemoteClean: 100, RemoteDirty: 150}
}

// SharedCacheHitCycles returns the Table 1 hit time of a shared first-
// level cache for the given cluster size: 1 cycle unclustered, 2 cycles
// for 2-processor clusters, 3 cycles for 4- and 8-processor clusters.
func SharedCacheHitCycles(clusterSize int) Clock {
	switch {
	case clusterSize <= 1:
		return 1
	case clusterSize == 2:
		return 2
	default:
		return 3
	}
}

// Class classifies one memory access.
type Class uint8

const (
	Hit        Class = iota // found settled in the cluster cache
	ReadMiss                // read fetch; processor stalls
	WriteMiss               // write fetch; latency hidden
	Upgrade                 // write found line SHARED; ownership only
	MergeMiss               // read found line pending; stalls until fill returns
	WriteMerge              // write found a pending write fill; folded in
)

// String names the miss class as in the paper.
func (c Class) String() string {
	switch c {
	case Hit:
		return "HIT"
	case ReadMiss:
		return "READ"
	case WriteMiss:
		return "WRITE"
	case Upgrade:
		return "UPGRADE"
	case MergeMiss:
		return "MERGE"
	case WriteMerge:
		return "WRITE_MERGE"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Hops classifies where a miss was satisfied, for latency and profiling.
type Hops uint8

const (
	HopNone         Hops = iota
	HopLocalClean        // local home, clean: 30 cycles
	HopLocalDirty        // local home, dirty remote: 100 cycles
	HopRemoteClean       // remote home, clean (or dirty at the home itself): 100 cycles
	HopRemoteDirty       // remote home, dirty third party: 150 cycles
	HopIntraCluster      // satisfied inside the cluster over the snoopy bus (shared-memory clusters)
)

// String names the service location.
func (h Hops) String() string {
	switch h {
	case HopNone:
		return "none"
	case HopLocalClean:
		return "local-clean"
	case HopLocalDirty:
		return "local-dirty"
	case HopRemoteClean:
		return "remote-clean"
	case HopRemoteDirty:
		return "remote-dirty"
	case HopIntraCluster:
		return "intra-cluster"
	}
	return fmt.Sprintf("Hops(%d)", uint8(h))
}

func (l Latencies) of(h Hops) Clock {
	switch h {
	case HopLocalClean:
		return l.LocalClean
	case HopLocalDirty:
		return l.LocalDirty
	case HopRemoteClean:
		return l.RemoteClean
	case HopRemoteDirty:
		return l.RemoteDirty
	}
	return 0
}

// Access is the outcome of one memory reference.
type Access struct {
	Class Class
	Hops  Hops
	Stall Clock // read stall beyond the issue cycle; 0 for hits and writes
}

// MemoryModel is the interface between the processors and a memory
// system organisation. Two implementations exist: System (the paper's
// shared-cache clusters) and MemClusterSystem (Section 2's shared-main-
// memory clusters with per-processor caches on a snoopy bus).
type MemoryModel interface {
	// Read simulates a load by processor proc (in cluster) at time now.
	Read(proc, cluster int, addr memory.Addr, now Clock) Access
	// Write simulates a store by processor proc at time now.
	Write(proc, cluster int, addr memory.Addr, now Clock) Access
	// ClusterStats returns one cluster's protocol counters.
	ClusterStats(cluster int) Stats
	// ResetStats zeroes the protocol counters.
	ResetStats()
	// CheckInvariants audits internal consistency at time now.
	CheckInvariants(now Clock) error
	// CheckLine audits the consistency of the single line containing
	// addr at time now — the sanitizer's per-transaction spot check,
	// O(clusters) rather than O(resident lines).
	CheckLine(addr memory.Addr, now Clock) error
	// LineBytes returns the coherence granularity.
	LineBytes() uint64
	// SetObserver attaches a protocol-event observer (nil detaches).
	SetObserver(o Observer)
}

// Observer receives protocol events the Access result cannot carry —
// which cluster lost which line, and why. The sharing profiler
// (internal/profile) is the one implementation. Observers must not
// mutate the memory system; calls arrive in simulation order from the
// goroutine holding the execution token.
type Observer interface {
	// Invalidated reports that victim cluster's copy of line was
	// removed at now by a write from writerPE (in writerCluster). Only
	// real copy losses are reported: a spurious invalidation message to
	// a stale directory bit (hints-disabled ablation) is not.
	Invalidated(line uint64, writerPE, writerCluster, victim int, now Clock)
	// Evicted reports that cluster's copy of line was displaced by a
	// capacity or conflict replacement at now.
	Evicted(line uint64, cluster int, now Clock)
}

// Stats holds per-cluster protocol event counters. The fault counters
// carry omitempty so that a run without fault injection marshals
// byte-identically to builds that predate the fault layer.
type Stats struct {
	InvalidationsSent     uint64 // invalidation messages this cluster caused
	InvalidationsReceived uint64 // lines this cluster lost to invalidations
	ReplacementHints      uint64
	Writebacks            uint64

	Nacks       uint64 `json:",omitempty"` // directory-busy NACKs absorbed by this cluster's requests
	AckDelays   uint64 `json:",omitempty"` // invalidation acks this cluster returned late
	FaultCycles uint64 `json:",omitempty"` // injected fault latency charged to this cluster's requests
}

// System is the machine-wide memory system: one shared cache per cluster,
// the directory, and the protocol connecting them.
type System struct {
	as          *memory.AddressSpace
	dir         *directory.Directory
	caches      []cache.Store
	lat         Latencies
	lineShift   uint
	numClusters int
	clusterStat []Stats
	obs         Observer
	inj         *fault.Injector

	// disableHints suppresses replacement hints (ablation): the
	// directory keeps stale sharer bits for silently dropped clean
	// lines, so writers send spurious invalidations.
	disableHints bool
}

// NewSystem builds the memory system with fully associative cluster
// caches, as the paper's main study uses. cacheLines is the per-cluster
// capacity in lines (0 = infinite); lineBytes must be a power of two.
func NewSystem(as *memory.AddressSpace, numClusters, cacheLines int, lineBytes uint64,
	lat Latencies, policy cache.ReplacePolicy) (*System, error) {
	return NewSystemAssoc(as, numClusters, cacheLines, 0, lineBytes, lat, policy)
}

// NewSystemAssoc builds the memory system with ways-associative cluster
// caches (ways = 0 selects fully associative) — the limited-associativity
// configuration the paper defers to future work.
func NewSystemAssoc(as *memory.AddressSpace, numClusters, cacheLines, ways int, lineBytes uint64,
	lat Latencies, policy cache.ReplacePolicy) (*System, error) {
	if numClusters != as.NumClusters() {
		return nil, fmt.Errorf("coherence: %d clusters but address space has %d",
			numClusters, as.NumClusters())
	}
	if lineBytes == 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("coherence: line size %d must be a power of two", lineBytes)
	}
	dir, err := directory.New(numClusters)
	if err != nil {
		return nil, err
	}
	s := &System{
		as:          as,
		dir:         dir,
		lat:         lat,
		lineShift:   uint(bits.TrailingZeros64(lineBytes)),
		numClusters: numClusters,
		clusterStat: make([]Stats, numClusters),
	}
	s.caches = make([]cache.Store, numClusters)
	for i := range s.caches {
		if ways == 0 {
			s.caches[i] = cache.New(cacheLines, policy)
			continue
		}
		sa, err := cache.NewSetAssoc(cacheLines, ways, policy)
		if err != nil {
			return nil, err
		}
		s.caches[i] = sa
	}
	return s, nil
}

// DisableReplacementHints turns off the paper's replacement hints, for
// the ablation benchmark. Call before simulation starts.
func (s *System) DisableReplacementHints() { s.disableHints = true }

// SetObserver attaches a protocol-event observer (the sharing
// profiler). Call before simulation starts; a nil observer keeps the
// hot paths at a single branch.
func (s *System) SetObserver(o Observer) { s.obs = o }

// SetFaults attaches a deterministic fault injector (nil detaches).
// Call before simulation starts.
func (s *System) SetFaults(in *fault.Injector) { s.inj = in }

// injectFetch consults the fault plan for one directory fetch or
// ownership request by cluster, returning the extra virtual-time
// latency (NACK backoffs plus remote-hop jitter) to fold into the
// miss. Starvation past the liveness cap panics inside the injector.
func (s *System) injectFetch(line uint64, cluster int, hops Hops, now Clock) Clock {
	if s.inj == nil {
		return 0
	}
	extra, nacks := s.inj.Fetch(line, cluster, hops != HopLocalClean, now)
	st := &s.clusterStat[cluster]
	st.Nacks += uint64(nacks)
	st.FaultCycles += uint64(extra)
	return extra
}

// LineBytes returns the coherence granularity.
func (s *System) LineBytes() uint64 { return 1 << s.lineShift }

// LineOf returns the line number containing addr.
func (s *System) LineOf(addr memory.Addr) uint64 { return addr >> s.lineShift }

// Cache returns cluster's cache, for inspection.
func (s *System) Cache(cluster int) cache.Store { return s.caches[cluster] }

// Directory returns the directory, for inspection.
func (s *System) Directory() *directory.Directory { return s.dir }

// ClusterStats returns protocol counters for one cluster.
func (s *System) ClusterStats(cluster int) Stats { return s.clusterStat[cluster] }

// ResetStats zeroes the per-cluster protocol counters (cache and
// directory contents are untouched). Used when measurement begins after
// an application's initialization phase.
func (s *System) ResetStats() {
	for i := range s.clusterStat {
		s.clusterStat[i] = Stats{}
	}
}

// Read simulates a read by a processor in cluster at time now. The proc
// argument exists to satisfy MemoryModel; shared-cache clusters do not
// distinguish processors within a cluster.
func (s *System) Read(proc, cluster int, addr memory.Addr, now Clock) Access {
	s.checkAccess(cluster, addr)
	line := s.LineOf(addr)
	c := s.caches[cluster]
	if l := c.Lookup(line, now); l != nil {
		c.Touch(l)
		if l.Pending {
			return Access{Class: MergeMiss, Stall: l.ReadyAt - now}
		}
		return Access{Class: Hit}
	}

	home := s.as.HomeOf(addr)
	e := s.dir.Lookup(line)
	var hops Hops
	if e.State == directory.Exclusive {
		owner := e.Owner()
		if owner == cluster {
			panic(fmt.Sprintf("coherence: cluster %d misses on line %#x it owns exclusively", cluster, line))
		}
		// Cache-to-cache transfer: the owner keeps a shared copy.
		s.caches[owner].Downgrade(line)
		s.dir.Downgrade(line)
		switch {
		case cluster == home:
			hops = HopLocalDirty
		case owner == home:
			hops = HopRemoteClean // two hops: the home itself holds the dirty data
		default:
			hops = HopRemoteDirty
		}
	} else {
		if cluster == home {
			hops = HopLocalClean
		} else {
			hops = HopRemoteClean
		}
	}
	lat := s.lat.of(hops) + s.injectFetch(line, cluster, hops, now)
	s.dir.AddSharer(line, cluster)
	s.insert(cluster, line, cache.Shared, now, now+lat)
	return Access{Class: ReadMiss, Hops: hops, Stall: lat}
}

// Write simulates a write by a processor in cluster at time now. Writes
// never stall (store buffers + relaxed consistency), but they move lines
// to EXCLUSIVE, invalidating other copies instantaneously.
func (s *System) Write(proc, cluster int, addr memory.Addr, now Clock) Access {
	s.checkAccess(cluster, addr)
	line := s.LineOf(addr)
	c := s.caches[cluster]
	if l := c.Lookup(line, now); l != nil {
		c.Touch(l)
		if l.Pending {
			if l.FillState == cache.Exclusive {
				// Folded into the outstanding write miss.
				return Access{Class: WriteMerge}
			}
			// Write to an in-flight read fill: upgrade the fill.
			ack := s.invalidateOthers(line, cluster, proc, now)
			l.FillState = cache.Exclusive
			s.dir.SetExclusive(line, cluster)
			return Access{Class: Upgrade, Stall: ack}
		}
		switch l.State {
		case cache.Exclusive:
			return Access{Class: Hit}
		case cache.Shared:
			ack := s.invalidateOthers(line, cluster, proc, now)
			l.State = cache.Exclusive
			s.dir.SetExclusive(line, cluster)
			return Access{Class: Upgrade, Stall: ack}
		}
	}

	home := s.as.HomeOf(addr)
	e := s.dir.Lookup(line)
	var hops Hops
	if e.State == directory.Exclusive {
		owner := e.Owner()
		switch {
		case cluster == home:
			hops = HopLocalDirty
		case owner == home:
			hops = HopRemoteClean
		default:
			hops = HopRemoteDirty
		}
	} else {
		if cluster == home {
			hops = HopLocalClean
		} else {
			hops = HopRemoteClean
		}
	}
	lat := s.lat.of(hops) + s.injectFetch(line, cluster, hops, now)
	ack := s.invalidateOthers(line, cluster, proc, now)
	s.dir.SetExclusive(line, cluster)
	s.insert(cluster, line, cache.Exclusive, now, now+lat)
	// Stall carries the fetch latency for the blocking-writes ablation;
	// with the paper's store-buffer assumption the processor ignores it.
	return Access{Class: WriteMiss, Hops: hops, Stall: lat + ack}
}

// insert installs a pending fill, handling the victim's directory traffic.
func (s *System) insert(cluster int, line uint64, fill cache.State, now, readyAt Clock) {
	victim, evicted := s.caches[cluster].Insert(line, fill, now, readyAt)
	if !evicted {
		return
	}
	if s.obs != nil {
		s.obs.Evicted(victim.Tag, cluster, now)
	}
	switch victim.State {
	case cache.Shared:
		if s.disableHints {
			return // silent drop: the directory keeps a stale sharer bit
		}
		s.dir.ReplacementHint(victim.Tag, cluster)
		s.clusterStat[cluster].ReplacementHints++
	case cache.Exclusive:
		s.dir.Writeback(victim.Tag, cluster)
		s.clusterStat[cluster].Writebacks++
	}
}

// invalidateOthers removes every copy of line outside cluster, updating
// the directory and the invalidation counters. proc is the writing
// processor and now the write's issue time, for the observer. The
// return value is the writer's wait for the slowest injected straggler
// acknowledgement (0 without fault injection) — acks are gathered in
// parallel, so the waits overlap rather than add.
func (s *System) invalidateOthers(line uint64, cluster, proc int, now Clock) Clock {
	var ackDelay Clock
	mask := s.dir.ClearAll(line)
	mask &^= 1 << uint(cluster)
	for mask != 0 {
		j := bits.TrailingZeros64(mask)
		mask &^= 1 << uint(j)
		lost := s.caches[j].Invalidate(line)
		s.clusterStat[j].InvalidationsReceived++
		s.clusterStat[cluster].InvalidationsSent++
		if lost && s.obs != nil {
			s.obs.Invalidated(line, proc, cluster, j, now)
		}
		if s.inj != nil {
			if d := s.inj.AckDelay(line, j, now); d > 0 {
				s.clusterStat[j].AckDelays++
				if d > ackDelay {
					ackDelay = d
				}
			}
		}
	}
	// The writer waits only for the slowest straggler; charge it that.
	s.clusterStat[cluster].FaultCycles += uint64(ackDelay)
	return ackDelay
}

func (s *System) checkAccess(cluster int, addr memory.Addr) {
	if cluster < 0 || cluster >= s.numClusters {
		panic(fmt.Sprintf("coherence: access from invalid cluster %d", cluster))
	}
	if !s.as.Mapped(addr) {
		if r, ok := s.as.RegionOf(addr); ok {
			panic(fmt.Sprintf("coherence: access to %#x inside padding of region %q", addr, r.Name))
		}
		panic(fmt.Sprintf("coherence: access to unallocated address %#x", addr))
	}
}

// CheckLine audits one line's directory/cache agreement at time now:
// the sharer bit-vector must exactly mirror cache residency (modulo the
// hints-disabled ablation, where a bit may outlive the copy), an
// EXCLUSIVE entry must have exactly one owner holding (or filling) the
// line EXCLUSIVE, and SHARED copies must all be SHARED. Pending fills
// are judged by their FillState without being settled (Peek, not
// Lookup), so the audit never perturbs simulation state.
func (s *System) CheckLine(addr memory.Addr, now Clock) error {
	line := s.LineOf(addr)
	e := s.dir.Lookup(line)
	for cl := 0; cl < s.numClusters; cl++ {
		l := s.caches[cl].Peek(line)
		if e.Has(cl) != (l != nil) {
			if s.disableHints && e.Has(cl) && l == nil {
				continue // stale sharer bit from a silent clean drop
			}
			return fmt.Errorf("line %#x: directory bit for cluster %d is %v but cache residency is %v",
				line, cl, e.Has(cl), l != nil)
		}
		if l == nil {
			continue
		}
		st := l.State
		if l.Pending {
			st = l.FillState
			if l.ReadyAt < now && l.State != cache.Invalid {
				return fmt.Errorf("line %#x: cluster %d fill settled state %v left stale at %d (ready %d)",
					line, cl, l.State, now, l.ReadyAt)
			}
		}
		switch e.State {
		case directory.Exclusive:
			if st != cache.Exclusive {
				return fmt.Errorf("line %#x: directory EXCLUSIVE but cluster %d caches it %v", line, cl, st)
			}
		case directory.Shared:
			if st != cache.Shared {
				return fmt.Errorf("line %#x: directory SHARED but cluster %d caches it %v", line, cl, st)
			}
		}
	}
	if e.State == directory.Exclusive && e.NumSharers() != 1 {
		return fmt.Errorf("line %#x: EXCLUSIVE with %d sharers", line, e.NumSharers())
	}
	return nil
}

// CheckInvariants audits the agreement between caches and directory at
// time now. Used by integration tests after every run.
func (s *System) CheckInvariants(now Clock) error {
	// Directory view: for each entry, the sharer set must exactly match
	// the caches that hold the line, and an EXCLUSIVE entry must have one
	// owner whose cached copy is (or will settle) EXCLUSIVE.
	var err error
	s.dir.ForEach(func(line uint64, e directory.Entry) {
		if err != nil {
			return
		}
		for cl := 0; cl < s.numClusters; cl++ {
			l := s.caches[cl].Lookup(line, now)
			if e.Has(cl) != (l != nil) {
				// Without replacement hints a directory bit may outlive
				// the cached copy, but never the other way around.
				if !(s.disableHints && e.Has(cl) && l == nil) {
					err = fmt.Errorf("line %#x: directory bit for cluster %d is %v but cache residency is %v",
						line, cl, e.Has(cl), l != nil)
					return
				}
			}
			if l == nil {
				continue
			}
			st := l.State
			if l.Pending {
				st = l.FillState
			}
			switch e.State {
			case directory.Exclusive:
				if st != cache.Exclusive {
					err = fmt.Errorf("line %#x: directory EXCLUSIVE but cluster %d caches it %v", line, cl, st)
				}
			case directory.Shared:
				if st != cache.Shared {
					err = fmt.Errorf("line %#x: directory SHARED but cluster %d caches it %v", line, cl, st)
				}
			}
		}
		if e.State == directory.Exclusive && e.NumSharers() != 1 {
			err = fmt.Errorf("line %#x: EXCLUSIVE with %d sharers", line, e.NumSharers())
		}
	})
	if err != nil {
		return err
	}
	// Cache view: every resident line must be known to the directory.
	for cl := 0; cl < s.numClusters; cl++ {
		cl := cl
		s.caches[cl].ForEach(func(l *cache.Line) {
			if err != nil {
				return
			}
			e := s.dir.Lookup(l.Tag)
			if !e.Has(cl) {
				err = fmt.Errorf("cluster %d caches line %#x unknown to the directory", cl, l.Tag)
			}
		})
	}
	return err
}
