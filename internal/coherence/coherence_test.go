package coherence

import (
	"math/rand"
	"strings"
	"testing"

	"clustersim/internal/cache"
	"clustersim/internal/memory"
)

// sys builds a 4-cluster system with the given per-cluster line capacity.
func sys(t *testing.T, cacheLines int) (*System, memory.Addr) {
	t.Helper()
	as, err := memory.New(4096, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(as, 4, cacheLines, 64, DefaultLatencies(), cache.LRU)
	if err != nil {
		t.Fatal(err)
	}
	base := as.Alloc(1<<20, "data")
	return s, base
}

func TestDefaultLatenciesMatchTable1(t *testing.T) {
	l := DefaultLatencies()
	if l.LocalClean != 30 || l.LocalDirty != 100 || l.RemoteClean != 100 || l.RemoteDirty != 150 {
		t.Fatalf("latencies %+v do not match Table 1", l)
	}
}

func TestSharedCacheHitCyclesTable1(t *testing.T) {
	want := map[int]Clock{1: 1, 2: 2, 4: 3, 8: 3}
	for cs, w := range want {
		if got := SharedCacheHitCycles(cs); got != w {
			t.Errorf("hit cycles for %d-proc cluster = %d, want %d", cs, got, w)
		}
	}
}

func TestColdReadMissThenHit(t *testing.T) {
	s, base := sys(t, 0)
	// First touch assigns the page to cluster 0 round-robin, so a read
	// from cluster 0 is a local clean miss: 30 cycles.
	a := s.Read(0, 0, base, 0)
	if a.Class != ReadMiss || a.Hops != HopLocalClean || a.Stall != 30 {
		t.Fatalf("cold read = %+v", a)
	}
	// Same processor cluster reads again after the fill: hit.
	a = s.Read(0, 0, base, 100)
	if a.Class != Hit || a.Stall != 0 {
		t.Fatalf("warm read = %+v", a)
	}
}

func TestRemoteCleanMiss(t *testing.T) {
	s, base := sys(t, 0)
	s.Read(0, 0, base, 0) // homes the page at cluster 0
	a := s.Read(1, 1, base, 100)
	if a.Class != ReadMiss || a.Hops != HopRemoteClean || a.Stall != 100 {
		t.Fatalf("remote clean read = %+v", a)
	}
}

func TestMergeMissBlocksUntilFill(t *testing.T) {
	s, base := sys(t, 0)
	s.Read(0, 0, base, 0) // fill in flight until cycle 30
	a := s.Read(0, 0, base, 10)
	if a.Class != MergeMiss || a.Stall != 20 {
		t.Fatalf("merge = %+v, want 20-cycle stall", a)
	}
	a = s.Read(0, 0, base, 30)
	if a.Class != Hit {
		t.Fatalf("after ready time = %+v, want hit", a)
	}
}

func TestPrefetchWithinCluster(t *testing.T) {
	// Two addresses in the same line: the second reference, even to a
	// different word, finds the line — the paper's line-prefetching effect.
	s, base := sys(t, 0)
	s.Read(0, 0, base, 0)
	a := s.Read(0, 0, base+32, 40)
	if a.Class != Hit {
		t.Fatalf("same-line read = %+v, want hit", a)
	}
}

func TestWriteMissInvalidatesSharers(t *testing.T) {
	s, base := sys(t, 0)
	s.Read(0, 0, base, 0)
	s.Read(1, 1, base, 200)
	s.Read(2, 2, base, 400)
	a := s.Write(3, 3, base, 600)
	if a.Class != WriteMiss {
		t.Fatalf("write = %+v", a)
	}
	// All other copies gone; their next reads are misses.
	for _, cl := range []int{0, 1, 2} {
		if got := s.Read(cl, cl, base, 1000+Clock(cl)*200); got.Class != ReadMiss {
			t.Fatalf("cluster %d after invalidation: %+v, want ReadMiss", cl, got)
		}
	}
	if st := s.ClusterStats(3); st.InvalidationsSent != 3 {
		t.Fatalf("invalidations sent = %d, want 3", st.InvalidationsSent)
	}
}

func TestUpgradeOnSharedLine(t *testing.T) {
	s, base := sys(t, 0)
	s.Read(0, 0, base, 0)
	s.Read(1, 1, base, 100)
	a := s.Write(0, 0, base, 300)
	if a.Class != Upgrade || a.Stall != 0 {
		t.Fatalf("write to shared = %+v, want Upgrade with no stall", a)
	}
	// Writer hits exclusively now.
	if got := s.Write(0, 0, base, 400); got.Class != Hit {
		t.Fatalf("second write = %+v, want Hit", got)
	}
	if got := s.Read(1, 1, base, 500); got.Class != ReadMiss {
		t.Fatalf("cluster 1 after upgrade: %+v, want ReadMiss", got)
	}
	// The dirty read downgraded the owner, so a further write re-upgrades.
	if got := s.Write(0, 0, base, 700); got.Class != Upgrade {
		t.Fatalf("write after downgrade = %+v, want Upgrade", got)
	}
}

func TestDirtyRemoteReadLatencies(t *testing.T) {
	s, base := sys(t, 0)
	home := 0
	s.Read(home, home, base, 0) // homes page at cluster 0
	s.Write(1, 1, base, 100)    // cluster 1 owns it dirty
	a := s.Read(0, 0, base, 300)
	if a.Hops != HopLocalDirty || a.Stall != 100 {
		t.Fatalf("local home, dirty remote: %+v, want 100 cycles", a)
	}
	// Now dirty it in the home cluster itself and read from a third
	// cluster: two hops, 100 cycles.
	s.Write(0, 0, base, 500)
	a = s.Read(2, 2, base, 700)
	if a.Hops != HopRemoteClean || a.Stall != 100 {
		t.Fatalf("remote home holding dirty data: %+v, want 100 cycles", a)
	}
	// Dirty in a third party: 150 cycles.
	s.Write(3, 3, base, 900)
	a = s.Read(2, 2, base, 1100)
	if a.Hops != HopRemoteDirty || a.Stall != 150 {
		t.Fatalf("three-hop read: %+v, want 150 cycles", a)
	}
}

func TestDirtyReadLeavesSharedCopies(t *testing.T) {
	s, base := sys(t, 0)
	s.Write(1, 1, base, 0)
	s.Read(2, 2, base, 200) // cache-to-cache; owner keeps a shared copy
	if got := s.Read(1, 1, base, 400); got.Class != Hit {
		t.Fatalf("previous owner after downgrade: %+v, want Hit", got)
	}
	if got := s.Read(2, 2, base, 500); got.Class != Hit {
		t.Fatalf("reader after fill: %+v, want Hit", got)
	}
}

func TestWriteMergeIntoOutstandingWrite(t *testing.T) {
	s, base := sys(t, 0)
	s.Write(0, 0, base, 0) // fill pending until 30
	a := s.Write(0, 0, base, 10)
	if a.Class != WriteMerge {
		t.Fatalf("second write while pending = %+v", a)
	}
}

func TestWriteToPendingReadFillUpgrades(t *testing.T) {
	s, base := sys(t, 0)
	s.Read(0, 0, base, 0) // read fill pending until 30
	a := s.Write(0, 0, base, 10)
	if a.Class != Upgrade {
		t.Fatalf("write to pending read fill = %+v", a)
	}
	// When the fill settles it must be exclusive: the next write hits.
	if got := s.Write(0, 0, base, 50); got.Class != Hit {
		t.Fatalf("write after upgraded fill = %+v, want Hit", got)
	}
}

func TestInvalidationOfPendingLine(t *testing.T) {
	s, base := sys(t, 0)
	s.Read(0, 0, base, 0)  // cluster 0 fill pending until 30
	s.Write(1, 1, base, 5) // instantaneous invalidation hits the pending line
	if got := s.Read(0, 0, base, 100); got.Class != ReadMiss {
		t.Fatalf("read after pending-line invalidation = %+v, want ReadMiss", got)
	}
}

func TestEvictionSendsReplacementHint(t *testing.T) {
	s, base := sys(t, 2) // tiny 2-line cache
	s.Read(0, 0, base, 0)
	s.Read(0, 0, base+64, 100)
	s.Read(0, 0, base+128, 200) // evicts line 0 (clean) -> hint
	if st := s.ClusterStats(0); st.ReplacementHints != 1 {
		t.Fatalf("hints = %d, want 1", st.ReplacementHints)
	}
	// The directory no longer thinks cluster 0 shares line 0, so a later
	// write by another cluster sends no invalidation to it.
	s.Write(1, 1, base, 400)
	if st := s.ClusterStats(0); st.InvalidationsReceived != 0 {
		t.Fatalf("stale invalidation delivered despite replacement hint")
	}
}

func TestEvictionOfDirtyLineWritesBack(t *testing.T) {
	s, base := sys(t, 2)
	s.Write(0, 0, base, 0)
	s.Read(0, 0, base+64, 100)
	s.Read(0, 0, base+128, 200) // evicts the dirty line
	if st := s.ClusterStats(0); st.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", st.Writebacks)
	}
	// After writeback the home can serve the line clean.
	a := s.Read(1, 1, base, 400)
	if a.Class != ReadMiss || a.Hops == HopRemoteDirty {
		t.Fatalf("read after writeback = %+v, want clean service", a)
	}
}

func TestUnmappedAccessPanicsHelpfully(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "unallocated") {
			t.Fatalf("want unallocated panic, got %v", r)
		}
	}()
	s, _ := sys(t, 0)
	s.Read(0, 0, 0xdeadbeef00000, 0)
}

func TestLineOfRespectsLineSize(t *testing.T) {
	as, _ := memory.New(4096, 2)
	s, err := NewSystem(as, 2, 0, 128, DefaultLatencies(), cache.LRU)
	if err != nil {
		t.Fatal(err)
	}
	if s.LineBytes() != 128 {
		t.Fatalf("line bytes = %d", s.LineBytes())
	}
	if s.LineOf(256) != 2 || s.LineOf(255) != 1 {
		t.Fatal("LineOf misaligned")
	}
	if _, err := NewSystem(as, 2, 0, 100, DefaultLatencies(), cache.LRU); err == nil {
		t.Fatal("want error for non-power-of-two line size")
	}
}

// TestRandomTrafficInvariants fires random reads and writes from random
// clusters and audits directory/cache agreement throughout.
func TestRandomTrafficInvariants(t *testing.T) {
	for _, lines := range []int{0, 4, 32} {
		s, base := sys(t, lines)
		r := rand.New(rand.NewSource(42))
		now := Clock(0)
		for step := 0; step < 20000; step++ {
			cl := r.Intn(4)
			addr := base + uint64(r.Intn(256))*8
			if r.Intn(3) == 0 {
				s.Write(cl, cl, addr, now)
			} else {
				s.Read(cl, cl, addr, now)
			}
			now += Clock(r.Intn(5))
			if step%1000 == 0 {
				if err := s.CheckInvariants(now); err != nil {
					t.Fatalf("cacheLines=%d step %d: %v", lines, step, err)
				}
			}
		}
		if err := s.CheckInvariants(now + 1000); err != nil {
			t.Fatalf("cacheLines=%d final: %v", lines, err)
		}
	}
}

// TestSingleWriterInvariant checks that after any write, no other cluster
// can hit on the line until it refetches.
func TestSingleWriterInvariant(t *testing.T) {
	s, base := sys(t, 0)
	r := rand.New(rand.NewSource(7))
	now := Clock(0)
	lastWriter := make(map[uint64]int)
	for step := 0; step < 5000; step++ {
		cl := r.Intn(4)
		addr := base + uint64(r.Intn(64))*8
		line := s.LineOf(addr)
		if r.Intn(2) == 0 {
			s.Write(cl, cl, addr, now)
			lastWriter[line] = cl
		} else {
			a := s.Read(cl, cl, addr, now)
			if w, ok := lastWriter[line]; ok && w != cl && a.Class == Hit {
				// A hit is only legal if some read already refetched the
				// line into this cluster after the last write; track that
				// by clearing the writer record on any successful fetch.
				t.Fatalf("step %d: cluster %d hit on line last written by %d without refetch", step, cl, w)
			}
			delete(lastWriter, line)
		}
		now += 200 // let fills settle so Hit/Miss classes are crisp
	}
}

func TestHopsAndClassStrings(t *testing.T) {
	if Hit.String() != "HIT" || ReadMiss.String() != "READ" || Upgrade.String() != "UPGRADE" {
		t.Error("Class.String wrong")
	}
	if HopLocalClean.String() != "local-clean" || HopRemoteDirty.String() != "remote-dirty" {
		t.Error("Hops.String wrong")
	}
}
