package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// settle inserts tag as a completed Shared line at time 0.
func settle(c *Cache, tag uint64) *Line {
	c.Insert(tag, Shared, 0, 0)
	return c.Lookup(tag, 1)
}

func TestLookupMissReturnsNil(t *testing.T) {
	c := New(4, LRU)
	if l := c.Lookup(42, 0); l != nil {
		t.Fatalf("lookup in empty cache returned %v", l)
	}
}

func TestInsertThenHit(t *testing.T) {
	c := New(4, LRU)
	c.Insert(7, Shared, 0, 100)
	l := c.Lookup(7, 50)
	if l == nil || !l.Pending {
		t.Fatalf("line should be pending before ready time: %+v", l)
	}
	l = c.Lookup(7, 100)
	if l == nil || l.Pending || l.State != Shared {
		t.Fatalf("line should be settled Shared at ready time: %+v", l)
	}
}

func TestWriteFillSettlesExclusive(t *testing.T) {
	c := New(4, LRU)
	c.Insert(9, Exclusive, 0, 30)
	l := c.Lookup(9, 30)
	if l == nil || l.State != Exclusive {
		t.Fatalf("write fill should settle Exclusive: %+v", l)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(3, LRU)
	for tag := uint64(1); tag <= 3; tag++ {
		settle(c, tag)
	}
	// Touch 1 so 2 becomes LRU.
	c.Touch(c.Lookup(1, 10))
	v, ev := c.Insert(4, Shared, 20, 40)
	if !ev || v.Tag != 2 {
		t.Fatalf("victim = %+v (evicted=%v), want tag 2", v, ev)
	}
	if c.Lookup(2, 20) != nil {
		t.Error("evicted line still resident")
	}
	if c.Len() != 3 {
		t.Errorf("len = %d, want 3", c.Len())
	}
}

func TestFIFOEvictionIgnoresTouch(t *testing.T) {
	c := New(3, FIFO)
	for tag := uint64(1); tag <= 3; tag++ {
		settle(c, tag)
	}
	c.Touch(c.Lookup(1, 10)) // must not rescue 1 under FIFO
	v, ev := c.Insert(4, Shared, 20, 40)
	if !ev || v.Tag != 1 {
		t.Fatalf("FIFO victim = %+v (evicted=%v), want tag 1", v, ev)
	}
}

func TestInfiniteCacheNeverEvicts(t *testing.T) {
	c := New(0, LRU)
	for tag := uint64(0); tag < 10000; tag++ {
		if _, ev := c.Insert(tag, Shared, 0, 0); ev {
			t.Fatalf("infinite cache evicted at tag %d", tag)
		}
	}
	if c.Len() != 10000 {
		t.Fatalf("len = %d, want 10000", c.Len())
	}
	if c.Evictions != 0 {
		t.Fatalf("evictions = %d, want 0", c.Evictions)
	}
}

func TestInvalidatePendingLine(t *testing.T) {
	c := New(4, LRU)
	c.Insert(5, Shared, 0, 1000)
	if !c.Invalidate(5) {
		t.Fatal("invalidate of pending line reported not resident")
	}
	if c.Lookup(5, 2000) != nil {
		t.Fatal("invalidated line still resident")
	}
	if c.Invalidate(5) {
		t.Fatal("second invalidate reported resident")
	}
}

func TestDowngrade(t *testing.T) {
	c := New(4, LRU)
	c.Insert(3, Exclusive, 0, 10)
	c.Lookup(3, 10) // settle
	c.Downgrade(3)
	if l := c.Lookup(3, 11); l.State != Shared {
		t.Fatalf("state after downgrade = %v, want Shared", l.State)
	}
	// Downgrading a pending write fill retargets the fill state.
	c.Insert(8, Exclusive, 11, 100)
	c.Downgrade(8)
	if l := c.Lookup(8, 100); l.State != Shared {
		t.Fatalf("pending fill downgraded: settled %v, want Shared", l.State)
	}
	// Downgrading an absent or Shared line is a no-op.
	c.Downgrade(999)
	c.Downgrade(3)
	if l := c.Lookup(3, 12); l.State != Shared {
		t.Fatal("double downgrade corrupted state")
	}
}

func TestVictimSkipsPendingLines(t *testing.T) {
	c := New(2, LRU)
	c.Insert(1, Shared, 0, 1000) // stays pending
	settle(c, 2)
	v, ev := c.Insert(3, Shared, 5, 35)
	if !ev || v.Tag != 2 {
		t.Fatalf("victim = %+v, want settled line 2 (pending 1 must be skipped)", v)
	}
}

func TestDuplicateInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate insert did not panic")
		}
	}()
	c := New(4, LRU)
	c.Insert(1, Shared, 0, 0)
	c.Insert(1, Shared, 0, 0)
}

// TestLRUModelEquivalence drives the cache with a random reference stream
// and checks residency against a brute-force LRU model.
func TestLRUModelEquivalence(t *testing.T) {
	const cap = 8
	c := New(cap, LRU)
	var model []uint64 // most recent first
	r := rand.New(rand.NewSource(1))
	touch := func(tag uint64) {
		for i, m := range model {
			if m == tag {
				model = append(model[:i], model[i+1:]...)
				break
			}
		}
		model = append([]uint64{tag}, model...)
		if len(model) > cap {
			model = model[:cap]
		}
	}
	for step := 0; step < 5000; step++ {
		tag := uint64(r.Intn(20))
		if l := c.Lookup(tag, int64(step)); l != nil {
			c.Touch(l)
		} else {
			c.Insert(tag, Shared, int64(step), int64(step)) // immediately settled
		}
		touch(tag)
		for _, m := range model {
			if c.Lookup(m, int64(step)) == nil {
				t.Fatalf("step %d: model says %d resident, cache disagrees", step, m)
			}
		}
		if c.Len() != len(model) {
			t.Fatalf("step %d: len %d != model %d", step, c.Len(), len(model))
		}
	}
}

// Property: capacity is never exceeded (when no pending lines pin extras),
// and a just-inserted line is always resident.
func TestCapacityProperty(t *testing.T) {
	f := func(tags []uint8, capSeed uint8) bool {
		capacity := int(capSeed%16) + 1
		c := New(capacity, LRU)
		for i, tg := range tags {
			tag := uint64(tg)
			if l := c.Lookup(tag, int64(i)); l != nil {
				c.Touch(l)
				continue
			}
			c.Insert(tag, Shared, int64(i), int64(i))
			if c.Lookup(tag, int64(i)) == nil {
				return false
			}
			if c.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLineStructRecycling(t *testing.T) {
	c := New(2, LRU)
	for tag := uint64(0); tag < 100; tag++ {
		c.Lookup(tag, int64(tag))
		c.Insert(tag, Shared, int64(tag), int64(tag))
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if c.Evictions != 98 {
		t.Fatalf("evictions = %d, want 98", c.Evictions)
	}
	// The LRU list and map must agree after heavy recycling.
	n := 0
	c.ForEach(func(l *Line) {
		n++
		if c.Lookup(l.Tag, 1000) != l {
			t.Errorf("list entry %d not in map", l.Tag)
		}
	})
	if n != 2 {
		t.Fatalf("list has %d entries, want 2", n)
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{Invalid: "INVALID", Shared: "SHARED", Exclusive: "EXCLUSIVE"}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
