package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSetAssocValidation(t *testing.T) {
	if _, err := NewSetAssoc(0, 4, LRU); err == nil {
		t.Error("want error for zero capacity")
	}
	if _, err := NewSetAssoc(64, 0, LRU); err == nil {
		t.Error("want error for zero ways")
	}
	if _, err := NewSetAssoc(65, 4, LRU); err == nil {
		t.Error("want error for capacity not divisible by ways")
	}
	if _, err := NewSetAssoc(24, 2, LRU); err == nil {
		t.Error("want error for non-power-of-two set count")
	}
	sa, err := NewSetAssoc(64, 4, LRU)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Ways() != 4 || sa.Sets() != 16 {
		t.Fatalf("geometry %d ways × %d sets", sa.Ways(), sa.Sets())
	}
}

func TestSetIndexingConfinesConflicts(t *testing.T) {
	// 2-way, 4 sets: tags 0, 4, 8 all map to set 0; inserting three of
	// them must evict within set 0 while other sets stay empty.
	sa, err := NewSetAssoc(8, 2, LRU)
	if err != nil {
		t.Fatal(err)
	}
	sa.Insert(0, Shared, 0, 0)
	sa.Insert(4, Shared, 1, 1)
	v, ev := sa.Insert(8, Shared, 2, 2)
	if !ev || v.Tag != 0 {
		t.Fatalf("conflict victim = %+v (evicted=%v), want tag 0", v, ev)
	}
	// A tag in another set does not evict.
	if _, ev := sa.Insert(1, Shared, 3, 3); ev {
		t.Fatal("insert into empty set evicted")
	}
	if sa.Len() != 3 {
		t.Fatalf("len = %d", sa.Len())
	}
}

func TestDirectMappedIsOneWay(t *testing.T) {
	sa, err := NewSetAssoc(4, 1, LRU)
	if err != nil {
		t.Fatal(err)
	}
	sa.Insert(2, Shared, 0, 0)
	v, ev := sa.Insert(6, Shared, 1, 1) // same set (2 mod 4)
	if !ev || v.Tag != 2 {
		t.Fatalf("direct-mapped conflict: %+v %v", v, ev)
	}
}

// TestFullyAssociativeEquivalence: a SetAssoc with one set must behave
// exactly like the fully associative Cache under a random workload.
func TestFullyAssociativeEquivalence(t *testing.T) {
	const capacity = 8
	fa := New(capacity, LRU)
	sa, err := NewSetAssoc(capacity, capacity, LRU) // 1 set of 8 ways
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	for step := 0; step < 4000; step++ {
		tag := uint64(r.Intn(24))
		now := int64(step)
		lf, ls := fa.Lookup(tag, now), sa.Lookup(tag, now)
		if (lf == nil) != (ls == nil) {
			t.Fatalf("step %d: residency diverged for tag %d", step, tag)
		}
		if lf != nil {
			fa.Touch(lf)
			sa.Touch(ls)
			continue
		}
		vf, ef := fa.Insert(tag, Shared, now, now)
		vs, es := sa.Insert(tag, Shared, now, now)
		if ef != es || (ef && vf.Tag != vs.Tag) {
			t.Fatalf("step %d: eviction diverged: %v/%v vs %v/%v", step, vf, ef, vs, es)
		}
	}
}

// TestConflictMissesExceedFullyAssociative is the destructive-
// interference property the paper's future work targets: under a strided
// reference stream, a direct-mapped cache of the same size misses more.
func TestConflictMissesExceedFullyAssociative(t *testing.T) {
	misses := func(st Store) int {
		n := 0
		for step := 0; step < 2000; step++ {
			tag := uint64((step % 4) * 16) // 4 tags, all in one set
			if l := st.Lookup(tag, int64(step)); l != nil {
				st.Touch(l)
				continue
			}
			n++
			st.Insert(tag, Shared, int64(step), int64(step))
		}
		return n
	}
	fa := New(16, LRU)
	dm, err := NewSetAssoc(16, 1, LRU)
	if err != nil {
		t.Fatal(err)
	}
	mf, md := misses(fa), misses(dm)
	if mf != 4 {
		t.Fatalf("fully associative missed %d, want 4 cold misses", mf)
	}
	if md <= mf {
		t.Fatalf("direct-mapped should thrash: %d misses vs %d", md, mf)
	}
}

func TestSetAssocInvalidateAndDowngrade(t *testing.T) {
	sa, err := NewSetAssoc(8, 2, LRU)
	if err != nil {
		t.Fatal(err)
	}
	sa.Insert(5, Exclusive, 0, 0)
	sa.Downgrade(5)
	if l := sa.Lookup(5, 1); l == nil || l.State != Shared {
		t.Fatalf("downgrade failed: %+v", l)
	}
	if !sa.Invalidate(5) {
		t.Fatal("invalidate reported not resident")
	}
	if sa.Invalidate(5) {
		t.Fatal("double invalidate reported resident")
	}
}

// Property: Len equals the number of distinct resident tags and never
// exceeds capacity.
func TestSetAssocLenProperty(t *testing.T) {
	f := func(tags []uint8) bool {
		sa, err := NewSetAssoc(16, 4, LRU)
		if err != nil {
			return false
		}
		for i, tg := range tags {
			tag := uint64(tg)
			if sa.Lookup(tag, int64(i)) == nil {
				sa.Insert(tag, Shared, int64(i), int64(i))
			}
			if sa.Len() > 16 {
				return false
			}
		}
		seen := map[uint64]bool{}
		ok := true
		sa.ForEach(func(l *Line) {
			if seen[l.Tag] {
				ok = false
			}
			seen[l.Tag] = true
		})
		return ok && len(seen) == sa.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
