// Set-associative cluster caches. The paper's main study deliberately
// uses fully associative caches to exclude conflict misses; its
// conclusions flag "the destructive interference due to limited
// associativity" as the thing to examine next. SetAssoc implements that
// follow-up: a k-way set-associative cache built from per-set LRU/FIFO
// arrays, sharing the Line representation with the fully associative
// Cache so the coherence layer treats both uniformly.
package cache

import "fmt"

// Store is the cluster-cache interface the coherence protocol drives;
// *Cache (fully associative) and *SetAssoc (k-way) both implement it.
type Store interface {
	// Lookup returns the resident line for tag, or nil, settling an
	// expired pending fill first. It does not update recency.
	Lookup(tag uint64, now Clock) *Line
	// Peek returns the resident line for tag without settling pending
	// fills or updating recency (non-mutating; for invariant audits).
	Peek(tag uint64) *Line
	// Touch marks the line most recently used.
	Touch(l *Line)
	// Insert installs a pending fill, evicting a victim if needed.
	Insert(tag uint64, fillState State, now, readyAt Clock) (victim Line, evicted bool)
	// Invalidate removes tag, reporting whether it was resident.
	Invalidate(tag uint64) bool
	// Downgrade moves an Exclusive line (or fill) to Shared.
	Downgrade(tag uint64)
	// Len returns the number of resident lines.
	Len() int
	// ForEach visits every resident line.
	ForEach(fn func(*Line))
	// EvictionCount returns the number of replacement victims so far.
	EvictionCount() uint64
}

var (
	_ Store = (*Cache)(nil)
	_ Store = (*SetAssoc)(nil)
)

// EvictionCount returns the number of replacement victims so far.
func (c *Cache) EvictionCount() uint64 { return c.Evictions }

// SetAssoc is a k-way set-associative cache: capacity/ways sets, each a
// small fully associative array with the configured replacement policy.
// The set index is the low bits of the line number, as in a physical
// cache, so lines that are far apart in the address space can conflict —
// the destructive-interference mechanism the paper defers to future
// work.
type SetAssoc struct {
	sets []*Cache
	mask uint64
}

// NewSetAssoc builds a cache of capacityLines lines organised as
// ways-associative sets. capacityLines must be a positive multiple of
// ways and the set count must be a power of two.
func NewSetAssoc(capacityLines, ways int, policy ReplacePolicy) (*SetAssoc, error) {
	if capacityLines <= 0 {
		return nil, fmt.Errorf("cache: set-associative cache needs a finite capacity")
	}
	if ways <= 0 || capacityLines%ways != 0 {
		return nil, fmt.Errorf("cache: %d lines not divisible into %d-way sets", capacityLines, ways)
	}
	nsets := capacityLines / ways
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("cache: %d sets is not a power of two", nsets)
	}
	sa := &SetAssoc{sets: make([]*Cache, nsets), mask: uint64(nsets - 1)}
	for i := range sa.sets {
		sa.sets[i] = New(ways, policy)
	}
	return sa, nil
}

// Ways returns the associativity.
func (sa *SetAssoc) Ways() int { return sa.sets[0].Capacity() }

// Sets returns the number of sets.
func (sa *SetAssoc) Sets() int { return len(sa.sets) }

func (sa *SetAssoc) set(tag uint64) *Cache { return sa.sets[tag&sa.mask] }

// Lookup finds tag in its set.
func (sa *SetAssoc) Lookup(tag uint64, now Clock) *Line { return sa.set(tag).Lookup(tag, now) }

// Peek finds tag in its set without settling or recency updates.
func (sa *SetAssoc) Peek(tag uint64) *Line { return sa.set(tag).Peek(tag) }

// Touch marks the line most recently used within its set.
func (sa *SetAssoc) Touch(l *Line) { sa.set(l.Tag).Touch(l) }

// Insert installs a pending fill in tag's set, evicting that set's
// LRU/FIFO victim if the set is full.
func (sa *SetAssoc) Insert(tag uint64, fillState State, now, readyAt Clock) (victim Line, evicted bool) {
	return sa.set(tag).Insert(tag, fillState, now, readyAt)
}

// Invalidate removes tag from its set.
func (sa *SetAssoc) Invalidate(tag uint64) bool { return sa.set(tag).Invalidate(tag) }

// Downgrade moves tag's line to Shared.
func (sa *SetAssoc) Downgrade(tag uint64) { sa.set(tag).Downgrade(tag) }

// Len returns the number of resident lines across all sets.
func (sa *SetAssoc) Len() int {
	n := 0
	for _, s := range sa.sets {
		n += s.Len()
	}
	return n
}

// ForEach visits every resident line, set by set.
func (sa *SetAssoc) ForEach(fn func(*Line)) {
	for _, s := range sa.sets {
		s.ForEach(fn)
	}
}

// EvictionCount returns the number of replacement victims across sets.
func (sa *SetAssoc) EvictionCount() uint64 {
	var n uint64
	for _, s := range sa.sets {
		n += s.Evictions
	}
	return n
}
