// Package cache models the shared cluster caches of the simulated
// machine. Following the paper's methodology the caches are fully
// associative with LRU replacement ("we do not want to include the effect
// of conflict misses that are due to limited associativity"), with 64-byte
// lines by default, and either finite (sized per processor) or infinite.
//
// A line can be INVALID (absent), SHARED, or EXCLUSIVE. Lines being
// filled by an outstanding READ or WRITE miss are additionally pending
// until the fill's ready time; a read that finds a pending line is a
// MERGE miss and blocks until the data returns.
package cache

import "fmt"

// Clock mirrors engine.Clock to avoid a dependency cycle.
type Clock = int64

// State is the cache-line coherence state.
type State uint8

const (
	Invalid State = iota
	Shared
	Exclusive
)

// String names the state as in the paper (INVALID/SHARED/EXCLUSIVE).
func (s State) String() string {
	switch s {
	case Invalid:
		return "INVALID"
	case Shared:
		return "SHARED"
	case Exclusive:
		return "EXCLUSIVE"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// ReplacePolicy selects the victim-choice policy. The paper uses LRU; FIFO
// is provided for the ablation benchmarks.
type ReplacePolicy uint8

const (
	LRU ReplacePolicy = iota
	FIFO
)

// Line is one resident cache line.
type Line struct {
	Tag   uint64 // line number (address >> lineShift)
	State State

	// Pending is set while the fill for this line is still in flight.
	// ReadyAt is the cycle the data arrives; FillState is the state the
	// line assumes then (Shared for read fills, Exclusive for write
	// fills, upgraded in place if a write hits a pending read fill).
	Pending   bool
	ReadyAt   Clock
	FillState State

	prev, next *Line // LRU list, most recent at head
}

// Cache is one cluster's fully associative cache.
type Cache struct {
	capacity int // lines; 0 means infinite
	policy   ReplacePolicy
	lines    map[uint64]*Line
	head     *Line // most recently used
	tail     *Line // least recently used
	free     *Line // recycled Line structs

	// Evictions counts replacement victims; for sanity checks.
	Evictions uint64
}

// New creates a cache holding capacityLines lines (0 = infinite).
func New(capacityLines int, policy ReplacePolicy) *Cache {
	if capacityLines < 0 {
		panic("cache: negative capacity")
	}
	return &Cache{
		capacity: capacityLines,
		policy:   policy,
		lines:    make(map[uint64]*Line),
	}
}

// Capacity returns the line capacity (0 = infinite).
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of resident lines.
func (c *Cache) Len() int { return len(c.lines) }

// Lookup returns the resident line for tag, or nil, resolving an expired
// pending fill (now >= ReadyAt) to its final state first. It does not
// update recency; call Touch on a hit.
func (c *Cache) Lookup(tag uint64, now Clock) *Line {
	l := c.lines[tag]
	if l == nil {
		return nil
	}
	if l.Pending && now >= l.ReadyAt {
		l.Pending = false
		l.State = l.FillState
	}
	return l
}

// Peek returns the resident line for tag without settling pending fills
// or updating recency — the sanitizer's non-mutating view. A pending
// line whose ReadyAt has passed is still reported Pending; readers must
// use FillState for its effective coherence state.
func (c *Cache) Peek(tag uint64) *Line { return c.lines[tag] }

// Touch marks the line most recently used.
func (c *Cache) Touch(l *Line) {
	if c.policy == FIFO {
		return // FIFO order is insertion order only
	}
	if c.head == l {
		return
	}
	c.unlink(l)
	c.pushFront(l)
}

// Insert installs a pending fill for tag, issued at now, that completes
// at readyAt in fillState. If the cache is full it evicts a victim first
// and returns it (with its pre-eviction tag and state) so the caller can
// send a writeback or replacement hint to the directory. Inserting a tag
// that is already resident panics — callers must Lookup first.
func (c *Cache) Insert(tag uint64, fillState State, now, readyAt Clock) (victim Line, evicted bool) {
	if _, dup := c.lines[tag]; dup {
		panic(fmt.Sprintf("cache: duplicate insert of line %#x", tag))
	}
	if c.capacity != 0 && len(c.lines) >= c.capacity {
		v := c.chooseVictim(now)
		if v != nil {
			victim = *v
			evicted = true
			c.remove(v)
			c.Evictions++
		}
	}
	l := c.newLine()
	l.Tag = tag
	l.State = Invalid
	l.Pending = true
	l.ReadyAt = readyAt
	l.FillState = fillState
	c.lines[tag] = l
	c.pushFront(l)
	return victim, evicted
}

// Invalidate removes tag from the cache (invalidations are instantaneous
// in the paper's protocol and may target a pending line). It reports
// whether the line was resident.
func (c *Cache) Invalidate(tag uint64) bool {
	l := c.lines[tag]
	if l == nil {
		return false
	}
	c.remove(l)
	return true
}

// Downgrade moves an Exclusive line to Shared (remote read of dirty data).
func (c *Cache) Downgrade(tag uint64) {
	l := c.lines[tag]
	if l == nil {
		return
	}
	if l.Pending {
		if l.FillState == Exclusive {
			l.FillState = Shared
		}
		return
	}
	if l.State == Exclusive {
		l.State = Shared
	}
}

// chooseVictim returns the least recently used non-pending line at time
// now, settling expired fills along the way. It returns nil if every
// resident line's fill is still in flight (the caller then over-commits
// by one line; with realistic miss latencies this is vanishingly rare).
func (c *Cache) chooseVictim(now Clock) *Line {
	for l := c.tail; l != nil; l = l.prev {
		if l.Pending && now >= l.ReadyAt {
			l.Pending = false
			l.State = l.FillState
		}
		if !l.Pending {
			return l
		}
	}
	return nil
}

// ForEach visits every resident line; for invariant auditing in tests.
func (c *Cache) ForEach(fn func(*Line)) {
	for l := c.head; l != nil; l = l.next {
		fn(l)
	}
}

func (c *Cache) remove(l *Line) {
	c.unlink(l)
	delete(c.lines, l.Tag)
	l.prev, l.next = nil, c.free
	c.free = l
}

func (c *Cache) newLine() *Line {
	if c.free != nil {
		l := c.free
		c.free = l.next
		*l = Line{}
		return l
	}
	return &Line{}
}

func (c *Cache) pushFront(l *Line) {
	l.prev = nil
	l.next = c.head
	if c.head != nil {
		c.head.prev = l
	}
	c.head = l
	if c.tail == nil {
		c.tail = l
	}
}

func (c *Cache) unlink(l *Line) {
	if l.prev != nil {
		l.prev.next = l.next
	} else if c.head == l {
		c.head = l.next
	}
	if l.next != nil {
		l.next.prev = l.prev
	} else if c.tail == l {
		c.tail = l.prev
	}
	l.prev, l.next = nil, nil
}
