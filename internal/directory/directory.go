// Package directory implements the full-bit-vector cache directory of the
// simulated machine. The directory tracks, per cache line, which clusters
// hold copies and whether one holds it exclusively, exactly as in the
// paper: "The directory is implemented as a full bit vector with
// replacement hints", supporting the line states NOT_CACHED, SHARED and
// EXCLUSIVE. Replacement hints keep the sharer vector exact: a cluster
// that silently drops a clean line tells its home directory, so no stale
// invalidations are ever sent.
//
// Directory state is logically distributed across the home clusters; this
// implementation keeps a single map keyed by line number because homing
// affects only latency, which the coherence layer computes from the
// address space's page-home table.
package directory

import (
	"fmt"
	"math/bits"
)

// State is the directory's view of one cache line.
type State uint8

const (
	NotCached State = iota
	Shared
	Exclusive
)

// String names the directory state as in the paper.
func (s State) String() string {
	switch s {
	case NotCached:
		return "NOT_CACHED"
	case Shared:
		return "SHARED"
	case Exclusive:
		return "EXCLUSIVE"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Entry is the directory record for one line. The sharer vector is a
// 64-bit mask over clusters — the paper's machine has at most 64 clusters
// (64 processors, 1 per cluster).
type Entry struct {
	State   State
	Sharers uint64
}

// Owner returns the exclusive owner cluster; it panics unless the entry
// is Exclusive with exactly one sharer bit set.
func (e Entry) Owner() int {
	if e.State != Exclusive || popcount(e.Sharers) != 1 {
		panic(fmt.Sprintf("directory: Owner of non-exclusive entry %+v", e))
	}
	return trailingZeros(e.Sharers)
}

// NumSharers returns how many clusters hold a copy.
func (e Entry) NumSharers() int { return popcount(e.Sharers) }

// Has reports whether cluster holds a copy.
func (e Entry) Has(cluster int) bool { return e.Sharers&(1<<uint(cluster)) != 0 }

// Directory is the collection of entries for every line ever cached.
type Directory struct {
	numClusters int
	entries     map[uint64]Entry
}

// New creates a directory for a machine of numClusters clusters (≤ 64).
func New(numClusters int) (*Directory, error) {
	if numClusters <= 0 || numClusters > 64 {
		return nil, fmt.Errorf("directory: numClusters %d out of range [1,64]", numClusters)
	}
	return &Directory{numClusters: numClusters, entries: make(map[uint64]Entry)}, nil
}

// Lookup returns the entry for a line; absent lines are NotCached.
func (d *Directory) Lookup(line uint64) Entry {
	return d.entries[line]
}

// AddSharer records that cluster fetched the line in the shared state.
// The entry must not be Exclusive (the coherence layer downgrades the
// owner first).
func (d *Directory) AddSharer(line uint64, cluster int) {
	d.check(cluster)
	e := d.entries[line]
	if e.State == Exclusive {
		panic(fmt.Sprintf("directory: AddSharer on EXCLUSIVE line %#x", line))
	}
	e.State = Shared
	e.Sharers |= 1 << uint(cluster)
	d.entries[line] = e
}

// SetExclusive records that cluster now owns the line exclusively; every
// other copy must already have been invalidated by the caller.
func (d *Directory) SetExclusive(line uint64, cluster int) {
	d.check(cluster)
	d.entries[line] = Entry{State: Exclusive, Sharers: 1 << uint(cluster)}
}

// Downgrade moves an Exclusive line to Shared, keeping the owner as a
// sharer (a remote read of dirty data causes a cache-to-cache transfer
// and the owner retains a shared copy).
func (d *Directory) Downgrade(line uint64) {
	e := d.entries[line]
	if e.State != Exclusive {
		panic(fmt.Sprintf("directory: Downgrade on %v line %#x", e.State, line))
	}
	e.State = Shared
	d.entries[line] = e
}

// ReplacementHint records that cluster dropped its clean copy. When the
// last copy goes, the line returns to NotCached. Hints for lines or
// clusters the directory does not consider sharers are ignored (they can
// arise when an eviction races an instantaneous invalidation).
func (d *Directory) ReplacementHint(line uint64, cluster int) {
	d.check(cluster)
	e, ok := d.entries[line]
	if !ok || !e.Has(cluster) {
		return
	}
	e.Sharers &^= 1 << uint(cluster)
	if e.Sharers == 0 {
		delete(d.entries, line)
		return
	}
	d.entries[line] = e
}

// Writeback records that the exclusive owner evicted its dirty copy; the
// line returns to NotCached (memory at the home is now up to date).
func (d *Directory) Writeback(line uint64, cluster int) {
	d.check(cluster)
	e := d.entries[line]
	if e.State != Exclusive || !e.Has(cluster) {
		panic(fmt.Sprintf("directory: Writeback of line %#x from non-owner cluster %d (entry %+v)",
			line, cluster, e))
	}
	delete(d.entries, line)
}

// ClearAll invalidates every copy of the line (the requester's write has
// been serialised); the caller is responsible for invalidating the caches.
// It returns the clusters that held copies, as a bitmask.
func (d *Directory) ClearAll(line uint64) uint64 {
	e := d.entries[line]
	delete(d.entries, line)
	return e.Sharers
}

// Len returns how many lines are currently cached somewhere.
func (d *Directory) Len() int { return len(d.entries) }

// ForEach visits every entry; for invariant auditing in tests.
func (d *Directory) ForEach(fn func(line uint64, e Entry)) {
	for line, e := range d.entries {
		fn(line, e)
	}
}

func (d *Directory) check(cluster int) {
	if cluster < 0 || cluster >= d.numClusters {
		panic(fmt.Sprintf("directory: cluster %d out of range [0,%d)", cluster, d.numClusters))
	}
}

func popcount(x uint64) int { return bits.OnesCount64(x) }

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }
