package directory

import (
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, n int) *Directory {
	t.Helper()
	d, err := New(n)
	if err != nil {
		t.Fatalf("New(%d): %v", n, err)
	}
	return d
}

func TestNewBounds(t *testing.T) {
	for _, n := range []int{0, -1, 65} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d): want error", n)
		}
	}
	if _, err := New(64); err != nil {
		t.Errorf("New(64): %v", err)
	}
}

func TestLookupAbsentIsNotCached(t *testing.T) {
	d := mustNew(t, 8)
	e := d.Lookup(99)
	if e.State != NotCached || e.Sharers != 0 {
		t.Fatalf("absent entry = %+v", e)
	}
}

func TestSharedLifecycle(t *testing.T) {
	d := mustNew(t, 8)
	d.AddSharer(1, 2)
	d.AddSharer(1, 5)
	e := d.Lookup(1)
	if e.State != Shared || e.NumSharers() != 2 || !e.Has(2) || !e.Has(5) {
		t.Fatalf("entry = %+v", e)
	}
	d.ReplacementHint(1, 2)
	if e := d.Lookup(1); e.NumSharers() != 1 || e.Has(2) {
		t.Fatalf("after hint: %+v", e)
	}
	d.ReplacementHint(1, 5)
	if e := d.Lookup(1); e.State != NotCached {
		t.Fatalf("after last hint: %+v, want NOT_CACHED", e)
	}
	if d.Len() != 0 {
		t.Fatalf("len = %d, want 0", d.Len())
	}
}

func TestExclusiveLifecycle(t *testing.T) {
	d := mustNew(t, 8)
	d.SetExclusive(7, 3)
	e := d.Lookup(7)
	if e.State != Exclusive || e.Owner() != 3 {
		t.Fatalf("entry = %+v", e)
	}
	d.Downgrade(7)
	e = d.Lookup(7)
	if e.State != Shared || !e.Has(3) {
		t.Fatalf("after downgrade: %+v", e)
	}
}

func TestWriteback(t *testing.T) {
	d := mustNew(t, 4)
	d.SetExclusive(10, 1)
	d.Writeback(10, 1)
	if e := d.Lookup(10); e.State != NotCached {
		t.Fatalf("after writeback: %+v", e)
	}
}

func TestWritebackFromNonOwnerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("writeback from non-owner did not panic")
		}
	}()
	d := mustNew(t, 4)
	d.SetExclusive(10, 1)
	d.Writeback(10, 2)
}

func TestClearAllReturnsSharers(t *testing.T) {
	d := mustNew(t, 8)
	d.AddSharer(4, 0)
	d.AddSharer(4, 6)
	mask := d.ClearAll(4)
	if mask != (1<<0)|(1<<6) {
		t.Fatalf("mask = %#x", mask)
	}
	if e := d.Lookup(4); e.State != NotCached {
		t.Fatalf("after ClearAll: %+v", e)
	}
	if d.ClearAll(4) != 0 {
		t.Fatal("ClearAll of absent line returned sharers")
	}
}

func TestAddSharerOnExclusivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddSharer on exclusive line did not panic")
		}
	}()
	d := mustNew(t, 4)
	d.SetExclusive(1, 0)
	d.AddSharer(1, 1)
}

func TestHintIgnoredForNonSharer(t *testing.T) {
	d := mustNew(t, 4)
	d.AddSharer(1, 0)
	d.ReplacementHint(1, 3) // not a sharer: ignored
	if e := d.Lookup(1); !e.Has(0) || e.NumSharers() != 1 {
		t.Fatalf("entry corrupted by stray hint: %+v", e)
	}
	d.ReplacementHint(2, 0) // absent line: ignored
}

func TestOwnerPanicsOnShared(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Owner on shared entry did not panic")
		}
	}()
	d := mustNew(t, 4)
	d.AddSharer(1, 0)
	d.Lookup(1).Owner()
}

// Property: under random legal operation sequences, the directory
// maintains: EXCLUSIVE ⇒ exactly one sharer; SHARED ⇒ ≥1 sharer;
// entries never linger with zero sharers.
func TestDirectoryInvariantsProperty(t *testing.T) {
	type op struct {
		Kind    uint8
		Line    uint8
		Cluster uint8
	}
	f := func(ops []op) bool {
		d, _ := New(8)
		for _, o := range ops {
			line := uint64(o.Line % 16)
			cl := int(o.Cluster % 8)
			e := d.Lookup(line)
			switch o.Kind % 4 {
			case 0: // read fill
				if e.State == Exclusive {
					d.Downgrade(line)
				}
				d.AddSharer(line, cl)
			case 1: // write fill
				d.ClearAll(line)
				d.SetExclusive(line, cl)
			case 2: // replacement hint, only legal for a clean sharer
				if e.State == Shared && e.Has(cl) {
					d.ReplacementHint(line, cl)
				}
			case 3: // writeback, only legal for the dirty owner
				if e.State == Exclusive && e.Has(cl) {
					d.Writeback(line, cl)
				}
			}
		}
		ok := true
		d.ForEach(func(line uint64, e Entry) {
			switch e.State {
			case Exclusive:
				if e.NumSharers() != 1 {
					ok = false
				}
			case Shared:
				if e.NumSharers() < 1 {
					ok = false
				}
			default:
				ok = false // NotCached entries must be deleted, not stored
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
