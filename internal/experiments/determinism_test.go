package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"clustersim/internal/apps"
	"clustersim/internal/apps/registry"
	"clustersim/internal/core"
	"clustersim/internal/telemetry"
)

// detConfig is the small clustered machine every registered application
// is replayed on — finite caches so eviction, hint and writeback paths
// are all exercised.
func detConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Procs = 8
	cfg.ClusterSize = 2
	cfg.CacheKBPerProc = 16
	return cfg
}

// TestCrossRunDeterminism replays every registered application twice
// under an identical configuration and requires byte-identical JSON
// results (every counter, finish time and region profile) and equal
// config hashes — the simulator's bit-reproducibility guarantee, end to
// end. A third run with the sanitizer attached must also be
// byte-identical: the checker is read-only and must not perturb the
// simulation it watches.
func TestCrossRunDeterminism(t *testing.T) {
	for _, w := range registry.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			run := func(sanitize bool) ([]byte, string) {
				t.Helper()
				cfg := detConfig()
				cfg.Sanitize = sanitize
				res, err := w.Run(cfg, apps.SizeTest)
				if err != nil {
					t.Fatal(err)
				}
				blob, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				hash, err := telemetry.HashConfig(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return blob, hash
			}
			first, hash1 := run(false)
			second, hash2 := run(false)
			if hash1 != hash2 {
				t.Errorf("config hash differs across runs: %s vs %s", hash1, hash2)
			}
			if !bytes.Equal(first, second) {
				t.Errorf("results differ across identical runs:\n run 1: %s\n run 2: %s",
					diffHint(first, second), diffHint(second, first))
			}
			sanitized, hash3 := run(true)
			if hash3 != hash1 {
				t.Errorf("Sanitize changed the config hash: %s vs %s", hash3, hash1)
			}
			if !bytes.Equal(first, sanitized) {
				t.Errorf("sanitizer perturbed the run:\n plain:     %s\n sanitized: %s",
					diffHint(first, sanitized), diffHint(sanitized, first))
			}
		})
	}
}

// diffHint trims a JSON blob to the window around its first divergence
// from other, keeping failure output readable.
func diffHint(blob, other []byte) []byte {
	i := 0
	for i < len(blob) && i < len(other) && blob[i] == other[i] {
		i++
	}
	lo, hi := i-40, i+80
	if lo < 0 {
		lo = 0
	}
	if hi > len(blob) {
		hi = len(blob)
	}
	return blob[lo:hi]
}
