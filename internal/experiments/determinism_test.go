package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"clustersim/internal/apps"
	"clustersim/internal/apps/registry"
	"clustersim/internal/core"
	"clustersim/internal/profile"
	"clustersim/internal/telemetry"
)

// detConfig is the small clustered machine every registered application
// is replayed on — finite caches so eviction, hint and writeback paths
// are all exercised.
func detConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Procs = 8
	cfg.ClusterSize = 2
	cfg.CacheKBPerProc = 16
	return cfg
}

// TestCrossRunDeterminism replays every registered application twice
// under an identical configuration and requires byte-identical JSON
// results (every counter, finish time and region profile) and equal
// config hashes — the simulator's bit-reproducibility guarantee, end to
// end. A third run with the sanitizer attached must also be
// byte-identical: the checker is read-only and must not perturb the
// simulation it watches.
func TestCrossRunDeterminism(t *testing.T) {
	for _, w := range registry.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			run := func(sanitize bool) ([]byte, string) {
				t.Helper()
				cfg := detConfig()
				cfg.Sanitize = sanitize
				res, err := w.Run(cfg, apps.SizeTest)
				if err != nil {
					t.Fatal(err)
				}
				blob, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				hash, err := telemetry.HashConfig(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return blob, hash
			}
			first, hash1 := run(false)
			second, hash2 := run(false)
			if hash1 != hash2 {
				t.Errorf("config hash differs across runs: %s vs %s", hash1, hash2)
			}
			if !bytes.Equal(first, second) {
				t.Errorf("results differ across identical runs:\n run 1: %s\n run 2: %s",
					diffHint(first, second), diffHint(second, first))
			}
			sanitized, hash3 := run(true)
			if hash3 != hash1 {
				t.Errorf("Sanitize changed the config hash: %s vs %s", hash3, hash1)
			}
			if !bytes.Equal(first, sanitized) {
				t.Errorf("sanitizer perturbed the run:\n plain:     %s\n sanitized: %s",
					diffHint(first, sanitized), diffHint(sanitized, first))
			}
		})
	}
}

// TestProfilerDeterminism attaches the sharing profiler to every
// registered application and requires (a) the profiler is read-only —
// the Result JSON and config hash stay byte-identical to an unprofiled
// run — and (b) the profile report itself is byte-identical across two
// profiled runs of the same configuration.
func TestProfilerDeterminism(t *testing.T) {
	for _, w := range registry.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			run := func(withProfile bool) (result, prof []byte, hash string) {
				t.Helper()
				cfg := detConfig()
				var col *profile.Collector
				if withProfile {
					col = profile.New()
					cfg.Profile = col
				}
				res, err := w.Run(cfg, apps.SizeTest)
				if err != nil {
					t.Fatal(err)
				}
				blob, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				h, err := telemetry.HashConfig(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if col != nil {
					rep := col.Report(10)
					// The profiler classifies exactly the machine's fetch
					// misses, no more, no fewer.
					if got, want := rep.Totals.Misses.Total(), res.Aggregate().Misses(); got != want {
						t.Errorf("profile classified %d misses, machine counted %d", got, want)
					}
					var buf bytes.Buffer
					if err := profile.WriteReport(&buf, rep); err != nil {
						t.Fatal(err)
					}
					prof = buf.Bytes()
				}
				return blob, prof, h
			}
			plain, _, hash1 := run(false)
			profiled1, report1, hash2 := run(true)
			if hash2 != hash1 {
				t.Errorf("Profile changed the config hash: %s vs %s", hash2, hash1)
			}
			if !bytes.Equal(plain, profiled1) {
				t.Errorf("profiler perturbed the run:\n plain:    %s\n profiled: %s",
					diffHint(plain, profiled1), diffHint(profiled1, plain))
			}
			_, report2, _ := run(true)
			if !bytes.Equal(report1, report2) {
				t.Errorf("profile reports differ across identical runs:\n run 1: %s\n run 2: %s",
					diffHint(report1, report2), diffHint(report2, report1))
			}
			if len(report1) == 0 || !bytes.Contains(report1, []byte(profile.SchemaV1)) {
				t.Errorf("profile report missing schema header: %.120s", report1)
			}
		})
	}
}

// diffHint trims a JSON blob to the window around its first divergence
// from other, keeping failure output readable.
func diffHint(blob, other []byte) []byte {
	i := 0
	for i < len(blob) && i < len(other) && blob[i] == other[i] {
		i++
	}
	lo, hi := i-40, i+80
	if lo < 0 {
		lo = 0
	}
	if hi > len(blob) {
		hi = len(blob)
	}
	return blob[lo:hi]
}
