package experiments

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
	"time"

	"clustersim/internal/apps"
	"clustersim/internal/apps/registry"
	"clustersim/internal/obs"
	"clustersim/internal/telemetry"
)

// TestObsReadOnly is the acceptance check for the observability plane's
// hard constraint: attaching a Sweep (with a live registry and event
// log) to the suite must leave every point's Result JSON and config
// hash byte-identical to an unobserved run. The sweep is wall-clock
// instrumentation only — it can watch the simulation but never touch it.
func TestObsReadOnly(t *testing.T) {
	for _, w := range registry.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			run := func(sweep *obs.Sweep) ([]byte, string) {
				t.Helper()
				opt := Options{Procs: 8, Size: apps.SizeTest, Out: io.Discard, Obs: sweep}
				s := NewSuite(opt)
				res, err := s.Run(w.Name, 2, 16)
				if err != nil {
					t.Fatal(err)
				}
				blob, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				hash, err := telemetry.HashConfig(opt.config(2, 16))
				if err != nil {
					t.Fatal(err)
				}
				return blob, hash
			}
			plain, hash1 := run(nil)
			sweep := obs.NewSweep("test", obs.NewRegistry(), obs.NewLog(nil, "test"))
			observed, hash2 := run(sweep)
			if hash1 != hash2 {
				t.Errorf("obs changed the config hash: %s vs %s", hash1, hash2)
			}
			if !bytes.Equal(plain, observed) {
				t.Errorf("obs perturbed the run:\n plain:    %s\n observed: %s",
					diffHint(plain, observed), diffHint(observed, plain))
			}
			doc := sweep.Status()
			if doc.Counts.Done != 1 || len(doc.Points) != 1 {
				t.Errorf("sweep did not record the point: %+v", doc.Counts)
			}
		})
	}
}

// TestObsJournalReplaySplit drives the suite over a journal twice with
// a sweep attached: the first pass computes, the second replays, and
// the sweep's state machine and the suite's fresh/replayed counters
// both report the split.
func TestObsJournalReplaySplit(t *testing.T) {
	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runPass := func() (*Suite, *obs.Sweep) {
		sweep := obs.NewSweepAt("pass", obs.NewRegistry(), nil,
			func() time.Time { return time.Unix(0, 0) })
		s := NewSuite(Options{Procs: 8, Size: apps.SizeTest, Out: io.Discard, Journal: j, Obs: sweep})
		if _, err := s.Run("lu", 2, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run("fft", 2, 0); err != nil {
			t.Fatal(err)
		}
		return s, sweep
	}
	s1, sw1 := runPass()
	if s1.Fresh() != 2 || s1.Replayed() != 0 {
		t.Errorf("first pass: fresh=%d replayed=%d, want 2/0", s1.Fresh(), s1.Replayed())
	}
	if c := sw1.Status().Counts; c.Done != 2 || c.Replayed != 0 {
		t.Errorf("first pass sweep counts: %+v", c)
	}
	if doc := sw1.Status(); doc.Journal.Misses != 2 || doc.Journal.Hits != 0 {
		t.Errorf("first pass journal stats: %+v", doc.Journal)
	}

	s2, sw2 := runPass()
	if s2.Fresh() != 0 || s2.Replayed() != 2 {
		t.Errorf("second pass: fresh=%d replayed=%d, want 0/2", s2.Fresh(), s2.Replayed())
	}
	doc := sw2.Status()
	if c := doc.Counts; c.Replayed != 2 || c.Done != 0 {
		t.Errorf("second pass sweep counts: %+v", c)
	}
	if doc.Journal.Hits != 2 || doc.Journal.Misses != 0 {
		t.Errorf("second pass journal stats: %+v", doc.Journal)
	}
	for _, p := range doc.Points {
		if p.State != obs.PointReplayed || p.VirtCycles <= 0 {
			t.Errorf("replayed point row: %+v", p)
		}
	}
}
