package experiments

import (
	"strings"
	"testing"

	"clustersim/internal/core"
)

func TestExtAssociativityShowsInterference(t *testing.T) {
	var buf strings.Builder
	rows, err := ExtAssociativityData(quickOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ExtAssocApps)*len(ExtAssocWays)*len(ClusterSizes) {
		t.Fatalf("got %d rows", len(rows))
	}
	// Destructive interference: for each app at cluster size 1, the
	// direct-mapped cache must suffer at least as many read misses as
	// the fully associative one.
	miss := map[[3]interface{}]uint64{}
	for _, r := range rows {
		miss[[3]interface{}{r.App, r.Ways, r.ClusterSize}] = r.ReadMisses
	}
	for _, app := range ExtAssocApps {
		full := miss[[3]interface{}{app, 0, 1}]
		dm := miss[[3]interface{}{app, 1, 1}]
		if dm < full {
			t.Errorf("%s: direct-mapped misses %d < fully associative %d", app, dm, full)
		}
	}
}

func TestExtAssociativityPrints(t *testing.T) {
	var buf strings.Builder
	if err := ExtAssociativity(quickOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "full") || !strings.Contains(buf.String(), "ocean") {
		t.Errorf("output incomplete:\n%s", buf.String())
	}
}

func TestExtOrganizationsData(t *testing.T) {
	var buf strings.Builder
	rows, err := ExtOrganizationsData(quickOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ExtOrgApps)*2*len(ClusterSizes) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		switch r.Organization {
		case core.SharedCache:
			if r.IntraFrac != 0 {
				t.Errorf("%s shared-cache %dp: intra-cluster fraction %.3f should be 0",
					r.App, r.ClusterSize, r.IntraFrac)
			}
		case core.SharedMemory:
			if r.ClusterSize > 1 && r.IntraFrac == 0 {
				t.Errorf("%s shared-memory %dp: no intra-cluster services",
					r.App, r.ClusterSize)
			}
		}
		if r.ExecTime <= 0 {
			t.Errorf("%s %v %dp: empty run", r.App, r.Organization, r.ClusterSize)
		}
	}
}

func TestExtOrganizationsPrints(t *testing.T) {
	var buf strings.Builder
	if err := ExtOrganizations(quickOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "shared-memory") || !strings.Contains(out, "in-cluster") {
		t.Errorf("output incomplete:\n%s", out)
	}
}

func TestRenderBars(t *testing.T) {
	bars := []Bar{
		{App: "x", ClusterSize: 1, CacheKB: 0,
			NormalizedBar: core.NormalizedBar{Total: 100, CPU: 40, Load: 30, Merge: 10, Sync: 20}},
		{App: "x", ClusterSize: 2, CacheKB: 0,
			NormalizedBar: core.NormalizedBar{Total: 50, CPU: 40, Load: 5, Merge: 2, Sync: 3}},
		{App: "y", ClusterSize: 1, CacheKB: 4,
			NormalizedBar: core.NormalizedBar{Total: 110, CPU: 55, Load: 55}},
	}
	var buf strings.Builder
	RenderBars(&buf, bars)
	out := buf.String()
	if !strings.Contains(out, "legend") || !strings.Contains(out, "█") {
		t.Fatalf("render output incomplete:\n%s", out)
	}
	// The 100% bar must draw exactly barWidth fill runes.
	lines := strings.Split(out, "\n")
	fills := 0
	for _, r := range lines[1] {
		switch r {
		case '█', '▒', '▓', '░':
			fills++
		}
	}
	if fills != barWidth {
		t.Fatalf("100%% bar drew %d fill runes, want %d", fills, barWidth)
	}
	// A >100% bar must not overflow the canvas.
	for _, r := range lines {
		if len([]rune(r)) > 130 {
			t.Fatalf("line too wide: %q", r)
		}
	}
}

func TestExtScaling(t *testing.T) {
	var buf strings.Builder
	opt := quickOpts(&buf)
	rows, err := ExtScalingData(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(ExtScalingProcs) {
		t.Fatalf("got %d rows", len(rows))
	}
	// Speedup baselines are 1.0 and scaling is monotone nondecreasing in
	// machine size for this near-neighbour code at test scale.
	for i, r := range rows {
		if r.Procs == ExtScalingProcs[0] && (r.Speedup < 0.999 || r.Speedup > 1.001) {
			t.Errorf("row %d: baseline speedup %.3f != 1", i, r.Speedup)
		}
		if r.ExecTime <= 0 {
			t.Errorf("row %d: empty run", i)
		}
	}
	// The clustered machine must be faster in absolute terms at the
	// largest size (the paper's "pushes out the number of processors").
	var un, cl core.Clock
	for _, r := range rows {
		if r.Procs == 64 {
			if r.ClusterSize == 1 {
				un = r.ExecTime
			} else {
				cl = r.ExecTime
			}
		}
	}
	if cl >= un {
		t.Errorf("4-way at 64p (%d) not faster than unclustered (%d)", cl, un)
	}
	if err := ExtScaling(opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Extension C") {
		t.Error("print output missing")
	}
}

func TestWriteBarsCSV(t *testing.T) {
	bars := []Bar{{App: "x", ClusterSize: 2, CacheKB: 4,
		NormalizedBar: core.NormalizedBar{Total: 88.5, CPU: 40, Load: 30, Merge: 10, Sync: 8.5}}}
	var buf strings.Builder
	if err := WriteBarsCSV(&buf, bars); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := "app,cache_kb,cluster,total,cpu,load,merge,sync\nx,4,2,88.50,40.00,30.00,10.00,8.50\n"
	if out != want {
		t.Fatalf("csv = %q, want %q", out, want)
	}
}
