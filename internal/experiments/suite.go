// Package experiments regenerates every table and figure of the paper's
// evaluation: the infinite-cache clustering study (Figure 2), the small
// Ocean problem (Figure 3), the finite-capacity studies (Figures 4-8),
// the configuration tables (1, 2), the measured working sets (Table 3),
// the shared-cache cost model (Tables 4, 5) and the clustering-with-
// costs results (Tables 6, 7).
package experiments

import (
	"fmt"
	"io"
	"os"

	"clustersim/internal/apps"
	"clustersim/internal/apps/registry"
	"clustersim/internal/core"
)

// ClusterSizes are the paper's cluster configurations.
var ClusterSizes = []int{1, 2, 4, 8}

// FiniteCachesKB are the paper's per-processor cache sizes for
// Figures 4-8; 0 denotes the infinite cache.
var FiniteCachesKB = []int{4, 16, 32, 0}

// Options configures a reproduction run.
type Options struct {
	// Procs is the machine size (the paper fixes 64).
	Procs int
	// Size selects problem scale (apps.SizeDefault or apps.SizePaper).
	Size apps.Size
	// Quantum is the engine's event-ordering slack; 0 is exact.
	Quantum int64
	// Out receives the printed tables; defaults to os.Stdout.
	Out io.Writer
	// Bars renders figures as ASCII stacked bars instead of numeric rows.
	Bars bool
	// CSV emits figure data as CSV rows for external plotting; takes
	// precedence over Bars.
	CSV bool
}

// DefaultOptions is the paper's machine at the scaled default problem
// sizes.
func DefaultOptions() Options {
	return Options{Procs: 64, Size: apps.SizeDefault}
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return os.Stdout
	}
	return o.Out
}

func (o Options) config(clusterSize, cacheKB int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Procs = o.Procs
	cfg.ClusterSize = clusterSize
	cfg.CacheKBPerProc = cacheKB
	cfg.Quantum = o.Quantum
	return cfg
}

type runKey struct {
	app         string
	clusterSize int
	cacheKB     int
}

// Suite memoizes simulation runs so tables that share configurations
// (e.g. Figure 4 and Table 6) simulate each point once.
type Suite struct {
	Opt  Options
	runs map[runKey]*core.Result
}

// NewSuite creates a suite with the given options.
func NewSuite(opt Options) *Suite {
	return &Suite{Opt: opt, runs: make(map[runKey]*core.Result)}
}

// Run simulates one (application, cluster size, cache size) point,
// memoized.
func (s *Suite) Run(app string, clusterSize, cacheKB int) (*core.Result, error) {
	key := runKey{app, clusterSize, cacheKB}
	if r, ok := s.runs[key]; ok {
		return r, nil
	}
	w, err := registry.Lookup(app)
	if err != nil {
		return nil, err
	}
	res, err := w.Run(s.Opt.config(clusterSize, cacheKB), s.Opt.Size)
	if err != nil {
		return nil, fmt.Errorf("%s cluster=%d cache=%dKB: %w", app, clusterSize, cacheKB, err)
	}
	s.runs[key] = res
	return res, nil
}

// Bar is one stacked bar of a paper figure.
type Bar struct {
	App         string
	ClusterSize int
	CacheKB     int // 0 = infinite
	core.NormalizedBar
}

// barsFor produces the bars of one application at one cache size,
// normalized to the 1-processor-per-cluster configuration.
func (s *Suite) barsFor(app string, cacheKB int) ([]Bar, error) {
	base, err := s.Run(app, 1, cacheKB)
	if err != nil {
		return nil, err
	}
	var out []Bar
	for _, cs := range ClusterSizes {
		res, err := s.Run(app, cs, cacheKB)
		if err != nil {
			return nil, err
		}
		out = append(out, Bar{App: app, ClusterSize: cs, CacheKB: cacheKB,
			NormalizedBar: res.Normalize(base)})
	}
	return out, nil
}

func cacheName(kb int) string {
	if kb == 0 {
		return "inf"
	}
	return fmt.Sprintf("%dk", kb)
}

func (o Options) printBars(w io.Writer, bars []Bar) {
	if o.CSV {
		if err := WriteBarsCSV(w, bars); err != nil {
			fmt.Fprintln(w, "csv error:", err)
		}
		return
	}
	if o.Bars {
		RenderBars(w, bars)
		return
	}
	printBars(w, bars)
}

func printBars(w io.Writer, bars []Bar) {
	fmt.Fprintf(w, "%-10s %-6s %-6s %8s %8s %8s %8s %8s\n",
		"app", "cache", "clus", "total", "cpu", "load", "merge", "sync")
	for _, b := range bars {
		fmt.Fprintf(w, "%-10s %-6s %-6s %8.1f %8.1f %8.1f %8.1f %8.1f\n",
			b.App, cacheName(b.CacheKB), fmt.Sprintf("%dp", b.ClusterSize),
			b.Total, b.CPU, b.Load, b.Merge, b.Sync)
	}
}
