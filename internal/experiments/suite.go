// Package experiments regenerates every table and figure of the paper's
// evaluation: the infinite-cache clustering study (Figure 2), the small
// Ocean problem (Figure 3), the finite-capacity studies (Figures 4-8),
// the configuration tables (1, 2), the measured working sets (Table 3),
// the shared-cache cost model (Tables 4, 5) and the clustering-with-
// costs results (Tables 6, 7).
package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"clustersim/internal/apps"
	"clustersim/internal/apps/registry"
	"clustersim/internal/core"
	"clustersim/internal/critpath"
	"clustersim/internal/fault"
	"clustersim/internal/obs"
	"clustersim/internal/profile"
	"clustersim/internal/telemetry"
)

// ClusterSizes are the paper's cluster configurations.
var ClusterSizes = []int{1, 2, 4, 8}

// FiniteCachesKB are the paper's per-processor cache sizes for
// Figures 4-8; 0 denotes the infinite cache.
var FiniteCachesKB = []int{4, 16, 32, 0}

// Options configures a reproduction run.
type Options struct {
	// Procs is the machine size (the paper fixes 64).
	Procs int
	// Size selects problem scale (apps.SizeDefault or apps.SizePaper).
	Size apps.Size
	// Quantum is the engine's event-ordering slack; 0 is exact.
	Quantum int64
	// Sanitize attaches the runtime sanitizer to every run: per-
	// transaction directory/cache cross-validation and virtual-time
	// monotonicity checks, fatal on violation. Requires Quantum 0.
	Sanitize bool
	// Out receives the printed tables; defaults to os.Stdout.
	Out io.Writer
	// Bars renders figures as ASCII stacked bars instead of numeric rows.
	Bars bool
	// CSV emits figure data as CSV rows for external plotting; takes
	// precedence over Bars.
	CSV bool

	// Progress, when non-nil, receives one line per completed
	// simulation point (typically os.Stderr).
	Progress io.Writer
	// SampleEvery, when positive, attaches a telemetry collector to
	// every run and samples per-cluster counter deltas on that
	// simulated-cycle grid.
	SampleEvery int64
	// TraceDir, when set, writes one Chrome trace-event JSON file per
	// simulated point into the directory (created if missing).
	TraceDir string
	// ProfileDir, when set, attaches a sharing profiler to every run and
	// writes one profile JSON per simulated point into the directory
	// (created if missing). ProfileTop bounds the hot-line ranking
	// (default 10).
	ProfileDir string
	ProfileTop int
	// CritpathDir, when set, attaches the critical-path analyzer to
	// every run and writes one critpath JSON per simulated point into
	// the directory (created if missing).
	CritpathDir string
	// ManifestOut, when non-nil, receives one compact JSON run manifest
	// per simulated point, one per line (JSONL).
	ManifestOut io.Writer

	// Faults, when non-nil, attaches the deterministic fault plan to
	// every simulated point (see the fault package). The plan is part of
	// each point's config hash, so faulted and fault-free results never
	// share a journal entry.
	Faults *fault.Config

	// Journal, when non-nil, records every finished point as one JSON
	// file and replays journalled points instead of re-simulating them,
	// making an interrupted suite resumable with byte-identical tables.
	Journal *Journal

	// Stop, when non-nil, is polled before each fresh simulation; when
	// it reports true the suite returns ErrInterrupted with all finished
	// work flushed (see SignalStop).
	Stop func() bool

	// StopAfter, when positive, interrupts the suite after that many
	// freshly simulated (not replayed) points — a deterministic stand-in
	// for an operator interrupt, used by the resume smoke test.
	StopAfter int

	// PointTimeout, when positive, arms a wall-clock watchdog around
	// each simulated point: a point that wedges past the timeout is
	// journalled as failed and the process exits with ExitWatchdog
	// instead of hanging the suite forever.
	PointTimeout time.Duration

	// RetryFailed re-runs points the journal has recorded as failed;
	// by default a journalled failure is reported without re-running.
	RetryFailed bool

	// Obs, when non-nil, receives the live-observability hooks: per-point
	// state transitions for /status, sweep-level metrics, and structured
	// run events. The sweep is strictly wall-clock-side — it never feeds
	// simulated state or the config hash (pinned by TestObsReadOnly).
	Obs *obs.Sweep
}

// DefaultOptions is the paper's machine at the scaled default problem
// sizes.
func DefaultOptions() Options {
	return Options{Procs: 64, Size: apps.SizeDefault}
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return os.Stdout
	}
	return o.Out
}

func (o Options) config(clusterSize, cacheKB int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Procs = o.Procs
	cfg.ClusterSize = clusterSize
	cfg.CacheKBPerProc = cacheKB
	cfg.Quantum = o.Quantum
	cfg.Sanitize = o.Sanitize
	cfg.Faults = o.Faults
	return cfg
}

type runKey struct {
	app         string
	clusterSize int
	cacheKB     int
}

// Suite memoizes simulation runs so tables that share configurations
// (e.g. Figure 4 and Table 6) simulate each point once.
type Suite struct {
	Opt      Options
	runs     map[runKey]*core.Result
	fresh    int // points actually simulated (not replayed), for StopAfter
	replayed int // points served from the journal
}

// Fresh is how many points this suite actually simulated.
func (s *Suite) Fresh() int { return s.fresh }

// Replayed is how many points this suite served from the journal.
func (s *Suite) Replayed() int { return s.replayed }

// pointName is a point's stable identity across the observability
// plane: events, /status rows, and artifact file stems all share it.
func (k runKey) pointName() string {
	return fmt.Sprintf("%s-c%d-%s", k.app, k.clusterSize, cacheName(k.cacheKB))
}

// NewSuite creates a suite with the given options.
func NewSuite(opt Options) *Suite {
	return &Suite{Opt: opt, runs: make(map[runKey]*core.Result)}
}

// Run simulates one (application, cluster size, cache size) point,
// memoized. With a Journal attached, a previously journalled point is
// replayed instead of re-simulated and a fresh one is journalled; the
// point executes under panic isolation (a panic becomes a per-point
// failure record and error, not a suite crash) and, with PointTimeout,
// a wall-clock watchdog.
func (s *Suite) Run(app string, clusterSize, cacheKB int) (*core.Result, error) {
	key := runKey{app, clusterSize, cacheKB}
	if r, ok := s.runs[key]; ok {
		return r, nil
	}
	w, err := registry.Lookup(app)
	if err != nil {
		return nil, err
	}
	cfg := s.Opt.config(clusterSize, cacheKB)
	sizeName := s.Opt.Size.String()
	var hash string
	if s.Opt.Journal != nil || s.Opt.PointTimeout > 0 {
		if hash, err = telemetry.HashConfig(cfg); err != nil {
			return nil, err
		}
	}
	if s.Opt.Journal != nil {
		res, ok, err := s.Opt.Journal.Load(app, sizeName, clusterSize, cacheKB, hash)
		if err != nil {
			return nil, err
		}
		if ok {
			if s.Opt.Progress != nil {
				fmt.Fprintf(s.Opt.Progress, "replayed %s cluster=%d cache=%s from journal: exec %d cycles\n",
					app, clusterSize, cacheName(cacheKB), res.ExecTime)
			}
			s.replayed++
			s.Opt.Obs.PointReplayed(key.pointName(), app, clusterSize, cacheName(cacheKB), int64(res.ExecTime))
			s.runs[key] = res
			return res, nil
		}
		s.Opt.Obs.JournalMiss()
		if !s.Opt.RetryFailed {
			if fr, ok, err := s.Opt.Journal.LoadFailure(app, sizeName, clusterSize, cacheKB, hash); err != nil {
				return nil, err
			} else if ok {
				s.Opt.Obs.PointFailed(key.pointName(), app, clusterSize, cacheName(cacheKB),
					"journalled as failed: "+fr.Error)
				return nil, fmt.Errorf("%s cluster=%d cache=%s: journalled as failed (re-run with -retry-failed to attempt again): %s",
					app, clusterSize, cacheName(cacheKB), fr.Error)
			}
		}
	}
	if s.Opt.Stop != nil && s.Opt.Stop() {
		return nil, ErrInterrupted
	}
	if s.Opt.StopAfter > 0 && s.fresh >= s.Opt.StopAfter {
		return nil, ErrInterrupted
	}
	var col *telemetry.Collector
	if s.Opt.observing() {
		col = telemetry.New()
		cfg.Telemetry = col
		cfg.SampleEvery = s.Opt.SampleEvery
	}
	var prof *profile.Collector
	if s.Opt.ProfileDir != "" {
		prof = profile.New()
		cfg.Profile = prof
	}
	var crit *critpath.Analyzer
	if s.Opt.CritpathDir != "" {
		crit = critpath.New()
		cfg.Critpath = crit
	}
	if s.Opt.PointTimeout > 0 {
		timer := s.armWatchdog(key, sizeName, hash)
		defer timer.Stop()
	}
	s.Opt.Obs.PointStarted(key.pointName(), app, clusterSize, cacheName(cacheKB))
	// Wall timing here feeds the progress line and run manifest only,
	// never simulated state.
	start := time.Now() //simlint:allow wallclock
	res, err := runPoint(w, cfg, s.Opt.Size)
	if err != nil {
		s.Opt.Obs.PointFailed(key.pointName(), app, clusterSize, cacheName(cacheKB), err.Error())
		pointErr := fmt.Errorf("%s cluster=%d cache=%s: %w", app, clusterSize, cacheName(cacheKB), err)
		if s.Opt.Journal != nil {
			if jerr := s.Opt.Journal.StoreFailure(FailureRecord{
				App: app, Size: sizeName, ClusterSize: clusterSize, CacheKB: cacheKB,
				ConfigHash: hash, Error: err.Error(),
			}); jerr != nil {
				return nil, fmt.Errorf("%w (and journalling the failure failed: %v)", pointErr, jerr)
			}
		}
		return nil, pointErr
	}
	s.fresh++
	wall := time.Since(start) //simlint:allow wallclock
	s.Opt.Obs.PointDone(key.pointName(), wall, int64(res.ExecTime))
	if err := s.export(key, cfg, col, prof, crit, res, wall); err != nil {
		return nil, err
	}
	if s.Opt.Journal != nil {
		if err := s.Opt.Journal.Store(PointRecord{
			App: app, Size: sizeName, ClusterSize: clusterSize, CacheKB: cacheKB,
			ConfigHash: hash, Result: res,
		}); err != nil {
			return nil, err
		}
	}
	s.runs[key] = res
	return res, nil
}

// runPoint executes one workload under panic isolation: a panic that
// escapes the engine (application setup or verification code running
// outside Scheduler.Run) is converted to an error carrying the
// workload's coordinates instead of killing the whole suite. Engine-
// internal panics are already annotated and converted by the scheduler.
func runPoint(w apps.Runner, cfg core.Config, size apps.Size) (res *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("point panicked outside the engine: %v", r)
		}
	}()
	return w.Run(cfg, size)
}

// armWatchdog starts the per-point wall-clock watchdog: if the point is
// still running when the timer fires, the point is journalled as failed
// (so a resume skips it) and the process exits with ExitWatchdog. The
// failure record is fully precomputed here — the callback runs on a
// runtime timer goroutine and must not touch suite state.
func (s *Suite) armWatchdog(key runKey, sizeName, hash string) *time.Timer {
	j := s.Opt.Journal
	sweep := s.Opt.Obs
	timeout := s.Opt.PointTimeout
	rec := FailureRecord{
		App: key.app, Size: sizeName, ClusterSize: key.clusterSize, CacheKB: key.cacheKB,
		ConfigHash: hash,
		Error:      fmt.Sprintf("watchdog: point exceeded the %v wall-clock budget", timeout),
	}
	// Harness-level wall clock: the watchdog guards the real process
	// against a wedged point and never feeds simulated state.
	return time.AfterFunc(timeout, func() { //simlint:allow wallclock
		fmt.Fprintf(os.Stderr, "experiments: watchdog: %s cluster=%d cache=%s still running after %v; aborting\n",
			key.app, key.clusterSize, cacheName(key.cacheKB), timeout)
		// Last event of the log: the timer goroutine owns no suite state,
		// and the sweep's hooks are safe from any goroutine.
		sweep.PointTimeout(key.pointName(), timeout)
		if j != nil {
			if err := j.StoreFailure(rec); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: watchdog:", err)
			} else {
				fmt.Fprintf(os.Stderr, "experiments: point journalled as failed; resume from -state %s\n", j.Dir())
			}
		}
		os.Exit(ExitWatchdog)
	})
}

// observing reports whether runs need a telemetry collector attached.
func (o Options) observing() bool {
	return o.SampleEvery > 0 || o.TraceDir != "" || o.ManifestOut != nil
}

// export emits the per-point observability artifacts: a progress line,
// a Chrome trace file, a sharing-profile JSON, a critical-path JSON,
// and a manifest JSONL row.
func (s *Suite) export(key runKey, cfg core.Config, col *telemetry.Collector,
	prof *profile.Collector, crit *critpath.Analyzer, res *core.Result, wall time.Duration) error {
	if s.Opt.Progress != nil {
		fmt.Fprintf(s.Opt.Progress, "ran %s cluster=%d cache=%s: exec %d cycles (wall %v)\n",
			key.app, key.clusterSize, cacheName(key.cacheKB), res.ExecTime, wall.Round(time.Millisecond))
	}
	var profReport *profile.Report
	if prof != nil {
		top := s.Opt.ProfileTop
		if top <= 0 {
			top = 10
		}
		profReport = prof.Report(top)
		profReport.App, profReport.Size = key.app, s.Opt.Size.String()
		if h, err := telemetry.HashConfig(cfg); err == nil {
			profReport.ConfigHash = h
		}
		if err := os.MkdirAll(s.Opt.ProfileDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(s.Opt.ProfileDir,
			fmt.Sprintf("%s-c%d-%s.profile.json", key.app, key.clusterSize, cacheName(key.cacheKB)))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = profile.WriteReport(f, profReport)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	var critReport *critpath.Report
	if crit != nil {
		critReport = crit.Report(0)
		critReport.App, critReport.Size = key.app, s.Opt.Size.String()
		if h, err := telemetry.HashConfig(cfg); err == nil {
			critReport.ConfigHash = h
		}
		path := filepath.Join(s.Opt.CritpathDir,
			fmt.Sprintf("%s-c%d-%s.critpath.json", key.app, key.clusterSize, cacheName(key.cacheKB)))
		if err := os.MkdirAll(s.Opt.CritpathDir, 0o755); err != nil {
			return err
		}
		if err := telemetry.AtomicFile(path, func(w io.Writer) error {
			return critpath.WriteReport(w, critReport)
		}); err != nil {
			return err
		}
	}
	if col == nil {
		return nil
	}
	if s.Opt.TraceDir != "" {
		if err := os.MkdirAll(s.Opt.TraceDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(s.Opt.TraceDir,
			fmt.Sprintf("%s-c%d-%s.trace.json", key.app, key.clusterSize, cacheName(key.cacheKB)))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		hash, err := telemetry.HashConfig(cfg)
		if err != nil {
			f.Close()
			return err
		}
		err = telemetry.WriteChromeTrace(f, col, map[string]string{
			"app": key.app, "size": s.Opt.Size.String(), "configHash": hash,
		})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if s.Opt.ManifestOut != nil {
		// Compact (one line) so the stream is JSONL.
		var b bytes.Buffer
		m := telemetry.Manifest{
			App:       key.app,
			Size:      s.Opt.Size.String(),
			Config:    cfg,
			Result:    res,
			Memory:    res.MemoryReport(),
			Telemetry: col.SelfReport(),
		}
		if profReport != nil {
			m.Profile = profReport.Summary()
		}
		if critReport != nil {
			m.Critpath = critReport.Summary()
		}
		if err := telemetry.WriteManifest(&b, m); err != nil {
			return err
		}
		var compact bytes.Buffer
		if err := json.Compact(&compact, b.Bytes()); err != nil {
			return err
		}
		compact.WriteByte('\n')
		if _, err := s.Opt.ManifestOut.Write(compact.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// Bar is one stacked bar of a paper figure.
type Bar struct {
	App         string
	ClusterSize int
	CacheKB     int // 0 = infinite
	core.NormalizedBar
}

// barsFor produces the bars of one application at one cache size,
// normalized to the 1-processor-per-cluster configuration.
func (s *Suite) barsFor(app string, cacheKB int) ([]Bar, error) {
	base, err := s.Run(app, 1, cacheKB)
	if err != nil {
		return nil, err
	}
	var out []Bar
	for _, cs := range ClusterSizes {
		res, err := s.Run(app, cs, cacheKB)
		if err != nil {
			return nil, err
		}
		out = append(out, Bar{App: app, ClusterSize: cs, CacheKB: cacheKB,
			NormalizedBar: res.Normalize(base)})
	}
	return out, nil
}

func cacheName(kb int) string {
	if kb == 0 {
		return "inf"
	}
	return fmt.Sprintf("%dk", kb)
}

func (o Options) printBars(w io.Writer, bars []Bar) {
	if o.CSV {
		if err := WriteBarsCSV(w, bars); err != nil {
			fmt.Fprintln(w, "csv error:", err)
		}
		return
	}
	if o.Bars {
		RenderBars(w, bars)
		return
	}
	printBars(w, bars)
}

func printBars(w io.Writer, bars []Bar) {
	fmt.Fprintf(w, "%-10s %-6s %-6s %8s %8s %8s %8s %8s\n",
		"app", "cache", "clus", "total", "cpu", "load", "merge", "sync")
	for _, b := range bars {
		fmt.Fprintf(w, "%-10s %-6s %-6s %8.1f %8.1f %8.1f %8.1f %8.1f\n",
			b.App, cacheName(b.CacheKB), fmt.Sprintf("%dp", b.ClusterSize),
			b.Total, b.CPU, b.Load, b.Merge, b.Sync)
	}
}
