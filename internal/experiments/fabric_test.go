package experiments

import (
	"bytes"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clustersim/internal/apps"
	"clustersim/internal/core"
	"clustersim/internal/fabric"
	"clustersim/internal/obs"
)

func fabricOpt() Options {
	return Options{Procs: 8, Size: apps.SizeTest, Out: io.Discard}
}

// TestPlanPointsMatchesSuiteDemand pins that PlanPoints enumerates
// exactly the points the memoizing suite simulates on demand: plan
// table7, run table7 locally, and require the journal to replay every
// point of a second render with zero fresh simulations.
func TestPlanPointsMatchesSuiteDemand(t *testing.T) {
	opt := fabricOpt()
	specs, err := PlanPoints([]string{"table7"}, opt)
	if err != nil {
		t.Fatalf("PlanPoints: %v", err)
	}
	// table7: ocean and lu at (1,inf) plus every cluster size — the
	// base point is part of the sweep, so 2 apps × 4 sizes.
	if len(specs) != 2*len(ClusterSizes) {
		t.Fatalf("planned %d points, want %d", len(specs), 2*len(ClusterSizes))
	}

	// Execute the plan via the runner (as a worker would), into a journal.
	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	run := FabricRunner(j, 0, nil)
	for _, spec := range specs {
		if _, resumed, err := run(spec); err != nil || resumed {
			t.Fatalf("run %s: resumed=%v err=%v", spec.Name(), resumed, err)
		}
	}

	// The rendering pass must find every point already journalled.
	opt.Journal = j
	s := NewSuite(opt)
	if err := s.PrintTable7(); err != nil {
		t.Fatalf("PrintTable7: %v", err)
	}
	if s.Fresh() != 0 {
		t.Fatalf("rendering simulated %d fresh points; the plan missed them", s.Fresh())
	}
	if s.Replayed() != len(specs) {
		t.Fatalf("replayed %d points, want %d", s.Replayed(), len(specs))
	}
}

// TestPlanPointsDedupsAcrossExperiments pins de-duplication: table5 and
// table7 share the unclustered infinite-cache points.
func TestPlanPointsDedupsAcrossExperiments(t *testing.T) {
	opt := fabricOpt()
	t7, err := PlanPoints([]string{"table7"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	both, err := PlanPoints([]string{"table7", "table7"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(both) != len(t7) {
		t.Fatalf("repeating an experiment added points: %d vs %d", len(both), len(t7))
	}
	seen := map[string]bool{}
	for _, s := range t7 {
		if seen[s.Key()] {
			t.Fatalf("duplicate spec %s", s.Key())
		}
		seen[s.Key()] = true
	}
}

// TestFabricRunnerRejectsHashMismatch pins the fleet-skew guard: a spec
// whose config hash does not match what this binary derives is refused.
func TestFabricRunnerRejectsHashMismatch(t *testing.T) {
	opt := fabricOpt()
	specs, err := PlanPoints([]string{"table7"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	spec := specs[0]
	spec.ConfigHash = "0000deadbeef"
	if _, _, err := FabricRunner(nil, 0, nil)(spec); err == nil {
		t.Fatal("a hash-mismatched spec must be refused")
	}
}

// TestDistributedSweepByteIdentical is the keystone proof: a table-7
// sweep distributed over the simulated network — under message chaos,
// with a worker crash mid-sweep and a journal-backed restart — renders
// byte-for-byte the same table as a plain local run, with the rendering
// pass replaying every point from the coordinator's journal.
func TestDistributedSweepByteIdentical(t *testing.T) {
	// Golden: the plain local suite.
	var local bytes.Buffer
	lopt := fabricOpt()
	lopt.Out = &local
	if err := NewSuite(lopt).PrintTable7(); err != nil {
		t.Fatalf("local render: %v", err)
	}

	// Distributed: coordinator journal + two workers on a chaotic simnet.
	opt := fabricOpt()
	coordJournal, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	specs, err := PlanPoints([]string{"table7"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	net, err := fabric.NewNet(fabric.ChaosPlan{
		Seed: 7, DropPerMille: 60, DupPerMille: 150, DelayPerMille: 250,
		DelayMax: 3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	evlog := obs.NewLog(nil, "keystone")
	onResult, onFailure := CoordinatorSinks(coordJournal)
	coord := fabric.NewCoordinator(fabric.CoordinatorConfig{
		DeadAfter:    250 * time.Millisecond,
		LeaseTimeout: 2 * time.Second,
		BackoffBase:  10 * time.Millisecond,
		Steal:        true,
		LocalGrace:   time.Hour, // the fleet must do the work in this test
		OnResult:     onResult,
		OnFailure:    onFailure,
		Obs:          fabric.NewObs(nil, evlog),
	})
	go coord.Serve(net.Listener()) //simlint:allow goroutine — test harness

	// Worker 1 crashes right after its second completion lands in its
	// local journal; its restart must resume from that journal.
	w1Journal, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var w1Done int32
	crashOnce := sync.Once{}
	crashed := make(chan struct{})
	w1Inner := FabricRunner(w1Journal, 0, nil)
	startW1 := func() {
		conn, err := net.Dial("w1")
		if err != nil {
			t.Fatalf("dial w1: %v", err)
		}
		w := fabric.NewWorker(fabric.WorkerConfig{
			ID: "w1", Heartbeat: 30 * time.Millisecond,
			Run: func(spec fabric.PointSpec) (*core.Result, bool, error) {
				res, resumed, err := w1Inner(spec)
				if err == nil && !resumed && atomic.AddInt32(&w1Done, 1) == 2 {
					crashOnce.Do(func() {
						net.Crash("w1")
						close(crashed)
					})
				}
				return res, resumed, err
			},
		})
		go w.RunConn(conn) //simlint:allow goroutine — test harness
	}

	w2Journal, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	startW2 := func() {
		conn, err := net.Dial("w2")
		if err != nil {
			t.Fatalf("dial w2: %v", err)
		}
		w := fabric.NewWorker(fabric.WorkerConfig{
			ID: "w2", Heartbeat: 30 * time.Millisecond,
			Run: FabricRunner(w2Journal, 0, nil),
		})
		go w.RunConn(conn) //simlint:allow goroutine — test harness
	}

	startW1()
	startW2()
	// Restart w1 after its scripted crash.
	go func() { //simlint:allow goroutine — test harness
		<-crashed
		time.Sleep(50 * time.Millisecond) //simlint:allow wallclock — restart delay
		conn, err := net.Dial("w1")
		if err != nil {
			return
		}
		w := fabric.NewWorker(fabric.WorkerConfig{
			ID: "w1", Heartbeat: 30 * time.Millisecond, Run: w1Inner,
		})
		go w.RunConn(conn) //simlint:allow goroutine — test harness
	}()

	if _, err := coord.Run(specs); err != nil {
		t.Fatalf("distributed sweep: %v", err)
	}

	// Render from the coordinator's journal: zero fresh simulations,
	// byte-identical table.
	var dist bytes.Buffer
	ropt := fabricOpt()
	ropt.Out = &dist
	ropt.Journal = coordJournal
	s := NewSuite(ropt)
	if err := s.PrintTable7(); err != nil {
		t.Fatalf("distributed render: %v", err)
	}
	if s.Fresh() != 0 {
		t.Errorf("rendering simulated %d fresh points; the fleet should have delivered all of them", s.Fresh())
	}
	if !bytes.Equal(local.Bytes(), dist.Bytes()) {
		t.Errorf("distributed table differs from local run:\n--- local ---\n%s\n--- distributed ---\n%s",
			local.String(), dist.String())
	}

	// The chaos left footprints: the crash was noticed and recovered.
	kinds := map[string]int{}
	for _, e := range evlog.Recent() {
		kinds[e.Kind]++
	}
	if kinds[fabric.EventWorkerDead] == 0 {
		t.Errorf("no %s event despite the scripted crash; kinds = %v", fabric.EventWorkerDead, kinds)
	}
	if kinds[fabric.EventResult] != len(specs) {
		t.Errorf("%d first completions, want %d; kinds = %v", kinds[fabric.EventResult], len(specs), kinds)
	}
}
