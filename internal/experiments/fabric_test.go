package experiments

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clustersim/internal/apps"
	"clustersim/internal/core"
	"clustersim/internal/fabric"
	"clustersim/internal/obs"
	"clustersim/internal/obs/fleet"
)

func fabricOpt() Options {
	return Options{Procs: 8, Size: apps.SizeTest, Out: io.Discard}
}

// TestPlanPointsMatchesSuiteDemand pins that PlanPoints enumerates
// exactly the points the memoizing suite simulates on demand: plan
// table7, run table7 locally, and require the journal to replay every
// point of a second render with zero fresh simulations.
func TestPlanPointsMatchesSuiteDemand(t *testing.T) {
	opt := fabricOpt()
	specs, err := PlanPoints([]string{"table7"}, opt)
	if err != nil {
		t.Fatalf("PlanPoints: %v", err)
	}
	// table7: ocean and lu at (1,inf) plus every cluster size — the
	// base point is part of the sweep, so 2 apps × 4 sizes.
	if len(specs) != 2*len(ClusterSizes) {
		t.Fatalf("planned %d points, want %d", len(specs), 2*len(ClusterSizes))
	}

	// Execute the plan via the runner (as a worker would), into a journal.
	j, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	run := FabricRunner(j, 0, nil, nil)
	for _, spec := range specs {
		if _, resumed, err := run(spec); err != nil || resumed {
			t.Fatalf("run %s: resumed=%v err=%v", spec.Name(), resumed, err)
		}
	}

	// The rendering pass must find every point already journalled.
	opt.Journal = j
	s := NewSuite(opt)
	if err := s.PrintTable7(); err != nil {
		t.Fatalf("PrintTable7: %v", err)
	}
	if s.Fresh() != 0 {
		t.Fatalf("rendering simulated %d fresh points; the plan missed them", s.Fresh())
	}
	if s.Replayed() != len(specs) {
		t.Fatalf("replayed %d points, want %d", s.Replayed(), len(specs))
	}
}

// TestPlanPointsDedupsAcrossExperiments pins de-duplication: table5 and
// table7 share the unclustered infinite-cache points.
func TestPlanPointsDedupsAcrossExperiments(t *testing.T) {
	opt := fabricOpt()
	t7, err := PlanPoints([]string{"table7"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	both, err := PlanPoints([]string{"table7", "table7"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(both) != len(t7) {
		t.Fatalf("repeating an experiment added points: %d vs %d", len(both), len(t7))
	}
	seen := map[string]bool{}
	for _, s := range t7 {
		if seen[s.Key()] {
			t.Fatalf("duplicate spec %s", s.Key())
		}
		seen[s.Key()] = true
	}
}

// TestFabricRunnerRejectsHashMismatch pins the fleet-skew guard: a spec
// whose config hash does not match what this binary derives is refused.
func TestFabricRunnerRejectsHashMismatch(t *testing.T) {
	opt := fabricOpt()
	specs, err := PlanPoints([]string{"table7"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	spec := specs[0]
	spec.ConfigHash = "0000deadbeef"
	if _, _, err := FabricRunner(nil, 0, nil, nil)(spec); err == nil {
		t.Fatal("a hash-mismatched spec must be refused")
	}
}

// TestDistributedSweepByteIdentical is the keystone proof: a table-7
// sweep distributed over the simulated network — under message chaos,
// with a worker crash mid-sweep and a journal-backed restart — renders
// byte-for-byte the same table as a plain local run, with the rendering
// pass replaying every point from the coordinator's journal.
func TestDistributedSweepByteIdentical(t *testing.T) {
	// Golden: the plain local suite.
	var local bytes.Buffer
	lopt := fabricOpt()
	lopt.Out = &local
	if err := NewSuite(lopt).PrintTable7(); err != nil {
		t.Fatalf("local render: %v", err)
	}

	// Distributed: coordinator journal + two workers on a chaotic simnet.
	opt := fabricOpt()
	coordJournal, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	specs, err := PlanPoints([]string{"table7"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	net, err := fabric.NewNet(fabric.ChaosPlan{
		Seed: 7, DropPerMille: 60, DupPerMille: 150, DelayPerMille: 250,
		DelayMax: 3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	evlog := obs.NewLog(nil, "keystone")
	onResult, onFailure := CoordinatorSinks(coordJournal)
	coord := fabric.NewCoordinator(fabric.CoordinatorConfig{
		DeadAfter:    250 * time.Millisecond,
		LeaseTimeout: 2 * time.Second,
		BackoffBase:  10 * time.Millisecond,
		Steal:        true,
		LocalGrace:   time.Hour, // the fleet must do the work in this test
		OnResult:     onResult,
		OnFailure:    onFailure,
		Obs:          fabric.NewObs(nil, evlog),
	})
	go coord.Serve(net.Listener()) //simlint:allow goroutine — test harness

	// Worker 1 crashes right after its second completion lands in its
	// local journal; its restart must resume from that journal.
	w1Journal, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var w1Done int32
	crashOnce := sync.Once{}
	crashed := make(chan struct{})
	w1Inner := FabricRunner(w1Journal, 0, nil, nil)
	startW1 := func() {
		conn, err := net.Dial("w1")
		if err != nil {
			t.Fatalf("dial w1: %v", err)
		}
		w := fabric.NewWorker(fabric.WorkerConfig{
			ID: "w1", Heartbeat: 30 * time.Millisecond,
			Run: func(spec fabric.PointSpec) (*core.Result, bool, error) {
				res, resumed, err := w1Inner(spec)
				if err == nil && !resumed && atomic.AddInt32(&w1Done, 1) == 2 {
					crashOnce.Do(func() {
						net.Crash("w1")
						close(crashed)
					})
				}
				return res, resumed, err
			},
		})
		go w.RunConn(conn) //simlint:allow goroutine — test harness
	}

	w2Journal, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	startW2 := func() {
		conn, err := net.Dial("w2")
		if err != nil {
			t.Fatalf("dial w2: %v", err)
		}
		w := fabric.NewWorker(fabric.WorkerConfig{
			ID: "w2", Heartbeat: 30 * time.Millisecond,
			Run: FabricRunner(w2Journal, 0, nil, nil),
		})
		go w.RunConn(conn) //simlint:allow goroutine — test harness
	}

	startW1()
	startW2()
	// Restart w1 after its scripted crash.
	go func() { //simlint:allow goroutine — test harness
		<-crashed
		time.Sleep(50 * time.Millisecond) //simlint:allow wallclock — restart delay
		conn, err := net.Dial("w1")
		if err != nil {
			return
		}
		w := fabric.NewWorker(fabric.WorkerConfig{
			ID: "w1", Heartbeat: 30 * time.Millisecond, Run: w1Inner,
		})
		go w.RunConn(conn) //simlint:allow goroutine — test harness
	}()

	if _, err := coord.Run(specs); err != nil {
		t.Fatalf("distributed sweep: %v", err)
	}

	// Render from the coordinator's journal: zero fresh simulations,
	// byte-identical table.
	var dist bytes.Buffer
	ropt := fabricOpt()
	ropt.Out = &dist
	ropt.Journal = coordJournal
	s := NewSuite(ropt)
	if err := s.PrintTable7(); err != nil {
		t.Fatalf("distributed render: %v", err)
	}
	if s.Fresh() != 0 {
		t.Errorf("rendering simulated %d fresh points; the fleet should have delivered all of them", s.Fresh())
	}
	if !bytes.Equal(local.Bytes(), dist.Bytes()) {
		t.Errorf("distributed table differs from local run:\n--- local ---\n%s\n--- distributed ---\n%s",
			local.String(), dist.String())
	}

	// The chaos left footprints: the crash was noticed and recovered.
	kinds := map[string]int{}
	for _, e := range evlog.Recent() {
		kinds[e.Kind]++
	}
	if kinds[fabric.EventWorkerDead] == 0 {
		t.Errorf("no %s event despite the scripted crash; kinds = %v", fabric.EventWorkerDead, kinds)
	}
	if kinds[fabric.EventResult] != len(specs) {
		t.Errorf("%d first completions, want %d; kinds = %v", kinds[fabric.EventResult], len(specs), kinds)
	}
}

// TestFleetTimelineCompleteUnderChaos is the fleet-observability
// keystone: a chaotic distributed sweep (drop/dup/delay, a mid-sweep
// worker crash with journal-backed restart, and a network partition
// that black-holes the other worker past the liveness deadline) must
// still produce a merged fleet timeline in which every assigned point
// reaches exactly one terminal state, the /fleet totals account for
// every planned point, worker-origin spans appear in the coordinator's
// merged view with their trace IDs intact, and the rendered table is
// byte-identical to a plain local run.
func TestFleetTimelineCompleteUnderChaos(t *testing.T) {
	// Golden: the plain local suite.
	var local bytes.Buffer
	lopt := fabricOpt()
	lopt.Out = &local
	if err := NewSuite(lopt).PrintTable7(); err != nil {
		t.Fatalf("local render: %v", err)
	}

	opt := fabricOpt()
	coordJournal, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	specs, err := PlanPoints([]string{"table7"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	net, err := fabric.NewNet(fabric.ChaosPlan{
		Seed: 41, DropPerMille: 60, DupPerMille: 150, DelayPerMille: 250,
		DelayMax: 3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Coordinator-side fleet plane: the event log mirrors synchronously
	// into the view, so the merged timeline is lossless by construction.
	evlog := obs.NewLog(nil, "keystone")
	view := fleet.NewView("keystone", nil)
	evlog.SetMirror(view.Observe)
	view.SetTotal(len(specs))
	onResult, onFailure := CoordinatorSinks(coordJournal)
	coord := fabric.NewCoordinator(fabric.CoordinatorConfig{
		DeadAfter:    250 * time.Millisecond,
		LeaseTimeout: 2 * time.Second,
		BackoffBase:  10 * time.Millisecond,
		Steal:        true,
		LocalGrace:   time.Hour, // the fleet must do the work in this test
		OnResult:     onResult,
		OnFailure:    onFailure,
		Obs:          fabric.NewObs(nil, evlog),
	})
	view.SetSource(coord.FleetWorkers)
	go coord.Serve(net.Listener()) //simlint:allow goroutine — test harness

	// Each worker runs its own obs plane: a sweep feeding a local event
	// log whose mirror buffers spans for piggybacked shipment.
	workerObs := func(id string) (*obs.Sweep, *fleet.SpanBuffer) {
		wlog := obs.NewLog(nil, "worker-"+id)
		buf := fleet.NewSpanBuffer()
		wlog.SetMirror(buf.Observe)
		return obs.NewSweep("worker-"+id, nil, wlog), buf
	}

	// Worker 1 crashes right after its second fresh completion; its
	// restart resumes from its journal.
	w1Journal, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w1Sweep, w1Spans := workerObs("w1")
	w1Inner := FabricRunner(w1Journal, 0, nil, w1Sweep)
	var w1Done int32
	crashOnce := sync.Once{}
	crashed := make(chan struct{})
	startW1 := func(run fabric.Runner) {
		conn, err := net.Dial("w1")
		if err != nil {
			t.Fatalf("dial w1: %v", err)
		}
		w := fabric.NewWorker(fabric.WorkerConfig{
			ID: "w1", Heartbeat: 30 * time.Millisecond,
			Run: run, Spans: w1Spans.Drain,
		})
		go w.RunConn(conn) //simlint:allow goroutine — test harness
	}
	startW1(func(spec fabric.PointSpec) (*core.Result, bool, error) {
		res, resumed, err := w1Inner(spec)
		if err == nil && !resumed && atomic.AddInt32(&w1Done, 1) == 2 {
			crashOnce.Do(func() {
				net.Crash("w1")
				close(crashed)
			})
		}
		return res, resumed, err
	})
	go func() { //simlint:allow goroutine — test harness
		<-crashed
		time.Sleep(50 * time.Millisecond) //simlint:allow wallclock — restart delay
		startW1(w1Inner)
	}()

	// Worker 2 is partitioned (black-holed, conn nominally up) after its
	// second fresh completion, long enough for the coordinator to declare
	// it dead and requeue its leases; after the heal it redials.
	w2Journal, err := OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w2Sweep, w2Spans := workerObs("w2")
	w2Inner := FabricRunner(w2Journal, 0, nil, w2Sweep)
	var w2Done int32
	partOnce := sync.Once{}
	partitioned := make(chan struct{})
	startW2 := func(run fabric.Runner) {
		conn, err := net.Dial("w2")
		if err != nil {
			t.Fatalf("dial w2: %v", err)
		}
		w := fabric.NewWorker(fabric.WorkerConfig{
			ID: "w2", Heartbeat: 30 * time.Millisecond,
			Run: run, Spans: w2Spans.Drain,
		})
		go w.RunConn(conn) //simlint:allow goroutine — test harness
	}
	startW2(func(spec fabric.PointSpec) (*core.Result, bool, error) {
		res, resumed, err := w2Inner(spec)
		if err == nil && !resumed && atomic.AddInt32(&w2Done, 1) == 2 {
			partOnce.Do(func() {
				net.Partition("w2")
				close(partitioned)
			})
		}
		return res, resumed, err
	})
	go func() { //simlint:allow goroutine — test harness
		<-partitioned
		// Outlast DeadAfter so the silence is noticed and the leases move.
		time.Sleep(400 * time.Millisecond) //simlint:allow wallclock — partition window
		net.Heal("w2")
		startW2(w2Inner)
	}()

	if _, err := coord.Run(specs); err != nil {
		t.Fatalf("distributed sweep: %v", err)
	}

	// Tables byte-identical, zero fresh simulations on render.
	var dist bytes.Buffer
	ropt := fabricOpt()
	ropt.Out = &dist
	ropt.Journal = coordJournal
	s := NewSuite(ropt)
	if err := s.PrintTable7(); err != nil {
		t.Fatalf("distributed render: %v", err)
	}
	if s.Fresh() != 0 {
		t.Errorf("rendering simulated %d fresh points; the fleet should have delivered all of them", s.Fresh())
	}
	if !bytes.Equal(local.Bytes(), dist.Bytes()) {
		t.Errorf("distributed table differs from local run:\n--- local ---\n%s\n--- distributed ---\n%s",
			local.String(), dist.String())
	}

	// Completeness: every planned point was assigned and reached exactly
	// one terminal state, despite the crash, the partition, and the
	// message chaos.
	a := view.Audit()
	if a.Points != len(specs) || a.Assigned != len(specs) {
		t.Errorf("audit saw %d points (%d assigned), want %d", a.Points, a.Assigned, len(specs))
	}
	if len(a.Incomplete) != 0 {
		t.Errorf("points with no terminal state: %v", a.Incomplete)
	}
	if len(a.MultiResult) != 0 {
		t.Errorf("points with more than one first-completion: %v", a.MultiResult)
	}
	if a.Failed != 0 {
		t.Errorf("audit counted %d failed points, want 0", a.Failed)
	}
	if a.Done+a.Replayed != len(specs) {
		t.Errorf("done %d + replayed %d != %d planned points", a.Done, a.Replayed, len(specs))
	}

	// The /fleet doc's totals must account for every planned point.
	doc := view.Doc()
	if doc.Schema != fleet.SchemaV1 {
		t.Errorf("fleet doc schema = %q, want %s", doc.Schema, fleet.SchemaV1)
	}
	if doc.Totals.Points != len(specs) || doc.Totals.Done+doc.Totals.Replayed != len(specs) || doc.Totals.Failed != 0 {
		t.Errorf("fleet totals %+v do not account for %d planned points", doc.Totals, len(specs))
	}
	if doc.Totals.Workers < 2 {
		t.Errorf("fleet doc saw %d workers, want at least w1 and w2", doc.Totals.Workers)
	}

	// Every point's merged timeline is reachable by name and by trace ID,
	// and every traced event on it carries the point's own trace.
	for _, spec := range specs {
		name, trace := spec.Name(), fleet.TraceID(spec.Key())
		tl, ok := view.Timeline(name)
		if !ok || len(tl) == 0 {
			t.Fatalf("no merged timeline for point %s", name)
		}
		if byTrace, ok := view.Timeline(trace); !ok || len(byTrace) != len(tl) {
			t.Errorf("timeline lookup by trace %s of %s: ok=%v len=%d want %d", trace, name, ok, len(byTrace), len(tl))
		}
		for _, e := range tl {
			if e.Trace != "" && e.Trace != trace {
				t.Errorf("point %s: event %s carries foreign trace %s (want %s)", name, e.Kind, e.Trace, trace)
			}
		}
	}

	// Cross-process enrichment: worker-origin spans (Run label stamped by
	// the worker's own log) made it into the coordinator's merged view.
	workerSpans := 0
	for _, name := range view.Points() {
		tl, _ := view.Timeline(name)
		for _, e := range tl {
			if strings.HasPrefix(e.Run, "worker-") {
				workerSpans++
			}
		}
	}
	if workerSpans == 0 {
		t.Error("no worker-origin spans in the merged fleet view; piggyback shipment delivered nothing")
	}

	// Both failure injections left liveness footprints.
	kinds := map[string]int{}
	for _, e := range evlog.Recent() {
		kinds[e.Kind]++
	}
	if kinds[fabric.EventWorkerDead] < 2 {
		t.Errorf("want at least 2 %s events (crash + partition), got %d; kinds = %v",
			fabric.EventWorkerDead, kinds[fabric.EventWorkerDead], kinds)
	}
	if kinds[fabric.EventResult] != len(specs) {
		t.Errorf("%d first completions, want %d; kinds = %v", kinds[fabric.EventResult], len(specs), kinds)
	}
}
