package experiments

import (
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestSignalStopSecondSignalExitsImmediately pins the operator escape
// hatch: the first signal only flips the cooperative stop flag (and
// names the journal dir so the operator knows resuming is safe); the
// second signal terminates the process at once with ExitInterrupted.
func TestSignalStopSecondSignalExitsImmediately(t *testing.T) {
	s := NewSignalStop()
	defer s.Close()
	var msgs strings.Builder
	var mu sync.Mutex
	s.setMessageWriter(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return msgs.Write(p)
	}))
	exited := make(chan int, 1)
	s.setExit(func(code int) { exited <- code })
	s.SetJournalDir("/tmp/sweep-state")

	if s.Stopped() {
		t.Fatal("stopped before any signal")
	}
	s.deliver(syscall.SIGINT)
	waitFor(t, "stop flag", func() bool { return s.Stopped() })
	select {
	case code := <-exited:
		t.Fatalf("first signal exited (code %d); it must only request a stop", code)
	default:
	}
	waitFor(t, "first-signal message", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return strings.Contains(msgs.String(), "repeat to exit now")
	})
	mu.Lock()
	first := msgs.String()
	mu.Unlock()
	if !strings.Contains(first, "/tmp/sweep-state") {
		t.Errorf("first-signal message does not name the journal dir:\n%s", first)
	}

	s.deliver(syscall.SIGINT)
	select {
	case code := <-exited:
		if code != ExitInterrupted {
			t.Errorf("second signal exited with %d, want %d", code, ExitInterrupted)
		}
	case <-time.After(5 * time.Second): //simlint:allow wallclock — test deadline
		t.Fatal("second signal did not exit")
	}
}

// TestSignalStopHintOmittedWithoutJournal pins that the message stays
// clean when no -state dir is configured: nothing to resume from, so
// no hint.
func TestSignalStopHintOmittedWithoutJournal(t *testing.T) {
	s := NewSignalStop()
	defer s.Close()
	var msgs strings.Builder
	var mu sync.Mutex
	s.setMessageWriter(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return msgs.Write(p)
	}))
	s.setExit(func(int) {})

	s.deliver(syscall.SIGTERM)
	waitFor(t, "first-signal message", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return strings.Contains(msgs.String(), "repeat to exit now")
	})
	mu.Lock()
	defer mu.Unlock()
	if strings.Contains(msgs.String(), "-state") {
		t.Errorf("hint present without a journal dir:\n%s", msgs.String())
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second) //simlint:allow wallclock — test deadline
	for !cond() {
		if time.Now().After(deadline) { //simlint:allow wallclock — test deadline
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond) //simlint:allow wallclock — test polling
	}
}
