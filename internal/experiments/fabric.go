// Distributed-sweep glue: enumerating the suite's simulation points as
// fabric.PointSpecs and executing assigned specs on a worker. The
// division of labor with the fabric package: fabric knows leases,
// heartbeats and transports; this file knows which points each
// experiment needs and how a spec becomes a core.Config.
//
// Distribution is journal-shaped. The coordinator plans the points the
// requested experiments will ask Suite.Run for, fans them out across
// the fleet, and stores every completion in its journal; the tables
// are then rendered by the ordinary local suite, which replays every
// point. Byte-identical output to a local run follows from the same
// replay determinism that makes an interrupted suite resumable — the
// fabric adds no second rendering path to trust.

package experiments

import (
	"fmt"
	"io"
	"os"
	"time"

	"clustersim/internal/apps"
	"clustersim/internal/apps/registry"
	"clustersim/internal/core"
	"clustersim/internal/fabric"
	"clustersim/internal/obs"
	"clustersim/internal/telemetry"
)

// ParseSize maps a size name (test, default, paper) back to apps.Size —
// the inverse of Size.String, for specs arriving over the wire.
func ParseSize(name string) (apps.Size, error) {
	for _, s := range []apps.Size{apps.SizeTest, apps.SizeDefault, apps.SizePaper} {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("experiments: unknown problem size %q (want test, default or paper)", name)
}

// pointSpec builds the wire spec for one (app, clusterSize, cacheKB)
// point under opt, including the config hash the worker re-derives and
// verifies.
func pointSpec(opt Options, app string, clusterSize, cacheKB int) (fabric.PointSpec, error) {
	hash, err := telemetry.HashConfig(opt.config(clusterSize, cacheKB))
	if err != nil {
		return fabric.PointSpec{}, err
	}
	return fabric.PointSpec{
		App: app, Size: opt.Size.String(),
		ClusterSize: clusterSize, CacheKB: cacheKB,
		Procs: opt.Procs, Quantum: opt.Quantum, Sanitize: opt.Sanitize,
		Faults: opt.Faults, ConfigHash: hash,
	}, nil
}

// PlanPoints enumerates, in deterministic order and without duplicates,
// every Suite.Run point the named experiments will request — the same
// (app, clusterSize, cacheKB) triples the memoizing suite would
// simulate on demand. Experiments that run outside Suite.Run (fig3's
// small-problem Ocean, the ext-* studies, the static tables) contribute
// no points: they are computed during rendering and gain nothing from
// distribution.
func PlanPoints(names []string, opt Options) ([]fabric.PointSpec, error) {
	var specs []fabric.PointSpec
	seen := make(map[runKey]bool)
	add := func(app string, clusterSize, cacheKB int) error {
		key := runKey{app, clusterSize, cacheKB}
		if seen[key] {
			return nil
		}
		seen[key] = true
		spec, err := pointSpec(opt, app, clusterSize, cacheKB)
		if err != nil {
			return err
		}
		specs = append(specs, spec)
		return nil
	}
	addSweep := func(appNames []string, cacheKB int) error {
		for _, app := range appNames {
			for _, cs := range ClusterSizes {
				if err := add(app, cs, cacheKB); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, name := range names {
		var err error
		switch name {
		case "fig2":
			err = addSweep(Fig2Apps, 0)
		case "fig4", "fig5", "fig6", "fig7", "fig8":
			app := FiniteFigures[int(name[3]-'0')]
			for _, kb := range FiniteCachesKB {
				if err = addSweep([]string{app}, kb); err != nil {
					break
				}
			}
		case "table3":
			for _, wk := range registry.All() {
				if err = add(wk.Name, 1, 0); err != nil {
					break
				}
				for _, kb := range WorkingSetSweepKB {
					if err = add(wk.Name, 1, kb); err != nil {
						break
					}
				}
			}
		case "table5":
			for _, wk := range registry.All() {
				if err = add(wk.Name, 1, 0); err != nil {
					break
				}
			}
		case "table6":
			for _, app := range Table6Apps {
				if err = add(app, 1, 0); err != nil {
					break
				}
				if err = add(app, 1, 4); err != nil {
					break
				}
			}
			if err == nil {
				err = addSweep(Table6Apps, 4)
			}
		case "table7":
			for _, app := range Table7Apps {
				if err = add(app, 1, 0); err != nil {
					break
				}
			}
			if err == nil {
				err = addSweep(Table7Apps, 0)
			}
		default:
			// Static tables, fig3, ext-*: nothing to distribute.
		}
		if err != nil {
			return nil, err
		}
	}
	return specs, nil
}

// FilterJournalled drops specs the journal has already completed, so a
// resumed coordinator redistributes only the missing points. The
// skipped count feeds the operator summary.
func FilterJournalled(j *Journal, specs []fabric.PointSpec) (todo []fabric.PointSpec, skipped int, err error) {
	if j == nil {
		return specs, 0, nil
	}
	for _, spec := range specs {
		_, ok, err := j.Load(spec.App, spec.Size, spec.ClusterSize, spec.CacheKB, spec.ConfigHash)
		if err != nil {
			return nil, 0, err
		}
		if ok {
			skipped++
			continue
		}
		todo = append(todo, spec)
	}
	return todo, skipped, nil
}

// configFromSpec rebuilds the exact core.Config a spec describes; the
// caller verifies its hash against the coordinator's, so any divergence
// between fleet binaries (a changed default, a new config field) is
// caught before it can fork an experiment.
func configFromSpec(spec fabric.PointSpec) core.Config {
	cfg := core.DefaultConfig()
	cfg.Procs = spec.Procs
	cfg.ClusterSize = spec.ClusterSize
	cfg.CacheKBPerProc = spec.CacheKB
	cfg.Quantum = spec.Quantum
	cfg.Sanitize = spec.Sanitize
	cfg.Faults = spec.Faults
	return cfg
}

// FabricRunner builds the fabric.Runner both fleet roles execute: the
// worker's assignment handler and the coordinator's degraded-mode local
// path. It wraps the suite's own per-point machinery — journal replay
// (a restarted worker resumes instead of recomputing), runPoint's panic
// isolation, and with timeout > 0 the same journal-then-exit watchdog
// the local suite arms — so a point behaves identically however it
// reaches a machine. sw, when non-nil, receives point lifecycle hooks
// into the process-local event log (the span source a fabric worker
// ships to the coordinator's merged fleet timeline); it never touches
// results, so traced and untraced runs stay byte-identical.
func FabricRunner(j *Journal, timeout time.Duration, progress io.Writer, sw *obs.Sweep) fabric.Runner {
	return func(spec fabric.PointSpec) (*core.Result, bool, error) {
		name := spec.Name()
		cache := cacheName(spec.CacheKB)
		fail := func(err error) (*core.Result, bool, error) {
			sw.PointFailed(name, spec.App, spec.ClusterSize, cache, err.Error())
			return nil, false, err
		}
		w, err := registry.Lookup(spec.App)
		if err != nil {
			return fail(err)
		}
		size, err := ParseSize(spec.Size)
		if err != nil {
			return fail(err)
		}
		cfg := configFromSpec(spec)
		hash, err := telemetry.HashConfig(cfg)
		if err != nil {
			return fail(err)
		}
		if hash != spec.ConfigHash {
			return fail(fmt.Errorf(
				"experiments: config hash mismatch for %s: coordinator sent %s, this binary derives %s (fleet version skew — refusing to run)",
				name, spec.ConfigHash, hash))
		}
		if j != nil {
			res, ok, err := j.Load(spec.App, spec.Size, spec.ClusterSize, spec.CacheKB, hash)
			if err != nil {
				return fail(err)
			}
			if ok {
				if progress != nil {
					fmt.Fprintf(progress, "replayed %s from local journal\n", name)
				}
				sw.PointReplayed(name, spec.App, spec.ClusterSize, cache, int64(res.ExecTime))
				return res, true, nil
			}
			sw.JournalMiss()
		}
		if timeout > 0 {
			rec := FailureRecord{
				App: spec.App, Size: spec.Size, ClusterSize: spec.ClusterSize,
				CacheKB: spec.CacheKB, ConfigHash: hash,
				Error: fmt.Sprintf("watchdog: point exceeded the %v wall-clock budget", timeout),
			}
			// Same contract as the suite watchdog: journal the failure so
			// a restarted worker skips the wedged point, then kill the
			// process — the coordinator sees the dead connection and
			// requeues. Harness wall clock only.
			t := time.AfterFunc(timeout, func() { //simlint:allow wallclock
				fmt.Fprintf(os.Stderr, "experiments: watchdog: %s still running after %v; aborting worker\n",
					spec.Name(), timeout)
				sw.PointTimeout(name, timeout)
				if j != nil {
					if err := j.StoreFailure(rec); err != nil {
						fmt.Fprintln(os.Stderr, "experiments: watchdog:", err)
					}
				}
				os.Exit(ExitWatchdog)
			})
			defer t.Stop()
		}
		sw.PointStarted(name, spec.App, spec.ClusterSize, cache)
		// Harness wall clock: point cost for the sweep span and fleet ETA.
		started := time.Now() //simlint:allow wallclock
		res, err := runPoint(w, cfg, size)
		if err != nil {
			if j != nil {
				if jerr := j.StoreFailure(FailureRecord{
					App: spec.App, Size: spec.Size, ClusterSize: spec.ClusterSize,
					CacheKB: spec.CacheKB, ConfigHash: hash, Error: err.Error(),
				}); jerr != nil {
					err = fmt.Errorf("%v (and journalling the failure failed: %v)", err, jerr)
				}
			}
			return fail(err)
		}
		if j != nil {
			if err := j.Store(PointRecord{
				App: spec.App, Size: spec.Size, ClusterSize: spec.ClusterSize,
				CacheKB: spec.CacheKB, ConfigHash: hash, Result: res,
			}); err != nil {
				return fail(err)
			}
		}
		sw.PointDone(name, time.Since(started), int64(res.ExecTime)) //simlint:allow wallclock
		return res, false, nil
	}
}

// CoordinatorSinks wires a coordinator's completion callbacks to the
// sweep journal: every distributed result and failure lands exactly
// where the local suite would have put it, which is what makes the
// post-sweep rendering pass replay instead of recompute.
func CoordinatorSinks(j *Journal) (onResult func(fabric.PointSpec, *core.Result, bool) error, onFailure func(fabric.PointSpec, string)) {
	onResult = func(spec fabric.PointSpec, res *core.Result, resumed bool) error {
		return j.Store(PointRecord{
			App: spec.App, Size: spec.Size, ClusterSize: spec.ClusterSize,
			CacheKB: spec.CacheKB, ConfigHash: spec.ConfigHash, Result: res,
		})
	}
	onFailure = func(spec fabric.PointSpec, msg string) {
		if err := j.StoreFailure(FailureRecord{
			App: spec.App, Size: spec.Size, ClusterSize: spec.ClusterSize,
			CacheKB: spec.CacheKB, ConfigHash: spec.ConfigHash, Error: msg,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: journalling a distributed failure failed:", err)
		}
	}
	return onResult, onFailure
}
